// Wall-clock profiler: hierarchical phase attribution for the expensive
// paths (ISSUE 7 tentpole).
//
// Where the metrics Registry answers "what did the simulation do" in
// simulated time, the Profiler answers "where did the wall clock go":
// scoped phase timers with interned names, nanosecond-resolution monotonic
// clocks, and an allocation-free record path mirroring the Registry design
// (phases are interned once at setup; begin/end/record touch only
// pre-allocated storage plus two steady_clock reads).
//
// Two switches gate the cost, exactly like the tracer:
//  * compile time — building with -DIMRM_PROFILING=0 (CMake option
//    IMRM_PROFILING=OFF) turns every begin/end/record into an empty inline;
//  * runtime — a profiler starts disabled; calls on a disabled profiler are
//    a single predictable branch and read no clock.
//
// Determinism boundary: wall-clock numbers NEVER land in the metrics
// Snapshot or the simulated-time trace records. They are exported through a
// separate ProfileSnapshot that becomes the `profile` block of the v2
// RunReport, so golden metrics JSON and trace bytes stay byte-identical
// whether profiling is off, runtime-disabled, or enabled (asserted by
// tests/obs_profiler_test.cc and tests/sharded_profile_test.cc).
//
// Threading discipline mirrors the Registry: a Profiler instance belongs to
// one thread — its frame stack is an instance member, and concurrent
// sections (the sharded runner's worker lanes) keep their own per-worker
// accounting which is folded into the ProfileSnapshot between rounds, under
// the round barrier (see sim::ShardedRunner::export_profile).
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

#ifndef IMRM_PROFILING
#define IMRM_PROFILING 1
#endif

namespace imrm::obs {

/// Index into a profiler's interned phase table.
using PhaseId = std::uint32_t;
inline constexpr PhaseId kInvalidPhase = ~PhaseId{0};

/// Accumulated wall cost of one named phase. `total_ns` is inclusive of
/// nested phases; `self_ns` excludes time attributed to children begun while
/// this phase was the innermost open frame. min/max are per-call durations.
struct PhaseSample {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
};

/// One execution lane of a sharded run (one worker thread). busy is time
/// executing domain events (accumulated across a burst's sub-windows);
/// barrier_wait is the in-dispatch stall (dispatch wall minus this lane's
/// busy share — the cost of waiting for stragglers and the serializer);
/// idle is the between-dispatch coordination time during which no lane
/// executes events. The three always sum to ProfileSnapshot::
/// profiled_wall_ns — the satellite-1 accounting contract of ISSUE 10.
struct ShardLaneSample {
  std::uint64_t busy_ns = 0;
  std::uint64_t barrier_wait_ns = 0;
  std::uint64_t idle_ns = 0;
  /// Dispatches in which this lane was the slowest (the straggler whose
  /// busy time set the burst's wall length).
  std::uint64_t straggler_windows = 0;
};

/// The wall-clock section of a v2 RunReport: named phase totals plus, for
/// sharded runs, per-lane busy/idle/barrier accounting and the window-level
/// histograms. Everything here is wall time — deliberately quarantined from
/// the deterministic metrics snapshot.
struct ProfileSnapshot {
  std::vector<PhaseSample> phases;  // name-sorted
  // ---- sharded-execution accounting (empty unless a ShardedRunner ran) ---
  std::vector<ShardLaneSample> shards;
  /// Coordinator dispatches — full-stop barriers with a condvar round trip.
  /// Before window batching (ISSUE 10) every window was one; now a dispatch
  /// covers a burst of up to `batch` windows, and windows / barriers is the
  /// realized batch factor.
  std::uint64_t barriers = 0;
  std::uint64_t windows = 0;             ///< lockstep windows executed
  std::uint64_t boundary_messages = 0;   ///< cross-domain messages delivered
  std::uint64_t boundary_bytes = 0;      ///< envelope bytes exchanged
  /// Wall covered by dispatch accounting: every shard lane's busy +
  /// barrier_wait + idle sums to exactly this.
  std::uint64_t profiled_wall_ns = 0;
  /// Wall length of each conservative window, ns (count 0 when not sharded).
  HistogramSample window_ns;
  /// Boundary messages injected at each exchange (count 0 when not sharded).
  HistogramSample messages_per_barrier;
  /// Windows executed per coordinator dispatch — the batch-size / burst
  /// occupancy distribution (count 0 when not sharded).
  HistogramSample batch_windows;

  [[nodiscard]] bool empty() const {
    return phases.empty() && shards.empty() && barriers == 0;
  }

  /// Phase-wise merge (sums, min/max fold); shard lanes and barrier totals
  /// are adopted from `other` when this snapshot has none.
  void merge(const ProfileSnapshot& other);

  /// {"phases": {...}, "shards": [...], ...} with names sorted; the
  /// `profile` block of the v2 run report.
  void write_json(std::ostream& os) const;

  /// Human-readable summary (scenario_cli --profile 1): phases ranked by
  /// total wall cost, then the per-shard busy/idle/barrier table.
  void write_table(std::ostream& os) const;
};

class Profiler {
 public:
  /// Deepest nesting of open phases; deeper begin() calls are counted into
  /// the innermost open frame instead of crashing.
  static constexpr std::size_t kMaxDepth = 64;

  /// Compile-time availability of profiling in this build.
  [[nodiscard]] static constexpr bool compiled_in() { return IMRM_PROFILING != 0; }

  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on && compiled_in(); }

  /// Monotonic nanoseconds (steady_clock). The one clock every wall number
  /// in the profile comes from.
  [[nodiscard]] static std::uint64_t now_ns() {
    return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now().time_since_epoch())
                             .count());
  }

  /// Interns a phase name (setup-time; allocates). Ids are dense and stable;
  /// interning the same name again returns the same id.
  PhaseId intern(std::string_view name);

  /// Opens a phase frame. Allocation-free; no-op (one branch) when disabled.
  void begin(PhaseId id) {
#if IMRM_PROFILING
    if (!enabled_) return;
    if (depth_ < kMaxDepth) frames_[depth_] = {id, now_ns(), 0};
    ++depth_;
#else
    (void)id;
#endif
  }

  /// Closes the innermost frame, attributing its duration to `id` and its
  /// exclusive share to the parent frame's child accumulator.
  void end(PhaseId id) {
#if IMRM_PROFILING
    if (!enabled_ || depth_ == 0) return;
    --depth_;
    if (depth_ >= kMaxDepth) return;  // was an overflow frame; only counted
    const Frame& f = frames_[depth_];
    const std::uint64_t dur = now_ns() - f.start_ns;
    account(f.id, dur, dur - std::min(f.child_ns, dur), 1);
    if (depth_ > 0) frames_[depth_ - 1].child_ns += dur;
    (void)id;
#else
    (void)id;
#endif
  }

  /// Direct attribution of an externally measured duration: `calls`
  /// invocations costing `ns` in total (per-replication timings, aggregate
  /// protocol rounds). Does not interact with the frame stack.
  void record(PhaseId id, std::uint64_t ns, std::uint64_t calls = 1) {
#if IMRM_PROFILING
    if (!enabled_ || calls == 0) return;
    account(id, ns, ns, calls);
#else
    (void)id, (void)ns, (void)calls;
#endif
  }

  /// RAII phase frame. `Scope s(profiler_or_null, id);` — a null profiler
  /// costs one branch.
  class Scope {
   public:
    Scope(Profiler* profiler, PhaseId id) : profiler_(profiler), id_(id) {
      if (profiler_ != nullptr) profiler_->begin(id_);
    }
    ~Scope() {
      if (profiler_ != nullptr) profiler_->end(id_);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Profiler* profiler_;
    PhaseId id_;
  };

  [[nodiscard]] std::size_t phase_count() const { return phases_.size(); }
  [[nodiscard]] std::string_view name_of(PhaseId id) const { return phases_[id].name; }

  /// Copies the accumulated phase totals (name-sorted) into a snapshot.
  /// Phases never begun are omitted.
  [[nodiscard]] ProfileSnapshot snapshot() const;

 private:
  struct Phase {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;
  };
  struct Frame {
    PhaseId id = kInvalidPhase;
    std::uint64_t start_ns = 0;
    std::uint64_t child_ns = 0;
  };

  void account(PhaseId id, std::uint64_t total, std::uint64_t self,
               std::uint64_t calls) {
    Phase& p = phases_[id];
    const std::uint64_t per_call = calls > 1 ? total / calls : total;
    if (p.calls == 0) {
      p.min_ns = p.max_ns = per_call;
    } else {
      if (per_call < p.min_ns) p.min_ns = per_call;
      if (per_call > p.max_ns) p.max_ns = per_call;
    }
    p.calls += calls;
    p.total_ns += total;
    p.self_ns += self;
  }

  std::vector<Phase> phases_;
  Frame frames_[kMaxDepth];
  std::size_t depth_ = 0;
  bool enabled_ = false;
};

}  // namespace imrm::obs
