// Sharded multi-cell campus scenario (ISSUE 5).
//
// Where campus_day.cc models one meeting room in a single simulator, this
// harness scales the other axis: a corridor of N cells, each with its own
// portable population, executed as N sim::ShardedRunner domains. All
// cross-cell traffic — corridor handoffs, remote-bandwidth admission probes
// and their accept/reject/release signaling — travels as boundary messages
// through the runner's fault::Transport seam with latency proportional to
// the corridor hop count, so the conservative window equals one hop.
//
// The scenario exercises the paper's admission/handoff mechanics at campus
// scale: portables alternate idle and active periods; an active session
// either consumes local cell bandwidth or (with cross_call_probability)
// probes a remote cell for bandwidth, which the remote cell grants as a
// *lease*; a fraction of remote sessions are abandoned without an explicit
// release (the portable left coverage), so every cell runs a periodic lease
// sweep — FlatMap::erase_if over the lease ledger — to reclaim the
// bandwidth. At session end a portable may roam to a neighboring cell,
// continuing the session there if that cell can admit it (else the session
// drops: Figure 6's drop-vs-block tension at corridor scale).
//
// Determinism contract: per-cell RNG streams (replication_seed(seed, cell)),
// per-cell metric registries, and the runner's canonical boundary-message
// order make every output — including the folded metrics JSON — byte-
// identical for any shard/worker count. The fold is a flat left-fold over
// per-cell snapshots in cell order (never grouped per worker), because
// Snapshot::merge sums gauge doubles and float addition is not associative.
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/tracer.h"
#include "sim/time.h"

namespace imrm::experiments {

struct ShardedCampusConfig {
  std::size_t cells = 24;            ///< corridor cells = runner domains
  std::size_t shards = 1;            ///< worker threads (execution only; 0 = hw)
  std::size_t portables_per_cell = 8;
  double cell_capacity_bps = 1.6e6;  ///< paper's 1.6 Mb/s picocell
  double session_bandwidth_bps = 96e3;
  sim::Duration session_mean = sim::Duration::minutes(6);
  sim::Duration idle_mean = sim::Duration::minutes(4);
  double roam_probability = 0.35;    ///< roam to a neighbor at session end
  double cross_call_probability = 0.30;  ///< session needs remote bandwidth
  double abandon_probability = 0.05;     ///< remote lease never released
  sim::Duration hop_latency = sim::Duration::millis(5);  ///< = window width
  sim::Duration lease_sweep_period = sim::Duration::seconds(30);
  sim::SimTime horizon = sim::SimTime::hours(4);
  std::uint64_t seed = 5;
  /// Windows per coordinator dispatch (0 = adaptive controller). Purely an
  /// execution knob: results are byte-identical for any value (ISSUE 10).
  std::size_t batch = 0;
  /// Optional wall-clock profiling / trace lanes / progress heartbeat,
  /// forwarded to the sim::ShardedRunner (see its Config for semantics).
  /// All observation-only: metrics bytes are identical with or without.
  obs::Profiler* profiler = nullptr;
  obs::Tracer* tracer = nullptr;
  obs::ProgressMeter* progress = nullptr;
};

struct ShardedCampusResult {
  // Engine totals.
  std::uint64_t events_fired = 0;
  std::uint64_t windows = 0;            ///< conservative rounds executed
  std::uint64_t boundary_messages = 0;  ///< cross-cell messages delivered
  // Scenario outcome sums (also present as counters in `metrics`).
  std::uint64_t admits = 0;
  std::uint64_t blocks = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t handoff_drops = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_rejected = 0;
  std::uint64_t lease_reclaims = 0;
  /// Per-cell snapshots folded in cell order, plus the runner's shard.*
  /// counters. Byte-identical JSON for any `shards` value.
  obs::Snapshot metrics;
  /// Wall-clock attribution (empty unless config.profiler was enabled):
  /// per-shard busy/barrier-wait/idle lanes, barrier count, boundary bytes,
  /// window histograms. Lives outside `metrics` — wall numbers vary per run
  /// and per shard count, so determinism checks must never hash them.
  obs::ProfileSnapshot profile;
};

[[nodiscard]] ShardedCampusResult run_sharded_campus(const ShardedCampusConfig& config);

}  // namespace imrm::experiments
