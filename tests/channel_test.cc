// Tests for the Gilbert-Elliott wireless channel model.
#include <gtest/gtest.h>

#include <memory>

#include "obs/metrics.h"
#include "workload/channel.h"

namespace imrm::workload {
namespace {

using sim::Duration;
using sim::SimTime;

GilbertElliottChannel::Config fast_config() {
  GilbertElliottChannel::Config c;
  c.good_capacity = qos::mbps(1.6);
  c.bad_capacity = qos::mbps(0.4);
  c.mean_good = Duration::seconds(60);
  c.mean_bad = Duration::seconds(20);
  return c;
}

TEST(Channel, StartsGood) {
  sim::Simulator simulator;
  GilbertElliottChannel channel(simulator, fast_config(), sim::Rng(1), nullptr);
  EXPECT_TRUE(channel.in_good_state());
  EXPECT_DOUBLE_EQ(channel.current_capacity(), qos::mbps(1.6));
}

TEST(Channel, AlternatesStates) {
  sim::Simulator simulator;
  std::vector<double> capacities;
  GilbertElliottChannel channel(simulator, fast_config(), sim::Rng(2),
                                [&](double c) { capacities.push_back(c); });
  channel.start(SimTime::hours(1));
  simulator.run();
  ASSERT_GT(capacities.size(), 10u);
  for (std::size_t i = 1; i < capacities.size(); ++i) {
    EXPECT_NE(capacities[i], capacities[i - 1]);  // strict alternation
  }
  EXPECT_EQ(channel.transitions(), capacities.size());
}

TEST(Channel, DutyCycleMatchesAnalytic) {
  sim::Simulator simulator;
  GilbertElliottChannel channel(simulator, fast_config(), sim::Rng(3), nullptr);
  channel.start(SimTime::hours(50));

  double good_time = 0.0;
  double total = 0.0;
  // Sample the state every second (post-transition ordering is safe because
  // samples and transitions never share a timestamp draw).
  simulator.every(Duration::seconds(1), SimTime::hours(50), [&] {
    total += 1.0;
    if (channel.in_good_state()) good_time += 1.0;
  });
  simulator.run();
  EXPECT_NEAR(good_time / total, channel.good_duty_cycle(), 0.02);
  EXPECT_NEAR(channel.good_duty_cycle(), 60.0 / 80.0, 1e-12);
}

TEST(Channel, HorizonStopsTransitions) {
  sim::Simulator simulator;
  GilbertElliottChannel channel(simulator, fast_config(), sim::Rng(4), nullptr);
  channel.start(SimTime::seconds(30));
  simulator.run();
  EXPECT_LE(simulator.now().to_seconds(), 30.0 + 1e-9);
}

TEST(Channel, ExportsTransitionAndCapacityMetrics) {
  sim::Simulator simulator;
  obs::Registry registry;
  GilbertElliottChannel channel(simulator, fast_config(), sim::Rng(6), nullptr);
  channel.bind_metrics(&registry);
  // Bound before any transition: the gauge already reads the good capacity.
  EXPECT_DOUBLE_EQ(registry.gauge("channel.capacity_bps").value(), qos::mbps(1.6));
  channel.start(SimTime::hours(1));
  simulator.run();
  EXPECT_EQ(registry.counter("channel.transitions").value(), channel.transitions());
  EXPECT_GT(channel.transitions(), 0u);
  // The gauge tracks the live capacity and its max is the good-state rate.
  EXPECT_DOUBLE_EQ(registry.gauge("channel.capacity_bps").value(),
                   channel.current_capacity());
  EXPECT_DOUBLE_EQ(registry.gauge("channel.capacity_bps").max(), qos::mbps(1.6));
  // Detaching stops the export without disturbing the channel.
  channel.bind_metrics(nullptr);
}

TEST(Channel, MoveOnlyCallbackState) {
  // The InplaceFunction callback accepts move-only capture state, which a
  // std::function never could — the reason for the swap.
  sim::Simulator simulator;
  auto hits = std::make_unique<int>(0);
  int* raw = hits.get();
  GilbertElliottChannel channel(simulator, fast_config(), sim::Rng(7),
                                [hits = std::move(hits)](double) { ++*hits; });
  channel.start(SimTime::hours(1));
  simulator.run();
  EXPECT_EQ(std::size_t(*raw), channel.transitions());
}

TEST(Channel, Deterministic) {
  auto run = [] {
    sim::Simulator simulator;
    GilbertElliottChannel channel(simulator, fast_config(), sim::Rng(5), nullptr);
    channel.start(SimTime::hours(2));
    simulator.run();
    return channel.transitions();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace imrm::workload
