# Empty compiler generated dependencies file for imrm_profiles.
# This may be replaced when dependencies are built.
