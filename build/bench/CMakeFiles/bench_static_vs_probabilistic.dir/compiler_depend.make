# Empty compiler generated dependencies file for bench_static_vs_probabilistic.
# This may be replaced when dependencies are built.
