// Tests for the structured tracer: ring-buffer eviction accounting, name
// interning, runtime/compile-time gating, and a golden-file check of the
// Chrome trace_event JSON export (tests/golden/chrome_trace_golden.json —
// regenerate by running the GoldenFile test with IMRM_REGEN_GOLDEN=1 in the
// environment).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/ring_buffer.h"
#include "obs/tracer.h"
#include "sim/time.h"

using namespace imrm;
using obs::Tracer;
using sim::SimTime;

TEST(RingBuffer, UnboundedAppends) {
  obs::RingBuffer<int> ring;
  for (int i = 0; i < 100; ++i) ring.push(i);
  EXPECT_EQ(ring.size(), 100u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring[0], 0);
  EXPECT_EQ(ring[99], 99);
}

TEST(RingBuffer, BoundedEvictsOldest) {
  obs::RingBuffer<int> ring(4);
  for (int i = 0; i < 7; ++i) ring.push(i);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 3u);
  // Chronological order, oldest retained first.
  EXPECT_EQ(ring[0], 3);
  EXPECT_EQ(ring[3], 6);
  const auto v = ring.to_vector();
  EXPECT_EQ(v, (std::vector<int>{3, 4, 5, 6}));
}

TEST(Tracer, InternIsIdempotent) {
  Tracer tracer;
  const obs::NameId a = tracer.intern("handoff", "mobility");
  const obs::NameId b = tracer.intern("handoff", "mobility");
  const obs::NameId c = tracer.intern("handoff", "maxmin");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(tracer.name_of(a), "handoff");
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tracer;
  const obs::NameId name = tracer.intern("x");
  ASSERT_FALSE(tracer.enabled());  // tracers start disabled
  tracer.instant(SimTime::seconds(1), name);
  tracer.counter(SimTime::seconds(2), name, 5.0);
  EXPECT_EQ(tracer.records().size(), 0u);
}

#if IMRM_TRACING

TEST(Tracer, BoundedCapacityCountsDrops) {
  Tracer tracer(3);
  tracer.set_enabled(true);
  const obs::NameId name = tracer.intern("e");
  for (int i = 0; i < 5; ++i) {
    tracer.instant(SimTime::seconds(double(i)), name, 0, double(i));
  }
  EXPECT_EQ(tracer.records().size(), 3u);
  EXPECT_EQ(tracer.dropped(), 2u);
  EXPECT_DOUBLE_EQ(tracer.records()[0].value, 2.0);  // oldest retained

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  EXPECT_NE(os.str().find("\"dropped_records\":2"), std::string::npos);
}

namespace {

/// The deterministic trace behind the golden file: one of each record kind.
void record_golden_trace(Tracer& tracer) {
  tracer.set_enabled(true);
  const obs::NameId round = tracer.intern("adaptation-round", "maxmin");
  const obs::NameId update = tracer.intern("update", "maxmin");
  const obs::NameId queue = tracer.intern("queue_depth", "sim");
  tracer.instant(SimTime::seconds(0.5), update, 3, 64000.0);
  tracer.complete(SimTime::seconds(1.0), SimTime::seconds(1.25), round, 2, 128000.0);
  tracer.counter(SimTime::seconds(2.0), queue, 17.0);
}

}  // namespace

TEST(Tracer, ChromeTraceMatchesGoldenFile) {
  Tracer tracer;
  record_golden_trace(tracer);
  std::ostringstream os;
  tracer.write_chrome_trace(os);

  const std::string path = std::string(IMRM_GOLDEN_DIR) + "/chrome_trace_golden.json";
  if (std::getenv("IMRM_REGEN_GOLDEN") != nullptr) {
    std::ofstream regen(path);
    ASSERT_TRUE(regen.is_open());
    regen << os.str();
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "missing golden file " << path;
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(os.str(), expected.str());
}

TEST(Tracer, ChromeTraceIsWellFormedSkeleton) {
  Tracer tracer;
  record_golden_trace(tracer);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"maxmin\""), std::string::npos);
  // No eviction occurred, so no dropped-records metadata.
  EXPECT_EQ(json.find("dropped_records"), std::string::npos);
}

#else  // !IMRM_TRACING

TEST(Tracer, CompiledOutRecordsNothingEvenWhenEnabled) {
  Tracer tracer;
  tracer.set_enabled(true);
  EXPECT_FALSE(tracer.enabled());  // set_enabled is a no-op without support
  const obs::NameId name = tracer.intern("x");
  tracer.instant(SimTime::seconds(1), name);
  EXPECT_EQ(tracer.records().size(), 0u);
}

#endif  // IMRM_TRACING
