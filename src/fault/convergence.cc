#include "fault/convergence.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "fault/faulty_channel.h"
#include "maxmin/waterfill.h"
#include "obs/tracer.h"
#include "sim/random.h"
#include "sim/replication.h"
#include "sim/simulator.h"

namespace imrm::fault {

namespace {

// Reconvergence times span hop-latencies (ms) to long resync storms; the
// log2 spec keeps relative error bounded at every scale. lo * 2^16 = hi.
const obs::HistogramSpec kReconvergeSpec =
    obs::HistogramSpec::log2(1e-3, 65.536, 4);

double max_deviation(const std::vector<double>& rates, const std::vector<double>& target) {
  double worst = 0.0;
  for (std::size_t i = 0; i < rates.size() && i < target.size(); ++i) {
    worst = std::max(worst, std::fabs(rates[i] - target[i]));
  }
  return worst;
}

maxmin::DistributedProtocol::Config harden_config(const ConvergenceConfig& config,
                                                  FaultyChannel& channel,
                                                  bool defer_start) {
  maxmin::DistributedProtocol::Config protocol_config = config.protocol;
  protocol_config.transport = &channel;
  protocol_config.harden = true;
  protocol_config.defer_start = defer_start;
  return protocol_config;
}

// Arms the faulted phase: message-fault model (phased runs start clean),
// the discrete fault schedule, and the heal/resync event closing the fault
// window at `faults_stop`. Cold phased runs and checkpoint-forked runs call
// this at the same point with the same queue sequence counter, so both
// schedule identical events.
void arm_faults(sim::Simulator& simulator, FaultyChannel& channel,
                maxmin::DistributedProtocol& protocol, const ConvergenceConfig& config,
                sim::SimTime faults_stop, bool apply_model) {
  if (apply_model) channel.set_default_model(config.faults);
  FaultSchedule::Hooks hooks;
  hooks.link_down = [&channel](std::uint32_t link) { channel.set_channel_up(link, false); };
  hooks.link_up = [&channel](std::uint32_t link) { channel.set_channel_up(link, true); };
  hooks.cell_crash = [&protocol](std::uint32_t link) {
    protocol.crash_restart_link(maxmin::LinkIndex(link));
  };
  config.schedule.arm(simulator, hooks, config.metrics, config.tracer);

  // The fault window closes at faults_stop: message faults heal, every
  // downed channel comes back, and the protocol runs an epoch resync sweep.
  const std::size_t links = config.problem.links.size();
  simulator.at(faults_stop, [&channel, &protocol, links] {
    channel.set_default_model(LinkFaultModel{});
    for (Channel c = 0; c < Channel(links); ++c) {
      channel.set_channel_up(c, true);
    }
    protocol.resynchronize();
  });
}

// Per-event bookkeeping shared by every drive loop.
// Safety: at *every* event, no link may plan to allocate more than its
// excess capacity (artificial demand links included). planned_sum clamps
// each member at the advertised rate — an over-recorded connection is
// already revoked down to mu locally; its shrinking UPDATE is in flight.
// The unclamped granted_sum transiently exceeds capacity during any
// rebalance even fault-free (Sec. 5.3.1 over-consumers shrink one
// serialized round at a time), so it is tracked as telemetry only.
void observe_event(const ConvergenceConfig& config, const sim::Simulator& simulator,
                   const maxmin::DistributedProtocol& protocol,
                   const std::vector<double>& target, sim::SimTime faults_stop,
                   ConvergenceResult& result, double& reconverged_at) {
  for (maxmin::LinkIndex li = 0; li < protocol.link_count(); ++li) {
    const double capacity = std::max(protocol.link_excess_capacity(li), 0.0);
    const double overshoot = protocol.planned_sum(li) - capacity;
    if (overshoot > result.worst_overshoot) result.worst_overshoot = overshoot;
    if (overshoot > config.safety_slack) result.safety_held = false;
    result.worst_transient_overshoot = std::max(
        result.worst_transient_overshoot, protocol.granted_sum(li) - capacity);
  }
  if (reconverged_at < 0.0 && simulator.now() >= faults_stop &&
      max_deviation(protocol.rates(), target) <= config.tolerance) {
    reconverged_at = simulator.now().to_seconds();
  }
}

// Post-run classification + metrics export shared by cold and forked runs.
void finish_run(const ConvergenceConfig& config, const sim::Simulator& simulator,
                const maxmin::DistributedProtocol& protocol,
                const std::vector<double>& target, sim::SimTime faults_stop,
                double reconverged_at, ConvergenceResult& result) {
  result.events = simulator.events_fired();
  result.final_rates = protocol.rates();
  result.final_deviation = max_deviation(result.final_rates, target);
  // The queue may drain before faults_stop checks ran; the final state still
  // counts as reconverged if it matches the fixed point.
  if (reconverged_at < 0.0 && result.final_deviation <= config.tolerance) {
    reconverged_at = std::max(faults_stop, simulator.now()).to_seconds();
  }
  if (reconverged_at >= 0.0) {
    result.reconverged = true;
    result.reconverge_seconds = std::max(0.0, reconverged_at - faults_stop.to_seconds());
  }

  if (config.metrics) {
    obs::Registry& registry = *config.metrics;
    registry.counter("fault.convergence.runs").add();
    if (result.reconverged) {
      registry.counter("fault.convergence.reconverged").add();
      registry.histogram("fault.reconverge_seconds", kReconvergeSpec)
          .record(result.reconverge_seconds);
    }
    if (!result.safety_held) registry.counter("fault.convergence.safety_violations").add();
    protocol.export_metrics(registry);
    simulator.collect_metrics(registry);
  }
}

}  // namespace

ConvergenceResult run_convergence(const ConvergenceConfig& config) {
  sim::Simulator simulator;
  if (config.tracer) simulator.set_tracer(config.tracer);

  // A phased run (faults_start > 0) starts with a trivial channel model so
  // the warm phase draws zero RNG — exactly the state a forked variant
  // reconstructs from its own seed.
  const bool phased = config.faults_start > sim::SimTime::zero();
  sim::Rng rng(config.seed);
  FaultyChannel channel(simulator, rng.fork(),
                        phased ? LinkFaultModel{} : config.faults);
  if (config.metrics) channel.bind_metrics(config.metrics);

  maxmin::DistributedProtocol protocol(simulator, config.problem,
                                       harden_config(config, channel, false));

  const sim::SimTime faults_stop =
      std::max(config.faults_stop, config.schedule.end_time());
  if (!phased) {
    arm_faults(simulator, channel, protocol, config, faults_stop, false);
  }

  const std::vector<double> target = maxmin::waterfill(config.problem).rates;

  protocol.start_all();

  ConvergenceResult result;
  double reconverged_at = -1.0;
  if (phased) {
    // Clean warm phase: drive events strictly before the barrier, then arm
    // the faults — the same arming a forked run performs after restoring the
    // warm checkpoint, at the same sequence-counter position.
    while (simulator.now() <= config.horizon &&
           simulator.next_event_time() < config.faults_start && simulator.step()) {
      observe_event(config, simulator, protocol, target, faults_stop, result,
                    reconverged_at);
    }
    arm_faults(simulator, channel, protocol, config, faults_stop, true);
  }
  while (simulator.now() <= config.horizon && simulator.step()) {
    observe_event(config, simulator, protocol, target, faults_stop, result,
                  reconverged_at);
  }

  finish_run(config, simulator, protocol, target, faults_stop, reconverged_at, result);
  return result;
}

sim::Checkpoint make_warm_checkpoint(const ConvergenceConfig& config) {
  if (!(config.faults_start > sim::SimTime::zero())) {
    throw sim::CheckpointError("warm checkpoint: config.faults_start must be > 0");
  }
  sim::Simulator simulator;
  sim::Rng rng(config.seed);  // never drawn in the warm phase; kept for symmetry
  FaultyChannel channel(simulator, rng.fork(), LinkFaultModel{});
  obs::Registry registry;  // warm-phase instrument values, restored per variant
  channel.bind_metrics(&registry);

  maxmin::DistributedProtocol protocol(simulator, config.problem,
                                       harden_config(config, channel, false));
  const sim::SimTime faults_stop =
      std::max(config.faults_stop, config.schedule.end_time());
  const std::vector<double> target = maxmin::waterfill(config.problem).rates;

  protocol.start_all();

  ConvergenceResult warm_result;
  double reconverged_at = -1.0;
  while (simulator.now() <= config.horizon &&
         simulator.next_event_time() < config.faults_start && simulator.step()) {
    observe_event(config, simulator, protocol, target, faults_stop, warm_result,
                  reconverged_at);
  }

  // The quiescence rule: nothing closure-shaped may be pending. The clean
  // protocol must have converged and drained the queue before the barrier.
  if (simulator.pending_events() != 0 || !protocol.quiescent()) {
    throw sim::CheckpointError(
        "warm checkpoint: simulation not quiescent at faults_start "
        "(raise faults_start past clean convergence)");
  }

  sim::Checkpoint ckpt;
  {
    sim::CheckpointWriter w;
    sim::save_simulator_core(w, simulator);
    ckpt.set("sim.core", std::move(w));
  }
  {
    sim::CheckpointWriter w;
    protocol.save_state(w);
    ckpt.set("maxmin.protocol", std::move(w));
  }
  {
    sim::CheckpointWriter w;
    channel.save_state(w);
    ckpt.set("fault.channel", std::move(w));
  }
  {
    sim::CheckpointWriter w;
    sim::save_registry(w, registry);
    ckpt.set("obs.registry", std::move(w));
  }
  {
    sim::CheckpointWriter w;
    w.f64(warm_result.worst_overshoot);
    w.f64(warm_result.worst_transient_overshoot);
    w.boolean(warm_result.safety_held);
    ckpt.set("fault.harness", std::move(w));
  }
  return ckpt;
}

ConvergenceResult run_convergence_from(const ConvergenceConfig& config,
                                       const sim::Checkpoint& warm) {
  sim::Simulator simulator;
  if (config.tracer) simulator.set_tracer(config.tracer);

  sim::Rng rng(config.seed);
  // This variant's channel RNG comes from its own seed — the warm phase drew
  // nothing, so this equals the cold run's channel RNG state at the barrier.
  FaultyChannel channel(simulator, rng.fork(), LinkFaultModel{});
  if (config.metrics) channel.bind_metrics(config.metrics);

  maxmin::DistributedProtocol protocol(simulator, config.problem,
                                       harden_config(config, channel, true));
  {
    sim::CheckpointReader r = warm.reader("sim.core");
    sim::restore_simulator_core(r, simulator);
  }
  {
    sim::CheckpointReader r = warm.reader("maxmin.protocol");
    protocol.restore_state(r);
  }
  {
    sim::CheckpointReader r = warm.reader("fault.channel");
    channel.restore_state(r);
  }
  if (config.metrics) {
    sim::CheckpointReader r = warm.reader("obs.registry");
    sim::restore_registry(r, *config.metrics);
  }
  ConvergenceResult result;
  {
    sim::CheckpointReader r = warm.reader("fault.harness");
    result.worst_overshoot = r.f64();
    result.worst_transient_overshoot = r.f64();
    result.safety_held = r.boolean();
  }

  const sim::SimTime faults_stop =
      std::max(config.faults_stop, config.schedule.end_time());
  arm_faults(simulator, channel, protocol, config, faults_stop, true);

  const std::vector<double> target = maxmin::waterfill(config.problem).rates;
  double reconverged_at = -1.0;
  while (simulator.now() <= config.horizon && simulator.step()) {
    observe_event(config, simulator, protocol, target, faults_stop, result,
                  reconverged_at);
  }

  finish_run(config, simulator, protocol, target, faults_stop, reconverged_at, result);
  return result;
}

ConvergenceSweepResult run_convergence_sweep(const ConvergenceSweepConfig& config) {
  struct PerRep {
    ConvergenceResult result;
    obs::Snapshot snapshot;
  };
  // One shared warm image for every forked replication: built once, read
  // concurrently (Checkpoint reads are const).
  sim::Checkpoint warm;
  const bool fork = config.fork_from_warm &&
                    config.base.faults_start > sim::SimTime::zero();
  if (fork) warm = make_warm_checkpoint(config.base);

  const sim::ReplicationRunner runner(config.threads);
  const auto reps =
      runner.run(config.replications, config.base.seed,
                 [&config, &warm, fork](std::uint64_t seed, std::size_t) -> PerRep {
                   obs::Registry registry;
                   ConvergenceConfig one = config.base;
                   one.seed = seed;
                   one.metrics = &registry;
                   one.tracer = nullptr;  // tracing is per-run, not per-sweep
                   PerRep rep;
                   rep.result = fork ? run_convergence_from(one, warm)
                                     : run_convergence(one);
                   rep.snapshot = registry.snapshot();
                   return rep;
                 });

  ConvergenceSweepResult sweep;
  sweep.replications = reps.size();
  std::vector<obs::Snapshot> snapshots;
  snapshots.reserve(reps.size());
  for (const PerRep& rep : reps) {
    if (!rep.result.safety_held) ++sweep.safety_failures;
    if (!rep.result.reconverged) ++sweep.reconverge_failures;
    sweep.worst_overshoot = std::max(sweep.worst_overshoot, rep.result.worst_overshoot);
    sweep.worst_final_deviation =
        std::max(sweep.worst_final_deviation, rep.result.final_deviation);
    snapshots.push_back(rep.snapshot);
  }
  sweep.metrics = obs::merge_snapshots(snapshots);
  if (const obs::HistogramSample* h = sweep.metrics.histogram("fault.reconverge_seconds");
      h && h->count > 0) {
    sweep.reconverge_p50 = h->percentile(0.50);
    sweep.reconverge_p90 = h->percentile(0.90);
    sweep.reconverge_p99 = h->percentile(0.99);
  }
  return sweep;
}

maxmin::Problem two_cell_problem(std::size_t conns_per_cell, double cell_excess,
                                 double backbone_excess) {
  maxmin::Problem problem;
  problem.links.resize(3);
  problem.links[0].excess_capacity = cell_excess;       // cell A wireless
  problem.links[1].excess_capacity = cell_excess;       // cell B wireless
  problem.links[2].excess_capacity = backbone_excess;   // wired backbone
  for (std::size_t i = 0; i < conns_per_cell; ++i) {
    problem.connections.push_back({{0}, maxmin::kInfiniteDemand});          // local in A
    problem.connections.push_back({{1}, maxmin::kInfiniteDemand});          // local in B
    problem.connections.push_back({{0, 2, 1}, maxmin::kInfiniteDemand});    // crossing
  }
  return problem;
}

maxmin::Problem campus_problem(std::size_t cells, std::size_t conns, std::uint64_t seed) {
  maxmin::Problem problem;
  // Per-cell wireless links 0..cells-1, then corridor backbone segments
  // cells..2*cells-2 (segment j joins cell j and j+1).
  std::mt19937_64 engine(seed);
  std::uniform_real_distribution<double> wireless(8.0, 14.0);
  problem.links.resize(cells + (cells - 1));
  for (std::size_t c = 0; c < cells; ++c) {
    problem.links[c].excess_capacity = wireless(engine);
  }
  for (std::size_t s = 0; s + 1 < cells; ++s) {
    problem.links[cells + s].excess_capacity = 40.0;
  }
  std::uniform_int_distribution<std::size_t> pick(0, cells - 1);
  for (std::size_t i = 0; i < conns; ++i) {
    std::size_t a = pick(engine);
    std::size_t b = pick(engine);
    maxmin::ProblemConnection conn;
    conn.path.push_back(a);
    if (a != b) {
      const std::size_t lo = std::min(a, b);
      const std::size_t hi = std::max(a, b);
      for (std::size_t s = lo; s < hi; ++s) conn.path.push_back(cells + s);
      conn.path.push_back(b);
    }
    problem.connections.push_back(std::move(conn));
  }
  return problem;
}

}  // namespace imrm::fault
