// Empirical validation of Table 2's delay bounds at packet level.
//
// Greedy (sigma, rho) sources through Virtual Clock links (same worst-case
// delay as the WFQ the paper assumes): for a sweep of burst sizes, rates
// and hop counts, reports the measured worst-case delay against the
// analytic bound — the ratio must never exceed 1.
#include <iostream>
#include <memory>
#include <vector>

#include "qos/packet_sim.h"
#include "stats/table.h"

using namespace imrm;
using namespace imrm::qos;

namespace {

struct Result {
  double measured_max = 0.0;
  double bound = 0.0;
  std::size_t packets = 0;
};

Result run_chain(std::size_t hops, Bits sigma, BitsPerSecond rho, Bits l_max) {
  sim::Simulator simulator;
  DelaySink sink;

  // Build the chain back to front; every hop carries greedy cross traffic.
  const BitsPerSecond capacity = qos::mbps(1.6);
  std::vector<std::unique_ptr<ScheduledLink>> links(hops);
  for (std::size_t h = hops; h-- > 0;) {
    ScheduledLink::Forward forward;
    if (h + 1 == hops) {
      forward = [&sink, &simulator](Packet p) { sink(p, simulator.now()); };
    } else {
      forward = [next = links[h + 1].get()](Packet p) { next->enqueue(p); };
    }
    links[h] = std::make_unique<ScheduledLink>(simulator, capacity, std::move(forward));
  }

  std::vector<std::unique_ptr<TokenBucketSource>> sources;
  const BitsPerSecond cross_rate = capacity - rho - kbps(50);
  for (std::size_t h = 0; h < hops; ++h) {
    links[h]->add_flow(1, rho);
    links[h]->add_flow(FlowId(100 + h), cross_rate);
    TokenBucketSource::Config cross;
    cross.flow = FlowId(100 + h);
    cross.sigma = 8.0 * l_max;
    cross.rho = cross_rate;
    cross.packet_size = l_max;
    sources.push_back(std::make_unique<TokenBucketSource>(
        simulator, cross, sim::Rng(h + 10),
        [link = links[h].get()](Packet p) { link->enqueue(p); }));
    sources.back()->start(sim::SimTime::seconds(60));
  }

  TokenBucketSource::Config main_config;
  main_config.flow = 1;
  main_config.sigma = sigma;
  main_config.rho = rho;
  main_config.packet_size = l_max;
  TokenBucketSource main_source(simulator, main_config, sim::Rng(1),
                                [link = links[0].get()](Packet p) { link->enqueue(p); });
  main_source.start(sim::SimTime::seconds(60));
  simulator.run();

  Result result;
  result.measured_max = sink.delays(1).max();
  result.packets = sink.delays(1).count();
  // Table 2 destination test: d_min = (sigma + n L)/rho + sum L/C.
  result.bound = (sigma + double(hops) * l_max) / rho +
                 double(hops) * l_max / capacity;
  return result;
}

}  // namespace

int main() {
  std::cout << "== Packet-level validation of Table 2 delay bounds ==\n";
  std::cout << "greedy (sigma,rho) sources + saturating cross traffic on every "
               "hop; Virtual Clock scheduling (PGPS-equivalent bound)\n\n";

  stats::Table table({"hops", "sigma (pkts)", "rho (kbps)", "measured max (ms)",
                      "bound d_min (ms)", "ratio", "packets"});
  const Bits l_max = 8000.0;
  for (std::size_t hops : {1u, 2u, 4u}) {
    for (double sigma_pkts : {1.0, 4.0, 16.0}) {
      for (double rho_kbps : {100.0, 400.0}) {
        const Result r = run_chain(hops, sigma_pkts * l_max, qos::kbps(rho_kbps), l_max);
        table.add_row({std::to_string(hops), stats::fmt(sigma_pkts, 0),
                       stats::fmt(rho_kbps, 0), stats::fmt(r.measured_max * 1e3, 2),
                       stats::fmt(r.bound * 1e3, 2),
                       stats::fmt(r.measured_max / r.bound, 3),
                       std::to_string(r.packets)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nEvery ratio < 1: the analytic admission-control bounds are safe\n"
               "(and tight to within the burst-accumulation slack for 1-hop\n"
               "greedy bursts).\n";

  // The paper's two disciplines side by side: work-conserving (Virtual
  // Clock, WFQ-equivalent bound) vs non-work-conserving RCSP. Same greedy
  // workload on one link; RCSP trades mean delay for jitter control.
  std::cout << "\n== Discipline comparison on one shared link ==\n";
  stats::Table comp({"discipline", "mean delay (ms)", "max delay (ms)",
                     "delay stddev (ms)"});
  for (int which = 0; which < 2; ++which) {
    sim::Simulator simulator;
    DelaySink sink;
    auto deliver = [&sink, &simulator](Packet p) { sink(p, simulator.now()); };
    std::unique_ptr<ScheduledLink> vc;
    std::unique_ptr<RcspLink> rcsp;
    auto enqueue = [&](Packet p) {
      if (vc) vc->enqueue(p);
      else rcsp->enqueue(p);
    };
    if (which == 0) {
      vc = std::make_unique<ScheduledLink>(simulator, qos::mbps(1.6), deliver);
    } else {
      rcsp = std::make_unique<RcspLink>(simulator, qos::mbps(1.6), deliver);
    }
    std::vector<std::unique_ptr<TokenBucketSource>> sources;
    for (FlowId f = 1; f <= 3; ++f) {
      const BitsPerSecond rho = qos::kbps(500);
      if (vc) vc->add_flow(f, rho);
      else rcsp->add_flow(f, rho);
      TokenBucketSource::Config config;
      config.flow = f;
      config.sigma = 4 * l_max;
      config.rho = rho;
      config.packet_size = l_max;
      config.greedy = false;
      sources.push_back(std::make_unique<TokenBucketSource>(
          simulator, config, sim::Rng(f), enqueue));
      sources.back()->start(sim::SimTime::seconds(120));
    }
    simulator.run();
    stats::Summary all;
    for (FlowId f = 1; f <= 3; ++f) {
      const auto& d = sink.delays(f);
      // Aggregate the three symmetric flows.
      all.add(d.mean());
    }
    const auto& d1 = sink.delays(1);
    comp.add_row({which == 0 ? "virtual clock (WFQ-like)" : "RCSP",
                  stats::fmt(d1.mean() * 1e3, 2), stats::fmt(d1.max() * 1e3, 2),
                  stats::fmt(d1.stddev() * 1e3, 2)});
  }
  comp.print(std::cout);
  std::cout << "\nRCSP's regulator re-paces bursts: higher mean delay, bounded\n"
               "jitter — the trade-off that buys the smaller Table 2 buffer\n"
               "requirement at downstream hops.\n";
  return 0;
}
