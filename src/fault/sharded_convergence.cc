#include "fault/sharded_convergence.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>

#include "fault/convergence.h"
#include "maxmin/problem.h"
#include "maxmin/protocol.h"
#include "maxmin/waterfill.h"
#include "sim/flat_map.h"
#include "sim/sharded_runner.h"

namespace imrm::fault {
namespace {

// Initial demand of a cross-group sub-connection before any peer offer has
// arrived: effectively unconstrained (the campus problems allocate tens of
// units), yet finite so the footnote-11 artificial entry link exists for the
// offers to resize.
constexpr double kUnconstrained = 1e9;
// Offer/cap re-send threshold; well below the convergence tolerances in use
// so gossip significance never masks a meaningful move.
constexpr double kOfferEpsilon = 1e-9;
// Rate-below-advertised slack that marks a wedged (stale completion memory)
// protocol; above floating-point noise, below the convergence tolerances in
// use so a wedge can never hide inside an accepted deviation.
constexpr double kUnwedgeEpsilon = 1e-7;

class ShardedMaxMin {
 public:
  explicit ShardedMaxMin(const ShardedConvergenceConfig& config)
      : config_(config),
        problem_(campus_problem(config.cells, config.conns, config.seed)),
        groups_(std::min(std::max<std::size_t>(config.groups, 1), config.cells)),
        runner_(sim::ShardedRunner::Config{groups_.size(), config.workers,
                                           config.hop_latency}) {
    partition_links();
    build_sub_problems();
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      Group& group = groups_[g];
      maxmin::DistributedProtocol::Config protocol_config;
      protocol_config.hop_latency = config_.hop_latency;
      group.protocol = std::make_unique<maxmin::DistributedProtocol>(
          runner_.domain(g), group.sub, protocol_config);
      runner_.domain(g).every(
          config_.gossip_period, config_.horizon,
          [this, g] { gossip(g); });
    }
    if (config_.perturb) {
      assert(config_.perturb_cell < config_.cells);
      const std::size_t g = owner_group_[config_.perturb_cell];
      const maxmin::LinkIndex local = local_index_[config_.perturb_cell];
      const double excess = config_.perturb_excess;
      runner_.domain(g).at(config_.perturb_time, [this, g, local, excess] {
        groups_[g].protocol->set_link_excess_capacity(local, excess);
      });
    }
  }

  ShardedConvergenceResult run() {
    ShardedConvergenceResult result;
    result.events = runner_.run_until(config_.horizon);
    result.windows = runner_.stats().windows;
    result.boundary_messages = runner_.stats().boundary_messages;
    for (const Group& group : groups_) result.offers_sent += group.offers_sent;

    maxmin::Problem expected_problem = problem_;
    if (config_.perturb) {
      expected_problem.links[config_.perturb_cell].excess_capacity =
          config_.perturb_excess;
    }
    result.expected = maxmin::waterfill(expected_problem).rates;

    result.rates.resize(problem_.connections.size(), 0.0);
    for (std::size_t c = 0; c < problem_.connections.size(); ++c) {
      double rate = kUnconstrained;
      for (const auto& [g, local] : placements_[c]) {
        rate = std::min(rate, groups_[g].protocol->rates()[local]);
      }
      result.rates[c] = rate;
      result.max_deviation =
          std::max(result.max_deviation, std::abs(rate - result.expected[c]));
    }
    result.converged = result.max_deviation <= config_.tolerance;
    return result;
  }

 private:
  struct SubConn {
    std::size_t global = 0;             // global connection index
    std::size_t local = 0;              // protocol connection index
    maxmin::LinkIndex entry = 0;        // artificial entry link (local id)
    std::vector<maxmin::LinkIndex> real_links;  // owned path links (local ids)
    std::vector<std::uint32_t> peers;           // peer groups of this conn
    std::vector<double> peer_offers;            // parallel to `peers`
    double last_sent = -1.0;
    double applied_cap = kUnconstrained;
  };

  struct Group {
    maxmin::Problem sub;
    std::unique_ptr<maxmin::DistributedProtocol> protocol;
    std::vector<SubConn> cross;
    sim::FlatMap<std::uint64_t, std::uint32_t> by_global;
    std::uint64_t offers_sent = 0;  // per-group: gossip runs on its worker
    std::uint64_t last_messages = 0;  // quiescence detector (see maybe_unwedge)
  };

  [[nodiscard]] std::size_t group_of_cell(std::size_t cell) const {
    return cell * groups_.size() / config_.cells;
  }

  void partition_links() {
    // campus_problem layout: links [0, cells) are per-cell wireless, links
    // [cells, 2*cells - 1) are corridor segments (segment s joins cells s
    // and s+1, owned by cell s's group).
    owner_group_.resize(problem_.links.size());
    local_index_.resize(problem_.links.size());
    std::vector<std::size_t> next_local(groups_.size(), 0);
    for (std::size_t l = 0; l < problem_.links.size(); ++l) {
      const std::size_t cell = l < config_.cells ? l : l - config_.cells;
      const std::size_t g = group_of_cell(cell);
      owner_group_[l] = g;
      local_index_[l] = next_local[g]++;
    }
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      groups_[g].sub.links.resize(next_local[g]);
    }
    for (std::size_t l = 0; l < problem_.links.size(); ++l) {
      groups_[owner_group_[l]].sub.links[local_index_[l]].excess_capacity =
          problem_.links[l].excess_capacity;
    }
  }

  void build_sub_problems() {
    placements_.resize(problem_.connections.size());
    std::vector<std::size_t> finite_count(groups_.size(), 0);
    for (std::size_t c = 0; c < problem_.connections.size(); ++c) {
      const auto& path = problem_.connections[c].path;
      // Touched groups, in first-touch order (paths run along the corridor,
      // so the set is contiguous either way).
      std::vector<std::uint32_t> touched;
      for (maxmin::LinkIndex l : path) {
        const auto g = std::uint32_t(owner_group_[l]);
        if (std::find(touched.begin(), touched.end(), g) == touched.end()) {
          touched.push_back(g);
        }
      }
      const bool cross = touched.size() > 1;
      for (std::uint32_t g : touched) {
        Group& group = groups_[g];
        maxmin::ProblemConnection sub_conn;
        for (maxmin::LinkIndex l : path) {
          if (owner_group_[l] == g) sub_conn.path.push_back(local_index_[l]);
        }
        if (cross) sub_conn.demand = kUnconstrained;
        const std::size_t local = group.sub.connections.size();
        placements_[c].emplace_back(g, local);
        if (cross) {
          SubConn entry;
          entry.global = c;
          entry.local = local;
          // The protocol appends one artificial link per finite-demand
          // connection, in insertion order, after the problem's own links.
          entry.entry = group.sub.links.size() + finite_count[g]++;
          entry.real_links = sub_conn.path;
          for (std::uint32_t p : touched) {
            if (p != g) {
              entry.peers.push_back(p);
              entry.peer_offers.push_back(kUnconstrained);
            }
          }
          group.by_global.insert(c, std::uint32_t(group.cross.size()));
          group.cross.push_back(std::move(entry));
        }
        group.sub.connections.push_back(std::move(sub_conn));
      }
    }
  }

  [[nodiscard]] sim::Duration offer_latency(std::size_t a, std::size_t b) const {
    const std::size_t hops = a > b ? a - b : b - a;
    return sim::Duration::seconds(config_.hop_latency.to_seconds() *
                                  double(hops == 0 ? 1 : hops));
  }

  // A capacity INCREASE on a footnote-11 entry link can be swallowed by the
  // protocol's per-(link, connection) completion memory: the grower round the
  // increase initiates is judged futile because an earlier attempt from the
  // identical (advertised, recorded) state at that link really was — but the
  // actual bottleneck has since moved to another link, whose own state never
  // changed either, so nothing re-triggers. Within one protocol instance a
  // bottleneck can only move when some link's state changes (which initiates
  // from that link), so the memory is safe; cross-group offers break that
  // assumption by changing entry capacities from outside.
  //
  // Detection: the group is quiescent (no control messages since the last
  // gossip tick — rounds in flight send at least one packet per hop latency,
  // which is shorter than the gossip period) while some cross-group
  // connection sits strictly below every advertised rate on its local path,
  // i.e. every link would let it grow yet no adaptation is pending. That
  // state is unreachable for a live protocol, so it marks the stale-memory
  // wedge; resynchronize() is the protocol's documented epoch-recovery hook
  // that clears completion memory and re-initiates.
  void maybe_unwedge(Group& group) {
    const std::uint64_t sent = group.protocol->messages_sent();
    const bool idle = group.last_messages == sent;
    group.last_messages = sent;
    if (!idle) return;
    for (const SubConn& entry : group.cross) {
      double bottleneck = group.protocol->advertised_rate(entry.entry);
      for (maxmin::LinkIndex l : entry.real_links) {
        bottleneck = std::min(bottleneck, group.protocol->advertised_rate(l));
      }
      if (group.protocol->rates()[entry.local] < bottleneck - kUnwedgeEpsilon) {
        group.protocol->resynchronize();
        return;
      }
    }
  }

  void gossip(std::size_t g) {
    Group& group = groups_[g];
    maybe_unwedge(group);
    for (SubConn& entry : group.cross) {
      double offer = kUnconstrained;
      for (maxmin::LinkIndex l : entry.real_links) {
        offer = std::min(offer, group.protocol->advertised_rate(l));
      }
      if (std::abs(offer - entry.last_sent) <= kOfferEpsilon) continue;
      entry.last_sent = offer;
      for (std::uint32_t peer : entry.peers) {
        ++group.offers_sent;
        runner_.transport(g).send(
            fault::Channel(peer), offer_latency(g, peer),
            [this, peer, conn = std::uint32_t(entry.global),
             from = std::uint32_t(g), offer] {
              on_offer(peer, conn, from, offer);
            });
      }
    }
  }

  void on_offer(std::uint32_t g, std::uint32_t global_conn, std::uint32_t from,
                double offer) {
    Group& group = groups_[g];
    const std::uint32_t* idx = group.by_global.find(global_conn);
    assert(idx != nullptr);
    SubConn& entry = group.cross[*idx];
    for (std::size_t k = 0; k < entry.peers.size(); ++k) {
      if (entry.peers[k] == from) {
        entry.peer_offers[k] = offer;
        break;
      }
    }
    double cap = kUnconstrained;
    for (double peer_offer : entry.peer_offers) cap = std::min(cap, peer_offer);
    if (std::abs(cap - entry.applied_cap) <= kOfferEpsilon) return;
    entry.applied_cap = cap;
    group.protocol->set_link_excess_capacity(entry.entry, cap);
  }

  ShardedConvergenceConfig config_;
  maxmin::Problem problem_;
  std::vector<Group> groups_;
  sim::ShardedRunner runner_;
  std::vector<std::size_t> owner_group_;          // per global link
  std::vector<maxmin::LinkIndex> local_index_;    // per global link
  // Per global connection: its (group, local protocol index) placements.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> placements_;
};

}  // namespace

ShardedConvergenceResult run_sharded_convergence(
    const ShardedConvergenceConfig& config) {
  ShardedMaxMin system(config);
  return system.run();
}

}  // namespace imrm::fault
