# Empty dependencies file for probabilistic_montecarlo_test.
# This may be replaced when dependencies are built.
