// The Figure 4 / Section 7.1 office mobility experiment.
//
// Recreates the measured environment: corridor decision point C -> D with
// targets office A, corridor E (toward office B), and corridors F/G. One
// "faculty" user, three "students" (occupants of B; the faculty member also
// occupies A), and a stream of background users walk the map with movement
// weights calibrated to the published handoff fractions. The experiment
// reports the simulated fan-out (to be compared with the measured
// 94/20/13 of 127, 12/173/31 of 218 and 39/17/1328 of 1384) and the
// accuracy of the three-level predictor observed online.
#pragma once

#include <array>
#include <cstdint>

#include "prediction/predictor.h"

namespace imrm::obs {
class Registry;
class Tracer;
}  // namespace imrm::obs

namespace imrm::experiments {

enum class PredictionMode {
  kThreeLevel,     // the paper's full hierarchy
  kAggregateOnly,  // ablation: only the cell profile's aggregate history
};

struct Fig4Config {
  double hours = 200.0;          // simulated duration
  int background_users = 12;
  double mean_dwell_minutes = 4.0;
  PredictionMode prediction = PredictionMode::kThreeLevel;
  std::uint64_t seed = 1;
  /// Optional observability: end-of-run metric export (sim.* totals,
  /// mobility.handoffs, fig4.* prediction counters) and simulator tracing.
  obs::Registry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

struct Fanout {
  std::size_t to_a = 0;
  std::size_t toward_b = 0;  // D -> E (the path into office B)
  std::size_t to_fg = 0;
  [[nodiscard]] std::size_t total() const { return to_a + toward_b + to_fg; }
};

struct Fig4Result {
  Fanout faculty;
  Fanout students;
  Fanout others;

  /// Online next-cell prediction accuracy, overall and per level.
  struct LevelStats {
    std::size_t predictions = 0;
    std::size_t correct = 0;
    [[nodiscard]] double accuracy() const {
      return predictions ? double(correct) / double(predictions) : 0.0;
    }
  };
  LevelStats portable_profile;
  LevelStats office_occupancy;
  LevelStats cell_aggregate;
  std::size_t unpredicted = 0;  // level-3 events (no prediction available)

  /// Reservation-waste comparison (paper conclusion: brute force in all
  /// neighbors is extremely wasteful). Counted per handoff: brute force
  /// reserves in every neighbor of the source cell; the predictive scheme
  /// reserves in one predicted cell.
  std::size_t brute_force_reservations = 0;
  std::size_t predictive_reservations = 0;
  std::size_t predictive_hits = 0;
  std::size_t total_handoffs = 0;
};

[[nodiscard]] Fig4Result run_fig4(const Fig4Config& config);

}  // namespace imrm::experiments
