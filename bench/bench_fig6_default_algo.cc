// Figure 6 reproduction: performance of the default (probabilistic)
// advance reservation algorithm.
//
// Two identical cells of capacity 40; type 1: b=1, arrival rate 30, mean
// holding 0.2; type 2: b=4, rate 1, holding 0.25; handoff probability 0.7.
// For each look-ahead window T, sweeping the target P_QOS traces a curve of
// handoff-dropping probability P_d versus new-connection blocking
// probability P_b. Expected shape (paper): P_b decreases as P_d grows, the
// curves coincide at large P_d, smaller T lies below larger T, and below
// T ~ 0.05 there is little further gain.
#include <iostream>

#include "experiments/twocell.h"
#include "stats/table.h"

using namespace imrm;
using namespace imrm::experiments;

int main() {
  std::cout << "== Figure 6: P_d vs P_b for the default reservation algorithm ==\n";
  std::cout << "capacity 40 | type1 b=1 rate=30 hold=0.2 | type2 b=4 rate=1 "
               "hold=0.25 | h=0.7\n\n";

  const double windows[] = {0.02, 0.05, 0.1, 0.2};
  const double p_qos_sweep[] = {0.0005, 0.001, 0.002, 0.005, 0.01,
                                0.02,   0.05,  0.1,   0.3,   0.9};

  stats::Table table({"T", "P_QOS", "P_b", "P_d", "new conns", "handoffs"});
  for (double window : windows) {
    for (double p_qos : p_qos_sweep) {
      TwoCellConfig config;
      config.window = window;
      config.p_qos = p_qos;
      config.duration = 2000.0;
      config.warmup = 50.0;
      config.seed = 3;
      const TwoCellResult r = run_twocell(config);
      table.add_row({stats::fmt(window, 2), stats::fmt(p_qos, 4),
                     stats::fmt(r.p_block(), 4), stats::fmt(r.p_drop(), 4),
                     std::to_string(r.new_attempts), std::to_string(r.handoff_attempts)});
    }
  }
  table.print(std::cout);

  std::cout << "\nCSV (for plotting the Figure 6 curve family):\n";
  table.print_csv(std::cout);

  std::cout << "\nReading: within each T block, loosening P_QOS moves down the\n"
               "curve (P_b falls, P_d rises); at large P_d all curves coincide\n"
               "(admission reduces to the physical fit); small-T curves dominate.\n";
  return 0;
}
