// Arrival processes: Poisson connection arrivals with exponential holding
// times — the workload of the Figure 6 experiment.
#pragma once

#include <functional>

#include "sim/random.h"
#include "sim/simulator.h"

namespace imrm::workload {

/// Schedules Poisson arrivals on the simulator until the horizon; each
/// arrival invokes the callback.
class PoissonArrivals {
 public:
  using Callback = std::function<void()>;

  PoissonArrivals(sim::Simulator& simulator, double rate, sim::SimTime horizon,
                  sim::Rng rng, Callback on_arrival)
      : simulator_(&simulator), rate_(rate), horizon_(horizon), rng_(std::move(rng)),
        on_arrival_(std::move(on_arrival)) {}

  /// Schedules the first arrival; the process then self-perpetuates.
  void start() { schedule_next(); }

  [[nodiscard]] std::size_t arrivals() const { return count_; }

 private:
  void schedule_next() {
    const double gap = rng_.exponential_rate(rate_);
    const sim::SimTime at = simulator_->now() + sim::Duration::seconds(gap);
    if (at > horizon_) return;
    simulator_->at(at, [this] {
      ++count_;
      on_arrival_();
      schedule_next();
    });
  }

  sim::Simulator* simulator_;
  double rate_;  // arrivals per second of simulated time
  sim::SimTime horizon_;
  sim::Rng rng_;
  Callback on_arrival_;
  std::size_t count_ = 0;
};

}  // namespace imrm::workload
