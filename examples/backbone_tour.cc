// Backbone tour: the full wired/wireless pipeline of Section 4 in one
// walkthrough — end-to-end Table 2 admission over a routed path, multicast
// warm-up toward neighbor cells, advance reservation on the predicted
// wireless link, handoff with re-routing, adaptation, and application
// renegotiation.
//
//   $ ./backbone_tour
#include <iostream>

#include "core/network_environment.h"
#include "mobility/floorplan.h"

using namespace imrm;

namespace {

qos::QosRequest video(qos::BitsPerSecond lo, qos::BitsPerSecond hi) {
  qos::QosRequest r;
  r.bandwidth = {lo, hi};
  // Generous end-to-end bounds: at b_min = 128 kbps the burst term
  // (sigma + n L)/b_min alone is ~0.6 s over the 4-hop path.
  r.delay_bound = 1.5;
  r.jitter_bound = 1.5;
  r.loss_bound = 0.05;
  r.traffic = {qos::bytes(4000), qos::bytes(1500)};
  return r;
}

}  // namespace

int main() {
  sim::Simulator simulator;
  core::BackboneConfig config;
  core::NetworkEnvironment env(mobility::fig4_environment(), simulator, config);
  const auto cells = mobility::fig4_cells(env.map());

  std::cout << "== Backbone tour ==\n";
  std::cout << "topology: " << env.topology().node_count() << " nodes, "
            << env.topology().link_count() << " directed links (server, core, area "
            << "switches, one base station + wireless link per cell)\n\n";

  // A user whose home office is A, in corridor C, streaming from the server.
  const auto user = env.add_portable(cells.c, cells.a);
  if (!env.open_connection(user, video(qos::kbps(128), qos::kbps(512)))) {
    std::cerr << "admission failed\n";
    return 1;
  }
  std::cout << "connection admitted end-to-end (Table 2, " << "WFQ); allocated "
            << env.allocated(user) / 1e3 << " kbps\n";
  std::cout << "multicast branches warmed: " << env.stats().multicast_branches_admitted
            << " (one per neighbor of C)\n";

  // Dwell until static: adaptation raises the allocation toward b_max.
  simulator.run_until(sim::SimTime::minutes(5));
  env.adapt();
  std::cout << "after 5 quiet minutes (static): allocated "
            << env.allocated(user) / 1e3 << " kbps\n";

  // Walk to the corridor junction, then into the office.
  env.handoff(user, cells.d);
  std::cout << "handoff C->D: warm=" << env.stats().warm_handoffs
            << ", advance reservation on office A's wireless link: "
            << env.network().link(env.wireless_link(cells.a)).advance_reserved() / 1e3
            << " kbps\n";
  env.handoff(user, cells.a);
  std::cout << "handoff D->A: reservations consumed so far: "
            << env.stats().reservations_consumed
            << ", drops: " << env.stats().handoff_drops << '\n';

  // The application upgrades its own bounds (e.g. switching video quality).
  if (env.renegotiate(user, video(qos::kbps(256), qos::mbps(1.2)))) {
    simulator.run_until(sim::SimTime::minutes(12));
    env.adapt();
    std::cout << "renegotiated to [256, 1200] kbps; now allocated "
              << env.allocated(user) / 1e3 << " kbps\n";
  }

  env.close_connection(user);
  std::cout << "closed; network carries " << env.network().connection_count()
            << " connections\n";
  return 0;
}
