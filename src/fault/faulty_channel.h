// Lossy control-plane transport (ISSUE 3 tentpole, part 1).
//
// FaultyChannel sits between a distributed protocol and the simulator and
// perturbs every control message according to a per-channel LinkFaultModel:
// Bernoulli or Gilbert-Elliott drop, bounded uniform extra delay, forced
// reordering (the message is held long enough for later sends to overtake
// it), and duplication. A FaultSchedule can additionally take whole channels
// down, in which case everything sent over them is dropped until the channel
// heals.
//
// Determinism: the channel owns a forked sim::Rng and draws from it only for
// messages whose effective model is non-trivial. With every probability at
// zero the send path short-circuits to a direct simulator schedule — no
// draws, no extra events — so a zero-fault run is byte-identical to using
// DirectTransport (acceptance criterion of ISSUE 3).
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_model.h"
#include "fault/transport.h"
#include "sim/checkpoint.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace imrm::obs {
class Registry;
class Counter;
}  // namespace imrm::obs

namespace imrm::fault {

class FaultyChannel final : public Transport {
 public:
  FaultyChannel(sim::Simulator& simulator, sim::Rng rng, LinkFaultModel default_model = {})
      : simulator_(&simulator), rng_(std::move(rng)), default_model_(default_model) {}

  /// Replaces the model applied to channels without a per-channel override.
  /// Setting a trivial model mid-run "heals" the control plane: subsequent
  /// sends flow through untouched (per-channel overrides are cleared too).
  void set_default_model(const LinkFaultModel& model) {
    default_model_ = model;
    for (ChannelState& ch : channels_) ch.has_model = false;
  }

  void set_model(Channel channel, const LinkFaultModel& model) {
    ChannelState& ch = state(channel);
    ch.model = model;
    ch.has_model = true;
  }

  /// FaultSchedule hook: a down channel drops every message outright.
  void set_channel_up(Channel channel, bool up) { state(channel).up = up; }
  [[nodiscard]] bool channel_up(Channel channel) const {
    return channel >= channels_.size() || channels_[channel].up;
  }

  /// Caches `fault.channel.*` counters from `registry` (nullptr detaches).
  /// Instruments are only registered while bound, so unfaulted runs never
  /// grow their RunReport.
  void bind_metrics(obs::Registry* registry);

  void send(Channel channel, sim::Duration latency,
            sim::EventQueue::Callback deliver) override;

  // Totals, independent of metric binding (used by tests).
  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t dropped_down() const { return dropped_down_; }
  [[nodiscard]] std::uint64_t duplicated() const { return duplicated_; }
  [[nodiscard]] std::uint64_t reordered() const { return reordered_; }
  [[nodiscard]] std::uint64_t delayed() const { return delayed_; }

  // --- checkpoint/restore (ISSUE 4) ---------------------------------------
  // Saves the default model, per-channel state (override model, loss-chain
  // state, up/down), and the send/drop totals. The RNG stream is deliberately
  // NOT saved: the warm-fork scheme checkpoints a phase in which the trivial
  // model drew nothing, so each forked variant keeps the channel RNG derived
  // from its OWN seed — the checkpoint stays seed-independent and one warm
  // image serves every variant.
  void save_state(sim::CheckpointWriter& w) const;
  void restore_state(sim::CheckpointReader& r);

 private:
  struct ChannelState {
    LinkFaultModel model;
    LossProcess loss;
    bool has_model = false;
    bool up = true;
  };

  ChannelState& state(Channel channel) {
    if (channel >= channels_.size()) channels_.resize(channel + 1);
    return channels_[channel];
  }

  sim::Simulator* simulator_;
  sim::Rng rng_;
  LinkFaultModel default_model_;
  std::vector<ChannelState> channels_;

  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t dropped_down_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t delayed_ = 0;

  obs::Counter* sent_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Counter* dropped_down_counter_ = nullptr;
  obs::Counter* duplicated_counter_ = nullptr;
  obs::Counter* reordered_counter_ = nullptr;
  obs::Counter* delayed_counter_ = nullptr;
};

}  // namespace imrm::fault
