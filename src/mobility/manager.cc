#include "mobility/manager.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "obs/metrics.h"

namespace imrm::mobility {

void MobilityManager::bind_metrics(obs::Registry& registry) {
  handoff_counter_ = &registry.counter("mobility.handoffs");
}

void MobilityManager::bind_latency_metrics(obs::Registry& registry) {
  handoff_wall_us_ = &registry.histogram(
      "mobility.handoff_wall_us", obs::HistogramSpec::log2(0.01, 1e5, 4));
}

void MobilityManager::index_insert(PortableId id, CellId cell) {
  if (cell.value() >= residents_by_cell_.size()) {
    residents_by_cell_.resize(cell.value() + 1);
  }
  if (id.value() >= position_in_cell_.size()) {
    position_in_cell_.resize(id.value() + 1, 0);
  }
  auto& bucket = residents_by_cell_[cell.value()];
  position_in_cell_[id.value()] = std::uint32_t(bucket.size());
  bucket.push_back(id);
}

void MobilityManager::index_remove(PortableId id, CellId cell) {
  auto& bucket = residents_by_cell_[cell.value()];
  const std::uint32_t pos = position_in_cell_[id.value()];
  assert(pos < bucket.size() && bucket[pos] == id);
  if (pos + 1 != bucket.size()) {
    bucket[pos] = bucket.back();
    position_in_cell_[bucket[pos].value()] = pos;
  }
  bucket.pop_back();
}

PortableId MobilityManager::add_portable(CellId start) {
  const PortableId id{static_cast<PortableId::underlying>(portables_.size())};
  Portable p;
  p.id = id;
  p.current_cell = start;
  p.entered_cell = simulator_->now();
  portables_.push_back(p);
  index_insert(id, start);
  return id;
}

void MobilityManager::move(PortableId id, CellId to) {
  Portable& p = portable(id);
  assert(map_->cell(p.current_cell).is_neighbor(to) &&
         "handoffs only occur between neighboring cells");

  HandoffEvent event;
  event.portable = id;
  event.from = p.current_cell;
  event.to = to;
  event.prev_of_from = p.previous_cell;
  event.time = simulator_->now();

  index_remove(id, p.current_cell);
  index_insert(id, to);
  p.previous_cell = p.current_cell;
  p.current_cell = to;
  p.entered_cell = simulator_->now();

  if (handoff_counter_) handoff_counter_->add();
  if (obs::Tracer* tracer = simulator_->tracer(); tracer && tracer->enabled()) {
    if (trace_handoff_name_ == obs::kInvalidName) {
      trace_handoff_name_ = tracer->intern("handoff", "mobility");
    }
    tracer->instant(event.time, trace_handoff_name_, std::uint32_t(id.value()),
                    double(to.value()));
  }

  if (handoff_wall_us_) {
    const auto wall_start = std::chrono::steady_clock::now();
    for (const HandoffListener& listener : listeners_) listener(event);
    const auto wall_end = std::chrono::steady_clock::now();
    handoff_wall_us_->record(
        std::chrono::duration<double, std::micro>(wall_end - wall_start).count());
  } else {
    for (const HandoffListener& listener : listeners_) listener(event);
  }
}

void MobilityManager::save_state(sim::CheckpointWriter& w) const {
  w.u64(portables_.size());
  for (const Portable& p : portables_) {
    w.u32(p.id.value());
    w.u32(p.current_cell.value());
    w.u32(p.previous_cell.value());
    w.time(p.entered_cell);
    w.boolean(p.home_office.has_value());
    w.u32(p.home_office ? p.home_office->value() : CellId::invalid().value());
  }
}

void MobilityManager::restore_state(sim::CheckpointReader& r) {
  portables_.clear();
  portables_.resize(std::size_t(r.u64()));
  residents_by_cell_.clear();
  position_in_cell_.clear();
  for (Portable& p : portables_) {
    p.id = PortableId{r.u32()};
    p.current_cell = CellId{r.u32()};
    p.previous_cell = CellId{r.u32()};
    p.entered_cell = r.time();
    const bool has_home = r.boolean();
    const CellId home{r.u32()};
    p.home_office = has_home ? std::optional<CellId>(home) : std::nullopt;
    index_insert(p.id, p.current_cell);
  }
}

std::vector<PortableId> MobilityManager::portables_in(CellId cell) const {
  std::vector<PortableId> out = residents(cell);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t MobilityManager::memory_bytes() const {
  std::size_t total = portables_.capacity() * sizeof(Portable) +
                      position_in_cell_.capacity() * sizeof(std::uint32_t) +
                      residents_by_cell_.capacity() * sizeof(std::vector<PortableId>);
  for (const auto& bucket : residents_by_cell_) {
    total += bucket.capacity() * sizeof(PortableId);
  }
  return total;
}

}  // namespace imrm::mobility
