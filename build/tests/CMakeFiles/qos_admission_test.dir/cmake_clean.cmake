file(REMOVE_RECURSE
  "CMakeFiles/qos_admission_test.dir/qos_admission_test.cc.o"
  "CMakeFiles/qos_admission_test.dir/qos_admission_test.cc.o.d"
  "qos_admission_test"
  "qos_admission_test.pdb"
  "qos_admission_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_admission_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
