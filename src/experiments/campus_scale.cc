#include "experiments/campus_scale.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "experiments/scale_workload.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "prediction/cell_classifier.h"
#include "prediction/predictor.h"
#include "profiles/profile_server.h"
#include "reservation/directory.h"
#include "sim/random.h"
#include "workload/class_schedule.h"
#include "workload/connection_mix.h"

namespace imrm::experiments {

namespace {

using net::CellId;
using net::PortableId;

constexpr std::uint32_t kNoCell = CellId::invalid().value();

using Milestone = detail::ScaleMilestone;
constexpr std::size_t kMilestonesPerPortable = detail::kScaleMilestonesPerPortable;

struct Mover {
  std::uint32_t to;
  std::uint32_t portable;
  std::uint32_t from;
  bool operator<(const Mover& o) const {
    return to != o.to ? to < o.to : portable < o.portable;
  }
};

class ScaleSim {
 public:
  explicit ScaleSim(const CampusScaleConfig& config)
      : cfg_(config),
        map_(scale_grid_floorplan(config.cells)),
        side_(detail::scale_grid_side(config.cells)),
        server_(net::ZoneId{0}),
        predictor_(map_, server_) {
    for (const mobility::Cell& cell : map_.cells()) {
      directory_.add_cell(cell.id, cfg_.cell_capacity_bps);
    }
    if (cfg_.metrics) directory_.bind_metrics(*cfg_.metrics);

    obs_slot_.assign(map_.size(), -1);
    for (CellId room : map_.cells_of_class(mobility::CellClass::kMeetingRoom)) {
      obs_slot_[room.value()] = int(room_obs_.size());
      room_obs_.emplace_back();
    }

    const std::size_t n = cfg_.portables;
    current_.assign(n, kNoCell);
    prev_.assign(n, kNoCell);
    target_.assign(n, kNoCell);
    connected_.assign(n, 0);
    alive_.assign(n, 0);
    cursor_.assign(n, 0);
    last_reserved_.assign(n, kNoCell);
    occupancy_.assign(map_.size(), 0);

    const double tick_s = std::max(cfg_.tick.to_seconds(), 1e-3);
    n_ticks_ = std::size_t(cfg_.duration.to_seconds() / tick_s) + 1;
    buckets_.resize(n_ticks_);

    generate_workload();
  }

  CampusScaleResult run() {
    prof_on_ = cfg_.profiler != nullptr && cfg_.profiler->enabled();
    const std::uint64_t run0 = prof_on_ ? obs::Profiler::now_ns() : 0;
    obs::ProgressMeter* progress = cfg_.progress;
    for (std::size_t t = 0; t < n_ticks_; ++t) {
      run_tick(t);
      if (progress != nullptr && progress->armed()) {
        progress->maybe_emit(double(t + 1) / double(n_ticks_), r_.events);
      }
    }
    if (prof_on_) loop_ns_ = obs::Profiler::now_ns() - run0;
    // End-of-sim flush: force the remaining milestones (ascending portable
    // id, deterministic) so every portable departs — connections released,
    // classifier eviction executed — even when clamped times land on the
    // final tick.
    const double end = cfg_.duration.to_seconds();
    const sim::SimTime end_t = sim::SimTime::seconds(end);
    for (std::uint32_t p = 0; p < cfg_.portables; ++p) {
      if (alive_[p] != 2) fire_milestones(p, end, end_t);
    }
    return finish();
  }

 private:
  // --- workload generation (engine-independent and shared with the sharded
  // --- engine, so every engine sees the exact same milestone arena and
  // --- demands; see scale_workload.h) -------------------------------------
  void generate_workload() {
    detail::ScaleWorkload w =
        detail::generate_scale_workload(cfg_, map_, &server_);
    home_ = std::move(w.home);
    room_ = std::move(w.room);
    demand_ = std::move(w.demand);
    arena_ = std::move(w.arena);
    // Each portable's first wakeup is its appear milestone; run_tick sorts
    // the due list, so bucket fill order is immaterial.
    for (std::uint32_t p = 0; p < cfg_.portables; ++p) {
      schedule_at(p, arena_[p * kMilestonesPerPortable].time, /*after_tick=*/0);
    }
  }

  void schedule_at(std::uint32_t portable, double when, std::size_t after_tick) {
    if (after_tick >= n_ticks_) return;  // past the horizon; the flush handles it
    const double tick_s = std::max(cfg_.tick.to_seconds(), 1e-3);
    // Ceil: the wakeup tick must not precede the milestone it serves.
    std::size_t idx = std::size_t(std::ceil(when / tick_s));
    idx = std::clamp(idx, after_tick, n_ticks_ - 1);
    buckets_[idx].push_back(portable);
  }

  // --- per-tick processing -------------------------------------------------
  void run_tick(std::size_t t) {
    ++r_.ticks;
    std::vector<std::uint32_t> due = std::move(buckets_[t]);
    if (due.empty()) return;
    std::sort(due.begin(), due.end());
    const double now = double(t) * cfg_.tick.to_seconds();
    const sim::SimTime now_t = sim::SimTime::seconds(now);

    // Phase A: fire due milestones and collect movement intents. Only the
    // scheduled portables are touched — O(active movers), never O(M).
    movers_.clear();
    for (const std::uint32_t p : due) {
      fire_milestones(p, now, now_t);
      if (alive_[p] == 0) {  // not appeared yet; wait for its first milestone
        schedule_next_milestone(p, t);
        continue;
      }
      if (alive_[p] == 2) continue;  // departed
      if (current_[p] != target_[p]) {
        movers_.push_back({route_next(current_[p], target_[p]), p, current_[p]});
      } else {
        schedule_next_milestone(p, t);
      }
    }
    if (movers_.empty()) return;

    // Phase B: one dispatcher pass over the movers, grouped per destination
    // cell — the canonical admission order both engines share.
    std::sort(movers_.begin(), movers_.end());
    std::size_t i = 0;
    while (i < movers_.size()) {
      std::size_t j = i;
      while (j < movers_.size() && movers_[j].to == movers_[i].to) ++j;
      process_destination_group(i, j, t, now_t);
      i = j;
    }
  }

  void fire_milestones(std::uint32_t p, double now, sim::SimTime now_t) {
    Milestone* m = &arena_[p * kMilestonesPerPortable];
    while (alive_[p] != 2 && cursor_[p] < kMilestonesPerPortable &&
           m[cursor_[p]].time <= now) {
      const Milestone& ms = m[cursor_[p]];
      ++cursor_[p];
      ++r_.events;
      switch (ms.kind) {
        case Milestone::kAppear: {
          alive_[p] = 1;
          current_[p] = home_[p];
          prev_[p] = kNoCell;
          target_[p] = gateway_of(room_[p]);
          ++occupancy_[home_[p]];
          reservation::CellBandwidth& account = directory_.at(CellId{home_[p]});
          const std::uint64_t a0 = prof_on_ ? obs::Profiler::now_ns() : 0;
          const bool ok = account.admit_new(PortableId{p}, demand_[p]);
          if (prof_on_) {
            admission_ns_ += obs::Profiler::now_ns() - a0;
            ++admission_calls_;
          }
          connected_[p] = ok ? 1 : 0;
          if (ok && account.active_connections() == 1) ++busy_cells_;
          ok ? ++r_.new_admitted : ++r_.new_blocked;
          mix_outcome(0x11, p, home_[p], ok);
          break;
        }
        case Milestone::kEnter:
          target_[p] = room_[p];
          break;
        case Milestone::kLeave:
          target_[p] = home_[p];
          break;
        case Milestone::kDepart: {
          const std::uint32_t cur = current_[p];
          if (connected_[p]) release_connection(p, cur);
          cancel_stale_reservation(p, kNoCell);
          if (obs_slot_[cur] >= 0) {
            room_obs_[obs_slot_[cur]].record_exit(PortableId{p}, now_t,
                                                  /*pass_through=*/false);
          }
          const int slot = obs_slot_[room_[p]];
          if (slot >= 0) room_obs_[slot].record_final_departure(PortableId{p});
          --occupancy_[cur];
          // Clear the position so the naive engine's roster scan agrees
          // with the maintained occupancy counts.
          current_[p] = kNoCell;
          target_[p] = kNoCell;
          alive_[p] = 2;
          ++r_.departures;
          mix_outcome(0x44, p, cur, true);
          break;
        }
      }
    }
  }

  void schedule_next_milestone(std::uint32_t p, std::size_t t) {
    if (cursor_[p] >= kMilestonesPerPortable) return;
    schedule_at(p, arena_[p * kMilestonesPerPortable + cursor_[p]].time, t + 1);
  }

  void process_destination_group(std::size_t begin, std::size_t end, std::size_t t,
                                 sim::SimTime now_t) {
    const std::uint32_t to = movers_[begin].to;
    // kSoa fetches the destination account and observation slot once per
    // group; kNaive re-derives its picture per mover below.
    reservation::CellBandwidth& dest = directory_.at(CellId{to});
    const int dest_obs = obs_slot_[to];

    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t p = movers_[i].portable;
      const std::uint32_t from = movers_[i].from;

      // Destination occupancy before admission + busy-cell count: the SoA
      // engine reads its O(1) bookkeeping; the naive engine rescans the
      // whole roster and every cell account, the pre-SoA way. Both are the
      // same integers and both feed the outcome hash.
      std::uint64_t occ_before;
      std::uint64_t busy;
      if (cfg_.engine == ScaleEngine::kSoa) {
        occ_before = occupancy_[to];
        busy = busy_cells_;
      } else {
        // Literal pre-SoA portables_in: scan the whole roster, materialize
        // and sort the resident list, then read its size.
        naive_residents_.clear();
        for (std::uint32_t q = 0; q < std::uint32_t(current_.size()); ++q) {
          if (current_[q] == to) naive_residents_.push_back(q);
        }
        std::sort(naive_residents_.begin(), naive_residents_.end());
        occ_before = naive_residents_.size();
        busy = 0;
        directory_.for_each_cell([&busy](CellId, const reservation::CellBandwidth& cell) {
          busy += cell.active_connections() > 0;
        });
      }

      bool admitted = false;
      if (connected_[p]) {
        const std::uint64_t a0 = prof_on_ ? obs::Profiler::now_ns() : 0;
        release_connection(p, from);
        admitted = dest.admit_handoff(PortableId{p}, demand_[p]);
        if (prof_on_) {
          admission_ns_ += obs::Profiler::now_ns() - a0;
          ++admission_calls_;
        }
        if (admitted) {
          connected_[p] = 1;
          ++r_.handoff_admitted;
          if (dest.active_connections() == 1) ++busy_cells_;
        } else {
          ++r_.handoff_dropped;
        }
      }
      {
        const std::uint64_t c0 = prof_on_ ? obs::Profiler::now_ns() : 0;
        cancel_stale_reservation(p, to);
        if (prof_on_) reservation_ns_ += obs::Profiler::now_ns() - c0;
      }

      --occupancy_[from];
      ++occupancy_[to];
      const std::uint32_t prev2 = prev_[p];
      prev_[p] = from;
      current_[p] = to;
      ++r_.handoffs;
      ++r_.events;

      server_.record_handoff(PortableId{p}, CellId{prev2}, CellId{from}, CellId{to});
      if (obs_slot_[from] >= 0) {
        room_obs_[obs_slot_[from]].record_exit(PortableId{p}, now_t,
                                               /*pass_through=*/prev2 != to);
      }
      if (dest_obs >= 0) room_obs_[dest_obs].record_entry(PortableId{p}, now_t);

      // Advance reservation on the admission path: predict the next cell
      // from the (now cache-resident) profiles and park bandwidth there.
      if (connected_[p]) {
        const std::uint64_t p0 = prof_on_ ? obs::Profiler::now_ns() : 0;
        const prediction::Prediction pred =
            predictor_.predict(PortableId{p}, CellId{from}, CellId{to});
        if (prof_on_) {
          prediction_ns_ += obs::Profiler::now_ns() - p0;
          ++prediction_calls_;
        }
        if (pred.next_cell && directory_.has(*pred.next_cell)) {
          const std::uint64_t rs0 = prof_on_ ? obs::Profiler::now_ns() : 0;
          directory_.at(*pred.next_cell).reserve_for(PortableId{p}, demand_[p]);
          if (prof_on_) {
            reservation_ns_ += obs::Profiler::now_ns() - rs0;
            ++reservation_calls_;
          }
          last_reserved_[p] = pred.next_cell->value();
          ++r_.reservations_placed;
        }
      }

      mix_outcome(0x22, p, (std::uint64_t(from) << 20) | to, admitted);
      mix(occ_before);
      mix(busy);

      if (current_[p] == target_[p]) {
        schedule_next_milestone(p, t);
      } else if (t + 1 < n_ticks_) {
        buckets_[t + 1].push_back(p);  // keep walking next tick
      }
    }
  }

  void release_connection(std::uint32_t p, std::uint32_t cell) {
    reservation::CellBandwidth& account = directory_.at(CellId{cell});
    account.release(PortableId{p});
    connected_[p] = 0;
    if (account.active_connections() == 0 && busy_cells_ > 0) --busy_cells_;
  }

  /// Drops the advance reservation left in a cell the portable is no longer
  /// headed to. A reservation in `arrived` was consumed by admit_handoff.
  void cancel_stale_reservation(std::uint32_t p, std::uint32_t arrived) {
    const std::uint32_t held = last_reserved_[p];
    if (held == kNoCell) return;
    if (held != arrived) directory_.at(CellId{held}).cancel_reservation(PortableId{p});
    last_reserved_[p] = kNoCell;
  }

  // --- routing on the grid (shared with the sharded engine) ----------------
  std::uint32_t route_next(std::uint32_t from, std::uint32_t to) const {
    return detail::route_next(side_, from, to);
  }
  std::uint32_t gateway_of(std::uint32_t room) const {
    return detail::gateway_of(side_, room);
  }

  // --- outcome digest ------------------------------------------------------
  void mix(std::uint64_t v) {
    hash_ ^= v + 0x9e3779b97f4a7c15ULL + (hash_ << 6) + (hash_ >> 2);
  }
  void mix_outcome(std::uint64_t tag, std::uint32_t p, std::uint64_t detail, bool ok) {
    mix((tag << 56) | (std::uint64_t(p) << 24) | (ok ? 1 : 0));
    mix(detail);
  }

  // --- reporting -----------------------------------------------------------
  std::size_t state_bytes() const {
    std::size_t total = directory_.memory_bytes() + server_.memory_bytes();
    for (const prediction::CellObservations& obs : room_obs_) {
      total += obs.memory_bytes();
    }
    total += home_.capacity() * sizeof(std::uint32_t) * 5;  // home/room/current/prev/target
    total += last_reserved_.capacity() * sizeof(std::uint32_t);
    total += demand_.capacity() * sizeof(double);
    total += connected_.capacity() + alive_.capacity() + cursor_.capacity();
    total += arena_.capacity() * sizeof(Milestone);
    total += occupancy_.capacity() * sizeof(std::uint32_t);
    total += buckets_.capacity() * sizeof(std::vector<std::uint32_t>);
    for (const auto& bucket : buckets_) {
      total += bucket.capacity() * sizeof(std::uint32_t);
    }
    return total;
  }

  CampusScaleResult finish() {
    r_.outcome_hash = hash_;
    r_.state_bytes = state_bytes();
    r_.bytes_per_portable =
        cfg_.portables ? double(r_.state_bytes) / double(cfg_.portables) : 0.0;
    if (obs::Registry* reg = cfg_.metrics) {
      reg->counter("scale.events").add(r_.events);
      reg->counter("scale.ticks").add(r_.ticks);
      reg->counter("scale.handoffs").add(r_.handoffs);
      reg->counter("scale.new.admitted").add(r_.new_admitted);
      reg->counter("scale.new.blocked").add(r_.new_blocked);
      reg->counter("scale.handoff.admitted").add(r_.handoff_admitted);
      reg->counter("scale.handoff.dropped").add(r_.handoff_dropped);
      reg->counter("scale.reservations").add(r_.reservations_placed);
      reg->counter("scale.departures").add(r_.departures);
      reg->gauge("scale.state_bytes").set(double(r_.state_bytes));
      reg->gauge("scale.bytes_per_portable").set(r_.bytes_per_portable);
      reg->gauge("sim.time_seconds").set(cfg_.duration.to_seconds());
      reg->counter("sim.events_fired").add(r_.events);
    }
    if (prof_on_) {
      // The tick loop splits into the paper's four resource-management
      // phases; whatever the fine-grained probes did not claim (milestone
      // firing, routing, occupancy bookkeeping, observation records) is the
      // mobility share.
      obs::Profiler& prof = *cfg_.profiler;
      const std::uint64_t claimed =
          admission_ns_ + prediction_ns_ + reservation_ns_;
      prof.record(prof.intern("scale.mobility"),
                  loop_ns_ - std::min(claimed, loop_ns_), r_.ticks);
      prof.record(prof.intern("scale.admission"), admission_ns_, admission_calls_);
      prof.record(prof.intern("scale.prediction"), prediction_ns_, prediction_calls_);
      prof.record(prof.intern("scale.reservation"), reservation_ns_,
                  reservation_calls_);
    }
    return r_;
  }

  CampusScaleConfig cfg_;
  mobility::CellMap map_;
  std::size_t side_;
  reservation::ReservationDirectory directory_;
  profiles::ProfileServer server_;
  prediction::ThreeLevelPredictor predictor_;

  // SoA portable state, indexed by portable id.
  std::vector<std::uint32_t> home_, room_, current_, prev_, target_;
  std::vector<double> demand_;
  std::vector<std::uint8_t> connected_;
  std::vector<std::uint8_t> alive_;  // 0 unborn, 1 active, 2 departed
  std::vector<std::uint8_t> cursor_;
  std::vector<std::uint32_t> last_reserved_;
  std::vector<Milestone> arena_;  // stride kMilestonesPerPortable per portable

  // O(1) bookkeeping the SoA engine reads; the naive engine recomputes.
  std::vector<std::uint32_t> occupancy_;
  std::uint64_t busy_cells_ = 0;

  // Meeting-room observations for the cell classifier (bounded by S2's
  // final-departure eviction).
  std::vector<int> obs_slot_;
  std::vector<prediction::CellObservations> room_obs_;

  // Tick-indexed wakeup calendar; each live portable has exactly one
  // pending wakeup.
  std::size_t n_ticks_ = 0;
  std::vector<std::vector<std::uint32_t>> buckets_;
  std::vector<Mover> movers_;
  std::vector<std::uint32_t> naive_residents_;  // kNaive's scratch roster scan

  std::uint64_t hash_ = 0x6a09e667f3bcc908ULL;
  CampusScaleResult r_;

  // Wall-clock phase accounting (ISSUE 7); all zero-cost unless prof_on_.
  bool prof_on_ = false;
  std::uint64_t loop_ns_ = 0;
  std::uint64_t admission_ns_ = 0, admission_calls_ = 0;
  std::uint64_t prediction_ns_ = 0, prediction_calls_ = 0;
  std::uint64_t reservation_ns_ = 0, reservation_calls_ = 0;
};

}  // namespace

namespace detail {

std::size_t scale_grid_side(std::size_t cells) {
  std::size_t side = std::size_t(std::ceil(std::sqrt(double(cells))));
  return std::max<std::size_t>(side, 1);
}

ScaleWorkload generate_scale_workload(const CampusScaleConfig& cfg,
                                      const mobility::CellMap& map,
                                      profiles::ProfileServer* calendar) {
  ScaleWorkload w;
  const std::size_t n = cfg.portables;
  w.home.assign(n, kNoCell);
  w.room.assign(n, kNoCell);
  w.demand.assign(n, 0.0);
  w.arena.assign(n * kScaleMilestonesPerPortable, ScaleMilestone{});

  sim::Rng rng(cfg.seed);
  const workload::ConnectionMix mix = workload::paper_fig5_mix();
  const double dur = cfg.duration.to_seconds();
  const auto clamp_time = [dur](sim::SimTime t) {
    return std::clamp(t.to_seconds(), 0.0, dur);
  };

  std::vector<CellId> offices = map.cells_of_class(mobility::CellClass::kOffice);
  std::vector<CellId> rooms = map.cells_of_class(mobility::CellClass::kMeetingRoom);
  if (offices.empty()) offices = map.cells_of_class(mobility::CellClass::kCorridor);
  assert(!offices.empty() && !rooms.empty());

  // Class periods: 25-minute classes every 40 minutes, first at t=10min;
  // short runs get one period in the middle of the window.
  std::vector<std::pair<double, double>> periods;
  for (double start = 600.0; start + 2100.0 <= dur; start += 2400.0) {
    periods.emplace_back(start, start + 1500.0);
  }
  if (periods.empty()) periods.emplace_back(0.30 * dur, 0.60 * dur);

  // Assign each portable a home office, a meeting room, and one class
  // period; group attendees per (room, period) so one class workload draw
  // covers the whole group.
  const std::size_t groups = rooms.size() * periods.size();
  std::vector<std::vector<std::uint32_t>> group_members(groups);
  for (std::uint32_t p = 0; p < cfg.portables; ++p) {
    w.home[p] = offices[p % offices.size()].value();
    const std::size_t ri = p % rooms.size();
    const std::size_t pi = (p / rooms.size()) % periods.size();
    w.room[p] = rooms[ri].value();
    group_members[ri * periods.size() + pi].push_back(p);
  }

  for (std::size_t ri = 0; ri < rooms.size(); ++ri) {
    for (std::size_t pi = 0; pi < periods.size(); ++pi) {
      const std::vector<std::uint32_t>& members =
          group_members[ri * periods.size() + pi];
      if (members.empty()) continue;
      profiles::Meeting meeting;
      meeting.start = sim::SimTime::seconds(periods[pi].first);
      meeting.stop = sim::SimTime::seconds(periods[pi].second);
      meeting.attendees = members.size();
      if (calendar != nullptr) calendar->calendar(rooms[ri]).book(meeting);

      workload::ClassScheduleConfig schedule;
      schedule.meeting = meeting;
      schedule.passby_per_minute = 0.0;  // pass-by walkers not modeled here
      const workload::ClassWorkload plan =
          workload::generate_class_workload(schedule, rng);
      assert(plan.attendees.size() == members.size());
      for (std::size_t j = 0; j < members.size(); ++j) {
        const std::uint32_t p = members[j];
        const workload::AttendeePlan& a = plan.attendees[j];
        ScaleMilestone* m = &w.arena[p * kScaleMilestonesPerPortable];
        m[0] = {clamp_time(a.arrive_corridor), ScaleMilestone::kAppear};
        m[1] = {clamp_time(a.enter_room), ScaleMilestone::kEnter};
        m[2] = {clamp_time(a.leave_room), ScaleMilestone::kLeave};
        m[3] = {clamp_time(a.depart), ScaleMilestone::kDepart};
        w.demand[p] = mix.sample(rng);
      }
    }
  }
  return w;
}

}  // namespace detail

mobility::CellMap scale_grid_floorplan(std::size_t cells) {
  assert(cells >= 2);
  const std::size_t side = detail::scale_grid_side(cells);

  // First pass: pick classes. Corridor rows every third row; other cells
  // cycle offices with meeting rooms and cafeterias sprinkled in. Guarantee
  // at least one office and one meeting room even on degenerate grids.
  std::vector<mobility::CellClass> classes(cells);
  std::size_t offices = 0, rooms = 0;
  for (std::size_t i = 0; i < cells; ++i) {
    const std::size_t r = i / side;
    if (r % 3 == 0) {
      classes[i] = mobility::CellClass::kCorridor;
    } else if (i % 5 == 2) {
      classes[i] = mobility::CellClass::kMeetingRoom;
      ++rooms;
    } else if (i % 11 == 4) {
      classes[i] = mobility::CellClass::kCafeteria;
    } else {
      classes[i] = mobility::CellClass::kOffice;
      ++offices;
    }
  }
  if (rooms == 0) classes[cells - 1] = mobility::CellClass::kMeetingRoom;
  if (offices == 0 && cells >= 2) {
    if (classes[cells - 2] != mobility::CellClass::kMeetingRoom || rooms > 0) {
      classes[cells - 2] = mobility::CellClass::kOffice;
    } else {
      classes[cells - 1] = mobility::CellClass::kOffice;
      classes[cells - 2] = mobility::CellClass::kMeetingRoom;
    }
  }

  mobility::CellMap map;
  for (std::size_t i = 0; i < cells; ++i) {
    const std::size_t r = i / side, c = i % side;
    map.add_cell(classes[i], "g" + std::to_string(r) + "_" + std::to_string(c));
  }
  for (std::size_t i = 0; i < cells; ++i) {
    const std::size_t r = i / side, c = i % side;
    // Horizontal edges along corridor rows (row 0 is the routing backbone).
    if (r % 3 == 0 && c + 1 < side && i + 1 < cells) {
      map.connect(CellId{std::uint32_t(i)}, CellId{std::uint32_t(i + 1)});
    }
    if (i + side < cells) {
      map.connect(CellId{std::uint32_t(i)}, CellId{std::uint32_t(i + side)});
    }
  }
  assert(map.neighbor_relation_valid());
  return map;
}

CampusScaleResult run_campus_scale(const CampusScaleConfig& config) {
  ScaleSim sim(config);
  return sim.run();
}

}  // namespace imrm::experiments
