#include "core/environment.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "maxmin/waterfill.h"

namespace imrm::core {

Environment::Environment(mobility::CellMap map, sim::Simulator& simulator,
                         EnvironmentConfig config)
    : map_(std::move(map)), simulator_(&simulator), config_(config),
      mobility_(map_, simulator, config.static_threshold),
      profiles_(net::ZoneId{0}),
      predictor_(map_, profiles_) {
  for (const mobility::Cell& cell : map_.cells()) {
    directory_.add_cell(cell.id, config_.cell_capacity);
    directory_.at(cell.id).set_anonymous_reservation(config_.b_dyn_fraction *
                                                     config_.cell_capacity);
  }
  mobility_.on_handoff([this](const mobility::HandoffEvent& event) {
    profiles_.record_handoff(event);
    ++stats_.handoffs;
  });
}

PortableId Environment::add_portable(CellId start, std::optional<CellId> home_office) {
  const PortableId id = mobility_.add_portable(start);
  if (home_office.has_value()) {
    mobility_.portable(id).home_office = home_office;
    map_.add_occupant(*home_office, id);
  }
  return id;
}

bool Environment::open_connection(PortableId portable, qos::BandwidthRange bounds) {
  assert(bounds.valid());
  assert(!connections_.contains(portable));
  const CellId cell = mobility_.portable(portable).current_cell;
  reservation::CellBandwidth& account = directory_.at(cell);

  bool admitted = account.admit_new(portable, bounds.b_min);
  if (!admitted) {
    // Resource conflict (Section 5.2): squeeze ongoing connections back to
    // their guaranteed minima and retry before rejecting.
    squeeze_cell(cell);
    admitted = account.admit_new(portable, bounds.b_min);
  }
  if (!admitted) {
    ++stats_.connections_blocked;
    return false;
  }
  connections_.emplace(portable, ConnectionState{bounds, bounds.b_min, CellId::invalid()});
  ++stats_.connections_opened;

  if (mobility_.classify(portable) == qos::MobilityClass::kMobile) {
    place_advance_reservation(portable);
  }
  adapt_cell(cell);
  return true;
}

void Environment::close_connection(PortableId portable) {
  const auto it = connections_.find(portable);
  assert(it != connections_.end());
  const CellId cell = mobility_.portable(portable).current_cell;
  directory_.at(cell).release(portable);
  cancel_advance_reservation(portable);
  connections_.erase(it);
  adapt_cell(cell);
}

bool Environment::handoff(PortableId portable, CellId to) {
  const CellId from = mobility_.portable(portable).current_cell;
  const auto it = connections_.find(portable);

  if (it == connections_.end()) {
    mobility_.move(portable, to);  // connectionless portables just move
    return true;
  }

  ConnectionState& state = it->second;

  // Old base station releases the connection's bandwidth.
  directory_.at(from).release(portable);
  mobility_.move(portable, to);

  // New base station runs handoff admission at the guaranteed minimum. The
  // reservation made for this portable (if the prediction was right) and the
  // anonymous pool are usable.
  reservation::CellBandwidth& target = directory_.at(to);
  const bool prediction_hit = target.reservation_for(portable) > 0.0;
  bool admitted = target.admit_handoff(portable, state.bounds.b_min);
  if (!admitted) {
    // Conflict resolution: squeeze the target cell's connections to their
    // minima and retry before giving up.
    squeeze_cell(to);
    admitted = target.admit_handoff(portable, state.bounds.b_min);
  }
  if (state.reserved_in == to) state.reserved_in = CellId::invalid();

  if (!admitted) {
    ++stats_.handoff_drops;
    cancel_advance_reservation(portable);
    connections_.erase(it);
    adapt_cell(from);
    return false;
  }
  if (prediction_hit) ++stats_.predictions_correct;
  state.allocated = state.bounds.b_min;

  // A portable that just moved is mobile by definition: advance-reserve in
  // its next predicted cell.
  place_advance_reservation(portable);

  adapt_cell(from);
  adapt_cell(to);
  update_b_dyn(to);
  return true;
}

bool Environment::renegotiate(PortableId portable, qos::BandwidthRange bounds) {
  assert(bounds.valid());
  const auto it = connections_.find(portable);
  assert(it != connections_.end());
  const CellId cell = mobility_.portable(portable).current_cell;
  reservation::CellBandwidth& account = directory_.at(cell);

  // Treated as a new connection request: release, try the new bounds (with
  // conflict resolution), and roll back on failure.
  const qos::BandwidthRange old_bounds = it->second.bounds;
  account.release(portable);
  bool admitted = account.admit_new(portable, bounds.b_min);
  if (!admitted) {
    squeeze_cell(cell);
    admitted = account.admit_new(portable, bounds.b_min);
  }
  if (!admitted) {
    const bool restored = account.admit_new(portable, old_bounds.b_min);
    assert(restored && "the old minimum fit a moment ago");
    (void)restored;
    adapt_cell(cell);
    return false;
  }
  it->second.bounds = bounds;
  it->second.allocated = bounds.b_min;
  // The reservation in the predicted next cell tracks the new minimum.
  if (mobility_.classify(portable) == qos::MobilityClass::kMobile) {
    place_advance_reservation(portable);
  }
  adapt_cell(cell);
  return true;
}

void Environment::place_advance_reservation(PortableId portable) {
  const auto it = connections_.find(portable);
  if (it == connections_.end()) return;
  cancel_advance_reservation(portable);

  const prediction::Prediction p = predictor_.predict(mobility_.portable(portable));
  if (!p.next_cell.has_value()) return;  // level 3: default algorithm territory
  reservation::CellBandwidth& target = directory_.at(*p.next_cell);
  target.reserve_for(portable, it->second.bounds.b_min);
  it->second.reserved_in = *p.next_cell;
  ++stats_.reservations_placed;
}

void Environment::cancel_advance_reservation(PortableId portable) {
  const auto it = connections_.find(portable);
  if (it == connections_.end() || !it->second.reserved_in.is_valid()) return;
  directory_.at(it->second.reserved_in).cancel_reservation(portable);
  it->second.reserved_in = CellId::invalid();
}

std::vector<PortableId> Environment::squeeze_cell(CellId cell) {
  // Conflict resolution (Section 5.2 case b): push every ongoing connection
  // back to its guaranteed minimum, freeing the adaptable excess.
  reservation::CellBandwidth& account = directory_.at(cell);
  std::vector<PortableId> holders;
  for (PortableId p : mobility_.portables_in(cell)) {
    if (connections_.contains(p) && account.has_connection(p)) holders.push_back(p);
  }
  for (PortableId p : holders) {
    account.set_allocation(p, connections_.at(p).bounds.b_min);
    connections_.at(p).allocated = connections_.at(p).bounds.b_min;
  }
  return holders;
}

void Environment::adapt_cell(CellId cell) {
  adapt_cell_impl(cell);
  // Fired on every path, including "nothing to re-divide": grants may have
  // been squeezed to b_min above, and the data plane must follow.
  if (on_adapt_) on_adapt_(cell);
}

void Environment::adapt_cell_impl(CellId cell) {
  reservation::CellBandwidth& account = directory_.at(cell);
  const std::vector<PortableId> holders = squeeze_cell(cell);
  if (holders.empty()) return;

  // Redistribute the excess among static portables' connections with the
  // max-min criterion (a single link: water-filling with headroom demands).
  std::vector<PortableId> statics;
  for (PortableId p : holders) {
    if (mobility_.classify(p) == qos::MobilityClass::kStatic) statics.push_back(p);
  }
  ++stats_.adaptations;
  if (statics.empty()) return;

  const qos::BitsPerSecond excess =
      std::max(account.capacity() - account.allocated() - account.reserved_total(), 0.0);
  if (excess <= 0.0) return;

  std::vector<double> headrooms;
  headrooms.reserve(statics.size());
  for (PortableId p : statics) {
    headrooms.push_back(connections_.at(p).bounds.headroom());
  }
  const std::vector<double> shares = maxmin::divide_excess(excess, headrooms);
  for (std::size_t i = 0; i < statics.size(); ++i) {
    const PortableId p = statics[i];
    const qos::BitsPerSecond b = connections_.at(p).bounds.b_min + shares[i];
    account.set_allocation(p, b);
    connections_.at(p).allocated = b;
  }
}

void Environment::update_b_dyn(CellId cell) {
  // Section 5.3: the pool must cover at least one connection (with the
  // maximum allocated bandwidth) from a static portable residing in a
  // neighboring cell — sudden movement of a static portable has no advance
  // reservation to fall back on.
  qos::BitsPerSecond max_static_neighbor = 0.0;
  for (CellId n : map_.cell(cell).neighbors) {
    for (PortableId p : mobility_.portables_in(n)) {
      const auto it = connections_.find(p);
      if (it == connections_.end()) continue;
      if (mobility_.classify(p) != qos::MobilityClass::kStatic) continue;
      max_static_neighbor = std::max(max_static_neighbor, it->second.allocated);
    }
  }
  reservation::CellBandwidth& account = directory_.at(cell);
  const qos::BitsPerSecond target =
      std::max(config_.b_dyn_fraction * account.capacity(), max_static_neighbor);
  // Never reserve more than is actually free right now.
  const qos::BitsPerSecond ceiling =
      std::max(account.capacity() - account.allocated(), 0.0);
  account.set_anonymous_reservation(std::min(target, ceiling));
}

void Environment::refresh() {
  for (const mobility::Cell& cell : map_.cells()) {
    for (PortableId p : mobility_.portables_in(cell.id)) {
      const auto it = connections_.find(p);
      if (it == connections_.end()) continue;
      if (mobility_.classify(p) == qos::MobilityClass::kStatic) {
        // Static portables hold no advance reservations (Section 3.4.2);
        // the base station refreshes their cached profile from the server.
        if (it->second.reserved_in.is_valid()) {
          cancel_advance_reservation(p);
          profiles_.refresh_on_static(p);
        }
      } else if (!it->second.reserved_in.is_valid()) {
        place_advance_reservation(p);
      }
    }
  }
  for (const mobility::Cell& cell : map_.cells()) {
    adapt_cell(cell.id);
    update_b_dyn(cell.id);
  }
}

qos::BitsPerSecond Environment::allocated(PortableId portable) const {
  const auto it = connections_.find(portable);
  return it == connections_.end() ? 0.0 : it->second.allocated;
}

}  // namespace imrm::core
