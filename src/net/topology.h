// Network topology: a wired backbone of switches plus base stations, each
// base station owning one wireless "cell link" shared by the portables in
// its cell (Section 3.1).
//
// Links are directed; add_duplex() creates the usual forward/backward pair.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/ids.h"
#include "qos/flow_spec.h"

namespace imrm::net {

enum class NodeKind { kSwitch, kBaseStation, kHost };

struct Node {
  NodeId id;
  NodeKind kind = NodeKind::kSwitch;
  std::string name;
};

struct Link {
  LinkId id;
  NodeId from;
  NodeId to;
  qos::BitsPerSecond capacity = 0.0;
  qos::Bits buffer_capacity = 0.0;
  double error_prob = 0.0;  // p_e,l — nonzero mainly on wireless links
  bool wireless = false;
};

class Topology {
 public:
  NodeId add_node(NodeKind kind, std::string name = {});

  LinkId add_link(NodeId from, NodeId to, qos::BitsPerSecond capacity,
                  qos::Bits buffer_capacity, double error_prob = 0.0,
                  bool wireless = false);

  /// Adds both directions with identical parameters; returns the forward id
  /// (the backward link is the next id).
  LinkId add_duplex(NodeId a, NodeId b, qos::BitsPerSecond capacity,
                    qos::Bits buffer_capacity, double error_prob = 0.0,
                    bool wireless = false);

  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id.value()); }
  [[nodiscard]] const Link& link(LinkId id) const { return links_.at(id.value()); }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  /// Outgoing links of a node.
  [[nodiscard]] const std::vector<LinkId>& out_links(NodeId id) const {
    return adjacency_.at(id.value());
  }

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;
};

}  // namespace imrm::net
