file(REMOVE_RECURSE
  "libimrm_prediction.a"
)
