# Empty dependencies file for bench_profile_traffic.
# This may be replaced when dependencies are built.
