// Deterministic random-number facade.
//
// Every stochastic element of the reproduction (arrival processes, holding
// times, mobility decisions, meeting attendance jitter) draws from one of
// these streams, seeded explicitly, so that every table and figure in
// EXPERIMENTS.md regenerates bit-identically.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace imrm::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Exponential variate with the given mean (mean = 1/rate).
  [[nodiscard]] double exponential_mean(double mean) {
    assert(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Exponential variate with the given rate.
  [[nodiscard]] double exponential_rate(double rate) {
    assert(rate > 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal variate, truncated to [lo, hi] by resampling (falls back to
  /// clamping after a bounded number of tries to stay O(1) worst case).
  [[nodiscard]] double truncated_normal(double mean, double stddev, double lo, double hi);

  /// Samples an index according to `weights` (need not be normalized).
  [[nodiscard]] std::size_t discrete(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Derives an independent child stream; used to give each subsystem its
  /// own stream so adding draws in one module does not perturb another.
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }
  [[nodiscard]] const std::mt19937_64& engine() const { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace imrm::sim
