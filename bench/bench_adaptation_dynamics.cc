// Adaptation dynamics under wireless channel error (Sections 2.1, 5.3).
//
// A Gilbert-Elliott channel modulates a cell's effective capacity while
// three adaptive connections share it. The distributed protocol re-divides
// the excess after every transition. We report: time-weighted utilization
// of the instantaneous capacity, control messages per channel transition,
// renegotiation signals during deep fades, and the allocation trace around
// one fade for inspection.
#include <iostream>

#include "maxmin/problem.h"
#include "maxmin/protocol.h"
#include "sim/simulator.h"
#include "stats/table.h"
#include "stats/timeseries.h"
#include "workload/channel.h"

using namespace imrm;
using namespace imrm::maxmin;

int main() {
  std::cout << "== Adaptation dynamics under channel error ==\n";
  std::cout << "3 connections, minima 100 kbps each, unlimited demand;\n";
  std::cout << "channel: good 1600 kbps (mean 5 min) / bad state sweep (mean 30 s)\n\n";

  stats::Table table({"bad-state capacity", "transitions", "msgs/transition",
                      "mean utilization", "renegotiation signals"});

  for (double bad_kbps : {800.0, 400.0, 250.0}) {
    sim::Simulator simulator;
    const double sum_min = 300.0;

    Problem problem;
    problem.links = {{1600.0 - sum_min}};
    for (int i = 0; i < 3; ++i) problem.connections.push_back({{0}, kInfiniteDemand});

    DistributedProtocol::Config config;
    config.delta = 5.0;
    DistributedProtocol protocol(simulator, problem, config);
    protocol.start_all();
    protocol.run_to_quiescence();

    workload::GilbertElliottChannel::Config channel_config;
    channel_config.good_capacity = 1600.0;  // work in kbps units directly
    channel_config.bad_capacity = bad_kbps;
    workload::GilbertElliottChannel channel(
        simulator, channel_config, sim::Rng(21),
        [&](double capacity) { protocol.set_link_excess_capacity(0, capacity - sum_min); });

    const sim::SimTime horizon = sim::SimTime::hours(4);
    channel.start(horizon);

    // Sample utilization every simulated second.
    stats::Summary utilization;
    simulator.every(sim::Duration::seconds(1), horizon, [&] {
      double used = sum_min;
      for (double r : protocol.rates()) used += r;
      const double capacity = channel.current_capacity();
      utilization.add(std::min(used / capacity, 1.0));
    });

    simulator.run();

    table.add_row({stats::fmt(bad_kbps, 0) + " kbps",
                   std::to_string(channel.transitions()),
                   stats::fmt(double(protocol.messages_sent()) /
                                  double(std::max<std::size_t>(channel.transitions(), 1)),
                              1),
                   stats::fmt(utilization.mean() * 100.0, 1) + "%",
                   std::to_string(protocol.renegotiation_requests().size())});
  }
  table.print(std::cout);

  std::cout << "\nallocation trace around one fade (bad state = 400 kbps):\n";
  {
    sim::Simulator simulator;
    Problem problem;
    problem.links = {{1300.0}};
    for (int i = 0; i < 3; ++i) problem.connections.push_back({{0}, kInfiniteDemand});
    DistributedProtocol protocol(simulator, problem, {});
    protocol.start_all();
    protocol.run_to_quiescence();

    stats::Table trace({"t", "capacity", "conn rates (kbps, incl. 100 min)"});
    auto snap = [&](const char* t, double cap) {
      std::string rates;
      for (double r : protocol.rates()) rates += stats::fmt(100.0 + r, 0) + " ";
      trace.add_row({t, stats::fmt(cap, 0), rates});
    };
    snap("t0 (good)", 1600);
    protocol.set_link_excess_capacity(0, 400.0 - 300.0);
    protocol.run_to_quiescence();
    snap("t1 (fade)", 400);
    protocol.set_link_excess_capacity(0, 1600.0 - 300.0);
    protocol.run_to_quiescence();
    snap("t2 (recovered)", 1600);
    trace.print(std::cout);
  }

  std::cout << "\nUtilization stays high because every transition re-runs the\n"
               "max-min division; deep fades (capacity below the guaranteed\n"
               "minima) raise renegotiation signals instead of starving silently.\n";
  return 0;
}
