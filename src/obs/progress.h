// Periodic progress heartbeat for long runs (ISSUE 7 satellite).
//
// The 1000-cell / 100k-portable campus runs ~13 s with no output; a
// ProgressMeter wired into the experiment's outer loop (one wall-clock read
// per tick / window, only when armed) emits stderr lines like
//
//   progress: 42.0% sim-time, 1234567 events, 9.6e+05 ev/s, straggler shard 3
//
// Off by default (period <= 0 costs nothing), writes to stderr only, so the
// golden stdout of every scenario is unchanged. Wall-clock paced: one line
// every `period_s` seconds of real time regardless of simulation speed.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <ostream>

namespace imrm::obs {

class ProgressMeter {
 public:
  /// `period_s` <= 0 disarms the meter. `out` defaults to stderr.
  explicit ProgressMeter(double period_s = 0.0, std::ostream* out = nullptr)
      : period_s_(period_s), out_(out) {}

  [[nodiscard]] bool armed() const { return period_s_ > 0.0; }

  /// Called from the experiment's outer loop. `sim_fraction` in [0, 1];
  /// `straggler` < 0 suppresses the shard column (non-sharded runs).
  void maybe_emit(double sim_fraction, std::uint64_t events, int straggler = -1) {
    if (!armed()) return;
    const auto now = std::chrono::steady_clock::now();
    if (!started_) {
      started_ = true;
      start_ = last_ = now;
      return;
    }
    if (std::chrono::duration<double>(now - last_).count() < period_s_) return;
    last_ = now;
    const double elapsed = std::chrono::duration<double>(now - start_).count();
    const double rate = elapsed > 0.0 ? double(events) / elapsed : 0.0;
    char line[160];
    if (straggler >= 0) {
      std::snprintf(line, sizeof(line),
                    "progress: %.1f%% sim-time, %llu events, %.3g ev/s, "
                    "straggler shard %d\n",
                    100.0 * sim_fraction, (unsigned long long)events, rate, straggler);
    } else {
      std::snprintf(line, sizeof(line),
                    "progress: %.1f%% sim-time, %llu events, %.3g ev/s\n",
                    100.0 * sim_fraction, (unsigned long long)events, rate);
    }
    if (out_ != nullptr) {
      *out_ << line << std::flush;
    } else {
      std::fputs(line, stderr);
      std::fflush(stderr);
    }
  }

 private:
  double period_s_;
  std::ostream* out_;
  bool started_ = false;
  std::chrono::steady_clock::time_point start_{};
  std::chrono::steady_clock::time_point last_{};
};

}  // namespace imrm::obs
