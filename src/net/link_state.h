// Runtime bookkeeping for one directed link: ongoing connections with their
// negotiated bounds and current allocations, plus advance reservations
// (b_resv,l) made on behalf of predicted handoffs.
#pragma once

#include <unordered_map>
#include <vector>

#include "net/ids.h"
#include "qos/admission.h"
#include "qos/flow_spec.h"

namespace imrm::net {

class LinkState {
 public:
  LinkState() = default;
  LinkState(LinkId id, qos::BitsPerSecond capacity, qos::Bits buffer_capacity,
            double error_prob)
      : id_(id), capacity_(capacity), buffer_capacity_(buffer_capacity),
        error_prob_(error_prob) {}

  struct Share {
    qos::BandwidthRange bounds;
    qos::BitsPerSecond allocated = 0.0;
    qos::Bits buffer = 0.0;  // buffer space reserved by the reverse pass
  };

  /// Registers a connection with its negotiated range, initial allocation,
  /// and the buffer space the reverse pass reserved for it at this hop.
  void add_connection(ConnectionId id, qos::BandwidthRange bounds,
                      qos::BitsPerSecond allocated, qos::Bits buffer = 0.0);
  void remove_connection(ConnectionId id);
  [[nodiscard]] bool has_connection(ConnectionId id) const {
    return shares_.contains(id);
  }

  /// Re-points a connection's allocation within its bounds (adaptation).
  void set_allocated(ConnectionId id, qos::BitsPerSecond allocated);
  [[nodiscard]] const Share& share(ConnectionId id) const { return shares_.at(id); }

  /// Advance reservation pool b_resv,l.
  void reserve_advance(qos::BitsPerSecond amount) { advance_reserved_ += amount; }
  void release_advance(qos::BitsPerSecond amount);
  void set_advance_reserved(qos::BitsPerSecond amount) { advance_reserved_ = amount; }
  [[nodiscard]] qos::BitsPerSecond advance_reserved() const { return advance_reserved_; }

  [[nodiscard]] qos::BitsPerSecond capacity() const { return capacity_; }
  [[nodiscard]] qos::BitsPerSecond sum_b_min() const { return sum_b_min_; }
  [[nodiscard]] qos::BitsPerSecond sum_allocated() const;
  [[nodiscard]] std::size_t connection_count() const { return shares_.size(); }

  /// Excess available bandwidth b'_av,l = C_l - b_resv,l - sum b_min
  /// (Section 5.2). May be negative after capacity loss, which is exactly
  /// the condition that triggers renegotiation.
  [[nodiscard]] qos::BitsPerSecond excess_available() const {
    return capacity_ - advance_reserved_ - sum_b_min_;
  }

  /// The view the forward-pass admission control packet takes of this link:
  /// the buffer offered to a new flow is what previous reservations left.
  [[nodiscard]] qos::LinkSnapshot snapshot() const {
    return qos::LinkSnapshot{capacity_, advance_reserved_, sum_b_min_,
                             buffer_capacity_ - buffer_reserved_, error_prob_};
  }

  [[nodiscard]] qos::Bits buffer_capacity() const { return buffer_capacity_; }
  [[nodiscard]] qos::Bits buffer_reserved() const { return buffer_reserved_; }

  [[nodiscard]] const std::unordered_map<ConnectionId, Share>& shares() const {
    return shares_;
  }
  [[nodiscard]] std::vector<ConnectionId> connection_ids() const;

  [[nodiscard]] LinkId id() const { return id_; }

  /// Wireless links have time-varying effective capacity (Section 2.1);
  /// adaptation reacts to this.
  void set_capacity(qos::BitsPerSecond capacity) { capacity_ = capacity; }

 private:
  LinkId id_ = LinkId::invalid();
  qos::BitsPerSecond capacity_ = 0.0;
  qos::Bits buffer_capacity_ = 0.0;
  double error_prob_ = 0.0;
  qos::BitsPerSecond advance_reserved_ = 0.0;
  qos::BitsPerSecond sum_b_min_ = 0.0;
  qos::Bits buffer_reserved_ = 0.0;
  std::unordered_map<ConnectionId, Share> shares_;
};

}  // namespace imrm::net
