// Convergence-under-faults acceptance tests (ISSUE 3): the hardened
// distributed protocol must reconverge to the fault-free waterfill fixed
// point after ADVERTISE loss and a mid-run base-station restart, while the
// planned-allocation capacity invariant holds at every simulator event.
#include <gtest/gtest.h>

#include "fault/convergence.h"
#include "obs/metrics.h"
#include "sim/time.h"

namespace imrm::fault {
namespace {

using sim::SimTime;

ConvergenceConfig lossy_restart_config() {
  ConvergenceConfig config;
  config.problem = two_cell_problem();
  config.faults = LinkFaultModel::bernoulli_loss(0.1);  // 10% ADVERTISE loss
  config.schedule.crash(0, SimTime::seconds(0.2));      // mid-run cell restart
  config.faults_stop = SimTime::seconds(0.5);
  config.seed = 11;
  return config;
}

TEST(ConvergenceUnderFaults, ReconvergesAfterLossAndCellRestartAcrossReplications) {
  ConvergenceSweepConfig sweep;
  sweep.base = lossy_restart_config();
  sweep.replications = 8;
  const ConvergenceSweepResult r = run_convergence_sweep(sweep);
  ASSERT_EQ(r.replications, 8u);
  EXPECT_EQ(r.safety_failures, 0u) << "planned allocation exceeded capacity, "
                                   << "worst overshoot " << r.worst_overshoot;
  EXPECT_EQ(r.reconverge_failures, 0u)
      << "worst final deviation " << r.worst_final_deviation;
  // Percentiles come from the merged reconvergence histogram and are ordered.
  EXPECT_GT(r.reconverge_p50, 0.0);
  EXPECT_LE(r.reconverge_p50, r.reconverge_p90);
  EXPECT_LE(r.reconverge_p90, r.reconverge_p99);
  // The merged snapshot carries the fault.* observability contract.
  const obs::CounterSample* runs = r.metrics.counter("fault.convergence.runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->value, 8u);
  const obs::CounterSample* reconverged = r.metrics.counter("fault.convergence.reconverged");
  ASSERT_NE(reconverged, nullptr);
  EXPECT_EQ(reconverged->value, 8u);
  EXPECT_NE(r.metrics.histogram("fault.reconverge_seconds"), nullptr);
  const obs::CounterSample* crashes = r.metrics.counter("fault.protocol.crashes");
  ASSERT_NE(crashes, nullptr);
  EXPECT_EQ(crashes->value, 8u);  // one injected restart per replication
}

TEST(ConvergenceUnderFaults, SweepIsIndependentOfThreadCount) {
  ConvergenceSweepConfig sweep;
  sweep.base = lossy_restart_config();
  sweep.replications = 8;
  sweep.threads = 1;
  const ConvergenceSweepResult serial = run_convergence_sweep(sweep);
  sweep.threads = 4;
  const ConvergenceSweepResult parallel = run_convergence_sweep(sweep);
  EXPECT_EQ(serial.safety_failures, parallel.safety_failures);
  EXPECT_EQ(serial.reconverge_failures, parallel.reconverge_failures);
  EXPECT_EQ(serial.reconverge_p50, parallel.reconverge_p50);
  EXPECT_EQ(serial.reconverge_p99, parallel.reconverge_p99);
  EXPECT_EQ(serial.worst_overshoot, parallel.worst_overshoot);
}

TEST(ConvergenceUnderFaults, SingleRunIsDeterministicInSeed) {
  const ConvergenceConfig config = lossy_restart_config();
  const ConvergenceResult a = run_convergence(config);
  const ConvergenceResult b = run_convergence(config);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.reconverge_seconds, b.reconverge_seconds);
  EXPECT_EQ(a.final_rates, b.final_rates);
  EXPECT_TRUE(a.safety_held);
  EXPECT_TRUE(a.reconverged);
  // The rebalancing transient is real and reported separately from safety.
  EXPECT_GE(a.worst_transient_overshoot, 0.0);
}

TEST(ConvergenceUnderFaults, CampusTopologySurvivesFlapsAndCrashes) {
  ConvergenceConfig base;
  base.problem = campus_problem(6, 18, 4);
  base.faults = LinkFaultModel::bernoulli_loss(0.15);
  sim::Rng schedule_rng(4);
  FaultSchedule::RandomConfig timeline;
  timeline.stop = SimTime::seconds(0.4);
  timeline.links = std::uint32_t(base.problem.links.size());
  timeline.flaps = 3;
  timeline.crashes = 2;
  base.schedule = FaultSchedule::random(timeline, schedule_rng);
  base.faults_stop = SimTime::seconds(0.5);
  base.seed = 21;

  ConvergenceSweepConfig sweep;
  sweep.base = base;
  sweep.replications = 8;
  const ConvergenceSweepResult r = run_convergence_sweep(sweep);
  EXPECT_EQ(r.safety_failures, 0u) << "worst overshoot " << r.worst_overshoot;
  EXPECT_EQ(r.reconverge_failures, 0u)
      << "worst final deviation " << r.worst_final_deviation;
}

TEST(ConvergenceUnderFaults, FaultFreeRunConvergesImmediatelyAndSafely) {
  ConvergenceConfig config;
  config.problem = two_cell_problem();
  config.seed = 3;  // trivial faults, empty schedule
  const ConvergenceResult r = run_convergence(config);
  EXPECT_TRUE(r.safety_held);
  EXPECT_TRUE(r.reconverged);
  EXPECT_LE(r.worst_overshoot, 1e-9);
  EXPECT_LE(r.final_deviation, 1e-9);
}

}  // namespace
}  // namespace imrm::fault
