#include "workload/class_schedule.h"

#include <algorithm>
#include <cassert>

namespace imrm::workload {

ClassWorkload generate_class_workload(const ClassScheduleConfig& config, sim::Rng& rng) {
  assert(config.meeting.valid());
  ClassWorkload out;

  const double t_start = config.meeting.start.to_seconds();
  const double t_stop = config.meeting.stop.to_seconds();

  // Attendees: entry times cluster around the start (truncated normal over
  // the arrival window), exits cluster just after the end.
  const double window_lo = t_start - config.arrival_window_before.to_seconds();
  const double window_hi = t_start + config.arrival_window_after.to_seconds();
  const double window_mid = (window_lo + window_hi) / 2.0;
  const double window_sd = (window_hi - window_lo) / 4.0;

  for (std::size_t i = 0; i < config.meeting.attendees; ++i) {
    AttendeePlan plan;
    const double enter = rng.truncated_normal(window_mid, window_sd, window_lo, window_hi);
    plan.enter_room = sim::SimTime::seconds(enter);
    plan.arrive_corridor =
        sim::SimTime::seconds(enter - rng.uniform(0.2, 1.0) * config.corridor_lead.to_seconds());
    const double leave =
        t_stop + rng.uniform(0.0, config.departure_window.to_seconds());
    plan.leave_room = sim::SimTime::seconds(leave);
    plan.depart = sim::SimTime::seconds(leave + config.corridor_lead.to_seconds());
    out.attendees.push_back(plan);
  }
  std::sort(out.attendees.begin(), out.attendees.end(),
            [](const AttendeePlan& a, const AttendeePlan& b) {
              return a.enter_room < b.enter_room;
            });

  // Pass-by walkers: Poisson over [window_lo - 5 min, t_stop + 10 min].
  const double passby_lo = window_lo - 300.0;
  const double passby_hi = t_stop + 600.0;
  const double rate_per_s = config.passby_per_minute / 60.0;
  if (rate_per_s > 0.0) {
    double t = passby_lo + rng.exponential_rate(rate_per_s);
    while (t < passby_hi) {
      PassByPlan plan;
      plan.appear = sim::SimTime::seconds(std::max(t, 0.0));
      plan.leave = plan.appear + config.passby_dwell;
      out.passers.push_back(plan);
      t += rng.exponential_rate(rate_per_s);
    }
  }
  return out;
}

}  // namespace imrm::workload
