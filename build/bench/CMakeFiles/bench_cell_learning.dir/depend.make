# Empty dependencies file for bench_cell_learning.
# This may be replaced when dependencies are built.
