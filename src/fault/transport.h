// Control-plane transport abstraction (ISSUE 3).
//
// The distributed protocols of this reproduction (max-min ADVERTISE/UPDATE,
// admission and reservation signaling) originally scheduled their message
// deliveries straight on the simulator, which models a perfectly reliable,
// constant-latency control plane. Transport makes the delivery model an
// explicit seam: DirectTransport reproduces the old behavior bit-for-bit,
// while fault::FaultyChannel implements the same interface with seeded loss,
// delay, duplication, reordering and link outages.
//
// This header is deliberately header-only so that protocol code (imrm_maxmin)
// can accept a Transport* without linking imrm_fault — only the harnesses and
// experiments that actually inject faults pull in the library.
#pragma once

#include <cstdint>
#include <utility>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace imrm::fault {

/// Identifies the (directed) control channel a message travels over. The
/// max-min protocol uses the receiving link's index; cell-level admission
/// signaling uses the cell id. Channel state (loss process, up/down) is kept
/// per channel so a FaultSchedule can fail links independently.
using Channel = std::uint32_t;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Schedules `deliver` to run after `latency` (one control-message hop on
  /// `channel`). Implementations may drop the message (deliver never runs),
  /// delay it beyond `latency`, or run it more than once (duplication) —
  /// receivers must tolerate all three.
  virtual void send(Channel channel, sim::Duration latency,
                    sim::EventQueue::Callback deliver) = 0;
};

/// The fault-free transport: every message arrives exactly once, exactly
/// `latency` later — byte-identical to scheduling on the simulator directly.
class DirectTransport final : public Transport {
 public:
  explicit DirectTransport(sim::Simulator& simulator) : simulator_(&simulator) {}

  void send(Channel /*channel*/, sim::Duration latency,
            sim::EventQueue::Callback deliver) override {
    simulator_->after(latency, std::move(deliver));
  }

 private:
  sim::Simulator* simulator_;
};

}  // namespace imrm::fault
