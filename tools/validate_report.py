#!/usr/bin/env python3
"""Validate imrm run reports and Chrome traces (stdlib only).

A run report is the JSON written by ``scenario_cli --metrics-json`` (schema
version 5, produced by obs::RunReport::write_json); a trace is the Chrome
trace_event JSON written by ``--trace-out`` (loadable in Perfetto / about
chrome://tracing). This script is the machine-checkable contract for both
formats and runs under ctest (see examples/CMakeLists.txt).

Schema v5 delta (ISSUE 10): the profile's sharded section reflects
window-batched barriers — ``barriers`` now counts coordinator dispatches
(full-stop barriers with a condvar round trip), with new ``windows``
(lockstep windows executed, >= barriers), ``profiled_wall_ns`` (the wall
covered by dispatch accounting; every lane's busy + barrier_wait + idle
sums to it) and a ``batch_windows`` histogram of realized burst sizes.
Everything else is unchanged from v4.

Schema v4 delta (ISSUE 9): an optional top-level ``adaptation`` object
carries closed-adaptation-loop accounting — renegotiation counts, window
verdict tallies, the dual token-bucket shaper's conformance conservation
(offered == bg + wc + nonconforming, in bits), air-hop packet conservation,
and the grant trajectory across the fault window. The block is present
exactly for ``campus --adapt-loop`` runs; everything else is unchanged
from v3.

Schema v3 delta (ISSUE 8): an optional top-level ``service`` object carries
admission-control service-mode accounting — offered/processed/shed/errors
conservation, offered and sustained request rates, latency percentiles, and
the SLO verdict. The block is present exactly for ``serve``/``drive`` runs;
everything else is unchanged from v2.

Schema v2 delta (ISSUE 7): an optional top-level ``profile`` object carries
wall-clock attribution — interned phase totals plus, for sharded runs,
per-shard busy/barrier_wait/idle lanes and window histograms. The block is
present exactly when the run was profiled (``--profile 1`` on a build with
IMRM_PROFILING on); everything else is unchanged from v1.

Usage:
  tools/validate_report.py report.json [trace.json]
  tools/validate_report.py --run path/to/scenario_cli [command args...]

With --run, the given scenario_cli binary is invoked with --metrics-json and
--trace-out pointing at a temp directory, then both outputs are validated.
"""

import json
import math
import subprocess
import sys
import tempfile
from pathlib import Path

SCHEMA_VERSION = 5
TRACE_PHASES = {"i", "X", "C", "M"}


class ValidationError(Exception):
    pass


def _expect(cond, message):
    if not cond:
        raise ValidationError(message)


def _is_number(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def _is_count(x):
    return isinstance(x, int) and not isinstance(x, bool) and x >= 0


def _expected_buckets(spec):
    if spec["scale"] == "linear":
        return spec["divisions"]
    octaves = math.ceil(round(math.log2(spec["hi"] / spec["lo"]), 9))
    return octaves * spec["divisions"]


def validate_histogram(name, h):
    where = f"histogram {name!r}"
    for key in ("scale", "lo", "hi", "divisions", "count", "underflow",
                "overflow", "sum", "min", "max", "p50", "p90", "p99",
                "buckets"):
        _expect(key in h, f"{where}: missing key {key!r}")
    _expect(h["scale"] in ("linear", "log2"),
            f"{where}: bad scale {h['scale']!r}")
    _expect(_is_number(h["lo"]) and _is_number(h["hi"]) and h["lo"] < h["hi"],
            f"{where}: bounds must satisfy lo < hi")
    _expect(_is_count(h["divisions"]) and h["divisions"] > 0,
            f"{where}: divisions must be a positive integer")
    for key in ("count", "underflow", "overflow"):
        _expect(_is_count(h[key]), f"{where}: {key} must be a non-negative int")
    for key in ("sum", "min", "max", "p50", "p90", "p99"):
        _expect(_is_number(h[key]), f"{where}: {key} must be a number")
    _expect(isinstance(h["buckets"], list) and all(_is_count(b) for b in h["buckets"]),
            f"{where}: buckets must be a list of non-negative ints")
    _expect(len(h["buckets"]) == _expected_buckets(h),
            f"{where}: expected {_expected_buckets(h)} buckets, "
            f"got {len(h['buckets'])}")
    total = sum(h["buckets"]) + h["underflow"] + h["overflow"]
    _expect(total == h["count"],
            f"{where}: buckets+underflow+overflow = {total} != count {h['count']}")
    if h["count"] > 0:
        _expect(h["min"] <= h["max"], f"{where}: min > max")


def validate_metrics(metrics):
    _expect(isinstance(metrics, dict), "metrics must be an object")
    for section in ("counters", "gauges", "histograms"):
        _expect(isinstance(metrics.get(section), dict),
                f"metrics.{section} must be an object")
    for name, value in metrics["counters"].items():
        _expect(_is_count(value), f"counter {name!r} must be a non-negative int")
    for name, g in metrics["gauges"].items():
        _expect(isinstance(g, dict) and _is_number(g.get("value"))
                and _is_number(g.get("max")),
                f"gauge {name!r} must be {{value, max}}")
    for name, h in metrics["histograms"].items():
        validate_histogram(name, h)


def _validate_profile_histogram(name, h):
    where = f"profile.{name}"
    for key in ("count", "sum", "min", "max", "p50", "p90", "p99"):
        _expect(key in h, f"{where}: missing key {key!r}")
    _expect(_is_count(h["count"]), f"{where}: count must be a non-negative int")
    for key in ("sum", "min", "max", "p50", "p90", "p99"):
        _expect(_is_number(h[key]), f"{where}: {key} must be a number")


def validate_profile(profile):
    """The schema-v2 `profile` block: wall-clock phases, optional shard lanes."""
    _expect(isinstance(profile, dict), "profile must be an object")
    _expect(profile.get("clock") == "steady", "profile.clock must be 'steady'")
    phases = profile.get("phases")
    _expect(isinstance(phases, dict), "profile.phases must be an object")
    for name, p in phases.items():
        where = f"profile phase {name!r}"
        _expect(isinstance(p, dict), f"{where} must be an object")
        for key in ("calls", "total_ns", "self_ns", "min_ns", "max_ns"):
            _expect(_is_count(p.get(key)),
                    f"{where}: {key} must be a non-negative int")
        _expect(p["calls"] > 0, f"{where}: zero-call phases must be omitted")
        _expect(p["self_ns"] <= p["total_ns"], f"{where}: self_ns > total_ns")
    if "shards" not in profile:
        return
    for key in ("barriers", "windows", "profiled_wall_ns",
                "boundary_messages", "boundary_bytes"):
        _expect(_is_count(profile.get(key)),
                f"profile.{key} must be a non-negative int")
    _expect(profile["windows"] >= profile["barriers"],
            "profile: windows cannot be fewer than dispatches (barriers)")
    shards = profile["shards"]
    _expect(isinstance(shards, list) and shards,
            "profile.shards must be a non-empty list")
    for i, lane in enumerate(shards):
        where = f"profile.shards[{i}]"
        _expect(isinstance(lane, dict), f"{where} must be an object")
        for key in ("busy_ns", "barrier_wait_ns", "idle_ns", "straggler_windows"):
            _expect(_is_count(lane.get(key)),
                    f"{where}: {key} must be a non-negative int")
        fracs = [lane.get(k) for k in ("busy_frac", "barrier_wait_frac",
                                       "idle_frac")]
        _expect(all(_is_number(f) and 0.0 <= f <= 1.0 for f in fracs),
                f"{where}: lane fractions must be numbers in [0, 1]")
        _expect(abs(sum(fracs) - 1.0) < 1e-6 or sum(fracs) == 0.0,
                f"{where}: lane fractions must sum to 1 (or all be 0)")
    _expect(sum(l["straggler_windows"] for l in shards) == profile["barriers"],
            "profile: straggler_windows must sum to the barrier count")
    for lane_i, lane in enumerate(shards):
        lane_wall = lane["busy_ns"] + lane["barrier_wait_ns"] + lane["idle_ns"]
        _expect(lane_wall == profile["profiled_wall_ns"],
                f"profile.shards[{lane_i}]: busy+barrier_wait+idle = "
                f"{lane_wall} != profiled_wall_ns "
                f"{profile['profiled_wall_ns']}")
    for key in ("window_ns", "messages_per_barrier", "batch_windows"):
        _expect(isinstance(profile.get(key), dict),
                f"profile.{key} must be an object")
        _validate_profile_histogram(key, profile[key])


SERVICE_COUNTS = ("offered", "processed", "shed", "errors", "admit_accepted",
                  "admit_rejected", "teardowns", "handoffs", "handoff_drops",
                  "probes", "unanswered", "peak_queue_depth")
SERVICE_NUMBERS = ("duration_seconds", "offered_rps", "sustained_rps",
                   "shed_fraction", "latency_p50_us", "latency_p90_us",
                   "latency_p99_us", "slo_p99_us")


def validate_service(service):
    """The schema-v3 `service` block: service-mode accounting + SLO verdict."""
    _expect(isinstance(service, dict), "service must be an object")
    _expect(service.get("transport") in ("ring", "socket"),
            f"service.transport must be 'ring' or 'socket', "
            f"got {service.get('transport')!r}")
    _expect(service.get("pacing") in ("virtual", "wall"),
            f"service.pacing must be 'virtual' or 'wall', "
            f"got {service.get('pacing')!r}")
    for key in SERVICE_COUNTS:
        _expect(_is_count(service.get(key)),
                f"service.{key} must be a non-negative int")
    for key in SERVICE_NUMBERS:
        _expect(_is_number(service.get(key)) and service[key] >= 0,
                f"service.{key} must be a non-negative number")
    _expect(isinstance(service.get("slo_met"), bool),
            "service.slo_met must be a boolean")
    _expect(service["offered"] ==
            service["processed"] + service["shed"] + service["unanswered"],
            "service: offered must equal processed + shed + unanswered")
    _expect(service["errors"] <= service["processed"],
            "service: errors cannot exceed processed")
    _expect(0.0 <= service["shed_fraction"] <= 1.0,
            "service.shed_fraction must be in [0, 1]")
    _expect(service["slo_met"] ==
            (service["latency_p99_us"] <= service["slo_p99_us"]),
            "service.slo_met must match latency_p99_us <= slo_p99_us")


ADAPTATION_COUNTS = ("flows", "renegotiations_triggered",
                     "renegotiations_accepted", "windows_breached",
                     "windows_clean", "windows_insufficient", "offered_bits",
                     "bg_bits", "wc_bits", "nonconforming_bits",
                     "hop_offered_packets", "hop_delivered_packets",
                     "hop_dropped_packets")
ADAPTATION_NUMBERS = ("granted_bps", "enforced_bps", "granted_prefault_bps",
                      "granted_min_bps", "granted_final_bps")


def validate_adaptation(adaptation):
    """The schema-v4 `adaptation` block: closed-loop renegotiation accounting."""
    _expect(isinstance(adaptation, dict), "adaptation must be an object")
    for key in ADAPTATION_COUNTS:
        _expect(_is_count(adaptation.get(key)),
                f"adaptation.{key} must be a non-negative int")
    for key in ADAPTATION_NUMBERS:
        _expect(_is_number(adaptation.get(key)) and adaptation[key] >= 0,
                f"adaptation.{key} must be a non-negative number")
    _expect(adaptation["flows"] > 0, "adaptation.flows must be positive")
    _expect(adaptation["offered_bits"] ==
            adaptation["bg_bits"] + adaptation["wc_bits"]
            + adaptation["nonconforming_bits"],
            "adaptation: offered_bits must equal bg + wc + nonconforming bits")
    _expect(adaptation["hop_offered_packets"] ==
            adaptation["hop_delivered_packets"]
            + adaptation["hop_dropped_packets"],
            "adaptation: hop offered must equal delivered + dropped")
    _expect(adaptation["renegotiations_accepted"] <=
            adaptation["renegotiations_triggered"],
            "adaptation: accepted renegotiations cannot exceed triggered")


def validate_report(report):
    _expect(isinstance(report, dict), "report must be a JSON object")
    _expect(report.get("schema_version") == SCHEMA_VERSION,
            f"schema_version must be {SCHEMA_VERSION}, "
            f"got {report.get('schema_version')!r}")
    for key in ("tool", "scenario"):
        _expect(isinstance(report.get(key), str) and report[key],
                f"{key} must be a non-empty string")
    _expect(isinstance(report.get("config"), dict)
            and all(isinstance(k, str) and isinstance(v, str)
                    for k, v in report["config"].items()),
            "config must be an object of string -> string")
    for key in ("wall_seconds", "sim_time_seconds", "events_per_second"):
        _expect(_is_number(report.get(key)) and report[key] >= 0,
                f"{key} must be a non-negative number")
    _expect(_is_count(report.get("events_fired")),
            "events_fired must be a non-negative int")
    if "profile" in report:
        validate_profile(report["profile"])
    if "service" in report:
        validate_service(report["service"])
    if "adaptation" in report:
        validate_adaptation(report["adaptation"])
    validate_metrics(report.get("metrics"))


def validate_trace(trace):
    _expect(isinstance(trace, dict), "trace must be a JSON object")
    _expect(trace.get("displayTimeUnit") == "ms",
            "trace.displayTimeUnit must be 'ms'")
    events = trace.get("traceEvents")
    _expect(isinstance(events, list), "traceEvents must be a list")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        _expect(isinstance(event, dict), f"{where} must be an object")
        _expect(event.get("ph") in TRACE_PHASES,
                f"{where}: bad phase {event.get('ph')!r}")
        _expect(isinstance(event.get("name"), str) and event["name"],
                f"{where}: name must be a non-empty string")
        _expect(_is_count(event.get("pid")), f"{where}: pid must be an int")
        if event["ph"] == "M":
            continue
        _expect(_is_count(event.get("tid")), f"{where}: tid must be an int")
        _expect(_is_number(event.get("ts")) and event["ts"] >= 0,
                f"{where}: ts must be a non-negative number (microseconds)")
        if event["ph"] == "X":
            _expect(_is_number(event.get("dur")) and event["dur"] >= 0,
                    f"{where}: complete event needs a non-negative dur")


def validate_files(report_path, trace_path=None):
    with open(report_path) as f:
        validate_report(json.load(f))
    print(f"ok: {report_path} is a valid v{SCHEMA_VERSION} run report")
    if trace_path is not None:
        with open(trace_path) as f:
            validate_trace(json.load(f))
        print(f"ok: {trace_path} is a well-formed Chrome trace")


def run_and_validate(argv):
    _expect(len(argv) >= 1, "--run needs the scenario_cli path")
    with tempfile.TemporaryDirectory() as tmp:
        report_path = Path(tmp) / "report.json"
        trace_path = Path(tmp) / "trace.json"
        cmd = [argv[0], *argv[1:],
               "--metrics-json", str(report_path),
               "--trace-out", str(trace_path)]
        result = subprocess.run(cmd, stdout=subprocess.DEVNULL)
        _expect(result.returncode == 0,
                f"{' '.join(cmd)} exited with {result.returncode}")
        _expect(report_path.exists(), "scenario_cli wrote no report")
        # A build with IMRM_TRACING=OFF legitimately produces an empty trace
        # file only when the tracer is compiled out; the report must exist
        # either way, the trace is validated when present.
        validate_files(report_path, trace_path if trace_path.exists() else None)


def main():
    args = sys.argv[1:]
    if not args or args[0] in ("-h", "--help"):
        print(__doc__.strip())
        return 0 if args else 2
    try:
        if args[0] == "--run":
            run_and_validate(args[1:])
        else:
            validate_files(args[0], args[1] if len(args) > 1 else None)
    except ValidationError as err:
        print(f"FAIL: {err}", file=sys.stderr)
        return 1
    except (OSError, json.JSONDecodeError) as err:
        print(f"FAIL: {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
