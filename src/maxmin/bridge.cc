#include "maxmin/bridge.h"

#include <unordered_map>

namespace imrm::maxmin {

ExtractedProblem extract_problem(const net::NetworkState& network, bool static_only) {
  ExtractedProblem out;

  std::unordered_map<net::LinkId, LinkIndex> link_index;
  auto intern_link = [&](net::LinkId id) -> LinkIndex {
    const auto it = link_index.find(id);
    if (it != link_index.end()) return it->second;
    const LinkIndex li = out.problem.links.size();
    link_index.emplace(id, li);
    out.link_order.push_back(id);
    out.problem.links.push_back(
        ProblemLink{std::max(network.link(id).excess_available(), 0.0)});
    return li;
  };

  for (net::ConnectionId cid : network.connection_ids()) {
    const net::Connection& conn = network.connection(cid);
    if (static_only && conn.mobility != qos::MobilityClass::kStatic) continue;
    ProblemConnection pc;
    pc.demand = conn.request.bandwidth.headroom();
    pc.path.reserve(conn.route.size());
    for (net::LinkId lid : conn.route) pc.path.push_back(intern_link(lid));
    out.problem.connections.push_back(std::move(pc));
    out.connection_order.push_back(cid);
  }
  return out;
}

std::vector<double> resolve_conflicts(net::NetworkState& network, bool static_only) {
  const ExtractedProblem extracted = extract_problem(network, static_only);
  const WaterfillResult solved = waterfill(extracted.problem);
  for (std::size_t i = 0; i < extracted.connection_order.size(); ++i) {
    const net::ConnectionId cid = extracted.connection_order[i];
    const double b_min = network.connection(cid).request.bandwidth.b_min;
    network.set_allocated(cid, b_min + solved.rates[i]);
  }
  return solved.rates;
}

}  // namespace imrm::maxmin
