file(REMOVE_RECURSE
  "CMakeFiles/imrm_core.dir/environment.cc.o"
  "CMakeFiles/imrm_core.dir/environment.cc.o.d"
  "CMakeFiles/imrm_core.dir/network_environment.cc.o"
  "CMakeFiles/imrm_core.dir/network_environment.cc.o.d"
  "libimrm_core.a"
  "libimrm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imrm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
