file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multicast.dir/bench_ablation_multicast.cc.o"
  "CMakeFiles/bench_ablation_multicast.dir/bench_ablation_multicast.cc.o.d"
  "bench_ablation_multicast"
  "bench_ablation_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
