// Centralized max-min fair allocation by progressive filling.
//
// This is the ground truth that the distributed ADVERTISE/UPDATE protocol of
// Section 5.3.1 must converge to (Theorem 1). It also implements the
// recursive "network bottleneck link" definition of Section 5.2: repeatedly
// find the link that minimizes fair share among unsatisfied connections,
// freeze its connections at that share, remove and recurse.
#pragma once

#include <vector>

#include "maxmin/problem.h"

namespace imrm::maxmin {

struct WaterfillResult {
  std::vector<double> rates;            // per-connection excess allocation
  std::vector<LinkIndex> bottleneck_of; // per-connection bottleneck link
                                        // (size_t(-1) for demand-limited)
  std::vector<LinkIndex> fill_order;    // network bottlenecks in freezing order
};

inline constexpr LinkIndex kDemandLimited = static_cast<LinkIndex>(-1);

/// Computes the max-min fair allocation. Precondition: problem.valid().
[[nodiscard]] WaterfillResult waterfill(const Problem& problem);

}  // namespace imrm::maxmin
