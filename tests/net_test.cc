// Tests for the network substrate: topology construction, Dijkstra routing,
// link-state bookkeeping, end-to-end admission through NetworkState, and
// multicast branch setup.
#include <gtest/gtest.h>

#include "net/ids.h"
#include "net/link_state.h"
#include "net/multicast.h"
#include "net/network_state.h"
#include "net/routing.h"
#include "net/topology.h"

namespace imrm::net {
namespace {

using qos::kbps;
using qos::mbps;

qos::QosRequest small_request() {
  qos::QosRequest r;
  r.bandwidth = {kbps(16), kbps(64)};
  // Generous delay/jitter bounds: at b_min = 16 kbps the per-hop jitter term
  // (sigma + l L_max)/b_min is already 1.5 s at hop 2.
  r.delay_bound = 10.0;
  r.jitter_bound = 10.0;
  r.loss_bound = 0.1;
  r.traffic = {8000.0, 8000.0};
  return r;
}

TEST(Ids, DistinctTypesAndValidity) {
  const NodeId n{3};
  EXPECT_TRUE(n.is_valid());
  EXPECT_FALSE(NodeId::invalid().is_valid());
  EXPECT_EQ(n.value(), 3u);
  EXPECT_LT(NodeId{1}, NodeId{2});
}

TEST(Topology, NodesAndLinks) {
  Topology topo;
  const NodeId a = topo.add_node(NodeKind::kSwitch, "a");
  const NodeId b = topo.add_node(NodeKind::kBaseStation);
  const LinkId l = topo.add_link(a, b, mbps(10), 1e6, 0.01, true);
  EXPECT_EQ(topo.node_count(), 2u);
  EXPECT_EQ(topo.link_count(), 1u);
  EXPECT_EQ(topo.link(l).from, a);
  EXPECT_EQ(topo.link(l).to, b);
  EXPECT_TRUE(topo.link(l).wireless);
  EXPECT_EQ(topo.node(b).kind, NodeKind::kBaseStation);
  EXPECT_EQ(topo.out_links(a).size(), 1u);
  EXPECT_TRUE(topo.out_links(b).empty());
}

TEST(Topology, DuplexAddsBothDirections) {
  Topology topo;
  const NodeId a = topo.add_node(NodeKind::kSwitch);
  const NodeId b = topo.add_node(NodeKind::kSwitch);
  const LinkId f = topo.add_duplex(a, b, mbps(10), 1e6);
  EXPECT_EQ(topo.link_count(), 2u);
  EXPECT_EQ(topo.link(f).from, a);
  EXPECT_EQ(topo.out_links(b).size(), 1u);
}

TEST(Routing, FindsShortestHopPath) {
  // a - b - c  and a - c direct: direct wins on hops.
  Topology topo;
  const NodeId a = topo.add_node(NodeKind::kSwitch);
  const NodeId b = topo.add_node(NodeKind::kSwitch);
  const NodeId c = topo.add_node(NodeKind::kSwitch);
  topo.add_duplex(a, b, mbps(10), 1e6);
  topo.add_duplex(b, c, mbps(10), 1e6);
  const LinkId direct = topo.add_duplex(a, c, mbps(1), 1e6);

  const Router router(topo);
  const auto route = router.shortest_path(a, c);
  ASSERT_TRUE(route.has_value());
  ASSERT_EQ(route->size(), 1u);
  EXPECT_EQ(route->front(), direct);
}

TEST(Routing, InverseCapacityAvoidsSlowLink) {
  Topology topo;
  const NodeId a = topo.add_node(NodeKind::kSwitch);
  const NodeId b = topo.add_node(NodeKind::kSwitch);
  const NodeId c = topo.add_node(NodeKind::kSwitch);
  topo.add_duplex(a, b, mbps(100), 1e6);
  topo.add_duplex(b, c, mbps(100), 1e6);
  topo.add_duplex(a, c, mbps(1), 1e6);  // direct but very slow

  const Router router(topo, Router::inverse_capacity_weight());
  const auto route = router.shortest_path(a, c);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->size(), 2u);  // goes around via b
}

TEST(Routing, UnreachableReturnsNullopt) {
  Topology topo;
  const NodeId a = topo.add_node(NodeKind::kSwitch);
  const NodeId b = topo.add_node(NodeKind::kSwitch);
  const Router router(topo);
  EXPECT_FALSE(router.shortest_path(a, b).has_value());
}

TEST(Routing, PathToSelfIsEmpty) {
  Topology topo;
  const NodeId a = topo.add_node(NodeKind::kSwitch);
  const Router router(topo);
  const auto route = router.shortest_path(a, a);
  ASSERT_TRUE(route.has_value());
  EXPECT_TRUE(route->empty());
}

TEST(Routing, RouteNodesChainsEndpoints) {
  Topology topo;
  const NodeId a = topo.add_node(NodeKind::kSwitch);
  const NodeId b = topo.add_node(NodeKind::kSwitch);
  const NodeId c = topo.add_node(NodeKind::kSwitch);
  topo.add_duplex(a, b, mbps(10), 1e6);
  topo.add_duplex(b, c, mbps(10), 1e6);
  const Router router(topo);
  const auto route = router.shortest_path(a, c);
  ASSERT_TRUE(route);
  const auto nodes = route_nodes(topo, *route);
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes.front(), a);
  EXPECT_EQ(nodes.back(), c);
}

TEST(LinkState, TracksSumBMinAndExcess) {
  LinkState ls(LinkId{0}, mbps(10), 1e6, 0.0);
  ls.add_connection(ConnectionId{1}, {mbps(1), mbps(2)}, mbps(1));
  ls.add_connection(ConnectionId{2}, {mbps(2), mbps(4)}, mbps(2));
  EXPECT_DOUBLE_EQ(ls.sum_b_min(), mbps(3));
  EXPECT_DOUBLE_EQ(ls.excess_available(), mbps(7));
  ls.reserve_advance(mbps(1));
  EXPECT_DOUBLE_EQ(ls.excess_available(), mbps(6));
  ls.remove_connection(ConnectionId{1});
  EXPECT_DOUBLE_EQ(ls.sum_b_min(), mbps(2));
}

TEST(LinkState, SetAllocatedClampsWithinBounds) {
  LinkState ls(LinkId{0}, mbps(10), 1e6, 0.0);
  ls.add_connection(ConnectionId{1}, {mbps(1), mbps(2)}, mbps(1));
  ls.set_allocated(ConnectionId{1}, mbps(1.5));
  EXPECT_DOUBLE_EQ(ls.share(ConnectionId{1}).allocated, mbps(1.5));
  EXPECT_DOUBLE_EQ(ls.sum_allocated(), mbps(1.5));
}

TEST(LinkState, ReleaseAdvanceSaturatesAtZero) {
  LinkState ls(LinkId{0}, mbps(10), 1e6, 0.0);
  ls.reserve_advance(kbps(100));
  ls.release_advance(kbps(200));
  EXPECT_DOUBLE_EQ(ls.advance_reserved(), 0.0);
}

TEST(LinkState, SnapshotMirrorsState) {
  LinkState ls(LinkId{0}, mbps(10), 5e5, 0.02);
  ls.add_connection(ConnectionId{1}, {mbps(1), mbps(2)}, mbps(1));
  ls.reserve_advance(mbps(2));
  const auto snap = ls.snapshot();
  EXPECT_DOUBLE_EQ(snap.capacity, mbps(10));
  EXPECT_DOUBLE_EQ(snap.advance_reserved, mbps(2));
  EXPECT_DOUBLE_EQ(snap.sum_b_min, mbps(1));
  EXPECT_DOUBLE_EQ(snap.buffer_capacity, 5e5);
  EXPECT_DOUBLE_EQ(snap.error_prob, 0.02);
  EXPECT_DOUBLE_EQ(snap.admissible_bandwidth(), mbps(7));
}

TEST(LinkState, ConnectionIdsSortedDeterministically) {
  LinkState ls(LinkId{0}, mbps(10), 1e6, 0.0);
  ls.add_connection(ConnectionId{5}, {kbps(16), kbps(16)}, kbps(16));
  ls.add_connection(ConnectionId{2}, {kbps(16), kbps(16)}, kbps(16));
  const auto ids = ls.connection_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], ConnectionId{2});
  EXPECT_EQ(ids[1], ConnectionId{5});
}

class NetworkStateTest : public ::testing::Test {
 protected:
  NetworkStateTest() {
    src_ = topo_.add_node(NodeKind::kHost, "src");
    sw_ = topo_.add_node(NodeKind::kSwitch, "sw");
    bs_ = topo_.add_node(NodeKind::kBaseStation, "bs");
    topo_.add_duplex(src_, sw_, mbps(10), 1e7);
    topo_.add_duplex(sw_, bs_, mbps(1.6), 1e7, 0.0, true);
  }

  Route route_to_bs() {
    const Router router(topo_);
    return *router.shortest_path(src_, bs_);
  }

  Topology topo_;
  NodeId src_, sw_, bs_;
};

TEST_F(NetworkStateTest, AdmitInstallsOnAllLinks) {
  NetworkState net(topo_);
  const auto id = net.admit(src_, bs_, route_to_bs(), small_request(),
                            qos::MobilityClass::kMobile);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(net.connection_count(), 1u);
  for (LinkId lid : net.connection(*id).route) {
    EXPECT_TRUE(net.link(lid).has_connection(*id));
    EXPECT_DOUBLE_EQ(net.link(lid).sum_b_min(), kbps(16));
  }
}

TEST_F(NetworkStateTest, AdmitRejectsWhenFull) {
  NetworkState net(topo_);
  // Wireless link is 1.6 Mbps; 100 connections at 16 kbps fill it exactly.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(net.admit(src_, bs_, route_to_bs(), small_request(),
                          qos::MobilityClass::kMobile))
        << "i=" << i;
  }
  const auto rejected = net.admit(src_, bs_, route_to_bs(), small_request(),
                                  qos::MobilityClass::kMobile);
  EXPECT_FALSE(rejected.has_value());
  EXPECT_EQ(net.last_result().reason, qos::RejectReason::kBandwidth);
  EXPECT_EQ(net.connection_count(), 100u);
}

TEST_F(NetworkStateTest, TeardownFreesCapacity) {
  NetworkState net(topo_);
  std::vector<ConnectionId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(*net.admit(src_, bs_, route_to_bs(), small_request(),
                             qos::MobilityClass::kMobile));
  }
  net.teardown(ids.front());
  EXPECT_TRUE(net.admit(src_, bs_, route_to_bs(), small_request(),
                        qos::MobilityClass::kMobile));
}

TEST_F(NetworkStateTest, HandoffConsumesAdvanceReservation) {
  NetworkState net(topo_);
  // Fill the wireless link to 99 connections and advance-reserve the rest.
  for (int i = 0; i < 99; ++i) {
    ASSERT_TRUE(net.admit(src_, bs_, route_to_bs(), small_request(),
                          qos::MobilityClass::kMobile));
  }
  const Route route = route_to_bs();
  const LinkId wireless = route.back();
  net.link(wireless).reserve_advance(kbps(16));

  // A new connection must fail (reservation blocks it) ...
  EXPECT_FALSE(net.admit(src_, bs_, route, small_request(), qos::MobilityClass::kMobile));
  // ... but the handoff the reservation was made for succeeds and consumes it.
  EXPECT_TRUE(net.admit(src_, bs_, route, small_request(), qos::MobilityClass::kMobile,
                        qos::Scheduler::kWfq, 0.0, qos::ConnectionKind::kHandoff));
  EXPECT_DOUBLE_EQ(net.link(wireless).advance_reserved(), 0.0);
}

TEST_F(NetworkStateTest, BufferSpaceIsDepletedByAdmissions) {
  // Shrink the wireless link's buffer so that a handful of connections
  // exhaust it long before bandwidth runs out.
  Topology topo;
  const NodeId src = topo.add_node(NodeKind::kHost);
  const NodeId bs = topo.add_node(NodeKind::kBaseStation);
  // Each WFQ connection reserves sigma + L = 16000 bits of buffer.
  topo.add_duplex(src, bs, mbps(10), /*buffer=*/40000.0);
  NetworkState net(topo);
  const Router router(topo);
  const Route route = *router.shortest_path(src, bs);

  int admitted = 0;
  while (net.admit(src, bs, route, small_request(), qos::MobilityClass::kMobile)) {
    ++admitted;
  }
  EXPECT_EQ(admitted, 2);  // 2 * 16000 = 32000 <= 40000, the third needs 48000
  EXPECT_EQ(net.last_result().reason, qos::RejectReason::kBuffer);

  // Releasing one connection frees its buffer share again.
  net.teardown(net.connection_ids().front());
  EXPECT_TRUE(net.admit(src, bs, route, small_request(), qos::MobilityClass::kMobile));
}

TEST_F(NetworkStateTest, BufferAccountingTracksShares) {
  NetworkState net(topo_);
  const auto id = net.admit(src_, bs_, route_to_bs(), small_request(),
                            qos::MobilityClass::kMobile);
  ASSERT_TRUE(id);
  for (std::size_t l = 0; l < net.connection(*id).route.size(); ++l) {
    const auto& link = net.link(net.connection(*id).route[l]);
    EXPECT_GT(link.buffer_reserved(), 0.0);
    EXPECT_DOUBLE_EQ(link.buffer_reserved(), link.share(*id).buffer);
  }
  net.teardown(*id);
  for (const auto& l : topo_.links()) {
    EXPECT_DOUBLE_EQ(net.link(l.id).buffer_reserved(), 0.0);
  }
}

TEST_F(NetworkStateTest, SetAllocatedAppliesEverywhere) {
  NetworkState net(topo_);
  const auto id = net.admit(src_, bs_, route_to_bs(), small_request(),
                            qos::MobilityClass::kStatic);
  ASSERT_TRUE(id);
  net.set_allocated(*id, kbps(48));
  EXPECT_DOUBLE_EQ(net.connection(*id).allocated, kbps(48));
  for (LinkId lid : net.connection(*id).route) {
    EXPECT_DOUBLE_EQ(net.link(lid).share(*id).allocated, kbps(48));
  }
}

TEST_F(NetworkStateTest, MulticastBranchesAdmitIndependently) {
  // Two neighbor base stations, one reachable with capacity, one starved.
  const NodeId bs2 = topo_.add_node(NodeKind::kBaseStation, "bs2");
  const NodeId bs3 = topo_.add_node(NodeKind::kBaseStation, "bs3");
  topo_.add_duplex(sw_, bs2, mbps(10), 1e7);
  topo_.add_duplex(sw_, bs3, kbps(8), 1e7);  // too small for b_min = 16 kbps

  NetworkState net(topo_);
  const Router router(topo_);
  auto tree = setup_neighbor_multicast(net, router, src_, {bs2, bs3}, small_request());
  ASSERT_EQ(tree.branches.size(), 2u);
  EXPECT_TRUE(tree.branches[0].admitted);
  EXPECT_FALSE(tree.branches[1].admitted);
  EXPECT_EQ(tree.admitted_count(), 1u);

  teardown_multicast(net, tree);
  EXPECT_EQ(tree.admitted_count(), 0u);
  EXPECT_EQ(net.connection_count(), 0u);
}

TEST_F(NetworkStateTest, MulticastSharedLinksDetected) {
  const NodeId bs2 = topo_.add_node(NodeKind::kBaseStation);
  const NodeId bs3 = topo_.add_node(NodeKind::kBaseStation);
  topo_.add_duplex(sw_, bs2, mbps(10), 1e7);
  topo_.add_duplex(sw_, bs3, mbps(10), 1e7);

  NetworkState net(topo_);
  const Router router(topo_);
  const auto tree = setup_neighbor_multicast(net, router, src_, {bs2, bs3}, small_request());
  // Both branches share the src->sw link.
  ASSERT_EQ(tree.shared_links.size(), 1u);
  EXPECT_EQ(topo_.link(tree.shared_links[0]).from, src_);
}

}  // namespace
}  // namespace imrm::net
