// Tests for the campus-at-scale harness (ISSUE 6 tentpole): the SoA and
// naive engines must make identical decisions in identical order, runs must
// be deterministic, and the grid floorplan must be a valid walkable map.
#include <gtest/gtest.h>

#include "experiments/campus_scale.h"
#include "obs/metrics.h"

namespace imrm::experiments {
namespace {

CampusScaleConfig small_config(ScaleEngine engine) {
  CampusScaleConfig config;
  config.cells = 30;
  config.portables = 500;
  config.duration = sim::Duration::seconds(1800);
  config.tick = sim::Duration::seconds(5);
  config.seed = 11;
  config.engine = engine;
  return config;
}

TEST(CampusScale, EnginesMakeIdenticalDecisions) {
  const CampusScaleResult soa = run_campus_scale(small_config(ScaleEngine::kSoa));
  const CampusScaleResult naive = run_campus_scale(small_config(ScaleEngine::kNaive));
  EXPECT_EQ(soa.outcome_hash, naive.outcome_hash);
  EXPECT_EQ(soa.events, naive.events);
  EXPECT_EQ(soa.handoffs, naive.handoffs);
  EXPECT_EQ(soa.new_admitted, naive.new_admitted);
  EXPECT_EQ(soa.new_blocked, naive.new_blocked);
  EXPECT_EQ(soa.handoff_admitted, naive.handoff_admitted);
  EXPECT_EQ(soa.handoff_dropped, naive.handoff_dropped);
  EXPECT_EQ(soa.reservations_placed, naive.reservations_placed);
  EXPECT_EQ(soa.departures, naive.departures);
}

TEST(CampusScale, RunsAreDeterministic) {
  const CampusScaleResult a = run_campus_scale(small_config(ScaleEngine::kSoa));
  const CampusScaleResult b = run_campus_scale(small_config(ScaleEngine::kSoa));
  EXPECT_EQ(a.outcome_hash, b.outcome_hash);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.state_bytes, b.state_bytes);
}

TEST(CampusScale, EveryPortableAppearsAndDeparts) {
  const CampusScaleResult r = run_campus_scale(small_config(ScaleEngine::kSoa));
  EXPECT_EQ(r.new_admitted + r.new_blocked, 500u);
  EXPECT_EQ(r.departures, 500u);
  EXPECT_GT(r.handoffs, 0u);
  EXPECT_GT(r.state_bytes, 0u);
  EXPECT_GT(r.bytes_per_portable, 0.0);
}

TEST(CampusScale, SeedChangesOutcome) {
  CampusScaleConfig other = small_config(ScaleEngine::kSoa);
  other.seed = 12;
  const CampusScaleResult a = run_campus_scale(small_config(ScaleEngine::kSoa));
  const CampusScaleResult b = run_campus_scale(other);
  EXPECT_NE(a.outcome_hash, b.outcome_hash);
}

TEST(CampusScale, MetricsExportMatchesResult) {
  obs::Registry registry;
  CampusScaleConfig config = small_config(ScaleEngine::kSoa);
  config.metrics = &registry;
  const CampusScaleResult r = run_campus_scale(config);
  const obs::Snapshot snap = registry.snapshot();
  ASSERT_NE(snap.counter("scale.handoffs"), nullptr);
  EXPECT_EQ(snap.counter("scale.handoffs")->value, r.handoffs);
  ASSERT_NE(snap.counter("sim.events_fired"), nullptr);
  EXPECT_EQ(snap.counter("sim.events_fired")->value, r.events);
  ASSERT_NE(snap.gauge("scale.bytes_per_portable"), nullptr);
  EXPECT_DOUBLE_EQ(snap.gauge("scale.bytes_per_portable")->value, r.bytes_per_portable);
  ASSERT_NE(snap.gauge("sim.time_seconds"), nullptr);
  EXPECT_DOUBLE_EQ(snap.gauge("sim.time_seconds")->value, 1800.0);
  // The directory's admission telemetry must agree with the engine counters.
  ASSERT_NE(snap.counter("resv.handoff.dropped"), nullptr);
  EXPECT_EQ(snap.counter("resv.handoff.dropped")->value, r.handoff_dropped);
}

TEST(CampusScale, GridFloorplanIsValidAtManySizes) {
  for (const std::size_t cells : {2u, 3u, 10u, 50u, 100u, 1000u}) {
    const mobility::CellMap map = scale_grid_floorplan(cells);
    EXPECT_EQ(map.size(), cells);
    EXPECT_TRUE(map.neighbor_relation_valid()) << cells << " cells";
    EXPECT_FALSE(map.cells_of_class(mobility::CellClass::kMeetingRoom).empty())
        << cells << " cells";
    // Homes exist: offices, or corridors on degenerate grids.
    const bool has_home =
        !map.cells_of_class(mobility::CellClass::kOffice).empty() ||
        !map.cells_of_class(mobility::CellClass::kCorridor).empty();
    EXPECT_TRUE(has_home) << cells << " cells";
    // Every cell has at least one neighbor (the map is connected by
    // construction: vertical spine per column + row-0 backbone).
    for (const mobility::Cell& cell : map.cells()) {
      EXPECT_FALSE(cell.neighbors.empty()) << "cell " << cell.name;
    }
  }
}

}  // namespace
}  // namespace imrm::experiments
