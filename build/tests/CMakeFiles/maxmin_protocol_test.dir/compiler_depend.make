# Empty compiler generated dependencies file for maxmin_protocol_test.
# This may be replaced when dependencies are built.
