// Distributed event-driven rate adaptation (Section 5.3.1, Theorem 1).
//
// Each switch maintains, per link: the recorded (last-seen stamped) rate of
// every connection, the advertised rate mu_l, and the bottleneck set M(l) of
// connections that consider l their connection-bottleneck link. When a
// switch detects a bandwidth change satisfying eq. (2) it initiates
// ADVERTISE control packets up- and downstream for the affected connections;
// intermediate switches clamp the stamped rate to their advertised rate;
// endpoints reflect the packets back; after four round trips the initiator
// sends an UPDATE fixing the connection's rate to the minimum stamped rate,
// and the rate change triggers further adaptations per the refinement rules.
//
// Faithfulness note (documented in DESIGN.md): Charny's convergence proof
// assumes one controller per connection (the source, sending periodically).
// The paper's event-driven variant lets any switch initiate; naively running
// those adaptations concurrently lets in-flight stamps of one round pollute
// the advertised-rate computation of another, which can produce sustained
// limit cycles. We therefore serialize adaptation rounds (a distributed
// system would realize this with a token or back-off); message counts and
// outcomes are unaffected, and the Gauss–Seidel execution converges to the
// same max-min fixed point the asynchronous protocol is proven to reach.
//
// Two initiation policies are provided for the ablation bench:
//  - kFlooding:       the preliminary algorithm (ADVERTISE for every
//                     connection on the link),
//  - kBottleneckSets: the refined algorithm (only connections that could
//                     actually change: growers and over-consumers).
//
// Finite demands are modelled exactly as footnote 11 prescribes: an
// artificial entry link of capacity b_max - b_min is synthesized per
// finite-demand connection.
//
// Per-link connection bookkeeping lives in parallel arrays (member list,
// recorded rates, per-connection flags) indexed through an open-addressing
// table, so the per-ADVERTISE hot path does no tree walks and feeds the
// advertised-rate recomputation a contiguous span without copying.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "fault/transport.h"
#include "maxmin/advertised_rate.h"
#include "maxmin/problem.h"
#include "sim/checkpoint.h"
#include "sim/flat_map.h"
#include "sim/simulator.h"

namespace imrm::obs {
class Registry;
}  // namespace imrm::obs

namespace imrm::maxmin {

enum class InitiationPolicy { kFlooding, kBottleneckSets };

class DistributedProtocol {
 public:
  struct Config {
    sim::Duration hop_latency = sim::Duration::millis(1.0);
    double epsilon = 1e-6;        // rate-change significance threshold
    double delta = 0.0;           // eq. (2) upward-adaptation threshold
    InitiationPolicy policy = InitiationPolicy::kBottleneckSets;
    int round_trips = 4;          // paper: four round trips ensure convergence
    std::uint64_t message_cap = 2'000'000;  // runaway guard

    // --- fault tolerance (ISSUE 3) --------------------------------------
    // Control-plane transport for ADVERTISE/UPDATE delivery. nullptr means
    // direct in-simulator scheduling — exactly the fault-free behavior, with
    // no virtual call on the hot path.
    fault::Transport* transport = nullptr;
    // Enables the loss-hardening machinery: a per-round retransmission
    // watchdog with exponential backoff and a bounded retry budget, plus
    // epoch-tagged crash/resync support. Off by default so fault-free runs
    // schedule exactly the same events as before.
    bool harden = false;
    // Minimum retransmission timeout; zero derives it from the path length
    // (one trip's worth of hops with generous jitter margin).
    sim::Duration retransmit_timeout = sim::Duration::millis(0.0);
    double retransmit_backoff = 2.0;  // RTO multiplier per retransmission
    int retransmit_budget = 6;        // retransmissions before abandoning
    int resync_retry_budget = 8;      // resync request retries per member

    // --- checkpoint/restore (ISSUE 4) ------------------------------------
    // Suppresses the adaptation rounds the constructor would otherwise
    // initiate per add_connection: a protocol about to be restore_state()d
    // must come up structurally complete but inert (the checkpoint carries
    // the converged rates; re-running startup rounds would diverge from the
    // run being resumed). start_all() or restore_state() arms initiation.
    bool defer_start = false;
  };

  DistributedProtocol(sim::Simulator& simulator, const Problem& problem, Config config);

  /// Kicks off adaptation for every connection from its entry switch (used
  /// to compute the initial allocation).
  void start_all();

  /// Wireless capacity change at a physical link: applies the eq. (2)
  /// detection rule and initiates adaptation accordingly.
  void set_link_excess_capacity(LinkIndex link, double new_excess);

  /// Adds a connection at runtime (its entry switch initiates adaptation).
  /// Returns the new connection index.
  ConnIndex add_connection(std::vector<LinkIndex> path, double demand = kInfiniteDemand);

  /// Removes a connection; its former links re-advertise the freed capacity.
  void remove_connection(ConnIndex conn);

  /// Base-station crash/restart at `link` (requires Config::harden): the
  /// switch loses its soft per-connection state (recorded rates, bottleneck
  /// membership, completion memory), bumps the link's epoch, and asks every
  /// member endpoint to re-report its applied rate over the (possibly still
  /// faulty) transport. Until every member has answered, the link refuses to
  /// offer any connection more than its re-synced recorded rate — the
  /// safety-without-knowledge rule — and defers initiating new adaptations.
  void crash_restart_link(LinkIndex link);

  /// Epoch-style recovery sweep: clears the per-(link, connection)
  /// completion memory that suppresses futile re-triggers and re-initiates
  /// every live connection from its entry switch. Called by harnesses once
  /// a fault epoch ends, mirroring a controller broadcasting a new epoch
  /// after an outage.
  void resynchronize();

  /// Current per-connection excess rates (set by UPDATE messages).
  [[nodiscard]] const std::vector<double>& rates() const { return rates_; }

  /// Connections that were told to renegotiate because b'_av,l dropped below
  /// zero at some link on their path.
  [[nodiscard]] const std::vector<ConnIndex>& renegotiation_requests() const {
    return renegotiations_;
  }

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t rounds_run() const { return rounds_run_; }
  [[nodiscard]] bool message_cap_hit() const { return cap_hit_; }
  [[nodiscard]] double advertised_rate(LinkIndex link) const {
    return links_.at(link).mu.current();
  }
  /// Number of links including the artificial finite-demand entry links.
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] double link_excess_capacity(LinkIndex link) const {
    return links_.at(link).mu.excess_capacity();
  }
  /// Sum of the applied (UPDATE-fixed) rates of the link's members. During
  /// any rebalance this transiently exceeds the excess capacity — Sec. 5.3.1
  /// over-consumers keep their old rate until their shrink round completes —
  /// so it measures the transient magnitude, not a per-event invariant.
  [[nodiscard]] double granted_sum(LinkIndex link) const;
  /// Sum of what the switch actually allocates its members at this instant:
  /// min(recorded_i, mu). A connection recorded above the advertised rate is
  /// only honored up to mu (the excess is already revoked locally; the
  /// shrinking UPDATE just hasn't landed). This is the per-event
  /// capacity-safety invariant: planned_sum(l) <= excess capacity always.
  [[nodiscard]] double planned_sum(LinkIndex link) const;
  [[nodiscard]] bool link_resyncing(LinkIndex link) const {
    return links_.at(link).resyncing();
  }

  // Fault-tolerance telemetry (all zero unless Config::harden).
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  [[nodiscard]] std::uint64_t rounds_abandoned() const { return rounds_abandoned_; }
  [[nodiscard]] std::uint64_t stale_ignored() const { return stale_ignored_; }
  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }
  [[nodiscard]] std::uint64_t resyncs_completed() const { return resyncs_completed_; }
  [[nodiscard]] std::uint64_t resync_expired() const { return resync_expired_; }
  /// M(l), sorted by connection index.
  [[nodiscard]] std::vector<ConnIndex> bottleneck_set(LinkIndex link) const;

  /// Drains the simulator's event queue (the protocol schedules all its
  /// message deliveries there) and returns the number of events processed.
  std::uint64_t run_to_quiescence() { return simulator_->run(); }

  /// Exports protocol telemetry: message/round/renegotiation counters and a
  /// per-link advertised-rate + bottleneck-set-size gauge pair. Adds the
  /// current totals — call once, after the run. Adaptation rounds and
  /// UPDATEs are additionally traced live through the simulator's attached
  /// obs::Tracer (spans per round, instants per UPDATE, a counter track per
  /// link's advertised rate) whenever tracing is enabled.
  void export_metrics(obs::Registry& registry) const;

  // --- checkpoint/restore (ISSUE 4) ---------------------------------------
  /// True when no adaptation round is in flight, no triggers are queued, no
  /// watchdog is armed, and no link is resyncing — the state in which a
  /// checkpoint captures the protocol completely (nothing closure-shaped is
  /// pending in the simulator on the protocol's behalf).
  [[nodiscard]] bool quiescent() const;

  /// Serializes the protocol's soft state: per-link advertised rates +
  /// recorded member rates + bottleneck/completion memory + epochs + resync
  /// backlog, per-connection applied rates and liveness, renegotiation list,
  /// and all counters. An in-flight round / queued triggers / the armed
  /// watchdog are deliberately NOT saved (kill -9 semantics): restoring a
  /// non-quiescent save and calling resynchronize() recovers through the
  /// same epoch/resync path a crashed controller would use.
  void save_state(sim::CheckpointWriter& w) const;

  /// Restores a save_state() image into a protocol constructed from the SAME
  /// Problem with Config::defer_start set. Throws sim::CheckpointError if the
  /// topology shape does not match. Marks the protocol started.
  void restore_state(sim::CheckpointReader& r);

 private:
  enum class Direction { kUpstream, kDownstream };

  struct Advertise {
    ConnIndex conn;
    double stamped;
    std::uint64_t token;    // adaptation-round instance
    Direction direction;
    bool returning;         // true once reflected at an endpoint
    std::size_t position;   // index into the connection's path
  };

  // Per-(link, connection) bookkeeping beyond the recorded rate.
  struct ConnState {
    bool in_bottleneck = false;       // membership in M(l)
    bool has_last_completed = false;
    // Post-completion (advertised, recorded) state of the last adaptation
    // this link triggered for the connection. Re-triggering in an identical
    // state cannot change the outcome and is suppressed — this is what makes
    // the event-driven cascade terminate.
    double last_completed_mu = 0.0;
    double last_completed_rate = 0.0;
    // Flooding policy: generation of the last flood-initiated round (the
    // paper's "global ID and sequence number" loop guard).
    std::uint64_t last_flood_generation = ~std::uint64_t{0};
  };

  struct LinkNode {
    AdvertisedRate mu{0.0};
    // Parallel arrays over the link's member connections; `recorded` is the
    // contiguous rate span handed to AdvertisedRate::recompute.
    std::vector<ConnIndex> members;
    std::vector<double> recorded;
    std::vector<ConnState> state;
    sim::FlatMap<std::uint64_t, std::uint32_t> index;  // conn -> position
    // Crash/restart bookkeeping (Config::harden): the link's state epoch and
    // the members whose rates are still unknown after a restart, with per-
    // member resend counts (parallel to resync_pending).
    std::uint32_t epoch = 0;
    std::vector<ConnIndex> resync_pending;
    std::vector<int> resync_tries;

    [[nodiscard]] std::size_t position_of(ConnIndex conn) const {
      const std::uint32_t* pos = index.find(std::uint64_t(conn));
      return pos ? *pos : members.size();
    }
    [[nodiscard]] bool has(ConnIndex conn) const { return position_of(conn) < members.size(); }
    [[nodiscard]] bool resyncing() const { return !resync_pending.empty(); }
    [[nodiscard]] bool resync_pending_for(ConnIndex conn) const;
    void add_member(ConnIndex conn);
    void remove_member(ConnIndex conn);
  };

  struct Adaptation {
    LinkIndex trigger_link;
    ConnIndex conn;
    int trips_left = 0;
    std::optional<double> returned_upstream;
    std::optional<double> returned_downstream;
    // Hardened mode: retransmissions consumed so far and whether the round
    // has already fixed its final rate (UPDATE in flight).
    int retransmits = 0;
    bool updating = false;
    double final_rate = 0.0;
  };

  // Sentinel "exclude nobody" argument for the cascade helpers.
  static constexpr ConnIndex kNoConnection = static_cast<ConnIndex>(-1);

  static std::uint64_t trigger_key(LinkIndex link, ConnIndex conn) {
    return (std::uint64_t(link) << 32) | std::uint64_t(conn);
  }

  // --- trigger queue (serialized rounds) --------------------------------
  void initiate(LinkIndex link, ConnIndex conn);
  void initiate_growers(LinkIndex link, ConnIndex except);
  void initiate_over_consumers(LinkIndex link, ConnIndex except);
  [[nodiscard]] bool trigger_valid(LinkIndex link, ConnIndex conn) const;
  void pump();

  // --- protocol actions --------------------------------------------------
  void launch_round();
  void deliver_advertise(Advertise packet);
  void handle_advertise_at(LinkIndex link, Advertise& packet);
  void on_round_trip_complete();
  void send_update(ConnIndex conn, double rate);
  void finish_adaptation(double final_rate);
  void recompute_mu(LinkIndex link);

  // --- fault tolerance (Config::harden) -----------------------------------
  // Routes one control-message hop through the configured transport (or the
  // simulator directly when none is set).
  template <typename F>
  void transmit(LinkIndex channel, sim::Duration latency, F&& f) {
    if (config_.transport) {
      config_.transport->send(fault::Channel(channel), latency,
                              sim::EventQueue::Callback(std::forward<F>(f)));
    } else {
      simulator_->after(latency, std::forward<F>(f));
    }
  }
  [[nodiscard]] sim::Duration round_rto() const;
  [[nodiscard]] sim::Duration resync_rto() const;
  void arm_watchdog();
  void disarm_watchdog();
  void on_watchdog(std::uint64_t serial);
  void abandon_round();
  void send_resync_requests(LinkIndex link);
  void on_resync_reply(LinkIndex link, std::uint32_t epoch, ConnIndex conn);
  void on_resync_watchdog(LinkIndex link, std::uint32_t epoch);
  void finish_resync(LinkIndex link);

  // --- tracing (no-ops unless a tracer is attached and enabled) ----------
  void trace_round_complete(ConnIndex conn, double final_rate);
  void trace_update(ConnIndex conn, double rate);
  void trace_mu(LinkIndex link, double mu);

  sim::Simulator* simulator_;
  Config config_;

  std::vector<LinkNode> links_;
  std::vector<std::vector<LinkIndex>> paths_;   // per connection (augmented)
  std::vector<bool> conn_alive_;
  std::vector<double> rates_;
  std::vector<ConnIndex> renegotiations_;

  std::deque<std::pair<LinkIndex, ConnIndex>> trigger_queue_;
  sim::FlatMap<std::uint64_t, bool> queued_;  // membership for trigger_queue_
  std::optional<Adaptation> active_;
  std::uint64_t active_token_ = 0;  // invalidates stale packets

  // Interned trace names, filled lazily on first use (per-link counter
  // tracks are interned on each link's first mu change).
  obs::NameId trace_round_name_ = obs::kInvalidName;
  obs::NameId trace_update_name_ = obs::kInvalidName;
  std::vector<obs::NameId> trace_link_names_;
  sim::SimTime round_started_ = sim::SimTime::zero();

  // Hardened-mode state: the retransmission watchdog of the active round
  // (round_serial_ identifies the round across its trips/retransmissions,
  // unlike active_token_ which advances per trip) and fault counters.
  std::uint64_t round_serial_ = 0;
  sim::EventId watchdog_ = 0;
  bool watchdog_armed_ = false;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t rounds_abandoned_ = 0;
  std::uint64_t stale_ignored_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t resyncs_completed_ = 0;
  std::uint64_t resync_expired_ = 0;

  std::uint64_t messages_sent_ = 0;
  std::uint64_t rounds_run_ = 0;
  // External-event generation counter; flooding initiates each (link, conn)
  // at most once per generation.
  std::uint64_t generation_ = 0;
  bool cap_hit_ = false;
  // False only between a defer_start construction and start_all()/
  // restore_state(); gates the per-add_connection startup initiation.
  bool started_ = true;
};

}  // namespace imrm::maxmin
