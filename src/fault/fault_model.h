// Per-channel message fault parameters shared by the fault-injection
// components (FaultyChannel for asynchronous control messages, UnreliableCall
// for synchronous admission probes).
#pragma once

#include "sim/random.h"

namespace imrm::fault {

/// Message-level fault model for one control channel. All probabilities are
/// per message. Loss follows a two-state Gilbert-Elliott chain evaluated once
/// per send (`loss_good == loss_bad`, or zero transition probabilities,
/// degenerates to a Bernoulli channel); `jitter` stretches delivery by a
/// uniform fraction of the hop latency, `reorder` pushes a message far enough
/// behind that later sends overtake it, `duplicate` delivers an extra copy.
struct LinkFaultModel {
  double loss_good = 0.0;      // drop probability in the good state
  double loss_bad = 0.0;       // drop probability in the bad (burst) state
  double p_good_to_bad = 0.0;  // per-message transition into the burst state
  double p_bad_to_good = 1.0;  // per-message transition out of it
  double duplicate = 0.0;      // probability a message is delivered twice
  double reorder = 0.0;        // probability a message falls behind later ones
  double jitter = 0.0;         // max extra delay as a fraction of hop latency

  /// True when the model cannot perturb anything; a trivial channel consumes
  /// no random draws, so zero-probability runs stay byte-identical to the
  /// fault-free configuration.
  [[nodiscard]] bool trivial() const {
    return loss_good == 0.0 && loss_bad == 0.0 && p_good_to_bad == 0.0 &&
           duplicate == 0.0 && reorder == 0.0 && jitter == 0.0;
  }

  /// Memoryless loss with probability `p` per message.
  [[nodiscard]] static LinkFaultModel bernoulli_loss(double p) {
    LinkFaultModel m;
    m.loss_good = m.loss_bad = p;
    return m;
  }

  /// Bursty loss: rare (`p_enter`) transitions into a bad state that drops
  /// `loss_in_burst` of messages and lasts `mean_burst_messages` on average.
  [[nodiscard]] static LinkFaultModel gilbert_elliott(double p_enter, double loss_in_burst,
                                                      double mean_burst_messages) {
    LinkFaultModel m;
    m.p_good_to_bad = p_enter;
    m.loss_bad = loss_in_burst;
    m.p_bad_to_good = mean_burst_messages > 1.0 ? 1.0 / mean_burst_messages : 1.0;
    return m;
  }
};

/// The Gilbert-Elliott state machine behind LinkFaultModel, kept separate so
/// FaultyChannel (one per channel) and UnreliableCall (one per direction)
/// share the exact same dynamics.
struct LossProcess {
  bool good = true;

  /// Advances the chain one message and returns whether that message is lost.
  [[nodiscard]] bool lost(const LinkFaultModel& m, sim::Rng& rng) {
    if (m.p_good_to_bad > 0.0) {
      if (good) {
        if (rng.bernoulli(m.p_good_to_bad)) good = false;
      } else if (rng.bernoulli(m.p_bad_to_good)) {
        good = true;
      }
    }
    const double p = good ? m.loss_good : m.loss_bad;
    return p > 0.0 && rng.bernoulli(p);
  }
};

}  // namespace imrm::fault
