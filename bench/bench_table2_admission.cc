// Table 2 reproduction: the admission test for a new connection request.
//
// Prints, for a representative QoS request over a 3-hop route, every row of
// Table 2 — forward-pass tests per link, destination-node tests, and the
// reverse-pass reservation — for both WFQ and RCSP scheduling.
#include <iostream>

#include "qos/admission.h"
#include "stats/table.h"

using namespace imrm;
using qos::AdmissionPipeline;
using qos::LinkSnapshot;
using qos::QosRequest;
using qos::Scheduler;

namespace {

QosRequest sample_request() {
  QosRequest r;
  r.bandwidth = {qos::kbps(256), qos::kbps(1024)};
  r.delay_bound = 0.5;
  r.jitter_bound = 0.4;
  r.loss_bound = 0.02;
  r.traffic = {qos::bytes(4000), qos::bytes(1500)};  // sigma, L_max
  return r;
}

std::vector<LinkSnapshot> sample_route() {
  // Wireless access link, backbone switch hop, wireless egress.
  return {
      LinkSnapshot{qos::mbps(1.6), qos::kbps(64), qos::kbps(512), 2e6, 0.005},
      LinkSnapshot{qos::mbps(45.0), 0.0, qos::mbps(10.0), 8e6, 0.0},
      LinkSnapshot{qos::mbps(1.6), 0.0, qos::kbps(256), 2e6, 0.005},
  };
}

void print_for(Scheduler scheduler, const char* name) {
  const QosRequest request = sample_request();
  const auto route = sample_route();
  const AdmissionPipeline pipeline(scheduler, qos::MobilityClass::kStatic);
  const auto result = pipeline.admit(request, route, /*b_stamp=*/qos::kbps(128));

  std::cout << "\n--- scheduler: " << name << " ---\n";
  std::cout << "accepted: " << (result.accepted ? "yes" : "no") << '\n';

  stats::Table forward({"hop", "admissible bw (kbps)", "d_l (ms)", "jitter_l (ms)",
                        "buffer fwd (bits)"});
  for (std::size_t l = 0; l < route.size(); ++l) {
    const double d_l = AdmissionPipeline::hop_delay(request, route[l]);
    const double d_prev =
        l > 0 ? AdmissionPipeline::hop_delay(request, route[l - 1]) : 0.0;
    const double jitter =
        (request.traffic.sigma + double(l + 1) * request.traffic.l_max) /
        request.bandwidth.b_min;
    forward.add_row({std::to_string(l + 1),
                     stats::fmt(route[l].admissible_bandwidth() / 1e3, 1),
                     stats::fmt(d_l * 1e3, 3), stats::fmt(jitter * 1e3, 3),
                     stats::fmt(pipeline.forward_buffer(request, l + 1, d_prev, d_l), 0)});
  }
  std::cout << "forward pass (per link l):\n";
  forward.print(std::cout);

  std::cout << "destination node: d_min = " << stats::fmt(result.e2e_min_delay * 1e3, 3)
            << " ms (bound " << stats::fmt(request.delay_bound * 1e3, 1)
            << "), jitter = " << stats::fmt(result.e2e_jitter * 1e3, 3) << " ms (bound "
            << stats::fmt(request.jitter_bound * 1e3, 1)
            << "), loss = " << stats::fmt(result.e2e_loss, 5) << " (bound "
            << stats::fmt(request.loss_bound, 3) << ")\n";

  if (result.accepted) {
    stats::Table reverse({"hop", "d'_l (ms)", "buffer rev (bits)"});
    for (std::size_t l = 0; l < result.hops.size(); ++l) {
      reverse.add_row({std::to_string(l + 1),
                       stats::fmt(result.hops[l].local_delay * 1e3, 3),
                       stats::fmt(result.hops[l].buffer, 0)});
    }
    std::cout << "reverse pass (uniform relaxation; static portable gets b_min + "
                 "b_stamp):\n";
    reverse.print(std::cout);
    std::cout << "allocated bandwidth b_j = "
              << stats::fmt(result.allocated_bandwidth / 1e3, 1) << " kbps (b_min "
              << stats::fmt(request.bandwidth.b_min / 1e3, 1) << " + stamp 128.0)\n";
  }
}

}  // namespace

int main() {
  std::cout << "== Table 2: admission test for a new connection request ==\n";
  std::cout << "request: b in [256, 1024] kbps, d <= 500 ms, jitter <= 400 ms, "
               "p_e <= 0.02, sigma = 4000 B, L_max = 1500 B, 3-hop route\n";
  print_for(Scheduler::kWfq, "WFQ (work-conserving)");
  print_for(Scheduler::kRcsp, "RCSP (rate-controlled static priority)");

  // A request that must be rejected end-to-end, to show the failure path.
  QosRequest tight = sample_request();
  tight.delay_bound = 0.05;
  const AdmissionPipeline pipeline(Scheduler::kWfq, qos::MobilityClass::kMobile);
  const auto rejected = pipeline.admit(tight, sample_route());
  std::cout << "\ntight request (d <= 50 ms): accepted=" << rejected.accepted
            << " reason=" << qos::to_string(rejected.reason) << '\n';
  return 0;
}
