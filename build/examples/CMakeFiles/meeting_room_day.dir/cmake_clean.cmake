file(REMOVE_RECURSE
  "CMakeFiles/meeting_room_day.dir/meeting_room_day.cc.o"
  "CMakeFiles/meeting_room_day.dir/meeting_room_day.cc.o.d"
  "meeting_room_day"
  "meeting_room_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meeting_room_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
