file(REMOVE_RECURSE
  "CMakeFiles/imrm_workload.dir/channel.cc.o"
  "CMakeFiles/imrm_workload.dir/channel.cc.o.d"
  "CMakeFiles/imrm_workload.dir/class_schedule.cc.o"
  "CMakeFiles/imrm_workload.dir/class_schedule.cc.o.d"
  "libimrm_workload.a"
  "libimrm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imrm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
