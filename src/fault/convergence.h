// Convergence-under-faults harness (ISSUE 3 tentpole, part 4).
//
// Runs the hardened distributed max-min protocol over a FaultyChannel while
// a FaultSchedule injects outages and base-station crashes, and checks the
// two properties Theorem 1 owes us under churn:
//  * safety   — at every simulator event, each link's planned allocation
//               (members clamped at the advertised rate mu) sums to at most
//               its excess capacity: no switch ever plans past capacity,
//               faults or not;
//  * liveness — once faults cease, the allocation reconverges to the
//               fault-free fixed point computed by waterfill().
//
// Time-to-reconvergence (measured from the end of the fault window) is
// recorded into a `fault.reconverge_seconds` log2 histogram so sweeps report
// percentiles through the obs layer; run_convergence_sweep replays the same
// scenario across seeded replications on a sim::ReplicationRunner and merges
// the per-replication snapshots deterministically.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_model.h"
#include "fault/schedule.h"
#include "maxmin/problem.h"
#include "maxmin/protocol.h"
#include "obs/metrics.h"
#include "sim/checkpoint.h"
#include "sim/time.h"

namespace imrm::obs {
class Tracer;
}  // namespace imrm::obs

namespace imrm::fault {

struct ConvergenceConfig {
  maxmin::Problem problem;
  // Message-level faults applied to every control channel until
  // `faults_stop`, at which point the channel heals.
  LinkFaultModel faults;
  // Discrete failures (flaps, crashes, partitions) on top of message faults.
  FaultSchedule schedule;
  // Barrier before which the run is fault-free (ISSUE 4). Zero keeps the
  // historical behavior: faults armed at construction. A positive value
  // splits the run into a clean warm phase (protocol converges, queue
  // drains) and a faulted phase armed when the clock reaches the barrier —
  // the structure that lets fault variants fork from one shared warm
  // checkpoint. Schedule events must not precede the barrier.
  sim::SimTime faults_start = sim::SimTime::zero();
  sim::SimTime faults_stop = sim::SimTime::seconds(0.5);
  // Wall on the whole run: reconvergence must happen before this horizon.
  sim::SimTime horizon = sim::SimTime::seconds(30.0);
  maxmin::DistributedProtocol::Config protocol;  // harden/transport are set by the harness
  std::uint64_t seed = 1;
  double tolerance = 1e-6;   // max |rate - fixed point| for reconvergence
  double safety_slack = 1e-6;
  obs::Registry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

struct ConvergenceResult {
  bool safety_held = true;          // planned_sum <= capacity at every event
  bool reconverged = false;         // matched the fixed point after faults
  double reconverge_seconds = 0.0;  // time from faults_stop to convergence
  /// Max planned_sum(l) - capacity(l) over all events/links: the safety
  /// margin. Positive beyond the slack means a switch planned to hand out
  /// more than its capacity — the bug class faults are meant to expose.
  double worst_overshoot = 0.0;
  /// Max granted_sum(l) - capacity(l): the inherent Sec. 5.3.1 rebalancing
  /// transient (over-consumers keep their old rate until their serialized
  /// shrink round lands). Nonzero even fault-free; telemetry, not safety.
  double worst_transient_overshoot = 0.0;
  double final_deviation = 0.0;     // max |rate - fixed point| at the end
  std::uint64_t events = 0;
  std::vector<double> final_rates;
};

/// One seeded run of the harness. Deterministic in (config, seed).
[[nodiscard]] ConvergenceResult run_convergence(const ConvergenceConfig& config);

/// Runs the clean warm phase of `config` — construction, start_all, events
/// up to the faults_start barrier — and captures simulator core, protocol
/// soft state, channel state, the fault.channel.* counters, and the
/// harness's safety accumulators. The warm phase draws zero RNG (trivial
/// channel model), so the image is seed-independent: one checkpoint serves
/// every fault variant. Throws sim::CheckpointError if the system has not
/// gone quiescent by the barrier (raise faults_start past convergence).
/// Requires config.faults_start > 0.
[[nodiscard]] sim::Checkpoint make_warm_checkpoint(const ConvergenceConfig& config);

/// run_convergence resuming from a make_warm_checkpoint image built from the
/// same problem/protocol config/faults_start: restores the warm state, arms
/// this variant's faults/schedule at the barrier, and runs the faulted
/// phase. Byte-identical results (including exported metrics) to
/// run_convergence(config) simulated cold from t=0.
[[nodiscard]] ConvergenceResult run_convergence_from(const ConvergenceConfig& config,
                                                     const sim::Checkpoint& warm);

struct ConvergenceSweepConfig {
  ConvergenceConfig base;       // per-replication seed/metrics are overridden
  std::size_t replications = 8;
  std::size_t threads = 0;      // 0 = hardware concurrency
  // Fork every replication from one shared warm checkpoint instead of
  // cold-starting the clean phase N times (requires base.faults_start > 0;
  // results are byte-identical either way, forking just skips N-1 warmups).
  bool fork_from_warm = false;
};

struct ConvergenceSweepResult {
  std::size_t replications = 0;
  std::size_t safety_failures = 0;
  std::size_t reconverge_failures = 0;
  double worst_overshoot = 0.0;
  double worst_final_deviation = 0.0;
  double reconverge_p50 = 0.0;
  double reconverge_p90 = 0.0;
  double reconverge_p99 = 0.0;
  obs::Snapshot metrics;  // merged fault.* counters + reconvergence histogram
};

/// Replays run_convergence across seeded replications (seed = base.seed + i)
/// in parallel and folds the per-replication metric snapshots in replication
/// order — byte-identical output for any thread count.
[[nodiscard]] ConvergenceSweepResult run_convergence_sweep(const ConvergenceSweepConfig& config);

/// Two wireless cells bridged by a wired backbone (the Figure 6 shape):
/// local connections in each cell plus cell-crossing connections competing
/// for the wireless excess.
[[nodiscard]] maxmin::Problem two_cell_problem(std::size_t conns_per_cell = 4,
                                               double cell_excess = 40.0,
                                               double backbone_excess = 120.0);

/// Campus-shaped problem: a corridor backbone chain with per-cell wireless
/// links hanging off it (mirrors the campus mobility environment); random
/// connection endpoints routed over the chain. Deterministic in `seed`.
[[nodiscard]] maxmin::Problem campus_problem(std::size_t cells = 8, std::size_t conns = 24,
                                             std::uint64_t seed = 1);

}  // namespace imrm::fault
