# Empty compiler generated dependencies file for bench_fig2_lounge_activity.
# This may be replaced when dependencies are built.
