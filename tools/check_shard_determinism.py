#!/usr/bin/env python3
"""End-to-end contract for the sharded campus execution (ISSUE 5).

Runs the sharded campus scenario through scenario_cli at shard counts
1, 2, 4, and 8 with identical scenario flags and requires:

  * identical stdout summary lines (events, windows, boundary messages,
    and all scenario counts), and
  * byte-identical md5 over the report's "metrics" object.

Only the "metrics" object is hashed: the surrounding report carries
wall-clock fields (wall_seconds) that measure the host, not the simulation.

Usage: check_shard_determinism.py <path-to-scenario_cli>
"""
import hashlib
import json
import subprocess
import sys
import tempfile
from pathlib import Path

SHARDS = [1, 2, 4, 8]
FLAGS = ["campus", "--cells", "12", "--portables", "4", "--hours", "1",
         "--seed", "9"]


def run(cli, shards, metrics_path):
    cmd = [cli] + FLAGS + ["--shards", str(shards),
                           "--metrics-json", str(metrics_path)]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=300)
    if proc.returncode != 0:
        print(f"FAIL: --shards {shards} exited {proc.returncode}")
        print(proc.stderr)
        sys.exit(1)
    return proc.stdout


def metrics_md5(path):
    report = json.loads(Path(path).read_text())
    metrics = report.get("metrics")
    if metrics is None:
        print(f"FAIL: {path} has no metrics object")
        sys.exit(1)
    canonical = json.dumps(metrics, sort_keys=True)
    return hashlib.md5(canonical.encode()).hexdigest()


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: check_shard_determinism.py <scenario_cli>",
              file=sys.stderr)
        return 2
    cli = sys.argv[1]
    ok = True
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        golden_line = golden_md5 = None
        for shards in SHARDS:
            metrics_path = tmp / f"shards{shards}.json"
            line = run(cli, shards, metrics_path)
            digest = metrics_md5(metrics_path)
            print(f"shards={shards} md5={digest}")
            if golden_line is None:
                golden_line, golden_md5 = line, digest
                continue
            # The summary line prints shards=K; compare everything else.
            strip = lambda s: " ".join(
                tok for tok in s.split() if not tok.startswith("shards="))
            if strip(line) != strip(golden_line):
                print(f"FAIL: stdout at shards={shards} differs from shards=1")
                print(f"  shards=1: {golden_line.strip()}")
                print(f"  shards={shards}: {line.strip()}")
                ok = False
            if digest != golden_md5:
                print(f"FAIL: metrics md5 at shards={shards} differs "
                      f"({digest} != {golden_md5})")
                ok = False
    print("OK: metrics byte-identical across shard counts" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
