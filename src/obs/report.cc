#include "obs/report.h"

#include "obs/json.h"

namespace imrm::obs {

void RunReport::write_json(std::ostream& os) const {
  os << "{\"schema_version\":" << kSchemaVersion << ",\"tool\":";
  json::write_string(os, tool);
  os << ",\"scenario\":";
  json::write_string(os, scenario);
  os << ",\"config\":{";
  json::Separator sep;
  for (const auto& [key, value] : config) {
    sep.write(os);
    json::write_string(os, key);
    os << ':';
    json::write_string(os, value);
  }
  os << "},\"wall_seconds\":";
  json::write_number(os, wall_seconds);
  os << ",\"sim_time_seconds\":";
  json::write_number(os, sim_seconds);
  os << ",\"events_fired\":";
  json::write_number(os, events_fired);
  os << ",\"events_per_second\":";
  json::write_number(os, events_per_second());
  if (!profile.empty()) {
    os << ",\"profile\":";
    profile.write_json(os);
  }
  os << ",\"metrics\":";
  metrics.write_json(os);
  os << "}\n";
}

}  // namespace imrm::obs
