file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_office_handoffs.dir/bench_fig4_office_handoffs.cc.o"
  "CMakeFiles/bench_fig4_office_handoffs.dir/bench_fig4_office_handoffs.cc.o.d"
  "bench_fig4_office_handoffs"
  "bench_fig4_office_handoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_office_handoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
