#!/usr/bin/env bash
# Runs the microbenchmark suite and writes a machine-readable perf trajectory
# file (default BENCH_1.json at the repo root) so later PRs have a baseline
# to beat. Schema: { "<benchmark name>": { "items_per_second": <double|null>,
# "real_time_ns": <double> }, ... }.
#
# Usage: bench/run_benchmarks.sh [output.json]
# Env:   BUILD_DIR   build directory relative to the repo root (default: build)
#        BENCH_ARGS  extra flags for bench_microperf (e.g. --benchmark_filter=...)
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${BUILD_DIR:-build}
out=${1:-"$repo_root/BENCH_1.json"}

cmake --build "$repo_root/$build_dir" --target bench_microperf -j >/dev/null

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
"$repo_root/$build_dir/bench/bench_microperf" \
  --benchmark_format=json ${BENCH_ARGS:-} >"$raw"

python3 - "$raw" "$out" <<'PYEOF'
import json
import sys

NS_PER = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

with open(sys.argv[1]) as f:
    raw = json.load(f)

trajectory = {}
for bench in raw["benchmarks"]:
    if bench.get("run_type") == "aggregate":
        continue
    scale = NS_PER[bench.get("time_unit", "ns")]
    trajectory[bench["name"]] = {
        "items_per_second": bench.get("items_per_second"),
        "real_time_ns": bench["real_time"] * scale,
    }

with open(sys.argv[2], "w") as f:
    json.dump(trajectory, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {sys.argv[2]} ({len(trajectory)} benchmarks)")
PYEOF
