#include "reservation/lounge_policy.h"

#include <cassert>
#include <deque>
#include <utility>

namespace imrm::reservation {

LoungePolicyBase::LoungePolicyBase(PolicyEnv env, CellId cell, sim::Duration slot,
                                   qos::BitsPerSecond per_user_bandwidth)
    : AdvanceReservationPolicy(std::move(env)), cell_(cell), slot_(slot),
      per_user_bandwidth_(per_user_bandwidth) {
  assert(slot_ > sim::Duration::zero());
  assert(per_user_bandwidth_ > 0.0);
}

bool LoungePolicyBase::has_default_neighbor() const {
  for (CellId n : env_.map->cell(cell_).neighbors) {
    if (env_.map->cell(n).cell_class == mobility::CellClass::kLounge) return true;
  }
  return false;
}

void LoungePolicyBase::on_handoff(const mobility::HandoffEvent& event) {
  if (event.from == cell_) outgoing_this_slot_ += 1.0;
  if (event.to == cell_) incoming_this_slot_ += 1.0;
}

void LoungePolicyBase::close_slot(sim::SimTime now) {
  const auto slot_index = std::size_t(now.to_seconds() / slot_.to_seconds());
  while (current_slot_ < slot_index) {
    slot_closed(outgoing_this_slot_, incoming_this_slot_);
    outgoing_this_slot_ = 0.0;
    incoming_this_slot_ = 0.0;
    ++current_slot_;
    // Only the just-finished slot carries real counts; older skipped slots
    // (no refresh during them) observe zero, which is accurate: no handoff
    // listener fired.
  }
}

qos::BitsPerSecond LoungePolicyBase::self_reservation() const {
  return predict_incoming() * per_user_bandwidth_;
}

void LoungePolicyBase::refresh(sim::SimTime now) {
  close_slot(now);
  if (standalone_) env_.directory->clear_reservations();

  // Ask the neighbors to reserve for the predicted outgoing handoffs, split
  // by the cell-profile handoff distribution (uniform without data).
  const double outgoing = predict_outgoing();
  const auto& neighbors = env_.map->cell(cell_).neighbors;
  if (outgoing > 0.0 && !neighbors.empty()) {
    std::vector<double> split(neighbors.size(), 1.0 / double(neighbors.size()));
    if (const profiles::CellProfile* profile = env_.profiles->cell_profile(cell_)) {
      const auto dist = profile->aggregate_distribution();
      if (!dist.empty()) {
        for (std::size_t i = 0; i < neighbors.size(); ++i) {
          split[i] = 0.0;
          for (const auto& share : dist) {
            if (share.neighbor == neighbors[i]) split[i] = share.probability;
          }
        }
      }
    }
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      if (env_.directory->has(neighbors[i]) && split[i] > 0.0) {
        env_.directory->at(neighbors[i])
            .add_anonymous_reservation(outgoing * per_user_bandwidth_ * split[i]);
      }
    }
  }

  // With a default (poorly predicting) neighbor, also reserve locally for
  // the self-predicted incoming handoffs.
  if (has_default_neighbor() && env_.directory->has(cell_)) {
    env_.directory->at(cell_).add_anonymous_reservation(self_reservation());
  }
}

void LoungePolicyBase::save_state(sim::CheckpointWriter& w) const {
  w.f64(outgoing_this_slot_);
  w.f64(incoming_this_slot_);
  w.u64(current_slot_);
  save_predictors(w);
}

void LoungePolicyBase::restore_state(sim::CheckpointReader& r) {
  outgoing_this_slot_ = r.f64();
  incoming_this_slot_ = r.f64();
  current_slot_ = std::size_t(r.u64());
  restore_predictors(r);
}

void CafeteriaPolicy::save_predictors(sim::CheckpointWriter& w) const {
  for (const CafeteriaPredictor* p : {&outgoing_, &incoming_}) {
    w.u64(p->history().size());
    for (const double count : p->history()) w.f64(count);
    w.u64(p->latest_slot());
  }
}

void CafeteriaPolicy::restore_predictors(sim::CheckpointReader& r) {
  for (CafeteriaPredictor* p : {&outgoing_, &incoming_}) {
    std::deque<double> window(std::size_t(r.u64()));
    for (double& count : window) count = r.f64();
    p->restore(std::move(window), std::size_t(r.u64()));
  }
}

DefaultLoungePolicy::DefaultLoungePolicy(PolicyEnv env, CellId cell, sim::Duration slot,
                                         qos::BitsPerSecond per_user_bandwidth,
                                         std::optional<ProbabilisticReservation> probabilistic)
    : LoungePolicyBase(std::move(env), cell, slot, per_user_bandwidth),
      probabilistic_(std::move(probabilistic)) {}

qos::BitsPerSecond DefaultLoungePolicy::self_reservation() const {
  if (!probabilistic_.has_value()) return LoungePolicyBase::self_reservation();
  // Section 6.4: with a default neighbor, apply the probabilistic algorithm
  // — reserve at least the eq. 7 quantity. Counts are approximated by the
  // portables currently holding connections here and in the neighbors.
  std::vector<int> here(probabilistic_->type_count(), 0);
  std::vector<int> neighbor(probabilistic_->type_count(), 0);
  here[0] = int(env_.portables_in(cell_).size());
  for (CellId n : env_.map->cell(cell_).neighbors) {
    neighbor[0] += int(env_.portables_in(n).size());
  }
  const int units = probabilistic_->reserved_units(here, neighbor);
  return double(units) * per_user_bandwidth_;
}

}  // namespace imrm::reservation
