// Tests for cell-type learning (Section 6.4): synthetic days with each
// class's signature must be categorized correctly.
#include <gtest/gtest.h>

#include "prediction/cell_classifier.h"
#include "sim/random.h"

namespace imrm::prediction {
namespace {

using mobility::CellClass;
using net::PortableId;
using sim::Duration;
using sim::SimTime;

PortableId user(unsigned id) { return PortableId{id}; }

// An 8-hour day starting at t = 0.
constexpr double kDayHours = 8.0;

CellObservations office_day() {
  CellObservations obs;
  // Three regulars, in at 9-ish for hours at a time, out for lunch.
  for (unsigned u = 0; u < 3; ++u) {
    obs.record_entry(user(u), SimTime::minutes(5.0 + double(u) * 7.0));
    obs.record_exit(user(u), SimTime::hours(3.5 + 0.2 * double(u)), false);
    obs.record_entry(user(u), SimTime::hours(4.5 + 0.1 * double(u)));
    obs.record_exit(user(u), SimTime::hours(7.5 + 0.1 * double(u)), false);
  }
  // The occasional visitor.
  obs.record_entry(user(99), SimTime::hours(2.0));
  obs.record_exit(user(99), SimTime::hours(2.3), false);
  return obs;
}

CellObservations corridor_day(sim::Rng& rng) {
  CellObservations obs;
  unsigned id = 0;
  for (double t = 0.0; t < kDayHours * 3600.0; t += rng.exponential_mean(60.0)) {
    obs.record_entry(user(1000 + id), SimTime::seconds(t));
    obs.record_exit(user(1000 + id), SimTime::seconds(t + rng.uniform(15.0, 45.0)),
                    /*pass_through=*/rng.bernoulli(0.9));
    ++id;
  }
  return obs;
}

CellObservations meeting_room_day(sim::Rng& rng) {
  CellObservations obs;
  unsigned id = 0;
  // Two classes: 9:00-9:50 and 14:00-15:00, 30 attendees each.
  for (double start_h : {1.0, 6.0}) {
    for (int a = 0; a < 30; ++a) {
      const double in = start_h * 3600.0 + rng.uniform(-300.0, 120.0);
      const double out = (start_h + 0.83) * 3600.0 + rng.uniform(0.0, 240.0);
      obs.record_entry(user(2000 + id), SimTime::seconds(in));
      obs.record_exit(user(2000 + id), SimTime::seconds(out), false);
      ++id;
    }
  }
  return obs;
}

CellObservations cafeteria_day(sim::Rng& rng) {
  CellObservations obs;
  unsigned id = 0;
  // Arrival rate ramps smoothly up to a lunch plateau and back down.
  for (double t = 0.0; t < kDayHours * 3600.0; t += 30.0) {
    const double phase = t / (kDayHours * 3600.0);
    const double rate = 0.5 + 2.5 * std::exp(-std::pow((phase - 0.5) / 0.22, 2.0));
    if (rng.uniform() < rate * 30.0 / 60.0 / 4.0) {
      obs.record_entry(user(3000 + id), SimTime::seconds(t));
      obs.record_exit(user(3000 + id),
                      SimTime::seconds(t + rng.uniform(8.0, 25.0) * 60.0), false);
      ++id;
    }
  }
  return obs;
}

CellObservations random_lounge_day(sim::Rng& rng) {
  CellObservations obs;
  unsigned id = 0;
  for (double t = 0.0; t < kDayHours * 3600.0;
       t += rng.exponential_mean(900.0) * rng.uniform(0.05, 3.0)) {
    obs.record_entry(user(4000 + id), SimTime::seconds(t));
    obs.record_exit(user(4000 + id),
                    SimTime::seconds(t + rng.exponential_mean(300.0)), rng.bernoulli(0.2));
    ++id;
  }
  return obs;
}

TEST(CellClassifier, RecognizesOffice) {
  const auto c = classify_cell(office_day());
  EXPECT_EQ(c.cell_class, CellClass::kOffice);
}

TEST(CellClassifier, RecognizesCorridor) {
  sim::Rng rng(5);
  const auto c = classify_cell(corridor_day(rng));
  EXPECT_EQ(c.cell_class, CellClass::kCorridor);
}

TEST(CellClassifier, RecognizesMeetingRoom) {
  sim::Rng rng(6);
  const auto c = classify_cell(meeting_room_day(rng));
  EXPECT_EQ(c.cell_class, CellClass::kMeetingRoom);
}

TEST(CellClassifier, RecognizesCafeteria) {
  sim::Rng rng(7);
  const auto c = classify_cell(cafeteria_day(rng));
  EXPECT_EQ(c.cell_class, CellClass::kCafeteria) << "rough=" << cafeteria_day(rng).roughness();
}

TEST(CellClassifier, RandomLoungeDayNeverLooksLikeOfficeOrCorridor) {
  // Erratic lounge traffic must not match the strong signatures; it may
  // land on lounge or occasionally cafeteria (both "many casual users"),
  // but never office or corridor.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::Rng rng{seed};
    const auto c = classify_cell(random_lounge_day(rng));
    EXPECT_NE(c.cell_class, CellClass::kOffice) << seed;
    EXPECT_NE(c.cell_class, CellClass::kCorridor) << seed;
  }
}

TEST(CellClassifier, TooFewVisitsDefaultsToLounge) {
  CellObservations obs;
  obs.record_entry(user(1), SimTime::minutes(1));
  obs.record_exit(user(1), SimTime::minutes(2), false);
  const auto c = classify_cell(obs);
  EXPECT_EQ(c.cell_class, CellClass::kLounge);
  EXPECT_DOUBLE_EQ(c.scores.at(CellClass::kLounge), 0.0);
}

TEST(CellClassifier, ScoresSumSane) {
  sim::Rng rng(9);
  const auto c = classify_cell(meeting_room_day(rng));
  for (const auto& [cls, score] : c.scores) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
  // The winner's score matches the stored class.
  double best = -1.0;
  CellClass winner = CellClass::kLounge;
  for (const auto& [cls, score] : c.scores) {
    if (score > best) {
      best = score;
      winner = cls;
    }
  }
  EXPECT_EQ(winner, c.cell_class);
}

TEST(CellClassifier, ObservationStatistics) {
  CellObservations obs;
  obs.record_entry(user(1), SimTime::minutes(0));
  obs.record_exit(user(1), SimTime::minutes(10), true);
  obs.record_entry(user(2), SimTime::minutes(5));
  obs.record_exit(user(2), SimTime::minutes(25), false);
  obs.record_entry(user(1), SimTime::minutes(30));
  obs.record_exit(user(1), SimTime::minutes(40), true);

  EXPECT_EQ(obs.total_visits(), 3u);
  EXPECT_EQ(obs.distinct_users(), 2u);
  EXPECT_NEAR(obs.mean_dwell_seconds(), (600.0 + 1200.0 + 600.0) / 3.0, 1e-9);
  EXPECT_NEAR(obs.pass_through_fraction(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(obs.regular_fraction(1), 2.0 / 3.0, 1e-9);
}

TEST(CellClassifier, ActivityShapeStats) {
  CellObservations obs(Duration::minutes(1));
  // Activity only in minute 0 and minute 5: bursty, low duty.
  obs.record_entry(user(1), SimTime::seconds(10));
  obs.record_entry(user(2), SimTime::seconds(20));
  obs.record_entry(user(3), SimTime::minutes(5));
  EXPECT_GT(obs.peak_to_mean(), 1.5);
  EXPECT_NEAR(obs.duty_cycle(), 2.0 / 6.0, 1e-9);
}

// Randomized robustness: each synthetic generator keeps its label across
// seeds (the learning process must be stable day to day).
class ClassifierSeeds : public ::testing::TestWithParam<int> {};

TEST_P(ClassifierSeeds, StableAcrossDays) {
  sim::Rng rng{std::uint64_t(GetParam())};
  EXPECT_EQ(classify_cell(corridor_day(rng)).cell_class, CellClass::kCorridor);
  EXPECT_EQ(classify_cell(meeting_room_day(rng)).cell_class, CellClass::kMeetingRoom);
  EXPECT_EQ(classify_cell(cafeteria_day(rng)).cell_class, CellClass::kCafeteria);
}

INSTANTIATE_TEST_SUITE_P(Days, ClassifierSeeds, ::testing::Range(1, 11));

// --- final-departure eviction (ISSUE 6 S2) --------------------------------

TEST(CellObservationsEviction, DepartedUsersAreEvictedButStatisticsSurvive) {
  CellObservations evicting, retaining;
  // 60 users with skewed visit counts; both cells see the same traffic, one
  // evicts on final departure.
  for (unsigned u = 0; u < 60; ++u) {
    const unsigned visits = u % 7 + 1;
    for (unsigned v = 0; v < visits; ++v) {
      const SimTime in = SimTime::minutes(double(u) * 3.0 + double(v));
      const SimTime out = in + Duration::seconds(30);
      evicting.record_entry(user(u), in);
      evicting.record_exit(user(u), out, false);
      retaining.record_entry(user(u), in);
      retaining.record_exit(user(u), out, false);
    }
    evicting.record_final_departure(user(u));
  }
  // Eviction keeps memory O(resident): no per-user entries remain.
  EXPECT_EQ(evicting.resident_entries(), 0u);
  EXPECT_GT(retaining.resident_entries(), 0u);
  // The classifier inputs are unchanged.
  EXPECT_EQ(evicting.distinct_users(), retaining.distinct_users());
  EXPECT_EQ(evicting.total_visits(), retaining.total_visits());
  EXPECT_DOUBLE_EQ(evicting.mean_dwell_seconds(), retaining.mean_dwell_seconds());
  for (const std::size_t k : {1u, 4u, 16u}) {
    EXPECT_DOUBLE_EQ(evicting.regular_fraction(k), retaining.regular_fraction(k))
        << "k=" << k;
  }
  EXPECT_EQ(classify_cell(evicting).cell_class, classify_cell(retaining).cell_class);
}

TEST(CellObservationsEviction, MemoryIsBoundedByResidents) {
  CellObservations obs;
  std::size_t peak_resident = 0;
  for (unsigned u = 0; u < 20000; ++u) {
    obs.record_entry(user(u), SimTime::seconds(double(u)));
    obs.record_exit(user(u), SimTime::seconds(double(u) + 10.0), false);
    obs.record_final_departure(user(u));
    peak_resident = std::max(peak_resident, obs.resident_entries());
  }
  // 20k users passed through; the per-user tables never grew past the
  // churn's live set.
  EXPECT_EQ(obs.resident_entries(), 0u);
  EXPECT_LE(peak_resident, 2u);
  EXPECT_EQ(obs.distinct_users(), 20000u);
  EXPECT_EQ(obs.total_visits(), 20000u);
}

TEST(CellObservationsEviction, DepartureOfUnknownUserIsIgnored) {
  CellObservations obs;
  obs.record_final_departure(user(5));
  EXPECT_EQ(obs.distinct_users(), 0u);
  obs.record_entry(user(1), SimTime::seconds(1));
  obs.record_final_departure(user(1));
  obs.record_final_departure(user(1));  // double departure is a no-op
  EXPECT_EQ(obs.distinct_users(), 1u);
}

}  // namespace
}  // namespace imrm::prediction
