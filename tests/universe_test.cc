// Tests for the zone hierarchy (Section 3.4.1): per-zone profile servers
// and portable-profile migration across zone boundaries.
#include <gtest/gtest.h>

#include "mobility/floorplan.h"
#include "profiles/universe.h"

namespace imrm::profiles {
namespace {

using mobility::CellClass;
using mobility::CellMap;
using net::PortableId;
using net::ZoneId;

/// A 4-cell chain split into two zones: [c0, c1 | c2, c3].
struct TwoZoneMap {
  CellMap map;
  CellId c0, c1, c2, c3;

  TwoZoneMap() {
    c0 = map.add_cell(CellClass::kCorridor, "c0", ZoneId{0});
    c1 = map.add_cell(CellClass::kCorridor, "c1", ZoneId{0});
    c2 = map.add_cell(CellClass::kCorridor, "c2", ZoneId{1});
    c3 = map.add_cell(CellClass::kCorridor, "c3", ZoneId{1});
    map.connect(c0, c1);
    map.connect(c1, c2);
    map.connect(c2, c3);
  }
};

mobility::HandoffEvent handoff(PortableId p, CellId prev, CellId from, CellId to) {
  mobility::HandoffEvent e;
  e.portable = p;
  e.prev_of_from = prev;
  e.from = from;
  e.to = to;
  return e;
}

TEST(Universe, IntraZoneHandoffStaysPut) {
  TwoZoneMap z;
  Universe universe(z.map, 2);
  universe.record_handoff(handoff(PortableId{1}, CellId::invalid(), z.c0, z.c1));
  EXPECT_EQ(universe.migrations(), 0u);
  EXPECT_EQ(universe.residence(PortableId{1}), ZoneId{0});
  EXPECT_NE(universe.server(ZoneId{0}).portable_profile(PortableId{1}), nullptr);
  EXPECT_EQ(universe.server(ZoneId{1}).portable_profile(PortableId{1}), nullptr);
}

TEST(Universe, CrossZoneHandoffMigratesProfile) {
  TwoZoneMap z;
  Universe universe(z.map, 2);
  universe.record_handoff(handoff(PortableId{1}, CellId::invalid(), z.c0, z.c1));
  universe.record_handoff(handoff(PortableId{1}, z.c0, z.c1, z.c2));  // zone 0 -> 1
  EXPECT_EQ(universe.migrations(), 1u);
  EXPECT_EQ(universe.residence(PortableId{1}), ZoneId{1});
  // The profile moved wholesale: history recorded in zone 0 is queryable
  // from zone 1's server.
  const PortableProfile* profile = universe.server(ZoneId{1}).portable_profile(PortableId{1});
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->predict(z.c0, z.c1), z.c2);
  EXPECT_EQ(universe.server(ZoneId{0}).portable_profile(PortableId{1}), nullptr);
}

TEST(Universe, LookupFollowsResidence) {
  TwoZoneMap z;
  Universe universe(z.map, 2);
  EXPECT_EQ(universe.portable_profile(PortableId{9}), nullptr);
  universe.record_handoff(handoff(PortableId{9}, CellId::invalid(), z.c1, z.c2));
  ASSERT_NE(universe.portable_profile(PortableId{9}), nullptr);
  universe.record_handoff(handoff(PortableId{9}, z.c1, z.c2, z.c3));
  EXPECT_EQ(universe.residence(PortableId{9}), ZoneId{1});
  ASSERT_NE(universe.portable_profile(PortableId{9}), nullptr);
}

TEST(Universe, CellProfilesStayWithTheirZone) {
  TwoZoneMap z;
  Universe universe(z.map, 2);
  universe.record_handoff(handoff(PortableId{1}, CellId::invalid(), z.c1, z.c2));
  universe.record_handoff(handoff(PortableId{1}, z.c1, z.c2, z.c3));
  // c1's profile lives in zone 0, c2's in zone 1 — regardless of who moved.
  EXPECT_NE(universe.server(ZoneId{0}).cell_profile(z.c1), nullptr);
  EXPECT_EQ(universe.server(ZoneId{1}).cell_profile(z.c1), nullptr);
  EXPECT_NE(universe.server(ZoneId{1}).cell_profile(z.c2), nullptr);
}

TEST(Universe, RoundTripKeepsHistory) {
  TwoZoneMap z;
  Universe universe(z.map, 2);
  const PortableId p{5};
  // Walk 0 -> 3 and back twice; the profile accumulates across migrations.
  for (int round = 0; round < 2; ++round) {
    universe.record_handoff(handoff(p, CellId::invalid(), z.c0, z.c1));
    universe.record_handoff(handoff(p, z.c0, z.c1, z.c2));
    universe.record_handoff(handoff(p, z.c1, z.c2, z.c3));
    universe.record_handoff(handoff(p, z.c2, z.c3, z.c2));
    universe.record_handoff(handoff(p, z.c3, z.c2, z.c1));
    universe.record_handoff(handoff(p, z.c2, z.c1, z.c0));
  }
  EXPECT_EQ(universe.migrations(), 2u * 2u);  // two crossings per round trip
  const PortableProfile* profile = universe.portable_profile(p);
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->observations(z.c0, z.c1), 2u);
  EXPECT_EQ(profile->observations(z.c1, z.c2), 2u);
}

TEST(Universe, RoundRobinZoneAssignment) {
  CellMap map = mobility::campus_environment();
  assign_zones_round_robin(map, 3);
  std::size_t in_zone[3] = {0, 0, 0};
  for (const auto& cell : map.cells()) {
    ASSERT_LT(cell.zone.value(), 3u);
    ++in_zone[cell.zone.value()];
  }
  // Roughly balanced partition.
  for (std::size_t z = 0; z < 3; ++z) EXPECT_GT(in_zone[z], 0u);
  Universe universe(map, 3);
  EXPECT_EQ(universe.zone_count(), 3u);
}

}  // namespace
}  // namespace imrm::profiles
