// Cell-type learning (Section 6.4, final paragraph).
//
// "In the case that a cell does not have its cell profile, the base station
//  has to execute the default reservation algorithm initially; meanwhile,
//  ... the profile server aggregates the handoff information for the cell
//  ... and tries to categorize the cell on basis of its profile behavior."
//
// The classifier consumes a day of per-slot handoff counts plus simple
// visit statistics and scores the class signatures the paper describes:
//   office       — few distinct users, most visits by "regulars", long dwell
//   corridor     — short dwells, visitors pass through (enter from one
//                  neighbor, leave to a different one)
//   meeting room — activity concentrated in sharp bursts around a few
//                  instants (high peak-to-mean, low occupancy duty cycle)
//   cafeteria    — smooth, slowly varying activity (small step-to-step
//                  change relative to level)
//   default      — none of the above: random time-varying activity
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mobility/cell.h"
#include "sim/flat_map.h"
#include "sim/time.h"

namespace imrm::prediction {

/// A day (or longer) of observations about one unlabeled cell.
class CellObservations {
 public:
  explicit CellObservations(sim::Duration slot = sim::Duration::minutes(5))
      : slot_(slot) {}

  /// A portable entered the cell at `t`.
  void record_entry(net::PortableId portable, sim::SimTime t);
  /// The same portable left at `t` toward `pass_through ? a different
  /// neighbor than it came from : back where it came from`.
  void record_exit(net::PortableId portable, sim::SimTime t, bool pass_through);

  /// The portable has left the system for good (teardown / end of day):
  /// folds its visit count into a bounded departed-user summary and drops
  /// its per-user entries, so classifier memory is O(resident portables)
  /// rather than O(everyone ever seen). Statistics stay exact except
  /// regular_fraction with k larger than the summary width (16).
  void record_final_departure(net::PortableId portable);

  [[nodiscard]] const std::vector<double>& activity() const { return activity_; }
  [[nodiscard]] std::size_t total_visits() const { return total_visits_; }
  [[nodiscard]] std::size_t distinct_users() const {
    return visits_by_user_.size() + departed_users_;
  }
  /// Per-user entries currently held (departed users excluded) — the
  /// quantity the eviction path keeps bounded.
  [[nodiscard]] std::size_t resident_entries() const {
    return visits_by_user_.size() + entered_at_.size();
  }
  /// Estimated heap footprint in bytes.
  [[nodiscard]] std::size_t memory_bytes() const {
    return activity_.capacity() * sizeof(double) + visits_by_user_.memory_bytes() +
           entered_at_.memory_bytes() + departed_top_.capacity() * sizeof(std::size_t);
  }
  [[nodiscard]] double mean_dwell_seconds() const;
  [[nodiscard]] double pass_through_fraction() const;
  /// Fraction of visits made by the top `k` users.
  [[nodiscard]] double regular_fraction(std::size_t k = 4) const;

  // Shape statistics of the per-slot activity series.
  [[nodiscard]] double peak_to_mean() const;
  /// Mean |x[i+1]-x[i]| divided by the mean level — low for slowly varying.
  [[nodiscard]] double roughness() const;
  /// Fraction of slots carrying any activity.
  [[nodiscard]] double duty_cycle() const;

 private:
  /// Departed visit counts kept for regular_fraction; 16 covers the paper's
  /// top-4 "regulars" question with a wide margin.
  static constexpr std::size_t kDepartedTopK = 16;

  sim::Duration slot_;
  std::vector<double> activity_;  // entries+exits per slot
  sim::FlatMap<std::uint32_t, std::size_t> visits_by_user_;
  sim::FlatMap<std::uint32_t, sim::SimTime> entered_at_;
  std::vector<std::size_t> departed_top_;  // descending, at most kDepartedTopK
  std::size_t departed_users_ = 0;
  std::size_t total_visits_ = 0;
  std::size_t pass_throughs_ = 0;
  std::size_t exits_ = 0;
  double dwell_sum_ = 0.0;
  std::size_t dwell_count_ = 0;

  void bump(sim::SimTime t);
};

struct Classification {
  mobility::CellClass cell_class = mobility::CellClass::kLounge;
  /// Per-class scores in [0, 1]; the argmax is `cell_class`.
  std::map<mobility::CellClass, double> scores;
};

/// Scores every class signature and returns the best match. Cells with too
/// little data (fewer than `min_visits`) default to kLounge at score 0.
/// The default threshold is deliberately low: an office with three regular
/// occupants produces only a handful of visits per day.
[[nodiscard]] Classification classify_cell(const CellObservations& obs,
                                           std::size_t min_visits = 5);

}  // namespace imrm::prediction
