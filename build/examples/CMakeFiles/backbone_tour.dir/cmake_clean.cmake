file(REMOVE_RECURSE
  "CMakeFiles/backbone_tour.dir/backbone_tour.cc.o"
  "CMakeFiles/backbone_tour.dir/backbone_tour.cc.o.d"
  "backbone_tour"
  "backbone_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backbone_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
