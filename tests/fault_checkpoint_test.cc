// Warm-checkpoint forking for the convergence-under-faults harness (ISSUE 4):
// a fault sweep's replications all share one clean warm phase, so the harness
// freezes it once and forks every variant from the image. Equivalence is
// byte-level — a forked variant must match a cold run in results and metrics
// JSON — and the crash-recovery path must work when the crash happens after
// the restore (checkpoint -> restore -> cell restart -> resync -> fixed
// point).
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "fault/convergence.h"
#include "obs/metrics.h"
#include "sim/checkpoint.h"
#include "sim/time.h"

namespace imrm::fault {
namespace {

using sim::SimTime;

std::string to_json(const obs::Snapshot& snapshot) {
  std::ostringstream os;
  snapshot.write_json(os);
  return os.str();
}

/// Lossy run with a warm barrier: fault-free until t=5s (the two-cell system
/// converges within milliseconds), then ADVERTISE loss plus a cell restart.
ConvergenceConfig barrier_config() {
  ConvergenceConfig config;
  config.problem = two_cell_problem();
  config.faults = LinkFaultModel::bernoulli_loss(0.1);
  config.faults_start = SimTime::seconds(5.0);
  config.faults_stop = SimTime::seconds(5.5);
  config.schedule.crash(0, SimTime::seconds(5.2));
  config.horizon = SimTime::seconds(35.0);
  config.seed = 11;
  return config;
}

void expect_same_result(const ConvergenceResult& a, const ConvergenceResult& b) {
  EXPECT_EQ(a.safety_held, b.safety_held);
  EXPECT_EQ(a.reconverged, b.reconverged);
  EXPECT_EQ(a.reconverge_seconds, b.reconverge_seconds);
  EXPECT_EQ(a.worst_overshoot, b.worst_overshoot);
  EXPECT_EQ(a.worst_transient_overshoot, b.worst_transient_overshoot);
  EXPECT_EQ(a.final_deviation, b.final_deviation);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.final_rates, b.final_rates);
}

TEST(WarmFork, ForkedVariantMatchesColdRunByteForByte) {
  ConvergenceConfig config = barrier_config();

  obs::Registry cold_registry;
  config.metrics = &cold_registry;
  const ConvergenceResult cold = run_convergence(config);

  config.metrics = nullptr;
  const sim::Checkpoint warm = make_warm_checkpoint(config);
  obs::Registry fork_registry;
  config.metrics = &fork_registry;
  const ConvergenceResult forked = run_convergence_from(config, warm);

  expect_same_result(forked, cold);
  EXPECT_TRUE(forked.reconverged);
  EXPECT_TRUE(forked.safety_held);
  EXPECT_EQ(to_json(fork_registry.snapshot()), to_json(cold_registry.snapshot()));
}

TEST(WarmFork, OneImageServesEverySeed) {
  // The warm phase draws no randomness, so the image is seed-independent:
  // variants with different seeds (different loss realizations) all fork
  // from the same bytes and each matches its own cold run.
  ConvergenceConfig config = barrier_config();
  const sim::Checkpoint warm = make_warm_checkpoint(config);
  for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
    SCOPED_TRACE(seed);
    config.seed = seed;
    const ConvergenceResult cold = run_convergence(config);
    const ConvergenceResult forked = run_convergence_from(config, warm);
    expect_same_result(forked, cold);
  }
}

TEST(WarmFork, ImageSurvivesSerializationToBytes) {
  ConvergenceConfig config = barrier_config();
  const ConvergenceResult cold = run_convergence(config);
  const sim::Checkpoint warm = make_warm_checkpoint(config);
  const sim::Checkpoint reloaded = sim::Checkpoint::deserialize(warm.serialize());
  expect_same_result(run_convergence_from(config, reloaded), cold);
}

TEST(WarmFork, CrashAfterRestoreRecoversThroughResync) {
  // The crash-recovery property: restore the warm image, kill a base
  // station's soft state, and the hardened protocol must still resync back
  // to the fault-free fixed point — restoring must not lose whatever the
  // resync path needs.
  ConvergenceConfig config = barrier_config();
  config.faults = LinkFaultModel::gilbert_elliott(0.3, 0.95, 5.0);  // bursty loss
  config.schedule = FaultSchedule{};
  config.schedule.crash(0, SimTime::seconds(5.1));
  config.schedule.crash(1, SimTime::seconds(5.3));
  const sim::Checkpoint warm = make_warm_checkpoint(config);
  const ConvergenceResult forked = run_convergence_from(config, warm);
  EXPECT_TRUE(forked.safety_held);
  EXPECT_TRUE(forked.reconverged) << "final deviation " << forked.final_deviation;
  expect_same_result(forked, run_convergence(config));
}

TEST(WarmFork, SweepForkedEqualsColdAtEveryThreadCount) {
  ConvergenceSweepConfig sweep;
  sweep.base = barrier_config();
  sweep.replications = 8;
  sweep.threads = 1;
  sweep.fork_from_warm = false;
  const ConvergenceSweepResult cold = run_convergence_sweep(sweep);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    SCOPED_TRACE(threads);
    sweep.threads = threads;
    sweep.fork_from_warm = true;
    const ConvergenceSweepResult forked = run_convergence_sweep(sweep);
    EXPECT_EQ(forked.safety_failures, cold.safety_failures);
    EXPECT_EQ(forked.reconverge_failures, cold.reconverge_failures);
    EXPECT_EQ(forked.worst_overshoot, cold.worst_overshoot);
    EXPECT_EQ(forked.worst_final_deviation, cold.worst_final_deviation);
    EXPECT_EQ(forked.reconverge_p50, cold.reconverge_p50);
    EXPECT_EQ(forked.reconverge_p90, cold.reconverge_p90);
    EXPECT_EQ(forked.reconverge_p99, cold.reconverge_p99);
    EXPECT_EQ(to_json(forked.metrics), to_json(cold.metrics));
  }
}

TEST(WarmFork, CheckpointBeforeQuiescenceThrows) {
  ConvergenceConfig config = barrier_config();
  config.faults_start = SimTime::seconds(1e-6);  // protocol still mid-flight
  EXPECT_THROW((void)make_warm_checkpoint(config), sim::CheckpointError);
}

TEST(WarmFork, RestoreFromEmptyCheckpointThrows) {
  const ConvergenceConfig config = barrier_config();
  EXPECT_THROW((void)run_convergence_from(config, sim::Checkpoint{}),
               sim::CheckpointError);
}

}  // namespace
}  // namespace imrm::fault
