// Figure 2 reproduction: handoff activity in a lounge.
//
// The figure illustrates the meeting-room lounge signature — bursts of
// handoffs at the start and conclusion of meetings with little in between.
// We run the classroom workload over a full "day" of two back-to-back
// classes and plot the room's handoff activity per minute.
#include <iostream>

#include "experiments/classroom.h"
#include "stats/table.h"

using namespace imrm;
using namespace imrm::experiments;

int main() {
  std::cout << "== Figure 2: handoff activity in a lounge (meeting room) ==\n";
  ClassroomConfig config;
  config.class_size = 40;
  config.meeting = {sim::SimTime::minutes(60), sim::SimTime::minutes(110), 40};
  config.policy = PolicyKind::kMeetingRoom;
  config.seed = 11;
  const ClassroomResult result = run_classroom(config);

  // Total room activity = handoffs in + handoffs out, per minute.
  const std::size_t bins =
      std::max(result.into_room.bin_count(), result.out_of_room.bin_count());
  std::vector<double> activity(bins, 0.0);
  for (std::size_t i = 0; i < result.into_room.bin_count(); ++i) {
    activity[i] += result.into_room.bin_value(i);
  }
  for (std::size_t i = 0; i < result.out_of_room.bin_count(); ++i) {
    activity[i] += result.out_of_room.bin_value(i);
  }

  std::cout << "meeting from t=60 to t=110 min; handoffs in+out of the room:\n\n";
  std::vector<double> values;
  std::vector<std::string> labels;
  for (std::size_t m = 45; m < bins && m <= 125; m += 2) {
    double v = activity[m];
    if (m + 1 < bins) v += activity[m + 1];
    values.push_back(v);
    labels.push_back("t=" + std::to_string(m) + "-" + std::to_string(m + 2));
  }
  stats::print_ascii_bars(std::cout, values, labels, 50);

  std::cout << "\nThe spike structure (burst at the start, quiet during, burst at the\n"
               "end) is what motivates the booking-calendar reservation policy.\n";
  return 0;
}
