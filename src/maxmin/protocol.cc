#include "maxmin/protocol.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "obs/metrics.h"

namespace imrm::maxmin {

void DistributedProtocol::LinkNode::add_member(ConnIndex conn) {
  assert(!has(conn));
  index.insert(std::uint64_t(conn), std::uint32_t(members.size()));
  members.push_back(conn);
  recorded.push_back(0.0);
  state.emplace_back();
}

void DistributedProtocol::LinkNode::remove_member(ConnIndex conn) {
  const std::uint32_t* pos_ptr = index.find(std::uint64_t(conn));
  if (!pos_ptr) return;
  const std::uint32_t pos = *pos_ptr;
  const std::uint32_t last = std::uint32_t(members.size() - 1);
  if (pos != last) {
    // Swap-remove; re-point the moved member's index entry first.
    members[pos] = members[last];
    recorded[pos] = recorded[last];
    state[pos] = state[last];
    *index.find(std::uint64_t(members[pos])) = pos;
  }
  members.pop_back();
  recorded.pop_back();
  state.pop_back();
  index.erase(std::uint64_t(conn));
}

DistributedProtocol::DistributedProtocol(sim::Simulator& simulator, const Problem& problem,
                                         Config config)
    : simulator_(&simulator), config_(config) {
  assert(problem.valid());
  links_.resize(problem.links.size());
  for (std::size_t li = 0; li < problem.links.size(); ++li) {
    links_[li].mu.set_excess_capacity(problem.links[li].excess_capacity);
  }
  for (const ProblemConnection& conn : problem.connections) {
    add_connection(conn.path, conn.demand);
  }
}

std::vector<ConnIndex> DistributedProtocol::bottleneck_set(LinkIndex link) const {
  const LinkNode& node = links_.at(link);
  std::vector<ConnIndex> set;
  for (std::size_t i = 0; i < node.members.size(); ++i) {
    if (node.state[i].in_bottleneck) set.push_back(node.members[i]);
  }
  std::sort(set.begin(), set.end());
  return set;
}

ConnIndex DistributedProtocol::add_connection(std::vector<LinkIndex> path, double demand) {
  assert(!path.empty());
  ++generation_;
  // Footnote 11: finite demand is an artificial entry link of that capacity.
  if (demand != kInfiniteDemand) {
    const LinkIndex artificial = links_.size();
    links_.emplace_back();
    links_.back().mu.set_excess_capacity(demand);
    path.insert(path.begin(), artificial);
  }
  const ConnIndex conn = paths_.size();
  assert(conn < (ConnIndex{1} << 32) && links_.size() + path.size() < (std::size_t{1} << 32) &&
         "indices must fit the packed trigger key");
  paths_.push_back(std::move(path));
  conn_alive_.push_back(true);
  rates_.push_back(0.0);
  for (LinkIndex li : paths_[conn]) {
    links_[li].add_member(conn);
    recompute_mu(li);
  }
  // The entry switch starts the adaptation for the newcomer.
  initiate(paths_[conn].front(), conn);
  return conn;
}

void DistributedProtocol::remove_connection(ConnIndex conn) {
  assert(conn < paths_.size() && conn_alive_[conn]);
  ++generation_;
  conn_alive_[conn] = false;
  rates_[conn] = 0.0;
  // Abort an in-flight adaptation for this connection; stale packets are
  // invalidated by bumping the token.
  if (active_ && active_->conn == conn) {
    active_.reset();
    ++active_token_;
  }
  for (LinkIndex li : paths_[conn]) {
    LinkNode& node = links_[li];
    node.remove_member(conn);
    recompute_mu(li);
    if (config_.policy == InitiationPolicy::kFlooding) {
      for (ConnIndex other : node.members) initiate(li, other);
    } else {
      // Freed capacity: offer it to the connections that could grow here.
      initiate_growers(li, kNoConnection);
    }
  }
  pump();
}

void DistributedProtocol::start_all() {
  for (ConnIndex ci = 0; ci < paths_.size(); ++ci) {
    if (conn_alive_[ci]) initiate(paths_[ci].front(), ci);
  }
}

void DistributedProtocol::set_link_excess_capacity(LinkIndex link, double new_excess) {
  ++generation_;
  LinkNode& node = links_.at(link);
  const double old_excess = node.mu.excess_capacity();
  node.mu.set_excess_capacity(new_excess);
  recompute_mu(link);

  if (new_excess < 0.0) {
    // b'_av,l < 0: notify connections to renegotiate (Section 5.3).
    for (ConnIndex conn : node.members) renegotiations_.push_back(conn);
  }

  if (config_.policy == InitiationPolicy::kFlooding) {
    for (ConnIndex conn : node.members) initiate(link, conn);
    return;
  }

  if (new_excess < old_excess) {
    // Capacity loss: squeeze connections consuming above the advertised rate.
    initiate_over_consumers(link, kNoConnection);
  } else {
    // Eq. (2): upward adaptation when the new excess exceeds the recorded
    // consumption by at least delta.
    double consumed = 0.0;
    for (const double rate : node.recorded) consumed += rate;
    if (new_excess >= consumed + config_.delta) {
      initiate_growers(link, kNoConnection);
    }
  }
}

void DistributedProtocol::recompute_mu(LinkIndex link) {
  // The recorded rates already sit in one contiguous array — no copy.
  links_[link].mu.recompute(links_[link].recorded);
  trace_mu(link, links_[link].mu.current());
}

// ---- trigger queue ------------------------------------------------------

bool DistributedProtocol::trigger_valid(LinkIndex link, ConnIndex conn) const {
  if (cap_hit_) return false;
  if (conn >= conn_alive_.size() || !conn_alive_[conn]) return false;
  const LinkNode& node = links_.at(link);
  const std::size_t pos = node.position_of(conn);
  const double recorded = pos < node.members.size() ? node.recorded[pos] : 0.0;
  // A negative advertised rate (capacity below the guaranteed minima) can
  // only offer zero excess; comparing against the clamped offer keeps the
  // squeeze-to-zero case from re-triggering forever.
  const double mu = std::max(node.mu.current(), 0.0);
  // Over-consumer: a round strictly reduces the rate — always progress.
  if (recorded > mu + config_.epsilon) return true;
  // The flooding (preliminary) algorithm re-advertises every connection once
  // per external event, whether or not its state could change: the paper's
  // "global ID and a sequence number ... to avoid possible infinite loop"
  // translates to a per-generation guard here. This is exactly the
  // unnecessary traffic the refinement removes.
  if (config_.policy == InitiationPolicy::kFlooding) {
    if (pos >= node.members.size() ||
        node.state[pos].last_flood_generation != generation_) {
      return true;
    }
  }
  // Nothing can change when the connection already sits at the advertised
  // rate here: the round would stamp mu and return at most mu.
  if (std::fabs(recorded - mu) <= config_.epsilon) return false;
  // Grower: the round succeeds unless the connection is bottlenecked
  // elsewhere, in which case it is futile. Suppress re-running a grower
  // round from an identical (advertised, recorded) state — the previous
  // identical attempt already proved it futile.
  if (pos < node.members.size() && node.state[pos].has_last_completed &&
      std::fabs(node.state[pos].last_completed_mu - mu) <= config_.epsilon &&
      std::fabs(node.state[pos].last_completed_rate - recorded) <= config_.epsilon) {
    return false;
  }
  return true;
}

void DistributedProtocol::initiate(LinkIndex link, ConnIndex conn) {
  if (!trigger_valid(link, conn)) return;
  if (!queued_.insert(trigger_key(link, conn), true)) return;  // already queued
  trigger_queue_.emplace_back(link, conn);
  pump();
}

void DistributedProtocol::initiate_growers(LinkIndex link, ConnIndex except) {
  // Connections receiving less than the advertised rate could grow here;
  // those bottlenecked elsewhere complete one futile round and are then
  // suppressed by the post-completion state memory.
  LinkNode& node = links_[link];
  const double mu = std::max(node.mu.current(), 0.0);
  std::vector<ConnIndex> targets;
  for (std::size_t i = 0; i < node.members.size(); ++i) {
    if (node.members[i] != except && node.recorded[i] < mu - config_.epsilon) {
      targets.push_back(node.members[i]);
    }
  }
  std::sort(targets.begin(), targets.end());  // deterministic order
  for (ConnIndex other : targets) initiate(link, other);
}

void DistributedProtocol::initiate_over_consumers(LinkIndex link, ConnIndex except) {
  LinkNode& node = links_[link];
  const double mu = std::max(node.mu.current(), 0.0);
  std::vector<ConnIndex> targets;
  for (std::size_t i = 0; i < node.members.size(); ++i) {
    if (node.members[i] != except && node.recorded[i] > mu + config_.epsilon) {
      targets.push_back(node.members[i]);
    }
  }
  std::sort(targets.begin(), targets.end());
  for (ConnIndex other : targets) initiate(link, other);
}

void DistributedProtocol::pump() {
  if (active_ || cap_hit_) return;
  while (!trigger_queue_.empty()) {
    const auto [link, conn] = trigger_queue_.front();
    trigger_queue_.pop_front();
    queued_.erase(trigger_key(link, conn));
    if (!trigger_valid(link, conn)) continue;  // state moved on; now moot
    if (config_.policy == InitiationPolicy::kFlooding) {
      LinkNode& node = links_[link];
      const std::size_t pos = node.position_of(conn);
      if (pos < node.members.size()) {
        node.state[pos].last_flood_generation = generation_;
      }
    }
    active_ = Adaptation{link, conn, config_.round_trips, std::nullopt, std::nullopt};
    ++active_token_;
    ++rounds_run_;
    round_started_ = simulator_->now();
    launch_round();
    return;
  }
}

// ---- one adaptation round ----------------------------------------------

void DistributedProtocol::launch_round() {
  assert(active_);
  Adaptation& a = *active_;
  recompute_mu(a.trigger_link);
  // The excess share offered can never be negative: when capacity falls
  // below the guaranteed minima the offer is zero and renegotiation (already
  // signalled) must shrink the minima themselves.
  const double stamped = std::max(links_[a.trigger_link].mu.current(), 0.0);
  a.returned_upstream.reset();
  a.returned_downstream.reset();

  const auto& path = paths_[a.conn];
  const auto pos_it = std::find(path.begin(), path.end(), a.trigger_link);
  assert(pos_it != path.end());
  const std::size_t pos = std::size_t(pos_it - path.begin());

  // Upstream leg covers links path[pos-1] .. path[0]; downstream leg covers
  // path[pos+1] .. path.back(). The initiator's own advertised rate is the
  // initial stamp, so the returned minima jointly cover the whole path.
  auto send = [&](Direction dir) {
    Advertise packet{a.conn, stamped, active_token_, dir, false, pos};
    const bool empty_leg = (dir == Direction::kUpstream && pos == 0) ||
                           (dir == Direction::kDownstream && pos + 1 >= path.size());
    if (empty_leg) {
      packet.returning = true;
    } else {
      packet.position = dir == Direction::kUpstream ? pos - 1 : pos + 1;
    }
    simulator_->after(config_.hop_latency,
                      [this, packet]() mutable { deliver_advertise(packet); });
    ++messages_sent_;
  };
  send(Direction::kUpstream);
  send(Direction::kDownstream);
  if (messages_sent_ >= config_.message_cap) cap_hit_ = true;
}

void DistributedProtocol::deliver_advertise(Advertise packet) {
  if (!active_ || packet.token != active_token_) return;  // stale round
  if (!conn_alive_[packet.conn]) return;

  if (packet.returning) {
    Adaptation& a = *active_;
    if (packet.direction == Direction::kUpstream) {
      a.returned_upstream = packet.stamped;
    } else {
      a.returned_downstream = packet.stamped;
    }
    if (a.returned_upstream && a.returned_downstream) on_round_trip_complete();
    return;
  }

  const auto& path = paths_[packet.conn];
  handle_advertise_at(path[packet.position], packet);

  // Advance along the leg; reflect at the endpoint back to the initiator.
  const bool at_end = packet.direction == Direction::kUpstream
                          ? packet.position == 0
                          : packet.position + 1 >= path.size();
  if (at_end) {
    packet.returning = true;
  } else {
    packet.position += packet.direction == Direction::kUpstream ? std::size_t(-1) : 1;
  }
  simulator_->after(config_.hop_latency,
                    [this, packet]() mutable { deliver_advertise(packet); });
  ++messages_sent_;
  if (messages_sent_ >= config_.message_cap) cap_hit_ = true;
}

void DistributedProtocol::handle_advertise_at(LinkIndex link, Advertise& packet) {
  LinkNode& node = links_[link];
  const std::size_t pos = node.position_of(packet.conn);
  assert(pos < node.members.size() && "ADVERTISE for a non-member connection");
  const double received = packet.stamped;
  node.recorded[pos] = received;
  recompute_mu(link);
  const double mu = node.mu.current();

  // Clamp: "if the stamped rate is higher or equal to the advertised rate,
  // the stamped rate is reduced to the advertised rate" (never below zero:
  // excess shares cannot be negative).
  const double offer = std::max(mu, 0.0);
  if (received >= offer) {
    packet.stamped = offer;
    node.recorded[pos] = offer;
  }

  // Maintain M(l): add if mu < stamped (this link constrains the connection),
  // remove if mu > stamped (bottleneck is elsewhere).
  if (mu < received - config_.epsilon) {
    node.state[pos].in_bottleneck = true;
  } else if (mu > received + config_.epsilon) {
    node.state[pos].in_bottleneck = false;
  }

  // Preliminary algorithm: every switch that receives an ADVERTISE initiates
  // ADVERTISE packets for every other connection traversing the same link.
  if (config_.policy == InitiationPolicy::kFlooding) {
    std::vector<ConnIndex> all;
    for (ConnIndex other : node.members) {
      if (other != packet.conn) all.push_back(other);
    }
    std::sort(all.begin(), all.end());
    for (ConnIndex other : all) initiate(link, other);
  }
}

void DistributedProtocol::on_round_trip_complete() {
  assert(active_);
  Adaptation& a = *active_;
  --a.trips_left;
  if (a.trips_left > 0 && !cap_hit_) {
    ++active_token_;  // retire packets of the finished trip
    launch_round();
    return;
  }
  const double final_rate = std::min(*a.returned_upstream, *a.returned_downstream);
  send_update(a.conn, final_rate);
}

void DistributedProtocol::send_update(ConnIndex conn, double rate) {
  assert(active_ && active_->conn == conn);
  trace_update(conn, rate);
  const auto path = paths_[conn];
  messages_sent_ += path.size();
  if (messages_sent_ >= config_.message_cap) cap_hit_ = true;
  const sim::Duration travel =
      sim::Duration::seconds(config_.hop_latency.to_seconds() * double(path.size()));
  const std::uint64_t token = active_token_;
  simulator_->after(travel, [this, conn, rate, token]() {
    if (!active_ || token != active_token_ || !conn_alive_[conn]) return;
    finish_adaptation(rate);
  });
}

void DistributedProtocol::finish_adaptation(double final_rate) {
  const Adaptation a = *active_;
  const ConnIndex conn = a.conn;
  rates_[conn] = final_rate;

  // Apply the UPDATE at every link, then evaluate the refinement cascades
  // from the now-consistent state.
  for (LinkIndex li : paths_[conn]) {
    LinkNode& node = links_[li];
    const std::size_t pos = node.position_of(conn);
    assert(pos < node.members.size());
    node.recorded[pos] = final_rate;
    recompute_mu(li);
  }

  // Record the post-completion state at the triggering link so identical
  // re-triggers are suppressed.
  {
    LinkNode& trigger_node = links_[a.trigger_link];
    const std::size_t pos = trigger_node.position_of(conn);
    assert(pos < trigger_node.members.size());
    ConnState& state = trigger_node.state[pos];
    state.has_last_completed = true;
    state.last_completed_mu = trigger_node.mu.current();
    state.last_completed_rate = final_rate;
    // The connection considers the trigger link its bottleneck iff no other
    // link clamped the rate below our advertised rate (M(l) upkeep, done
    // "only after it completes the current adaptation process").
    state.in_bottleneck = final_rate >= trigger_node.mu.current() - config_.epsilon;
  }

  trace_round_complete(conn, final_rate);
  active_.reset();
  ++active_token_;

  for (LinkIndex li : paths_[conn]) {
    if (config_.policy == InitiationPolicy::kFlooding) {
      // Preliminary algorithm: re-advertise for every connection sharing the
      // link, regardless of what changed.
      std::vector<ConnIndex> all;
      for (ConnIndex other : links_[li].members) {
        if (other != conn) all.push_back(other);
      }
      std::sort(all.begin(), all.end());
      for (ConnIndex other : all) initiate(li, other);
      continue;
    }
    // Refinement rules: squeeze over-consumers; offer slack to growers.
    initiate_over_consumers(li, conn);
    initiate_growers(li, conn);
  }
  pump();
}

// ---- observability ------------------------------------------------------

void DistributedProtocol::trace_round_complete(ConnIndex conn, double final_rate) {
  obs::Tracer* tracer = simulator_->tracer();
  if (!tracer || !tracer->enabled()) return;
  if (trace_round_name_ == obs::kInvalidName) {
    trace_round_name_ = tracer->intern("adaptation-round", "maxmin");
  }
  tracer->complete(round_started_, simulator_->now(), trace_round_name_,
                   std::uint32_t(conn), final_rate);
}

void DistributedProtocol::trace_update(ConnIndex conn, double rate) {
  obs::Tracer* tracer = simulator_->tracer();
  if (!tracer || !tracer->enabled()) return;
  if (trace_update_name_ == obs::kInvalidName) {
    trace_update_name_ = tracer->intern("update", "maxmin");
  }
  tracer->instant(simulator_->now(), trace_update_name_, std::uint32_t(conn), rate);
}

void DistributedProtocol::trace_mu(LinkIndex link, double mu) {
  obs::Tracer* tracer = simulator_->tracer();
  if (!tracer || !tracer->enabled()) return;
  if (trace_link_names_.size() <= link) {
    trace_link_names_.resize(links_.size(), obs::kInvalidName);
  }
  if (trace_link_names_[link] == obs::kInvalidName) {
    trace_link_names_[link] =
        tracer->intern("link" + std::to_string(link) + ".advertised_rate", "maxmin");
  }
  tracer->counter(simulator_->now(), trace_link_names_[link], mu);
}

void DistributedProtocol::export_metrics(obs::Registry& registry) const {
  registry.counter("maxmin.messages_sent").add(messages_sent_);
  registry.counter("maxmin.rounds_run").add(rounds_run_);
  registry.counter("maxmin.renegotiation_requests").add(renegotiations_.size());
  registry.gauge("maxmin.message_cap_hit").set(cap_hit_ ? 1.0 : 0.0);
  for (std::size_t li = 0; li < links_.size(); ++li) {
    const std::string prefix = "maxmin.link." + std::to_string(li);
    registry.gauge(prefix + ".advertised_rate").set(links_[li].mu.current());
    std::size_t bottlenecked = 0;
    for (const ConnState& s : links_[li].state) bottlenecked += s.in_bottleneck ? 1 : 0;
    registry.gauge(prefix + ".bottleneck_set_size").set(double(bottlenecked));
  }
}

}  // namespace imrm::maxmin
