file(REMOVE_RECURSE
  "CMakeFiles/network_environment_test.dir/network_environment_test.cc.o"
  "CMakeFiles/network_environment_test.dir/network_environment_test.cc.o.d"
  "network_environment_test"
  "network_environment_test.pdb"
  "network_environment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_environment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
