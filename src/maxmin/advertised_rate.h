// Advertised-rate computation at a switch (Section 5.3.1).
//
// A switch keeps, for each link, the last stamped rate it saw for every
// ongoing connection ("recorded rates"). Connections whose recorded rate is
// at or below the advertised rate are "restricted" (set R) — they are
// bottlenecked elsewhere. The advertised rate mu_l is then
//
//          | b'_av,l                                   if N_l = 0
//   mu_l = | b'_av,l - b'_R + max_{i in R} b'_{R,i}    if N_l = N_R
//          | (b'_av,l - b'_R) / (N_l - N_R)            otherwise
//
// After a first computation some previously-restricted connections can turn
// unrestricted with respect to the new rate; the paper notes one
// re-calculation suffices, which recompute() implements (and the iterative
// fixed_point() verifies in tests).
#pragma once

#include <initializer_list>
#include <span>
#include <vector>

#include "maxmin/problem.h"

namespace imrm::maxmin {

class AdvertisedRate {
 public:
  /// `excess_capacity` is b'_av,l for the link this instance models.
  explicit AdvertisedRate(double excess_capacity)
      : excess_capacity_(excess_capacity) {}

  /// Computes mu given recorded rates, using the restricted set implied by
  /// the *previous* advertised rate and at most one re-marking pass, exactly
  /// as the paper prescribes. Allocation-free (the restricted sets are
  /// threshold predicates, not materialized markings) — this runs once per
  /// ADVERTISE hop in the distributed protocol.
  double recompute(std::span<const double> recorded_rates);
  double recompute(std::initializer_list<double> recorded_rates) {
    return recompute(
        std::span<const double>(recorded_rates.begin(), recorded_rates.size()));
  }

  /// Fully iterated fixed point (re-marks until stable); used to validate the
  /// one-recalculation claim.
  [[nodiscard]] double fixed_point(const std::vector<double>& recorded_rates) const;

  [[nodiscard]] double current() const { return advertised_; }
  void set_excess_capacity(double c) { excess_capacity_ = c; }
  [[nodiscard]] double excess_capacity() const { return excess_capacity_; }

  /// Checkpoint restore: reinstates a saved (capacity, mu) pair exactly.
  /// recompute() from scratch need not reproduce the converged mu (it seeds
  /// the restricted marking from the previous advertised value), so the
  /// saved rate is restored verbatim.
  void restore(double excess_capacity, double advertised) {
    excess_capacity_ = excess_capacity;
    advertised_ = advertised;
  }

  /// Single evaluation of the mu formula for a given restricted marking.
  [[nodiscard]] double evaluate(const std::vector<double>& recorded_rates,
                                const std::vector<bool>& restricted) const;

  /// The marking implied by an advertised rate: i restricted iff rate_i <= mu.
  [[nodiscard]] static std::vector<bool> marking(const std::vector<double>& recorded_rates,
                                                 double mu);

 private:
  double excess_capacity_;
  double advertised_ = 0.0;
};

}  // namespace imrm::maxmin
