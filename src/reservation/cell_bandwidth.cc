#include "reservation/cell_bandwidth.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"

namespace {

void bump(imrm::obs::Counter* c) {
  if (c) c->add();
}

}  // namespace

namespace imrm::reservation {

bool CellBandwidth::admit_new(PortableId portable, qos::BitsPerSecond b) {
  assert(b > 0.0);
  assert(!connections_.contains(portable));
  if (b > free_for_new() + 1e-9) {
    if (telemetry_) bump(telemetry_->new_blocked);
    return false;
  }
  connections_.emplace(portable, b);
  allocated_ += b;
  if (telemetry_) bump(telemetry_->new_admitted);
  return true;
}

bool CellBandwidth::admit_handoff(PortableId portable, qos::BitsPerSecond b) {
  assert(b > 0.0);
  assert(!connections_.contains(portable));
  // The portable's own reservation is consumed by its arrival either way.
  const qos::BitsPerSecond own = reservation_for(portable);
  cancel_reservation(portable);
  if (telemetry_) {
    bump(own > 0.0 ? telemetry_->reservation_hits : telemetry_->reservation_misses);
    if (telemetry_->reservation_coverage) {
      telemetry_->reservation_coverage->record(std::min(own / b, 1.0));
    }
  }

  // Others' specific reservations stay untouchable; the anonymous pool is
  // exactly the instrument meant to absorb handoffs (Section 4.3).
  const qos::BitsPerSecond blocked = reserved_specific_total_;
  const qos::BitsPerSecond free = capacity_ - allocated_ - blocked;
  (void)own;  // own reservation already excluded from reserved_specific_total_
  if (b > free + 1e-9) {
    if (telemetry_) bump(telemetry_->handoff_dropped);
    return false;
  }
  // Consume anonymous pool before bare capacity so the pool reflects how
  // much "unforeseen event" headroom remains.
  const qos::BitsPerSecond from_pool = std::min(anonymous_reserved_, b);
  anonymous_reserved_ -= from_pool;
  connections_.emplace(portable, b);
  allocated_ += b;
  if (telemetry_) bump(telemetry_->handoff_admitted);
  return true;
}

void CellBandwidth::release(PortableId portable) {
  const auto it = connections_.find(portable);
  assert(it != connections_.end());
  allocated_ -= it->second;
  if (allocated_ < 0.0) allocated_ = 0.0;
  connections_.erase(it);
}

void CellBandwidth::set_allocation(PortableId portable, qos::BitsPerSecond b) {
  assert(b > 0.0);
  const auto it = connections_.find(portable);
  assert(it != connections_.end());
  allocated_ += b - it->second;
  if (allocated_ < 0.0) allocated_ = 0.0;
  it->second = b;
}

void CellBandwidth::reserve_for(PortableId portable, qos::BitsPerSecond b) {
  assert(b >= 0.0);
  cancel_reservation(portable);
  if (b <= 0.0) return;
  reserved_for_.emplace(portable, b);
  reserved_specific_total_ += b;
}

void CellBandwidth::cancel_reservation(PortableId portable) {
  const auto it = reserved_for_.find(portable);
  if (it == reserved_for_.end()) return;
  reserved_specific_total_ -= it->second;
  if (reserved_specific_total_ < 0.0) reserved_specific_total_ = 0.0;
  reserved_for_.erase(it);
}

void CellBandwidth::clear_specific_reservations() {
  reserved_for_.clear();
  reserved_specific_total_ = 0.0;
}

void CellBandwidth::set_anonymous_reservation(qos::BitsPerSecond b) {
  assert(b >= 0.0);
  anonymous_reserved_ = b;
}

void CellBandwidth::add_anonymous_reservation(qos::BitsPerSecond b) {
  assert(b >= 0.0);
  anonymous_reserved_ += b;
}

qos::BitsPerSecond CellBandwidth::reservation_for(PortableId portable) const {
  const auto it = reserved_for_.find(portable);
  return it == reserved_for_.end() ? 0.0 : it->second;
}

}  // namespace imrm::reservation
