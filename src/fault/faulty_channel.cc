#include "fault/faulty_channel.h"

#include <memory>

#include "obs/metrics.h"

namespace imrm::fault {

void FaultyChannel::bind_metrics(obs::Registry* registry) {
  if (!registry) {
    sent_counter_ = dropped_counter_ = dropped_down_counter_ = nullptr;
    duplicated_counter_ = reordered_counter_ = delayed_counter_ = nullptr;
    return;
  }
  sent_counter_ = &registry->counter("fault.channel.sent");
  dropped_counter_ = &registry->counter("fault.channel.dropped");
  dropped_down_counter_ = &registry->counter("fault.channel.dropped_down");
  duplicated_counter_ = &registry->counter("fault.channel.duplicated");
  reordered_counter_ = &registry->counter("fault.channel.reordered");
  delayed_counter_ = &registry->counter("fault.channel.delayed");
}

void FaultyChannel::send(Channel channel, sim::Duration latency,
                         sim::EventQueue::Callback deliver) {
  ChannelState& ch = state(channel);
  ++sent_;
  if (sent_counter_) sent_counter_->add();

  if (!ch.up) {
    ++dropped_down_;
    if (dropped_down_counter_) dropped_down_counter_->add();
    return;
  }

  const LinkFaultModel& model = ch.has_model ? ch.model : default_model_;
  if (model.trivial()) {
    // Fast path: no random draws, so a zero-probability channel is
    // byte-identical to DirectTransport.
    simulator_->after(latency, std::move(deliver));
    return;
  }

  if (ch.loss.lost(model, rng_)) {
    ++dropped_;
    if (dropped_counter_) dropped_counter_->add();
    return;
  }

  sim::Duration delay = latency;
  if (model.jitter > 0.0) {
    delay += sim::Duration::seconds(latency.to_seconds() *
                                    rng_.uniform(0.0, model.jitter));
    ++delayed_;
    if (delayed_counter_) delayed_counter_->add();
  }
  if (model.reorder > 0.0 && rng_.bernoulli(model.reorder)) {
    // Held back ~2.5 hops: anything sent within the next hop or two on the
    // same path overtakes this message — a genuine reordering, not just lag.
    delay += sim::Duration::seconds(latency.to_seconds() * 2.5);
    ++reordered_;
    if (reordered_counter_) reordered_counter_->add();
  }

  if (model.duplicate > 0.0 && rng_.bernoulli(model.duplicate)) {
    // The callback is move-only; share one copy between both deliveries.
    // Receivers must be duplicate-tolerant (the max-min protocol discards
    // the second copy via its round token).
    auto shared = std::make_shared<sim::EventQueue::Callback>(std::move(deliver));
    const sim::Duration echo =
        delay + sim::Duration::seconds(latency.to_seconds() * rng_.uniform(0.5, 1.5));
    simulator_->after(delay, [shared] { (*shared)(); });
    simulator_->after(echo, [shared] { (*shared)(); });
    ++duplicated_;
    if (duplicated_counter_) duplicated_counter_->add();
    return;
  }

  simulator_->after(delay, std::move(deliver));
}

namespace {

void write_model(sim::CheckpointWriter& w, const LinkFaultModel& m) {
  w.f64(m.loss_good);
  w.f64(m.loss_bad);
  w.f64(m.p_good_to_bad);
  w.f64(m.p_bad_to_good);
  w.f64(m.duplicate);
  w.f64(m.reorder);
  w.f64(m.jitter);
}

LinkFaultModel read_model(sim::CheckpointReader& r) {
  LinkFaultModel m;
  m.loss_good = r.f64();
  m.loss_bad = r.f64();
  m.p_good_to_bad = r.f64();
  m.p_bad_to_good = r.f64();
  m.duplicate = r.f64();
  m.reorder = r.f64();
  m.jitter = r.f64();
  return m;
}

}  // namespace

void FaultyChannel::save_state(sim::CheckpointWriter& w) const {
  write_model(w, default_model_);
  w.u64(channels_.size());
  for (const ChannelState& ch : channels_) {
    write_model(w, ch.model);
    w.boolean(ch.loss.good);
    w.boolean(ch.has_model);
    w.boolean(ch.up);
  }
  w.u64(sent_);
  w.u64(dropped_);
  w.u64(dropped_down_);
  w.u64(duplicated_);
  w.u64(reordered_);
  w.u64(delayed_);
}

void FaultyChannel::restore_state(sim::CheckpointReader& r) {
  default_model_ = read_model(r);
  channels_.resize(std::size_t(r.u64()));
  for (ChannelState& ch : channels_) {
    ch.model = read_model(r);
    ch.loss.good = r.boolean();
    ch.has_model = r.boolean();
    ch.up = r.boolean();
  }
  sent_ = r.u64();
  dropped_ = r.u64();
  dropped_down_ = r.u64();
  duplicated_ = r.u64();
  reordered_ = r.u64();
  delayed_ = r.u64();
}

}  // namespace imrm::fault
