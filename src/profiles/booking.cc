#include "profiles/booking.h"

#include <algorithm>
#include <cassert>

namespace imrm::profiles {

void BookingCalendar::book(Meeting meeting) {
  assert(meeting.valid());
  const auto pos = std::lower_bound(
      meetings_.begin(), meetings_.end(), meeting,
      [](const Meeting& a, const Meeting& b) { return a.start < b.start; });
  meetings_.insert(pos, meeting);
}

std::optional<Meeting> BookingCalendar::active_at(sim::SimTime t) const {
  for (const Meeting& m : meetings_) {
    if (m.start > t) break;
    if (t < m.stop) return m;
  }
  return std::nullopt;
}

std::optional<Meeting> BookingCalendar::next_after(sim::SimTime t) const {
  for (const Meeting& m : meetings_) {
    if (m.start >= t) return m;
  }
  return std::nullopt;
}

}  // namespace imrm::profiles
