// Property sweeps over the Table 2 admission pipeline: internal consistency
// of accepted results and monotonicity in the request parameters, across
// every scheduler x mobility-class x hop-count combination.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "qos/admission.h"

namespace imrm::qos {
namespace {

using Combo = std::tuple<Scheduler, MobilityClass, int>;

class AdmissionProperties : public ::testing::TestWithParam<Combo> {
 protected:
  [[nodiscard]] static std::vector<LinkSnapshot> route(int hops) {
    return std::vector<LinkSnapshot>(std::size_t(hops),
                                     LinkSnapshot{mbps(10.0), 0.0, 0.0, 1e9, 0.001});
  }

  [[nodiscard]] static QosRequest request(double b_min_kbps, double sigma_pkts) {
    QosRequest r;
    r.bandwidth = {kbps(b_min_kbps), kbps(b_min_kbps * 4.0)};
    r.traffic = {sigma_pkts * 8000.0, 8000.0};
    r.delay_bound = 5.0;
    r.jitter_bound = 5.0;
    r.loss_bound = 0.05;
    return r;
  }
};

TEST_P(AdmissionProperties, AcceptedResultsAreInternallyConsistent) {
  const auto [scheduler, mobility, hops] = GetParam();
  const AdmissionPipeline pipeline(scheduler, mobility);
  std::mt19937_64 rng{99};
  std::uniform_real_distribution<double> b_dist(32.0, 512.0);
  std::uniform_real_distribution<double> sigma_dist(1.0, 8.0);
  std::uniform_real_distribution<double> stamp_dist(0.0, 200.0);

  for (int round = 0; round < 50; ++round) {
    const QosRequest r = request(b_dist(rng), sigma_dist(rng));
    const BitsPerSecond stamp = kbps(stamp_dist(rng));
    const auto result = pipeline.admit(r, route(hops), stamp);
    ASSERT_TRUE(result.accepted);
    ASSERT_EQ(result.hops.size(), std::size_t(hops));

    // Allocation respects the negotiated range and the mobility rule.
    EXPECT_GE(result.allocated_bandwidth, r.bandwidth.b_min);
    EXPECT_LE(result.allocated_bandwidth, r.bandwidth.b_max);
    if (mobility == MobilityClass::kMobile) {
      EXPECT_DOUBLE_EQ(result.allocated_bandwidth, r.bandwidth.b_min);
    } else {
      EXPECT_NEAR(result.allocated_bandwidth,
                  std::min(r.bandwidth.b_min + stamp, r.bandwidth.b_max), 1e-9);
    }

    // The end-to-end minimum never exceeds the requested bound, and the
    // relaxed per-hop delays each exceed the unrelaxed forward delays.
    EXPECT_LE(result.e2e_min_delay, r.delay_bound + 1e-12);
    double relaxed_sum = 0.0;
    for (int l = 0; l < hops; ++l) {
      const double forward = AdmissionPipeline::hop_delay(r, route(hops)[std::size_t(l)]);
      EXPECT_GE(result.hops[std::size_t(l)].local_delay, forward - 1e-12);
      EXPECT_GT(result.hops[std::size_t(l)].buffer, 0.0);
      relaxed_sum += result.hops[std::size_t(l)].local_delay;
    }
    // Uniform relaxation spends at most the full budget (plus the burst
    // term absorbed per hop).
    EXPECT_LE(relaxed_sum,
              r.delay_bound + r.traffic.sigma / r.bandwidth.b_min + 1e-9);

    // Loss accumulates as 1 - (1-p)^n.
    EXPECT_NEAR(result.e2e_loss, 1.0 - std::pow(1.0 - 0.001, hops), 1e-12);
  }
}

TEST_P(AdmissionProperties, MonotoneInBurstSize) {
  // Larger sigma can only make admission harder: if a request with burst
  // sigma2 > sigma1 is accepted, the sigma1 version must be too.
  const auto [scheduler, mobility, hops] = GetParam();
  const AdmissionPipeline pipeline(scheduler, mobility);
  for (double b : {64.0, 256.0}) {
    bool prev_accepted = true;
    for (double sigma_pkts : {1.0, 8.0, 32.0, 128.0, 512.0}) {
      QosRequest r = request(b, sigma_pkts);
      r.delay_bound = 1.0;
      r.jitter_bound = 1.0;
      const bool accepted = pipeline.admit(r, route(hops)).accepted;
      if (accepted) {
        EXPECT_TRUE(prev_accepted)
            << "sigma=" << sigma_pkts << " accepted but a smaller burst was not";
      }
      prev_accepted = accepted;
    }
  }
}

TEST_P(AdmissionProperties, MonotoneInBandwidthFloor) {
  // A higher b_min relaxes delay/jitter (terms divide by b_min) but
  // tightens the bandwidth test. On an uncongested route, raising b_min
  // from a delay-rejected level must eventually admit.
  const auto [scheduler, mobility, hops] = GetParam();
  const AdmissionPipeline pipeline(scheduler, mobility);
  bool seen_reject = false;
  bool seen_accept_after_reject = false;
  for (double b : {8.0, 16.0, 64.0, 256.0, 1024.0}) {
    QosRequest r = request(b, 16.0);
    r.delay_bound = 0.6;
    r.jitter_bound = 0.6;
    const auto result = pipeline.admit(r, route(hops));
    if (!result.accepted) {
      seen_reject = true;
      EXPECT_TRUE(result.reason == RejectReason::kDelay ||
                  result.reason == RejectReason::kJitter);
    } else if (seen_reject) {
      seen_accept_after_reject = true;
    }
  }
  EXPECT_TRUE(seen_reject);
  EXPECT_TRUE(seen_accept_after_reject);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, AdmissionProperties,
    ::testing::Combine(::testing::Values(Scheduler::kWfq, Scheduler::kRcsp),
                       ::testing::Values(MobilityClass::kStatic, MobilityClass::kMobile),
                       ::testing::Values(1, 2, 5)));

}  // namespace
}  // namespace imrm::qos
