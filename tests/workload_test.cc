// Tests for workload generation: connection mixes, Poisson arrivals, and
// the class-schedule generator that feeds the Figure 5 experiment.
#include <gtest/gtest.h>

#include "workload/arrivals.h"
#include "workload/class_schedule.h"
#include "workload/connection_mix.h"

namespace imrm::workload {
namespace {

using qos::kbps;
using sim::Duration;
using sim::SimTime;

TEST(ConnectionMix, PaperMixMean) {
  const ConnectionMix mix = paper_fig5_mix();
  EXPECT_DOUBLE_EQ(mix.mean(), kbps(28));  // 0.75*16 + 0.25*64
}

TEST(ConnectionMix, SampleFrequenciesMatch) {
  const ConnectionMix mix = paper_fig5_mix();
  sim::Rng rng(11);
  int small = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (mix.sample(rng) == kbps(16)) ++small;
  }
  EXPECT_NEAR(small / double(n), 0.75, 0.01);
}

TEST(PoissonArrivals, CountMatchesRateTimesHorizon) {
  sim::Simulator simulator;
  int fired = 0;
  PoissonArrivals arrivals(simulator, /*rate=*/2.0, SimTime::seconds(1000), sim::Rng(3),
                           [&] { ++fired; });
  arrivals.start();
  simulator.run();
  EXPECT_NEAR(fired, 2000, 150);  // ~3 sigma of a Poisson(2000)
  EXPECT_EQ(std::size_t(fired), arrivals.arrivals());
}

TEST(PoissonArrivals, StopsAtHorizon) {
  sim::Simulator simulator;
  std::vector<double> times;
  PoissonArrivals arrivals(simulator, 10.0, SimTime::seconds(10), sim::Rng(5),
                           [&] { times.push_back(simulator.now().to_seconds()); });
  arrivals.start();
  simulator.run();
  for (double t : times) EXPECT_LE(t, 10.0);
}

class ClassWorkloadTest : public ::testing::Test {
 protected:
  ClassScheduleConfig config() {
    ClassScheduleConfig c;
    c.meeting = {SimTime::minutes(60), SimTime::minutes(110), 35};
    return c;
  }
};

TEST_F(ClassWorkloadTest, GeneratesAllAttendees) {
  sim::Rng rng(7);
  const ClassWorkload w = generate_class_workload(config(), rng);
  EXPECT_EQ(w.attendees.size(), 35u);
}

TEST_F(ClassWorkloadTest, ArrivalsClusterAroundStart) {
  sim::Rng rng(7);
  const ClassWorkload w = generate_class_workload(config(), rng);
  for (const AttendeePlan& plan : w.attendees) {
    EXPECT_GE(plan.enter_room.to_minutes(), 52.0);  // T_s - 8
    EXPECT_LE(plan.enter_room.to_minutes(), 62.0);  // T_s + 2
    EXPECT_LT(plan.arrive_corridor, plan.enter_room);
  }
}

TEST_F(ClassWorkloadTest, DeparturesClusterAfterEnd) {
  sim::Rng rng(7);
  const ClassWorkload w = generate_class_workload(config(), rng);
  for (const AttendeePlan& plan : w.attendees) {
    EXPECT_GE(plan.leave_room.to_minutes(), 110.0);
    EXPECT_LE(plan.leave_room.to_minutes(), 115.0);
    EXPECT_LT(plan.leave_room, plan.depart);
  }
}

TEST_F(ClassWorkloadTest, AttendeesSortedByEntry) {
  sim::Rng rng(9);
  const ClassWorkload w = generate_class_workload(config(), rng);
  for (std::size_t i = 1; i < w.attendees.size(); ++i) {
    EXPECT_LE(w.attendees[i - 1].enter_room, w.attendees[i].enter_room);
  }
}

TEST_F(ClassWorkloadTest, PassByTrafficScalesWithRate) {
  auto c = config();
  sim::Rng rng1(13), rng2(13);
  c.passby_per_minute = 1.0;
  const auto light = generate_class_workload(c, rng1);
  c.passby_per_minute = 6.0;
  const auto heavy = generate_class_workload(c, rng2);
  EXPECT_GT(heavy.passers.size(), light.passers.size() * 3);
}

TEST_F(ClassWorkloadTest, ZeroPassbyRateMeansNone) {
  auto c = config();
  c.passby_per_minute = 0.0;
  sim::Rng rng(1);
  EXPECT_TRUE(generate_class_workload(c, rng).passers.empty());
}

TEST_F(ClassWorkloadTest, PassersLeaveAfterAppearing) {
  sim::Rng rng(21);
  const ClassWorkload w = generate_class_workload(config(), rng);
  ASSERT_FALSE(w.passers.empty());
  for (const PassByPlan& plan : w.passers) {
    EXPECT_GT(plan.leave, plan.appear);
    EXPECT_GE(plan.appear.to_seconds(), 0.0);
  }
}

TEST_F(ClassWorkloadTest, Deterministic) {
  sim::Rng a(33), b(33);
  const auto w1 = generate_class_workload(config(), a);
  const auto w2 = generate_class_workload(config(), b);
  ASSERT_EQ(w1.attendees.size(), w2.attendees.size());
  for (std::size_t i = 0; i < w1.attendees.size(); ++i) {
    EXPECT_EQ(w1.attendees[i].enter_room, w2.attendees[i].enter_room);
  }
}

}  // namespace
}  // namespace imrm::workload
