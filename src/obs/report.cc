#include "obs/report.h"

#include "obs/json.h"

namespace imrm::obs {

void ServiceBlock::write_json(std::ostream& os) const {
  os << "{\"transport\":";
  json::write_string(os, transport);
  os << ",\"pacing\":";
  json::write_string(os, pacing);
  os << ",\"duration_seconds\":";
  json::write_number(os, duration_s);
  os << ",\"offered\":";
  json::write_number(os, offered);
  os << ",\"processed\":";
  json::write_number(os, processed);
  os << ",\"shed\":";
  json::write_number(os, shed);
  os << ",\"errors\":";
  json::write_number(os, errors);
  os << ",\"admit_accepted\":";
  json::write_number(os, admit_accepted);
  os << ",\"admit_rejected\":";
  json::write_number(os, admit_rejected);
  os << ",\"teardowns\":";
  json::write_number(os, teardowns);
  os << ",\"handoffs\":";
  json::write_number(os, handoffs);
  os << ",\"handoff_drops\":";
  json::write_number(os, handoff_drops);
  os << ",\"probes\":";
  json::write_number(os, probes);
  os << ",\"unanswered\":";
  json::write_number(os, unanswered);
  os << ",\"peak_queue_depth\":";
  json::write_number(os, peak_queue_depth);
  os << ",\"offered_rps\":";
  json::write_number(os, offered_rps);
  os << ",\"sustained_rps\":";
  json::write_number(os, sustained_rps);
  os << ",\"shed_fraction\":";
  json::write_number(os, shed_fraction);
  os << ",\"latency_p50_us\":";
  json::write_number(os, latency_p50_us);
  os << ",\"latency_p90_us\":";
  json::write_number(os, latency_p90_us);
  os << ",\"latency_p99_us\":";
  json::write_number(os, latency_p99_us);
  os << ",\"slo_p99_us\":";
  json::write_number(os, slo_p99_us);
  os << ",\"slo_met\":" << (slo_met ? "true" : "false") << '}';
}

void AdaptationBlock::write_json(std::ostream& os) const {
  os << "{\"flows\":";
  json::write_number(os, flows);
  os << ",\"renegotiations_triggered\":";
  json::write_number(os, renegotiations_triggered);
  os << ",\"renegotiations_accepted\":";
  json::write_number(os, renegotiations_accepted);
  os << ",\"windows_breached\":";
  json::write_number(os, windows_breached);
  os << ",\"windows_clean\":";
  json::write_number(os, windows_clean);
  os << ",\"windows_insufficient\":";
  json::write_number(os, windows_insufficient);
  os << ",\"offered_bits\":";
  json::write_number(os, offered_bits);
  os << ",\"bg_bits\":";
  json::write_number(os, bg_bits);
  os << ",\"wc_bits\":";
  json::write_number(os, wc_bits);
  os << ",\"nonconforming_bits\":";
  json::write_number(os, nonconforming_bits);
  os << ",\"hop_offered_packets\":";
  json::write_number(os, hop_offered_packets);
  os << ",\"hop_delivered_packets\":";
  json::write_number(os, hop_delivered_packets);
  os << ",\"hop_dropped_packets\":";
  json::write_number(os, hop_dropped_packets);
  os << ",\"granted_bps\":";
  json::write_number(os, granted_bps);
  os << ",\"enforced_bps\":";
  json::write_number(os, enforced_bps);
  os << ",\"granted_prefault_bps\":";
  json::write_number(os, granted_prefault_bps);
  os << ",\"granted_min_bps\":";
  json::write_number(os, granted_min_bps);
  os << ",\"granted_final_bps\":";
  json::write_number(os, granted_final_bps);
  os << '}';
}

void RunReport::write_json(std::ostream& os) const {
  os << "{\"schema_version\":" << kSchemaVersion << ",\"tool\":";
  json::write_string(os, tool);
  os << ",\"scenario\":";
  json::write_string(os, scenario);
  os << ",\"config\":{";
  json::Separator sep;
  for (const auto& [key, value] : config) {
    sep.write(os);
    json::write_string(os, key);
    os << ':';
    json::write_string(os, value);
  }
  os << "},\"wall_seconds\":";
  json::write_number(os, wall_seconds);
  os << ",\"sim_time_seconds\":";
  json::write_number(os, sim_seconds);
  os << ",\"events_fired\":";
  json::write_number(os, events_fired);
  os << ",\"events_per_second\":";
  json::write_number(os, events_per_second());
  if (!profile.empty()) {
    os << ",\"profile\":";
    profile.write_json(os);
  }
  if (service.present) {
    os << ",\"service\":";
    service.write_json(os);
  }
  if (adaptation.present) {
    os << ",\"adaptation\":";
    adaptation.write_json(os);
  }
  os << ",\"metrics\":";
  metrics.write_json(os);
  os << "}\n";
}

}  // namespace imrm::obs
