file(REMOVE_RECURSE
  "CMakeFiles/bench_handoff_latency.dir/bench_handoff_latency.cc.o"
  "CMakeFiles/bench_handoff_latency.dir/bench_handoff_latency.cc.o.d"
  "bench_handoff_latency"
  "bench_handoff_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_handoff_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
