// Local-socket transport: an AF_UNIX listener for out-of-process drivers.
//
// The server side owns the listening socket plus one FrameAssembler per
// accepted connection; next_request() multiplexes accept/read over poll(2).
// Clients are identified by their file descriptor. A connection that sends
// malformed bytes (bad magic/version, oversized length) is answered with a
// best-effort ErrorReply and closed — one broken peer cannot wedge the
// service.
//
// POSIX-only by design (the bench/CI hosts are Linux); there is no TCP
// listener because the service is a control plane for co-located drivers,
// not a network daemon.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "serve/codec.h"
#include "serve/transport.h"

namespace imrm::serve {

class SocketServerTransport final : public ServerTransport {
 public:
  /// Binds and listens on `path`, unlinking any stale socket file first.
  /// Throws TransportError when bind/listen fails.
  explicit SocketServerTransport(std::string path);
  ~SocketServerTransport() override;

  SocketServerTransport(const SocketServerTransport&) = delete;
  SocketServerTransport& operator=(const SocketServerTransport&) = delete;

  bool next_request(Envelope& env, std::chrono::microseconds wait) override;
  void send_reply(std::uint64_t client, std::vector<std::uint8_t> frame) override;
  /// A listener can always accept another connection; the serve loop ends on
  /// a Shutdown request or its --duration backstop instead.
  [[nodiscard]] bool finished() const override { return false; }

  [[nodiscard]] std::size_t connections() const { return clients_.size(); }

 private:
  struct Client {
    FrameAssembler assembler;
  };

  /// One poll round: accept new connections, read every readable client,
  /// queue complete frames. `wait` bounds the poll timeout.
  void pump(std::chrono::microseconds wait);
  void drop_client(int fd);

  std::string path_;
  int listen_fd_ = -1;
  std::map<int, Client> clients_;
  std::deque<Envelope> pending_;
};

class SocketClientTransport final : public ClientTransport {
 public:
  /// Connects to a listening SocketServerTransport. Throws TransportError.
  explicit SocketClientTransport(const std::string& path);
  ~SocketClientTransport() override;

  SocketClientTransport(const SocketClientTransport&) = delete;
  SocketClientTransport& operator=(const SocketClientTransport&) = delete;

  bool send_request(std::vector<std::uint8_t> frame) override;
  bool next_reply(std::vector<std::uint8_t>& frame,
                  std::chrono::microseconds wait) override;
  void close() override;

 private:
  int fd_ = -1;
  FrameAssembler assembler_;
};

}  // namespace imrm::serve
