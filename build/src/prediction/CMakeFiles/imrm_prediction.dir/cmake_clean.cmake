file(REMOVE_RECURSE
  "CMakeFiles/imrm_prediction.dir/cell_classifier.cc.o"
  "CMakeFiles/imrm_prediction.dir/cell_classifier.cc.o.d"
  "CMakeFiles/imrm_prediction.dir/predictor.cc.o"
  "CMakeFiles/imrm_prediction.dir/predictor.cc.o.d"
  "libimrm_prediction.a"
  "libimrm_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imrm_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
