// Aggregate handoff-count predictors for lounges (Sections 6.2.2, 6.2.3).
//
// Cafeteria: slow time-varying profile, so a linear model n = a*t + m fit by
// least squares over the last three slots predicts the next slot. With
// equally spaced samples n_{t-2}, n_{t-1}, n_t the closed forms are
//   a = (n_t - n_{t-2}) / 2
//   m = ((3t-1) n_{t-2} + 2 n_{t-1} + (5-3t) n_t) / 6
// and the prediction is N(t+1) = a (t+1) + m.
//
// NOTE: the paper prints m = ((5+3t) n_{t-2} + 2 n_{t-1} - (3t+1) n_t)/6,
// which is not the least-squares intercept (on exactly linear data it
// predicts n_{t-1} instead of n_{t+1}); we implement the standard fit the
// text says it applies ("applying the standard Least-square technique").
// EXPERIMENTS.md records this deviation.
//
// Default lounge: one-step memory, N(t+1) = N(t).
#pragma once

#include <cstddef>
#include <deque>
#include <utility>

namespace imrm::reservation {

/// Paper's least-squares coefficients for three consecutive samples taken at
/// slots t-2, t-1, t.
struct LinearFit {
  double a = 0.0;
  double m = 0.0;

  [[nodiscard]] double at(double t) const { return a * t + m; }
};

[[nodiscard]] LinearFit least_squares_3(double n_tm2, double n_tm1, double n_t, double t);

/// Sliding window of per-slot handoff counts with the cafeteria predictor.
class CafeteriaPredictor {
 public:
  /// Records the handoff count of the just-finished slot.
  void push(double count);

  /// Predicted handoffs for the next slot; falls back to the latest
  /// observation until three samples exist, and to 0 with no history.
  /// Negative extrapolations clamp to zero (a count cannot be negative).
  [[nodiscard]] double predict_next() const;

  [[nodiscard]] std::size_t samples() const { return window_.size(); }

  // Checkpoint accessors (ISSUE 4): the window plus the latest slot index
  // fully determine the predictor.
  [[nodiscard]] const std::deque<double>& history() const { return window_; }
  [[nodiscard]] std::size_t latest_slot() const { return slot_; }
  void restore(std::deque<double> window, std::size_t slot) {
    window_ = std::move(window);
    slot_ = slot;
  }

 private:
  std::deque<double> window_;  // at most 3, oldest first
  std::size_t slot_ = 0;       // index of the latest pushed slot
};

/// One-step-memory predictor for the default lounge.
class OneStepPredictor {
 public:
  void push(double count) { last_ = count; }
  [[nodiscard]] double predict_next() const { return last_; }

 private:
  double last_ = 0.0;
};

}  // namespace imrm::reservation
