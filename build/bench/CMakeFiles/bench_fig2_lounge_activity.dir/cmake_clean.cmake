file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_lounge_activity.dir/bench_fig2_lounge_activity.cc.o"
  "CMakeFiles/bench_fig2_lounge_activity.dir/bench_fig2_lounge_activity.cc.o.d"
  "bench_fig2_lounge_activity"
  "bench_fig2_lounge_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_lounge_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
