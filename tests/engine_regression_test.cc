// Regression tests for the ISSUE 5 engine bugfix sweep:
//  * EventQueue: per-slot generation saturation (wraparound could alias a
//    stale EventId onto a live event after 2^32 slot reuses);
//  * ReplicationRunner: deterministic lowest-index error reporting and
//    stop-claiming-on-failure;
//  * FlatMap: erase_if as the safe form of erase-during-iteration (plain
//    erase inside for_each can skip entries relocated by backward-shift
//    deletion).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/flat_map.h"
#include "sim/random.h"
#include "sim/replication.h"

namespace imrm::sim {
namespace {

// ---- EventQueue generation saturation ----------------------------------

TEST(EventQueueGeneration, SaturatedSlotIsRetiredNotRecycled) {
  EventQueue queue;
  int fired = 0;

  // Create one slot and free it, then age it to one step before saturation,
  // standing in for 2^32 - 2 schedule/cancel cycles.
  queue.cancel(queue.schedule(SimTime::seconds(1.0), [&] { ++fired; }));
  ASSERT_EQ(queue.retired_slots(), 0u);
  queue.age_free_slot_for_test(0xfffffffeu);

  // Reusing the aged slot issues an EventId with the last valid generation.
  const EventId last = queue.schedule(SimTime::seconds(1.0), [&] { ++fired; });
  EXPECT_EQ(std::uint32_t(last >> 32), 0xfffffffeu);
  queue.cancel(last);

  // Releasing it saturates the generation: the slot must be retired, so the
  // next schedule gets a FRESH slot at generation 0 rather than the old slot
  // wrapped back to generation 0.
  EXPECT_EQ(queue.retired_slots(), 1u);
  const EventId fresh = queue.schedule(SimTime::seconds(2.0), [&] { ++fired; });
  EXPECT_NE(std::uint32_t(fresh) & 0xffffffu, std::uint32_t(last) & 0xffffffu)
      << "saturated slot was recycled";
  EXPECT_EQ(std::uint32_t(fresh >> 32), 0u);

  // The regression scenario: a stale handle from the retired slot's history
  // carries (slot, generation 0) — before the fix, the wrapped slot would be
  // back at generation 0 and this cancel would kill the unrelated live
  // event occupying it.
  const EventId stale = EventId(std::uint32_t(last) & 0xffffffu);  // gen 0
  queue.cancel(stale);
  EXPECT_EQ(queue.size(), 1u) << "stale pre-wrap handle cancelled a live event";
  EXPECT_EQ(queue.pop().time, SimTime::seconds(2.0));
  EXPECT_EQ(queue.stats().cancelled, 2u);
}

TEST(EventQueueGeneration, RetiredSlotStaysOutOfTheFreeList) {
  EventQueue queue;
  queue.cancel(queue.schedule(SimTime::seconds(1.0), [] {}));
  queue.age_free_slot_for_test(0xfffffffeu);
  queue.cancel(queue.schedule(SimTime::seconds(1.0), [] {}));
  ASSERT_EQ(queue.retired_slots(), 1u);

  // Many further schedule/cancel cycles must never hand the retired slot
  // out again (its generation would alias historic EventIds).
  const std::uint32_t retired_slot = 0;  // the first slot ever allocated
  for (int i = 0; i < 1000; ++i) {
    const EventId id = queue.schedule(SimTime::seconds(1.0), [] {});
    EXPECT_NE(std::uint32_t(id) & 0xffffffu, retired_slot);
    queue.cancel(id);
  }
  EXPECT_EQ(queue.retired_slots(), 1u);
}

// ---- ReplicationRunner deterministic errors ----------------------------

TEST(ReplicationRunnerErrors, LowestFailingIndexWinsAtAnyThreadCount) {
  const std::set<std::size_t> failing = {7, 13, 41};
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ReplicationRunner runner(threads);
    std::string caught;
    try {
      runner.run_indexed(64, [&](std::size_t index) {
        if (failing.count(index) != 0) {
          throw std::runtime_error("replication " + std::to_string(index));
        }
      });
      FAIL() << "run_indexed swallowed the failure at " << threads << " threads";
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
    // The sequential answer — the lowest failing index — at every width.
    EXPECT_EQ(caught, "replication 7") << "threads=" << threads;
  }
}

TEST(ReplicationRunnerErrors, WorkersStopClaimingAfterAFailure) {
  ReplicationRunner runner(4);
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(
      runner.run_indexed(5000,
                         [&](std::size_t index) {
                           executed.fetch_add(1, std::memory_order_relaxed);
                           if (index == 0) throw std::runtime_error("boom");
                           // Slow the survivors so the index-0 failure is
                           // recorded long before the pool could churn
                           // through the whole range; keeps the bound below
                           // robust even on a single-core host.
                           std::this_thread::sleep_for(std::chrono::microseconds(200));
                         }),
      std::runtime_error);
  // Index 0 is the first claim handed out, so its failure lands after a few
  // in-flight survivors at most. Without stop-claiming, all 5000 run.
  EXPECT_LT(executed.load(), 2500u) << "workers kept claiming after the failure";
}

TEST(ReplicationRunnerErrors, RunRethrowsBeforeResultsEscape) {
  ReplicationRunner runner(4);
  EXPECT_THROW(
      (void)runner.run(32, 1,
                       [](std::uint64_t, std::size_t index) -> int {
                         if (index == 5) throw std::runtime_error("partial");
                         return int(index);
                       }),
      std::runtime_error);
}

// ---- FlatMap::erase_if --------------------------------------------------

TEST(FlatMapEraseIf, ErasesExactlyThePredicatedKeys) {
  FlatMap<std::uint64_t, int> map;
  for (std::uint64_t k = 0; k < 257; ++k) map.insert(k, int(k));
  const std::size_t erased =
      map.erase_if([](std::uint64_t k, int) { return k % 3 == 0; });
  EXPECT_EQ(erased, 86u);  // 0, 3, ..., 255
  EXPECT_EQ(map.size(), 257u - 86u);
  for (std::uint64_t k = 0; k < 257; ++k) {
    EXPECT_EQ(map.contains(k), k % 3 != 0) << k;
  }
}

TEST(FlatMapEraseIf, MatchesReferenceUnderRandomizedChurn) {
  // Heavy insert/erase churn maximizes backward-shift relocation (including
  // across the table's wrap-around), the mechanism that makes plain
  // erase-inside-iteration skip entries.
  Rng rng(1234);
  FlatMap<std::uint64_t, int> map;
  std::unordered_map<std::uint64_t, int> reference;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 200; ++i) {
      const auto key = std::uint64_t(rng.uniform_int(0, 600));
      const int value = rng.uniform_int(0, 1 << 20);
      if (map.insert(key, value)) {
        ASSERT_TRUE(reference.emplace(key, value).second);
      }
    }
    const auto modulus = std::uint64_t(rng.uniform_int(2, 7));
    const auto residue = std::uint64_t(rng.uniform_int(0, int(modulus) - 1));
    const auto pred = [&](std::uint64_t key, int) { return key % modulus == residue; };
    const std::size_t erased = map.erase_if(pred);
    std::size_t reference_erased = 0;
    for (auto it = reference.begin(); it != reference.end();) {
      if (pred(it->first, it->second)) {
        it = reference.erase(it);
        ++reference_erased;
      } else {
        ++it;
      }
    }
    ASSERT_EQ(erased, reference_erased) << "round " << round;
    ASSERT_EQ(map.size(), reference.size()) << "round " << round;
    std::size_t visited = 0;
    map.for_each([&](std::uint64_t key, int value) {
      ++visited;
      const auto it = reference.find(key);
      ASSERT_NE(it, reference.end()) << key;
      ASSERT_EQ(it->second, value) << key;
    });
    ASSERT_EQ(visited, reference.size());
  }
}

TEST(FlatMapEraseIf, EraseAllAndEraseNone) {
  FlatMap<std::uint64_t, int> map;
  EXPECT_EQ(map.erase_if([](std::uint64_t, int) { return true; }), 0u);
  for (std::uint64_t k = 100; k < 200; ++k) map.insert(k, 1);
  EXPECT_EQ(map.erase_if([](std::uint64_t, int) { return false; }), 0u);
  EXPECT_EQ(map.size(), 100u);
  EXPECT_EQ(map.erase_if([](std::uint64_t, int) { return true; }), 100u);
  EXPECT_TRUE(map.empty());
}

}  // namespace
}  // namespace imrm::sim
