# Empty compiler generated dependencies file for imrm_core.
# This may be replaced when dependencies are built.
