# Empty dependencies file for imrm_net.
# This may be replaced when dependencies are built.
