
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reservation/cell_bandwidth.cc" "src/reservation/CMakeFiles/imrm_reservation.dir/cell_bandwidth.cc.o" "gcc" "src/reservation/CMakeFiles/imrm_reservation.dir/cell_bandwidth.cc.o.d"
  "/root/repo/src/reservation/dispatcher.cc" "src/reservation/CMakeFiles/imrm_reservation.dir/dispatcher.cc.o" "gcc" "src/reservation/CMakeFiles/imrm_reservation.dir/dispatcher.cc.o.d"
  "/root/repo/src/reservation/handoff_predictor.cc" "src/reservation/CMakeFiles/imrm_reservation.dir/handoff_predictor.cc.o" "gcc" "src/reservation/CMakeFiles/imrm_reservation.dir/handoff_predictor.cc.o.d"
  "/root/repo/src/reservation/lounge_policy.cc" "src/reservation/CMakeFiles/imrm_reservation.dir/lounge_policy.cc.o" "gcc" "src/reservation/CMakeFiles/imrm_reservation.dir/lounge_policy.cc.o.d"
  "/root/repo/src/reservation/policy.cc" "src/reservation/CMakeFiles/imrm_reservation.dir/policy.cc.o" "gcc" "src/reservation/CMakeFiles/imrm_reservation.dir/policy.cc.o.d"
  "/root/repo/src/reservation/probabilistic.cc" "src/reservation/CMakeFiles/imrm_reservation.dir/probabilistic.cc.o" "gcc" "src/reservation/CMakeFiles/imrm_reservation.dir/probabilistic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mobility/CMakeFiles/imrm_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/prediction/CMakeFiles/imrm_prediction.dir/DependInfo.cmake"
  "/root/repo/build/src/profiles/CMakeFiles/imrm_profiles.dir/DependInfo.cmake"
  "/root/repo/build/src/qos/CMakeFiles/imrm_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/imrm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/imrm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/imrm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
