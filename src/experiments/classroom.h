// The classroom experiment (Section 7.1, Figures 2 and 5).
//
// Environment: a corridor chain O1 - O2 - O3 with the classroom R attached
// to O2. Attendees appear in O1, walk to O2, enter R around the class start,
// sit through the class, exit to O2 afterwards and depart. Pass-by walkers
// stream O1 -> O2 -> O3 without entering. Every user opens one connection
// from the paper's 16/64 kbps mix; every cell has 1.6 Mbps of wireless
// capacity. Three advance-reservation policies are compared by the number
// of connections dropped on handoff.
//
// Load calibration: the paper's offered loads (59% for the 35-student
// lecture, 94% for the 55-student lab) correspond exactly to floor(N/4)
// users at 64 kbps and the rest at 16 kbps; the mix is assigned that way
// deterministically.
#pragma once

#include <string>
#include <vector>

#include "profiles/booking.h"
#include "qos/flow_spec.h"
#include "stats/timeseries.h"
#include "workload/class_schedule.h"

namespace imrm::obs {
class Registry;
class Tracer;
}  // namespace imrm::obs

namespace imrm::experiments {

enum class PolicyKind { kNone, kBruteForce, kAggregate, kMeetingRoom, kStatic };

[[nodiscard]] std::string to_string(PolicyKind kind);

struct ClassroomConfig {
  std::size_t class_size = 35;
  profiles::Meeting meeting{sim::SimTime::minutes(60), sim::SimTime::minutes(110), 35};
  PolicyKind policy = PolicyKind::kMeetingRoom;
  qos::BitsPerSecond cell_capacity = qos::mbps(1.6);
  double passby_per_minute = 18.0;
  sim::Duration passby_dwell = sim::Duration::minutes(1.5);
  /// Sliding-window length N_pC of the cell profiles: shorter windows make
  /// the aggregate policy's handoff distribution track the arrival burst.
  std::size_t cell_profile_window = 128;
  sim::Duration static_threshold = sim::Duration::minutes(3);
  /// Policies are re-evaluated at this cadence in addition to every event.
  sim::Duration refresh_period = sim::Duration::seconds(30);
  std::uint64_t seed = 1;
  /// Warm the profile server with one unmeasured rehearsal of the same
  /// workload (the aggregate policy needs handoff statistics).
  bool warmup_pass = true;
  /// Optional observability, applied to the *measured* pass only: end-of-run
  /// metric export (sim.* totals, resv.*/mobility.* telemetry, classroom.*
  /// outcome counters) and simulator tracing.
  obs::Registry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

struct ClassroomResult {
  std::string policy;
  double offered_load = 0.0;        // attendee bandwidth / room capacity
  std::size_t attendees = 0;
  std::size_t connection_drops = 0; // handoff failures (the paper's metric)
  std::size_t walkers = 0;
  // The four panels of Figure 5 (per-minute handoff counts):
  stats::BinnedSeries into_room;        // 5.a — handoffs into the classroom
  stats::BinnedSeries outside_room;     // 5.b — handoffs just outside (at O2)
  stats::BinnedSeries out_of_room;      // 5.c — handoffs out of the classroom
  stats::BinnedSeries outside_at_end;   // 5.d — total activity at O2 (again)

  ClassroomResult();
};

/// Runs one classroom simulation.
[[nodiscard]] ClassroomResult run_classroom(const ClassroomConfig& config);

}  // namespace imrm::experiments
