// Dual token-bucket rate enforcement (data plane of the adaptation loop).
//
// The paper's admission control grants every connection a rate in
// [b_min, b_max]: b_min is guaranteed, and the max-min division hands each
// flow a share of the cell's excess on top. Until this module, that grant
// was bookkeeping — nothing at the packet level made a flow's delivered
// rate equal its granted rate. DualTokenBucketShaper is the enforcement
// point: a policer spliced between a source and its ScheduledLink /
// RcspLink that classifies every offered packet against two buckets,
//
//   * BG (guaranteed) bucket — refills at the flow's b_min. Traffic that
//     conforms here is the contractual minimum the cell must carry.
//   * WC (work-conserving) bucket — refills at the flow's max-min excess
//     share (granted - b_min). Traffic that overflows BG but conforms here
//     rides the currently-spare capacity; when renegotiation shrinks the
//     excess, this bucket shrinks with it and the overflow becomes
//     non-conforming.
//
// Packets conforming to neither bucket are dropped at the shaper
// (policer, not a queue: the upstream token-bucket source already paces,
// and a queue here would hide the very overload the adaptation controller
// needs to see). Accounting is conservation-exact by construction: every
// offered packet (and bit) is exactly one of BG / WC / non-conforming.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "qos/packet_sim.h"
#include "sim/simulator.h"

namespace imrm::qos {

class DualTokenBucketShaper {
 public:
  using Forward = std::function<void(Packet)>;

  /// One flow's enforcement state: bucket rates and depths. Depths bound
  /// the burst each class may inject; rates are the negotiated split.
  struct Shape {
    BitsPerSecond guaranteed = 0.0;  // BG refill rate (the flow's b_min)
    BitsPerSecond excess = 0.0;      // WC refill rate (max-min share above b_min)
    Bits bg_depth = 0.0;             // BG burst tolerance (>= one packet)
    Bits wc_depth = 0.0;             // WC burst tolerance
  };

  /// Per-flow conformance counters; conservation holds per flow and in
  /// total: offered == bg + wc + nonconforming, in packets and in bits.
  struct Counters {
    std::uint64_t offered_packets = 0;
    std::uint64_t bg_packets = 0;
    std::uint64_t wc_packets = 0;
    std::uint64_t nonconforming_packets = 0;
    Bits offered_bits = 0.0;
    Bits bg_bits = 0.0;
    Bits wc_bits = 0.0;
    Bits nonconforming_bits = 0.0;
  };

  DualTokenBucketShaper(sim::Simulator& simulator, Forward next)
      : simulator_(&simulator), next_(std::move(next)) {}

  /// Registers a flow with its initial shape. Buckets start full: a freshly
  /// admitted flow may immediately use its negotiated burst.
  void add_flow(FlowId flow, const Shape& shape);

  /// Renegotiation entry point: changes the bucket refill rates in place.
  /// Accumulated tokens are clamped to the (unchanged) depths, so a rate
  /// change never manufactures a windfall burst — a flow shrunk from a
  /// large excess keeps at most wc_depth bits of credit, never the rate
  /// difference integrated over time.
  void set_shape(FlowId flow, BitsPerSecond guaranteed, BitsPerSecond excess);

  /// Classifies one packet: BG if the guaranteed bucket covers it, else WC
  /// if the work-conserving bucket covers it, else dropped non-conforming.
  void offer(Packet packet);

  [[nodiscard]] const Counters& counters(FlowId flow) const;
  [[nodiscard]] const Counters& totals() const { return totals_; }
  /// The rate this flow is currently enforced to (guaranteed + excess).
  [[nodiscard]] BitsPerSecond enforced_rate(FlowId flow) const;
  [[nodiscard]] bool has(FlowId flow) const {
    return flow < flows_.size() && flows_[flow].registered;
  }

 private:
  struct FlowState {
    bool registered = false;
    Shape shape;
    double bg_tokens = 0.0;
    double wc_tokens = 0.0;
    sim::SimTime last_refill;
    Counters counters;
  };

  void refill(FlowState& state, sim::SimTime now);

  sim::Simulator* simulator_;
  Forward next_;
  std::vector<FlowState> flows_;  // dense, indexed by FlowId
  Counters totals_;
};

}  // namespace imrm::qos
