#include "profiles/portable_profile.h"

#include <algorithm>

namespace imrm::profiles {

void PortableProfile::record(CellId previous, CellId current, CellId next) {
  auto& window = history_[{previous, current}];
  window.push_back(next);
  while (window.size() > window_) window.pop_front();
}

std::optional<CellId> PortableProfile::predict(CellId previous, CellId current) const {
  const auto it = history_.find({previous, current});
  if (it == history_.end() || it->second.empty()) return std::nullopt;
  // Majority vote over the window; ties break toward the most recent.
  std::map<CellId, std::size_t> counts;
  for (CellId next : it->second) ++counts[next];
  CellId best = it->second.back();
  std::size_t best_count = counts[best];
  for (const auto& [cell, count] : counts) {
    if (count > best_count) {
      best = cell;
      best_count = count;
    }
  }
  return best;
}

std::size_t PortableProfile::observations(CellId previous, CellId current) const {
  const auto it = history_.find({previous, current});
  return it == history_.end() ? 0 : it->second.size();
}

void PortableProfile::save_state(sim::CheckpointWriter& w) const {
  w.u32(id_.value());
  w.u64(window_);
  w.u64(history_.size());
  for (const auto& [state, window] : history_) {
    w.u32(state.first.value());
    w.u32(state.second.value());
    w.u64(window.size());
    for (CellId next : window) w.u32(next.value());
  }
}

PortableProfile PortableProfile::restore_state(sim::CheckpointReader& r) {
  const PortableId id{r.u32()};
  PortableProfile profile(id, std::size_t(r.u64()));
  for (std::uint64_t states = r.u64(); states-- > 0;) {
    const CellId previous{r.u32()};
    const CellId current{r.u32()};
    auto& window = profile.history_[{previous, current}];
    for (std::uint64_t n = r.u64(); n-- > 0;) window.push_back(CellId{r.u32()});
  }
  return profile;
}

}  // namespace imrm::profiles
