// Distributed event-driven rate adaptation (Section 5.3.1, Theorem 1).
//
// Each switch maintains, per link: the recorded (last-seen stamped) rate of
// every connection, the advertised rate mu_l, and the bottleneck set M(l) of
// connections that consider l their connection-bottleneck link. When a
// switch detects a bandwidth change satisfying eq. (2) it initiates
// ADVERTISE control packets up- and downstream for the affected connections;
// intermediate switches clamp the stamped rate to their advertised rate;
// endpoints reflect the packets back; after four round trips the initiator
// sends an UPDATE fixing the connection's rate to the minimum stamped rate,
// and the rate change triggers further adaptations per the refinement rules.
//
// Faithfulness note (documented in DESIGN.md): Charny's convergence proof
// assumes one controller per connection (the source, sending periodically).
// The paper's event-driven variant lets any switch initiate; naively running
// those adaptations concurrently lets in-flight stamps of one round pollute
// the advertised-rate computation of another, which can produce sustained
// limit cycles. We therefore serialize adaptation rounds (a distributed
// system would realize this with a token or back-off); message counts and
// outcomes are unaffected, and the Gauss–Seidel execution converges to the
// same max-min fixed point the asynchronous protocol is proven to reach.
//
// Two initiation policies are provided for the ablation bench:
//  - kFlooding:       the preliminary algorithm (ADVERTISE for every
//                     connection on the link),
//  - kBottleneckSets: the refined algorithm (only connections that could
//                     actually change: growers and over-consumers).
//
// Finite demands are modelled exactly as footnote 11 prescribes: an
// artificial entry link of capacity b_max - b_min is synthesized per
// finite-demand connection.
//
// Per-link connection bookkeeping lives in parallel arrays (member list,
// recorded rates, per-connection flags) indexed through an open-addressing
// table, so the per-ADVERTISE hot path does no tree walks and feeds the
// advertised-rate recomputation a contiguous span without copying.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "maxmin/advertised_rate.h"
#include "maxmin/problem.h"
#include "sim/flat_map.h"
#include "sim/simulator.h"

namespace imrm::obs {
class Registry;
}  // namespace imrm::obs

namespace imrm::maxmin {

enum class InitiationPolicy { kFlooding, kBottleneckSets };

class DistributedProtocol {
 public:
  struct Config {
    sim::Duration hop_latency = sim::Duration::millis(1.0);
    double epsilon = 1e-6;        // rate-change significance threshold
    double delta = 0.0;           // eq. (2) upward-adaptation threshold
    InitiationPolicy policy = InitiationPolicy::kBottleneckSets;
    int round_trips = 4;          // paper: four round trips ensure convergence
    std::uint64_t message_cap = 2'000'000;  // runaway guard
  };

  DistributedProtocol(sim::Simulator& simulator, const Problem& problem, Config config);

  /// Kicks off adaptation for every connection from its entry switch (used
  /// to compute the initial allocation).
  void start_all();

  /// Wireless capacity change at a physical link: applies the eq. (2)
  /// detection rule and initiates adaptation accordingly.
  void set_link_excess_capacity(LinkIndex link, double new_excess);

  /// Adds a connection at runtime (its entry switch initiates adaptation).
  /// Returns the new connection index.
  ConnIndex add_connection(std::vector<LinkIndex> path, double demand = kInfiniteDemand);

  /// Removes a connection; its former links re-advertise the freed capacity.
  void remove_connection(ConnIndex conn);

  /// Current per-connection excess rates (set by UPDATE messages).
  [[nodiscard]] const std::vector<double>& rates() const { return rates_; }

  /// Connections that were told to renegotiate because b'_av,l dropped below
  /// zero at some link on their path.
  [[nodiscard]] const std::vector<ConnIndex>& renegotiation_requests() const {
    return renegotiations_;
  }

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t rounds_run() const { return rounds_run_; }
  [[nodiscard]] bool message_cap_hit() const { return cap_hit_; }
  [[nodiscard]] double advertised_rate(LinkIndex link) const {
    return links_.at(link).mu.current();
  }
  /// M(l), sorted by connection index.
  [[nodiscard]] std::vector<ConnIndex> bottleneck_set(LinkIndex link) const;

  /// Drains the simulator's event queue (the protocol schedules all its
  /// message deliveries there) and returns the number of events processed.
  std::uint64_t run_to_quiescence() { return simulator_->run(); }

  /// Exports protocol telemetry: message/round/renegotiation counters and a
  /// per-link advertised-rate + bottleneck-set-size gauge pair. Adds the
  /// current totals — call once, after the run. Adaptation rounds and
  /// UPDATEs are additionally traced live through the simulator's attached
  /// obs::Tracer (spans per round, instants per UPDATE, a counter track per
  /// link's advertised rate) whenever tracing is enabled.
  void export_metrics(obs::Registry& registry) const;

 private:
  enum class Direction { kUpstream, kDownstream };

  struct Advertise {
    ConnIndex conn;
    double stamped;
    std::uint64_t token;    // adaptation-round instance
    Direction direction;
    bool returning;         // true once reflected at an endpoint
    std::size_t position;   // index into the connection's path
  };

  // Per-(link, connection) bookkeeping beyond the recorded rate.
  struct ConnState {
    bool in_bottleneck = false;       // membership in M(l)
    bool has_last_completed = false;
    // Post-completion (advertised, recorded) state of the last adaptation
    // this link triggered for the connection. Re-triggering in an identical
    // state cannot change the outcome and is suppressed — this is what makes
    // the event-driven cascade terminate.
    double last_completed_mu = 0.0;
    double last_completed_rate = 0.0;
    // Flooding policy: generation of the last flood-initiated round (the
    // paper's "global ID and sequence number" loop guard).
    std::uint64_t last_flood_generation = ~std::uint64_t{0};
  };

  struct LinkNode {
    AdvertisedRate mu{0.0};
    // Parallel arrays over the link's member connections; `recorded` is the
    // contiguous rate span handed to AdvertisedRate::recompute.
    std::vector<ConnIndex> members;
    std::vector<double> recorded;
    std::vector<ConnState> state;
    sim::FlatMap<std::uint64_t, std::uint32_t> index;  // conn -> position

    [[nodiscard]] std::size_t position_of(ConnIndex conn) const {
      const std::uint32_t* pos = index.find(std::uint64_t(conn));
      return pos ? *pos : members.size();
    }
    [[nodiscard]] bool has(ConnIndex conn) const { return position_of(conn) < members.size(); }
    void add_member(ConnIndex conn);
    void remove_member(ConnIndex conn);
  };

  struct Adaptation {
    LinkIndex trigger_link;
    ConnIndex conn;
    int trips_left = 0;
    std::optional<double> returned_upstream;
    std::optional<double> returned_downstream;
  };

  // Sentinel "exclude nobody" argument for the cascade helpers.
  static constexpr ConnIndex kNoConnection = static_cast<ConnIndex>(-1);

  static std::uint64_t trigger_key(LinkIndex link, ConnIndex conn) {
    return (std::uint64_t(link) << 32) | std::uint64_t(conn);
  }

  // --- trigger queue (serialized rounds) --------------------------------
  void initiate(LinkIndex link, ConnIndex conn);
  void initiate_growers(LinkIndex link, ConnIndex except);
  void initiate_over_consumers(LinkIndex link, ConnIndex except);
  [[nodiscard]] bool trigger_valid(LinkIndex link, ConnIndex conn) const;
  void pump();

  // --- protocol actions --------------------------------------------------
  void launch_round();
  void deliver_advertise(Advertise packet);
  void handle_advertise_at(LinkIndex link, Advertise& packet);
  void on_round_trip_complete();
  void send_update(ConnIndex conn, double rate);
  void finish_adaptation(double final_rate);
  void recompute_mu(LinkIndex link);

  // --- tracing (no-ops unless a tracer is attached and enabled) ----------
  void trace_round_complete(ConnIndex conn, double final_rate);
  void trace_update(ConnIndex conn, double rate);
  void trace_mu(LinkIndex link, double mu);

  sim::Simulator* simulator_;
  Config config_;

  std::vector<LinkNode> links_;
  std::vector<std::vector<LinkIndex>> paths_;   // per connection (augmented)
  std::vector<bool> conn_alive_;
  std::vector<double> rates_;
  std::vector<ConnIndex> renegotiations_;

  std::deque<std::pair<LinkIndex, ConnIndex>> trigger_queue_;
  sim::FlatMap<std::uint64_t, bool> queued_;  // membership for trigger_queue_
  std::optional<Adaptation> active_;
  std::uint64_t active_token_ = 0;  // invalidates stale packets

  // Interned trace names, filled lazily on first use (per-link counter
  // tracks are interned on each link's first mu change).
  obs::NameId trace_round_name_ = obs::kInvalidName;
  obs::NameId trace_update_name_ = obs::kInvalidName;
  std::vector<obs::NameId> trace_link_names_;
  sim::SimTime round_started_ = sim::SimTime::zero();

  std::uint64_t messages_sent_ = 0;
  std::uint64_t rounds_run_ = 0;
  // External-event generation counter; flooding initiates each (link, conn)
  // at most once per generation.
  std::uint64_t generation_ = 0;
  bool cap_hit_ = false;
};

}  // namespace imrm::maxmin
