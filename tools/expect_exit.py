#!/usr/bin/env python3
"""Contract test helper: run a command and require an exact exit status.

Used by ctest to pin scenario_cli's strict-parsing behaviour: a malformed
flag value must exit with status 2 (not 0, not a crash/abort), and optionally
print a diagnostic mentioning the offending flag on stderr.

Usage: expect_exit.py --status N [--stderr-contains TEXT] -- cmd [args...]
"""
import argparse
import subprocess
import sys


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--status", type=int, required=True,
                        help="required exit status of the command")
    parser.add_argument("--stderr-contains", default=None,
                        help="substring that must appear on stderr")
    parser.add_argument("command", nargs=argparse.REMAINDER,
                        help="-- followed by the command to run")
    args = parser.parse_args()

    command = args.command
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        print("expect_exit.py: no command given", file=sys.stderr)
        return 2

    proc = subprocess.run(command, capture_output=True, text=True, timeout=120)
    ok = True
    if proc.returncode != args.status:
        print(f"FAIL: exit status {proc.returncode}, wanted {args.status}")
        ok = False
    if args.stderr_contains and args.stderr_contains not in proc.stderr:
        print(f"FAIL: stderr does not contain {args.stderr_contains!r}")
        ok = False
    if not ok:
        print(f"command: {' '.join(command)}")
        print(f"stdout: {proc.stdout}")
        print(f"stderr: {proc.stderr}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
