#include "maxmin/advertised_rate.h"

#include <algorithm>
#include <cassert>

namespace imrm::maxmin {

double AdvertisedRate::evaluate(const std::vector<double>& recorded_rates,
                                const std::vector<bool>& restricted) const {
  assert(recorded_rates.size() == restricted.size());
  const std::size_t n_total = recorded_rates.size();
  if (n_total == 0) return excess_capacity_;

  double restricted_sum = 0.0;   // b'_R
  double restricted_max = 0.0;   // max_{i in R} b'_{R,i}
  std::size_t n_restricted = 0;  // N_R
  for (std::size_t i = 0; i < n_total; ++i) {
    if (!restricted[i]) continue;
    restricted_sum += recorded_rates[i];
    restricted_max = std::max(restricted_max, recorded_rates[i]);
    ++n_restricted;
  }

  if (n_restricted == n_total) {
    // Everyone bottlenecked elsewhere: offer the leftover plus the largest
    // restricted share (that connection could grow into the slack here).
    return excess_capacity_ - restricted_sum + restricted_max;
  }
  return (excess_capacity_ - restricted_sum) / double(n_total - n_restricted);
}

std::vector<bool> AdvertisedRate::marking(const std::vector<double>& recorded_rates,
                                          double mu) {
  std::vector<bool> restricted(recorded_rates.size());
  for (std::size_t i = 0; i < recorded_rates.size(); ++i) {
    restricted[i] = recorded_rates[i] <= mu;
  }
  return restricted;
}

namespace {

// Evaluates the mu formula with the restricted set {i : rate_i <= threshold}.
// Single pass, no marking vector; summation runs in index order so results
// are bit-identical to the materialized-marking evaluation.
double evaluate_threshold(std::span<const double> rates, double threshold,
                          double excess_capacity, std::size_t* n_restricted_out) {
  const std::size_t n_total = rates.size();
  if (n_total == 0) {
    *n_restricted_out = 0;
    return excess_capacity;
  }
  double restricted_sum = 0.0;   // b'_R
  double restricted_max = 0.0;   // max_{i in R} b'_{R,i}
  std::size_t n_restricted = 0;  // N_R
  for (const double rate : rates) {
    if (rate > threshold) continue;
    restricted_sum += rate;
    restricted_max = std::max(restricted_max, rate);
    ++n_restricted;
  }
  *n_restricted_out = n_restricted;
  if (n_restricted == n_total) {
    return excess_capacity - restricted_sum + restricted_max;
  }
  return (excess_capacity - restricted_sum) / double(n_total - n_restricted);
}

}  // namespace

double AdvertisedRate::recompute(std::span<const double> recorded_rates) {
  // First pass: restricted set relative to the previous advertised rate.
  std::size_t n_first = 0;
  double mu = evaluate_threshold(recorded_rates, advertised_, excess_capacity_, &n_first);

  // Re-mark: previously restricted connections whose recorded rate now
  // exceeds mu become unrestricted — the remaining restricted set is
  // {i : rate_i <= min(previous mu, mu)}; the paper shows a single
  // re-calculation suffices after this re-marking.
  const double remark_threshold = std::min(advertised_, mu);
  if (remark_threshold < advertised_) {
    std::size_t n_remarked = 0;
    const double mu2 =
        evaluate_threshold(recorded_rates, remark_threshold, excess_capacity_, &n_remarked);
    if (n_remarked != n_first) mu = mu2;  // marking actually changed
  }

  advertised_ = mu;
  return mu;
}

double AdvertisedRate::fixed_point(const std::vector<double>& recorded_rates) const {
  // Iterate marking -> evaluate until the marking stabilizes. Guaranteed to
  // terminate: the restricted set shrinks monotonically once seeded with the
  // all-restricted marking's evaluation.
  std::vector<bool> restricted(recorded_rates.size(), true);
  double mu = evaluate(recorded_rates, restricted);
  for (std::size_t iter = 0; iter <= recorded_rates.size() + 1; ++iter) {
    std::vector<bool> next = marking(recorded_rates, mu);
    if (next == restricted) break;
    restricted = std::move(next);
    mu = evaluate(recorded_rates, restricted);
  }
  return mu;
}

}  // namespace imrm::maxmin
