// imrm scenario runner: a command-line front end for the experiment
// harnesses, so scenarios can be swept without recompiling.
//
//   $ ./scenario_cli classroom --size 55 --policy brute-force --seed 7
//   $ ./scenario_cli twocell --window 0.05 --pqos 0.01 --rule probabilistic
//   $ ./scenario_cli fig4 --hours 100 --users 12
//   $ ./scenario_cli maxmin --links 8 --conns 24 --seed 3
#include <cstring>
#include <iostream>
#include <random>
#include <string>

#include "experiments/classroom.h"
#include "experiments/fig4_mobility.h"
#include "experiments/twocell.h"
#include "maxmin/protocol.h"
#include "maxmin/waterfill.h"
#include "stats/table.h"

using namespace imrm;
using namespace imrm::experiments;

namespace {

/// Minimal flag scanner: --name value pairs after the subcommand.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) == 0) values_[argv[i] + 2] = argv[i + 1];
    }
  }
  [[nodiscard]] double number(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] std::string text(const std::string& name, std::string fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

int run_classroom_cmd(const Flags& flags) {
  ClassroomConfig config;
  config.class_size = std::size_t(flags.number("size", 35));
  config.meeting = {sim::SimTime::minutes(60), sim::SimTime::minutes(110),
                    config.class_size};
  config.seed = std::uint64_t(flags.number("seed", 7));
  config.passby_per_minute = flags.number("passby", 18.0);
  const std::string policy = flags.text("policy", "meeting-room");
  if (policy == "brute-force") config.policy = PolicyKind::kBruteForce;
  else if (policy == "aggregate") config.policy = PolicyKind::kAggregate;
  else if (policy == "static") config.policy = PolicyKind::kStatic;
  else if (policy == "none") config.policy = PolicyKind::kNone;
  else config.policy = PolicyKind::kMeetingRoom;

  const ClassroomResult result = run_classroom(config);
  std::cout << "policy=" << result.policy << " size=" << result.attendees
            << " load=" << stats::fmt(result.offered_load * 100, 0) << "%"
            << " drops=" << result.connection_drops << " walkers=" << result.walkers
            << '\n';
  return 0;
}

int run_twocell_cmd(const Flags& flags) {
  TwoCellConfig config;
  config.window = flags.number("window", 0.05);
  config.p_qos = flags.number("pqos", 0.01);
  config.duration = flags.number("duration", 1000.0);
  config.guard_fraction = flags.number("guard", 0.1);
  config.seed = std::uint64_t(flags.number("seed", 3));
  const std::string rule = flags.text("rule", "probabilistic");
  if (rule == "static") config.rule = AdmissionRule::kStaticGuard;
  else if (rule == "none") config.rule = AdmissionRule::kNoReservation;
  else config.rule = AdmissionRule::kProbabilistic;

  const TwoCellResult r = run_twocell(config);
  std::cout << "rule=" << rule << " T=" << config.window << " Pqos=" << config.p_qos
            << "  Pb=" << stats::fmt(r.p_block(), 5) << " Pd=" << stats::fmt(r.p_drop(), 5)
            << " (" << r.new_attempts << " arrivals, " << r.handoff_attempts
            << " handoffs)\n";
  return 0;
}

int run_fig4_cmd(const Flags& flags) {
  Fig4Config config;
  config.hours = flags.number("hours", 100.0);
  config.background_users = int(flags.number("users", 12));
  config.seed = std::uint64_t(flags.number("seed", 1));
  const Fig4Result r = run_fig4(config);
  auto pct = [](std::size_t a, std::size_t b) {
    return b ? stats::fmt(100.0 * double(a) / double(b), 1) : std::string("-");
  };
  std::cout << "faculty C->D fanout: A " << pct(r.faculty.to_a, r.faculty.total())
            << "% | towards B " << pct(r.faculty.toward_b, r.faculty.total())
            << "% | F/G " << pct(r.faculty.to_fg, r.faculty.total()) << "%\n";
  std::cout << "prediction hit rate: "
            << pct(r.predictive_hits, r.predictive_reservations) << "% over "
            << r.predictive_reservations << " reservations ("
            << r.total_handoffs << " handoffs)\n";
  return 0;
}

int run_maxmin_cmd(const Flags& flags) {
  const int n_links = int(flags.number("links", 6));
  const int n_conns = int(flags.number("conns", 12));
  std::mt19937_64 rng{std::uint64_t(flags.number("seed", 1))};
  std::uniform_real_distribution<double> cap(5.0, 50.0);

  maxmin::Problem problem;
  for (int i = 0; i < n_links; ++i) problem.links.push_back({cap(rng)});
  for (int c = 0; c < n_conns; ++c) {
    std::uniform_int_distribution<int> start_dist(0, n_links - 1);
    const int start = start_dist(rng);
    std::uniform_int_distribution<int> end_dist(start, n_links - 1);
    const int end = end_dist(rng);
    maxmin::ProblemConnection conn;
    for (int li = start; li <= end; ++li) conn.path.push_back(std::size_t(li));
    problem.connections.push_back(std::move(conn));
  }

  sim::Simulator simulator;
  maxmin::DistributedProtocol protocol(simulator, problem, {});
  protocol.start_all();
  protocol.run_to_quiescence();
  const auto optimum = maxmin::waterfill(problem);
  double dev = 0.0;
  for (std::size_t i = 0; i < optimum.rates.size(); ++i) {
    dev = std::max(dev, std::abs(protocol.rates()[i] - optimum.rates[i]));
  }
  std::cout << "links=" << n_links << " conns=" << n_conns << " messages="
            << protocol.messages_sent() << " rounds=" << protocol.rounds_run()
            << " max-dev-from-optimal=" << stats::fmt(dev, 9) << '\n';
  return 0;
}

void usage() {
  std::cout <<
      "usage: scenario_cli <command> [--flag value ...]\n"
      "  classroom  --size N --policy meeting-room|brute-force|aggregate|static|none\n"
      "             --passby R --seed S\n"
      "  twocell    --window T --pqos P --rule probabilistic|static|none\n"
      "             --guard G --duration D --seed S\n"
      "  fig4       --hours H --users N --seed S\n"
      "  maxmin     --links L --conns C --seed S\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (command == "classroom") return run_classroom_cmd(flags);
  if (command == "twocell") return run_twocell_cmd(flags);
  if (command == "fig4") return run_fig4_cmd(flags);
  if (command == "maxmin") return run_maxmin_cmd(flags);
  usage();
  return 2;
}
