#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace imrm::obs::json {

void write_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
    return;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  (void)ec;  // shortest form always fits in 32 chars
  os.write(buf, end - buf);
}

void write_number(std::ostream& os, std::uint64_t value) {
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  (void)ec;
  os.write(buf, end - buf);
}

}  // namespace imrm::obs::json
