file(REMOVE_RECURSE
  "CMakeFiles/imrm_qos.dir/admission.cc.o"
  "CMakeFiles/imrm_qos.dir/admission.cc.o.d"
  "CMakeFiles/imrm_qos.dir/packet_sim.cc.o"
  "CMakeFiles/imrm_qos.dir/packet_sim.cc.o.d"
  "libimrm_qos.a"
  "libimrm_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imrm_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
