# Empty compiler generated dependencies file for imrm_experiments.
# This may be replaced when dependencies are built.
