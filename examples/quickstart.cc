// Quickstart: the smallest useful program against the public API.
//
// Builds the paper's Figure 4 office environment, puts one user with an
// adaptive 16..64 kbps connection in the corridor, lets them settle
// (static -> QoS upgrade), then walks them into their office (handoff with
// advance reservation).
//
//   $ ./quickstart
#include <iostream>

#include "core/environment.h"
#include "mobility/floorplan.h"

using namespace imrm;

int main() {
  // 1. A simulator and the indoor environment: cells, classes, neighbors.
  sim::Simulator simulator;
  core::EnvironmentConfig config;
  config.cell_capacity = qos::mbps(1.6);             // wireless cell throughput
  config.static_threshold = sim::Duration::minutes(3);  // T_th
  core::Environment env(mobility::fig4_environment(), simulator, config);
  const auto cells = mobility::fig4_cells(env.map());

  // 2. A portable whose home office is A, starting in corridor C.
  const auto user = env.add_portable(cells.c, /*home_office=*/cells.a);

  // 3. Open a connection with loose QoS bounds [16, 64] kbps.
  if (!env.open_connection(user, {qos::kbps(16), qos::kbps(64)})) {
    std::cerr << "admission failed\n";
    return 1;
  }
  std::cout << "connection open, allocated " << env.allocated(user) / 1e3
            << " kbps (the guaranteed minimum)\n";

  // 4. Let the user dwell: after T_th they are classified static and the
  //    network upgrades the allocation toward b_max.
  simulator.run_until(sim::SimTime::minutes(5));
  env.refresh();
  std::cout << "after 5 min, user is "
            << (env.classify(user) == qos::MobilityClass::kStatic ? "static" : "mobile")
            << ", allocated " << env.allocated(user) / 1e3 << " kbps\n";

  // 5. Walk toward the office: D is the corridor junction. The moment the
  //    user moves they are mobile again; the three-level predictor places an
  //    advance reservation in the next predicted cell (their office, A).
  env.handoff(user, cells.d);
  std::cout << "moved to corridor D; reservation waiting in office A: "
            << env.cell(cells.a).reservation_for(user) / 1e3 << " kbps\n";

  // 6. Enter the office: the handoff consumes the reservation; no QoS
  //    renegotiation was needed at any point.
  env.handoff(user, cells.a);
  std::cout << "entered office A; allocated " << env.allocated(user) / 1e3
            << " kbps, handoff drops so far: " << env.stats().handoff_drops << '\n';

  std::cout << "stats: " << env.stats().handoffs << " handoffs, "
            << env.stats().reservations_placed << " advance reservations, "
            << env.stats().predictions_correct << " correct predictions\n";
  return 0;
}
