#include "mobility/movement.h"

#include <cassert>

namespace imrm::mobility {

void TransitionTable::set(CellId previous, CellId current, std::vector<Choice> choices) {
  assert(!choices.empty());
  table_[{previous, current}] = std::move(choices);
}

bool TransitionTable::has_entry(CellId previous, CellId current) const {
  return table_.contains({previous, current}) ||
         table_.contains({CellId::invalid(), current});
}

CellId TransitionTable::sample(const CellMap& map, CellId previous, CellId current,
                               sim::Rng& rng) const {
  auto it = table_.find({previous, current});
  if (it == table_.end()) it = table_.find({CellId::invalid(), current});
  if (it != table_.end()) {
    std::vector<double> weights;
    weights.reserve(it->second.size());
    for (const Choice& c : it->second) weights.push_back(c.weight);
    return it->second[rng.discrete(weights)].next;
  }
  // Uniform fallback over neighbors.
  const auto& neighbors = map.cell(current).neighbors;
  assert(!neighbors.empty());
  return neighbors[std::size_t(rng.uniform_int(0, int(neighbors.size()) - 1))];
}

void MarkovMover::start(PortableId portable) { schedule_next(portable); }

void MarkovMover::schedule_next(PortableId portable) {
  const double dwell_s = rng_.exponential_mean(config_.mean_dwell.to_seconds());
  const sim::SimTime at = manager_->simulator().now() + sim::Duration::seconds(dwell_s);
  if (at > config_.horizon) return;
  manager_->simulator().at(at, [this, portable] {
    const Portable& p = manager_->portable(portable);
    const CellId next = table_.sample(manager_->map(), p.previous_cell, p.current_cell, rng_);
    manager_->move(portable, next);
    ++moves_;
    schedule_next(portable);
  });
}

TransitionTable fig4_transition_table(const CellMap& map, const Fig4Weights& w) {
  const Fig4Cells c = fig4_cells(map);
  TransitionTable table;
  // Walking down the corridor C -> D: the measured decision point.
  table.set(c.c, c.d,
            {{c.a, w.to_a}, {c.e, w.toward_b}, {c.f, w.to_fg / 2}, {c.g, w.to_fg / 2}});
  // Whoever turned toward B at D continues into the office.
  table.set(c.d, c.e, {{c.b, 1.0}});
  // Leaving an office goes back into the corridor.
  table.set_default(c.a, {{c.d, 1.0}});
  table.set_default(c.b, {{c.e, 1.0}});
  // Corridor ends loop back toward the junction.
  table.set_default(c.f, {{c.d, 1.0}});
  table.set_default(c.g, {{c.d, 1.0}});
  table.set_default(c.c, {{c.d, 1.0}});
  // Reaching D from anywhere but C heads back out to C (keeps walks cycling
  // through the measured C -> D decision point).
  table.set_default(c.d, {{c.c, 1.0}});
  table.set(c.e, c.d, {{c.c, 1.0}});
  table.set(c.b, c.e, {{c.d, 1.0}});
  return table;
}

}  // namespace imrm::mobility
