// Tests for cell bandwidth accounting, the lounge handoff predictors, and
// the probabilistic reservation model (eqs. 3-7).
#include <gtest/gtest.h>

#include <cmath>

#include "reservation/cell_bandwidth.h"
#include "reservation/handoff_predictor.h"
#include "reservation/probabilistic.h"

namespace imrm::reservation {
namespace {

using qos::kbps;
using qos::mbps;

constexpr PortableId kP1{1}, kP2{2}, kP3{3};

TEST(CellBandwidth, NewConnectionsRespectCapacity) {
  CellBandwidth cell(kbps(100));
  EXPECT_TRUE(cell.admit_new(kP1, kbps(60)));
  EXPECT_FALSE(cell.admit_new(kP2, kbps(60)));
  EXPECT_TRUE(cell.admit_new(kP2, kbps(40)));
  EXPECT_DOUBLE_EQ(cell.allocated(), kbps(100));
}

TEST(CellBandwidth, ReleaseFreesCapacity) {
  CellBandwidth cell(kbps(100));
  ASSERT_TRUE(cell.admit_new(kP1, kbps(60)));
  cell.release(kP1);
  EXPECT_DOUBLE_EQ(cell.allocated(), 0.0);
  EXPECT_TRUE(cell.admit_new(kP2, kbps(100)));
}

TEST(CellBandwidth, SpecificReservationBlocksNewButNotItsHandoff) {
  CellBandwidth cell(kbps(100));
  cell.reserve_for(kP1, kbps(50));
  // New connection sees only 50 free.
  EXPECT_FALSE(cell.admit_new(kP2, kbps(60)));
  // P1's handoff may use its own reservation.
  EXPECT_TRUE(cell.admit_handoff(kP1, kbps(60)));
  EXPECT_DOUBLE_EQ(cell.reservation_for(kP1), 0.0);  // consumed
}

TEST(CellBandwidth, HandoffCannotTouchOthersReservations) {
  CellBandwidth cell(kbps(100));
  cell.reserve_for(kP1, kbps(50));
  ASSERT_TRUE(cell.admit_new(kP2, kbps(40)));
  // P3 hands off: free = 100 - 40 - 50 = 10.
  EXPECT_FALSE(cell.admit_handoff(kP3, kbps(20)));
  EXPECT_TRUE(cell.admit_handoff(kP3, kbps(10)));
}

TEST(CellBandwidth, AnonymousPoolServesHandoffsOnly) {
  CellBandwidth cell(kbps(100));
  cell.set_anonymous_reservation(kbps(30));
  EXPECT_FALSE(cell.admit_new(kP1, kbps(80)));   // 30 held back
  EXPECT_TRUE(cell.admit_handoff(kP2, kbps(80)));  // pool absorbs the handoff
  // The pool shrank by the consumed amount.
  EXPECT_DOUBLE_EQ(cell.anonymous_reservation(), 0.0);
}

TEST(CellBandwidth, PoolPartiallyConsumed) {
  CellBandwidth cell(kbps(100));
  cell.set_anonymous_reservation(kbps(30));
  EXPECT_TRUE(cell.admit_handoff(kP1, kbps(10)));
  EXPECT_DOUBLE_EQ(cell.anonymous_reservation(), kbps(20));
}

TEST(CellBandwidth, FailedHandoffStillConsumesOwnReservation) {
  CellBandwidth cell(kbps(100));
  ASSERT_TRUE(cell.admit_new(kP2, kbps(95)));
  cell.reserve_for(kP1, kbps(5));
  EXPECT_FALSE(cell.admit_handoff(kP1, kbps(20)));
  EXPECT_DOUBLE_EQ(cell.reservation_for(kP1), 0.0);
}

TEST(CellBandwidth, ReserveForReplacesPrevious) {
  CellBandwidth cell(kbps(100));
  cell.reserve_for(kP1, kbps(20));
  cell.reserve_for(kP1, kbps(30));
  EXPECT_DOUBLE_EQ(cell.reservation_for(kP1), kbps(30));
  EXPECT_DOUBLE_EQ(cell.reserved_total(), kbps(30));
  cell.cancel_reservation(kP1);
  EXPECT_DOUBLE_EQ(cell.reserved_total(), 0.0);
}

TEST(CellBandwidth, ClearSpecificReservations) {
  CellBandwidth cell(kbps(100));
  cell.reserve_for(kP1, kbps(20));
  cell.reserve_for(kP2, kbps(30));
  cell.set_anonymous_reservation(kbps(10));
  cell.clear_specific_reservations();
  EXPECT_DOUBLE_EQ(cell.reserved_total(), kbps(10));  // anonymous survives
}

TEST(CellBandwidth, SetAllocationAdjustsTotals) {
  CellBandwidth cell(kbps(100));
  ASSERT_TRUE(cell.admit_new(kP1, kbps(16)));
  cell.set_allocation(kP1, kbps(64));
  EXPECT_DOUBLE_EQ(cell.allocated(), kbps(64));
  cell.set_allocation(kP1, kbps(16));
  EXPECT_DOUBLE_EQ(cell.allocated(), kbps(16));
}

TEST(CellBandwidth, UtilizationFraction) {
  CellBandwidth cell(kbps(100));
  ASSERT_TRUE(cell.admit_new(kP1, kbps(25)));
  EXPECT_DOUBLE_EQ(cell.utilization_fraction(), 0.25);
}

// ---- predictors ---------------------------------------------------------

TEST(LeastSquares, ExactLinearDataRecovered) {
  // n = 3t + 2 sampled at t = 4, 5, 6.
  const LinearFit fit = least_squares_3(14.0, 17.0, 20.0, 6.0);
  EXPECT_NEAR(fit.a, 3.0, 1e-12);
  EXPECT_NEAR(fit.m, 2.0, 1e-12);
  EXPECT_NEAR(fit.at(7.0), 23.0, 1e-12);
}

TEST(LeastSquares, NoisyDataFitsTrend) {
  const LinearFit fit = least_squares_3(10.0, 13.0, 14.0, 2.0);
  EXPECT_NEAR(fit.a, 2.0, 1e-12);  // (14-10)/2
  // Mean condition: fit passes through (t_mean, n_mean) = (1, 37/3).
  EXPECT_NEAR(fit.at(1.0), 37.0 / 3.0, 1e-12);
}

TEST(CafeteriaPredictor, NeedsThreeSamplesForTrend) {
  CafeteriaPredictor p;
  EXPECT_DOUBLE_EQ(p.predict_next(), 0.0);
  p.push(10.0);
  EXPECT_DOUBLE_EQ(p.predict_next(), 10.0);  // fallback: latest value
  p.push(12.0);
  EXPECT_DOUBLE_EQ(p.predict_next(), 12.0);
  p.push(14.0);
  EXPECT_NEAR(p.predict_next(), 16.0, 1e-9);  // linear trend continues
}

TEST(CafeteriaPredictor, SlidingWindowTracksRecentTrend) {
  CafeteriaPredictor p;
  for (double v : {100.0, 50.0, 20.0, 18.0, 16.0}) p.push(v);
  // Window is {20, 18, 16}: slope -2, next = 14.
  EXPECT_NEAR(p.predict_next(), 14.0, 1e-9);
}

TEST(CafeteriaPredictor, NegativeExtrapolationClampsToZero) {
  CafeteriaPredictor p;
  p.push(4.0);
  p.push(2.0);
  p.push(0.0);
  EXPECT_DOUBLE_EQ(p.predict_next(), 0.0);  // trend says -2; counts cannot
}

TEST(OneStepPredictor, RepeatsLastObservation) {
  OneStepPredictor p;
  EXPECT_DOUBLE_EQ(p.predict_next(), 0.0);
  p.push(7.0);
  EXPECT_DOUBLE_EQ(p.predict_next(), 7.0);
  p.push(3.0);
  EXPECT_DOUBLE_EQ(p.predict_next(), 3.0);
}

// ---- probabilistic model (eqs. 3-7) --------------------------------------

TEST(BinomialPmf, MatchesClosedForm) {
  const auto pmf = binomial_pmf(4, 0.5);
  ASSERT_EQ(pmf.size(), 5u);
  EXPECT_NEAR(pmf[0], 1.0 / 16, 1e-12);
  EXPECT_NEAR(pmf[1], 4.0 / 16, 1e-12);
  EXPECT_NEAR(pmf[2], 6.0 / 16, 1e-12);
  EXPECT_NEAR(pmf[3], 4.0 / 16, 1e-12);
  EXPECT_NEAR(pmf[4], 1.0 / 16, 1e-12);
}

TEST(BinomialPmf, DegenerateCases) {
  EXPECT_EQ(binomial_pmf(0, 0.3).size(), 1u);
  EXPECT_DOUBLE_EQ(binomial_pmf(0, 0.3)[0], 1.0);
  const auto certain = binomial_pmf(5, 1.0);
  EXPECT_DOUBLE_EQ(certain[5], 1.0);
  const auto never = binomial_pmf(5, 0.0);
  EXPECT_DOUBLE_EQ(never[0], 1.0);
}

TEST(BinomialPmf, SumsToOne) {
  for (double p : {0.1, 0.5, 0.9}) {
    const auto pmf = binomial_pmf(40, p);
    double total = 0.0;
    for (double x : pmf) total += x;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

ProbabilisticReservation paper_model(double window, double p_qos) {
  // Figure 6's setup: capacity 40; type 1: b=1, hold 0.2; type 2: b=4,
  // hold 0.25; handoff probability 0.7.
  ProbabilisticReservation::Config config;
  config.capacity_units = 40;
  config.window = window;
  config.p_qos = p_qos;
  config.handoff_prob = 0.7;
  return ProbabilisticReservation(config, {{1, 0.2}, {4, 0.25}});
}

TEST(Probabilistic, StayAndMoveProbabilities) {
  const auto model = paper_model(0.05, 0.01);
  // p_s,1 = exp(-T/0.2) = exp(-0.25)
  EXPECT_NEAR(model.p_stay(0), std::exp(-0.25), 1e-12);
  EXPECT_NEAR(model.p_move(0), (1.0 - std::exp(-0.25)) * 0.7, 1e-12);
  EXPECT_NEAR(model.p_stay(1), std::exp(-0.2), 1e-12);
}

TEST(Probabilistic, EmptySystemNeverBlocks) {
  const auto model = paper_model(0.05, 0.01);
  EXPECT_DOUBLE_EQ(model.nonblocking_probability({0, 0}, {0, 0}), 1.0);
}

TEST(Probabilistic, LightLoadNonblockingNearOne) {
  const auto model = paper_model(0.05, 0.01);
  EXPECT_GT(model.nonblocking_probability({5, 1}, {5, 1}), 0.999);
}

TEST(Probabilistic, OverloadDrivesNonblockingDown) {
  const auto model = paper_model(1.0, 0.01);
  // 80 unit-connections in each cell against capacity 40.
  const double p = model.nonblocking_probability({80, 0}, {80, 0});
  EXPECT_LT(p, 0.5);
}

TEST(Probabilistic, NonblockingMonotoneInLoad) {
  const auto model = paper_model(0.1, 0.01);
  double prev = 1.0;
  for (int n = 0; n <= 60; n += 10) {
    const double p = model.nonblocking_probability({n, 0}, {n, 0});
    EXPECT_LE(p, prev + 1e-12) << "n=" << n;
    prev = p;
  }
}

TEST(Probabilistic, NonblockingMonotoneInWindowForArrivalLoad) {
  // With an empty local cell, the only load is handoff arrivals, whose
  // probability p_m,i = (1 - e^{-mu T}) h grows with the window: P_nb must
  // not increase. (With local stayers the effect is non-monotone, since a
  // larger window also drains the local population — that is by design.)
  double prev = 1.0;
  for (double window : {0.01, 0.05, 0.2, 1.0}) {
    const auto model = paper_model(window, 0.01);
    const double p = model.nonblocking_probability({0, 0}, {50, 3});
    EXPECT_LE(p, prev + 1e-9) << "window=" << window;
    prev = p;
  }
}

TEST(Probabilistic, AdmitRequiresPhysicalFit) {
  const auto model = paper_model(0.001, 0.5);  // trivially satisfied eq. 6
  // 10 type-2 connections use the full 40 units: nothing fits.
  EXPECT_FALSE(model.admit_new(0, {0, 10}, {0, 0}));
  EXPECT_TRUE(model.admit_new(0, {0, 9}, {0, 0}));
}

TEST(Probabilistic, TighterPqosAdmitsLess) {
  // Short window so stayers dominate: eq. 6 then binds before the physical
  // fit does, letting P_QOS discriminate.
  const auto strict = paper_model(0.05, 0.001);
  const auto loose = paper_model(0.05, 0.5);
  // Find the max type-1 count each admits (neighbor moderately loaded).
  auto max_admitted = [](const ProbabilisticReservation& model) {
    std::vector<int> here{0, 0}, neighbor{20, 2};
    while (model.admit_new(0, here, neighbor)) ++here[0];
    return here[0];
  };
  EXPECT_LT(max_admitted(strict), max_admitted(loose));
}

TEST(Probabilistic, ReservedUnitsGrowWithNeighborLoad) {
  const auto model = paper_model(0.5, 0.01);
  const int quiet = model.reserved_units({5, 0}, {0, 0});
  const int busy = model.reserved_units({5, 0}, {60, 5});
  EXPECT_GE(busy, quiet);
  EXPECT_GT(busy, 0);
}

TEST(Probabilistic, UsedUnitsWeighted) {
  const auto model = paper_model(0.5, 0.01);
  EXPECT_EQ(model.used_units({3, 2}), 3 * 1 + 2 * 4);
}

}  // namespace
}  // namespace imrm::reservation
