// Cell maps: the graph of cells a mobile environment is made of, plus
// builders for the environments the paper evaluates on.
//
// fig4_environment() reconstructs the measured Figure 4 corner of the UIUC
// ECE building: faculty office A, student office B, corridor cells C-G.
// campus_environment() builds a larger synthetic floor with every cell
// class, used by integration tests and the campus_sim example.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mobility/cell.h"

namespace imrm::mobility {

class CellMap {
 public:
  CellId add_cell(CellClass cell_class, std::string name, ZoneId zone = ZoneId{0});

  /// Declares two cells mutual neighbors (handoff possible between them).
  void connect(CellId a, CellId b);

  [[nodiscard]] const Cell& cell(CellId id) const { return cells_.at(id.value()); }
  [[nodiscard]] Cell& cell(CellId id) { return cells_.at(id.value()); }
  [[nodiscard]] std::size_t size() const { return cells_.size(); }
  [[nodiscard]] const std::vector<Cell>& cells() const { return cells_; }

  [[nodiscard]] std::optional<CellId> find(const std::string& name) const;

  /// Registers a portable as a regular occupant of an office.
  void add_occupant(CellId office, PortableId portable);

  /// All cells of a given class.
  [[nodiscard]] std::vector<CellId> cells_of_class(CellClass c) const;

  /// True if the map's neighbor relation is symmetric and irreflexive —
  /// invariant checked by tests and asserted by builders.
  [[nodiscard]] bool neighbor_relation_valid() const;

 private:
  std::vector<Cell> cells_;
};

/// The Figure 4 environment. Cell names: "A", "B" (offices), "C".."G"
/// (corridors). Adjacency: C-D, D-A, D-E, D-F, D-G, E-B.
[[nodiscard]] CellMap fig4_environment();

/// Handles to the interesting cells of fig4_environment().
struct Fig4Cells {
  CellId a, b, c, d, e, f, g;
};
[[nodiscard]] Fig4Cells fig4_cells(const CellMap& map);

/// A synthetic office floor: `offices` office cells strung along a corridor
/// backbone, one meeting room, one cafeteria, and one default lounge, with
/// every cell class represented.
struct CampusConfig {
  int offices = 8;
  int corridor_segments = 4;  // corridor cells forming the backbone
  bool with_meeting_room = true;
  bool with_cafeteria = true;
  bool with_default_lounge = true;
};
[[nodiscard]] CellMap campus_environment(const CampusConfig& config = {});

/// A multi-floor office building: each floor is a campus_environment()
/// layout, with stairwell corridor cells connecting the first corridor
/// segment of adjacent floors. Cell names are prefixed "f<N>/"; each floor
/// is its own zone.
struct BuildingConfig {
  int floors = 3;
  CampusConfig floor = {};
};
[[nodiscard]] CellMap building_environment(const BuildingConfig& config = {});

}  // namespace imrm::mobility
