// Bridge between the live network state and the rate-allocation machinery:
// extract a Problem (excess capacities + connection headrooms), solve it
// centrally or distributedly, and write the allocations back.
//
// This is the "conflict resolution" entry point used by admission control
// (Section 5.2) and by network-initiated adaptation (Section 5.3).
#pragma once

#include <vector>

#include "maxmin/problem.h"
#include "maxmin/waterfill.h"
#include "net/network_state.h"

namespace imrm::maxmin {

struct ExtractedProblem {
  Problem problem;
  std::vector<net::ConnectionId> connection_order;  // problem index -> id
  std::vector<net::LinkId> link_order;              // problem index -> id
};

/// Snapshot of the adaptable part of the network: every link contributes its
/// excess capacity, every connection its headroom b_max - b_min. Only
/// connections from *static* portables participate when `static_only` is set
/// (Section 5.3: the network adapts only static portables' connections).
[[nodiscard]] ExtractedProblem extract_problem(const net::NetworkState& network,
                                               bool static_only = true);

/// Solves with centralized water-filling and applies b_j = b_min + excess_j
/// to every participating connection. Returns the per-connection excess.
std::vector<double> resolve_conflicts(net::NetworkState& network, bool static_only = true);

}  // namespace imrm::maxmin
