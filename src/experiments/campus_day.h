// The combination experiment: the paper's abstract promises that "a
// combination of the above approaches provide the framework for resource
// management". This harness runs a whole campus day — office dwellers, a
// big meeting, corridor roamers, AND opportunistic bulk-traffic "squatters"
// inside the meeting room — under each advance-reservation approach,
// including the full Section 6.4 dispatcher.
//
// The tension it measures: without reservations, squatter connections
// admitted before the meeting eat the capacity the arriving attendees need
// (attendee drops); with reservations, the same squatters are blocked while
// the reservation window is open (squatter blocks) and the meeting is
// seamless. Drop-versus-block is exactly the Figure 6 tradeoff, here
// reproduced by the full policy stack on a realistic day.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "fault/signaling.h"
#include "obs/metrics.h"
#include "qos/flow_spec.h"
#include "sim/checkpoint.h"
#include "sim/time.h"

namespace imrm::obs {
class Tracer;
class Profiler;
}  // namespace imrm::obs

namespace imrm::experiments {

enum class CampusPolicy { kNone, kStatic, kBruteForce, kAggregate, kDispatcher };

[[nodiscard]] std::string to_string(CampusPolicy policy);

struct CampusDayConfig {
  CampusPolicy policy = CampusPolicy::kDispatcher;
  qos::BitsPerSecond cell_capacity = qos::mbps(1.6);
  std::size_t attendees = 40;   // meeting size (dwellers + visiting roamers)
  std::size_t squatters = 10;   // bulk users camped in the meeting room
  qos::BitsPerSecond squatter_bandwidth = qos::kbps(96);
  std::uint64_t seed = 5;
  /// Meeting runs [start, stop); attendees walk in through the corridor.
  sim::SimTime meeting_start = sim::SimTime::minutes(90);
  sim::SimTime meeting_stop = sim::SimTime::minutes(140);

  /// Admission-signaling faults (ISSUE 3): every admit_new / admit_handoff
  /// first probes over an UnreliableCall; a timed-out probe degrades to a
  /// block (new connections, squatters retry later) or a drop (handoffs).
  /// Disabled by default; a disabled config draws no random numbers, so
  /// fault-free days stay byte-identical to pre-fault builds.
  fault::SignalingFaults faults{};

  /// Closed adaptation loop (ISSUE 9): a set of packet-level adaptive
  /// streams in the meeting room, each running source -> dual token-bucket
  /// shaper -> Virtual Clock link -> lossy hop -> delay sink, with an
  /// AdaptationController harvesting windowed loss/delay estimators every
  /// refresh tick and renegotiating the streams' requested ranges; grants
  /// come from the max-min excess division of the room account, and the
  /// shaper enforces them on the wire. A Gilbert–Elliott fault window
  /// [fault_start, fault_stop) drives the renegotiate-down / recover-up
  /// story. Disabled by default; a disabled loop builds nothing, draws no
  /// random numbers and leaves every metric byte-identical.
  struct AdaptLoop {
    bool enabled = false;
    std::size_t flows = 4;
    qos::BitsPerSecond b_min = qos::kbps(32);
    qos::BitsPerSecond b_max = qos::kbps(256);
    /// Gilbert–Elliott burst-loss probability injected on the air hop
    /// during the fault window (0 disables the fault, loop still runs).
    double fault_loss = 0.8;
    sim::SimTime fault_start = sim::SimTime::minutes(60);
    sim::SimTime fault_stop = sim::SimTime::minutes(100);
  };
  AdaptLoop adapt{};

  // ---- observability (all optional) ------------------------------------
  /// Registry for end-of-run metric export (sim.* driver totals, resv.* and
  /// mobility.* admission/handoff telemetry, campus.* outcome counters).
  obs::Registry* metrics = nullptr;
  /// Tracer to attach to the day's simulator (spans/instants/counters from
  /// every instrumented module).
  obs::Tracer* tracer = nullptr;
  /// Also bind the wall-clock handoff-latency histogram. Wall time is not
  /// deterministic — leave false whenever snapshots must be byte-comparable
  /// across runs or thread counts (the sweep always leaves it false).
  bool wall_metrics = false;
};

struct CampusDayResult {
  std::string policy;
  std::size_t attendee_drops = 0;    // meeting handoffs that failed
  std::size_t squatter_blocks = 0;   // bulk connections refused
  std::size_t squatter_admits = 0;
  std::size_t other_drops = 0;       // non-attendee handoff failures
  std::size_t handoffs = 0;
  double room_peak_allocated = 0.0;  // bps, sampled each minute

  // ---- adaptation loop (all zero when config.adapt.enabled is false) ----
  std::size_t renegotiations = 0;            // accepted renegotiations
  double adapt_granted_prefault_bps = 0.0;   // total grant at fault_start
  double adapt_granted_min_bps = 0.0;        // min total grant after fault_start
  double adapt_granted_final_bps = 0.0;      // total grant at end of day
};

[[nodiscard]] CampusDayResult run_campus_day(const CampusDayConfig& config);

/// Runs the day up to (but not including) the first event at or after `at`
/// and captures the full campus state: simulator core, the tagged pending
/// events (every scheduled appearance/handoff/squat/roam/periodic is a
/// plain-data record, re-armable on the other side), the RNG engine, probe
/// state, demand table, result accumulators, mobility roster, profile
/// histories, reservation accounts, policy soft state, and — when
/// config.metrics is set — the registry contents. The checkpoint embeds a
/// config fingerprint; resume validates it.
[[nodiscard]] sim::Checkpoint checkpoint_campus_day(const CampusDayConfig& config,
                                                    sim::SimTime at);

/// Continues a day from a checkpoint_campus_day image taken with the SAME
/// config. The resumed day is indistinguishable from an uninterrupted
/// run_campus_day(config): identical CampusDayResult and byte-identical
/// metrics JSON. Throws sim::CheckpointError on config mismatch or a
/// malformed image.
[[nodiscard]] CampusDayResult resume_campus_day(const CampusDayConfig& config,
                                                const sim::Checkpoint& checkpoint);

/// Monte-Carlo sweep: N independently seeded campus days fanned across a
/// sim::ReplicationRunner thread pool. Replication i runs with
/// sim::replication_seed(base_seed, i), and aggregation folds results in
/// replication order, so the aggregate is identical for the same seeds
/// regardless of thread count (asserted by tests/replication_test.cc).
struct CampusSweepConfig {
  CampusDayConfig base;           // base.seed is ignored; seeds are derived
  std::size_t replications = 16;
  std::size_t threads = 0;        // 0 = hardware concurrency
  std::uint64_t base_seed = 5;
  /// Optional wall-clock attribution (ISSUE 7): when set and enabled, each
  /// replication's wall cost is recorded as a campus.replication call, folded
  /// in replication order after the pool drains (the Profiler is
  /// single-threaded; workers only fill a per-index timing vector).
  obs::Profiler* profiler = nullptr;
};

struct CampusSweepResult {
  std::string policy;
  std::size_t replications = 0;
  // Sums across replications.
  std::size_t attendee_drops = 0;
  std::size_t squatter_blocks = 0;
  std::size_t squatter_admits = 0;
  std::size_t other_drops = 0;
  std::size_t handoffs = 0;
  std::size_t renegotiations = 0;         // accepted, summed (adapt loop)
  double mean_room_peak_allocated = 0.0;  // bps
  double max_room_peak_allocated = 0.0;   // bps
  /// Per-replication metric snapshots merged in replication order —
  /// byte-identical for the same seeds at any thread count.
  obs::Snapshot metrics;
};

[[nodiscard]] CampusSweepResult run_campus_day_sweep(const CampusSweepConfig& config);

}  // namespace imrm::experiments
