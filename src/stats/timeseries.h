// Time-series accumulation for experiment output.
//
// Figures 2 and 5 of the paper plot handoff activity per time bin; this
// class does the binning. Values are accumulated into fixed-width bins of
// simulated time.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/time.h"

namespace imrm::stats {

class BinnedSeries {
 public:
  /// Bins cover [origin, origin + n*width) and grow on demand.
  BinnedSeries(sim::SimTime origin, sim::Duration bin_width)
      : origin_(origin), width_(bin_width) {}

  /// Adds `value` to the bin containing `t`. Times before the origin belong
  /// to no bin: they accumulate in underflow() instead of silently inflating
  /// bin 0 (which used to distort the first plotted point of Figures 2/5
  /// whenever warmup activity preceded the series origin).
  void add(sim::SimTime t, double value = 1.0);

  [[nodiscard]] std::size_t bin_count() const { return bins_.size(); }
  [[nodiscard]] double bin_value(std::size_t i) const { return bins_.at(i); }

  /// Start time of bin i.
  [[nodiscard]] sim::SimTime bin_start(std::size_t i) const;

  /// Sum of values recorded before the origin (excluded from the bins,
  /// total() and max_bin()).
  [[nodiscard]] double underflow() const { return underflow_; }
  [[nodiscard]] std::size_t underflow_count() const { return underflow_count_; }

  /// Sum over the bins; underflow is excluded.
  [[nodiscard]] double total() const;
  [[nodiscard]] double max_bin() const;

  [[nodiscard]] const std::vector<double>& bins() const { return bins_; }

 private:
  sim::SimTime origin_;
  sim::Duration width_;
  std::vector<double> bins_;
  double underflow_ = 0.0;
  std::size_t underflow_count_ = 0;
};

/// Streaming mean/variance/min/max (Welford).
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / double(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * double(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Ratio estimator for probabilities such as P_b (blocking) and P_d
/// (handoff dropping): successes / trials with a guard for zero trials.
class RatioEstimator {
 public:
  void record(bool hit) {
    ++trials_;
    if (hit) ++hits_;
  }
  void record_hits(std::size_t hits, std::size_t trials) {
    hits_ += hits;
    trials_ += trials;
  }

  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t trials() const { return trials_; }
  [[nodiscard]] double ratio() const {
    return trials_ ? double(hits_) / double(trials_) : 0.0;
  }

 private:
  std::size_t hits_ = 0;
  std::size_t trials_ = 0;
};

}  // namespace imrm::stats
