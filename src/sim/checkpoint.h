// Checkpoint/restore serialization seam (ISSUE 4).
//
// A Checkpoint is a versioned container of named binary sections, each
// written by one subsystem (simulator core, protocol, channel, registry,
// experiment harness). The format is deliberately dumb: little-endian
// fixed-width integers, doubles as raw IEEE-754 bit patterns (bit-exact
// round-trip — byte-identical metrics JSON depends on it), strings and
// blobs length-prefixed. No cross-section references, no pointers.
//
// What is snapshotted vs. rebuilt: plain values (clocks, counters, rates,
// RNG engine state) are serialized; anything holding code or addresses
// (pending event callbacks, cached instrument pointers, listener
// registrations) is NOT serialized — the restoring side reconstructs the
// object graph from its config, re-arms pending events from tagged
// plain-data records in their original schedule order, and then overwrites
// the queue statistics so the restored run is indistinguishable from the
// uninterrupted one. The quiescence rule: a checkpoint is taken at a
// barrier event, where every pending event is either re-armable from a
// tagged record (experiment harnesses) or the queue has drained entirely
// (fault sweeps checkpoint after warm convergence).
//
// Header-only so qos/reservation/experiments can serialize through it
// without adding link-DAG edges.
#pragma once

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace imrm::sim {

/// Thrown on malformed checkpoint bytes (truncated section, bad magic,
/// version mismatch, missing section). Callers treat a checkpoint as
/// untrusted input: a corrupt file must fail loudly, never half-restore.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what) : std::runtime_error(what) {}
};

class CheckpointWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void time(SimTime t) { f64(t.to_seconds()); }

  /// mt19937_64 state via its textual stream representation: exact by the
  /// standard (unformatted decimal words), portable across libstdc++ builds.
  void rng(const std::mt19937_64& engine) {
    std::ostringstream os;
    os << engine;
    str(os.str());
  }

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class CheckpointReader {
 public:
  explicit CheckpointReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes.data()), size_(bytes.size()) {}

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(bytes_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(bytes_[pos_++]) << (8 * i);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(bytes_ + pos_), std::size_t(n));
    pos_ += std::size_t(n);
    return s;
  }
  SimTime time() { return SimTime::seconds(f64()); }

  void rng(std::mt19937_64& engine) {
    std::istringstream is(str());
    is >> engine;
    if (!is) throw CheckpointError("checkpoint: malformed RNG state");
  }

  [[nodiscard]] bool done() const { return pos_ == size_; }

 private:
  void need(std::uint64_t n) const {
    if (std::uint64_t(size_ - pos_) < n) {
      throw CheckpointError("checkpoint: truncated section");
    }
  }

  const std::uint8_t* bytes_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Versioned container of named sections. Section names are free-form but by
/// convention dotted ("sim.core", "maxmin.protocol", "obs.registry",
/// "experiment.campus"); a loader asks for exactly the sections it knows.
class Checkpoint {
 public:
  static constexpr char kMagic[9] = "IMRMCKPT";  // 8 bytes on the wire
  static constexpr std::uint32_t kVersion = 1;

  void set(const std::string& name, CheckpointWriter writer) {
    sections_[name] = writer.take();
  }
  [[nodiscard]] bool has(const std::string& name) const {
    return sections_.count(name) != 0;
  }
  [[nodiscard]] CheckpointReader reader(const std::string& name) const {
    const auto it = sections_.find(name);
    if (it == sections_.end()) {
      throw CheckpointError("checkpoint: missing section '" + name + "'");
    }
    return CheckpointReader(it->second);
  }
  [[nodiscard]] std::size_t section_count() const { return sections_.size(); }

  [[nodiscard]] std::vector<std::uint8_t> serialize() const {
    CheckpointWriter w;
    for (int i = 0; i < 8; ++i) w.u8(std::uint8_t(kMagic[i]));
    w.u32(kVersion);
    w.u32(std::uint32_t(sections_.size()));
    for (const auto& [name, bytes] : sections_) {
      w.str(name);
      w.u64(bytes.size());
      for (const std::uint8_t b : bytes) w.u8(b);
    }
    return w.take();
  }

  [[nodiscard]] static Checkpoint deserialize(const std::vector<std::uint8_t>& bytes) {
    CheckpointReader r(bytes);
    for (int i = 0; i < 8; ++i) {
      if (r.u8() != std::uint8_t(kMagic[i])) {
        throw CheckpointError("checkpoint: bad magic (not an IMRMCKPT file)");
      }
    }
    const std::uint32_t version = r.u32();
    if (version != kVersion) {
      throw CheckpointError("checkpoint: unsupported version " + std::to_string(version));
    }
    Checkpoint ckpt;
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::string name = r.str();
      const std::uint64_t len = r.u64();
      std::vector<std::uint8_t> payload;
      payload.reserve(std::size_t(len));
      for (std::uint64_t b = 0; b < len; ++b) payload.push_back(r.u8());
      ckpt.sections_[name] = std::move(payload);
    }
    if (!r.done()) throw CheckpointError("checkpoint: trailing bytes after sections");
    return ckpt;
  }

  void save_file(const std::string& path) const {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw CheckpointError("checkpoint: cannot open '" + path + "' for writing");
    const std::vector<std::uint8_t> bytes = serialize();
    out.write(reinterpret_cast<const char*>(bytes.data()),
              std::streamsize(bytes.size()));
    if (!out) throw CheckpointError("checkpoint: write to '" + path + "' failed");
  }

  [[nodiscard]] static Checkpoint load_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw CheckpointError("checkpoint: cannot open '" + path + "'");
    std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>()};
    return deserialize(bytes);
  }

 private:
  std::map<std::string, std::vector<std::uint8_t>> sections_;
};

// ---- obs::Registry save/restore ----------------------------------------
//
// Saved via a Snapshot (exact values: u64 counters, bit-exact doubles);
// restored by upserting into the live registry, so instrument addresses
// cached by bind_metrics() callers stay valid and post-restore records
// accumulate into the restored values in the identical operation sequence
// an uninterrupted run would have used (merging snapshots at the end
// instead would reorder double additions and break byte-identity).

inline void save_registry(CheckpointWriter& w, const obs::Registry& registry) {
  const obs::Snapshot snap = registry.snapshot();
  w.u64(snap.counters().size());
  for (const obs::CounterSample& c : snap.counters()) {
    w.str(c.name);
    w.u64(c.value);
  }
  w.u64(snap.gauges().size());
  for (const obs::GaugeSample& g : snap.gauges()) {
    w.str(g.name);
    w.f64(g.value);
    w.f64(g.max);
  }
  w.u64(snap.histograms().size());
  for (const obs::HistogramSample& h : snap.histograms()) {
    w.str(h.name);
    w.u8(h.spec.scale == obs::HistogramSpec::Scale::kLinear ? 0 : 1);
    w.f64(h.spec.lo);
    w.f64(h.spec.hi);
    w.u32(h.spec.divisions);
    w.u64(h.count);
    w.u64(h.underflow);
    w.u64(h.overflow);
    w.f64(h.sum);
    w.f64(h.min);
    w.f64(h.max);
    w.u64(h.buckets.size());
    for (const std::uint64_t b : h.buckets) w.u64(b);
  }
}

inline void restore_registry(CheckpointReader& r, obs::Registry& registry) {
  for (std::uint64_t n = r.u64(); n-- > 0;) {
    const std::string name = r.str();
    registry.counter(name).set(r.u64());
  }
  for (std::uint64_t n = r.u64(); n-- > 0;) {
    const std::string name = r.str();
    const double value = r.f64();
    const double max = r.f64();
    registry.gauge(name).restore(value, max);
  }
  for (std::uint64_t n = r.u64(); n-- > 0;) {
    const std::string name = r.str();
    obs::HistogramSpec spec;
    spec.scale = r.u8() == 0 ? obs::HistogramSpec::Scale::kLinear
                             : obs::HistogramSpec::Scale::kLog2;
    spec.lo = r.f64();
    spec.hi = r.f64();
    spec.divisions = r.u32();
    const std::uint64_t count = r.u64();
    const std::uint64_t underflow = r.u64();
    const std::uint64_t overflow = r.u64();
    const double sum = r.f64();
    const double min = r.f64();
    const double max = r.f64();
    std::vector<std::uint64_t> buckets(std::size_t(r.u64()));
    for (std::uint64_t& b : buckets) b = r.u64();
    if (buckets.size() != spec.bucket_count()) {
      throw CheckpointError("checkpoint: histogram '" + name + "' bucket count mismatch");
    }
    registry.histogram(name, spec)
        .restore(count, underflow, overflow, sum, min, max, std::move(buckets));
  }
}

// ---- Simulator core save/restore ----------------------------------------
//
// The driver core is plain values: clock, fired total, queue churn counters,
// FIFO sequence counter. Pending callbacks are NOT here — the restoring
// harness re-arms them from its own tagged records, then calls
// restore_simulator_core which overwrites the (re-arm-inflated) counters
// with the saved totals.

inline void save_simulator_core(CheckpointWriter& w, const Simulator& s) {
  w.time(s.now());
  w.u64(s.events_fired());
  w.u64(s.queue_stats().scheduled);
  w.u64(s.queue_stats().cancelled);
  w.u64(s.queue_stats().peak_pending);
  w.u64(s.queue_next_seq());
}

inline void restore_simulator_core(CheckpointReader& r, Simulator& s) {
  const SimTime now = r.time();
  const std::uint64_t fired = r.u64();
  EventQueue::Stats stats;
  stats.scheduled = r.u64();
  stats.cancelled = r.u64();
  stats.peak_pending = std::size_t(r.u64());
  const std::uint64_t next_seq = r.u64();
  s.restore_core(now, fired, stats, next_seq);
}

}  // namespace imrm::sim
