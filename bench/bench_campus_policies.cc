// The combination experiment (paper abstract: "a combination of the above
// approaches provide the framework for resource management").
//
// A campus day with a 40-person meeting and opportunistic bulk "squatters"
// camped in the meeting room. Each advance-reservation approach — none,
// static guard band, brute force, aggregate, and the full Section 6.4
// dispatcher — trades squatter blocking against attendee drops. The
// dispatcher (booking calendar + profiles + per-class policies) protects
// the meeting best.
#include <cstdlib>
#include <iostream>

#include "experiments/campus_day.h"
#include "sim/replication.h"
#include "stats/table.h"

using namespace imrm;
using namespace imrm::experiments;

int main(int argc, char** argv) {
  // Optional args: [replications] [threads] (threads 0 = hardware).
  const std::size_t replications = argc > 1 ? std::size_t(std::atoi(argv[1])) : 8;
  const std::size_t threads = argc > 2 ? std::size_t(std::atoi(argv[2])) : 0;

  std::cout << "== Combination experiment: reservation policies on a campus day ==\n";
  std::cout << "40-person meeting at t=[90,140) min; 10 bulk squatters (96 kbps)\n";
  std::cout << "keep retrying in the room; room capacity 1.6 Mbps\n";
  std::cout << replications << " independently seeded replications per policy, "
            << sim::ReplicationRunner(threads).threads() << " threads\n\n";

  stats::Table table({"policy", "attendee drops", "squatter blocks",
                      "squatter admits", "mean room peak (kbps)"});
  for (CampusPolicy policy :
       {CampusPolicy::kNone, CampusPolicy::kStatic, CampusPolicy::kBruteForce,
        CampusPolicy::kAggregate, CampusPolicy::kDispatcher}) {
    CampusSweepConfig config;
    config.base.policy = policy;
    config.replications = replications;
    config.threads = threads;
    const CampusSweepResult r = run_campus_day_sweep(config);
    table.add_row({r.policy, std::to_string(r.attendee_drops),
                   std::to_string(r.squatter_blocks), std::to_string(r.squatter_admits),
                   stats::fmt(r.mean_room_peak_allocated / 1e3, 0)});
  }
  table.print(std::cout);

  std::cout << "\nReading: with no reservations the squatters win the race and\n"
               "arriving attendees are dropped; the Section 6.4 dispatcher books\n"
               "the meeting ahead of time, blocks bulk traffic while the window\n"
               "is open, and keeps attendee drops minimal. Static guard bands\n"
               "sit in between: they block squatters all day but reserve too\n"
               "little for the actual burst. (Drops that remain under the\n"
               "dispatcher stem from squatters admitted before the booking\n"
               "window opened — reservations cannot evict fixed-bound\n"
               "connections, only pre-empt new ones.)\n";
  return 0;
}
