file(REMOVE_RECURSE
  "CMakeFiles/imrm_net.dir/link_state.cc.o"
  "CMakeFiles/imrm_net.dir/link_state.cc.o.d"
  "CMakeFiles/imrm_net.dir/multicast.cc.o"
  "CMakeFiles/imrm_net.dir/multicast.cc.o.d"
  "CMakeFiles/imrm_net.dir/network_state.cc.o"
  "CMakeFiles/imrm_net.dir/network_state.cc.o.d"
  "CMakeFiles/imrm_net.dir/routing.cc.o"
  "CMakeFiles/imrm_net.dir/routing.cc.o.d"
  "CMakeFiles/imrm_net.dir/topology.cc.o"
  "CMakeFiles/imrm_net.dir/topology.cc.o.d"
  "libimrm_net.a"
  "libimrm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imrm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
