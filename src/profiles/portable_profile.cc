#include "profiles/portable_profile.h"

#include <algorithm>

namespace imrm::profiles {

void PortableProfile::record(CellId previous, CellId current, CellId next) {
  auto& window = history_[{previous, current}];
  window.push_back(next);
  while (window.size() > window_) window.pop_front();
}

std::optional<CellId> PortableProfile::predict(CellId previous, CellId current) const {
  const auto it = history_.find({previous, current});
  if (it == history_.end() || it->second.empty()) return std::nullopt;
  // Majority vote over the window; ties break toward the most recent.
  std::map<CellId, std::size_t> counts;
  for (CellId next : it->second) ++counts[next];
  CellId best = it->second.back();
  std::size_t best_count = counts[best];
  for (const auto& [cell, count] : counts) {
    if (count > best_count) {
      best = cell;
      best_count = count;
    }
  }
  return best;
}

std::size_t PortableProfile::observations(CellId previous, CellId current) const {
  const auto it = history_.find({previous, current});
  return it == history_.end() ? 0 : it->second.size();
}

}  // namespace imrm::profiles
