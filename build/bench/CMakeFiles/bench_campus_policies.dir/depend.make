# Empty dependencies file for bench_campus_policies.
# This may be replaced when dependencies are built.
