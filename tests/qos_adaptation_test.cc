// AdaptationController (ISSUE 9 tentpole, control plane): windowed
// loss/delay evidence drives renegotiation — sustained breach ramps the
// requested b_max down toward b_min, sustained clean ramps it back up and
// lands bit-exactly on the original ceiling, and a clean (or merely noisy)
// channel must never trigger a renegotiation at all.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_model.h"
#include "qos/adaptation.h"
#include "qos/flow_spec.h"
#include "qos/packet_sim.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace imrm::qos {
namespace {

constexpr Bits kL = 4000.0;
constexpr BitsPerSecond kMin = kbps(32);
constexpr BitsPerSecond kMax = kbps(256);

QosRequest adaptive_request() {
  QosRequest request;
  request.bandwidth = {kMin, kMax};
  request.delay_bound = 0.1;
  request.jitter_bound = 0.1;
  request.loss_bound = 0.05;
  request.traffic = {2 * kL, kL};
  return request;
}

/// Hop + controller with a scripted renegotiation log. The hop's fault
/// model is swapped per window to script clean/lossy evidence.
struct ControllerRig {
  sim::Simulator simulator;
  LossyHop hop;
  std::vector<BitsPerSecond> renegotiated;  // requested b_max per accepted call
  bool accept = true;
  AdaptationController controller;

  explicit ControllerRig(const AdaptationConfig& config = {},
                         std::uint64_t hop_seed = 9)
      : hop(fault::LinkFaultModel{}, sim::Rng(hop_seed), nullptr),
        controller(config, hop, [this](FlowId, BandwidthRange range) {
          if (!accept) return false;
          renegotiated.push_back(range.b_max);
          return true;
        }) {
    controller.add_flow(0, adaptive_request(), kMax);
  }

  /// Offers one window's worth of packets through the hop.
  void offer_window(std::uint64_t packets) {
    for (std::uint64_t i = 0; i < packets; ++i) {
      Packet p;
      p.flow = 0;
      p.size = kL;
      p.created = simulator.now();
      hop.offer(p);
    }
  }
};

TEST(AdaptationController, CleanChannelIsStableAcrossSeeds) {
  // Mild background noise well inside the loss bound (1% loss vs 5% p_e):
  // the depth-of-breach rule (2 consecutive breached windows) must keep the
  // controller from ever renegotiating, across independent loss seeds.
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SCOPED_TRACE(seed);
    ControllerRig rig({}, seed);
    rig.hop.set_model(fault::LinkFaultModel::bernoulli_loss(0.01));
    for (int window = 0; window < 50; ++window) {
      rig.offer_window(100);
      rig.controller.tick();
    }
    EXPECT_EQ(rig.controller.renegotiations_triggered(), 0u);
    EXPECT_TRUE(rig.renegotiated.empty());
    EXPECT_DOUBLE_EQ(rig.controller.requested_max(0), kMax);
    EXPECT_DOUBLE_EQ(rig.controller.target_max(0), kMax);
  }
}

TEST(AdaptationController, SustainedBreachRampsDownTowardFloor) {
  ControllerRig rig;
  rig.hop.set_model(fault::LinkFaultModel::bernoulli_loss(1.0));
  for (int window = 0; window < 30; ++window) {
    rig.offer_window(100);
    rig.controller.tick();
  }
  // The requested b_max walked down monotonically, never below b_min.
  ASSERT_FALSE(rig.renegotiated.empty());
  for (std::size_t i = 0; i < rig.renegotiated.size(); ++i) {
    EXPECT_GE(rig.renegotiated[i], kMin) << i;
    if (i > 0) {
      EXPECT_LT(rig.renegotiated[i], rig.renegotiated[i - 1]) << i;
    }
  }
  // A persistent fault keeps halving the span: by now the request sits
  // essentially on the guaranteed floor.
  EXPECT_LT(rig.controller.requested_max(0), kMin + 0.05 * (kMax - kMin));
  EXPECT_EQ(rig.controller.renegotiations_accepted(),
            rig.controller.renegotiations_triggered());
  EXPECT_EQ(rig.controller.windows_breached(), 30u);
}

TEST(AdaptationController, MinSampleGuardHoldsStreaksAcrossQuietWindows) {
  ControllerRig rig;
  rig.hop.set_model(fault::LinkFaultModel::bernoulli_loss(1.0));
  // One full breached window (streak -> 1, below breach_windows = 2).
  rig.offer_window(100);
  rig.controller.tick();
  EXPECT_EQ(rig.controller.windows_breached(), 1u);
  EXPECT_EQ(rig.controller.renegotiations_triggered(), 0u);

  // Three starved windows: evidence of nothing, the breach streak holds.
  for (int window = 0; window < 3; ++window) {
    rig.offer_window(LossyHop::kMinLossSamples - 1);
    rig.controller.tick();
  }
  EXPECT_EQ(rig.controller.windows_insufficient(), 3u);
  EXPECT_EQ(rig.controller.renegotiations_triggered(), 0u);

  // The next full breached window completes the streak held across the
  // quiet gap — the target moves. (Had the guard reset the streak, this
  // would be breach #1 again and nothing would happen.)
  rig.offer_window(100);
  rig.controller.tick();
  EXPECT_EQ(rig.controller.renegotiations_triggered(), 1u);
  EXPECT_LT(rig.controller.target_max(0), kMax);
}

TEST(AdaptationController, RecoveryLandsBitExactlyOnOriginalCeiling) {
  ControllerRig rig;
  // Deep fault: drive the request down several multiplicative steps.
  rig.hop.set_model(fault::LinkFaultModel::bernoulli_loss(1.0));
  for (int window = 0; window < 12; ++window) {
    rig.offer_window(100);
    rig.controller.tick();
  }
  const BitsPerSecond under_fault = rig.controller.requested_max(0);
  ASSERT_LT(under_fault, kMax);

  // Heal: after clean_windows consecutive clean windows the target returns
  // to the ceiling and the concave ramp climbs monotonically onto it.
  rig.hop.set_model(fault::LinkFaultModel{});
  BitsPerSecond previous = under_fault;
  for (int window = 0; window < 20; ++window) {
    rig.offer_window(100);
    rig.controller.tick();
    const BitsPerSecond requested = rig.controller.requested_max(0);
    EXPECT_GE(requested, previous) << "ramp must be monotone on recovery";
    EXPECT_LE(requested, kMax);
    previous = requested;
  }
  // Bit-exact: the snap tolerance closes the asymptote.
  EXPECT_EQ(rig.controller.requested_max(0), kMax);
  EXPECT_EQ(rig.controller.target_max(0), kMax);
}

TEST(AdaptationController, DelayViolationsBreachWithoutLoss) {
  ControllerRig rig;  // trivial model: zero loss throughout
  for (int window = 0; window < 3; ++window) {
    rig.offer_window(100);
    // Every delivery misses the 100 ms delay bound.
    for (int i = 0; i < 100; ++i) rig.controller.on_delivered(0, 0.5);
    rig.controller.tick();
  }
  EXPECT_GE(rig.controller.windows_breached(), 2u);
  EXPECT_GE(rig.controller.renegotiations_triggered(), 1u);
  EXPECT_LT(rig.controller.requested_max(0), kMax);
}

TEST(AdaptationController, RejectedRenegotiationRetriesNextTick) {
  ControllerRig rig;
  rig.accept = false;
  rig.hop.set_model(fault::LinkFaultModel::bernoulli_loss(1.0));
  for (int window = 0; window < 4; ++window) {
    rig.offer_window(100);
    rig.controller.tick();
  }
  // Triggered every tick once the streak matured, accepted never; the
  // requested rate stays where it was (the owner said no).
  EXPECT_GE(rig.controller.renegotiations_triggered(), 2u);
  EXPECT_EQ(rig.controller.renegotiations_accepted(), 0u);
  EXPECT_DOUBLE_EQ(rig.controller.requested_max(0), kMax);
}

TEST(AdaptationController, WindowObserverSeesEveryVerdict) {
  ControllerRig rig;
  std::vector<AdaptationController::WindowVerdict> verdicts;
  rig.controller.set_window_observer(
      [&](FlowId flow, const LossyHop::LossWindow&,
          AdaptationController::WindowVerdict verdict) {
        EXPECT_EQ(flow, 0u);
        verdicts.push_back(verdict);
      });
  rig.offer_window(100);
  rig.controller.tick();  // clean
  rig.offer_window(5);
  rig.controller.tick();  // insufficient
  rig.hop.set_model(fault::LinkFaultModel::bernoulli_loss(1.0));
  rig.offer_window(100);
  rig.controller.tick();  // breached
  ASSERT_EQ(verdicts.size(), 3u);
  EXPECT_EQ(verdicts[0], AdaptationController::WindowVerdict::kClean);
  EXPECT_EQ(verdicts[1], AdaptationController::WindowVerdict::kInsufficient);
  EXPECT_EQ(verdicts[2], AdaptationController::WindowVerdict::kBreached);
}

}  // namespace
}  // namespace imrm::qos
