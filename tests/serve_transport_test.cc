// Transport seam tests: the in-process SPSC ring (single-threaded and
// cross-thread) and the AF_UNIX socket listener, including survival of a
// client that writes garbage at the server.
#include "serve/ring_transport.h"
#include "serve/socket_transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace imrm::serve {
namespace {

using std::chrono::microseconds;

std::string temp_socket_path(const char* tag) {
  return "/tmp/imrm_serve_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

// ---- ring ----------------------------------------------------------------

TEST(RingTransport, SingleThreadedRoundTrip) {
  RingTransport ring;
  const auto request = encode_request(1, ProbeRequest{});
  ASSERT_TRUE(ring.client().send_request(request));

  Envelope env;
  ASSERT_TRUE(ring.server().next_request(env, microseconds(0)));
  EXPECT_EQ(env.frame, request);

  const auto reply = encode_reply(1, ProbeReply{});
  ring.server().send_reply(env.client, reply);
  std::vector<std::uint8_t> got;
  ASSERT_TRUE(ring.client().next_reply(got, microseconds(0)));
  EXPECT_EQ(got, reply);
  EXPECT_EQ(ring.dropped_replies(), 0u);
}

TEST(RingTransport, EmptyRingReturnsFalseWithoutBlocking) {
  RingTransport ring;
  Envelope env;
  EXPECT_FALSE(ring.server().next_request(env, microseconds(0)));
  std::vector<std::uint8_t> reply;
  EXPECT_FALSE(ring.client().next_reply(reply, microseconds(0)));
}

TEST(RingTransport, BoundedRequestRingRejectsWhenFull) {
  RingTransport ring(/*request_capacity=*/4, /*reply_capacity=*/4);
  const auto frame = encode_request(1, ProbeRequest{});
  std::size_t accepted = 0;
  while (ring.client().send_request(frame)) ++accepted;
  EXPECT_GE(accepted, 4u);   // rounded up to a power of two
  EXPECT_LE(accepted, 8u);
  Envelope env;
  ASSERT_TRUE(ring.server().next_request(env, microseconds(0)));
  EXPECT_TRUE(ring.client().send_request(frame));  // slot freed
}

TEST(RingTransport, ClientCloseFinishesServer) {
  RingTransport ring;
  EXPECT_FALSE(ring.server().finished());
  ring.client().send_request(encode_request(7, ProbeRequest{}));
  ring.client().close();
  // Buffered requests stay readable after close; finished() only once empty.
  Envelope env;
  ASSERT_TRUE(ring.server().next_request(env, microseconds(0)));
  EXPECT_TRUE(ring.server().finished());
}

// Under ThreadSanitizer every atomic op and clock read in the poll loops is
// instrumented, which on a small host turns the full 20k-frame soak into
// minutes of wall time without exercising any additional interleavings —
// the handshake patterns repeat after the first few ring wraps. Keep enough
// frames to wrap both rings many times.
#if defined(__SANITIZE_THREAD__)
#define IMRM_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define IMRM_TSAN_BUILD 1
#endif
#endif

TEST(RingTransport, CrossThreadTransfersEverything) {
#if defined(IMRM_TSAN_BUILD)
  constexpr std::uint64_t kCount = 2000;
#else
  constexpr std::uint64_t kCount = 20000;
#endif
  RingTransport ring(256, 256);
  std::atomic<std::uint64_t> echoed{0};

  std::thread server([&] {
    Envelope env;
    std::uint64_t served = 0;
    while (served < kCount) {
      if (!ring.server().next_request(env, microseconds(500))) {
        if (ring.server().finished()) break;
        continue;
      }
      const RequestFrame frame = decode_request(env.frame);
      ring.server().send_reply(env.client,
                               encode_reply(frame.request_id, ProbeReply{}));
      ++served;
    }
  });

  std::thread client_reader([&] {
    std::vector<std::uint8_t> reply;
    while (echoed.load(std::memory_order_relaxed) < kCount) {
      if (ring.client().next_reply(reply, microseconds(500))) {
        const ReplyFrame frame = decode_reply(reply);
        EXPECT_LT(frame.request_id, kCount);
        echoed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Cap in-flight requests below the reply ring's capacity: send_reply on a
  // full reply ring DROPS (counted, not blocked), so an unthrottled producer
  // plus a descheduled reader could lose replies and strand the reader loop
  // short of kCount. Replies in the ring never exceed sent - read.
  constexpr std::uint64_t kMaxInFlight = 128;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (i - echoed.load(std::memory_order_relaxed) >= kMaxInFlight) {
      std::this_thread::yield();
    }
    // The bounded ring applies backpressure: spin until the slot frees.
    while (!ring.client().send_request(encode_request(i, ProbeRequest{}))) {
      std::this_thread::yield();
    }
  }
  client_reader.join();
  ring.client().close();
  server.join();
  EXPECT_EQ(echoed.load(), kCount);
  EXPECT_EQ(ring.dropped_replies(), 0u);
}

// ---- socket --------------------------------------------------------------

TEST(SocketTransport, LoopbackRoundTrip) {
  const std::string path = temp_socket_path("loopback");
  SocketServerTransport server(path);
  SocketClientTransport client(path);

  ASSERT_TRUE(client.send_request(encode_request(11, TeardownRequest{3})));
  Envelope env;
  // Accept + read may take a couple of pump rounds.
  bool got = false;
  for (int i = 0; i < 100 && !got; ++i) {
    got = server.next_request(env, microseconds(10000));
  }
  ASSERT_TRUE(got);
  const RequestFrame frame = decode_request(env.frame);
  EXPECT_EQ(frame.request_id, 11u);

  server.send_reply(env.client, encode_reply(11, TeardownReply{true}));
  std::vector<std::uint8_t> reply;
  got = false;
  for (int i = 0; i < 100 && !got; ++i) {
    got = client.next_reply(reply, microseconds(10000));
  }
  ASSERT_TRUE(got);
  EXPECT_TRUE(std::get<TeardownReply>(decode_reply(reply).body).had_session);
}

TEST(SocketTransport, GarbageStreamGetsErrorReplyAndDisconnect) {
  const std::string path = temp_socket_path("garbage");
  SocketServerTransport server(path);

  // A raw client that writes bytes that can never frame.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::vector<std::uint8_t> garbage(64, 0x5A);
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
            ssize_t(garbage.size()));

  // The server must survive, hand no frame up, and answer with a typed
  // kMalformedFrame ErrorReply before hanging up.
  Envelope env;
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(server.next_request(env, microseconds(10000)));
    if (server.connections() == 0) break;
  }
  EXPECT_EQ(server.connections(), 0u);

  FrameAssembler assembler;
  std::uint8_t chunk[512];
  std::vector<std::uint8_t> reply_bytes;
  for (int i = 0; i < 50 && reply_bytes.empty(); ++i) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, MSG_DONTWAIT);
    if (n > 0) {
      assembler.feed(chunk, std::size_t(n));
      std::vector<std::uint8_t> frame;
      if (assembler.next(frame)) reply_bytes = frame;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  ASSERT_FALSE(reply_bytes.empty()) << "no ErrorReply before disconnect";
  const ReplyFrame reply = decode_reply(reply_bytes);
  EXPECT_EQ(reply.request_id, 0u);
  EXPECT_EQ(std::get<ErrorReply>(reply.body).error,
            ServiceError::kMalformedFrame);
  ::close(fd);

  // A well-behaved client still gets service afterwards.
  SocketClientTransport good(path);
  ASSERT_TRUE(good.send_request(encode_request(5, ProbeRequest{})));
  bool got = false;
  for (int i = 0; i < 100 && !got; ++i) {
    got = server.next_request(env, microseconds(10000));
  }
  EXPECT_TRUE(got);
}

TEST(SocketTransport, BindFailureThrowsTyped) {
  EXPECT_THROW(SocketServerTransport("/nonexistent-dir-imrm/x.sock"),
               TransportError);
  EXPECT_THROW(SocketClientTransport(temp_socket_path("nobody-listens")),
               TransportError);
  EXPECT_THROW(SocketServerTransport(std::string(200, 'a')), TransportError);
}

}  // namespace
}  // namespace imrm::serve
