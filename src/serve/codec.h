// Wire codec for the admission-control service (ISSUE 8 tentpole).
//
// A request/reply frame is a fixed 18-byte header followed by a bounded,
// type-specific payload:
//
//   u32  magic        "IMRQ" little-endian (0x51524D49)
//   u8   version      kWireVersion (1)
//   u8   type         MsgType
//   u64  request_id   echoed verbatim in the matching reply
//   u32  payload_len  <= kMaxPayload
//   ...  payload      payload_len bytes, layout per type
//
// Parsing follows the sim::Checkpoint discipline: little-endian fixed-width
// integers, doubles as raw IEEE-754 bit patterns, every read bounds-checked.
// Malformed bytes — truncated header, wrong magic/version, oversized length,
// garbage enum values, trailing payload bytes — throw a typed CodecError and
// never reach undefined behaviour. The service treats every inbound frame as
// untrusted input; the decoder is the trust boundary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "qos/flow_spec.h"

namespace imrm::serve {

inline constexpr std::uint32_t kWireMagic = 0x51524D49u;  // "IMRQ" on the wire
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 18;
/// Largest admissible payload. The biggest real payload (AdmitRequest) is
/// 65 bytes; the bound exists so a corrupt length field cannot make a
/// reassembler buffer gigabytes before the type check runs.
inline constexpr std::uint32_t kMaxPayload = 1024;

enum class CodecErrorCode : std::uint8_t {
  kTruncated,   // fewer bytes than the header/payload declared
  kBadMagic,    // first 4 bytes are not "IMRQ"
  kBadVersion,  // version byte != kWireVersion
  kOversized,   // payload_len > kMaxPayload
  kBadType,     // type byte is not a known MsgType
  kBadValue,    // enum/flag field outside its domain
  kTrailing,    // payload longer than the type's layout
};

[[nodiscard]] const char* to_string(CodecErrorCode code);

class CodecError : public std::runtime_error {
 public:
  CodecError(CodecErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  [[nodiscard]] CodecErrorCode code() const { return code_; }

 private:
  CodecErrorCode code_;
};

enum class MsgType : std::uint8_t {
  // Requests (driver -> service).
  kAdmit = 1,
  kTeardown = 2,
  kHandoff = 3,
  kProbe = 4,
  kShutdown = 5,
  // Replies (service -> driver); request type | 0x80.
  kAdmitReply = 129,
  kTeardownReply = 130,
  kHandoffReply = 131,
  kProbeReply = 132,
  kShutdownReply = 133,
  // Overload shed: the request was rejected before decode/admission.
  kShedReply = 192,
  // Typed failure (malformed frame, unknown portable, ...).
  kErrorReply = 255,
};

/// Service-level failure codes carried by ErrorReply.
enum class ServiceError : std::uint8_t {
  kMalformedFrame = 0,
  kUnknownPortable = 1,
  kUnknownCell = 2,
  kAlreadyAdmitted = 3,
  kNoSession = 4,
  kShuttingDown = 5,
  /// Handoff/relocation target is not a neighbor of the current cell.
  kNotAdjacent = 6,
};
inline constexpr std::uint8_t kServiceErrorCount = 7;

[[nodiscard]] const char* to_string(ServiceError err);

// ---- request payloads ----------------------------------------------------

struct AdmitRequest {
  std::uint32_t portable = 0;  // caller-chosen external id
  std::uint32_t cell = 0;      // cell the portable is (or starts) in
  bool uplink = false;
  qos::QosRequest qos;
};

struct TeardownRequest {
  std::uint32_t portable = 0;
};

struct HandoffRequest {
  std::uint32_t portable = 0;
  std::uint32_t to_cell = 0;
};

struct ProbeRequest {};

struct ShutdownRequest {};

using Request = std::variant<AdmitRequest, TeardownRequest, HandoffRequest,
                             ProbeRequest, ShutdownRequest>;

// ---- reply payloads ------------------------------------------------------

struct AdmitReply {
  bool accepted = false;
  /// qos::RejectReason value when the service pre-checked the request
  /// (currently only kInvalidRequest); 0 (kNone) otherwise.
  std::uint8_t reason = 0;
  double allocated_bps = 0.0;
};

struct TeardownReply {
  bool had_session = false;  // idempotent: false when nothing was open
};

struct HandoffReply {
  bool completed = false;  // false = the connection was dropped
};

struct ProbeReply {
  std::uint64_t offered = 0;
  std::uint64_t processed = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  std::uint32_t queue_depth = 0;
  std::uint32_t cells = 0;
};

struct ShutdownReply {};

struct ShedReply {
  /// Suggested client backoff before retrying, microseconds.
  double retry_after_us = 0.0;
};

struct ErrorReply {
  ServiceError error = ServiceError::kMalformedFrame;
  std::string message;
};

using Reply = std::variant<AdmitReply, TeardownReply, HandoffReply, ProbeReply,
                           ShutdownReply, ShedReply, ErrorReply>;

struct RequestFrame {
  std::uint64_t request_id = 0;
  Request body;
};

struct ReplyFrame {
  std::uint64_t request_id = 0;
  Reply body;
};

// ---- encode / decode -----------------------------------------------------

[[nodiscard]] std::vector<std::uint8_t> encode_request(std::uint64_t request_id,
                                                       const Request& body);
[[nodiscard]] std::vector<std::uint8_t> encode_reply(std::uint64_t request_id,
                                                     const Reply& body);

/// Decodes one complete frame (header + payload, exactly). Throws CodecError.
[[nodiscard]] RequestFrame decode_request(const std::uint8_t* data, std::size_t size);
[[nodiscard]] ReplyFrame decode_reply(const std::uint8_t* data, std::size_t size);

[[nodiscard]] inline RequestFrame decode_request(const std::vector<std::uint8_t>& bytes) {
  return decode_request(bytes.data(), bytes.size());
}
[[nodiscard]] inline ReplyFrame decode_reply(const std::vector<std::uint8_t>& bytes) {
  return decode_reply(bytes.data(), bytes.size());
}

/// Best-effort request id for replying to a frame that failed full decode:
/// returns the header's id when the magic/version/length fields are sane,
/// 0 otherwise (clients treat id 0 as "unmatched diagnostic").
[[nodiscard]] std::uint64_t peek_request_id(const std::vector<std::uint8_t>& bytes);

/// Reassembles frames out of a byte stream (the socket transport's read
/// side). feed() appends raw bytes; next() extracts the next complete frame.
/// Header validation (magic, version, payload bound) happens as soon as the
/// 18 header bytes are in, so a garbage stream fails fast instead of
/// buffering until kMaxPayload.
class FrameAssembler {
 public:
  void feed(const std::uint8_t* data, std::size_t size);

  /// True and fills `frame` when a complete frame was extracted; false when
  /// more bytes are needed. Throws CodecError on a malformed header.
  bool next(std::vector<std::uint8_t>& frame);

  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace imrm::serve
