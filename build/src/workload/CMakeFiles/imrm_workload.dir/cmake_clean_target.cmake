file(REMOVE_RECURSE
  "libimrm_workload.a"
)
