#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/json.h"

namespace imrm::obs {

// ---- HistogramSpec ------------------------------------------------------

HistogramSpec HistogramSpec::linear(double lo, double hi, std::uint32_t buckets) {
  assert(hi > lo && buckets > 0);
  return {Scale::kLinear, lo, hi, buckets};
}

HistogramSpec HistogramSpec::log2(double lo, double hi, std::uint32_t sub_buckets) {
  assert(lo > 0.0 && hi > lo && sub_buckets > 0);
  return {Scale::kLog2, lo, hi, sub_buckets};
}

std::size_t HistogramSpec::bucket_count() const {
  if (scale == Scale::kLinear) return divisions;
  const double octaves = std::ceil(std::log2(hi / lo));
  return std::size_t(octaves) * divisions;
}

std::size_t HistogramSpec::index_of(double v) const {
  if (scale == Scale::kLinear) {
    const auto idx =
        std::size_t((v - lo) / (hi - lo) * double(divisions));
    return std::min(idx, std::size_t(divisions - 1));
  }
  // Log-linear: octave via log2, then a linear sub-bucket inside it.
  const double ratio = v / lo;
  const auto octave = std::size_t(std::log2(ratio));
  const double octave_lo = lo * double(1ull << octave);
  const auto sub = std::size_t((v - octave_lo) / octave_lo * double(divisions));
  const std::size_t idx = octave * divisions + std::min(sub, std::size_t(divisions - 1));
  return std::min(idx, bucket_count() - 1);
}

double HistogramSpec::lower_bound(std::size_t bucket) const {
  if (scale == Scale::kLinear) {
    return lo + (hi - lo) * double(bucket) / double(divisions);
  }
  const std::size_t octave = bucket / divisions;
  const std::size_t sub = bucket % divisions;
  const double octave_lo = lo * double(1ull << octave);
  return octave_lo * (1.0 + double(sub) / double(divisions));
}

// ---- HistogramSample ----------------------------------------------------

double HistogramSample::percentile(double q) const {
  assert(q >= 0.0 && q <= 1.0 && "percentile quantile must be in [0, 1]");
  if (count == 0) return 0.0;  // no samples: every quantile is the defined 0.0
  // The extremes are known exactly — return the observed min/max instead of
  // interpolating (q=0 used to report spec.lo even when all samples sat in a
  // higher bucket).
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const double target = q * double(count);
  double cumulative = double(underflow);
  double estimate = spec.hi;
  if (target <= cumulative) {
    estimate = spec.lo;
  } else {
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      const double in_bucket = double(buckets[i]);
      if (cumulative + in_bucket >= target && in_bucket > 0.0) {
        const double fraction = (target - cumulative) / in_bucket;
        const double lo = spec.lower_bound(i);
        estimate = lo + fraction * (spec.upper_bound(i) - lo);
        break;
      }
      cumulative += in_bucket;
    }
  }
  // Bucket interpolation knows only bucket bounds; the observed extremes are
  // tighter. Clamping keeps single-bucket saturation (all mass in one bucket)
  // and under/overflow mass from producing values outside the sampled range.
  return std::clamp(estimate, min, max);
}

// ---- Snapshot -----------------------------------------------------------

namespace {

template <typename Sample>
const Sample* find_sample(const std::vector<Sample>& samples, std::string_view name) {
  const auto it = std::lower_bound(
      samples.begin(), samples.end(), name,
      [](const Sample& s, std::string_view n) { return s.name < n; });
  return (it != samples.end() && it->name == name) ? &*it : nullptr;
}

/// Name-wise merge of two sorted sample vectors via `fold`; names only in
/// `from` are copied over. Both vectors stay sorted.
template <typename Sample, typename Fold>
void merge_samples(std::vector<Sample>& into, const std::vector<Sample>& from,
                   Fold&& fold) {
  std::vector<Sample> merged;
  merged.reserve(into.size() + from.size());
  auto a = into.begin();
  auto b = from.begin();
  while (a != into.end() || b != from.end()) {
    if (b == from.end() || (a != into.end() && a->name < b->name)) {
      merged.push_back(std::move(*a++));
    } else if (a == into.end() || b->name < a->name) {
      merged.push_back(*b++);
    } else {
      fold(*a, *b);
      merged.push_back(std::move(*a++));
      ++b;
    }
  }
  into = std::move(merged);
}

}  // namespace

const CounterSample* Snapshot::counter(std::string_view name) const {
  return find_sample(counters_, name);
}
const GaugeSample* Snapshot::gauge(std::string_view name) const {
  return find_sample(gauges_, name);
}
const HistogramSample* Snapshot::histogram(std::string_view name) const {
  return find_sample(histograms_, name);
}

void Snapshot::merge(const Snapshot& other) {
  merge_samples(counters_, other.counters_,
                [](CounterSample& a, const CounterSample& b) { a.value += b.value; });
  merge_samples(gauges_, other.gauges_, [](GaugeSample& a, const GaugeSample& b) {
    a.value += b.value;
    a.max = std::max(a.max, b.max);
  });
  merge_samples(histograms_, other.histograms_,
                [](HistogramSample& a, const HistogramSample& b) {
                  assert(a.spec == b.spec && "merging histograms with different specs");
                  if (b.count > 0) {
                    a.min = a.count == 0 ? b.min : std::min(a.min, b.min);
                    a.max = a.count == 0 ? b.max : std::max(a.max, b.max);
                  }
                  a.count += b.count;
                  a.underflow += b.underflow;
                  a.overflow += b.overflow;
                  a.sum += b.sum;
                  for (std::size_t i = 0; i < a.buckets.size(); ++i) {
                    a.buckets[i] += b.buckets[i];
                  }
                });
}

Snapshot merge_snapshots(const std::vector<Snapshot>& snapshots) {
  Snapshot merged;
  for (const Snapshot& s : snapshots) merged.merge(s);
  return merged;
}

void Snapshot::write_json(std::ostream& os) const {
  os << "{\"counters\":{";
  json::Separator sep;
  for (const CounterSample& c : counters_) {
    sep.write(os);
    json::write_string(os, c.name);
    os << ':';
    json::write_number(os, c.value);
  }
  os << "},\"gauges\":{";
  sep = {};
  for (const GaugeSample& g : gauges_) {
    sep.write(os);
    json::write_string(os, g.name);
    os << ":{\"value\":";
    json::write_number(os, g.value);
    os << ",\"max\":";
    json::write_number(os, g.max);
    os << '}';
  }
  os << "},\"histograms\":{";
  sep = {};
  for (const HistogramSample& h : histograms_) {
    sep.write(os);
    json::write_string(os, h.name);
    os << ":{\"scale\":\""
       << (h.spec.scale == HistogramSpec::Scale::kLinear ? "linear" : "log2")
       << "\",\"lo\":";
    json::write_number(os, h.spec.lo);
    os << ",\"hi\":";
    json::write_number(os, h.spec.hi);
    os << ",\"divisions\":";
    json::write_number(os, std::uint64_t(h.spec.divisions));
    os << ",\"count\":";
    json::write_number(os, h.count);
    os << ",\"underflow\":";
    json::write_number(os, h.underflow);
    os << ",\"overflow\":";
    json::write_number(os, h.overflow);
    os << ",\"sum\":";
    json::write_number(os, h.sum);
    os << ",\"min\":";
    json::write_number(os, h.min);
    os << ",\"max\":";
    json::write_number(os, h.max);
    os << ",\"p50\":";
    json::write_number(os, h.percentile(0.50));
    os << ",\"p90\":";
    json::write_number(os, h.percentile(0.90));
    os << ",\"p99\":";
    json::write_number(os, h.percentile(0.99));
    os << ",\"buckets\":[";
    json::Separator bsep;
    for (const std::uint64_t b : h.buckets) {
      bsep.write(os);
      json::write_number(os, b);
    }
    os << "]}";
  }
  os << "}}";
}

// ---- Registry -----------------------------------------------------------

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.counters_.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters_.push_back({name, c.value()});
  }
  snap.gauges_.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges_.push_back({name, g.value(), g.max()});
  }
  snap.histograms_.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms_.push_back({name, h.spec(), h.count(), h.underflow(), h.overflow(),
                                h.sum(), h.min(), h.max(), h.buckets()});
  }
  return snap;
}

}  // namespace imrm::obs
