// Sharded conservative-window execution of multi-domain simulations
// (ISSUE 5).
//
// The campus scenarios partition naturally by cell: every intra-cell event
// (arrivals, departures, local admission) touches one cell's state only,
// while cross-cell traffic (handoff signaling, max-min ADVERTISE/UPDATE,
// admission probes) rides the corridor backbone and therefore pays at least
// one control-plane hop of latency. ShardedRunner exploits that structure:
// each *domain* (one cell, or one protocol segment) owns a private Simulator,
// event queue, and whatever per-domain state the experiment hangs off it, and
// K worker threads execute disjoint domain subsets in lockstep time windows
// of width `window` — the classic conservative PDES scheme, with the minimum
// cross-shard hop latency as the lookahead bound.
//
// Protocol per round:
//  1. all domains run run_until(T + window), where T is the earliest pending
//     event time across every domain (idle domains skip ahead for free);
//  2. barrier: cross-domain messages posted during the round are gathered
//     from per-source outboxes and injected into their destination queues.
// A message posted while a domain executes an event at time t is delivered
// at t + latency with latency >= window, hence strictly after the round's
// window end: no domain can ever receive a message into its past, for any
// worker count.
//
// Determinism across worker counts is a contract, not an accident:
//  * the domain partition is fixed by the scenario (one cell = one domain);
//    workers are only an execution vehicle, so changing K never changes
//    which messages are "remote";
//  * every cross-domain message goes through the outbox/barrier path — even
//    when source and destination happen to run on the same worker — so the
//    delivery schedule is identical at K = 1 and K = 8;
//  * at each barrier, messages are injected per destination in the canonical
//    order (deliver time, source domain, per-source serial), all of which
//    are partition-invariant; FIFO sequence numbers in the destination queue
//    then break equal-time ties identically for any K.
// tests/sharded_runner_test.cc and the shard-labeled campus determinism
// suite assert byte-identical metrics at K in {1, 2, 4, 8}.
#pragma once

#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fault/transport.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/tracer.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace imrm::sim {

class ShardedRunner {
 public:
  /// Chrome-trace pid claimed for the wall-clock shard lanes; pid 1 stays
  /// the simulated-time process (see obs::TraceRecord::pid).
  static constexpr std::uint32_t kShardLanePid = 2;

  struct Config {
    /// Number of simulation domains (cells / protocol segments). Fixed by
    /// the scenario; determinism is per-domain, not per-worker.
    std::size_t domains = 1;
    /// Worker threads executing domains. 0 selects hardware concurrency;
    /// clamped to `domains`. 1 runs inline with no thread pool.
    std::size_t workers = 1;
    /// Conservative window width; must be <= the smallest latency ever
    /// passed to post(). For the campus this is the corridor hop latency.
    Duration window = Duration::millis(1.0);
    /// Optional wall-clock attribution (ISSUE 7). When set and enabled, the
    /// runner keeps per-worker busy/barrier-wait/idle lanes, straggler
    /// counts, and window/messages-per-barrier histograms; collect them with
    /// export_profile(). Profiling only reads clocks — event execution and
    /// the injection schedule are untouched, so metrics stay byte-identical.
    obs::Profiler* profiler = nullptr;
    /// Optional wall-clock trace lanes: per-worker busy spans plus barrier
    /// exchange spans on pid kShardLanePid (tid = worker; tid = worker count
    /// is the coordinator's barrier lane). Records are coordinator-emitted
    /// between rounds, honoring the tracer's single-writer discipline.
    /// Requires `profiler` to be set and enabled.
    obs::Tracer* tracer = nullptr;
    /// Optional stderr heartbeat, polled once per lockstep round.
    obs::ProgressMeter* progress = nullptr;
  };

  struct Stats {
    std::uint64_t windows = 0;            ///< lockstep rounds executed
    std::uint64_t boundary_messages = 0;  ///< cross-domain messages delivered
  };

  explicit ShardedRunner(const Config& config);
  ~ShardedRunner();

  ShardedRunner(const ShardedRunner&) = delete;
  ShardedRunner& operator=(const ShardedRunner&) = delete;

  [[nodiscard]] std::size_t domain_count() const { return sims_.size(); }
  [[nodiscard]] Simulator& domain(std::size_t d) { return *sims_[d]; }
  [[nodiscard]] const Simulator& domain(std::size_t d) const { return *sims_[d]; }

  /// The boundary transport owned by domain `from`: a fault::Transport whose
  /// Channel operand names the *destination domain*. Protocol code written
  /// against Transport (max-min, signaling) shards without modification —
  /// hand each domain's protocol instance its domain's transport.
  [[nodiscard]] fault::Transport& transport(std::size_t from) {
    return *transports_[from];
  }

  /// Posts a cross-domain message: `deliver` runs on domain `to`'s simulator
  /// `latency` after domain `from`'s current time. `latency` must be >= the
  /// configured window (asserted) — that bound is what lets whole windows
  /// run without intermediate synchronization. Always buffered through the
  /// barrier exchange, never scheduled directly, even for from == to; see
  /// the determinism contract above.
  void post(std::size_t from, std::size_t to, Duration latency,
            EventQueue::Callback deliver);

  /// Runs every domain to `horizon` in lockstep windows. Returns the total
  /// number of events fired across all domains during this call. May be
  /// called repeatedly with increasing horizons.
  std::uint64_t run_until(SimTime horizon);

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Sum of events fired across all domains (lifetime).
  [[nodiscard]] std::uint64_t events_fired() const;

  /// Copies the sharded-execution accounting (per-lane busy/barrier/idle,
  /// straggler counts, barrier totals, window histograms) into `out`. A
  /// no-op when the runner never ran with profiling enabled, so `out`
  /// stays empty and the run report carries no profile block.
  void export_profile(obs::ProfileSnapshot& out) const;

 private:
  struct Envelope {
    SimTime deliver_time;
    std::size_t to = 0;
    EventQueue::Callback callback;
  };

  class BoundaryTransport final : public fault::Transport {
   public:
    BoundaryTransport(ShardedRunner& runner, std::size_t from)
        : runner_(&runner), from_(from) {}
    void send(fault::Channel channel, Duration latency,
              EventQueue::Callback deliver) override {
      runner_->post(from_, std::size_t(channel), latency, std::move(deliver));
    }

   private:
    ShardedRunner* runner_;
    std::size_t from_;
  };

  void execute_window(SimTime target);
  void run_domains(std::size_t worker, SimTime target);
  void exchange();
  void worker_loop(std::size_t worker);
  void arm_profiling();
  void account_round(std::uint64_t exchange_start_ns, std::uint64_t window_start_ns,
                     std::uint64_t window_end_ns, std::uint64_t injected);

  Config config_;
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<std::unique_ptr<BoundaryTransport>> transports_;
  // Per-source-domain outboxes: while a round runs, outbox[d] is written
  // only by the worker executing domain d, and the coordinator drains them
  // only between rounds (under the round barrier), so no per-message lock.
  std::vector<std::vector<Envelope>> outboxes_;
  // Barrier-exchange scratch, per destination; reused across rounds.
  std::vector<std::vector<Envelope>> inject_;
  Stats stats_;

  // Worker pool (only started when min(workers, domains) > 1). Contiguous
  // block assignment: worker w owns domains [w * D / W, (w + 1) * D / W).
  std::size_t worker_count_ = 1;
  std::vector<std::thread> pool_;
  std::mutex mutex_;
  std::condition_variable round_cv_;
  std::condition_variable done_cv_;
  std::uint64_t round_ = 0;    // round generation; bump wakes workers
  std::size_t running_ = 0;    // workers still executing the current round
  SimTime round_target_;       // guarded by mutex_
  bool shutdown_ = false;

  // ---- wall-clock profiling (ISSUE 7) -----------------------------------
  // profile_active_ is latched at the top of run_until, before any round is
  // dispatched; workers observe it through the round barrier's mutex, so no
  // extra synchronization is needed. busy_scratch_[w] is written only by
  // worker w during a round and read by the coordinator after the done_cv_
  // wait — same single-writer discipline as the outboxes.
  bool profile_active_ = false;
  std::uint64_t wall_epoch_ns_ = 0;  // first profiled run_until; trace time base
  std::vector<obs::ShardLaneSample> lanes_;
  // One busy-time slot per worker, padded to a cache line: adjacent workers
  // write their slots every window, and packed u64s would false-share.
  struct alignas(64) BusySlot {
    std::uint64_t ns = 0;
  };
  std::vector<BusySlot> busy_scratch_;
  // Window wall lengths: 1 us .. ~18 min (2^40 ns), 2 sub-buckets/octave.
  obs::Histogram window_hist_{obs::HistogramSpec::log2(1024.0, 1024.0 * 1073741824.0, 2)};
  // Messages injected per barrier; zero-message barriers land in underflow.
  obs::Histogram messages_hist_{obs::HistogramSpec::log2(1.0, 1048576.0, 2)};
  obs::PhaseId ph_exchange_ = obs::kInvalidPhase;
  obs::PhaseId ph_window_ = obs::kInvalidPhase;
  obs::NameId tr_busy_ = obs::kInvalidName;
  obs::NameId tr_barrier_ = obs::kInvalidName;
  bool lanes_declared_ = false;
  int last_straggler_ = -1;
  /// Windows executed while profiling was active (== stats_.windows when
  /// profiling covered the whole run); the profile's barrier count, so the
  /// straggler tally always sums to it.
  std::uint64_t profiled_windows_ = 0;
};

}  // namespace imrm::sim
