
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_admission.cc" "bench/CMakeFiles/bench_table2_admission.dir/bench_table2_admission.cc.o" "gcc" "bench/CMakeFiles/bench_table2_admission.dir/bench_table2_admission.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qos/CMakeFiles/imrm_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/imrm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/imrm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
