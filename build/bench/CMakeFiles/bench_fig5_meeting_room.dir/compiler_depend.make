# Empty compiler generated dependencies file for bench_fig5_meeting_room.
# This may be replaced when dependencies are built.
