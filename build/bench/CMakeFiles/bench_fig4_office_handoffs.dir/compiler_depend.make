# Empty compiler generated dependencies file for bench_fig4_office_handoffs.
# This may be replaced when dependencies are built.
