# Empty dependencies file for imrm_prediction.
# This may be replaced when dependencies are built.
