// Dual token-bucket shaper (ISSUE 9 tentpole, data plane): conformance
// classification must be conservation-exact — every offered packet is
// exactly one of BG / WC / non-conforming, in packets and bits, per flow
// and in total — the enforced rate must actually bound what passes, and a
// renegotiation (set_shape) must never manufacture a windfall burst.
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "qos/packet_sim.h"
#include "qos/shaper.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace imrm::qos {
namespace {

using sim::SimTime;

constexpr Bits kL = 4000.0;  // 500-byte packets

Packet make_packet(FlowId flow, sim::Simulator& simulator, Bits size = kL) {
  Packet p;
  p.flow = flow;
  p.size = size;
  p.created = simulator.now();
  return p;
}

void expect_conserved(const DualTokenBucketShaper::Counters& c) {
  EXPECT_EQ(c.offered_packets, c.bg_packets + c.wc_packets + c.nonconforming_packets);
  EXPECT_DOUBLE_EQ(c.offered_bits, c.bg_bits + c.wc_bits + c.nonconforming_bits);
}

TEST(DualTokenBucketShaper, ClassifiesBgBeforeWc) {
  sim::Simulator simulator;
  std::vector<Packet> passed;
  DualTokenBucketShaper shaper(simulator, [&](Packet p) { passed.push_back(p); });
  // BG bucket holds exactly 2 packets, WC exactly 1; no refill at t=0.
  shaper.add_flow(0, {kbps(32), kbps(64), 2 * kL, 1 * kL});

  for (int i = 0; i < 4; ++i) shaper.offer(make_packet(0, simulator));
  const auto& c = shaper.counters(0);
  EXPECT_EQ(c.bg_packets, 2u);
  EXPECT_EQ(c.wc_packets, 1u);
  EXPECT_EQ(c.nonconforming_packets, 1u);
  EXPECT_EQ(passed.size(), 3u);  // the non-conforming packet was policed
  expect_conserved(c);
  EXPECT_DOUBLE_EQ(shaper.enforced_rate(0), kbps(96));
}

TEST(DualTokenBucketShaper, ConservationHoldsUnderRandomOffered) {
  // Property sweep: randomized sources, several flows, refills interleaved
  // with classification — conservation must hold per flow and in total at
  // the end (and the totals must equal the per-flow sums).
  sim::Simulator simulator;
  std::uint64_t forwarded = 0;
  DualTokenBucketShaper shaper(simulator, [&](Packet) { ++forwarded; });
  const std::vector<BitsPerSecond> guaranteed{kbps(16), kbps(48), kbps(96)};
  std::vector<std::unique_ptr<TokenBucketSource>> sources;
  for (FlowId flow = 0; flow < guaranteed.size(); ++flow) {
    shaper.add_flow(flow, {guaranteed[flow], kbps(8), 2 * kL, 2 * kL});
    TokenBucketSource::Config config;
    config.flow = flow;
    config.sigma = 4 * kL;
    config.rho = 2.0 * guaranteed[flow];  // oversubscribed: drops guaranteed
    config.packet_size = kL;
    config.greedy = flow % 2 == 0;
    sources.push_back(std::make_unique<TokenBucketSource>(
        simulator, config, sim::Rng(1000 + flow),
        [&](Packet p) { shaper.offer(std::move(p)); }));
    sources.back()->start(SimTime::seconds(30));
  }
  simulator.run();

  DualTokenBucketShaper::Counters sum;
  for (FlowId flow = 0; flow < guaranteed.size(); ++flow) {
    SCOPED_TRACE(flow);
    const auto& c = shaper.counters(flow);
    EXPECT_GT(c.offered_packets, 50u);
    EXPECT_GT(c.nonconforming_packets, 0u) << "2x oversubscription never dropped";
    expect_conserved(c);
    sum.offered_packets += c.offered_packets;
    sum.bg_packets += c.bg_packets;
    sum.wc_packets += c.wc_packets;
    sum.nonconforming_packets += c.nonconforming_packets;
    sum.offered_bits += c.offered_bits;
  }
  const auto& t = shaper.totals();
  expect_conserved(t);
  EXPECT_EQ(t.offered_packets, sum.offered_packets);
  EXPECT_EQ(t.bg_packets, sum.bg_packets);
  EXPECT_EQ(t.wc_packets, sum.wc_packets);
  EXPECT_EQ(t.nonconforming_packets, sum.nonconforming_packets);
  EXPECT_DOUBLE_EQ(t.offered_bits, sum.offered_bits);
  EXPECT_EQ(forwarded, t.bg_packets + t.wc_packets);
}

TEST(DualTokenBucketShaper, EnforcedRateBoundsConformingBits) {
  // A greedy source at 4x the enforced rate: what passes the shaper over T
  // seconds is at most enforced * T plus one burst of each bucket.
  sim::Simulator simulator;
  DualTokenBucketShaper shaper(simulator, nullptr);
  const BitsPerSecond g = kbps(32), e = kbps(32);
  const Bits bg_depth = 2 * kL, wc_depth = 2 * kL;
  shaper.add_flow(0, {g, e, bg_depth, wc_depth});

  TokenBucketSource::Config config;
  config.flow = 0;
  config.sigma = 8 * kL;
  config.rho = 4.0 * (g + e);
  config.packet_size = kL;
  TokenBucketSource source(simulator, config, sim::Rng(7),
                           [&](Packet p) { shaper.offer(std::move(p)); });
  const double kSeconds = 60.0;
  source.start(SimTime::seconds(kSeconds));
  simulator.run();

  const auto& c = shaper.counters(0);
  expect_conserved(c);
  const Bits conforming = c.bg_bits + c.wc_bits;
  EXPECT_LE(conforming, (g + e) * kSeconds + bg_depth + wc_depth + 1e-6);
  // And the shaper is not vacuously strict: it passes at least the rate
  // itself (the source offers far more than enough).
  EXPECT_GE(conforming, (g + e) * kSeconds * 0.95);
}

TEST(DualTokenBucketShaper, SetShapeGrantsNoWindfallBurst) {
  // A flow idles for a long time under a huge excess rate, then gets
  // renegotiated down. Tokens accrued under the old rates are clamped to
  // the bucket depths: the very next burst conforms to at most
  // bg_depth + wc_depth bits, not "old rate x idle time".
  sim::Simulator simulator;
  DualTokenBucketShaper shaper(simulator, nullptr);
  shaper.add_flow(0, {kbps(32), kbps(1024), 2 * kL, 2 * kL});

  simulator.at(SimTime::seconds(100), [&] {
    shaper.set_shape(0, kbps(32), kbps(8));
    for (int i = 0; i < 10; ++i) shaper.offer(make_packet(0, simulator));
  });
  simulator.run();

  const auto& c = shaper.counters(0);
  expect_conserved(c);
  // Depths admit 2 BG + 2 WC packets; the other 6 are non-conforming.
  EXPECT_EQ(c.bg_packets, 2u);
  EXPECT_EQ(c.wc_packets, 2u);
  EXPECT_EQ(c.nonconforming_packets, 6u);
  EXPECT_DOUBLE_EQ(shaper.enforced_rate(0), kbps(40));
}

TEST(DualTokenBucketShaper, ShrunkExcessStopsWcTraffic) {
  // After renegotiating the excess to zero, sustained traffic above the
  // guaranteed rate becomes non-conforming once the residual WC credit is
  // spent — the grant is enforced, not advisory.
  sim::Simulator simulator;
  DualTokenBucketShaper shaper(simulator, nullptr);
  const BitsPerSecond g = kbps(32);
  shaper.add_flow(0, {g, kbps(96), kL, kL});

  // Phase 1: both buckets live; phase 2 (after the cut): only BG refills.
  simulator.at(SimTime::seconds(10), [&] { shaper.set_shape(0, g, 0.0); });
  const double kStop = 70.0;
  // 12 packets/s = 48 kbps offered — above the 32 kbps left after the cut.
  for (double t = 0.0; t < kStop; t += 1.0 / 12.0) {
    simulator.at(SimTime::seconds(t), [&] { shaper.offer(make_packet(0, simulator)); });
  }
  simulator.run();

  const auto& c = shaper.counters(0);
  expect_conserved(c);
  EXPECT_GT(c.nonconforming_packets, 0u);
  // Steady state after the cut: conforming bits accrue at ~g; over the last
  // 60 s that is 60 * 32000 bits = 480 packets of budget. Allow the initial
  // burst credit and the pre-cut phase on top, but the total conforming
  // bits must stay well below the offered rate integrated over the run.
  const Bits conforming = c.bg_bits + c.wc_bits;
  const Bits pre_cut_budget = (g + kbps(96)) * 10.0 + 2 * kL;
  const Bits post_cut_budget = g * (kStop - 10.0) + kL;
  EXPECT_LE(conforming, pre_cut_budget + post_cut_budget + 1e-6);
  EXPECT_DOUBLE_EQ(shaper.enforced_rate(0), g);
}

TEST(DualTokenBucketShaper, UnregisteredFlowReadsAsEmpty) {
  sim::Simulator simulator;
  DualTokenBucketShaper shaper(simulator, nullptr);
  EXPECT_FALSE(shaper.has(3));
  EXPECT_EQ(shaper.counters(3).offered_packets, 0u);
  EXPECT_DOUBLE_EQ(shaper.enforced_rate(3), 0.0);
}

}  // namespace
}  // namespace imrm::qos
