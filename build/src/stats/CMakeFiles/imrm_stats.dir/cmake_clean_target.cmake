file(REMOVE_RECURSE
  "libimrm_stats.a"
)
