// Movement models that drive portables through the cell map.
//
// MarkovMover implements the substitution documented in DESIGN.md for the
// paper's Spring-1996 hand measurements: a per-portable second-order Markov
// walk whose (previous, current) -> next transition weights are calibrated
// to reproduce the published handoff fractions of Section 7.1. Dwell times
// in each cell are exponential.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "mobility/manager.h"
#include "sim/random.h"

namespace imrm::mobility {

/// Transition table keyed on (previous cell, current cell); an entry with
/// previous == CellId::invalid() serves as the first-order fallback used
/// when no second-order entry matches (e.g. for a freshly placed portable).
class TransitionTable {
 public:
  struct Choice {
    CellId next;
    double weight;
  };

  void set(CellId previous, CellId current, std::vector<Choice> choices);
  void set_default(CellId current, std::vector<Choice> choices) {
    set(CellId::invalid(), current, std::move(choices));
  }

  /// Samples the next cell; falls back to a uniform choice among neighbors
  /// when neither a second- nor first-order entry exists.
  [[nodiscard]] CellId sample(const CellMap& map, CellId previous, CellId current,
                              sim::Rng& rng) const;

  [[nodiscard]] bool has_entry(CellId previous, CellId current) const;

 private:
  std::map<std::pair<CellId, CellId>, std::vector<Choice>> table_;
};

/// Drives one portable: waits an exponential dwell time, samples a next cell
/// from the transition table, moves, repeats, until the horizon.
class MarkovMover {
 public:
  struct Config {
    sim::Duration mean_dwell = sim::Duration::minutes(5.0);
    sim::SimTime horizon = sim::SimTime::hours(8.0);
  };

  MarkovMover(MobilityManager& manager, TransitionTable table, Config config,
              sim::Rng rng)
      : manager_(&manager), table_(std::move(table)), config_(config),
        rng_(std::move(rng)) {}

  /// Starts the walk for `portable` (schedules the first move).
  void start(PortableId portable);

  [[nodiscard]] std::size_t moves_made() const { return moves_; }

 private:
  void schedule_next(PortableId portable);

  MobilityManager* manager_;
  TransitionTable table_;
  Config config_;
  sim::Rng rng_;
  std::size_t moves_ = 0;
};

/// Builds the transition table calibrated to the Section 7.1 measurements:
/// from corridor D (having come from C), the faculty member enters office A
/// with probability 94/127, heads toward B (via E) with 20/127, and passes
/// to F or G with 13/127; students: 12/218 to A, 173/218 toward B, 31/218 to
/// F/G; other users: 39/1384 to A, 17/1384 toward B, rest to F/G.
struct Fig4Weights {
  double to_a, toward_b, to_fg;
};
[[nodiscard]] TransitionTable fig4_transition_table(const CellMap& map,
                                                    const Fig4Weights& weights);

[[nodiscard]] inline Fig4Weights fig4_faculty_weights() { return {94.0, 20.0, 13.0}; }
[[nodiscard]] inline Fig4Weights fig4_student_weights() { return {12.0, 173.0, 31.0}; }
[[nodiscard]] inline Fig4Weights fig4_other_weights() { return {39.0, 17.0, 1328.0}; }

}  // namespace imrm::mobility
