file(REMOVE_RECURSE
  "CMakeFiles/imrm_sim.dir/event_queue.cc.o"
  "CMakeFiles/imrm_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/imrm_sim.dir/random.cc.o"
  "CMakeFiles/imrm_sim.dir/random.cc.o.d"
  "CMakeFiles/imrm_sim.dir/simulator.cc.o"
  "CMakeFiles/imrm_sim.dir/simulator.cc.o.d"
  "libimrm_sim.a"
  "libimrm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imrm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
