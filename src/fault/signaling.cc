#include "fault/signaling.h"

#include "obs/metrics.h"

namespace imrm::fault {

void UnreliableCall::bind_metrics(obs::Registry* registry) {
  if (!registry) {
    probes_counter_ = retries_counter_ = timeouts_counter_ = nullptr;
    return;
  }
  probes_counter_ = &registry->counter("fault.probe.attempts");
  retries_counter_ = &registry->counter("fault.probe.retries");
  timeouts_counter_ = &registry->counter("fault.probe.timeouts");
}

bool UnreliableCall::attempt() {
  ++probes_;
  if (probes_counter_) probes_counter_->add();
  if (!config_.enabled()) return true;
  const int budget = config_.max_attempts > 0 ? config_.max_attempts : 1;
  for (int i = 0; i < budget; ++i) {
    if (i > 0) {
      ++retries_;
      if (retries_counter_) retries_counter_->add();
    }
    const bool request_lost = request_loss_.lost(config_.model, rng_);
    const bool response_lost = response_loss_.lost(config_.model, rng_);
    if (!request_lost && !response_lost) return true;
  }
  ++timeouts_;
  if (timeouts_counter_) timeouts_counter_->add();
  return false;
}

}  // namespace imrm::fault
