# Empty dependencies file for meeting_room_day.
# This may be replaced when dependencies are built.
