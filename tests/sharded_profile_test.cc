// Sharded wall-clock attribution (ISSUE 7): the profiler's shard lanes,
// barrier accounting, and Chrome-trace wall lanes must observe the run
// without perturbing it — metrics stay byte-identical with profiling off,
// runtime-disabled, or fully enabled, and the wall data lands only in the
// quarantined profile block / pid-2 trace lanes.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "experiments/sharded_campus.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/tracer.h"
#include "sim/sharded_runner.h"

namespace imrm::experiments {
namespace {

ShardedCampusConfig small_config(std::size_t shards) {
  ShardedCampusConfig config;
  config.cells = 10;
  config.shards = shards;
  config.portables_per_cell = 5;
  config.horizon = sim::SimTime::minutes(20);
  config.seed = 42;
  return config;
}

std::string metrics_json(const ShardedCampusResult& result) {
  std::ostringstream os;
  result.metrics.write_json(os);
  return os.str();
}

TEST(ShardedProfile, MetricsByteIdenticalAcrossProfilingModes) {
  const ShardedCampusResult clean = run_sharded_campus(small_config(2));
  EXPECT_TRUE(clean.profile.empty());
  const std::string golden = metrics_json(clean);

  // Runtime-disabled profiler: config carries the pointer, but nothing is
  // armed — no profile block, identical metrics.
  obs::Profiler off;
  ShardedCampusConfig off_config = small_config(2);
  off_config.profiler = &off;
  const ShardedCampusResult disabled = run_sharded_campus(off_config);
  EXPECT_TRUE(disabled.profile.empty());
  EXPECT_EQ(metrics_json(disabled), golden);

  obs::Profiler on;
  on.set_enabled(true);
  ShardedCampusConfig on_config = small_config(2);
  on_config.profiler = &on;
  const ShardedCampusResult profiled = run_sharded_campus(on_config);
  EXPECT_EQ(metrics_json(profiled), golden);
  if (obs::Profiler::compiled_in()) {
    EXPECT_FALSE(profiled.profile.empty());
  } else {
    EXPECT_TRUE(profiled.profile.empty());
  }
}

#if IMRM_PROFILING

TEST(ShardedProfile, LaneAccountingIsConsistent) {
  obs::Profiler profiler;
  profiler.set_enabled(true);
  ShardedCampusConfig config = small_config(2);
  config.profiler = &profiler;
  const ShardedCampusResult r = run_sharded_campus(config);
  const obs::ProfileSnapshot& p = r.profile;

  // One lane per worker; profiling covered the whole run, so the profile's
  // window count equals the runner's, the dispatch (barrier) count is what
  // the straggler tally partitions, and batching actually engaged: many
  // windows rode each coordinator dispatch.
  ASSERT_EQ(p.shards.size(), 2u);
  EXPECT_EQ(p.windows, r.windows);
  EXPECT_LT(p.barriers, p.windows);
  EXPECT_GT(p.barriers, 0u);
  EXPECT_EQ(p.boundary_messages, r.boundary_messages);
  EXPECT_GT(p.boundary_bytes, p.boundary_messages);  // sizeof(Envelope) > 1
  std::uint64_t stragglers = 0;
  for (const obs::ShardLaneSample& lane : p.shards) {
    stragglers += lane.straggler_windows;
    EXPECT_GT(lane.busy_ns + lane.barrier_wait_ns + lane.idle_ns, 0u);
  }
  EXPECT_EQ(stragglers, p.barriers);
  // The ISSUE 10 satellite regression: every lane's busy + barrier_wait +
  // idle sums to the profiled wall exactly. Before the busy-accumulation
  // fix, a burst credited only its last sub-window as busy and the equality
  // failed by the remainder of the burst.
  ASSERT_GT(p.profiled_wall_ns, 0u);
  for (const obs::ShardLaneSample& lane : p.shards) {
    EXPECT_EQ(lane.busy_ns + lane.barrier_wait_ns + lane.idle_ns,
              p.profiled_wall_ns);
  }
  // Every lane spans the same wall interval per dispatch: busy +
  // barrier_wait always sums to the dispatch wall, identically across
  // lanes, and idle is charged to all lanes alike.
  EXPECT_EQ(p.shards[0].busy_ns + p.shards[0].barrier_wait_ns,
            p.shards[1].busy_ns + p.shards[1].barrier_wait_ns);
  EXPECT_EQ(p.shards[0].idle_ns, p.shards[1].idle_ns);
  // The window/messages histograms saw every sub-window; the batch
  // histogram and the exchange/window phases were recorded once per
  // dispatch.
  EXPECT_EQ(p.window_ns.count, p.windows);
  EXPECT_EQ(p.messages_per_barrier.count, p.windows);
  EXPECT_EQ(p.batch_windows.count, p.barriers);
  EXPECT_EQ(std::uint64_t(p.batch_windows.sum), p.windows);
  bool saw_window_phase = false;
  for (const obs::PhaseSample& phase : p.phases) {
    if (phase.name == "shard.window") {
      saw_window_phase = true;
      EXPECT_EQ(phase.calls, p.barriers);
    }
  }
  EXPECT_TRUE(saw_window_phase);
}

TEST(ShardedProfile, WallLanesLandOnShardPidOnly) {
  obs::Profiler profiler;
  profiler.set_enabled(true);
  obs::Tracer tracer(1 << 20);
  tracer.set_enabled(true);
  ShardedCampusConfig config = small_config(2);
  config.profiler = &profiler;
  config.tracer = &tracer;
  const ShardedCampusResult r = run_sharded_campus(config);
  ASSERT_EQ(tracer.dropped(), 0u);

  const std::size_t workers = 2;
  std::uint64_t busy_spans = 0;
  std::uint64_t barrier_spans = 0;
  tracer.records().for_each([&](const obs::TraceRecord& rec) {
    // The harness emits no simulated-time records, so everything here is a
    // coordinator-written wall span on the shard-lane pid.
    EXPECT_EQ(rec.pid, sim::ShardedRunner::kShardLanePid);
    EXPECT_EQ(rec.phase, 'X');
    EXPECT_LE(rec.track, workers);
    if (rec.track == workers) {
      EXPECT_EQ(tracer.name_of(rec.name), "shard.barrier");
      ++barrier_spans;
    } else {
      EXPECT_EQ(tracer.name_of(rec.name), "shard.busy");
      ++busy_spans;
    }
  });
  // One coordinator barrier span and one busy span per worker per dispatch
  // (not per window — a burst's sub-windows share one set of spans).
  EXPECT_EQ(barrier_spans, r.profile.barriers);
  EXPECT_EQ(busy_spans, r.profile.barriers * workers);
  EXPECT_LT(barrier_spans, r.windows);

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("imrm-shard-lanes"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
}

TEST(ShardedProfile, TracerWithoutProfilerRecordsNothing) {
  // Wall lanes require the profiler: --trace-out without --profile must
  // yield byte-identical trace output to an untraced-by-the-runner run.
  obs::Tracer tracer;
  tracer.set_enabled(true);
  ShardedCampusConfig config = small_config(2);
  config.tracer = &tracer;
  const ShardedCampusResult r = run_sharded_campus(config);
  EXPECT_GT(r.events_fired, 0u);
  EXPECT_EQ(tracer.records().size(), 0u);

  std::ostringstream with_runner, fresh;
  tracer.write_chrome_trace(with_runner);
  obs::Tracer untouched;
  untouched.write_chrome_trace(fresh);
  EXPECT_EQ(with_runner.str(), fresh.str());
}

TEST(ShardedProfile, ProgressHeartbeatReportsStraggler) {
  obs::Profiler profiler;
  profiler.set_enabled(true);
  std::ostringstream heartbeat;
  obs::ProgressMeter progress(1e-9, &heartbeat);  // emit on every poll
  ShardedCampusConfig config = small_config(2);
  config.profiler = &profiler;
  config.progress = &progress;
  (void)run_sharded_campus(config);
  const std::string lines = heartbeat.str();
  EXPECT_NE(lines.find("progress:"), std::string::npos);
  EXPECT_NE(lines.find("% sim-time"), std::string::npos);
  EXPECT_NE(lines.find("straggler shard"), std::string::npos);
}

TEST(ShardedProfile, SingleShardStillProfiles) {
  obs::Profiler profiler;
  profiler.set_enabled(true);
  ShardedCampusConfig config = small_config(1);
  config.profiler = &profiler;
  const ShardedCampusResult r = run_sharded_campus(config);
  ASSERT_EQ(r.profile.shards.size(), 1u);
  EXPECT_EQ(r.profile.shards[0].straggler_windows, r.profile.barriers);
  EXPECT_GT(r.profile.shards[0].busy_ns, 0u);
}

#endif  // IMRM_PROFILING

}  // namespace
}  // namespace imrm::experiments
