file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_meeting_room.dir/bench_fig5_meeting_room.cc.o"
  "CMakeFiles/bench_fig5_meeting_room.dir/bench_fig5_meeting_room.cc.o.d"
  "bench_fig5_meeting_room"
  "bench_fig5_meeting_room.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_meeting_room.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
