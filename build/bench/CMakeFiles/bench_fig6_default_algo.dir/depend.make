# Empty dependencies file for bench_fig6_default_algo.
# This may be replaced when dependencies are built.
