file(REMOVE_RECURSE
  "CMakeFiles/probabilistic_montecarlo_test.dir/probabilistic_montecarlo_test.cc.o"
  "CMakeFiles/probabilistic_montecarlo_test.dir/probabilistic_montecarlo_test.cc.o.d"
  "probabilistic_montecarlo_test"
  "probabilistic_montecarlo_test.pdb"
  "probabilistic_montecarlo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probabilistic_montecarlo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
