// Tests for the checkpoint container and primitive codecs (ISSUE 4): writer/
// reader round-trips must be bit-exact (doubles travel as raw IEEE-754 bits),
// the container must reject malformed bytes loudly, and registry restore must
// upsert into live instruments without disturbing cached addresses.
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "sim/checkpoint.h"
#include "sim/time.h"

namespace imrm::sim {
namespace {

std::string to_json(const obs::Snapshot& snapshot) {
  std::ostringstream os;
  snapshot.write_json(os);
  return os.str();
}

std::uint64_t bits_of(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

TEST(CheckpointCodec, IntegersRoundTrip) {
  CheckpointWriter w;
  w.u8(0);
  w.u8(0xFF);
  w.u32(0);
  w.u32(0xDEADBEEF);
  w.u64(0);
  w.u64(0xFEEDFACECAFEBEEFull);
  w.boolean(true);
  w.boolean(false);
  const std::vector<std::uint8_t> bytes = w.take();

  CheckpointReader r(bytes);
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_EQ(r.u8(), 0xFFu);
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_EQ(r.u64(), 0xFEEDFACECAFEBEEFull);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(CheckpointCodec, DoublesRoundTripBitExactly) {
  // Byte-identical restored metrics depend on doubles surviving exactly,
  // including the values textual formatting mangles.
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           6.02214076e23,
                           -5e-324,  // smallest denormal
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()};
  CheckpointWriter w;
  for (const double v : values) w.f64(v);
  const std::vector<std::uint8_t> bytes = w.take();

  CheckpointReader r(bytes);
  for (const double v : values) EXPECT_EQ(bits_of(r.f64()), bits_of(v));
  EXPECT_TRUE(r.done());
}

TEST(CheckpointCodec, StringsAndTimesRoundTrip) {
  CheckpointWriter w;
  w.str("");
  w.str("experiment.campus");
  w.str(std::string("\0binary\xff", 8));
  w.time(SimTime::minutes(90.0));
  const std::vector<std::uint8_t> bytes = w.take();

  CheckpointReader r(bytes);
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "experiment.campus");
  EXPECT_EQ(r.str(), std::string("\0binary\xff", 8));
  EXPECT_EQ(r.time().to_seconds(), SimTime::minutes(90.0).to_seconds());
  EXPECT_TRUE(r.done());
}

TEST(CheckpointCodec, RngStateRoundTripContinuesIdentically) {
  std::mt19937_64 engine(12345);
  for (int i = 0; i < 1000; ++i) (void)engine();  // advance off the seed state

  CheckpointWriter w;
  w.rng(engine);
  const std::vector<std::uint8_t> bytes = w.take();

  std::mt19937_64 restored;
  CheckpointReader r(bytes);
  r.rng(restored);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(restored(), engine());
}

TEST(CheckpointCodec, MalformedRngStateThrows) {
  CheckpointWriter w;
  w.str("not a generator state");
  const std::vector<std::uint8_t> bytes = w.take();
  CheckpointReader r(bytes);
  std::mt19937_64 engine;
  EXPECT_THROW(r.rng(engine), CheckpointError);
}

TEST(CheckpointCodec, TruncatedReadThrows) {
  CheckpointWriter w;
  w.u32(7);
  const std::vector<std::uint8_t> bytes = w.take();
  CheckpointReader r(bytes);
  EXPECT_THROW(r.u64(), CheckpointError);  // only 4 bytes available
}

TEST(CheckpointContainer, SectionsRoundTripThroughBytes) {
  Checkpoint ckpt;
  CheckpointWriter core;
  core.time(SimTime::seconds(42.0));
  core.u64(1234);
  ckpt.set("sim.core", std::move(core));
  CheckpointWriter harness;
  harness.str("campus");
  ckpt.set("experiment.campus", std::move(harness));
  ASSERT_EQ(ckpt.section_count(), 2u);

  const Checkpoint restored = Checkpoint::deserialize(ckpt.serialize());
  EXPECT_EQ(restored.section_count(), 2u);
  EXPECT_TRUE(restored.has("sim.core"));
  EXPECT_TRUE(restored.has("experiment.campus"));
  EXPECT_FALSE(restored.has("maxmin.protocol"));

  CheckpointReader r = restored.reader("sim.core");
  EXPECT_EQ(r.time().to_seconds(), 42.0);
  EXPECT_EQ(r.u64(), 1234u);
  EXPECT_TRUE(r.done());
}

TEST(CheckpointContainer, MissingSectionThrows) {
  const Checkpoint ckpt;
  EXPECT_THROW((void)ckpt.reader("sim.core"), CheckpointError);
}

TEST(CheckpointContainer, BadMagicThrows) {
  Checkpoint ckpt;
  std::vector<std::uint8_t> bytes = ckpt.serialize();
  bytes[0] = 'X';
  EXPECT_THROW((void)Checkpoint::deserialize(bytes), CheckpointError);
}

TEST(CheckpointContainer, UnsupportedVersionThrows) {
  Checkpoint ckpt;
  std::vector<std::uint8_t> bytes = ckpt.serialize();
  bytes[8] = 99;  // version word follows the 8-byte magic
  EXPECT_THROW((void)Checkpoint::deserialize(bytes), CheckpointError);
}

TEST(CheckpointContainer, TruncatedAndTrailingBytesThrow) {
  Checkpoint ckpt;
  CheckpointWriter w;
  w.u64(7);
  ckpt.set("s", std::move(w));
  std::vector<std::uint8_t> bytes = ckpt.serialize();

  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 3);
  EXPECT_THROW((void)Checkpoint::deserialize(truncated), CheckpointError);

  std::vector<std::uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW((void)Checkpoint::deserialize(trailing), CheckpointError);
}

TEST(CheckpointContainer, FileRoundTrip) {
  Checkpoint ckpt;
  CheckpointWriter w;
  w.f64(1.0 / 7.0);
  ckpt.set("sim.core", std::move(w));
  const std::string path = testing::TempDir() + "/checkpoint_test.ckpt";
  ckpt.save_file(path);

  const Checkpoint loaded = Checkpoint::load_file(path);
  CheckpointReader r = loaded.reader("sim.core");
  EXPECT_EQ(bits_of(r.f64()), bits_of(1.0 / 7.0));
}

TEST(CheckpointContainer, LoadMissingFileThrows) {
  EXPECT_THROW((void)Checkpoint::load_file("/nonexistent/checkpoint.ckpt"),
               CheckpointError);
}

TEST(CheckpointRegistry, RestoredRegistrySnapshotsByteIdentically) {
  obs::Registry original;
  original.counter("campus.handoffs").add(17);
  original.gauge("sim.time_seconds").set(12.5);
  original.gauge("sim.time_seconds").set(9.0);  // max stays 12.5
  obs::HistogramSpec spec;
  spec.lo = 0.0;
  spec.hi = 10.0;
  spec.divisions = 10;
  obs::Histogram& h = original.histogram("resv.latency", spec);
  h.record(0.25);
  h.record(3.75);
  h.record(99.0);  // overflow
  h.record(-1.0);  // underflow

  CheckpointWriter w;
  save_registry(w, original);
  Checkpoint ckpt;
  ckpt.set("obs.registry", std::move(w));

  obs::Registry restored;
  CheckpointReader r = ckpt.reader("obs.registry");
  restore_registry(r, restored);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(to_json(restored.snapshot()), to_json(original.snapshot()));
}

TEST(CheckpointRegistry, RestorePreservesLiveInstrumentAddresses) {
  // Harness code caches instrument pointers via bind_metrics before the
  // restore runs; the upsert must mutate those same objects in place.
  obs::Registry registry;
  obs::Counter& counter = registry.counter("fault.probe.probes");
  counter.add(3);

  obs::Registry saved;
  saved.counter("fault.probe.probes").add(41);
  CheckpointWriter w;
  save_registry(w, saved);
  Checkpoint ckpt;
  ckpt.set("obs.registry", std::move(w));

  CheckpointReader r = ckpt.reader("obs.registry");
  restore_registry(r, registry);
  EXPECT_EQ(counter.value(), 41u);  // the cached reference saw the restore
  counter.add(1);
  EXPECT_EQ(registry.counter("fault.probe.probes").value(), 42u);
}

TEST(CheckpointRegistry, HistogramBucketCountMismatchThrows) {
  // A corrupted image whose serialized bucket array disagrees with its own
  // spec must fail loudly, never half-restore.
  CheckpointWriter w;
  w.u64(0);  // counters
  w.u64(0);  // gauges
  w.u64(1);  // histograms
  w.str("h");
  w.u8(0);     // linear
  w.f64(0.0);  // lo
  w.f64(8.0);  // hi
  w.u32(8);    // divisions -> 8 buckets expected
  w.u64(1);    // count
  w.u64(0);    // underflow
  w.u64(0);    // overflow
  w.f64(1.0);  // sum
  w.f64(1.0);  // min
  w.f64(1.0);  // max
  w.u64(3);    // bucket array length: wrong
  for (int i = 0; i < 3; ++i) w.u64(0);
  Checkpoint ckpt;
  ckpt.set("obs.registry", std::move(w));

  obs::Registry registry;
  CheckpointReader r = ckpt.reader("obs.registry");
  EXPECT_THROW(restore_registry(r, registry), CheckpointError);
}

}  // namespace
}  // namespace imrm::sim
