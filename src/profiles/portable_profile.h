// Portable profile (Table 1): for every (previous cell, current cell) pair,
// the aggregated history of the portable's last N_pP handoffs out of that
// state, used to predict the next cell.
//
// The aggregate is a sliding window: the profile server records each handoff
// as <previous, current, next>, keeps the most recent N_pP per (previous,
// current) state, and predicts the majority next-cell.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <utility>

#include "net/ids.h"
#include "sim/checkpoint.h"

namespace imrm::profiles {

using net::CellId;
using net::PortableId;

class PortableProfile {
 public:
  explicit PortableProfile(PortableId id, std::size_t window = 16)
      : id_(id), window_(window) {}

  /// Records a handoff: the portable moved to `next` while in `current`,
  /// having previously been in `previous`.
  void record(CellId previous, CellId current, CellId next);

  /// The next-predicted-cell field: majority vote over the window, or
  /// nullopt when the state was never observed.
  [[nodiscard]] std::optional<CellId> predict(CellId previous, CellId current) const;

  /// Number of observations stored for a state (for tests/inspection).
  [[nodiscard]] std::size_t observations(CellId previous, CellId current) const;

  [[nodiscard]] PortableId id() const { return id_; }
  [[nodiscard]] std::size_t window() const { return window_; }

  // --- checkpoint/restore (ISSUE 4): id, window, and the full sliding
  // history, keyed in std::map order (deterministic on both sides).
  void save_state(sim::CheckpointWriter& w) const;
  [[nodiscard]] static PortableProfile restore_state(sim::CheckpointReader& r);

 private:
  PortableId id_;
  std::size_t window_;
  std::map<std::pair<CellId, CellId>, std::deque<CellId>> history_;
};

}  // namespace imrm::profiles
