// Measurement-driven renegotiation (control plane of the adaptation loop).
//
// Section 5.1's contract is that a connection's grant lives in
// [b_min, b_max] and *adapts*: when the channel degrades the system
// renegotiates down (never below b_min), and when it heals the grant
// returns to what the max-min division would give on a clean cell. The
// AdaptationController closes that loop from measurements:
//
//   * Windowed estimators, not all-time averages. Every tick() it harvests
//     the LossyHop's per-flow window (LossyHop::take_window) and its own
//     delay-bound violation window from DelaySink deliveries. An all-time
//     loss rate can never re-trigger after a long clean history; a window
//     forgets.
//   * Minimum-sample guard. A window with fewer than min_samples offered
//     packets is evidence of nothing: it neither breaches nor cleans, and
//     the streak counters hold.
//   * Depth of breach, not instantaneous loss. One bad window is noise
//     (Gilbert–Elliott bursts routinely spike a single window); only
//     breach_windows consecutive breached windows move the target, and
//     only clean_windows consecutive clean ones restore it. This is what
//     keeps the controller from oscillating on a clean channel.
//   * Concave ramp, no step jumps. The *requested* b_max moves toward the
//     target geometrically — next = current + gain * (target - current) —
//     and snaps exactly onto the target once within tolerance, so after a
//     fault heals the request returns bit-exactly to the original b_max
//     and the max-min re-division reproduces the pre-fault fixed point.
//
// The controller renegotiates the requested *range* (shrinking b_max);
// actual grants come from the owner re-running the max-min excess
// division over the surviving headrooms. It draws no random numbers —
// every decision is a pure function of the measured windows.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "qos/flow_spec.h"
#include "qos/packet_sim.h"

namespace imrm::qos {

struct AdaptationConfig {
  /// Windows of evidence required before acting in either direction.
  std::uint32_t breach_windows = 2;  // consecutive breached windows -> down
  std::uint32_t clean_windows = 4;   // consecutive clean windows -> recover
  /// Fewest offered packets a window needs to count as evidence.
  std::uint64_t min_samples = LossyHop::kMinLossSamples;
  /// Per sustained breach, the target span above b_min shrinks to this
  /// fraction of itself (multiplicative decrease toward b_min).
  double down_scale = 0.5;
  /// Per tick, the requested b_max covers this fraction of the distance to
  /// the target (concave approach; 1.0 would be a step jump).
  double ramp_gain = 0.5;
  /// Snap the request exactly onto the target once the remaining distance
  /// falls below this fraction of the flow's full [b_min, b_max] span —
  /// required for bit-exact recovery of the pre-fault fixed point.
  double snap_tolerance = 0.02;
};

class AdaptationController {
 public:
  /// Asks the owner to renegotiate one flow's requested range. Returns
  /// whether the renegotiation was accepted (the owner then re-divides the
  /// excess and pushes new grants via on_granted / the shaper).
  using Renegotiate = std::function<bool(FlowId, BandwidthRange)>;

  /// Per-flow verdict for one harvested window.
  enum class WindowVerdict { kInsufficient, kClean, kBreached };

  /// Observer invoked once per flow per tick with the harvested window
  /// (for violation-window histograms and tracing).
  using WindowObserver =
      std::function<void(FlowId, const LossyHop::LossWindow&, WindowVerdict)>;

  AdaptationController(const AdaptationConfig& config, LossyHop& hop,
                       Renegotiate renegotiate)
      : config_(config), hop_(&hop), renegotiate_(std::move(renegotiate)) {}

  /// Registers a flow under control with its negotiated request and the
  /// grant the admission/max-min plane issued.
  void add_flow(FlowId flow, const QosRequest& request, BitsPerSecond granted);

  /// Records one delivered packet's end-to-end delay (wire this next to the
  /// DelaySink); delays above the flow's delay_bound count as violations in
  /// the current window.
  void on_delivered(FlowId flow, Seconds delay);

  /// The owner reports the flow's current grant (after any re-division).
  void on_granted(FlowId flow, BitsPerSecond granted);

  void set_window_observer(WindowObserver observer) {
    observer_ = std::move(observer);
  }

  /// Harvests every controlled flow's measurement window and applies the
  /// breach/clean streak logic and the ramp. Call at a fixed period (the
  /// window length is whatever cadence the caller chooses).
  void tick();

  // --- per-flow state, for metrics and tests ---
  [[nodiscard]] bool has(FlowId flow) const {
    return flow < flows_.size() && flows_[flow].controlled;
  }
  [[nodiscard]] BitsPerSecond granted(FlowId flow) const;
  /// The currently requested b_max (the ramp's position).
  [[nodiscard]] BitsPerSecond requested_max(FlowId flow) const;
  /// Where the ramp is heading (original b_max when healthy).
  [[nodiscard]] BitsPerSecond target_max(FlowId flow) const;

  // --- loop counters, for obs ---
  [[nodiscard]] std::uint64_t renegotiations_triggered() const {
    return renegotiations_triggered_;
  }
  [[nodiscard]] std::uint64_t renegotiations_accepted() const {
    return renegotiations_accepted_;
  }
  [[nodiscard]] std::uint64_t windows_breached() const { return windows_breached_; }
  [[nodiscard]] std::uint64_t windows_clean() const { return windows_clean_; }
  [[nodiscard]] std::uint64_t windows_insufficient() const {
    return windows_insufficient_;
  }

 private:
  struct FlowState {
    bool controlled = false;
    QosRequest request;            // original negotiated request
    BitsPerSecond granted = 0.0;   // current grant from the owner
    BitsPerSecond requested = 0.0; // ramped b_max currently requested
    BitsPerSecond target = 0.0;    // ramp destination
    std::uint32_t breach_streak = 0;
    std::uint32_t clean_streak = 0;
    // Current window's delay evidence (reset each tick).
    std::uint64_t window_delivered = 0;
    std::uint64_t window_delay_violations = 0;
  };

  void step_flow(FlowId flow, FlowState& state);

  AdaptationConfig config_;
  LossyHop* hop_;
  Renegotiate renegotiate_;
  WindowObserver observer_;
  std::vector<FlowState> flows_;  // dense, indexed by FlowId
  std::uint64_t renegotiations_triggered_ = 0;
  std::uint64_t renegotiations_accepted_ = 0;
  std::uint64_t windows_breached_ = 0;
  std::uint64_t windows_clean_ = 0;
  std::uint64_t windows_insufficient_ = 0;
};

}  // namespace imrm::qos
