// Strongly-typed identifiers for network and mobility entities.
//
// Using distinct types for node/link/cell/portable/connection ids turns a
// whole class of cross-wiring bugs into compile errors.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace imrm::net {

template <typename Tag>
class Id {
 public:
  using underlying = std::uint32_t;

  constexpr Id() = default;
  constexpr explicit Id(underlying v) : value_(v) {}

  [[nodiscard]] static constexpr Id invalid() {
    return Id{std::numeric_limits<underlying>::max()};
  }
  [[nodiscard]] constexpr bool is_valid() const { return *this != invalid(); }
  [[nodiscard]] constexpr underlying value() const { return value_; }

  constexpr auto operator<=>(const Id&) const = default;

 private:
  underlying value_ = std::numeric_limits<underlying>::max();
};

using NodeId = Id<struct NodeTag>;
using LinkId = Id<struct LinkTag>;
using CellId = Id<struct CellTag>;
using ZoneId = Id<struct ZoneTag>;
using PortableId = Id<struct PortableTag>;
using ConnectionId = Id<struct ConnectionTag>;

}  // namespace imrm::net

template <typename Tag>
struct std::hash<imrm::net::Id<Tag>> {
  std::size_t operator()(const imrm::net::Id<Tag>& id) const noexcept {
    return std::hash<typename imrm::net::Id<Tag>::underlying>{}(id.value());
  }
};
