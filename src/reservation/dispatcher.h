// The Section 6.4 summary as code: per-cell-class advance reservation
// dispatch.
//
// For every mobile portable with a connection, the dispatcher walks the
// paper's decision list:
//
//  1. next-predicted-cell from the portable profile  -> reserve there;
//  2. otherwise dispatch on the CURRENT cell's class:
//     office:   occupant of a neighboring office -> reserve in that office;
//               regular occupant of this office -> NO reservation anywhere;
//               otherwise aggregate history;
//     corridor: neighboring-office occupant -> reserve in that office;
//               otherwise aggregate history;
//     meeting room / cafeteria / default lounge: the per-portable decision
//               defers to the lounge policies (collective, handled by
//               MeetingRoomPolicy / CafeteriaPolicy / DefaultLoungePolicy,
//               which the dispatcher hosts and refreshes alongside);
//  3. nothing known -> the cell's B_dyn pool absorbs the eventual handoff
//     (the probabilistic algorithm covered by DefaultLoungePolicy).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "prediction/predictor.h"
#include "reservation/lounge_policy.h"
#include "reservation/policy.h"
#include "sim/flat_map.h"

namespace imrm::reservation {

class PolicyDispatcher final : public AdvanceReservationPolicy {
 public:
  struct Params {
    qos::BitsPerSecond per_user_bandwidth = qos::kbps(28);
    sim::Duration lounge_slot = sim::Duration::minutes(1);
  };

  /// `predictor` implements level 1 + 2; lounge cells get their collective
  /// policies instantiated automatically from the map's cell classes.
  /// Meeting-room calendars are read from the profile server.
  PolicyDispatcher(PolicyEnv env, const prediction::ThreeLevelPredictor& predictor,
                   const profiles::ProfileServer& server, Params params);

  [[nodiscard]] std::string name() const override { return "dispatcher"; }
  void refresh(sim::SimTime now) override;
  void on_handoff(const mobility::HandoffEvent& event) override;

  /// Where (if anywhere) the last refresh reserved for a portable — for
  /// tests and introspection.
  [[nodiscard]] std::optional<CellId> reserved_cell(PortableId portable) const;

  // Checkpoint (ISSUE 4): the last-reserved bookkeeping plus the hosted
  // lounge/meeting policies, chained in construction order (deterministic —
  // both sides instantiate them from the same cell map).
  void save_state(sim::CheckpointWriter& w) const override;
  void restore_state(sim::CheckpointReader& r) override;

 private:
  /// Per-portable decision (steps 1 and 2 for offices/corridors). Returns
  /// the target cell or nullopt (no portable-specific reservation).
  [[nodiscard]] std::optional<CellId> decide(PortableId portable, CellId current) const;

  const prediction::ThreeLevelPredictor* predictor_;
  Params params_;
  std::vector<std::unique_ptr<LoungePolicyBase>> lounge_policies_;
  std::vector<std::unique_ptr<MeetingRoomPolicy>> meeting_policies_;
  // Keyed on PortableId::value(); values are CellId::value() (FlatMap wants
  // default-constructible unsigned values).
  sim::FlatMap<std::uint32_t, std::uint32_t> last_reserved_;
};

}  // namespace imrm::reservation
