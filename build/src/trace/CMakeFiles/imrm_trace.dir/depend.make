# Empty dependencies file for imrm_trace.
# This may be replaced when dependencies are built.
