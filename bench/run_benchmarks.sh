#!/usr/bin/env bash
# Runs the microbenchmark suite plus instrumented scenario_cli campus runs
# (clean and with admission-signaling faults) and writes a machine-readable
# perf trajectory file (default BENCH_10.json at the repo root) so later PRs
# have a baseline to beat. Schema:
# { "_meta": { "host_cpus": <int>, "git_commit": <str>,
#     "build": { "type": <str>, "IMRM_PROFILING": <str>,
#                "IMRM_TRACING": <str> }, "generated_utc": <str> },
#   "<benchmark name>": { "items_per_second": <double|null>,
#   "real_time_ns": <double> }, ...,
#   "scenario_cli/campus": { "events_per_second": <double>,
#     "handoff_wall_us_p50": <double|null>,
#     "handoff_wall_us_p99": <double|null> },
#   "scenario_cli/campus_faulted": { "events_per_second": <double>,
#     "faulted_vs_clean_ratio": <double> },
#   "scenario_cli/faults_sweep_fork": { "cold_wall_seconds": <double>,
#     "forked_wall_seconds": <double>, "fork_speedup": <double> },
#   "scenario_cli/campus_sharded": { "host_cpus": <int>,
#     "events_fired": <int>,
#     "events_per_second": { "1": <double>, "2": ..., "4": ..., "8": ... },
#     "speedup_4x": <double>, "profiled_vs_clean_ratio": <double>,
#     "profile": { "1": { "barriers": <int>, "windows": <int>,
#                         "shards": [lanes...] },
#                  "2": ..., "4": ... } },
#   "scenario_cli/campus_scale_sharded": { "host_cpus": <int>,
#     "events_fired": <int>, "windows": <int>, "boundary_messages": <int>,
#     "events_per_second": { "1": <double>, "2": ..., "4": ..., "8": ... },
#     "profile": { "barriers": <int>, "windows": <int>,
#       "realized_batch": <double>, "batch_windows": {histogram},
#       "shards": [lanes...] } },
#   "scenario_cli/service": { "virtual": { <deterministic drive counters +
#     virtual-time latency percentiles — gated exact> },
#     "saturation_rps": <double>, "overload": { "offered_rps": <double>,
#       "sustained_rps": <double>, "latency_p99_us": <double>,
#       "shed_fraction": <double> } },
#   "scenario_cli/campus_adapt": { "events_per_second": <double>,
#     "renegotiations_triggered": <int>, "renegotiations_accepted": <int>,
#     "windows_breached": <int>, "granted_prefault_bps": <double>,
#     "granted_min_bps": <double>, "granted_final_bps": <double>,
#     "offered_bits": <double>, "nonconforming_bits": <double> } }.
# The faulted/clean ratio tracks the overhead of the fault-injection path: a
# ratio far below 1.0 means the fault plumbing leaked onto the clean hot
# path. fork_speedup is the win from checkpoint forking: an 8-variant faults
# sweep on a slow-converging campus topology, cold (every replication replays
# the 60s warm phase) vs forked from one shared warm checkpoint. Expected
# well above 2x; the byte-identity of the two sweeps' metrics is asserted by
# tests/fault_checkpoint_test.cc, here we only time them.
#
# campus_sharded (ISSUE 5) runs the same sharded campus at 1/2/4/8 worker
# shards and records events/s per shard count plus host_cpus. speedup_4x is
# an HONEST measurement on the current host: the conservative-window rounds
# barrier-synchronize every window, so on a single-CPU box extra shards only
# add handoff overhead and the speedup sits below 1.0 — read it together
# with host_cpus before comparing across machines. The byte-identity of the
# per-shard metrics is asserted here too (the cheap end-to-end determinism
# check; the thorough one is ctest -L shard).
#
# campus_scale (ISSUE 6) sweeps the grid campus harness over
# {10,100,1000} cells x {1k,10k,100k} portables and records events/s and
# bytes-per-portable per point, plus the naive (pre-SoA access pattern)
# engine at 100x10k for the layout speedup on this host.
#
# campus_scale_sharded (ISSUE 10) runs the grid campus through the
# window-batched ShardedRunner (one domain per cell) at the pinned 100x10k
# point, K in {1,2,4,8}, adaptive batching. The per-K metrics are asserted
# byte-identical here (cheap end-to-end check; the thorough matrix is
# ctest -L shard), `windows` and `boundary_messages` are exact-gated by
# bench_compare, and a profiled K=2 repeat records the honest barrier
# count: `profile.barriers` vs `profile.windows` is the realized batch
# factor this machine achieved — BENCH_7 paid one coordinator dispatch per
# window (80109 on the corridor day); the burst protocol is the fix, and
# the acceptance criterion is counted in dispatches, not wall speedup,
# because on a single-CPU host extra shards cannot speed anything up.
#
# Profiling (ISSUE 7): the sharded runs are repeated with --profile 1 at
# K=1/2/4 and the per-shard busy/barrier_wait/idle fractions plus barrier
# count land in campus_sharded.profile (wall-clock attribution — recorded
# for trend reading, never gated by bench_compare). Two invariants are
# asserted here: the profiled runs' metrics JSON is byte-identical to the
# clean runs' (profiling must never perturb simulation results), and the
# profiled throughput stays above a documented floor of clean (best-of-3
# each side, so one scheduler hiccup on a shared box doesn't fail the
# budget). The floor is 0.78, not the scope-level 5% budget, because this
# workload is the profiler's worst case by construction — and window
# batching (ISSUE 10) made it worse in relative terms by making the clean
# run faster: the condvar round trip that used to dominate each window
# (~6 us) is now paid once per burst, so the mandatory per-window clock
# reads (~30 ns each — two serializer stamps plus two per worker for the
# busy lanes) went from ~3-5% of a condvar-priced window to a structural
# ~15% of an atomic-barrier-priced one (~0.83x measured at BENCH_10 on
# this host). That cost is the measurement itself, not a leak; profiling
# a ~1.2-events-per-window corridor is the one workload where per-window
# attribution cannot amortize. A floor of 0.78 still catches what the
# gate is for — an accidental allocation, lock, or log call sneaking onto
# the per-round record path (any of which costs far more than a clock
# read per window) — without flapping on clock-read cost. The 5%
# discipline itself is enforced where it can be measured stably:
# BM_ProfilerScope pins the per-scope cost (disabled ~0.7 ns — one
# predicted branch — enabled ~2 clock reads), and on any workload whose
# windows do real work the per-round cost amortizes to well under 1%.
#
# Comparability across BENCH files (ISSUE 6 S1): earlier trajectories mixed
# campus configs (e.g. 20 vs 40 attendees), so the events/s series looked
# like a regression that was actually a workload change. Every scenario_cli/*
# entry now carries `host_cpus` and the `config` fingerprint echoed by the
# CLI; the measured workloads below are PINNED — change them only together
# with a schema note, never silently. After writing the trajectory, this
# script runs tools/bench_compare.py against the previous baseline
# (BENCH_9.json unless BENCH_BASELINE overrides it) and fails on any
# regression beyond the documented noise thresholds.
#
# Closed adaptation loop (ISSUE 9): one quiet campus day with the loop on —
# four adaptive streams, a Gilbert–Elliott fault window mid-day — pinned
# flags, no wall pacing anywhere in the loop, so every number except
# events/s is deterministic and gated bit-exact by bench_compare. The entry
# records the renegotiation counts, the granted-rate trajectory
# (prefault / under-fault minimum / final), and the shaper conformance
# split; this script additionally asserts the conservation identity and
# that the final grant recovered the pre-fault fixed point exactly.
#
# Service mode (ISSUE 8): three drive runs against the in-process admission
# service. The `virtual` entry is the deterministic co-simulation (ring
# transport, virtual pacing, pinned flags) — its counters and virtual-time
# latency percentiles must reproduce bit-exactly, so bench_compare gates
# them as `exact`. The wall side first probes saturation (open-loop at an
# unreachable offered rate; sustained_rps is then the service's real
# capacity on this host) and then drives at 1.5x that measured saturation,
# recording sustained req/s, accepted-latency p99, and the shed fraction —
# the overload numbers the run-report SLO story is judged by.
#
# Usage: bench/run_benchmarks.sh [output.json]
# Env:   BUILD_DIR       build directory relative to the repo root (default: build)
#        BENCH_ARGS      extra flags for bench_microperf (e.g. --benchmark_filter=...)
#        BENCH_BASELINE  baseline trajectory for the regression gate
#                        (default: BENCH_9.json; skipped when absent)
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${BUILD_DIR:-build}
out=${1:-"$repo_root/BENCH_10.json"}

# The pinned measured workloads (S1). BENCH_4/BENCH_5 measured the campus
# day at these flags; keep them bit-for-bit stable across bench revisions.
campus_flags=(--attendees 20 --squatters 6 --seed 5)
scale_flags=(--duration 3600 --tick 5 --seed 5)
shard_flags=(--cells 32 --portables 32 --hours 4 --seed 11)
adapt_flags=(--adapt-loop 1 --attendees 0 --squatters 0 --seed 5)

cmake --build "$repo_root/$build_dir" --target bench_microperf scenario_cli -j >/dev/null

# Provenance header (_meta): which machine, commit, and build produced these
# numbers. bench_compare refuses cross-host comparisons on host_cpus.
cache="$repo_root/$build_dir/CMakeCache.txt"
export BENCH_GIT_COMMIT=$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)
export BENCH_BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$cache")
export BENCH_PROFILING=$(sed -n 's/^IMRM_PROFILING:[^=]*=//p' "$cache")
export BENCH_TRACING=$(sed -n 's/^IMRM_TRACING:[^=]*=//p' "$cache")
export BENCH_STAMP=$(date -u +%Y-%m-%dT%H:%M:%SZ)

raw=$(mktemp)
report=$(mktemp)
faulted_report=$(mktemp)
sweep_cold=$(mktemp)
sweep_forked=$(mktemp)
shard_dir=$(mktemp -d)
trap 'rm -rf "$shard_dir"; rm -f "$raw" "$report" "$faulted_report" "$sweep_cold" "$sweep_forked"' EXIT
"$repo_root/$build_dir/bench/bench_microperf" \
  --benchmark_format=json ${BENCH_ARGS:-} >"$raw"

# One instrumented campus day: the run report carries sim throughput and the
# wall-clock handoff latency histogram (mobility.handoff_wall_us).
"$repo_root/$build_dir/examples/scenario_cli" campus \
  "${campus_flags[@]}" --metrics-json "$report" >/dev/null

# The same day with a lossy admission-control plane: every admit probe rides
# an UnreliableCall (20% per-direction drop, 3 tries). Throughput relative to
# the clean run is the cost of the fault path.
"$repo_root/$build_dir/examples/scenario_cli" campus \
  "${campus_flags[@]}" --faults 0.2 \
  --metrics-json "$faulted_report" >/dev/null

# Warm-checkpoint forking (ISSUE 4): the same 8-variant faults sweep, cold
# vs forked from one shared warm image. The campus problem below takes tens
# of simulated seconds to converge, so replaying the warm phase per
# replication dominates the cold sweep; single-threaded so the timing
# measures work, not scheduling.
sweep_flags=(faults --topology campus --cells 12 --conns 48
             --faults-start 60 --stop 0.5 --drop 0.2 --flaps 2 --crashes 1
             --replications 8 --threads 1 --seed 3)
"$repo_root/$build_dir/examples/scenario_cli" "${sweep_flags[@]}" \
  --metrics-json "$sweep_cold" >/dev/null
"$repo_root/$build_dir/examples/scenario_cli" "${sweep_flags[@]}" --fork 1 \
  --metrics-json "$sweep_forked" >/dev/null

# Sharded campus scaling (ISSUE 5): the same corridor at 1/2/4/8 shards,
# timed clean (no profiler) so the events/s series stays comparable to
# earlier BENCH files.
for k in 1 2 4 8; do
  "$repo_root/$build_dir/examples/scenario_cli" campus --shards "$k" \
    "${shard_flags[@]}" --metrics-json "$shard_dir/shards$k.json" >/dev/null
done

# Profiled repeats (ISSUE 7): wall-clock attribution at K=1/2/4, plus the
# best-of-3 overhead measurement at K=2 (two extra runs per side; the first
# clean/profiled K=2 runs above and below count as sample 1).
for k in 1 2 4; do
  "$repo_root/$build_dir/examples/scenario_cli" campus --shards "$k" \
    "${shard_flags[@]}" --profile 1 \
    --metrics-json "$shard_dir/shards${k}_prof.json" >/dev/null
done
for i in 2 3; do
  "$repo_root/$build_dir/examples/scenario_cli" campus --shards 2 \
    "${shard_flags[@]}" --metrics-json "$shard_dir/shards2_clean$i.json" >/dev/null
  "$repo_root/$build_dir/examples/scenario_cli" campus --shards 2 \
    "${shard_flags[@]}" --profile 1 \
    --metrics-json "$shard_dir/shards2_prof$i.json" >/dev/null
done

# Campus-at-scale curve (ISSUE 6): events/s and bytes/portable over the
# 3x3 grid, plus the naive engine at the 100x10k comparison point.
for c in 10 100 1000; do
  for p in 1000 10000 100000; do
    "$repo_root/$build_dir/examples/scenario_cli" campus-scale \
      --cells "$c" --portables "$p" "${scale_flags[@]}" \
      --metrics-json "$shard_dir/scale_${c}x${p}.json" >/dev/null
  done
done
"$repo_root/$build_dir/examples/scenario_cli" campus-scale \
  --cells 100 --portables 10000 "${scale_flags[@]}" --engine naive \
  --metrics-json "$shard_dir/scale_naive.json" >/dev/null

# Sharded grid campus (ISSUE 10): the pinned 100x10k point through the
# window-batched runner at K=1/2/4/8 (adaptive batching), clean, plus a
# profiled K=2 repeat for the barrier count and batch-size histogram.
for k in 1 2 4 8; do
  "$repo_root/$build_dir/examples/scenario_cli" campus-scale \
    --cells 100 --portables 10000 "${scale_flags[@]}" --shards "$k" \
    --metrics-json "$shard_dir/scale_sharded$k.json" >/dev/null
done
"$repo_root/$build_dir/examples/scenario_cli" campus-scale \
  --cells 100 --portables 10000 "${scale_flags[@]}" --shards 2 --profile 1 \
  --metrics-json "$shard_dir/scale_sharded_prof.json" >/dev/null

# Closed adaptation loop (ISSUE 9): the pinned quiet campus day with the
# loop on; everything but events/s in the resulting entry is deterministic.
"$repo_root/$build_dir/examples/scenario_cli" campus \
  "${adapt_flags[@]}" --metrics-json "$shard_dir/campus_adapt.json" >/dev/null

# Service mode (ISSUE 8). Deterministic virtual run first: pinned flags,
# past-saturation so the shed path is exercised; every number in it is gated
# bit-exact by bench_compare.
service_flags=(--portables 64 --cells 16 --seed 11)
"$repo_root/$build_dir/examples/scenario_cli" drive \
  --transport ring --pacing virtual --rate 7500 --duration 5 \
  "${service_flags[@]}" --queue-cap 16 \
  --metrics-json "$shard_dir/service_virtual.json" >/dev/null

# Wall saturation probe: offer far more than the service can take; the
# governor sheds the surplus and sustained_rps converges on real capacity.
"$repo_root/$build_dir/examples/scenario_cli" drive \
  --transport ring --pacing wall --rate 200000 --duration 2 \
  "${service_flags[@]}" --queue-cap 64 \
  --metrics-json "$shard_dir/service_probe.json" >/dev/null

# 1.5x the measured saturation: the overload point the ISSUE names.
overload_rate=$(python3 -c "import json; print(1.5 * json.load(open(
    '$shard_dir/service_probe.json'))['service']['sustained_rps'])")
"$repo_root/$build_dir/examples/scenario_cli" drive \
  --transport ring --pacing wall --rate "$overload_rate" --duration 3 \
  "${service_flags[@]}" --queue-cap 64 \
  --metrics-json "$shard_dir/service_overload.json" >/dev/null

python3 - "$raw" "$report" "$faulted_report" "$sweep_cold" "$sweep_forked" "$shard_dir" "$out" <<'PYEOF'
import json
import os
import sys

NS_PER = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

with open(sys.argv[1]) as f:
    raw = json.load(f)

trajectory = {
    "_meta": {
        "host_cpus": os.cpu_count(),
        "git_commit": os.environ.get("BENCH_GIT_COMMIT", "unknown"),
        "build": {
            "type": os.environ.get("BENCH_BUILD_TYPE", ""),
            "IMRM_PROFILING": os.environ.get("BENCH_PROFILING", ""),
            "IMRM_TRACING": os.environ.get("BENCH_TRACING", ""),
        },
        "generated_utc": os.environ.get("BENCH_STAMP", ""),
    },
}
for bench in raw["benchmarks"]:
    if bench.get("run_type") == "aggregate":
        continue
    scale = NS_PER[bench.get("time_unit", "ns")]
    trajectory[bench["name"]] = {
        "items_per_second": bench.get("items_per_second"),
        "real_time_ns": bench["real_time"] * scale,
    }

def entry(report, **fields):
    """Every scenario_cli/* entry carries the host size and the exact config
    the CLI echoed (S1): trajectories across BENCH files are only comparable
    when both match."""
    out = {"host_cpus": os.cpu_count(), "config": report["config"]}
    out.update(fields)
    return out

with open(sys.argv[2]) as f:
    report = json.load(f)
handoff = report["metrics"]["histograms"].get("mobility.handoff_wall_us", {})
trajectory["scenario_cli/campus"] = entry(
    report,
    events_per_second=report["events_per_second"],
    handoff_wall_us_p50=handoff.get("p50"),
    handoff_wall_us_p99=handoff.get("p99"),
)

with open(sys.argv[3]) as f:
    faulted = json.load(f)
trajectory["scenario_cli/campus_faulted"] = entry(
    faulted,
    events_per_second=faulted["events_per_second"],
    faulted_vs_clean_ratio=(
        faulted["events_per_second"] / report["events_per_second"]),
)

with open(sys.argv[4]) as f:
    sweep_cold = json.load(f)
with open(sys.argv[5]) as f:
    sweep_forked = json.load(f)
if sweep_cold["metrics"] != sweep_forked["metrics"]:
    sys.exit("faults sweep: forked metrics differ from cold metrics")
trajectory["scenario_cli/faults_sweep_fork"] = entry(
    sweep_cold,
    cold_wall_seconds=sweep_cold["wall_seconds"],
    forked_wall_seconds=sweep_forked["wall_seconds"],
    fork_speedup=sweep_cold["wall_seconds"] / sweep_forked["wall_seconds"],
)

shard_dir = sys.argv[6]
sharded = {}
shard_metrics = {}
for k in (1, 2, 4, 8):
    with open(f"{shard_dir}/shards{k}.json") as f:
        shard_report = json.load(f)
    sharded[str(k)] = shard_report["events_per_second"]
    shard_metrics[k] = shard_report["metrics"]
    events_fired = shard_report["events_fired"]
for k in (2, 4, 8):
    if shard_metrics[k] != shard_metrics[1]:
        sys.exit(f"sharded campus: metrics at shards={k} differ from shards=1")

# Profiled repeats (ISSUE 7). Two invariants plus the attribution payload:
#  * metrics byte-identity — profiling only reads clocks, never schedules;
#  * throughput floor — best-of-3 profiled >= 0.78x best-of-3 clean (see
#    the header comment for why the floor sits below the 5% scope budget
#    on this barrier-bound worst-case workload, and why batching lowered
#    it: cheaper windows make fixed clock reads a larger fraction).
profile_block = {}
prof_eps = {}
for k in (1, 2, 4):
    with open(f"{shard_dir}/shards{k}_prof.json") as f:
        prof_report = json.load(f)
    if prof_report["metrics"] != shard_metrics[k]:
        sys.exit(f"sharded campus: profiled metrics at shards={k} differ "
                 "from clean metrics — profiling perturbed the simulation")
    prof_eps[k] = prof_report["events_per_second"]
    p = prof_report["profile"]
    profile_block[str(k)] = {
        "barriers": p["barriers"],
        "windows": p["windows"],
        "boundary_messages": p["boundary_messages"],
        "shards": [
            {key: lane[key] for key in ("busy_frac", "barrier_wait_frac",
                                        "idle_frac", "straggler_windows")}
            for lane in p["shards"]
        ],
    }
clean_best = max([sharded["2"]] + [
    json.load(open(f"{shard_dir}/shards2_clean{i}.json"))["events_per_second"]
    for i in (2, 3)])
prof_best = max([prof_eps[2]] + [
    json.load(open(f"{shard_dir}/shards2_prof{i}.json"))["events_per_second"]
    for i in (2, 3)])
overhead_ratio = prof_best / clean_best
if overhead_ratio < 0.78:
    sys.exit(f"profiling overhead floor blown: best profiled throughput is "
             f"{overhead_ratio:.3f}x of best clean (floor 0.78) — something "
             "heavier than clock reads landed on the per-round record path")

trajectory["scenario_cli/campus_sharded"] = entry(
    shard_report,
    events_fired=events_fired,
    events_per_second=sharded,
    speedup_4x=sharded["4"] / sharded["1"],
    profiled_vs_clean_ratio=overhead_ratio,
    profile=profile_block,
)

# Campus-at-scale curve (ISSUE 6): 3x3 grid of events/s and bytes/portable,
# plus the SoA-vs-naive layout speedup at the 100x10k point.
grid = {}
scale_config = None
for c in (10, 100, 1000):
    for p in (1000, 10000, 100000):
        with open(f"{shard_dir}/scale_{c}x{p}.json") as f:
            scale_report = json.load(f)
        gauges = scale_report["metrics"]["gauges"]
        grid[f"{c}x{p}"] = {
            "events_per_second": scale_report["events_per_second"],
            "events_fired": scale_report["events_fired"],
            "bytes_per_portable": gauges["scale.bytes_per_portable"]["value"],
        }
        scale_config = scale_report["config"]
with open(f"{shard_dir}/scale_naive.json") as f:
    naive_report = json.load(f)
soa_100x10k = grid["100x10000"]["events_per_second"]
trajectory["scenario_cli/campus_scale"] = {
    "host_cpus": os.cpu_count(),
    "config": scale_config,
    "grid": grid,
    "naive_events_per_second_100x10000": naive_report["events_per_second"],
    "soa_vs_naive_speedup_100x10000":
        soa_100x10k / naive_report["events_per_second"],
}

# Sharded grid campus (ISSUE 10): byte-identical per-K metrics (asserted),
# exact-gated windows/boundary totals, and the realized batch factor from
# the profiled repeat — barriers vs windows is the number the window
# batching exists to shrink (ISSUE 5 behavior was barriers == windows).
scale_sharded_eps = {}
scale_sharded_metrics = {}
for k in (1, 2, 4, 8):
    with open(f"{shard_dir}/scale_sharded{k}.json") as f:
        ss_report = json.load(f)
    scale_sharded_eps[str(k)] = ss_report["events_per_second"]
    scale_sharded_metrics[k] = ss_report["metrics"]
for k in (2, 4, 8):
    if scale_sharded_metrics[k] != scale_sharded_metrics[1]:
        sys.exit(f"sharded scale campus: metrics at shards={k} differ from "
                 "shards=1")
with open(f"{shard_dir}/scale_sharded_prof.json") as f:
    ss_prof = json.load(f)
if ss_prof["metrics"] != scale_sharded_metrics[2]:
    sys.exit("sharded scale campus: profiled metrics differ from clean — "
             "profiling perturbed the simulation")
ss_counters = ss_report["metrics"]["counters"]
sp = ss_prof["profile"]
trajectory["scenario_cli/campus_scale_sharded"] = {
    "host_cpus": os.cpu_count(),
    "config": ss_report["config"],
    "events_fired": ss_report["events_fired"],
    "events_per_second": scale_sharded_eps,
    "windows": ss_counters["shard.windows"],
    "boundary_messages": ss_counters["shard.boundary_messages"],
    "profile": {
        "barriers": sp["barriers"],
        "windows": sp["windows"],
        "realized_batch": sp["windows"] / sp["barriers"],
        "batch_windows": sp["batch_windows"],
        "shards": [
            {key: lane[key] for key in ("busy_frac", "barrier_wait_frac",
                                        "idle_frac", "straggler_windows")}
            for lane in sp["shards"]
        ],
    },
}

# Closed adaptation loop (ISSUE 9). Deterministic end to end: gate-worthy
# counters come straight from the report's adaptation block, and the two
# loop invariants — shaper conservation and bit-exact recovery of the
# pre-fault grant — are asserted here before the entry is written.
with open(f"{shard_dir}/campus_adapt.json") as f:
    adapt = json.load(f)
ab = adapt["adaptation"]
if ab["offered_bits"] != ab["bg_bits"] + ab["wc_bits"] + ab["nonconforming_bits"]:
    sys.exit("campus adapt: shaper conservation broken — offered_bits != "
             "bg + wc + nonconforming")
if ab["granted_final_bps"] != ab["granted_prefault_bps"]:
    sys.exit("campus adapt: the loop did not recover the pre-fault grant "
             f"({ab['granted_final_bps']:g} != {ab['granted_prefault_bps']:g})")
trajectory["scenario_cli/campus_adapt"] = entry(
    adapt,
    events_per_second=adapt["events_per_second"],
    renegotiations_triggered=ab["renegotiations_triggered"],
    renegotiations_accepted=ab["renegotiations_accepted"],
    windows_breached=ab["windows_breached"],
    granted_prefault_bps=ab["granted_prefault_bps"],
    granted_min_bps=ab["granted_min_bps"],
    granted_final_bps=ab["granted_final_bps"],
    offered_bits=ab["offered_bits"],
    nonconforming_bits=ab["nonconforming_bits"],
)

# Service mode (ISSUE 8). The virtual entry is deterministic end to end
# (gated exact); the wall entries measure this host's service capacity and
# its behaviour at 1.5x that capacity.
with open(f"{shard_dir}/service_virtual.json") as f:
    virt = json.load(f)
with open(f"{shard_dir}/service_probe.json") as f:
    probe = json.load(f)
with open(f"{shard_dir}/service_overload.json") as f:
    overload = json.load(f)
vs = virt["service"]
if vs["offered"] != vs["processed"] + vs["shed"] + vs["unanswered"]:
    sys.exit("service virtual: offered != processed + shed + unanswered")
if overload["service"]["shed"] == 0:
    sys.exit("service overload: driving at 1.5x saturation never shed — "
             "the governor did not engage")
trajectory["scenario_cli/service"] = entry(
    virt,
    virtual={key: vs[key] for key in (
        "offered", "processed", "shed", "errors", "admit_accepted",
        "admit_rejected", "handoffs", "latency_p50_us", "latency_p99_us")},
    saturation_rps=probe["service"]["sustained_rps"],
    overload={key: overload["service"][key] for key in (
        "offered_rps", "sustained_rps", "latency_p99_us", "shed_fraction")},
)

with open(sys.argv[7], "w") as f:
    json.dump(trajectory, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {sys.argv[7]} ({len(trajectory) - 1} entries)")
PYEOF

# Regression gate: the new trajectory must not regress past the previous
# baseline beyond the noise thresholds documented in bench_compare.py.
baseline=${BENCH_BASELINE:-"$repo_root/BENCH_9.json"}
if [[ -f "$baseline" && "$baseline" != "$out" ]]; then
  python3 "$repo_root/tools/bench_compare.py" "$baseline" "$out"
else
  echo "bench_compare: no baseline at $baseline — gate skipped"
fi
