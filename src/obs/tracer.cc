#include "obs/tracer.h"

#include "obs/json.h"

namespace imrm::obs {

NameId Tracer::intern(std::string_view name, std::string_view category) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i].name == name && names_[i].category == category) {
      return NameId(i);
    }
  }
  names_.push_back({std::string(name), std::string(category)});
  return NameId(names_.size() - 1);
}

void Tracer::declare_process(std::uint32_t pid, std::string_view name) {
  for (auto& [existing, label] : processes_) {
    if (existing == pid) {
      label = std::string(name);
      return;
    }
  }
  processes_.emplace_back(pid, std::string(name));
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  json::Separator sep;

  // Process metadata so the timeline is labelled in the viewer.
  sep.write(os);
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"imrm-sim\"}}";
  for (const auto& [pid, label] : processes_) {
    sep.write(os);
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    json::write_number(os, std::uint64_t(pid));
    os << ",\"tid\":0,\"args\":{\"name\":";
    json::write_string(os, label);
    os << "}}";
  }

  records_.for_each([&](const TraceRecord& r) {
    sep.write(os);
    os << "{\"name\":";
    json::write_string(os, names_[r.name].name);
    os << ",\"cat\":";
    json::write_string(os, names_[r.name].category);
    os << ",\"ph\":\"" << r.phase << "\",\"ts\":";
    json::write_number(os, r.ts_us);
    os << ",\"pid\":";
    json::write_number(os, std::uint64_t(r.pid));
    os << ",\"tid\":";
    json::write_number(os, std::uint64_t(r.track));
    switch (r.phase) {
      case 'X':
        os << ",\"dur\":";
        json::write_number(os, r.dur_us);
        os << ",\"args\":{\"value\":";
        json::write_number(os, r.value);
        os << '}';
        break;
      case 'C':
        os << ",\"args\":{";
        json::write_string(os, names_[r.name].name);
        os << ':';
        json::write_number(os, r.value);
        os << '}';
        break;
      default:  // instant
        os << ",\"s\":\"t\",\"args\":{\"value\":";
        json::write_number(os, r.value);
        os << '}';
    }
    os << '}';
  });

  os << "],\"displayTimeUnit\":\"ms\"";
  if (records_.dropped() > 0) {
    os << ",\"metadata\":{\"dropped_records\":";
    json::write_number(os, records_.dropped());
    os << '}';
  }
  os << "}\n";
}

}  // namespace imrm::obs
