// Fixed-capacity sliding-history ring shared by the Table 1 profiles.
//
// Both profile classes keep "the last N observations" per state. The naive
// vector version (push_back + erase(begin())) shifts the whole window on
// every eviction and lets the vector's growth policy allocate past the
// window size; under sustained handoff churn that is an O(window) memmove
// per handoff and up to 2x the pinned footprint. This ring overwrites the
// oldest slot in place: O(1) per record, heap usage pinned at exactly
// `capacity` slots once warm.
//
// Iteration order is oldest-first (index 0 = oldest), matching the order
// the vector version serialized, so checkpoint bytes are unchanged.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "net/ids.h"

namespace imrm::profiles {

class HistoryWindow {
 public:
  explicit HistoryWindow(std::size_t capacity) : capacity_(capacity) {}

  /// Appends `value` as the newest observation. Returns the evicted oldest
  /// observation when the window was already full (a zero-capacity window
  /// evicts the value itself immediately).
  std::optional<net::CellId> push(net::CellId value) {
    if (capacity_ == 0) return value;
    if (slots_.size() < capacity_) {
      if (slots_.size() == slots_.capacity()) {
        // Grow geometrically but never past the window: the many states that
        // only ever see a few observations pay for what they hold, while a
        // warm window is flat at exactly `capacity_` slots (the old
        // push_back/erase-front vector transiently doubled past it).
        const std::size_t doubled =
            slots_.capacity() == 0 ? 1 : slots_.capacity() * 2;
        slots_.reserve(std::min(capacity_, doubled));
      }
      slots_.push_back(value);
      return std::nullopt;
    }
    const net::CellId evicted = slots_[head_];
    slots_[head_] = value;
    head_ = (head_ + 1) % capacity_;
    return evicted;
  }

  /// Observation `i` in arrival order: 0 = oldest, size()-1 = newest.
  [[nodiscard]] net::CellId operator[](std::size_t i) const {
    return slots_.size() < capacity_ ? slots_[i]
                                     : slots_[(head_ + i) % capacity_];
  }

  [[nodiscard]] net::CellId newest() const { return (*this)[slots_.size() - 1]; }
  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] bool empty() const { return slots_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] std::size_t memory_bytes() const {
    return slots_.capacity() * sizeof(net::CellId);
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // oldest slot, once the ring is full
  std::vector<net::CellId> slots_;
};

}  // namespace imrm::profiles
