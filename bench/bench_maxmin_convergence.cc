// Theorem 1 validation: the distributed event-driven adaptation protocol
// converges to the max-min optimal allocation.
//
// Random chain topologies with random connections and demands; after
// initial convergence, random capacity perturbations. For every scenario we
// report the max deviation of the distributed protocol's rates from the
// centralized water-filling optimum, the rounds and control messages used,
// and the convergence wall-clock inside the simulation.
#include <iostream>
#include <random>

#include "maxmin/problem.h"
#include "maxmin/protocol.h"
#include "maxmin/waterfill.h"
#include "sim/simulator.h"
#include "stats/table.h"
#include "stats/timeseries.h"

using namespace imrm;
using namespace imrm::maxmin;

namespace {

Problem random_problem(std::mt19937_64& rng, int n_links, int n_conns) {
  std::uniform_real_distribution<double> cap(5.0, 50.0);
  Problem p;
  for (int i = 0; i < n_links; ++i) p.links.push_back({cap(rng)});
  for (int c = 0; c < n_conns; ++c) {
    std::uniform_int_distribution<int> start_dist(0, n_links - 1);
    const int start = start_dist(rng);
    std::uniform_int_distribution<int> end_dist(start, n_links - 1);
    const int end = end_dist(rng);
    ProblemConnection conn;
    for (int li = start; li <= end; ++li) conn.path.push_back(std::size_t(li));
    if (rng() % 3 == 0) conn.demand = cap(rng) / 2.0;
    p.connections.push_back(std::move(conn));
  }
  return p;
}

double max_deviation(const std::vector<double>& got, const std::vector<double>& want) {
  double dev = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    dev = std::max(dev, std::abs(got[i] - want[i]));
  }
  return dev;
}

}  // namespace

int main() {
  std::cout << "== Theorem 1: distributed adaptation converges to max-min ==\n\n";

  stats::Table table({"links", "conns", "seed", "max dev (initial)", "msgs",
                      "rounds", "sim ms", "max dev (after perturb)", "msgs (perturb)"});
  stats::Summary initial_dev, perturb_dev;

  for (int n_links : {3, 6, 10}) {
    for (int n_conns : {5, 12, 24}) {
      for (std::uint64_t seed : {1u, 2u, 3u}) {
        std::mt19937_64 rng{seed * 1000 + std::uint64_t(n_links * 10 + n_conns)};
        const Problem problem = random_problem(rng, n_links, n_conns);

        sim::Simulator simulator;
        DistributedProtocol::Config config;
        DistributedProtocol protocol(simulator, problem, config);
        protocol.start_all();
        protocol.run_to_quiescence();

        const auto optimum = waterfill(problem);
        const double dev0 = max_deviation(protocol.rates(), optimum.rates);
        initial_dev.add(dev0);
        const auto msgs0 = protocol.messages_sent();
        const auto rounds0 = protocol.rounds_run();
        const double t0 = simulator.now().to_millis();

        // Perturb: change a random link's capacity, reconverge, re-compare.
        Problem perturbed = problem;
        const std::size_t victim = rng() % perturbed.links.size();
        std::uniform_real_distribution<double> cap(5.0, 50.0);
        perturbed.links[victim].excess_capacity = cap(rng);
        protocol.set_link_excess_capacity(victim, perturbed.links[victim].excess_capacity);
        protocol.run_to_quiescence();
        const auto optimum2 = waterfill(perturbed);
        const double dev1 = max_deviation(protocol.rates(), optimum2.rates);
        perturb_dev.add(dev1);

        table.add_row({std::to_string(n_links), std::to_string(n_conns),
                       std::to_string(seed), stats::fmt(dev0, 6),
                       std::to_string(msgs0), std::to_string(rounds0),
                       stats::fmt(t0, 1), stats::fmt(dev1, 6),
                       std::to_string(protocol.messages_sent() - msgs0)});
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nmax deviation from the water-filling optimum: initial "
            << stats::fmt(initial_dev.max(), 6) << ", after perturbation "
            << stats::fmt(perturb_dev.max(), 6)
            << " (capacities are O(10); deviations are at solver tolerance)\n";

  // Theorem 1's delta clause: increases below delta trigger no adaptation.
  std::cout << "\ndelta-threshold clause: capacity +delta/2 must not trigger "
               "adaptation\n";
  Problem small;
  small.links = {{8.0}};
  small.connections = {{{0}, kInfiniteDemand}, {{0}, kInfiniteDemand}};
  sim::Simulator simulator;
  DistributedProtocol::Config config;
  config.delta = 2.0;
  DistributedProtocol protocol(simulator, small, config);
  protocol.start_all();
  protocol.run_to_quiescence();
  const auto before = protocol.messages_sent();
  protocol.set_link_excess_capacity(0, 8.9);  // +0.9 < delta
  protocol.run_to_quiescence();
  std::cout << "  rates stayed at {" << stats::fmt(protocol.rates()[0], 2) << ", "
            << stats::fmt(protocol.rates()[1], 2) << "}, messages sent: "
            << (protocol.messages_sent() - before) << " (0 expected)\n";
  return 0;
}
