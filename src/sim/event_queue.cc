#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace imrm::sim {

void EventQueue::release_slot(std::uint32_t slot) {
  slots_[slot].reset();       // release captured state eagerly
  SlotMeta& m = meta_[slot];
  ++m.generation;             // invalidate outstanding EventIds for this slot
  if (m.generation == kRetiredGeneration) {
    // Generation space exhausted: retire the slot instead of recycling it.
    // Recycling once more would eventually wrap the generation to a value a
    // long-held stale EventId still carries, and cancel() on that handle
    // would kill whatever live event happened to occupy the slot. The leak
    // is one 64-byte slot per 2^32 - 1 reuses — bounded and negligible.
    ++retired_slots_;
    return;
  }
  m.link = free_head_;
  free_head_ = slot;
}

EventId EventQueue::schedule(SimTime at, Callback cb) {
  const std::uint32_t slot = acquire_slot();
  slots_[slot] = std::move(cb);
  return push_entry(at, slot);
}

EventId EventQueue::push_entry(SimTime at, std::uint32_t slot) {
  assert(slot <= kSlotMask && "slot index space exhausted");
  assert(next_seq_ < (1ull << 40) && "sequence space exhausted");
  heap_.push_back(make_key(encode_time(at), next_seq_++, slot));
  sift_up(heap_.size() - 1);  // also records the slot's heap position
  ++stats_.scheduled;
  if (heap_.size() > stats_.peak_pending) stats_.peak_pending = heap_.size();
  return (EventId(meta_[slot].generation) << 32) | slot;
}

void EventQueue::cancel(EventId id) {
  const std::uint32_t slot = std::uint32_t(id) & kSlotMask;
  const std::uint32_t generation = std::uint32_t(id >> 32);
  if (slot >= slots_.size() || meta_[slot].generation != generation ||
      (std::uint32_t(id) & ~kSlotMask) != 0) {
    return;
  }
  const std::size_t pos = meta_[slot].link;
  assert(pos < heap_.size() && key_slot(heap_[pos]) == slot);
  remove_heap_entry(pos);
  release_slot(slot);
  ++stats_.cancelled;
}

EventQueue::Fired EventQueue::pop() {
  assert(!heap_.empty() && "pop() on empty EventQueue");
  const HeapKey top = heap_.front();
  const std::uint32_t slot = key_slot(top);
  Fired fired{key_time(top), std::move(slots_[slot])};
  release_slot(slot);
  // Remove the root: move the last entry in and sift it down (never up).
  const HeapKey last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_.front() = last;
    meta_[key_slot(last)].link = 0;
    sift_down(0);
  }
  return fired;
}

void EventQueue::remove_heap_entry(std::size_t pos) {
  const HeapKey last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;
  heap_[pos] = last;
  meta_[key_slot(last)].link = std::uint32_t(pos);
  // The moved-in entry may belong above or below its new position.
  sift_up(pos);
  sift_down(pos);
}

void EventQueue::sift_up(std::size_t pos) {
  const HeapKey key = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    const HeapKey pk = heap_[parent];
    if (!(key < pk)) break;
    heap_[pos] = pk;
    meta_[key_slot(pk)].link = std::uint32_t(pos);
    pos = parent;
  }
  heap_[pos] = key;
  meta_[key_slot(key)].link = std::uint32_t(pos);
}

void EventQueue::sift_down(std::size_t pos) {
  const HeapKey key = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * pos + 1;
    if (first >= n) break;
    std::size_t best = first;
    HeapKey bk = heap_[first];
    if (first + 4 <= n) {
      // Interior node: all four children exist; branchless min scan.
      for (std::size_t c = first + 1; c < first + 4; ++c) {
        const HeapKey ck = heap_[c];
        const bool better = ck < bk;
        best = better ? c : best;
        bk = better ? ck : bk;
      }
    } else {
      for (std::size_t c = first + 1; c < n; ++c) {
        const HeapKey ck = heap_[c];
        const bool better = ck < bk;
        best = better ? c : best;
        bk = better ? ck : bk;
      }
    }
    if (!(bk < key)) break;
    heap_[pos] = bk;
    meta_[key_slot(bk)].link = std::uint32_t(pos);
    pos = best;
  }
  heap_[pos] = key;
  meta_[key_slot(key)].link = std::uint32_t(pos);
}

}  // namespace imrm::sim
