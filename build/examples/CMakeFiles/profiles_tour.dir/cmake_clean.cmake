file(REMOVE_RECURSE
  "CMakeFiles/profiles_tour.dir/profiles_tour.cc.o"
  "CMakeFiles/profiles_tour.dir/profiles_tour.cc.o.d"
  "profiles_tour"
  "profiles_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiles_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
