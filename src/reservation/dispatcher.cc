#include "reservation/dispatcher.h"

#include <algorithm>
#include <vector>

namespace imrm::reservation {

PolicyDispatcher::PolicyDispatcher(PolicyEnv env,
                                   const prediction::ThreeLevelPredictor& predictor,
                                   const profiles::ProfileServer& server, Params params)
    : AdvanceReservationPolicy(std::move(env)), predictor_(&predictor), params_(params) {
  // Instantiate the collective lounge policies from the cell classes; they
  // contribute into the shared directory (non-standalone).
  for (const mobility::Cell& cell : env_.map->cells()) {
    std::unique_ptr<AdvanceReservationPolicy> policy;
    switch (cell.cell_class) {
      case mobility::CellClass::kMeetingRoom: {
        profiles::BookingCalendar calendar;
        if (const profiles::BookingCalendar* booked = server.calendar_if(cell.id)) {
          calendar = *booked;
        }
        MeetingRoomPolicy::Params room_params;
        room_params.per_user_bandwidth = params_.per_user_bandwidth;
        meeting_policies_.push_back(std::make_unique<MeetingRoomPolicy>(
            env_, cell.id, std::move(calendar), room_params));
        meeting_policies_.back()->set_standalone(false);
        break;
      }
      case mobility::CellClass::kCafeteria:
        lounge_policies_.push_back(std::make_unique<CafeteriaPolicy>(
            env_, cell.id, params_.lounge_slot, params_.per_user_bandwidth));
        lounge_policies_.back()->set_standalone(false);
        break;
      case mobility::CellClass::kLounge:
        lounge_policies_.push_back(std::make_unique<DefaultLoungePolicy>(
            env_, cell.id, params_.lounge_slot, params_.per_user_bandwidth));
        lounge_policies_.back()->set_standalone(false);
        break;
      default:
        break;  // offices and corridors are handled per portable below
    }
  }
}

void PolicyDispatcher::on_handoff(const mobility::HandoffEvent& event) {
  for (auto& policy : lounge_policies_) policy->on_handoff(event);
  for (auto& policy : meeting_policies_) policy->on_handoff(event);
}

std::optional<CellId> PolicyDispatcher::decide(PortableId portable, CellId current) const {
  const mobility::Cell& cell = env_.map->cell(current);

  // The summary's office special case: a regular occupant AT HOME gets no
  // reservation anywhere (No_Resv) — they are expected to stay.
  if (cell.cell_class == mobility::CellClass::kOffice && cell.is_occupant(portable)) {
    return std::nullopt;
  }
  // Step 1 + level-2a/2b: delegate to the three-level predictor, which
  // implements exactly the portable-profile -> office-occupancy -> cell
  // aggregate ladder.
  const CellId previous =
      env_.previous_cell ? env_.previous_cell(portable) : CellId::invalid();
  const prediction::Prediction p = predictor_->predict(portable, previous, current);
  return p.next_cell;
}

void PolicyDispatcher::refresh(sim::SimTime now) {
  env_.directory->clear_reservations();
  last_reserved_.clear();

  // Per-portable reservations for offices and corridors (and any mobile
  // portable with a usable prediction).
  for (const mobility::Cell& cell : env_.map->cells()) {
    if (mobility::is_lounge(cell.cell_class)) continue;  // collective below
    for (PortableId portable : env_.portables_in(cell.id)) {
      if (env_.classify(portable) != qos::MobilityClass::kMobile) continue;
      const qos::BitsPerSecond b = env_.demand(portable);
      if (b <= 0.0) continue;
      const auto target = decide(portable, cell.id);
      if (target.has_value() && env_.directory->has(*target)) {
        env_.directory->at(*target).reserve_for(portable, b);
        last_reserved_[portable.value()] = target->value();
      }
    }
  }

  // Collective lounge policies contribute additively.
  for (auto& policy : lounge_policies_) policy->refresh(now);
  for (auto& policy : meeting_policies_) policy->refresh(now);
}

std::optional<CellId> PolicyDispatcher::reserved_cell(PortableId portable) const {
  const std::uint32_t* cell = last_reserved_.find(portable.value());
  if (cell == nullptr) return std::nullopt;
  return CellId{*cell};
}

void PolicyDispatcher::save_state(sim::CheckpointWriter& w) const {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
  entries.reserve(last_reserved_.size());
  last_reserved_.for_each([&entries](std::uint32_t portable, std::uint32_t cell) {
    entries.emplace_back(portable, cell);
  });
  std::sort(entries.begin(), entries.end());
  w.u64(entries.size());
  for (const auto& [portable, cell] : entries) {
    w.u32(portable);
    w.u32(cell);
  }
  w.u64(lounge_policies_.size());
  for (const auto& policy : lounge_policies_) policy->save_state(w);
  w.u64(meeting_policies_.size());
  for (const auto& policy : meeting_policies_) policy->save_state(w);
}

void PolicyDispatcher::restore_state(sim::CheckpointReader& r) {
  last_reserved_.clear();
  for (std::uint64_t n = r.u64(); n-- > 0;) {
    const std::uint32_t portable = r.u32();
    last_reserved_[portable] = r.u32();
  }
  if (r.u64() != lounge_policies_.size()) {
    throw sim::CheckpointError("dispatcher: checkpoint lounge-policy count mismatch");
  }
  for (const auto& policy : lounge_policies_) policy->restore_state(r);
  if (r.u64() != meeting_policies_.size()) {
    throw sim::CheckpointError("dispatcher: checkpoint meeting-policy count mismatch");
  }
  for (const auto& policy : meeting_policies_) policy->restore_state(r);
}

}  // namespace imrm::reservation
