// The closed adaptation loop on the campus day (ISSUE 9 tentpole, end to
// end): under an injected Gilbert–Elliott fault window the controller
// renegotiates the adaptive streams down toward b_min, and after the heal
// the concave ramp returns the total grant bit-exactly to the pre-fault
// max-min fixed point. The loop is deterministic (same seed -> byte-equal
// metrics), thread-stable in sweeps, refuses checkpoint/resume, and — when
// disabled — leaves no trace in the metrics at all.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "experiments/campus_day.h"
#include "obs/metrics.h"
#include "sim/checkpoint.h"

namespace imrm::experiments {
namespace {

using qos::kbps;
using sim::SimTime;

CampusDayConfig quiet_adapt_config() {
  // No attendees or squatters: the meeting-room account belongs to the
  // adaptive streams alone, so grant arithmetic is exact.
  CampusDayConfig config;
  config.attendees = 0;
  config.squatters = 0;
  config.adapt.enabled = true;
  return config;
}

std::string snapshot_json(obs::Registry& registry) {
  std::ostringstream os;
  registry.snapshot().write_json(os);
  return os.str();
}

TEST(CampusAdaptLoop, ConvergesBackToPrefaultFixedPoint) {
  CampusDayConfig config = quiet_adapt_config();
  const CampusDayResult r = run_campus_day(config);

  // Pre-fault fixed point: every stream granted its full b_max.
  const double full = double(config.adapt.flows) * config.adapt.b_max;
  EXPECT_DOUBLE_EQ(r.adapt_granted_prefault_bps, full);
  // Under the fault the controller renegotiated down — the total grant
  // dipped well below the fixed point (toward the b_min floor)...
  EXPECT_GT(r.renegotiations, 0u);
  EXPECT_LT(r.adapt_granted_min_bps, 0.5 * full);
  EXPECT_GE(r.adapt_granted_min_bps,
            double(config.adapt.flows) * config.adapt.b_min - 1e-6);
  // ...and after the heal the ramp + snap reproduced it bit-exactly.
  EXPECT_EQ(r.adapt_granted_final_bps, r.adapt_granted_prefault_bps);
}

TEST(CampusAdaptLoop, FaultFreeLoopHoldsTheFixedPoint) {
  // With the fault disabled the loop still runs every tick; a clean channel
  // must never dislodge the grants (the no-oscillation property, end to
  // end, across seeds).
  for (std::uint64_t seed : {5ull, 6ull, 7ull}) {
    SCOPED_TRACE(seed);
    CampusDayConfig config = quiet_adapt_config();
    config.seed = seed;
    config.adapt.fault_loss = 0.0;
    const CampusDayResult r = run_campus_day(config);
    const double full = double(config.adapt.flows) * config.adapt.b_max;
    EXPECT_EQ(r.renegotiations, 0u);
    EXPECT_DOUBLE_EQ(r.adapt_granted_final_bps, full);
  }
}

TEST(CampusAdaptLoop, DeterministicInSeed) {
  auto run_once = [] {
    obs::Registry registry;
    CampusDayConfig config = quiet_adapt_config();
    config.metrics = &registry;
    const CampusDayResult r = run_campus_day(config);
    return std::pair<std::string, std::size_t>{snapshot_json(registry),
                                               r.renegotiations};
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

TEST(CampusAdaptLoop, SweepIsByteStableAcrossThreadCounts) {
  auto sweep_once = [](std::size_t threads) {
    CampusSweepConfig sweep;
    sweep.base = quiet_adapt_config();
    sweep.replications = 4;
    sweep.threads = threads;
    const CampusSweepResult r = run_campus_day_sweep(sweep);
    std::ostringstream os;
    r.metrics.write_json(os);
    return std::pair<std::string, std::size_t>{os.str(), r.renegotiations};
  };
  const auto one = sweep_once(1);
  const auto four = sweep_once(4);
  const auto eight = sweep_once(8);
  EXPECT_GT(one.second, 0u);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, eight);
}

TEST(CampusAdaptLoop, RefusesCheckpointAndResume) {
  // The loop's packet-level lambdas are not checkpointable records; the
  // harness must say so loudly instead of freezing a day it cannot restore.
  CampusDayConfig config = quiet_adapt_config();
  EXPECT_THROW((void)checkpoint_campus_day(config, SimTime::minutes(60)),
               sim::CheckpointError);
  CampusDayConfig plain;
  plain.attendees = 0;
  plain.squatters = 0;
  const sim::Checkpoint ckpt = checkpoint_campus_day(plain, SimTime::minutes(60));
  EXPECT_THROW((void)resume_campus_day(config, ckpt), sim::CheckpointError);
}

TEST(CampusAdaptLoop, DisabledLoopLeavesNoTrace) {
  // Loop off: no adapt.* metric exists and the result's adapt fields are
  // zero — the flag-off day is observationally identical to pre-ISSUE-9.
  obs::Registry registry;
  CampusDayConfig config;
  config.attendees = 0;
  config.squatters = 0;
  config.metrics = &registry;
  const CampusDayResult r = run_campus_day(config);
  EXPECT_EQ(r.renegotiations, 0u);
  EXPECT_EQ(r.adapt_granted_final_bps, 0.0);
  const std::string json = snapshot_json(registry);
  EXPECT_EQ(json.find("adapt."), std::string::npos) << json;
}

}  // namespace
}  // namespace imrm::experiments
