file(REMOVE_RECURSE
  "libimrm_net.a"
)
