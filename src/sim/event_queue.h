// Priority event queue for the discrete-event simulator.
//
// Events at equal timestamps fire in insertion order (a monotonically
// increasing sequence number breaks ties), which keeps runs deterministic —
// a property every experiment in EXPERIMENTS.md relies on.
//
// Implementation: an indexed 4-ary min-heap with true in-heap deletion.
// Each heap entry is a single 128-bit key — an order-preserving bit
// transform of the timestamp in the high 64 bits, (seq << 24) | slot in the
// low 64 — so the heap comparison is one branchless unsigned compare and an
// entry move is one 16-byte store. Callbacks live in a slot array recycled
// through a free-list, so storage is bounded by the peak number of *pending*
// events, not by the total number ever scheduled (the previous lazy-deletion
// design grew its callback vector monotonically over long runs). EventIds
// carry a per-slot generation so a stale handle (fired, cancelled, or
// recycled) can never cancel an unrelated later event. Callbacks are
// small-buffer optimized (48-byte inline capture), so schedule() performs
// zero heap allocations in the common case.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/inplace_function.h"
#include "sim/time.h"

namespace imrm::sim {

/// Opaque handle to a scheduled event; used to cancel it.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Callback = InplaceFunction<void(), 48>;

  /// Schedules `f` to fire at absolute time `at`. Returns a handle usable
  /// with cancel(). Allocation-free when the capture fits inline and a
  /// recycled slot is available: the callable is constructed exactly once,
  /// directly in its slot (no intermediate Callback temporaries).
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Callback>>>
  EventId schedule(SimTime at, F&& f) {
    const std::uint32_t slot = acquire_slot();
    slots_[slot].emplace(std::forward<F>(f));
    return push_entry(at, slot);
  }

  /// Overload for a pre-built Callback (moved into the slot).
  EventId schedule(SimTime at, Callback cb);

  /// Cancels a pending event, removing it from the heap immediately.
  /// Cancelling an already-fired, already-cancelled, or unknown event is a
  /// no-op (the handle's generation no longer matches).
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; SimTime::infinity() when empty.
  [[nodiscard]] SimTime next_time() const {
    return heap_.empty() ? SimTime::infinity() : key_time(heap_.front());
  }

  /// Pops and returns the earliest event. Precondition: !empty().
  struct Fired {
    SimTime time;
    Callback callback;
  };
  Fired pop();

  /// Pops the earliest event into `out` iff one exists and its time is
  /// <= `horizon`. The simulator's drain loop uses this fused form: one
  /// integer comparison against the encoded horizon instead of an empty()
  /// check plus a decoded-time comparison per event.
  bool pop_at_or_before(SimTime horizon, Fired& out) {
    if (heap_.empty() ||
        std::uint64_t(heap_.front() >> 64) > encode_time(horizon)) {
      return false;
    }
    out = pop();
    return true;
  }

  /// Number of callback slots ever allocated. Bounded by the peak number of
  /// simultaneously pending events (slots are recycled), which the
  /// regression tests assert.
  [[nodiscard]] std::size_t slot_capacity() const { return slots_.size(); }

  /// Lifetime churn/depth statistics; maintained unconditionally (the
  /// increments ride on heap operations that already touch the same cache
  /// lines) and exported by Simulator::collect_metrics.
  struct Stats {
    std::uint64_t scheduled = 0;
    std::uint64_t cancelled = 0;
    std::size_t peak_pending = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Next FIFO tie-break sequence number (checkpoint save).
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

  /// Slots permanently retired because their per-slot generation counter
  /// saturated (see release_slot): each retired slot is excluded from the
  /// free list forever so a wrapped generation can never let a stale EventId
  /// alias a live event. Exposed for the wraparound regression test.
  [[nodiscard]] std::size_t retired_slots() const { return retired_slots_; }

  /// Test hook: fast-forwards the generation of the slot at the head of the
  /// free list, as if it had been recycled `generation` times already. The
  /// wraparound regression test uses this to reach the saturation point in
  /// a few schedule/cancel cycles instead of 2^32 of them. Requires a free
  /// slot (schedule + cancel at least once first). Never call from
  /// production code.
  void age_free_slot_for_test(std::uint32_t generation) {
    assert(free_head_ != kNoSlot && "no free slot to age");
    meta_[free_head_].generation = generation;
  }

  /// Checkpoint restore: overwrite the lifetime statistics and the sequence
  /// counter. Called AFTER the restoring harness has re-armed its pending
  /// events (re-arming bumps scheduled/peak/seq; the saved values already
  /// account for those events, so the overwrite makes the restored queue's
  /// externally visible totals identical to the uninterrupted run's).
  void restore_stats(const Stats& stats, std::uint64_t next_seq) {
    stats_ = stats;
    next_seq_ = next_seq;
  }

 private:
  // One heap entry: | encoded time (64) | seq (40) | slot (24) |.
  // seq increments per schedule, so FIFO ties are broken before the slot
  // bits can ever matter. 2^24 simultaneous events and 2^40 total schedules
  // are asserted, far beyond any simulation here.
  using HeapKey = unsigned __int128;

  static constexpr int kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;  // free-list sentinel

  // Standard order-preserving double <-> uint64 transform (flip all bits of
  // negatives, set the sign bit of non-negatives): unsigned comparison of
  // the transformed bits matches operator< on the doubles.
  static std::uint64_t encode_time(SimTime t) {
    const auto u = std::bit_cast<std::uint64_t>(t.to_seconds());
    constexpr std::uint64_t kMsb = 1ull << 63;
    return (u & kMsb) ? ~u : (u | kMsb);
  }
  static SimTime decode_time(std::uint64_t u) {
    constexpr std::uint64_t kMsb = 1ull << 63;
    u = (u & kMsb) ? (u & ~kMsb) : ~u;
    return SimTime::seconds(std::bit_cast<double>(u));
  }

  static HeapKey make_key(std::uint64_t time_bits, std::uint64_t seq,
                          std::uint32_t slot) {
    return (HeapKey(time_bits) << 64) | (seq << kSlotBits) | slot;
  }
  static std::uint32_t key_slot(HeapKey k) {
    return std::uint32_t(std::uint64_t(k)) & kSlotMask;
  }
  static SimTime key_time(HeapKey k) {
    return decode_time(std::uint64_t(k >> 64));
  }

  // Slot metadata lives apart from the (64-byte) callbacks so the sift
  // back-pointer updates touch a dense 8-byte-stride array.
  struct SlotMeta {
    std::uint32_t generation = 0;
    // Position in heap_ while pending; next free slot index while free.
    std::uint32_t link = 0;
  };

  // A slot whose generation reaches this value is retired, never recycled:
  // one more reuse would wrap the 32-bit generation back to a value an old
  // EventId may still carry, letting that stale handle cancel an unrelated
  // live event. EventIds with the sentinel generation are never issued.
  static constexpr std::uint32_t kRetiredGeneration = 0xffffffffu;

  std::uint32_t acquire_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = meta_[slot].link;
      return slot;
    }
    slots_.emplace_back();
    meta_.emplace_back();
    return std::uint32_t(slots_.size() - 1);
  }

  void release_slot(std::uint32_t slot);
  EventId push_entry(SimTime at, std::uint32_t slot);
  void remove_heap_entry(std::size_t pos);
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);

  std::vector<HeapKey> heap_;   // 4-ary min-heap of packed keys
  std::vector<Callback> slots_;
  std::vector<SlotMeta> meta_;  // parallel to slots_
  std::uint32_t free_head_ = kNoSlot;
  std::size_t retired_slots_ = 0;
  std::uint64_t next_seq_ = 0;
  Stats stats_;
};

}  // namespace imrm::sim
