file(REMOVE_RECURSE
  "libimrm_mobility.a"
)
