# Empty compiler generated dependencies file for imrm_reservation.
# This may be replaced when dependencies are built.
