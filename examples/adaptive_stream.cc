// Adaptive streaming over a time-varying wireless link: the Section 5.3
// machinery in action.
//
// Three video streams with loose bounds share a wireless cell whose
// effective capacity degrades and recovers (channel error). The distributed
// ADVERTISE/UPDATE protocol re-divides the excess bandwidth max-min fairly
// after every change; when capacity drops below the guaranteed minima, the
// affected connections are told to renegotiate.
//
//   $ ./adaptive_stream
#include <iostream>

#include "maxmin/problem.h"
#include "maxmin/protocol.h"
#include "sim/simulator.h"
#include "stats/table.h"

using namespace imrm;
using namespace imrm::maxmin;

int main() {
  std::cout << "== Adaptive streams on a fading wireless link ==\n";
  std::cout << "streams: A [200, 1400] kbps, B [200, 600] kbps, C [100, 2000] kbps\n";
  std::cout << "guaranteed minima total 500 kbps; the rest adapts max-min fairly\n\n";

  // The problem is expressed in *excess* terms: link capacity beyond the
  // sum of minima, connection demand = headroom b_max - b_min (kbps).
  const double sum_min = 200.0 + 200.0 + 100.0;
  Problem problem;
  problem.links = {{1600.0 - sum_min}};
  problem.connections = {
      {{0}, 1200.0},  // A: headroom 1400-200
      {{0}, 400.0},   // B: headroom 600-200
      {{0}, 1900.0},  // C: headroom 2000-100
  };

  sim::Simulator simulator;
  DistributedProtocol::Config config;
  config.delta = 10.0;  // ignore sub-10kbps capacity wiggles
  DistributedProtocol protocol(simulator, problem, config);
  protocol.start_all();
  protocol.run_to_quiescence();

  stats::Table table({"event", "capacity", "A (kbps)", "B (kbps)", "C (kbps)",
                      "msgs", "renegotiations"});
  auto snapshot = [&](const std::string& event, double capacity) {
    const auto& r = protocol.rates();
    table.add_row({event, stats::fmt(capacity, 0), stats::fmt(200.0 + r[0], 0),
                   stats::fmt(200.0 + r[1], 0), stats::fmt(100.0 + r[2], 0),
                   std::to_string(protocol.messages_sent()),
                   std::to_string(protocol.renegotiation_requests().size())});
  };
  snapshot("initial convergence", 1600);

  // Channel degrades: 1600 -> 1000 kbps effective.
  protocol.set_link_excess_capacity(0, 1000.0 - sum_min);
  protocol.run_to_quiescence();
  snapshot("fade to 1000 kbps", 1000);

  // Deep fade: below the sum of guaranteed minima -> renegotiation requests.
  protocol.set_link_excess_capacity(0, 400.0 - sum_min);
  protocol.run_to_quiescence();
  snapshot("deep fade to 400 kbps", 400);

  // Channel recovers fully.
  protocol.set_link_excess_capacity(0, 1600.0 - sum_min);
  protocol.run_to_quiescence();
  snapshot("recovery to 1600 kbps", 1600);

  // Stream B ends; its share is re-offered to A and C.
  protocol.remove_connection(1);
  protocol.run_to_quiescence();
  const auto& r = protocol.rates();
  table.add_row({"B departs", "1600", stats::fmt(200.0 + r[0], 0), "-",
                 stats::fmt(100.0 + r[2], 0), std::to_string(protocol.messages_sent()),
                 std::to_string(protocol.renegotiation_requests().size())});

  table.print(std::cout);
  std::cout << "\nB is demand-limited at 600 kbps whenever capacity allows; A and C\n"
               "split the rest equally until A hits its own 1400 kbps ceiling.\n";
  return 0;
}
