file(REMOVE_RECURSE
  "CMakeFiles/admission_packet_integration_test.dir/admission_packet_integration_test.cc.o"
  "CMakeFiles/admission_packet_integration_test.dir/admission_packet_integration_test.cc.o.d"
  "admission_packet_integration_test"
  "admission_packet_integration_test.pdb"
  "admission_packet_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admission_packet_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
