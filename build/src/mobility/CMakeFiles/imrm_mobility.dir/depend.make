# Empty dependencies file for imrm_mobility.
# This may be replaced when dependencies are built.
