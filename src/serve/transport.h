// Transport seam between the admission service and its drivers (ISSUE 8).
//
// The service loop and the load driver talk in whole frames (see
// serve/codec.h); how the frames move is behind these two interfaces:
//
//   * RingTransport   — an in-process SPSC ring pair. Deterministic when the
//     driver and the service interleave on one thread (virtual pacing), and
//     a lock-free two-thread path for wall-clock benchmarks.
//   * Socket transports — a local AF_UNIX listener for real out-of-process
//     drivers (scenario_cli serve / scenario_cli drive --transport socket).
//
// A transport never interprets payloads; it moves opaque byte frames. The
// `client` field of an Envelope routes the reply back to whichever peer sent
// the request (the socket transport runs one assembler per connection).
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace imrm::serve {

/// One inbound request frame plus the opaque id of the client that sent it.
struct Envelope {
  std::uint64_t client = 0;
  std::vector<std::uint8_t> frame;
};

class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what) : std::runtime_error(what) {}
};

/// Service-side endpoint: pull requests, push replies.
class ServerTransport {
 public:
  virtual ~ServerTransport() = default;

  /// Fills `env` with the next inbound request. Returns false when none was
  /// available within `wait` (zero = poll without blocking).
  virtual bool next_request(Envelope& env, std::chrono::microseconds wait) = 0;

  /// Sends a reply frame to the client named by `client`. A reply to a
  /// vanished client (closed connection) is silently dropped.
  virtual void send_reply(std::uint64_t client, std::vector<std::uint8_t> frame) = 0;

  /// True once no further requests can ever arrive (every client closed and
  /// all buffered frames were consumed). The socket listener never finishes
  /// on its own — its serve loop ends on a Shutdown request or deadline.
  [[nodiscard]] virtual bool finished() const = 0;
};

/// Driver-side endpoint: push requests, pull replies.
class ClientTransport {
 public:
  virtual ~ClientTransport() = default;

  /// Sends a request frame. Returns false when the transport cannot accept
  /// it right now (ring full); the open-loop driver counts that as
  /// transport backpressure, it does not retry.
  virtual bool send_request(std::vector<std::uint8_t> frame) = 0;

  /// Fills `frame` with the next reply. False when none arrived in `wait`.
  virtual bool next_reply(std::vector<std::uint8_t>& frame,
                          std::chrono::microseconds wait) = 0;

  /// Signals that no further requests will be sent (lets an in-process
  /// server drain and finish).
  virtual void close() = 0;
};

}  // namespace imrm::serve
