#include "maxmin/advertised_rate.h"

#include <algorithm>
#include <cassert>

namespace imrm::maxmin {

double AdvertisedRate::evaluate(const std::vector<double>& recorded_rates,
                                const std::vector<bool>& restricted) const {
  assert(recorded_rates.size() == restricted.size());
  const std::size_t n_total = recorded_rates.size();
  if (n_total == 0) return excess_capacity_;

  double restricted_sum = 0.0;   // b'_R
  double restricted_max = 0.0;   // max_{i in R} b'_{R,i}
  std::size_t n_restricted = 0;  // N_R
  for (std::size_t i = 0; i < n_total; ++i) {
    if (!restricted[i]) continue;
    restricted_sum += recorded_rates[i];
    restricted_max = std::max(restricted_max, recorded_rates[i]);
    ++n_restricted;
  }

  if (n_restricted == n_total) {
    // Everyone bottlenecked elsewhere: offer the leftover plus the largest
    // restricted share (that connection could grow into the slack here).
    return excess_capacity_ - restricted_sum + restricted_max;
  }
  return (excess_capacity_ - restricted_sum) / double(n_total - n_restricted);
}

std::vector<bool> AdvertisedRate::marking(const std::vector<double>& recorded_rates,
                                          double mu) {
  std::vector<bool> restricted(recorded_rates.size());
  for (std::size_t i = 0; i < recorded_rates.size(); ++i) {
    restricted[i] = recorded_rates[i] <= mu;
  }
  return restricted;
}

double AdvertisedRate::recompute(const std::vector<double>& recorded_rates) {
  // First pass: restricted set relative to the previous advertised rate.
  std::vector<bool> restricted = marking(recorded_rates, advertised_);
  double mu = evaluate(recorded_rates, restricted);

  // Re-mark: previously restricted connections whose recorded rate now
  // exceeds mu become unrestricted; the paper shows a single re-calculation
  // suffices after this re-marking.
  std::vector<bool> remarked = restricted;
  bool changed = false;
  for (std::size_t i = 0; i < remarked.size(); ++i) {
    if (remarked[i] && recorded_rates[i] > mu) {
      remarked[i] = false;
      changed = true;
    }
  }
  if (changed) mu = evaluate(recorded_rates, remarked);

  advertised_ = mu;
  return mu;
}

double AdvertisedRate::fixed_point(const std::vector<double>& recorded_rates) const {
  // Iterate marking -> evaluate until the marking stabilizes. Guaranteed to
  // terminate: the restricted set shrinks monotonically once seeded with the
  // all-restricted marking's evaluation.
  std::vector<bool> restricted(recorded_rates.size(), true);
  double mu = evaluate(recorded_rates, restricted);
  for (std::size_t iter = 0; iter <= recorded_rates.size() + 1; ++iter) {
    std::vector<bool> next = marking(recorded_rates, mu);
    if (next == restricted) break;
    restricted = std::move(next);
    mu = evaluate(recorded_rates, restricted);
  }
  return mu;
}

}  // namespace imrm::maxmin
