#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "obs/json.h"

namespace imrm::obs {

PhaseId Profiler::intern(std::string_view name) {
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].name == name) return PhaseId(i);
  }
  phases_.push_back(Phase{std::string(name), 0, 0, 0, 0, 0});
  return PhaseId(phases_.size() - 1);
}

ProfileSnapshot Profiler::snapshot() const {
  ProfileSnapshot snap;
  snap.phases.reserve(phases_.size());
  for (const Phase& p : phases_) {
    if (p.calls == 0) continue;
    snap.phases.push_back({p.name, p.calls, p.total_ns, p.self_ns, p.min_ns, p.max_ns});
  }
  std::sort(snap.phases.begin(), snap.phases.end(),
            [](const PhaseSample& a, const PhaseSample& b) { return a.name < b.name; });
  return snap;
}

void ProfileSnapshot::merge(const ProfileSnapshot& other) {
  for (const PhaseSample& theirs : other.phases) {
    const auto it = std::lower_bound(
        phases.begin(), phases.end(), theirs.name,
        [](const PhaseSample& s, const std::string& n) { return s.name < n; });
    if (it != phases.end() && it->name == theirs.name) {
      if (it->calls == 0) {
        it->min_ns = theirs.min_ns;
        it->max_ns = theirs.max_ns;
      } else if (theirs.calls > 0) {
        it->min_ns = std::min(it->min_ns, theirs.min_ns);
        it->max_ns = std::max(it->max_ns, theirs.max_ns);
      }
      it->calls += theirs.calls;
      it->total_ns += theirs.total_ns;
      it->self_ns += theirs.self_ns;
    } else {
      phases.insert(it, theirs);
    }
  }
  if (shards.empty()) {
    shards = other.shards;
    barriers = other.barriers;
    windows = other.windows;
    boundary_messages = other.boundary_messages;
    boundary_bytes = other.boundary_bytes;
    profiled_wall_ns = other.profiled_wall_ns;
    window_ns = other.window_ns;
    messages_per_barrier = other.messages_per_barrier;
    batch_windows = other.batch_windows;
  }
}

namespace {

void write_histogram_json(std::ostream& os, const HistogramSample& h) {
  os << "{\"count\":";
  json::write_number(os, h.count);
  os << ",\"sum\":";
  json::write_number(os, h.sum);
  os << ",\"min\":";
  json::write_number(os, h.min);
  os << ",\"max\":";
  json::write_number(os, h.max);
  os << ",\"p50\":";
  json::write_number(os, h.percentile(0.50));
  os << ",\"p90\":";
  json::write_number(os, h.percentile(0.90));
  os << ",\"p99\":";
  json::write_number(os, h.percentile(0.99));
  os << '}';
}

/// Pretty ns for the human table: pick the unit that keeps 3 significant
/// digits readable.
std::string fmt_ns(double ns) {
  const char* unit = "ns";
  double v = ns;
  if (v >= 1e9) {
    v /= 1e9;
    unit = "s";
  } else if (v >= 1e6) {
    v /= 1e6;
    unit = "ms";
  } else if (v >= 1e3) {
    v /= 1e3;
    unit = "us";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), v >= 100 ? "%.0f%s" : "%.2f%s", v, unit);
  return buf;
}

}  // namespace

void ProfileSnapshot::write_json(std::ostream& os) const {
  os << "{\"clock\":\"steady\",\"phases\":{";
  json::Separator sep;
  for (const PhaseSample& p : phases) {
    sep.write(os);
    json::write_string(os, p.name);
    os << ":{\"calls\":";
    json::write_number(os, p.calls);
    os << ",\"total_ns\":";
    json::write_number(os, p.total_ns);
    os << ",\"self_ns\":";
    json::write_number(os, p.self_ns);
    os << ",\"min_ns\":";
    json::write_number(os, p.min_ns);
    os << ",\"max_ns\":";
    json::write_number(os, p.max_ns);
    os << '}';
  }
  os << '}';
  if (!shards.empty()) {
    os << ",\"barriers\":";
    json::write_number(os, barriers);
    os << ",\"windows\":";
    json::write_number(os, windows);
    os << ",\"profiled_wall_ns\":";
    json::write_number(os, profiled_wall_ns);
    os << ",\"boundary_messages\":";
    json::write_number(os, boundary_messages);
    os << ",\"boundary_bytes\":";
    json::write_number(os, boundary_bytes);
    os << ",\"shards\":[";
    sep = {};
    for (const ShardLaneSample& lane : shards) {
      sep.write(os);
      const double span =
          double(lane.busy_ns) + double(lane.barrier_wait_ns) + double(lane.idle_ns);
      os << "{\"busy_ns\":";
      json::write_number(os, lane.busy_ns);
      os << ",\"barrier_wait_ns\":";
      json::write_number(os, lane.barrier_wait_ns);
      os << ",\"idle_ns\":";
      json::write_number(os, lane.idle_ns);
      os << ",\"busy_frac\":";
      json::write_number(os, span > 0 ? double(lane.busy_ns) / span : 0.0);
      os << ",\"barrier_wait_frac\":";
      json::write_number(os, span > 0 ? double(lane.barrier_wait_ns) / span : 0.0);
      os << ",\"idle_frac\":";
      json::write_number(os, span > 0 ? double(lane.idle_ns) / span : 0.0);
      os << ",\"straggler_windows\":";
      json::write_number(os, lane.straggler_windows);
      os << '}';
    }
    os << "],\"window_ns\":";
    write_histogram_json(os, window_ns);
    os << ",\"messages_per_barrier\":";
    write_histogram_json(os, messages_per_barrier);
    os << ",\"batch_windows\":";
    write_histogram_json(os, batch_windows);
  }
  os << '}';
}

void ProfileSnapshot::write_table(std::ostream& os) const {
  os << "profile (wall clock, steady):\n";
  std::vector<const PhaseSample*> ranked;
  ranked.reserve(phases.size());
  for (const PhaseSample& p : phases) ranked.push_back(&p);
  std::sort(ranked.begin(), ranked.end(), [](const PhaseSample* a, const PhaseSample* b) {
    return a->total_ns != b->total_ns ? a->total_ns > b->total_ns : a->name < b->name;
  });
  if (!ranked.empty()) {
    os << "  " << std::left << std::setw(32) << "phase" << std::right << std::setw(10)
       << "calls" << std::setw(10) << "total" << std::setw(10) << "self" << std::setw(10)
       << "mean" << std::setw(10) << "max" << '\n';
    for (const PhaseSample* p : ranked) {
      os << "  " << std::left << std::setw(32) << p->name << std::right << std::setw(10)
         << p->calls << std::setw(10) << fmt_ns(double(p->total_ns)) << std::setw(10)
         << fmt_ns(double(p->self_ns)) << std::setw(10)
         << fmt_ns(p->calls ? double(p->total_ns) / double(p->calls) : 0.0)
         << std::setw(10) << fmt_ns(double(p->max_ns)) << '\n';
    }
  }
  if (!shards.empty()) {
    os << "  sharded execution: " << windows << " windows over " << barriers
       << " dispatches, " << boundary_messages << " boundary messages ("
       << boundary_bytes << " envelope bytes)\n";
    os << "  " << std::left << std::setw(8) << "shard" << std::right << std::setw(10)
       << "busy" << std::setw(10) << "barrier" << std::setw(10) << "idle" << std::setw(8)
       << "busy%" << std::setw(12) << "straggler\n";
    for (std::size_t w = 0; w < shards.size(); ++w) {
      const ShardLaneSample& lane = shards[w];
      const double span =
          double(lane.busy_ns) + double(lane.barrier_wait_ns) + double(lane.idle_ns);
      char pct[16];
      std::snprintf(pct, sizeof(pct), "%.1f",
                    span > 0 ? 100.0 * double(lane.busy_ns) / span : 0.0);
      os << "  " << std::left << std::setw(8) << w << std::right << std::setw(10)
         << fmt_ns(double(lane.busy_ns)) << std::setw(10)
         << fmt_ns(double(lane.barrier_wait_ns)) << std::setw(10)
         << fmt_ns(double(lane.idle_ns)) << std::setw(8) << pct << std::setw(11)
         << lane.straggler_windows << '\n';
    }
    if (window_ns.count > 0) {
      os << "  window wall: p50=" << fmt_ns(window_ns.percentile(0.5))
         << " p99=" << fmt_ns(window_ns.percentile(0.99))
         << "  messages/exchange: p50=" << messages_per_barrier.percentile(0.5)
         << " p99=" << messages_per_barrier.percentile(0.99) << '\n';
    }
    if (batch_windows.count > 0) {
      os << "  windows/dispatch: p50=" << batch_windows.percentile(0.5)
         << " p99=" << batch_windows.percentile(0.99) << '\n';
    }
  }
}

}  // namespace imrm::obs
