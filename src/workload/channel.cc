#include "workload/channel.h"

namespace imrm::workload {

void GilbertElliottChannel::start(sim::SimTime horizon) {
  schedule_transition(horizon);
}

void GilbertElliottChannel::schedule_transition(sim::SimTime horizon) {
  const double mean =
      (good_ ? config_.mean_good : config_.mean_bad).to_seconds();
  const sim::SimTime at =
      simulator_->now() + sim::Duration::seconds(rng_.exponential_mean(mean));
  if (at > horizon) return;
  simulator_->at(at, [this, horizon] {
    good_ = !good_;
    ++transitions_;
    if (on_change_) on_change_(current_capacity());
    schedule_transition(horizon);
  });
}

}  // namespace imrm::workload
