# Empty dependencies file for bench_ablation_bottleneck_sets.
# This may be replaced when dependencies are built.
