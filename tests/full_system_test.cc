// Full-system integration: the backbone environment under a walking
// population AND a fading wireless channel for a simulated half-day. This
// is the "everything at once" test: Table 2 admission, multicast warm-up,
// profile learning, advance reservation, handoff re-routing, max-min
// adaptation reacting to Gilbert-Elliott capacity changes, and drop
// accounting — with end-of-day sanity assertions.
#include <gtest/gtest.h>

#include <memory>

#include "core/network_environment.h"
#include "mobility/floorplan.h"
#include "mobility/movement.h"
#include "workload/channel.h"

namespace imrm::core {
namespace {

using qos::kbps;
using sim::Duration;
using sim::SimTime;

TEST(FullSystem, HalfDayCampusUnderFading) {
  sim::Simulator simulator;
  BackboneConfig config;
  config.static_threshold = Duration::minutes(3);
  NetworkEnvironment env(mobility::fig4_environment(), simulator, config);
  const auto cells = mobility::fig4_cells(env.map());

  // Population: 10 walkers with adaptive connections; half are office
  // regulars (occupants of A or B).
  qos::QosRequest request;
  request.bandwidth = {kbps(32), kbps(256)};
  request.delay_bound = 10.0;
  request.jitter_bound = 10.0;
  request.loss_bound = 0.05;
  request.traffic = {8000.0, 8000.0};

  sim::Rng rng(2026);
  std::vector<net::PortableId> population;
  for (int i = 0; i < 10; ++i) {
    std::optional<mobility::CellId> home;
    if (i % 2 == 0) home = (i % 4 == 0) ? cells.a : cells.b;
    const auto p = env.add_portable(cells.c, home);
    ASSERT_TRUE(env.open_connection(p, request)) << i;
    population.push_back(p);
  }

  const SimTime horizon = SimTime::hours(4);

  // Walkers follow the calibrated student pattern.
  const mobility::TransitionTable table =
      mobility::fig4_transition_table(env.map(), mobility::fig4_student_weights());
  struct Walker {
    NetworkEnvironment* env;
    const mobility::TransitionTable* table;
    sim::Rng rng;
    SimTime horizon;
    void step(net::PortableId p) {
      auto& simulator = env->mobility().simulator();
      const auto at = simulator.now() + Duration::minutes(rng.exponential_mean(4.0));
      if (at > horizon) return;
      simulator.at(at, [this, p] {
        const auto& me = env->mobility().portable(p);
        const auto next =
            table->sample(env->map(), me.previous_cell, me.current_cell, rng);
        env->handoff(p, next);
        step(p);
      });
    }
  };
  auto walker = std::make_shared<Walker>(Walker{&env, &table, rng.fork(), horizon});
  for (auto p : population) walker->step(p);

  // Corridor D's wireless link fades between 1.6 Mbps and 0.6 Mbps.
  workload::GilbertElliottChannel::Config ch;
  ch.good_capacity = qos::mbps(1.6);
  ch.bad_capacity = qos::mbps(0.6);
  ch.mean_good = Duration::minutes(4);
  ch.mean_bad = Duration::seconds(45);
  workload::GilbertElliottChannel channel(
      simulator, ch, rng.fork(), [&](qos::BitsPerSecond capacity) {
        env.network_mut().link(env.wireless_link(cells.d)).set_capacity(capacity);
        env.adapt();
      });
  channel.start(horizon);

  // Periodic re-classification + adaptation (the Figure 1 loop).
  simulator.every(Duration::minutes(1), horizon, [&] { env.adapt(); });

  simulator.run();

  const auto& s = env.stats();
  // The day actually happened.
  EXPECT_GT(s.handoffs, 200u);
  EXPECT_GT(channel.transitions(), 20u);
  // Most handoffs warmed by multicast branches.
  EXPECT_GT(double(s.warm_handoffs), 0.9 * double(s.handoffs - s.handoff_drops));
  // Advance reservations were placed and a solid share were consumed.
  EXPECT_GT(s.reservations_placed, 100u);
  EXPECT_GT(double(s.reservations_consumed), 0.5 * double(s.reservations_placed) * 0.5);
  // Drops are possible under fading but must stay a small fraction.
  EXPECT_LT(double(s.handoff_drops), 0.1 * double(s.handoffs));

  // Final-state invariants across every wireless link.
  for (const auto& cell : env.map().cells()) {
    const auto& link = env.network().link(env.wireless_link(cell.id));
    double allocated = 0.0;
    for (const auto& [id, share] : link.shares()) {
      EXPECT_GE(share.allocated, share.bounds.b_min - 1e-6);
      EXPECT_LE(share.allocated, share.bounds.b_max + 1e-6);
      allocated += share.allocated;
    }
    EXPECT_LE(allocated, link.capacity() + 1e-6) << cell.name;
    EXPECT_GE(link.advance_reserved(), -1e-6);
  }

  // Teardown leaves a clean network.
  for (auto p : population) {
    if (env.has_connection(p)) env.close_connection(p);
  }
  EXPECT_EQ(env.network().connection_count(), 0u);
}

TEST(FullSystem, ThreeFloorBuildingAtScale) {
  // 3 floors x 16 cells with one profile-server zone per floor; 36 walkers
  // carrying connections for two simulated hours. Checks that the whole
  // pipeline scales and the multi-zone profile plumbing stays consistent.
  sim::Simulator simulator;
  BackboneConfig config;
  config.zones = 3;
  mobility::BuildingConfig building;
  building.floors = 3;
  NetworkEnvironment env(mobility::building_environment(building), simulator, config);

  EXPECT_GE(env.map().size(), 45u);
  EXPECT_EQ(env.universe().zone_count(), 3u);

  qos::QosRequest request;
  request.bandwidth = {kbps(16), kbps(64)};
  request.delay_bound = 30.0;
  request.jitter_bound = 30.0;
  request.loss_bound = 0.1;
  request.traffic = {8000.0, 8000.0};

  sim::Rng rng(5);
  std::vector<net::PortableId> population;
  for (int i = 0; i < 36; ++i) {
    const mobility::CellId start{
        static_cast<net::CellId::underlying>(std::size_t(i) % env.map().size())};
    const auto p = env.add_portable(start);
    if (env.open_connection(p, request)) population.push_back(p);
  }
  EXPECT_GT(population.size(), 30u);

  struct Walker {
    NetworkEnvironment* env;
    sim::Rng rng;
    void step(net::PortableId p) {
      auto& simulator = env->mobility().simulator();
      const auto at = simulator.now() + Duration::minutes(rng.exponential_mean(3.0));
      if (at > SimTime::hours(2)) return;
      simulator.at(at, [this, p] {
        const auto& me = env->mobility().portable(p);
        const auto& neighbors = env->map().cell(me.current_cell).neighbors;
        env->handoff(p, neighbors[std::size_t(rng.uniform_int(0, int(neighbors.size()) - 1))]);
        step(p);
      });
    }
  };
  auto walker = std::make_shared<Walker>(Walker{&env, rng.fork()});
  for (auto p : population) walker->step(p);
  simulator.every(Duration::minutes(2), SimTime::hours(2), [&] { env.adapt(); });
  simulator.run();

  const auto& s = env.stats();
  EXPECT_GT(s.handoffs, 500u);
  EXPECT_GT(env.universe().migrations(), 50u);  // floors crossed regularly
  EXPECT_LT(double(s.handoff_drops), 0.05 * double(s.handoffs));
  // Wireless invariants on every cell of every floor.
  for (const auto& cell : env.map().cells()) {
    const auto& link = env.network().link(env.wireless_link(cell.id));
    EXPECT_LE(link.sum_b_min(), link.capacity() + 1e-6) << cell.name;
    EXPECT_GE(link.advance_reserved(), -1e-6) << cell.name;
  }
}

TEST(FullSystem, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Simulator simulator;
    BackboneConfig config;
    NetworkEnvironment env(mobility::fig4_environment(), simulator, config);
    const auto cells = mobility::fig4_cells(env.map());
    qos::QosRequest request;
    request.bandwidth = {kbps(32), kbps(128)};
    request.delay_bound = 10.0;
    request.jitter_bound = 10.0;
    request.loss_bound = 0.05;
    request.traffic = {8000.0, 8000.0};

    sim::Rng rng(77);
    const mobility::TransitionTable table =
        mobility::fig4_transition_table(env.map(), mobility::fig4_faculty_weights());
    std::vector<net::PortableId> population;
    for (int i = 0; i < 4; ++i) {
      const auto p = env.add_portable(cells.c, cells.a);
      env.open_connection(p, request);
      population.push_back(p);
    }
    struct Walker {
      NetworkEnvironment* env;
      const mobility::TransitionTable* table;
      sim::Rng rng;
      void step(net::PortableId p) {
        auto& simulator = env->mobility().simulator();
        const auto at = simulator.now() + Duration::minutes(rng.exponential_mean(3.0));
        if (at > SimTime::hours(1)) return;
        simulator.at(at, [this, p] {
          const auto& me = env->mobility().portable(p);
          env->handoff(p, table->sample(env->map(), me.previous_cell, me.current_cell,
                                        rng));
          step(p);
        });
      }
    };
    auto walker = std::make_shared<Walker>(Walker{&env, &table, rng.fork()});
    for (auto p : population) walker->step(p);
    simulator.run();
    return std::tuple{env.stats().handoffs, env.stats().handoff_drops,
                      env.stats().reservations_consumed,
                      env.stats().total_handoff_latency_s};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace imrm::core
