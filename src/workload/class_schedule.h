// Class / meeting attendance workload (the Figure 5 experiment).
//
// Substitution documented in DESIGN.md: the paper measured real classes of
// 35 (lecture) and 55 (laboratory) students; we synthesize the same shape —
// arrivals aggregated in a ~10-minute window around the class start,
// departures in a ~5-minute window after the end, plus corridor pass-by
// traffic of users who walk past the classroom without entering.
#pragma once

#include <vector>

#include "profiles/booking.h"
#include "sim/random.h"
#include "sim/time.h"

namespace imrm::workload {

struct AttendeePlan {
  sim::SimTime arrive_corridor;  // appears in the corridor outside
  sim::SimTime enter_room;       // handoff corridor -> room
  sim::SimTime leave_room;       // handoff room -> corridor
  sim::SimTime depart;           // leaves the system
};

struct PassByPlan {
  sim::SimTime appear;   // enters the corridor cell
  sim::SimTime leave;    // walks on (handoff to the next corridor cell)
};

struct ClassScheduleConfig {
  profiles::Meeting meeting;                      // T_s, T_a, N_m
  sim::Duration arrival_window_before = sim::Duration::minutes(8);
  sim::Duration arrival_window_after = sim::Duration::minutes(2);
  sim::Duration departure_window = sim::Duration::minutes(5);
  sim::Duration corridor_lead = sim::Duration::minutes(2);  // corridor dwell before entering
  /// Pass-by corridor traffic: walkers per minute during the pre-class
  /// window (Figure 5.b/d show corridor activity exceeding room entries).
  double passby_per_minute = 2.0;
  sim::Duration passby_dwell = sim::Duration::minutes(1);
};

struct ClassWorkload {
  std::vector<AttendeePlan> attendees;
  std::vector<PassByPlan> passers;
};

/// Draws one realization of the class workload.
[[nodiscard]] ClassWorkload generate_class_workload(const ClassScheduleConfig& config,
                                                    sim::Rng& rng);

}  // namespace imrm::workload
