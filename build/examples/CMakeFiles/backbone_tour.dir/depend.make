# Empty dependencies file for backbone_tour.
# This may be replaced when dependencies are built.
