file(REMOVE_RECURSE
  "CMakeFiles/bench_campus_policies.dir/bench_campus_policies.cc.o"
  "CMakeFiles/bench_campus_policies.dir/bench_campus_policies.cc.o.d"
  "bench_campus_policies"
  "bench_campus_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_campus_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
