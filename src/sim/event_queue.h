// Priority event queue for the discrete-event simulator.
//
// Events at equal timestamps fire in insertion order (a monotonically
// increasing sequence number breaks ties), which keeps runs deterministic —
// a property every experiment in EXPERIMENTS.md relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace imrm::sim {

/// Opaque handle to a scheduled event; used to cancel it.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` to fire at absolute time `at`. Returns a handle usable
  /// with cancel().
  EventId schedule(SimTime at, Callback cb);

  /// Cancels a pending event. Cancelling an already-fired or unknown event is
  /// a no-op (lazy deletion: the entry stays queued but is skipped).
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest pending event; SimTime::infinity() when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Pops and returns the earliest event. Precondition: !empty().
  struct Fired {
    SimTime time;
    Callback callback;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    // Ordering for std::priority_queue (max-heap): invert so earliest first.
    bool operator<(const Entry& rhs) const {
      if (time != rhs.time) return time > rhs.time;
      return seq > rhs.seq;
    }
  };

  void skip_cancelled() const;

  mutable std::priority_queue<Entry> heap_;
  // Callbacks stored out-of-band keyed by id so cancel() is O(1).
  std::vector<Callback> callbacks_;
  std::vector<bool> cancelled_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace imrm::sim
