file(REMOVE_RECURSE
  "CMakeFiles/imrm_trace.dir/trace.cc.o"
  "CMakeFiles/imrm_trace.dir/trace.cc.o.d"
  "libimrm_trace.a"
  "libimrm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imrm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
