#include "experiments/twocell.h"

#include <array>
#include <cassert>
#include <optional>

#include "obs/metrics.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace imrm::experiments {

namespace {

class TwoCellSim {
 public:
  explicit TwoCellSim(const TwoCellConfig& config)
      : config_(config), rng_(config.seed) {
    std::vector<reservation::TypeParams> types;
    for (const TwoCellType& t : config_.types) {
      types.push_back({t.bandwidth_units, t.mean_holding});
    }
    reservation::ProbabilisticReservation::Config pc;
    pc.capacity_units = config_.capacity_units;
    pc.window = config_.window;
    pc.p_qos = config_.p_qos;
    pc.handoff_prob = config_.handoff_prob;
    model_.emplace(pc, std::move(types));
    counts_[0].assign(config_.types.size(), 0);
    counts_[1].assign(config_.types.size(), 0);
    // Only fork a probe stream when faults are on: an untouched rng_ keeps
    // fault-free runs byte-identical to pre-fault builds.
    if (config_.faults.enabled()) probe_.emplace(config_.faults, rng_.fork());
  }

  TwoCellResult run() {
    if (config_.tracer) simulator_.set_tracer(config_.tracer);
    if (probe_ && config_.metrics) probe_->bind_metrics(config_.metrics);
    const auto horizon = sim::SimTime::seconds(config_.duration);
    for (int cell = 0; cell < 2; ++cell) {
      for (std::size_t type = 0; type < config_.types.size(); ++type) {
        schedule_arrival(cell, type);
      }
    }
    simulator_.run_until(horizon);
    if (config_.metrics) {
      obs::Registry& m = *config_.metrics;
      simulator_.collect_metrics(m);
      m.counter("twocell.new_attempts").add(result_.new_attempts);
      m.counter("twocell.new_blocked").add(result_.new_blocked);
      m.counter("twocell.handoff_attempts").add(result_.handoff_attempts);
      m.counter("twocell.handoff_dropped").add(result_.handoff_dropped);
    }
    return result_;
  }

 private:
  [[nodiscard]] bool measuring() const {
    return simulator_.now().to_seconds() >= config_.warmup;
  }

  [[nodiscard]] int used_units(int cell) const {
    int used = 0;
    for (std::size_t i = 0; i < config_.types.size(); ++i) {
      used += counts_[cell][i] * config_.types[i].bandwidth_units;
    }
    return used;
  }

  [[nodiscard]] bool admit_new(int cell, std::size_t type) const {
    const int b = config_.types[type].bandwidth_units;
    switch (config_.rule) {
      case AdmissionRule::kProbabilistic:
        return model_->admit_new(type, counts_[cell], counts_[1 - cell]);
      case AdmissionRule::kStaticGuard:
        return used_units(cell) + b <=
               int(double(config_.capacity_units) * (1.0 - config_.guard_fraction));
      case AdmissionRule::kNoReservation:
        return used_units(cell) + b <= config_.capacity_units;
    }
    return false;
  }

  /// Handoffs only need to physically fit: the guard band / probabilistic
  /// reservation exists precisely so they can.
  [[nodiscard]] bool admit_handoff(int cell, std::size_t type) const {
    return used_units(cell) + config_.types[type].bandwidth_units <=
           config_.capacity_units;
  }

  void schedule_arrival(int cell, std::size_t type) {
    const double gap = rng_.exponential_rate(config_.types[type].arrival_rate);
    simulator_.after(sim::Duration::seconds(gap), [this, cell, type] {
      if (measuring()) ++result_.new_attempts;
      // A lost admission probe degrades to a rejection (never a hang).
      if (probe_signaling() && admit_new(cell, type)) {
        ++counts_[cell][type];
        schedule_departure(cell, type);
      } else if (measuring()) {
        ++result_.new_blocked;
      }
      schedule_arrival(cell, type);
    });
  }

  void schedule_departure(int cell, std::size_t type) {
    const double hold = rng_.exponential_mean(config_.types[type].mean_holding);
    simulator_.after(sim::Duration::seconds(hold), [this, cell, type] {
      // The connection leaves this cell; with probability h it hands off to
      // the neighbor, otherwise it terminates.
      assert(counts_[cell][type] > 0);
      --counts_[cell][type];
      if (!rng_.bernoulli(config_.handoff_prob)) return;
      const int other = 1 - cell;
      if (measuring()) ++result_.handoff_attempts;
      if (probe_signaling() && admit_handoff(other, type)) {
        ++counts_[other][type];
        schedule_departure(other, type);
      } else if (measuring()) {
        ++result_.handoff_dropped;
      }
    });
  }

  [[nodiscard]] bool probe_signaling() { return !probe_ || probe_->attempt(); }

  TwoCellConfig config_;
  sim::Rng rng_;
  sim::Simulator simulator_;
  std::optional<fault::UnreliableCall> probe_;
  std::optional<reservation::ProbabilisticReservation> model_;
  std::array<std::vector<int>, 2> counts_;
  TwoCellResult result_;
};

}  // namespace

TwoCellResult run_twocell(const TwoCellConfig& config) {
  return TwoCellSim(config).run();
}

}  // namespace imrm::experiments
