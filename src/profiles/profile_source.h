// Read-side interface over profile storage: the three-level predictor only
// needs lookups, and both the single-zone ProfileServer and the multi-zone
// Universe can serve them.
#pragma once

#include "net/ids.h"

namespace imrm::profiles {

class PortableProfile;
class CellProfile;

class ProfileSource {
 public:
  virtual ~ProfileSource() = default;
  [[nodiscard]] virtual const PortableProfile* portable_profile(
      net::PortableId portable) const = 0;
  [[nodiscard]] virtual const CellProfile* cell_profile(net::CellId cell) const = 0;
};

}  // namespace imrm::profiles
