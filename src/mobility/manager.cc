#include "mobility/manager.h"

#include <cassert>

namespace imrm::mobility {

PortableId MobilityManager::add_portable(CellId start) {
  const PortableId id{static_cast<PortableId::underlying>(portables_.size())};
  Portable p;
  p.id = id;
  p.current_cell = start;
  p.entered_cell = simulator_->now();
  portables_.push_back(p);
  return id;
}

void MobilityManager::move(PortableId id, CellId to) {
  Portable& p = portable(id);
  assert(map_->cell(p.current_cell).is_neighbor(to) &&
         "handoffs only occur between neighboring cells");

  HandoffEvent event;
  event.portable = id;
  event.from = p.current_cell;
  event.to = to;
  event.prev_of_from = p.previous_cell;
  event.time = simulator_->now();

  p.previous_cell = p.current_cell;
  p.current_cell = to;
  p.entered_cell = simulator_->now();

  for (const HandoffListener& listener : listeners_) listener(event);
}

std::vector<PortableId> MobilityManager::portables_in(CellId cell) const {
  std::vector<PortableId> out;
  for (const Portable& p : portables_) {
    if (p.current_cell == cell) out.push_back(p.id);
  }
  return out;
}

}  // namespace imrm::mobility
