// Tests for the wall-clock profiler (ISSUE 7): interning, scoped phase
// attribution with self-time, external record(), snapshot/merge semantics,
// the disabled and overflow paths, and the schema-v2 report boundary (the
// `profile` block appears exactly when profiling produced data).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/profiler.h"
#include "obs/report.h"

using namespace imrm;
using obs::PhaseId;
using obs::Profiler;
using obs::ProfileSnapshot;

namespace {

// Burns wall time until the steady clock has visibly advanced, so scoped
// durations are strictly positive without sleeping.
void spin_at_least(std::uint64_t ns) {
  const std::uint64_t start = Profiler::now_ns();
  while (Profiler::now_ns() - start < ns) {
  }
}

std::string report_json(const obs::RunReport& report) {
  std::ostringstream os;
  report.write_json(os);
  return os.str();
}

}  // namespace

TEST(Profiler, InternIsIdempotentAndDense) {
  Profiler profiler;
  const PhaseId a = profiler.intern("alpha");
  const PhaseId b = profiler.intern("beta");
  EXPECT_EQ(profiler.intern("alpha"), a);
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(profiler.phase_count(), 2u);
  EXPECT_EQ(profiler.name_of(a), "alpha");
}

TEST(Profiler, StartsDisabledAndRecordsNothing) {
  Profiler profiler;
  EXPECT_FALSE(profiler.enabled());
  const PhaseId p = profiler.intern("p");
  profiler.begin(p);
  spin_at_least(1000);
  profiler.end(p);
  profiler.record(p, 12345);
  EXPECT_TRUE(profiler.snapshot().empty());
}

TEST(Profiler, EnabledTracksEnablementOnlyWhenCompiledIn) {
  Profiler profiler;
  profiler.set_enabled(true);
  EXPECT_EQ(profiler.enabled(), Profiler::compiled_in());
  profiler.set_enabled(false);
  EXPECT_FALSE(profiler.enabled());
}

#if IMRM_PROFILING

TEST(Profiler, ScopeAttributesSelfTimeExactly) {
  Profiler profiler;
  profiler.set_enabled(true);
  const PhaseId outer = profiler.intern("outer");
  const PhaseId inner = profiler.intern("inner");
  {
    Profiler::Scope o(&profiler, outer);
    spin_at_least(20'000);
    {
      Profiler::Scope i(&profiler, inner);
      spin_at_least(20'000);
    }
    spin_at_least(20'000);
  }
  const ProfileSnapshot snap = profiler.snapshot();
  ASSERT_EQ(snap.phases.size(), 2u);
  // Name-sorted: "inner" before "outer".
  EXPECT_EQ(snap.phases[0].name, "inner");
  EXPECT_EQ(snap.phases[1].name, "outer");
  const auto& in = snap.phases[0];
  const auto& out = snap.phases[1];
  EXPECT_EQ(in.calls, 1u);
  EXPECT_EQ(out.calls, 1u);
  EXPECT_GT(in.total_ns, 0u);
  EXPECT_GE(out.total_ns, in.total_ns);
  // The child's measured duration is exactly what the parent frame logged
  // as child time, so the identity holds without tolerance.
  EXPECT_EQ(out.self_ns, out.total_ns - in.total_ns);
  EXPECT_EQ(in.self_ns, in.total_ns);
}

TEST(Profiler, RecordAccumulatesAndTracksPerCallExtremes) {
  Profiler profiler;
  profiler.set_enabled(true);
  const PhaseId p = profiler.intern("ext");
  profiler.record(p, 100);
  profiler.record(p, 900, 3);  // 300 ns per call
  profiler.record(p, 50);
  profiler.record(p, 0, 0);  // zero calls: ignored
  const ProfileSnapshot snap = profiler.snapshot();
  ASSERT_EQ(snap.phases.size(), 1u);
  EXPECT_EQ(snap.phases[0].calls, 5u);
  EXPECT_EQ(snap.phases[0].total_ns, 1050u);
  EXPECT_EQ(snap.phases[0].self_ns, 1050u);
  EXPECT_EQ(snap.phases[0].min_ns, 50u);
  EXPECT_EQ(snap.phases[0].max_ns, 300u);
}

TEST(Profiler, SnapshotOmitsNeverBegunPhases) {
  Profiler profiler;
  profiler.set_enabled(true);
  profiler.intern("never");
  const PhaseId used = profiler.intern("used");
  profiler.record(used, 7);
  const ProfileSnapshot snap = profiler.snapshot();
  ASSERT_EQ(snap.phases.size(), 1u);
  EXPECT_EQ(snap.phases[0].name, "used");
}

TEST(Profiler, OverflowBeyondMaxDepthIsTolerated) {
  Profiler profiler;
  profiler.set_enabled(true);
  const PhaseId p = profiler.intern("deep");
  constexpr std::size_t kOver = Profiler::kMaxDepth + 8;
  for (std::size_t i = 0; i < kOver; ++i) profiler.begin(p);
  for (std::size_t i = 0; i < kOver; ++i) profiler.end(p);
  const ProfileSnapshot snap = profiler.snapshot();
  ASSERT_EQ(snap.phases.size(), 1u);
  // Only the frames that fit in the stack were timed; the overflow frames
  // were counted through the depth counter and dropped on end().
  EXPECT_EQ(snap.phases[0].calls, std::uint64_t(Profiler::kMaxDepth));
}

TEST(Profiler, UnmatchedEndIsIgnored) {
  Profiler profiler;
  profiler.set_enabled(true);
  const PhaseId p = profiler.intern("p");
  profiler.end(p);  // nothing open
  EXPECT_TRUE(profiler.snapshot().empty());
}

TEST(ProfileSnapshot, MergeFoldsPhasesAndAdoptsShardSection) {
  Profiler a;
  a.set_enabled(true);
  a.record(a.intern("shared"), 100);
  a.record(a.intern("only_a"), 10);
  Profiler b;
  b.set_enabled(true);
  b.record(b.intern("shared"), 300);
  b.record(b.intern("only_b"), 20);

  ProfileSnapshot merged = a.snapshot();
  ProfileSnapshot other = b.snapshot();
  other.shards.resize(2);
  other.barriers = 5;
  merged.merge(other);

  ASSERT_EQ(merged.phases.size(), 3u);
  EXPECT_EQ(merged.phases[0].name, "only_a");
  EXPECT_EQ(merged.phases[1].name, "only_b");
  EXPECT_EQ(merged.phases[2].name, "shared");
  EXPECT_EQ(merged.phases[2].calls, 2u);
  EXPECT_EQ(merged.phases[2].total_ns, 400u);
  EXPECT_EQ(merged.phases[2].min_ns, 100u);
  EXPECT_EQ(merged.phases[2].max_ns, 300u);
  EXPECT_EQ(merged.shards.size(), 2u);
  EXPECT_EQ(merged.barriers, 5u);
}

TEST(ProfileSnapshot, WriteJsonNamesSteadyClockAndPhases) {
  Profiler profiler;
  profiler.set_enabled(true);
  profiler.record(profiler.intern("phase.one"), 1000, 2);
  std::ostringstream os;
  profiler.snapshot().write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"clock\":\"steady\""), std::string::npos);
  EXPECT_NE(json.find("\"phase.one\""), std::string::npos);
  EXPECT_NE(json.find("\"calls\":2"), std::string::npos);
}

TEST(RunReport, ProfileBlockPresentExactlyWhenNonEmpty) {
  obs::RunReport report;
  report.tool = "test";
  report.scenario = "unit";
  report.wall_seconds = 1.0;
  const std::string without = report_json(report);
  EXPECT_EQ(without.find("\"profile\""), std::string::npos);
  EXPECT_NE(without.find("\"schema_version\":5"), std::string::npos);

  Profiler profiler;
  profiler.set_enabled(true);
  profiler.record(profiler.intern("p"), 42);
  report.profile = profiler.snapshot();
  const std::string with = report_json(report);
  EXPECT_NE(with.find("\"profile\""), std::string::npos);
  // The metrics section bytes are identical either way: wall data is
  // quarantined in the profile block.
  const auto metrics_tail = [](const std::string& s) {
    return s.substr(s.find("\"metrics\""));
  };
  EXPECT_EQ(metrics_tail(without), metrics_tail(with));
}

#endif  // IMRM_PROFILING

TEST(Profiler, NullScopeIsSafe) {
  const PhaseId id = 3;
  Profiler::Scope scope(nullptr, id);
}
