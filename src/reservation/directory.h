// Directory of per-cell bandwidth accounts, shared by the advance
// reservation policies and the handoff admission path.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "reservation/cell_bandwidth.h"

namespace imrm::reservation {

class ReservationDirectory {
 public:
  void add_cell(CellId id, qos::BitsPerSecond capacity) {
    auto [it, inserted] = cells_.emplace(id, CellBandwidth(capacity));
    if (inserted && bound_) it->second.set_telemetry(&telemetry_);
  }

  /// Registers the aggregate admission instruments (resv.new.*, resv.handoff.*,
  /// resv.reservation.{hit,miss} counters and the resv.reservation.coverage
  /// histogram) in `registry` and wires them into every current and future
  /// cell. The registry must outlive the directory (or the next bind).
  void bind_metrics(obs::Registry& registry) {
    telemetry_.new_admitted = &registry.counter("resv.new.admitted");
    telemetry_.new_blocked = &registry.counter("resv.new.blocked");
    telemetry_.handoff_admitted = &registry.counter("resv.handoff.admitted");
    telemetry_.handoff_dropped = &registry.counter("resv.handoff.dropped");
    telemetry_.reservation_hits = &registry.counter("resv.reservation.hit");
    telemetry_.reservation_misses = &registry.counter("resv.reservation.miss");
    telemetry_.reservation_coverage = &registry.histogram(
        "resv.reservation.coverage", obs::HistogramSpec::linear(0.0, 1.0, 20));
    bound_ = true;
    for (auto& [id, cell] : cells_) cell.set_telemetry(&telemetry_);
  }

  [[nodiscard]] CellBandwidth& at(CellId id) { return cells_.at(id); }
  [[nodiscard]] const CellBandwidth& at(CellId id) const { return cells_.at(id); }
  [[nodiscard]] bool has(CellId id) const { return cells_.contains(id); }
  [[nodiscard]] std::size_t size() const { return cells_.size(); }

  /// Wipes every reservation (specific and anonymous) in every cell;
  /// policies that recompute their reservations from scratch call this at
  /// the top of each refresh.
  void clear_reservations() {
    for (auto& [id, cell] : cells_) {
      cell.set_anonymous_reservation(0.0);
      cell.clear_specific_reservations();
    }
  }

  [[nodiscard]] std::unordered_map<CellId, CellBandwidth>& cells() { return cells_; }

  // --- checkpoint/restore (ISSUE 4) ---------------------------------------
  // Cells are written in sorted-id order; restore requires the same cell set
  // to already exist (the harness constructor re-adds them from its config)
  // and throws sim::CheckpointError on a mismatch. Telemetry bindings are
  // untouched — instrument values live in the obs registry section.
  void save_state(sim::CheckpointWriter& w) const {
    std::vector<CellId> ids;
    ids.reserve(cells_.size());
    for (const auto& [id, cell] : cells_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    w.u64(ids.size());
    for (const CellId id : ids) {
      w.u32(id.value());
      cells_.at(id).save_state(w);
    }
  }

  void restore_state(sim::CheckpointReader& r) {
    if (r.u64() != cells_.size()) {
      throw sim::CheckpointError("reservation: checkpoint cell count mismatch");
    }
    for (std::size_t n = cells_.size(); n-- > 0;) {
      const CellId id{r.u32()};
      const auto it = cells_.find(id);
      if (it == cells_.end()) {
        throw sim::CheckpointError("reservation: checkpoint names unknown cell");
      }
      it->second.restore_state(r);
    }
  }

 private:
  std::unordered_map<CellId, CellBandwidth> cells_;
  CellBandwidth::Telemetry telemetry_;
  bool bound_ = false;
};

}  // namespace imrm::reservation
