#include "fault/convergence.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "fault/faulty_channel.h"
#include "maxmin/waterfill.h"
#include "obs/tracer.h"
#include "sim/random.h"
#include "sim/replication.h"
#include "sim/simulator.h"

namespace imrm::fault {

namespace {

// Reconvergence times span hop-latencies (ms) to long resync storms; the
// log2 spec keeps relative error bounded at every scale. lo * 2^16 = hi.
const obs::HistogramSpec kReconvergeSpec =
    obs::HistogramSpec::log2(1e-3, 65.536, 4);

double max_deviation(const std::vector<double>& rates, const std::vector<double>& target) {
  double worst = 0.0;
  for (std::size_t i = 0; i < rates.size() && i < target.size(); ++i) {
    worst = std::max(worst, std::fabs(rates[i] - target[i]));
  }
  return worst;
}

}  // namespace

ConvergenceResult run_convergence(const ConvergenceConfig& config) {
  sim::Simulator simulator;
  if (config.tracer) simulator.set_tracer(config.tracer);

  sim::Rng rng(config.seed);
  FaultyChannel channel(simulator, rng.fork(), config.faults);
  if (config.metrics) channel.bind_metrics(config.metrics);

  maxmin::DistributedProtocol::Config protocol_config = config.protocol;
  protocol_config.transport = &channel;
  protocol_config.harden = true;
  maxmin::DistributedProtocol protocol(simulator, config.problem, protocol_config);

  FaultSchedule::Hooks hooks;
  hooks.link_down = [&channel](std::uint32_t link) { channel.set_channel_up(link, false); };
  hooks.link_up = [&channel](std::uint32_t link) { channel.set_channel_up(link, true); };
  hooks.cell_crash = [&protocol](std::uint32_t link) {
    protocol.crash_restart_link(maxmin::LinkIndex(link));
  };
  config.schedule.arm(simulator, hooks, config.metrics, config.tracer);

  // The fault window closes at faults_stop: message faults heal, every
  // downed channel comes back, and the protocol runs an epoch resync sweep.
  const sim::SimTime faults_stop =
      std::max(config.faults_stop, config.schedule.end_time());
  simulator.at(faults_stop, [&channel, &protocol, &config] {
    channel.set_default_model(LinkFaultModel{});
    for (Channel c = 0; c < Channel(config.problem.links.size()); ++c) {
      channel.set_channel_up(c, true);
    }
    protocol.resynchronize();
  });

  const std::vector<double> target = maxmin::waterfill(config.problem).rates;

  protocol.start_all();

  ConvergenceResult result;
  double reconverged_at = -1.0;
  while (simulator.now() <= config.horizon && simulator.step()) {
    ++result.events;
    // Safety: at *every* event, no link may plan to allocate more than its
    // excess capacity (artificial demand links included). planned_sum clamps
    // each member at the advertised rate — an over-recorded connection is
    // already revoked down to mu locally; its shrinking UPDATE is in flight.
    // The unclamped granted_sum transiently exceeds capacity during any
    // rebalance even fault-free (Sec. 5.3.1 over-consumers shrink one
    // serialized round at a time), so it is tracked as telemetry only.
    for (maxmin::LinkIndex li = 0; li < protocol.link_count(); ++li) {
      const double capacity = std::max(protocol.link_excess_capacity(li), 0.0);
      const double overshoot = protocol.planned_sum(li) - capacity;
      if (overshoot > result.worst_overshoot) result.worst_overshoot = overshoot;
      if (overshoot > config.safety_slack) result.safety_held = false;
      result.worst_transient_overshoot = std::max(
          result.worst_transient_overshoot, protocol.granted_sum(li) - capacity);
    }
    if (reconverged_at < 0.0 && simulator.now() >= faults_stop &&
        max_deviation(protocol.rates(), target) <= config.tolerance) {
      reconverged_at = simulator.now().to_seconds();
    }
  }

  result.final_rates = protocol.rates();
  result.final_deviation = max_deviation(result.final_rates, target);
  // The queue may drain before faults_stop checks ran; the final state still
  // counts as reconverged if it matches the fixed point.
  if (reconverged_at < 0.0 && result.final_deviation <= config.tolerance) {
    reconverged_at = std::max(faults_stop, simulator.now()).to_seconds();
  }
  if (reconverged_at >= 0.0) {
    result.reconverged = true;
    result.reconverge_seconds = std::max(0.0, reconverged_at - faults_stop.to_seconds());
  }

  if (config.metrics) {
    obs::Registry& registry = *config.metrics;
    registry.counter("fault.convergence.runs").add();
    if (result.reconverged) {
      registry.counter("fault.convergence.reconverged").add();
      registry.histogram("fault.reconverge_seconds", kReconvergeSpec)
          .record(result.reconverge_seconds);
    }
    if (!result.safety_held) registry.counter("fault.convergence.safety_violations").add();
    protocol.export_metrics(registry);
    simulator.collect_metrics(registry);
  }
  return result;
}

ConvergenceSweepResult run_convergence_sweep(const ConvergenceSweepConfig& config) {
  struct PerRep {
    ConvergenceResult result;
    obs::Snapshot snapshot;
  };
  const sim::ReplicationRunner runner(config.threads);
  const auto reps =
      runner.run(config.replications, config.base.seed,
                 [&config](std::uint64_t seed, std::size_t) -> PerRep {
                   obs::Registry registry;
                   ConvergenceConfig one = config.base;
                   one.seed = seed;
                   one.metrics = &registry;
                   one.tracer = nullptr;  // tracing is per-run, not per-sweep
                   PerRep rep;
                   rep.result = run_convergence(one);
                   rep.snapshot = registry.snapshot();
                   return rep;
                 });

  ConvergenceSweepResult sweep;
  sweep.replications = reps.size();
  std::vector<obs::Snapshot> snapshots;
  snapshots.reserve(reps.size());
  for (const PerRep& rep : reps) {
    if (!rep.result.safety_held) ++sweep.safety_failures;
    if (!rep.result.reconverged) ++sweep.reconverge_failures;
    sweep.worst_overshoot = std::max(sweep.worst_overshoot, rep.result.worst_overshoot);
    sweep.worst_final_deviation =
        std::max(sweep.worst_final_deviation, rep.result.final_deviation);
    snapshots.push_back(rep.snapshot);
  }
  sweep.metrics = obs::merge_snapshots(snapshots);
  if (const obs::HistogramSample* h = sweep.metrics.histogram("fault.reconverge_seconds");
      h && h->count > 0) {
    sweep.reconverge_p50 = h->percentile(0.50);
    sweep.reconverge_p90 = h->percentile(0.90);
    sweep.reconverge_p99 = h->percentile(0.99);
  }
  return sweep;
}

maxmin::Problem two_cell_problem(std::size_t conns_per_cell, double cell_excess,
                                 double backbone_excess) {
  maxmin::Problem problem;
  problem.links.resize(3);
  problem.links[0].excess_capacity = cell_excess;       // cell A wireless
  problem.links[1].excess_capacity = cell_excess;       // cell B wireless
  problem.links[2].excess_capacity = backbone_excess;   // wired backbone
  for (std::size_t i = 0; i < conns_per_cell; ++i) {
    problem.connections.push_back({{0}, maxmin::kInfiniteDemand});          // local in A
    problem.connections.push_back({{1}, maxmin::kInfiniteDemand});          // local in B
    problem.connections.push_back({{0, 2, 1}, maxmin::kInfiniteDemand});    // crossing
  }
  return problem;
}

maxmin::Problem campus_problem(std::size_t cells, std::size_t conns, std::uint64_t seed) {
  maxmin::Problem problem;
  // Per-cell wireless links 0..cells-1, then corridor backbone segments
  // cells..2*cells-2 (segment j joins cell j and j+1).
  std::mt19937_64 engine(seed);
  std::uniform_real_distribution<double> wireless(8.0, 14.0);
  problem.links.resize(cells + (cells - 1));
  for (std::size_t c = 0; c < cells; ++c) {
    problem.links[c].excess_capacity = wireless(engine);
  }
  for (std::size_t s = 0; s + 1 < cells; ++s) {
    problem.links[cells + s].excess_capacity = 40.0;
  }
  std::uniform_int_distribution<std::size_t> pick(0, cells - 1);
  for (std::size_t i = 0; i < conns; ++i) {
    std::size_t a = pick(engine);
    std::size_t b = pick(engine);
    maxmin::ProblemConnection conn;
    conn.path.push_back(a);
    if (a != b) {
      const std::size_t lo = std::min(a, b);
      const std::size_t hi = std::max(a, b);
      for (std::size_t s = lo; s < hi; ++s) conn.path.push_back(cells + s);
      conn.path.push_back(b);
    }
    problem.connections.push_back(std::move(conn));
  }
  return problem;
}

}  // namespace imrm::fault
