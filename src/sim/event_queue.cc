#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace imrm::sim {

EventId EventQueue::schedule(SimTime at, Callback cb) {
  const EventId id = callbacks_.size();
  callbacks_.push_back(std::move(cb));
  cancelled_.push_back(false);
  heap_.push(Entry{at, next_seq_++, id});
  ++live_count_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id >= cancelled_.size() || cancelled_[id] || !callbacks_[id]) return;
  cancelled_[id] = true;
  callbacks_[id] = nullptr;  // release captured state eagerly
  --live_count_;
}

void EventQueue::skip_cancelled() const {
  while (!heap_.empty() && cancelled_[heap_.top().id]) heap_.pop();
}

SimTime EventQueue::next_time() const {
  skip_cancelled();
  return heap_.empty() ? SimTime::infinity() : heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  const Entry top = heap_.top();
  heap_.pop();
  Fired fired{top.time, std::move(callbacks_[top.id])};
  callbacks_[top.id] = nullptr;
  cancelled_[top.id] = true;  // mark consumed so cancel() after fire is a no-op
  --live_count_;
  return fired;
}

}  // namespace imrm::sim
