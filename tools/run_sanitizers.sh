#!/usr/bin/env bash
# Builds and runs the tier-1 test suite under AddressSanitizer(+UBSan) and
# ThreadSanitizer, using the IMRM_SANITIZE cache option the root CMakeLists
# already exposes. Each sanitizer gets its own build tree so the
# instrumented objects never mix with the regular build (or each other).
#
# Usage: tools/run_sanitizers.sh [asan|tsan|checkpoint|ubsan-checkpoint|shard|serve|scale|adapt|all]
#        (default: all)
#        checkpoint = asan+ubsan over the `checkpoint`-labelled tests only —
#        the serialization/restore code paths (fast: one instrumented tree,
#        a handful of tests).
#        ubsan-checkpoint = undefined-behaviour sanitizer alone over the
#        `checkpoint` label — the strict binary parsers (checkpoint restore
#        and the serve wire codec share the discipline), where UB would mean
#        a malformed byte stream escaped the typed-error path.
#        shard = tsan over the `shard`-labelled tests only — the ShardedRunner
#        worker pool and everything that runs on it (the suite whose data
#        races tsan can actually see).
#        serve = tsan over the `serve`-labelled tests only — the SPSC ring's
#        acquire/release handshake and the two-thread wall-pacing service
#        loop (ISSUE 8).
#        scale = asan+ubsan over the `scale`-labelled tests only — the
#        campus-at-scale SoA hot path (flat maps, milestone arena, batched
#        handoff groups), where an indexing bug would smear silently.
#        adapt = asan+ubsan over the `adapt`-labelled tests only — the
#        closed adaptation loop (ISSUE 9): the dual token-bucket shaper's
#        per-flow counter arithmetic, the controller's window harvesting,
#        and the campus loop's packet lambdas that capture per-stream state.
# Env:   CMAKE_ARGS  extra configure flags (e.g. -DCMAKE_CXX_COMPILER=clang++)
#        CTEST_ARGS  extra ctest flags (e.g. -R fault)
#
# Opt-in ctest wiring: configure with -DIMRM_SANITIZER_TESTS=ON and this
# script runs as the label-gated test `run_sanitizers` (ctest -L sanitize).
# It is OFF by default because each sanitizer implies a full extra build.
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
which=${1:-all}

run_one() {
  local name=$1 sanitizers=$2 extra_ctest=${3:-}
  # The checkpoint sweep reuses the asan tree — same instrumentation, smaller
  # test selection.
  local build_dir="$repo_root/build-${name%%-*}"
  echo "==> $name: configuring $build_dir (IMRM_SANITIZE=$sanitizers)"
  cmake -B "$build_dir" -S "$repo_root" \
    -DIMRM_SANITIZE="$sanitizers" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    ${CMAKE_ARGS:-} >/dev/null
  echo "==> $name: building"
  cmake --build "$build_dir" -j >/dev/null
  echo "==> $name: running tests"
  # Exclude this wrapper's own label to keep a sanitized tree from recursing.
  (cd "$build_dir" && ctest --output-on-failure -LE sanitize ${extra_ctest} ${CTEST_ARGS:-})
}

case "$which" in
  asan) run_one asan "address;undefined" ;;
  tsan) run_one tsan "thread" ;;
  checkpoint) run_one asan-checkpoint "address;undefined" "-L checkpoint" ;;
  ubsan-checkpoint) run_one ubsan-checkpoint "undefined" "-L checkpoint" ;;
  shard) run_one tsan-shard "thread" "-L shard" ;;
  serve) run_one tsan-serve "thread" "-L serve" ;;
  scale) run_one asan-scale "address;undefined" "-L scale" ;;
  adapt) run_one asan-adapt "address;undefined" "-L adapt" ;;
  all)
    run_one asan "address;undefined"
    run_one tsan "thread"
    ;;
  *)
    echo "usage: tools/run_sanitizers.sh [asan|tsan|checkpoint|ubsan-checkpoint|shard|serve|scale|adapt|all]" >&2
    exit 2
    ;;
esac
echo "==> sanitizer suites passed"
