// Minimal deterministic JSON emission helpers shared by the metrics
// snapshot, the Chrome trace exporter, and the run report.
//
// There is deliberately no JSON *parsing* here (tools/validate_report.py
// does that offline); emission only needs escaping and a number format that
// round-trips doubles byte-identically across runs, which std::to_chars
// (shortest round-trip form) guarantees.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>

namespace imrm::obs::json {

/// Writes `s` as a quoted JSON string with the mandatory escapes.
void write_string(std::ostream& os, std::string_view s);

/// Writes a double in shortest round-trip form. Non-finite values (not
/// representable in JSON) are written as null.
void write_number(std::ostream& os, double value);

void write_number(std::ostream& os, std::uint64_t value);

/// Comma-separating helper: writes nothing on the first call, "," after.
class Separator {
 public:
  void write(std::ostream& os) {
    if (!first_) os << ',';
    first_ = false;
  }

 private:
  bool first_ = true;
};

}  // namespace imrm::obs::json
