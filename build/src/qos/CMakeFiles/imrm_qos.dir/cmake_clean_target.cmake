file(REMOVE_RECURSE
  "libimrm_qos.a"
)
