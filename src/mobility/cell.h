// Cells and their classification (Sections 3.4, 6).
//
// An indoor environment is a graph of cells, each owned by one base station.
// Cells are classified by location: office, corridor, or lounge, with
// lounges sub-classified by activity into meeting room, cafeteria, and
// default. The class determines which advance-reservation policy runs.
#pragma once

#include <string>
#include <vector>

#include "net/ids.h"

namespace imrm::mobility {

using net::CellId;
using net::NodeId;
using net::PortableId;
using net::ZoneId;

enum class CellClass {
  kOffice,       // small set of regular occupants, predictable handoffs
  kCorridor,     // linear movement: previous cell predicts the next
  kMeetingRoom,  // lounge with handoff spikes at meeting start/end
  kCafeteria,    // lounge with slow time-varying handoff profile
  kLounge,       // default lounge: random time-varying profile
};

[[nodiscard]] std::string to_string(CellClass c);

/// True for the three lounge sub-classes.
[[nodiscard]] constexpr bool is_lounge(CellClass c) {
  return c == CellClass::kMeetingRoom || c == CellClass::kCafeteria ||
         c == CellClass::kLounge;
}

struct Cell {
  CellId id = CellId::invalid();
  CellClass cell_class = CellClass::kLounge;
  std::string name;
  ZoneId zone = ZoneId{0};
  std::vector<CellId> neighbors;
  /// Regular occupants — meaningful for offices only (omega(c) in Table 1).
  std::vector<PortableId> occupants;
  /// Base-station node in the network topology (invalid when the cell map is
  /// used standalone, without a wired backbone).
  NodeId base_station = NodeId::invalid();

  [[nodiscard]] bool is_neighbor(CellId other) const;
  [[nodiscard]] bool is_occupant(PortableId p) const;
};

}  // namespace imrm::mobility
