file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_default_algo.dir/bench_fig6_default_algo.cc.o"
  "CMakeFiles/bench_fig6_default_algo.dir/bench_fig6_default_algo.cc.o.d"
  "bench_fig6_default_algo"
  "bench_fig6_default_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_default_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
