#include "maxmin/protocol.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "obs/metrics.h"

namespace imrm::maxmin {

void DistributedProtocol::LinkNode::add_member(ConnIndex conn) {
  assert(!has(conn));
  index.insert(std::uint64_t(conn), std::uint32_t(members.size()));
  members.push_back(conn);
  recorded.push_back(0.0);
  state.emplace_back();
}

bool DistributedProtocol::LinkNode::resync_pending_for(ConnIndex conn) const {
  return std::find(resync_pending.begin(), resync_pending.end(), conn) !=
         resync_pending.end();
}

void DistributedProtocol::LinkNode::remove_member(ConnIndex conn) {
  // A departing connection has nothing left to resync.
  if (auto it = std::find(resync_pending.begin(), resync_pending.end(), conn);
      it != resync_pending.end()) {
    const std::size_t i = std::size_t(it - resync_pending.begin());
    resync_pending[i] = resync_pending.back();
    resync_tries[i] = resync_tries.back();
    resync_pending.pop_back();
    resync_tries.pop_back();
  }
  const std::uint32_t* pos_ptr = index.find(std::uint64_t(conn));
  if (!pos_ptr) return;
  const std::uint32_t pos = *pos_ptr;
  const std::uint32_t last = std::uint32_t(members.size() - 1);
  if (pos != last) {
    // Swap-remove; re-point the moved member's index entry first.
    members[pos] = members[last];
    recorded[pos] = recorded[last];
    state[pos] = state[last];
    *index.find(std::uint64_t(members[pos])) = pos;
  }
  members.pop_back();
  recorded.pop_back();
  state.pop_back();
  index.erase(std::uint64_t(conn));
}

DistributedProtocol::DistributedProtocol(sim::Simulator& simulator, const Problem& problem,
                                         Config config)
    : simulator_(&simulator), config_(config) {
  assert(problem.valid());
  started_ = !config_.defer_start;
  links_.resize(problem.links.size());
  for (std::size_t li = 0; li < problem.links.size(); ++li) {
    links_[li].mu.set_excess_capacity(problem.links[li].excess_capacity);
  }
  for (const ProblemConnection& conn : problem.connections) {
    add_connection(conn.path, conn.demand);
  }
}

double DistributedProtocol::granted_sum(LinkIndex link) const {
  const LinkNode& node = links_.at(link);
  double sum = 0.0;
  for (ConnIndex conn : node.members) sum += std::max(rates_[conn], 0.0);
  return sum;
}

double DistributedProtocol::planned_sum(LinkIndex link) const {
  const LinkNode& node = links_.at(link);
  const double mu = std::max(node.mu.current(), 0.0);
  double sum = 0.0;
  for (const double recorded : node.recorded) {
    sum += std::min(std::max(recorded, 0.0), mu);
  }
  return sum;
}

std::vector<ConnIndex> DistributedProtocol::bottleneck_set(LinkIndex link) const {
  const LinkNode& node = links_.at(link);
  std::vector<ConnIndex> set;
  for (std::size_t i = 0; i < node.members.size(); ++i) {
    if (node.state[i].in_bottleneck) set.push_back(node.members[i]);
  }
  std::sort(set.begin(), set.end());
  return set;
}

ConnIndex DistributedProtocol::add_connection(std::vector<LinkIndex> path, double demand) {
  assert(!path.empty());
  ++generation_;
  // Footnote 11: finite demand is an artificial entry link of that capacity.
  if (demand != kInfiniteDemand) {
    const LinkIndex artificial = links_.size();
    links_.emplace_back();
    links_.back().mu.set_excess_capacity(demand);
    path.insert(path.begin(), artificial);
  }
  const ConnIndex conn = paths_.size();
  assert(conn < (ConnIndex{1} << 32) && links_.size() + path.size() < (std::size_t{1} << 32) &&
         "indices must fit the packed trigger key");
  paths_.push_back(std::move(path));
  conn_alive_.push_back(true);
  rates_.push_back(0.0);
  for (LinkIndex li : paths_[conn]) {
    links_[li].add_member(conn);
    recompute_mu(li);
  }
  // The entry switch starts the adaptation for the newcomer (suppressed for
  // a defer_start construction that is about to be restore_state()d).
  if (started_) initiate(paths_[conn].front(), conn);
  return conn;
}

void DistributedProtocol::remove_connection(ConnIndex conn) {
  assert(conn < paths_.size() && conn_alive_[conn]);
  ++generation_;
  conn_alive_[conn] = false;
  rates_[conn] = 0.0;
  // Abort an in-flight adaptation for this connection; stale packets are
  // invalidated by bumping the token.
  if (active_ && active_->conn == conn) {
    disarm_watchdog();
    active_.reset();
    ++active_token_;
  }
  for (LinkIndex li : paths_[conn]) {
    LinkNode& node = links_[li];
    node.remove_member(conn);
    recompute_mu(li);
    if (config_.policy == InitiationPolicy::kFlooding) {
      for (ConnIndex other : node.members) initiate(li, other);
    } else {
      // Freed capacity: offer it to the connections that could grow here.
      initiate_growers(li, kNoConnection);
    }
  }
  pump();
}

void DistributedProtocol::start_all() {
  started_ = true;
  for (ConnIndex ci = 0; ci < paths_.size(); ++ci) {
    if (conn_alive_[ci]) initiate(paths_[ci].front(), ci);
  }
}

void DistributedProtocol::set_link_excess_capacity(LinkIndex link, double new_excess) {
  ++generation_;
  LinkNode& node = links_.at(link);
  const double old_excess = node.mu.excess_capacity();
  node.mu.set_excess_capacity(new_excess);
  recompute_mu(link);

  if (new_excess < 0.0) {
    // b'_av,l < 0: notify connections to renegotiate (Section 5.3).
    for (ConnIndex conn : node.members) renegotiations_.push_back(conn);
  }

  if (config_.policy == InitiationPolicy::kFlooding) {
    for (ConnIndex conn : node.members) initiate(link, conn);
    return;
  }

  if (new_excess < old_excess) {
    // Capacity loss: squeeze connections consuming above the advertised rate.
    initiate_over_consumers(link, kNoConnection);
  } else {
    // Eq. (2): upward adaptation when the new excess exceeds the recorded
    // consumption by at least delta.
    double consumed = 0.0;
    for (const double rate : node.recorded) consumed += rate;
    if (new_excess >= consumed + config_.delta) {
      initiate_growers(link, kNoConnection);
    }
  }
}

void DistributedProtocol::recompute_mu(LinkIndex link) {
  // The recorded rates already sit in one contiguous array — no copy.
  links_[link].mu.recompute(links_[link].recorded);
  trace_mu(link, links_[link].mu.current());
}

// ---- trigger queue ------------------------------------------------------

bool DistributedProtocol::trigger_valid(LinkIndex link, ConnIndex conn) const {
  if (cap_hit_) return false;
  if (conn >= conn_alive_.size() || !conn_alive_[conn]) return false;
  const LinkNode& node = links_.at(link);
  // A restarted switch defers new adaptations until its member rates have
  // been re-synced; finish_resync() re-seeds the cascades afterwards.
  if (node.resyncing()) return false;
  const std::size_t pos = node.position_of(conn);
  const double recorded = pos < node.members.size() ? node.recorded[pos] : 0.0;
  // A negative advertised rate (capacity below the guaranteed minima) can
  // only offer zero excess; comparing against the clamped offer keeps the
  // squeeze-to-zero case from re-triggering forever.
  const double mu = std::max(node.mu.current(), 0.0);
  // Over-consumer: a round strictly reduces the rate — always progress.
  if (recorded > mu + config_.epsilon) return true;
  // The flooding (preliminary) algorithm re-advertises every connection once
  // per external event, whether or not its state could change: the paper's
  // "global ID and a sequence number ... to avoid possible infinite loop"
  // translates to a per-generation guard here. This is exactly the
  // unnecessary traffic the refinement removes.
  if (config_.policy == InitiationPolicy::kFlooding) {
    if (pos >= node.members.size() ||
        node.state[pos].last_flood_generation != generation_) {
      return true;
    }
  }
  // Nothing can change when the connection already sits at the advertised
  // rate here: the round would stamp mu and return at most mu.
  if (std::fabs(recorded - mu) <= config_.epsilon) return false;
  // Grower: the round succeeds unless the connection is bottlenecked
  // elsewhere, in which case it is futile. Suppress re-running a grower
  // round from an identical (advertised, recorded) state — the previous
  // identical attempt already proved it futile.
  if (pos < node.members.size() && node.state[pos].has_last_completed &&
      std::fabs(node.state[pos].last_completed_mu - mu) <= config_.epsilon &&
      std::fabs(node.state[pos].last_completed_rate - recorded) <= config_.epsilon) {
    return false;
  }
  return true;
}

void DistributedProtocol::initiate(LinkIndex link, ConnIndex conn) {
  if (!trigger_valid(link, conn)) return;
  if (!queued_.insert(trigger_key(link, conn), true)) return;  // already queued
  trigger_queue_.emplace_back(link, conn);
  pump();
}

void DistributedProtocol::initiate_growers(LinkIndex link, ConnIndex except) {
  // Connections receiving less than the advertised rate could grow here;
  // those bottlenecked elsewhere complete one futile round and are then
  // suppressed by the post-completion state memory.
  LinkNode& node = links_[link];
  const double mu = std::max(node.mu.current(), 0.0);
  std::vector<ConnIndex> targets;
  for (std::size_t i = 0; i < node.members.size(); ++i) {
    if (node.members[i] != except && node.recorded[i] < mu - config_.epsilon) {
      targets.push_back(node.members[i]);
    }
  }
  std::sort(targets.begin(), targets.end());  // deterministic order
  for (ConnIndex other : targets) initiate(link, other);
}

void DistributedProtocol::initiate_over_consumers(LinkIndex link, ConnIndex except) {
  LinkNode& node = links_[link];
  const double mu = std::max(node.mu.current(), 0.0);
  std::vector<ConnIndex> targets;
  for (std::size_t i = 0; i < node.members.size(); ++i) {
    if (node.members[i] != except && node.recorded[i] > mu + config_.epsilon) {
      targets.push_back(node.members[i]);
    }
  }
  std::sort(targets.begin(), targets.end());
  for (ConnIndex other : targets) initiate(link, other);
}

void DistributedProtocol::pump() {
  if (active_ || cap_hit_) return;
  while (!trigger_queue_.empty()) {
    const auto [link, conn] = trigger_queue_.front();
    trigger_queue_.pop_front();
    queued_.erase(trigger_key(link, conn));
    if (!trigger_valid(link, conn)) continue;  // state moved on; now moot
    if (config_.policy == InitiationPolicy::kFlooding) {
      LinkNode& node = links_[link];
      const std::size_t pos = node.position_of(conn);
      if (pos < node.members.size()) {
        node.state[pos].last_flood_generation = generation_;
      }
    }
    active_ = Adaptation{link, conn, config_.round_trips, std::nullopt, std::nullopt};
    ++active_token_;
    ++rounds_run_;
    ++round_serial_;
    round_started_ = simulator_->now();
    launch_round();
    arm_watchdog();
    return;
  }
}

// ---- one adaptation round ----------------------------------------------

void DistributedProtocol::launch_round() {
  assert(active_);
  Adaptation& a = *active_;
  recompute_mu(a.trigger_link);
  // The excess share offered can never be negative: when capacity falls
  // below the guaranteed minima the offer is zero and renegotiation (already
  // signalled) must shrink the minima themselves.
  const double stamped = std::max(links_[a.trigger_link].mu.current(), 0.0);
  a.returned_upstream.reset();
  a.returned_downstream.reset();

  const auto& path = paths_[a.conn];
  const auto pos_it = std::find(path.begin(), path.end(), a.trigger_link);
  assert(pos_it != path.end());
  const std::size_t pos = std::size_t(pos_it - path.begin());

  // Upstream leg covers links path[pos-1] .. path[0]; downstream leg covers
  // path[pos+1] .. path.back(). The initiator's own advertised rate is the
  // initial stamp, so the returned minima jointly cover the whole path.
  auto send = [&](Direction dir) {
    Advertise packet{a.conn, stamped, active_token_, dir, false, pos};
    const bool empty_leg = (dir == Direction::kUpstream && pos == 0) ||
                           (dir == Direction::kDownstream && pos + 1 >= path.size());
    if (empty_leg) {
      packet.returning = true;
    } else {
      packet.position = dir == Direction::kUpstream ? pos - 1 : pos + 1;
    }
    // The channel is the link the packet arrives at (its own link for the
    // immediate endpoint reflection).
    transmit(path[packet.position], config_.hop_latency,
             [this, packet]() mutable { deliver_advertise(packet); });
    ++messages_sent_;
  };
  send(Direction::kUpstream);
  send(Direction::kDownstream);
  if (messages_sent_ >= config_.message_cap) cap_hit_ = true;
}

void DistributedProtocol::deliver_advertise(Advertise packet) {
  if (!active_ || packet.token != active_token_) {
    // Stale round: a retransmission, crash, or completed trip retired this
    // token — sequence-number rejection of late/duplicated packets.
    ++stale_ignored_;
    return;
  }
  if (!conn_alive_[packet.conn]) return;

  if (packet.returning) {
    Adaptation& a = *active_;
    if (packet.direction == Direction::kUpstream) {
      a.returned_upstream = packet.stamped;
    } else {
      a.returned_downstream = packet.stamped;
    }
    if (a.returned_upstream && a.returned_downstream) on_round_trip_complete();
    return;
  }

  const auto& path = paths_[packet.conn];
  handle_advertise_at(path[packet.position], packet);

  // Advance along the leg; reflect at the endpoint back to the initiator.
  const bool at_end = packet.direction == Direction::kUpstream
                          ? packet.position == 0
                          : packet.position + 1 >= path.size();
  if (at_end) {
    packet.returning = true;
  } else {
    packet.position += packet.direction == Direction::kUpstream ? std::size_t(-1) : 1;
  }
  transmit(path[packet.position], config_.hop_latency,
           [this, packet]() mutable { deliver_advertise(packet); });
  ++messages_sent_;
  if (messages_sent_ >= config_.message_cap) cap_hit_ = true;
}

void DistributedProtocol::handle_advertise_at(LinkIndex link, Advertise& packet) {
  LinkNode& node = links_[link];
  const std::size_t pos = node.position_of(packet.conn);
  assert(pos < node.members.size() && "ADVERTISE for a non-member connection");
  const double received = packet.stamped;
  node.recorded[pos] = received;
  recompute_mu(link);
  const double mu = node.mu.current();

  // Clamp: "if the stamped rate is higher or equal to the advertised rate,
  // the stamped rate is reduced to the advertised rate" (never below zero:
  // excess shares cannot be negative).
  double offer = std::max(mu, 0.0);
  // A resyncing switch must stay safe without knowledge: until a member has
  // re-reported its applied rate, the switch cannot tell how much of the
  // capacity is already spoken for, so it never offers a connection more
  // than what it knows that connection to hold (growth waits, keep/shrink
  // passes through).
  if (node.resyncing()) {
    const double known = node.resync_pending_for(packet.conn)
                             ? 0.0
                             : std::max(rates_[packet.conn], 0.0);
    offer = std::min(offer, known);
  }
  if (received >= offer) {
    packet.stamped = offer;
    node.recorded[pos] = offer;
  }

  // Maintain M(l): add if mu < stamped (this link constrains the connection),
  // remove if mu > stamped (bottleneck is elsewhere).
  if (mu < received - config_.epsilon) {
    node.state[pos].in_bottleneck = true;
  } else if (mu > received + config_.epsilon) {
    node.state[pos].in_bottleneck = false;
  }

  // Preliminary algorithm: every switch that receives an ADVERTISE initiates
  // ADVERTISE packets for every other connection traversing the same link.
  if (config_.policy == InitiationPolicy::kFlooding) {
    std::vector<ConnIndex> all;
    for (ConnIndex other : node.members) {
      if (other != packet.conn) all.push_back(other);
    }
    std::sort(all.begin(), all.end());
    for (ConnIndex other : all) initiate(link, other);
  }
}

void DistributedProtocol::on_round_trip_complete() {
  assert(active_);
  Adaptation& a = *active_;
  --a.trips_left;
  if (a.trips_left > 0 && !cap_hit_) {
    ++active_token_;  // retire packets of the finished trip
    launch_round();
    disarm_watchdog();
    arm_watchdog();  // progress was made; restart the round's loss timer
    return;
  }
  const double final_rate = std::min(*a.returned_upstream, *a.returned_downstream);
  a.updating = true;
  a.final_rate = final_rate;
  send_update(a.conn, final_rate);
  disarm_watchdog();
  arm_watchdog();
}

void DistributedProtocol::send_update(ConnIndex conn, double rate) {
  assert(active_ && active_->conn == conn);
  trace_update(conn, rate);
  const auto path = paths_[conn];
  messages_sent_ += path.size();
  if (messages_sent_ >= config_.message_cap) cap_hit_ = true;
  const sim::Duration travel =
      sim::Duration::seconds(config_.hop_latency.to_seconds() * double(path.size()));
  // Retire any still-circulating ADVERTISE copies (duplication/reordering)
  // before fixing the token the UPDATE rides on; in a fault-free run nothing
  // is in flight here, so the bump is unobservable.
  ++active_token_;
  const std::uint64_t token = active_token_;
  transmit(path.front(), travel, [this, conn, rate, token]() {
    if (!active_ || token != active_token_ || !conn_alive_[conn]) return;
    finish_adaptation(rate);
  });
}

void DistributedProtocol::finish_adaptation(double final_rate) {
  disarm_watchdog();
  const Adaptation a = *active_;
  const ConnIndex conn = a.conn;
  rates_[conn] = final_rate;

  // Apply the UPDATE at every link, then evaluate the refinement cascades
  // from the now-consistent state.
  for (LinkIndex li : paths_[conn]) {
    LinkNode& node = links_[li];
    const std::size_t pos = node.position_of(conn);
    assert(pos < node.members.size());
    node.recorded[pos] = final_rate;
    recompute_mu(li);
  }

  // Record the post-completion state at the triggering link so identical
  // re-triggers are suppressed.
  {
    LinkNode& trigger_node = links_[a.trigger_link];
    const std::size_t pos = trigger_node.position_of(conn);
    assert(pos < trigger_node.members.size());
    ConnState& state = trigger_node.state[pos];
    state.has_last_completed = true;
    state.last_completed_mu = trigger_node.mu.current();
    state.last_completed_rate = final_rate;
    // The connection considers the trigger link its bottleneck iff no other
    // link clamped the rate below our advertised rate (M(l) upkeep, done
    // "only after it completes the current adaptation process").
    state.in_bottleneck = final_rate >= trigger_node.mu.current() - config_.epsilon;
  }

  trace_round_complete(conn, final_rate);
  active_.reset();
  ++active_token_;

  for (LinkIndex li : paths_[conn]) {
    if (config_.policy == InitiationPolicy::kFlooding) {
      // Preliminary algorithm: re-advertise for every connection sharing the
      // link, regardless of what changed.
      std::vector<ConnIndex> all;
      for (ConnIndex other : links_[li].members) {
        if (other != conn) all.push_back(other);
      }
      std::sort(all.begin(), all.end());
      for (ConnIndex other : all) initiate(li, other);
      continue;
    }
    // Refinement rules: squeeze over-consumers; offer slack to growers.
    initiate_over_consumers(li, conn);
    initiate_growers(li, conn);
  }
  pump();
}

// ---- fault tolerance (Config::harden) -----------------------------------

sim::Duration DistributedProtocol::round_rto() const {
  assert(active_);
  const Adaptation& a = *active_;
  const double hops = double(paths_[a.conn].size());
  // One trip runs both legs in parallel; the worst leg spans the path plus
  // the endpoint reflection, and the UPDATE travels the full path as one
  // hop-scaled event. Factor 6 absorbs channel jitter (<= 1 hop) and forced
  // reordering (+2.5 hops) without firing on healthy-but-slow trips.
  double rto = config_.hop_latency.to_seconds() * (hops + 2.0) * 6.0;
  rto = std::max(rto, config_.retransmit_timeout.to_seconds());
  for (int i = 0; i < a.retransmits; ++i) rto *= config_.retransmit_backoff;
  return sim::Duration::seconds(rto);
}

void DistributedProtocol::arm_watchdog() {
  if (!config_.harden || !active_) return;
  const std::uint64_t serial = round_serial_;
  // Timers are local to the initiating switch, never subject to the faulty
  // transport, so they schedule directly on the simulator.
  watchdog_ = simulator_->after(round_rto(), [this, serial] { on_watchdog(serial); });
  watchdog_armed_ = true;
}

void DistributedProtocol::disarm_watchdog() {
  if (!watchdog_armed_) return;
  simulator_->cancel(watchdog_);
  watchdog_armed_ = false;
}

void DistributedProtocol::on_watchdog(std::uint64_t serial) {
  watchdog_armed_ = false;
  if (!active_ || round_serial_ != serial || cap_hit_) return;
  Adaptation& a = *active_;
  if (a.retransmits >= config_.retransmit_budget) {
    abandon_round();
    return;
  }
  ++a.retransmits;
  ++retransmissions_;
  ++active_token_;  // retire whatever is left of the lost trip
  if (a.updating) {
    send_update(a.conn, a.final_rate);
  } else {
    launch_round();
  }
  arm_watchdog();
}

void DistributedProtocol::abandon_round() {
  assert(active_);
  const Adaptation a = *active_;
  ++rounds_abandoned_;
  const sim::Duration retry_delay = round_rto();  // maximally backed-off RTO
  // Roll the links' view of this connection back to its last applied rate:
  // half-propagated stamps from the dead round must not linger (a squeezed
  // stamp with no matching UPDATE would free capacity the endpoint still
  // uses; an inflated one would double-book it).
  for (LinkIndex li : paths_[a.conn]) {
    LinkNode& node = links_[li];
    const std::size_t pos = node.position_of(a.conn);
    if (pos >= node.members.size()) continue;
    if (node.resync_pending_for(a.conn)) continue;  // resync will restore it
    node.recorded[pos] = std::max(rates_[a.conn], 0.0);
    recompute_mu(li);
  }
  active_.reset();
  ++active_token_;
  // Back off and re-trigger: liveness once faults cease, without hot-looping
  // while they persist.
  const LinkIndex link = a.trigger_link;
  const ConnIndex conn = a.conn;
  simulator_->after(retry_delay, [this, link, conn] { initiate(link, conn); });
  pump();
}

void DistributedProtocol::crash_restart_link(LinkIndex link) {
  assert(config_.harden && "crash/restart modeling requires Config::harden");
  LinkNode& node = links_.at(link);
  ++generation_;
  ++crashes_;
  ++node.epoch;
  // The restart loses all soft state: recorded rates, bottleneck
  // membership, completion memory.
  for (std::size_t i = 0; i < node.members.size(); ++i) {
    node.recorded[i] = 0.0;
    node.state[i] = ConnState{};
  }
  recompute_mu(link);
  if (node.members.empty()) return;
  const bool abort_active =
      active_ && std::find(paths_[active_->conn].begin(), paths_[active_->conn].end(),
                           link) != paths_[active_->conn].end();
  // Ask every member endpoint to re-report its applied rate, epoch-tagged so
  // replies to an older incarnation are rejected.
  node.resync_pending = node.members;
  node.resync_tries.assign(node.members.size(), 0);
  if (abort_active) {
    // An in-flight round crossing the crashed link would mix pre- and
    // post-crash stamps; kill it (its links are restored except this one,
    // whose truth arrives with the resync replies).
    disarm_watchdog();
    abandon_round();
  }
  send_resync_requests(link);
  const std::uint32_t epoch = node.epoch;
  simulator_->after(resync_rto(), [this, link, epoch] { on_resync_watchdog(link, epoch); });
  pump();
}

sim::Duration DistributedProtocol::resync_rto() const {
  return sim::Duration::seconds(std::max(config_.retransmit_timeout.to_seconds(),
                                         config_.hop_latency.to_seconds() * 12.0));
}

void DistributedProtocol::send_resync_requests(LinkIndex link) {
  LinkNode& node = links_[link];
  const std::uint32_t epoch = node.epoch;
  // Request + reply modeled as one transport delivery over the link's own
  // channel, two hops end to end.
  const sim::Duration rtt =
      sim::Duration::seconds(config_.hop_latency.to_seconds() * 2.0);
  for (ConnIndex conn : node.resync_pending) {
    transmit(link, rtt, [this, link, epoch, conn] { on_resync_reply(link, epoch, conn); });
    ++messages_sent_;
  }
  if (messages_sent_ >= config_.message_cap) cap_hit_ = true;
}

void DistributedProtocol::on_resync_reply(LinkIndex link, std::uint32_t epoch,
                                          ConnIndex conn) {
  LinkNode& node = links_.at(link);
  if (node.epoch != epoch) return;  // reply to an older incarnation
  auto it = std::find(node.resync_pending.begin(), node.resync_pending.end(), conn);
  if (it == node.resync_pending.end()) return;  // duplicate reply
  const std::size_t i = std::size_t(it - node.resync_pending.begin());
  node.resync_pending[i] = node.resync_pending.back();
  node.resync_tries[i] = node.resync_tries.back();
  node.resync_pending.pop_back();
  node.resync_tries.pop_back();
  if (conn < conn_alive_.size() && conn_alive_[conn]) {
    const std::size_t pos = node.position_of(conn);
    if (pos < node.members.size()) {
      node.recorded[pos] = std::max(rates_[conn], 0.0);
      recompute_mu(link);
    }
  }
  if (!node.resyncing()) finish_resync(link);
}

void DistributedProtocol::on_resync_watchdog(LinkIndex link, std::uint32_t epoch) {
  LinkNode& node = links_.at(link);
  if (node.epoch != epoch || !node.resyncing()) return;
  // Members that exhausted their budget are treated as silent: their share
  // here stays zero and they are told to renegotiate when they reappear.
  for (std::size_t i = node.resync_pending.size(); i-- > 0;) {
    if (node.resync_tries[i] >= config_.resync_retry_budget) {
      ++resync_expired_;
      renegotiations_.push_back(node.resync_pending[i]);
      node.resync_pending[i] = node.resync_pending.back();
      node.resync_tries[i] = node.resync_tries.back();
      node.resync_pending.pop_back();
      node.resync_tries.pop_back();
    } else {
      ++node.resync_tries[i];
    }
  }
  if (!node.resyncing()) {
    finish_resync(link);
    return;
  }
  retransmissions_ += node.resync_pending.size();
  send_resync_requests(link);
  simulator_->after(resync_rto(), [this, link, epoch] { on_resync_watchdog(link, epoch); });
}

void DistributedProtocol::finish_resync(LinkIndex link) {
  ++resyncs_completed_;
  // The rebuilt picture may leave capacity idle or oversubscribed; rerun the
  // refinement cascades from the restored state.
  initiate_over_consumers(link, kNoConnection);
  initiate_growers(link, kNoConnection);
  pump();
}

void DistributedProtocol::resynchronize() {
  ++generation_;
  // Drop the completion memory that suppresses re-triggers: it may encode
  // futility proven against state that no longer exists.
  for (LinkNode& node : links_) {
    for (ConnState& state : node.state) state.has_last_completed = false;
  }
  start_all();
  pump();
}

// ---- checkpoint/restore (ISSUE 4) ---------------------------------------

bool DistributedProtocol::quiescent() const {
  if (active_ || !trigger_queue_.empty() || watchdog_armed_) return false;
  for (const LinkNode& node : links_) {
    if (node.resyncing()) return false;
  }
  return true;
}

void DistributedProtocol::save_state(sim::CheckpointWriter& w) const {
  w.u64(links_.size());
  for (const LinkNode& node : links_) {
    w.f64(node.mu.excess_capacity());
    w.f64(node.mu.current());
    w.u32(node.epoch);
    w.u64(node.members.size());
    for (std::size_t i = 0; i < node.members.size(); ++i) {
      w.u64(node.members[i]);
      w.f64(node.recorded[i]);
      const ConnState& s = node.state[i];
      w.boolean(s.in_bottleneck);
      w.boolean(s.has_last_completed);
      w.f64(s.last_completed_mu);
      w.f64(s.last_completed_rate);
      w.u64(s.last_flood_generation);
    }
    w.u64(node.resync_pending.size());
    for (std::size_t i = 0; i < node.resync_pending.size(); ++i) {
      w.u64(node.resync_pending[i]);
      w.u32(std::uint32_t(node.resync_tries[i]));
    }
  }
  w.u64(paths_.size());
  for (ConnIndex ci = 0; ci < paths_.size(); ++ci) {
    w.u64(paths_[ci].size());
    for (LinkIndex li : paths_[ci]) w.u64(li);
    w.boolean(conn_alive_[ci]);
    w.f64(rates_[ci]);
  }
  w.u64(renegotiations_.size());
  for (ConnIndex conn : renegotiations_) w.u64(conn);
  w.u64(messages_sent_);
  w.u64(rounds_run_);
  w.u64(generation_);
  w.u64(active_token_);
  w.u64(round_serial_);
  w.u64(retransmissions_);
  w.u64(rounds_abandoned_);
  w.u64(stale_ignored_);
  w.u64(crashes_);
  w.u64(resyncs_completed_);
  w.u64(resync_expired_);
  w.boolean(cap_hit_);
}

void DistributedProtocol::restore_state(sim::CheckpointReader& r) {
  if (r.u64() != links_.size()) {
    throw sim::CheckpointError("maxmin: checkpoint link count mismatch");
  }
  for (LinkNode& node : links_) {
    const double excess = r.f64();
    const double mu = r.f64();
    node.mu.restore(excess, mu);
    node.epoch = r.u32();
    if (r.u64() != node.members.size()) {
      throw sim::CheckpointError("maxmin: checkpoint member count mismatch");
    }
    for (std::size_t i = 0; i < node.members.size(); ++i) {
      if (r.u64() != std::uint64_t(node.members[i])) {
        throw sim::CheckpointError("maxmin: checkpoint member order mismatch");
      }
      node.recorded[i] = r.f64();
      ConnState& s = node.state[i];
      s.in_bottleneck = r.boolean();
      s.has_last_completed = r.boolean();
      s.last_completed_mu = r.f64();
      s.last_completed_rate = r.f64();
      s.last_flood_generation = r.u64();
    }
    node.resync_pending.resize(std::size_t(r.u64()));
    node.resync_tries.resize(node.resync_pending.size());
    for (std::size_t i = 0; i < node.resync_pending.size(); ++i) {
      node.resync_pending[i] = ConnIndex(r.u64());
      node.resync_tries[i] = int(r.u32());
    }
  }
  if (r.u64() != paths_.size()) {
    throw sim::CheckpointError("maxmin: checkpoint connection count mismatch");
  }
  for (ConnIndex ci = 0; ci < paths_.size(); ++ci) {
    if (r.u64() != paths_[ci].size()) {
      throw sim::CheckpointError("maxmin: checkpoint path mismatch");
    }
    for (LinkIndex li : paths_[ci]) {
      if (r.u64() != std::uint64_t(li)) {
        throw sim::CheckpointError("maxmin: checkpoint path mismatch");
      }
    }
    conn_alive_[ci] = r.boolean();
    rates_[ci] = r.f64();
  }
  renegotiations_.resize(std::size_t(r.u64()));
  for (ConnIndex& conn : renegotiations_) conn = ConnIndex(r.u64());
  messages_sent_ = r.u64();
  rounds_run_ = r.u64();
  generation_ = r.u64();
  active_token_ = r.u64();
  round_serial_ = r.u64();
  retransmissions_ = r.u64();
  rounds_abandoned_ = r.u64();
  stale_ignored_ = r.u64();
  crashes_ = r.u64();
  resyncs_completed_ = r.u64();
  resync_expired_ = r.u64();
  cap_hit_ = r.boolean();
  started_ = true;
  // A save taken mid-resync (crash-recovery semantics) has unknown members
  // but no in-flight requests or armed watchdog — both died with the saved
  // process. Resume the resync for those links: re-request and re-arm. On a
  // quiescent save this loop is a no-op, preserving byte-identity.
  for (LinkIndex li = 0; li < links_.size(); ++li) {
    if (!links_[li].resyncing()) continue;
    send_resync_requests(li);
    const std::uint32_t epoch = links_[li].epoch;
    simulator_->after(resync_rto(), [this, li, epoch] { on_resync_watchdog(li, epoch); });
  }
}

// ---- observability ------------------------------------------------------

void DistributedProtocol::trace_round_complete(ConnIndex conn, double final_rate) {
  obs::Tracer* tracer = simulator_->tracer();
  if (!tracer || !tracer->enabled()) return;
  if (trace_round_name_ == obs::kInvalidName) {
    trace_round_name_ = tracer->intern("adaptation-round", "maxmin");
  }
  tracer->complete(round_started_, simulator_->now(), trace_round_name_,
                   std::uint32_t(conn), final_rate);
}

void DistributedProtocol::trace_update(ConnIndex conn, double rate) {
  obs::Tracer* tracer = simulator_->tracer();
  if (!tracer || !tracer->enabled()) return;
  if (trace_update_name_ == obs::kInvalidName) {
    trace_update_name_ = tracer->intern("update", "maxmin");
  }
  tracer->instant(simulator_->now(), trace_update_name_, std::uint32_t(conn), rate);
}

void DistributedProtocol::trace_mu(LinkIndex link, double mu) {
  obs::Tracer* tracer = simulator_->tracer();
  if (!tracer || !tracer->enabled()) return;
  if (trace_link_names_.size() <= link) {
    trace_link_names_.resize(links_.size(), obs::kInvalidName);
  }
  if (trace_link_names_[link] == obs::kInvalidName) {
    trace_link_names_[link] =
        tracer->intern("link" + std::to_string(link) + ".advertised_rate", "maxmin");
  }
  tracer->counter(simulator_->now(), trace_link_names_[link], mu);
}

void DistributedProtocol::export_metrics(obs::Registry& registry) const {
  registry.counter("maxmin.messages_sent").add(messages_sent_);
  registry.counter("maxmin.rounds_run").add(rounds_run_);
  registry.counter("maxmin.renegotiation_requests").add(renegotiations_.size());
  registry.gauge("maxmin.message_cap_hit").set(cap_hit_ ? 1.0 : 0.0);
  if (config_.harden) {
    // Hardened-mode telemetry; registered only when the machinery is on so
    // fault-free reports keep their exact shape.
    registry.counter("fault.protocol.retransmissions").add(retransmissions_);
    registry.counter("fault.protocol.rounds_abandoned").add(rounds_abandoned_);
    registry.counter("fault.protocol.stale_ignored").add(stale_ignored_);
    registry.counter("fault.protocol.crashes").add(crashes_);
    registry.counter("fault.protocol.resyncs_completed").add(resyncs_completed_);
    registry.counter("fault.protocol.resync_expired").add(resync_expired_);
  }
  for (std::size_t li = 0; li < links_.size(); ++li) {
    const std::string prefix = "maxmin.link." + std::to_string(li);
    registry.gauge(prefix + ".advertised_rate").set(links_[li].mu.current());
    std::size_t bottlenecked = 0;
    for (const ConnState& s : links_[li].state) bottlenecked += s.in_bottleneck ? 1 : 0;
    registry.gauge(prefix + ".bottleneck_set_size").set(double(bottlenecked));
  }
}

}  // namespace imrm::maxmin
