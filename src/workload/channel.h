// Time-varying wireless channel (Section 2.1: "the time-varying effective
// capacity of the wireless link").
//
// A two-state Gilbert-Elliott process: the channel alternates between a
// good state (full effective capacity) and a bad state (degraded capacity),
// with exponentially distributed sojourn times. Each transition invokes a
// callback so the adaptation machinery can react — this is the substitution
// for real wireless channel error documented in DESIGN.md.
#pragma once

#include "qos/flow_spec.h"
#include "sim/inplace_function.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace imrm::obs {
class Counter;
class Gauge;
class Registry;
}  // namespace imrm::obs

namespace imrm::workload {

class GilbertElliottChannel {
 public:
  struct Config {
    qos::BitsPerSecond good_capacity = qos::mbps(1.6);
    qos::BitsPerSecond bad_capacity = qos::mbps(0.4);
    sim::Duration mean_good = sim::Duration::minutes(5);
    sim::Duration mean_bad = sim::Duration::seconds(30);
  };

  /// Same inline-storage callback the event queue uses: a channel observer
  /// is a `this` pointer plus a little state, so no per-transition
  /// std::function heap traffic on the hot path.
  using CapacityCallback = sim::InplaceFunction<void(qos::BitsPerSecond), 48>;

  GilbertElliottChannel(sim::Simulator& simulator, Config config, sim::Rng rng,
                        CapacityCallback on_change)
      : simulator_(&simulator), config_(config), rng_(std::move(rng)),
        on_change_(std::move(on_change)) {}

  /// Starts in the good state and schedules transitions until `horizon`.
  void start(sim::SimTime horizon);

  /// Caches a `channel.transitions` counter and `channel.capacity_bps` gauge
  /// from `registry` (nullptr detaches); the gauge tracks the current
  /// effective capacity through every transition, and its max() recovers the
  /// good-state capacity for reports.
  void bind_metrics(obs::Registry* registry);

  [[nodiscard]] bool in_good_state() const { return good_; }
  [[nodiscard]] qos::BitsPerSecond current_capacity() const {
    return good_ ? config_.good_capacity : config_.bad_capacity;
  }
  [[nodiscard]] std::size_t transitions() const { return transitions_; }

  /// Long-run fraction of time in the good state (analytic).
  [[nodiscard]] double good_duty_cycle() const {
    const double g = config_.mean_good.to_seconds();
    const double b = config_.mean_bad.to_seconds();
    return g / (g + b);
  }

 private:
  void schedule_transition(sim::SimTime horizon);

  sim::Simulator* simulator_;
  Config config_;
  sim::Rng rng_;
  CapacityCallback on_change_;
  bool good_ = true;
  std::size_t transitions_ = 0;
  obs::Counter* transitions_counter_ = nullptr;
  obs::Gauge* capacity_gauge_ = nullptr;
};

}  // namespace imrm::workload
