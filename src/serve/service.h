// AdmissionService: the paper's admission-control pipeline as a long-running
// request/response service (ISSUE 8 tentpole).
//
// The service wraps one core::NetworkEnvironment (Table 2 admission,
// advance reservations, multicast warm state, max-min conflict resolution)
// behind the serve codec and a transport seam, with a bounded ingress queue
// and an explicit overload policy:
//
//   * every inbound frame is counted as OFFERED;
//   * the OverloadGovernor decides admit-vs-shed per arrival: a request is
//     SHED (answered immediately with ShedReply{retry_after_us}) once queue
//     depth reaches the configured capacity or the measured latency p99
//     crosses the SLO — saturation degrades to fast rejects, never to an
//     unbounded queue. Hysteresis (depth back under half capacity AND p99
//     back under the SLO) exits shed mode;
//   * everything else is PROCESSED: decoded (malformed frames count as
//     ERRORS and get a typed ErrorReply), executed against the environment,
//     and answered. Per-request latency (arrival -> reply) feeds both the
//     governor's sliding window and the serve.latency_us histogram.
//
// Two clock domains, one code path:
//   * pump_virtual() — deterministic single-threaded mode: driver and
//     service interleave on one sim::Simulator, each processed request costs
//     a fixed virtual_service_cost_us of simulated time (an M/D/1 server).
//     Queueing, shedding, and every latency percentile are bit-reproducible
//     at a fixed seed;
//   * run_wall() — the real service loop: steady-clock arrival stamps, work
//     costs whatever the admission pipeline costs, used by the socket
//     listener and the two-thread in-process benchmark.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/network_environment.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "serve/codec.h"
#include "serve/transport.h"
#include "sim/simulator.h"

namespace imrm::serve {

/// Overload policy knobs. The queue capacity bounds memory and worst-case
/// queueing delay; the p99 target is the service-level objective the run
/// report's `slo` verdict is judged against.
struct SloConfig {
  double p99_target_us = 5000.0;
  std::size_t queue_capacity = 512;
  /// Backoff hint carried in ShedReply.
  double retry_after_us = 5000.0;
  /// Sliding latency window the governor estimates p99 over.
  std::size_t latency_window = 512;
};

/// Shed-with-retry-after governor. Deterministic: the p99 estimate refreshes
/// every kRefreshInterval observations (not on a wall timer), so virtual-
/// pacing runs reproduce shed decisions bit-exactly.
class OverloadGovernor {
 public:
  static constexpr std::size_t kRefreshInterval = 32;
  /// Observations required after leaving shed mode before the p99 estimate
  /// can trip it again. Shed mode starves the latency window of samples, so
  /// the estimate is stale at exit; without this guard a single overload
  /// spike would shed forever on frozen evidence.
  static constexpr std::size_t kMinFreshSamples = 64;

  explicit OverloadGovernor(const SloConfig& slo);

  /// Admission decision for one arriving request at the given queue depth.
  /// False = shed. Enter shed mode on depth >= capacity, or on window-p99
  /// over target once kMinFreshSamples post-recovery samples accumulated;
  /// leave it when depth falls to capacity/2 (depth is the only live signal
  /// while shedding — see admit() in service.cc).
  [[nodiscard]] bool admit(std::size_t queue_depth);

  /// Feeds one completed request's latency into the sliding window.
  void observe_latency(double us);

  [[nodiscard]] bool shedding() const { return shedding_; }
  [[nodiscard]] double window_p99_us() const { return p99_us_; }
  [[nodiscard]] const SloConfig& slo() const { return slo_; }

 private:
  void refresh_p99();

  SloConfig slo_;
  std::vector<double> window_;  // ring; newest overwrites oldest
  std::size_t next_ = 0;
  std::size_t filled_ = 0;
  std::size_t fresh_ = 0;  // observations since the last shed-mode exit
  std::size_t since_refresh_ = 0;
  double p99_us_ = 0.0;
  bool shedding_ = false;
};

struct ServiceConfig {
  /// Cells in the service's corridor-chain cell map (cell i neighbors i±1).
  std::size_t cells = 16;
  SloConfig slo;
  core::BackboneConfig backbone;
  /// Simulated service time per processed request in pump_virtual mode.
  /// Saturation throughput is 1e6 / virtual_service_cost_us requests/s.
  double virtual_service_cost_us = 200.0;
  /// Re-run max-min conflict resolution after every N processed requests
  /// (0 = only the adapt retries the environment does internally).
  std::size_t adapt_every = 0;
  /// Instrument sink (serve.* counters/gauges/histograms); may be null.
  obs::Registry* metrics = nullptr;
  /// Wall-clock phases serve.decode / serve.admit / serve.reply; may be null.
  obs::Profiler* profiler = nullptr;
};

/// Plain counters mirrored into the registry (when bound) and the RunReport
/// `service` block. offered == processed + shed always holds; errors are the
/// subset of processed that failed decode or hit a typed service error.
struct ServiceStats {
  std::uint64_t offered = 0;
  std::uint64_t processed = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  std::uint64_t admit_accepted = 0;
  std::uint64_t admit_rejected = 0;
  std::uint64_t teardowns = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t handoff_drops = 0;
  std::uint64_t probes = 0;
  std::size_t peak_queue_depth = 0;
};

class AdmissionService {
 public:
  AdmissionService(const ServiceConfig& config, sim::Simulator& simulator);

  /// Virtual pacing: ingests every request currently buffered in the
  /// transport at the current simulated time and keeps the (single) virtual
  /// server busy by scheduling completion events on the simulator. Call from
  /// driver arrival events, then let the simulator run.
  void pump_virtual(ServerTransport& transport);

  /// Wall pacing: serves until a Shutdown request has been processed and the
  /// queue drained, the transport finishes, or `deadline_seconds` of wall
  /// time elapse (0 = no deadline).
  void run_wall(ServerTransport& transport, double deadline_seconds);

  [[nodiscard]] const ServiceStats& stats() const { return stats_; }
  [[nodiscard]] bool shutdown_requested() const { return shutdown_; }
  [[nodiscard]] bool shedding() const { return governor_.shedding(); }
  [[nodiscard]] double window_p99_us() const { return governor_.window_p99_us(); }
  [[nodiscard]] std::size_t queue_depth() const {
    return queue_.size() + (virtual_busy_ ? 1 : 0);
  }
  [[nodiscard]] std::size_t cells() const { return map_size_; }
  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  [[nodiscard]] core::NetworkEnvironment& environment() { return *env_; }

 private:
  struct Pending {
    std::uint64_t client = 0;
    std::vector<std::uint8_t> frame;
    double arrival_us = 0.0;  // virtual: sim µs; wall: µs since run start
  };

  void bind_metrics();
  /// Offered-frame intake: shed-or-enqueue at `now_us`.
  void ingest(ServerTransport& transport, Envelope&& env, double now_us);
  /// Full decode -> execute -> reply for one dequeued request, completing at
  /// `now_us` (latency = now_us - arrival).
  void process(ServerTransport& transport, Pending&& pending, double now_us);
  /// Keeps the virtual server busy: pops the queue head into a completion
  /// event virtual_service_cost_us in the simulated future.
  void schedule_virtual_completion();
  Reply execute(const Request& request);
  Reply do_admit(const AdmitRequest& request);
  Reply do_teardown(const TeardownRequest& request);
  Reply do_handoff(const HandoffRequest& request);
  [[nodiscard]] double sim_now_us() const;
  void set_depth_gauge();

  ServiceConfig config_;
  sim::Simulator* simulator_;
  std::size_t map_size_ = 0;
  std::optional<core::NetworkEnvironment> env_;
  std::unordered_map<std::uint32_t, net::PortableId> portable_of_;  // external -> internal
  std::deque<Pending> queue_;
  OverloadGovernor governor_;
  ServiceStats stats_;
  bool shutdown_ = false;
  bool virtual_busy_ = false;
  ServerTransport* virtual_transport_ = nullptr;
  std::uint64_t processed_since_adapt_ = 0;

  // Cached instruments (null when config_.metrics is null).
  obs::Counter* c_offered_ = nullptr;
  obs::Counter* c_processed_ = nullptr;
  obs::Counter* c_shed_ = nullptr;
  obs::Counter* c_errors_ = nullptr;
  obs::Counter* c_admit_accepted_ = nullptr;
  obs::Counter* c_admit_rejected_ = nullptr;
  obs::Counter* c_teardowns_ = nullptr;
  obs::Counter* c_handoffs_ = nullptr;
  obs::Counter* c_handoff_drops_ = nullptr;
  obs::Counter* c_probes_ = nullptr;
  obs::Gauge* g_queue_depth_ = nullptr;
  obs::Histogram* h_latency_us_ = nullptr;

  obs::PhaseId ph_decode_ = obs::kInvalidPhase;
  obs::PhaseId ph_admit_ = obs::kInvalidPhase;
  obs::PhaseId ph_reply_ = obs::kInvalidPhase;
};

/// The latency histogram layout shared by service and driver:
/// log2 buckets from 1 µs to ~1.05 s, 8 sub-buckets per octave.
[[nodiscard]] obs::HistogramSpec latency_histogram_spec();

/// The service's cell map: `cells` office cells in a corridor chain (cell i
/// neighbors i-1 and i+1) — the minimal topology where handoffs, advance
/// reservations, and multicast branches all engage.
[[nodiscard]] mobility::CellMap service_cell_map(std::size_t cells);

}  // namespace imrm::serve
