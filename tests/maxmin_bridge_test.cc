// Tests for the bridge between live network state and the max-min solver:
// problem extraction (excess capacities, headrooms, static-only filtering)
// and conflict resolution application.
#include <gtest/gtest.h>

#include "maxmin/bridge.h"
#include "net/routing.h"
#include "net/topology.h"

namespace imrm::maxmin {
namespace {

using net::NodeId;
using net::NodeKind;
using net::Topology;
using qos::kbps;
using qos::mbps;

qos::QosRequest request(double min_kbps, double max_kbps) {
  qos::QosRequest r;
  r.bandwidth = {kbps(min_kbps), kbps(max_kbps)};
  r.delay_bound = 10.0;
  r.jitter_bound = 10.0;
  r.loss_bound = 0.1;
  r.traffic = {8000.0, 8000.0};
  return r;
}

struct Fixture : ::testing::Test {
  Fixture() {
    a = topo.add_node(NodeKind::kHost);
    b = topo.add_node(NodeKind::kSwitch);
    c = topo.add_node(NodeKind::kHost);
    topo.add_duplex(a, b, mbps(1.0), 1e7);
    topo.add_duplex(b, c, mbps(2.0), 1e7);
  }

  net::Route route_ac() {
    const net::Router router(topo);
    return *router.shortest_path(a, c);
  }

  Topology topo;
  NodeId a, b, c;
};

TEST_F(Fixture, ExtractSkipsMobileWhenStaticOnly) {
  net::NetworkState net(topo);
  ASSERT_TRUE(net.admit(a, c, route_ac(), request(100, 400), qos::MobilityClass::kStatic));
  ASSERT_TRUE(net.admit(a, c, route_ac(), request(100, 400), qos::MobilityClass::kMobile));

  const auto static_only = extract_problem(net, /*static_only=*/true);
  EXPECT_EQ(static_only.problem.connections.size(), 1u);
  const auto everyone = extract_problem(net, /*static_only=*/false);
  EXPECT_EQ(everyone.problem.connections.size(), 2u);
}

TEST_F(Fixture, ExtractComputesExcessAndHeadroom) {
  net::NetworkState net(topo);
  ASSERT_TRUE(net.admit(a, c, route_ac(), request(100, 400), qos::MobilityClass::kStatic));
  const auto extracted = extract_problem(net, true);
  ASSERT_EQ(extracted.problem.links.size(), 2u);  // only links on the route
  // Excess = capacity - sum b_min: 1000-100 and 2000-100 kbps.
  double seen_small = 0.0, seen_big = 0.0;
  for (const auto& link : extracted.problem.links) {
    if (link.excess_capacity < kbps(1500)) seen_small = link.excess_capacity;
    else seen_big = link.excess_capacity;
  }
  EXPECT_DOUBLE_EQ(seen_small, kbps(900));
  EXPECT_DOUBLE_EQ(seen_big, kbps(1900));
  // Demand = headroom = 300 kbps.
  EXPECT_DOUBLE_EQ(extracted.problem.connections[0].demand, kbps(300));
}

TEST_F(Fixture, ResolveConflictsAppliesAllocations) {
  net::NetworkState net(topo);
  const auto c1 = net.admit(a, c, route_ac(), request(100, 10000), qos::MobilityClass::kStatic);
  const auto c2 = net.admit(a, c, route_ac(), request(100, 300), qos::MobilityClass::kStatic);
  ASSERT_TRUE(c1 && c2);
  resolve_conflicts(net, true);
  // Bottleneck link a-b: excess = 1000 - 200 = 800. c2 demand-limited at
  // +200; c1 takes the remaining 600: totals 700 and 300.
  EXPECT_NEAR(net.connection(*c1).allocated, kbps(700), 1.0);
  EXPECT_NEAR(net.connection(*c2).allocated, kbps(300), 1.0);
}

TEST_F(Fixture, ResolveSqueezesWhenReservationsArrive) {
  net::NetworkState net(topo);
  const auto c1 = net.admit(a, c, route_ac(), request(100, 10000), qos::MobilityClass::kStatic);
  ASSERT_TRUE(c1);
  resolve_conflicts(net, true);
  EXPECT_NEAR(net.connection(*c1).allocated, kbps(1000), 1.0);  // whole link

  // An advance reservation lands on the bottleneck: the next resolution
  // must pull the allocation back.
  net.link(net.connection(*c1).route.front()).reserve_advance(kbps(400));
  resolve_conflicts(net, true);
  EXPECT_NEAR(net.connection(*c1).allocated, kbps(600), 1.0);
}

TEST_F(Fixture, NegativeExcessClampedToZero) {
  net::NetworkState net(topo);
  const auto c1 = net.admit(a, c, route_ac(), request(800, 1000), qos::MobilityClass::kStatic);
  ASSERT_TRUE(c1);
  // Capacity collapse below the guaranteed minimum: extraction clamps the
  // excess at zero, so resolution pins the connection at b_min.
  net.link(net.connection(*c1).route.front()).set_capacity(kbps(500));
  resolve_conflicts(net, true);
  EXPECT_DOUBLE_EQ(net.connection(*c1).allocated, kbps(800));  // b_min held
}

TEST_F(Fixture, EmptyNetworkIsFine) {
  net::NetworkState net(topo);
  const auto rates = resolve_conflicts(net, true);
  EXPECT_TRUE(rates.empty());
}

}  // namespace
}  // namespace imrm::maxmin
