#include "serve/codec.h"

#include <cmath>
#include <cstring>

#include "qos/admission.h"

namespace imrm::serve {

namespace {

// Little-endian writer over a growing byte vector, mirroring
// sim::CheckpointWriter but scoped to wire frames.
class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str32(const std::string& s) {
    u32(std::uint32_t(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void patch_u32(std::size_t offset, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_[offset + std::size_t(i)] = std::uint8_t(v >> (8 * i));
  }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

// Bounds-checked little-endian reader; every overrun is a typed kTruncated.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(data_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(data_[pos_++]) << (8 * i);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str32() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  /// Payloads must be consumed exactly: leftover bytes mean the sender
  /// packed a different layout than the type byte claims.
  void expect_consumed() const {
    if (pos_ != size_) {
      throw CodecError(CodecErrorCode::kTrailing,
                       "serve codec: " + std::to_string(size_ - pos_) +
                           " trailing payload byte(s)");
    }
  }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw CodecError(CodecErrorCode::kTruncated, "serve codec: truncated frame");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

bool decode_flag(Reader& r, const char* what) {
  const std::uint8_t v = r.u8();
  if (v > 1) {
    throw CodecError(CodecErrorCode::kBadValue,
                     std::string("serve codec: ") + what + " flag must be 0 or 1, got " +
                         std::to_string(int(v)));
  }
  return v != 0;
}

double decode_finite(Reader& r, const char* what) {
  const double v = r.f64();
  if (!std::isfinite(v)) {
    throw CodecError(CodecErrorCode::kBadValue,
                     std::string("serve codec: ") + what + " must be finite");
  }
  return v;
}

void encode_qos(Writer& w, const qos::QosRequest& q) {
  w.f64(q.bandwidth.b_min);
  w.f64(q.bandwidth.b_max);
  w.f64(q.delay_bound);
  w.f64(q.jitter_bound);
  w.f64(q.loss_bound);
  w.f64(q.traffic.sigma);
  w.f64(q.traffic.l_max);
}

qos::QosRequest decode_qos(Reader& r) {
  qos::QosRequest q;
  q.bandwidth.b_min = decode_finite(r, "qos b_min");
  q.bandwidth.b_max = decode_finite(r, "qos b_max");
  q.delay_bound = decode_finite(r, "qos delay_bound");
  q.jitter_bound = decode_finite(r, "qos jitter_bound");
  q.loss_bound = decode_finite(r, "qos loss_bound");
  q.traffic.sigma = decode_finite(r, "qos sigma");
  q.traffic.l_max = decode_finite(r, "qos l_max");
  return q;
}

/// Emits the 18-byte header with a placeholder length, then patches it once
/// the payload has been appended.
class FrameBuilder {
 public:
  FrameBuilder(MsgType type, std::uint64_t request_id) {
    w_.u32(kWireMagic);
    w_.u8(kWireVersion);
    w_.u8(std::uint8_t(type));
    w_.u64(request_id);
    len_offset_ = w_.size();
    w_.u32(0);
  }
  Writer& payload() { return w_; }
  std::vector<std::uint8_t> take() {
    w_.patch_u32(len_offset_, std::uint32_t(w_.size() - kHeaderBytes));
    return w_.take();
  }

 private:
  Writer w_;
  std::size_t len_offset_ = 0;
};

/// Validates the header and returns {type, request_id}; `size` must cover
/// exactly header + declared payload.
struct Header {
  MsgType type;
  std::uint64_t request_id;
  std::uint32_t payload_len;
};

Header decode_header(Reader& r, std::size_t total_size) {
  if (total_size < kHeaderBytes) {
    throw CodecError(CodecErrorCode::kTruncated,
                     "serve codec: frame shorter than the 18-byte header");
  }
  const std::uint32_t magic = r.u32();
  if (magic != kWireMagic) {
    throw CodecError(CodecErrorCode::kBadMagic, "serve codec: bad magic (not an IMRQ frame)");
  }
  const std::uint8_t version = r.u8();
  if (version != kWireVersion) {
    throw CodecError(CodecErrorCode::kBadVersion,
                     "serve codec: unsupported wire version " + std::to_string(int(version)));
  }
  const std::uint8_t type = r.u8();
  const std::uint64_t request_id = r.u64();
  const std::uint32_t payload_len = r.u32();
  if (payload_len > kMaxPayload) {
    throw CodecError(CodecErrorCode::kOversized,
                     "serve codec: payload length " + std::to_string(payload_len) +
                         " exceeds the " + std::to_string(kMaxPayload) + "-byte bound");
  }
  if (total_size < kHeaderBytes + payload_len) {
    throw CodecError(CodecErrorCode::kTruncated, "serve codec: truncated frame");
  }
  if (total_size > kHeaderBytes + payload_len) {
    throw CodecError(CodecErrorCode::kTrailing,
                     "serve codec: frame longer than header + declared payload");
  }
  return {MsgType(type), request_id, payload_len};
}

}  // namespace

const char* to_string(CodecErrorCode code) {
  switch (code) {
    case CodecErrorCode::kTruncated: return "truncated";
    case CodecErrorCode::kBadMagic: return "bad-magic";
    case CodecErrorCode::kBadVersion: return "bad-version";
    case CodecErrorCode::kOversized: return "oversized";
    case CodecErrorCode::kBadType: return "bad-type";
    case CodecErrorCode::kBadValue: return "bad-value";
    case CodecErrorCode::kTrailing: return "trailing-bytes";
  }
  return "unknown";
}

const char* to_string(ServiceError err) {
  switch (err) {
    case ServiceError::kMalformedFrame: return "malformed-frame";
    case ServiceError::kUnknownPortable: return "unknown-portable";
    case ServiceError::kUnknownCell: return "unknown-cell";
    case ServiceError::kAlreadyAdmitted: return "already-admitted";
    case ServiceError::kNoSession: return "no-session";
    case ServiceError::kShuttingDown: return "shutting-down";
    case ServiceError::kNotAdjacent: return "not-adjacent";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_request(std::uint64_t request_id, const Request& body) {
  const MsgType type = std::visit(
      [](const auto& req) {
        using T = std::decay_t<decltype(req)>;
        if constexpr (std::is_same_v<T, AdmitRequest>) return MsgType::kAdmit;
        else if constexpr (std::is_same_v<T, TeardownRequest>) return MsgType::kTeardown;
        else if constexpr (std::is_same_v<T, HandoffRequest>) return MsgType::kHandoff;
        else if constexpr (std::is_same_v<T, ProbeRequest>) return MsgType::kProbe;
        else return MsgType::kShutdown;
      },
      body);
  FrameBuilder frame(type, request_id);
  Writer& w = frame.payload();
  std::visit(
      [&w](const auto& req) {
        using T = std::decay_t<decltype(req)>;
        if constexpr (std::is_same_v<T, AdmitRequest>) {
          w.u32(req.portable);
          w.u32(req.cell);
          w.u8(req.uplink ? 1 : 0);
          encode_qos(w, req.qos);
        } else if constexpr (std::is_same_v<T, TeardownRequest>) {
          w.u32(req.portable);
        } else if constexpr (std::is_same_v<T, HandoffRequest>) {
          w.u32(req.portable);
          w.u32(req.to_cell);
        }
        // Probe and Shutdown carry no payload.
      },
      body);
  return frame.take();
}

std::vector<std::uint8_t> encode_reply(std::uint64_t request_id, const Reply& body) {
  const MsgType type = std::visit(
      [](const auto& rep) {
        using T = std::decay_t<decltype(rep)>;
        if constexpr (std::is_same_v<T, AdmitReply>) return MsgType::kAdmitReply;
        else if constexpr (std::is_same_v<T, TeardownReply>) return MsgType::kTeardownReply;
        else if constexpr (std::is_same_v<T, HandoffReply>) return MsgType::kHandoffReply;
        else if constexpr (std::is_same_v<T, ProbeReply>) return MsgType::kProbeReply;
        else if constexpr (std::is_same_v<T, ShutdownReply>) return MsgType::kShutdownReply;
        else if constexpr (std::is_same_v<T, ShedReply>) return MsgType::kShedReply;
        else return MsgType::kErrorReply;
      },
      body);
  FrameBuilder frame(type, request_id);
  Writer& w = frame.payload();
  std::visit(
      [&w](const auto& rep) {
        using T = std::decay_t<decltype(rep)>;
        if constexpr (std::is_same_v<T, AdmitReply>) {
          w.u8(rep.accepted ? 1 : 0);
          w.u8(rep.reason);
          w.f64(rep.allocated_bps);
        } else if constexpr (std::is_same_v<T, TeardownReply>) {
          w.u8(rep.had_session ? 1 : 0);
        } else if constexpr (std::is_same_v<T, HandoffReply>) {
          w.u8(rep.completed ? 1 : 0);
        } else if constexpr (std::is_same_v<T, ProbeReply>) {
          w.u64(rep.offered);
          w.u64(rep.processed);
          w.u64(rep.shed);
          w.u64(rep.errors);
          w.u32(rep.queue_depth);
          w.u32(rep.cells);
        } else if constexpr (std::is_same_v<T, ShedReply>) {
          w.f64(rep.retry_after_us);
        } else if constexpr (std::is_same_v<T, ErrorReply>) {
          w.u8(std::uint8_t(rep.error));
          w.str32(rep.message);
        }
        // ShutdownReply carries no payload.
      },
      body);
  return frame.take();
}

RequestFrame decode_request(const std::uint8_t* data, std::size_t size) {
  Reader header_reader(data, size);
  const Header h = decode_header(header_reader, size);
  Reader r(data + kHeaderBytes, h.payload_len);
  RequestFrame frame;
  frame.request_id = h.request_id;
  switch (h.type) {
    case MsgType::kAdmit: {
      AdmitRequest req;
      req.portable = r.u32();
      req.cell = r.u32();
      req.uplink = decode_flag(r, "admit direction");
      req.qos = decode_qos(r);
      frame.body = req;
      break;
    }
    case MsgType::kTeardown: {
      TeardownRequest req;
      req.portable = r.u32();
      frame.body = req;
      break;
    }
    case MsgType::kHandoff: {
      HandoffRequest req;
      req.portable = r.u32();
      req.to_cell = r.u32();
      frame.body = req;
      break;
    }
    case MsgType::kProbe:
      frame.body = ProbeRequest{};
      break;
    case MsgType::kShutdown:
      frame.body = ShutdownRequest{};
      break;
    default:
      throw CodecError(CodecErrorCode::kBadType,
                       "serve codec: unknown request type " +
                           std::to_string(int(h.type)));
  }
  r.expect_consumed();
  return frame;
}

ReplyFrame decode_reply(const std::uint8_t* data, std::size_t size) {
  Reader header_reader(data, size);
  const Header h = decode_header(header_reader, size);
  Reader r(data + kHeaderBytes, h.payload_len);
  ReplyFrame frame;
  frame.request_id = h.request_id;
  switch (h.type) {
    case MsgType::kAdmitReply: {
      AdmitReply rep;
      rep.accepted = decode_flag(r, "admit accepted");
      rep.reason = r.u8();
      if (rep.reason >= qos::kRejectReasonCount) {
        throw CodecError(CodecErrorCode::kBadValue,
                         "serve codec: reject reason " + std::to_string(int(rep.reason)) +
                             " out of range");
      }
      rep.allocated_bps = decode_finite(r, "allocated_bps");
      frame.body = rep;
      break;
    }
    case MsgType::kTeardownReply: {
      TeardownReply rep;
      rep.had_session = decode_flag(r, "teardown had_session");
      frame.body = rep;
      break;
    }
    case MsgType::kHandoffReply: {
      HandoffReply rep;
      rep.completed = decode_flag(r, "handoff completed");
      frame.body = rep;
      break;
    }
    case MsgType::kProbeReply: {
      ProbeReply rep;
      rep.offered = r.u64();
      rep.processed = r.u64();
      rep.shed = r.u64();
      rep.errors = r.u64();
      rep.queue_depth = r.u32();
      rep.cells = r.u32();
      frame.body = rep;
      break;
    }
    case MsgType::kShutdownReply:
      frame.body = ShutdownReply{};
      break;
    case MsgType::kShedReply: {
      ShedReply rep;
      rep.retry_after_us = decode_finite(r, "retry_after_us");
      if (rep.retry_after_us < 0.0) {
        throw CodecError(CodecErrorCode::kBadValue,
                         "serve codec: retry_after_us must be non-negative");
      }
      frame.body = rep;
      break;
    }
    case MsgType::kErrorReply: {
      ErrorReply rep;
      const std::uint8_t err = r.u8();
      if (err >= kServiceErrorCount) {
        throw CodecError(CodecErrorCode::kBadValue,
                         "serve codec: service error code " + std::to_string(int(err)) +
                             " out of range");
      }
      rep.error = ServiceError(err);
      rep.message = r.str32();
      frame.body = rep;
      break;
    }
    default:
      throw CodecError(CodecErrorCode::kBadType,
                       "serve codec: unknown reply type " + std::to_string(int(h.type)));
  }
  r.expect_consumed();
  return frame;
}

std::uint64_t peek_request_id(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kHeaderBytes) return 0;
  Reader r(bytes.data(), kHeaderBytes);
  if (r.u32() != kWireMagic) return 0;
  if (r.u8() != kWireVersion) return 0;
  (void)r.u8();  // type — any value; the caller is building an error reply
  return r.u64();
}

void FrameAssembler::feed(const std::uint8_t* data, std::size_t size) {
  // Compact lazily: drop consumed bytes once they dominate the buffer so a
  // long-lived connection doesn't grow the buffer without bound.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + std::ptrdiff_t(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

bool FrameAssembler::next(std::vector<std::uint8_t>& frame) {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kHeaderBytes) return false;
  const std::uint8_t* head = buffer_.data() + consumed_;
  // Validate the header eagerly: a garbage stream must fail on its first 18
  // bytes, not after buffering kMaxPayload of noise.
  Reader r(head, kHeaderBytes);
  if (r.u32() != kWireMagic) {
    throw CodecError(CodecErrorCode::kBadMagic, "serve codec: bad magic (not an IMRQ frame)");
  }
  if (r.u8() != kWireVersion) {
    throw CodecError(CodecErrorCode::kBadVersion, "serve codec: unsupported wire version");
  }
  (void)r.u8();   // type byte — validated by decode_request/decode_reply
  (void)r.u64();  // request id
  const std::uint32_t payload_len = r.u32();
  if (payload_len > kMaxPayload) {
    throw CodecError(CodecErrorCode::kOversized,
                     "serve codec: payload length " + std::to_string(payload_len) +
                         " exceeds the " + std::to_string(kMaxPayload) + "-byte bound");
  }
  const std::size_t frame_size = kHeaderBytes + payload_len;
  if (available < frame_size) return false;
  frame.assign(head, head + frame_size);
  consumed_ += frame_size;
  return true;
}

}  // namespace imrm::serve
