#include "reservation/probabilistic.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace imrm::reservation {

std::vector<double> binomial_pmf(std::size_t n, double p) {
  assert(p >= 0.0 && p <= 1.0);
  // Iterative construction: start from Binomial(0, p) = {1} and fold in one
  // trial at a time — numerically stable and O(n^2), fine for n <= a few
  // hundred connections.
  std::vector<double> pmf{1.0};
  for (std::size_t trial = 0; trial < n; ++trial) {
    std::vector<double> next(pmf.size() + 1, 0.0);
    for (std::size_t k = 0; k < pmf.size(); ++k) {
      next[k] += pmf[k] * (1.0 - p);
      next[k + 1] += pmf[k] * p;
    }
    pmf = std::move(next);
  }
  return pmf;
}

namespace {

/// Convolves `dist` (pmf over bandwidth units, truncated at cap+1 with tail
/// mass lumped into the last bucket) with `count ~ pmf` scaled by
/// `unit_width` units each.
void convolve_scaled(std::vector<double>& dist, const std::vector<double>& count_pmf,
                     int unit_width, int cap) {
  const std::size_t size = std::size_t(cap) + 2;  // [0..cap] + overflow bucket
  std::vector<double> next(size, 0.0);
  for (std::size_t units = 0; units < dist.size(); ++units) {
    if (dist[units] == 0.0) continue;
    for (std::size_t k = 0; k < count_pmf.size(); ++k) {
      const std::size_t total =
          std::min(units + k * std::size_t(unit_width), size - 1);
      next[total] += dist[units] * count_pmf[k];
    }
  }
  dist = std::move(next);
}

}  // namespace

ProbabilisticReservation::ProbabilisticReservation(Config config,
                                                   std::vector<TypeParams> types)
    : config_(config), types_(std::move(types)) {
  assert(config_.capacity_units > 0);
  assert(config_.window > 0.0);
  assert(config_.handoff_prob >= 0.0 && config_.handoff_prob <= 1.0);
  for (const TypeParams& t : types_) {
    assert(t.bandwidth_units > 0 && t.mean_holding > 0.0);
    (void)t;
  }
}

double ProbabilisticReservation::p_stay(std::size_t type) const {
  const double mu = 1.0 / types_.at(type).mean_holding;
  return std::exp(-mu * config_.window);
}

double ProbabilisticReservation::p_move(std::size_t type) const {
  return (1.0 - p_stay(type)) * config_.handoff_prob;
}

double ProbabilisticReservation::nonblocking_probability(
    const std::vector<int>& counts_here, const std::vector<int>& counts_neighbor) const {
  assert(counts_here.size() == types_.size());
  assert(counts_neighbor.size() == types_.size());
  const int cap = config_.capacity_units;

  std::vector<double> dist(std::size_t(cap) + 2, 0.0);
  dist[0] = 1.0;
  for (std::size_t i = 0; i < types_.size(); ++i) {
    const int b = types_[i].bandwidth_units;
    if (counts_here[i] > 0) {
      convolve_scaled(dist, binomial_pmf(std::size_t(counts_here[i]), p_stay(i)), b, cap);
    }
    if (counts_neighbor[i] > 0) {
      convolve_scaled(dist, binomial_pmf(std::size_t(counts_neighbor[i]), p_move(i)), b,
                      cap);
    }
  }
  // P(S <= B_c) = 1 - overflow mass.
  return 1.0 - dist.back();
}

bool ProbabilisticReservation::admit_new(std::size_t type,
                                         const std::vector<int>& counts_here,
                                         const std::vector<int>& counts_neighbor) const {
  const int b = types_.at(type).bandwidth_units;
  if (used_units(counts_here) + b > config_.capacity_units) return false;
  std::vector<int> candidate = counts_here;
  ++candidate[type];
  return nonblocking_probability(candidate, counts_neighbor) >= 1.0 - config_.p_qos;
}

int ProbabilisticReservation::used_units(const std::vector<int>& counts) const {
  int used = 0;
  for (std::size_t i = 0; i < types_.size(); ++i) {
    used += counts[i] * types_[i].bandwidth_units;
  }
  return used;
}

int ProbabilisticReservation::reserved_units(const std::vector<int>& counts_here,
                                             const std::vector<int>& counts_neighbor) const {
  // Grow each type greedily until eq. 6 would break; eq. 7 then says the
  // remainder of B_c must stay reserved for handoffs.
  std::vector<int> maxed = counts_here;
  bool grew = true;
  while (grew) {
    grew = false;
    for (std::size_t i = 0; i < types_.size(); ++i) {
      if (admit_new(i, maxed, counts_neighbor)) {
        ++maxed[i];
        grew = true;
      }
    }
  }
  return std::max(config_.capacity_units - used_units(maxed), 0);
}

}  // namespace imrm::reservation
