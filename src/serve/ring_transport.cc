#include "serve/ring_transport.h"

#include <thread>

namespace imrm::serve {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Spin-then-yield poll loop shared by both blocking reads. Returns false
/// once `wait` elapses without `ready()` turning true.
template <typename Ready>
bool wait_until(Ready&& ready, std::chrono::microseconds wait) {
  if (ready()) return true;
  if (wait.count() <= 0) return false;
  const auto deadline = std::chrono::steady_clock::now() + wait;
  int spins = 0;
  while (!ready()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    // A short spin catches the common fast handoff; after that, yield so a
    // same-core producer/consumer pair makes progress.
    if (++spins > 64) std::this_thread::yield();
  }
  return true;
}

}  // namespace

SpscRing::SpscRing(std::size_t capacity)
    : slots_(round_up_pow2(capacity < 2 ? 2 : capacity)), mask_(slots_.size() - 1) {}

bool SpscRing::push(std::vector<std::uint8_t>&& frame) {
  const std::size_t head = head_.load(std::memory_order_relaxed);
  if (head - tail_.load(std::memory_order_acquire) == slots_.size()) return false;
  slots_[head & mask_] = std::move(frame);
  head_.store(head + 1, std::memory_order_release);
  return true;
}

bool SpscRing::pop(std::vector<std::uint8_t>& frame) {
  const std::size_t tail = tail_.load(std::memory_order_relaxed);
  if (head_.load(std::memory_order_acquire) == tail) return false;
  frame = std::move(slots_[tail & mask_]);
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

RingTransport::RingTransport(std::size_t request_capacity, std::size_t reply_capacity)
    : requests_(request_capacity), replies_(reply_capacity) {}

bool RingTransport::ServerEnd::next_request(Envelope& env,
                                            std::chrono::microseconds wait) {
  env.client = 0;
  const bool got = wait_until(
      [this] { return !owner_->requests_.empty() || owner_->client_closed_.load(
                          std::memory_order_acquire); },
      wait);
  if (!got && wait.count() > 0) return false;
  return owner_->requests_.pop(env.frame);
}

void RingTransport::ServerEnd::send_reply(std::uint64_t /*client*/,
                                          std::vector<std::uint8_t> frame) {
  if (!owner_->replies_.push(std::move(frame))) ++owner_->dropped_replies_;
}

bool RingTransport::ServerEnd::finished() const {
  // Order matters: read the closed flag before the emptiness check, so a
  // frame pushed just before close() is never missed.
  const bool closed = owner_->client_closed_.load(std::memory_order_acquire);
  return closed && owner_->requests_.empty();
}

bool RingTransport::ClientEnd::send_request(std::vector<std::uint8_t> frame) {
  return owner_->requests_.push(std::move(frame));
}

bool RingTransport::ClientEnd::next_reply(std::vector<std::uint8_t>& frame,
                                          std::chrono::microseconds wait) {
  wait_until([this] { return !owner_->replies_.empty(); }, wait);
  return owner_->replies_.pop(frame);
}

void RingTransport::ClientEnd::close() {
  owner_->client_closed_.store(true, std::memory_order_release);
}

}  // namespace imrm::serve
