#include "stats/timeseries.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace imrm::stats {

void BinnedSeries::add(sim::SimTime t, double value) {
  const double offset = (t - origin_).to_seconds() / width_.to_seconds();
  if (offset < 0.0) {
    underflow_ += value;
    ++underflow_count_;
    return;
  }
  const auto idx = static_cast<std::size_t>(offset);
  if (idx >= bins_.size()) bins_.resize(idx + 1, 0.0);
  bins_[idx] += value;
}

sim::SimTime BinnedSeries::bin_start(std::size_t i) const {
  return origin_ + sim::Duration::seconds(double(i) * width_.to_seconds());
}

double BinnedSeries::total() const {
  return std::accumulate(bins_.begin(), bins_.end(), 0.0);
}

double BinnedSeries::max_bin() const {
  return bins_.empty() ? 0.0 : *std::max_element(bins_.begin(), bins_.end());
}

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
}

double Summary::stddev() const { return std::sqrt(variance()); }

}  // namespace imrm::stats
