// Shortest-path routing over the backbone.
//
// Section 4 assumes "an appropriate route found by a routing algorithm";
// we provide Dijkstra with pluggable link weights (hop count by default;
// inverse-capacity available for capacity-aware routes).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "net/ids.h"
#include "net/topology.h"

namespace imrm::net {

/// A route is the ordered list of directed links from source to destination.
using Route = std::vector<LinkId>;

class Router {
 public:
  using WeightFn = std::function<double(const Link&)>;

  explicit Router(const Topology& topology, WeightFn weight = hop_weight())
      : topology_(&topology), weight_(std::move(weight)) {}

  /// Shortest path from `src` to `dst`; nullopt if unreachable.
  [[nodiscard]] std::optional<Route> shortest_path(NodeId src, NodeId dst) const;

  /// Shortest paths from `src` to every node (one Dijkstra run); entries are
  /// nullopt for unreachable destinations.
  [[nodiscard]] std::vector<std::optional<Route>> shortest_paths_from(NodeId src) const;

  [[nodiscard]] static WeightFn hop_weight() {
    return [](const Link&) { return 1.0; };
  }
  [[nodiscard]] static WeightFn inverse_capacity_weight() {
    return [](const Link& l) { return 1.0 / l.capacity; };
  }

 private:
  const Topology* topology_;
  WeightFn weight_;
};

/// Nodes visited by a route, starting at the route's source.
[[nodiscard]] std::vector<NodeId> route_nodes(const Topology& topology, const Route& route);

}  // namespace imrm::net
