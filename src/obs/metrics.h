// Metrics registry: counters, gauges, and fixed-bucket / HDR-style
// histograms.
//
// Design constraints (ISSUE 2):
//  * allocation-free on the hot path — instruments are registered once at
//    setup (name lookup, allocation) and recorded through raw references;
//    Counter::add, Gauge::set and Histogram::record touch only
//    pre-allocated storage;
//  * snapshot-on-demand — Registry::snapshot() copies the current values
//    into an immutable Snapshot, so exporters never race the simulation and
//    later mutation cannot alter an already-taken snapshot;
//  * deterministic merge — snapshots merge name-wise in call order
//    (counters and histogram buckets sum in u64, gauges sum their values
//    and max their maxima), so folding per-replication snapshots in
//    replication-index order is byte-identical regardless of how many
//    threads the sim::ReplicationRunner used.
//
// Instruments hold plain (non-atomic) values: a Registry belongs to one
// replication / one thread, and cross-replication aggregation goes through
// snapshot merging, never through shared instruments.
#pragma once

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace imrm::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }
  /// Checkpoint restore: overwrite with a saved total.
  void set(std::uint64_t v) { value_ = v; }

 private:
  std::uint64_t value_ = 0;
};

/// A last-value instrument that also tracks the maximum it was ever set to
/// (useful for depth/level style measurements such as queue occupancy).
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void add(double v) { set(value_ + v); }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] double max() const { return max_; }
  /// Checkpoint restore: overwrite value and running maximum.
  void restore(double value, double max) {
    value_ = value;
    max_ = max;
  }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
};

/// Bucket layout of a histogram. Two shapes:
///  * linear(lo, hi, n)      — n equal-width buckets over [lo, hi);
///  * log2(lo, hi, sub)      — HDR-style log-linear: octaves of [lo*2^k,
///    lo*2^(k+1)) each split into `sub` equal sub-buckets, covering
///    [lo, hi). Relative error is bounded by 1/sub at every scale.
/// Samples below lo / at or above hi are counted as underflow / overflow.
struct HistogramSpec {
  enum class Scale { kLinear, kLog2 };

  Scale scale = Scale::kLinear;
  double lo = 0.0;
  double hi = 1.0;
  std::uint32_t divisions = 1;  // linear: total buckets; log2: per octave

  [[nodiscard]] static HistogramSpec linear(double lo, double hi, std::uint32_t buckets);
  [[nodiscard]] static HistogramSpec log2(double lo, double hi, std::uint32_t sub_buckets);

  [[nodiscard]] std::size_t bucket_count() const;
  /// Bucket index for an in-range value; precondition lo <= v < hi.
  [[nodiscard]] std::size_t index_of(double v) const;
  [[nodiscard]] double lower_bound(std::size_t bucket) const;
  [[nodiscard]] double upper_bound(std::size_t bucket) const {
    return bucket + 1 >= bucket_count() ? hi : lower_bound(bucket + 1);
  }

  bool operator==(const HistogramSpec&) const = default;
};

class Histogram {
 public:
  explicit Histogram(const HistogramSpec& spec)
      : spec_(spec), buckets_(spec.bucket_count(), 0) {}

  void record(double v) {
    ++count_;
    sum_ += v;
    if (count_ == 1) {
      min_ = max_ = v;
    } else {
      if (v < min_) min_ = v;
      if (v > max_) max_ = v;
    }
    if (v < spec_.lo) {
      ++underflow_;
    } else if (v >= spec_.hi) {
      ++overflow_;
    } else {
      ++buckets_[spec_.index_of(v)];
    }
  }

  [[nodiscard]] const HistogramSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Checkpoint restore: overwrite the full accumulated state. `min`/`max`
  /// come from the saved instrument's accessors (0.0 when count == 0, which
  /// record() overwrites on the first post-restore sample).
  void restore(std::uint64_t count, std::uint64_t underflow, std::uint64_t overflow,
               double sum, double min, double max, std::vector<std::uint64_t> buckets) {
    assert(buckets.size() == buckets_.size());
    count_ = count;
    underflow_ = underflow;
    overflow_ = overflow;
    sum_ = sum;
    min_ = min;
    max_ = max;
    buckets_ = std::move(buckets);
  }

 private:
  HistogramSpec spec_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// ---- snapshots ----------------------------------------------------------

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
  double max = 0.0;
};

struct HistogramSample {
  std::string name;
  HistogramSpec spec;
  std::uint64_t count = 0;
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> buckets;

  /// Quantile estimate (q in [0, 1]): linear interpolation inside the
  /// containing bucket; underflow mass sits at spec.lo, overflow at spec.hi.
  [[nodiscard]] double percentile(double q) const;
};

/// Immutable copy of a registry's state, ordered by instrument name. The
/// unit of aggregation: per-replication snapshots merge deterministically.
class Snapshot {
 public:
  Snapshot() = default;

  [[nodiscard]] const std::vector<CounterSample>& counters() const { return counters_; }
  [[nodiscard]] const std::vector<GaugeSample>& gauges() const { return gauges_; }
  [[nodiscard]] const std::vector<HistogramSample>& histograms() const {
    return histograms_;
  }

  /// Lookup helpers (nullptr when absent).
  [[nodiscard]] const CounterSample* counter(std::string_view name) const;
  [[nodiscard]] const GaugeSample* gauge(std::string_view name) const;
  [[nodiscard]] const HistogramSample* histogram(std::string_view name) const;

  /// Name-wise merge: counters and histogram buckets sum; gauge values sum
  /// and maxima take the max; instruments present only in `other` are
  /// adopted. Histogram specs must match (asserted).
  void merge(const Snapshot& other);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with names
  /// sorted; doubles in shortest round-trip form, so equal states serialize
  /// byte-identically.
  void write_json(std::ostream& os) const;

 private:
  friend class Registry;

  std::vector<CounterSample> counters_;
  std::vector<GaugeSample> gauges_;
  std::vector<HistogramSample> histograms_;
};

/// Folds snapshots in index order (replication order); the result is
/// independent of which threads produced the inputs.
[[nodiscard]] Snapshot merge_snapshots(const std::vector<Snapshot>& snapshots);

// ---- registry -----------------------------------------------------------

class Registry {
 public:
  /// Returns the instrument registered under `name`, creating it on first
  /// use. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name, const HistogramSpec& spec) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram(spec)).first;
    }
    assert(it->second.spec() == spec && "histogram re-registered with a different spec");
    return it->second;
  }

  [[nodiscard]] std::size_t instrument_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  [[nodiscard]] Snapshot snapshot() const;

 private:
  // std::map: stable addresses for registered instruments and name-sorted
  // iteration, which makes snapshots canonically ordered for free.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace imrm::obs
