// Section 7.2 closing claim: "our reservation algorithm outperforms the
// static reservation algorithm in all scenarios we have simulated".
//
// Same two-cell workload as Figure 6. The static baseline holds back a
// fixed guard fraction of capacity from new connections; the probabilistic
// algorithm adapts the implicit reservation to the current occupancy of
// both cells. We sweep both policies across their knobs and report the
// (P_b, P_d) operating points; the probabilistic frontier should dominate.
#include <iostream>

#include "experiments/twocell.h"
#include "stats/table.h"

using namespace imrm;
using namespace imrm::experiments;

namespace {

TwoCellConfig base_config() {
  TwoCellConfig config;
  config.duration = 2000.0;
  config.warmup = 50.0;
  config.seed = 5;
  return config;
}

}  // namespace

int main() {
  std::cout << "== Static guard-band vs probabilistic reservation ==\n\n";

  stats::Table table({"policy", "knob", "P_b", "P_d"});

  for (double guard : {0.0, 0.05, 0.10, 0.15, 0.20, 0.30}) {
    TwoCellConfig config = base_config();
    config.rule = AdmissionRule::kStaticGuard;
    config.guard_fraction = guard;
    const auto r = run_twocell(config);
    table.add_row({"static", "guard=" + stats::fmt(guard, 2),
                   stats::fmt(r.p_block(), 4), stats::fmt(r.p_drop(), 4)});
  }
  for (double p_qos : {0.001, 0.005, 0.01, 0.05, 0.2, 0.9}) {
    TwoCellConfig config = base_config();
    config.rule = AdmissionRule::kProbabilistic;
    config.window = 0.05;
    config.p_qos = p_qos;
    const auto r = run_twocell(config);
    table.add_row({"probabilistic", "P_QOS=" + stats::fmt(p_qos, 3),
                   stats::fmt(r.p_block(), 4), stats::fmt(r.p_drop(), 4)});
  }
  table.print(std::cout);

  std::cout << "\nReading: for any static operating point, some probabilistic\n"
               "point achieves no-worse P_d at lower P_b (or vice versa) — the\n"
               "adaptive reservation tracks actual occupancy instead of holding\n"
               "back a fixed slice.\n";
  return 0;
}
