file(REMOVE_RECURSE
  "CMakeFiles/bench_delay_bounds.dir/bench_delay_bounds.cc.o"
  "CMakeFiles/bench_delay_bounds.dir/bench_delay_bounds.cc.o.d"
  "bench_delay_bounds"
  "bench_delay_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delay_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
