// Table 2 admission control: forward-pass per-link tests, destination
// end-to-end test, reverse-pass relaxation and reservation.
//
// The admission test runs over a route of links. In the forward pass each
// link checks bandwidth, jitter, buffer and accumulates loss; at the
// destination the end-to-end delay/jitter/loss requirements are compared
// against what the network can deliver; in the reverse pass the network
// reclaims over-reserved resources using the paper's "uniform" relaxation
// policy, and fixes the bandwidth allocation (static portables receive
// b_min + b_stamp, mobile portables b_min).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "qos/flow_spec.h"

namespace imrm::obs {
class Counter;
class Registry;
}  // namespace imrm::obs

namespace imrm::qos {

/// Snapshot of one link's admission-relevant state, as seen by the
/// forward-pass control packet.
struct LinkSnapshot {
  BitsPerSecond capacity = 0.0;          // C_l
  BitsPerSecond advance_reserved = 0.0;  // b_resv,l (advance reservations)
  BitsPerSecond sum_b_min = 0.0;         // sum of b_min over ongoing connections
  Bits buffer_capacity = 0.0;            // buffer space available for this flow
  double error_prob = 0.0;               // p_e,l

  /// Bandwidth the link can still promise as guaranteed minimum.
  [[nodiscard]] BitsPerSecond admissible_bandwidth() const {
    return capacity - advance_reserved - sum_b_min;
  }
};

enum class RejectReason {
  kNone,
  kInvalidRequest,
  kBandwidth,   // b_min does not fit at some link
  kJitter,      // per-hop or end-to-end jitter bound violated
  kBuffer,      // buffer requirement exceeds availability at some link
  kDelay,       // end-to-end minimum delay exceeds the bound
  kLoss,        // accumulated loss probability exceeds the bound
};

inline constexpr std::size_t kRejectReasonCount = 7;

[[nodiscard]] std::string to_string(RejectReason r);

/// Per-hop resources fixed by the reverse pass.
struct HopAllocation {
  Seconds local_delay = 0.0;   // d'_{l,j}: relaxed local delay bound
  Bits buffer = 0.0;           // reserved buffer space
};

struct AdmissionResult {
  bool accepted = false;
  RejectReason reason = RejectReason::kNone;
  std::size_t failed_hop = 0;          // 1-indexed hop where the test failed (0 = destination/e2e)
  BitsPerSecond allocated_bandwidth = 0.0;  // b_j after reverse pass
  Seconds e2e_min_delay = 0.0;         // d_min,j computed at the destination
  Seconds e2e_jitter = 0.0;            // (sigma + n L_max) / b_min
  double e2e_loss = 0.0;               // 1 - prod(1 - p_e,i)
  std::vector<HopAllocation> hops;     // per-link allocations (forward order)
};

/// Inputs that differ between a brand-new connection and a handoff: a
/// handoff connection may consume the advance-reserved bandwidth b_resv
/// (Section 5.1, "the admission test for a handoff connection is the same
/// ... except that connection handoff is able to use the (advance) reserved
/// resources").
enum class ConnectionKind { kNew, kHandoff };

class AdmissionPipeline {
 public:
  AdmissionPipeline(Scheduler scheduler, MobilityClass mobility)
      : scheduler_(scheduler), mobility_(mobility) {}

  /// Runs the full round-trip admission process over `route`.
  ///
  /// `b_stamp` is the max-min fair excess share stamped into the forward
  /// control packet by the conflict-resolution machinery (Section 5.3.1);
  /// pass 0 when no excess is available. `kind` selects whether advance
  /// reservations may be consumed.
  [[nodiscard]] AdmissionResult admit(const QosRequest& request,
                                      const std::vector<LinkSnapshot>& route,
                                      BitsPerSecond b_stamp = 0.0,
                                      ConnectionKind kind = ConnectionKind::kNew) const;

  /// Pre-registers accept/reject counters (`qos.admission.accepted`,
  /// `qos.admission.attempts` and `qos.admission.rejected.<test>`) in
  /// `registry`; every subsequent admit() increments them through cached
  /// pointers so the hot path never touches the registry maps. Pass nullptr
  /// to detach. The registry must outlive the pipeline (or the next bind).
  void bind_metrics(obs::Registry* registry);

  /// Forward-pass per-hop delay under WFQ: d_{l,j} = L_max/b_min + L_max/C_l.
  [[nodiscard]] static Seconds hop_delay(const QosRequest& request, const LinkSnapshot& link);

  /// Destination-node minimum end-to-end delay:
  /// d_min,j = (sigma + n L_max)/b_min + sum_i L_max/C_i.
  [[nodiscard]] static Seconds e2e_min_delay(const QosRequest& request,
                                             const std::vector<LinkSnapshot>& route);

  /// Forward-pass buffer requirement at hop l (1-indexed) for the configured
  /// scheduler. `d_prev` and `d_cur` are the per-hop delays of hops l-1 and l
  /// (ignored for WFQ).
  [[nodiscard]] Bits forward_buffer(const QosRequest& request, std::size_t hop_index,
                                    Seconds d_prev, Seconds d_cur) const;

  /// Reverse-pass buffer reservation at hop l using the relaxed delays d'
  /// and the allocated bandwidth b_j.
  [[nodiscard]] Bits reverse_buffer(const QosRequest& request, std::size_t hop_index,
                                    BitsPerSecond allocated, Seconds d_prev_relaxed,
                                    Seconds d_cur) const;

  [[nodiscard]] Scheduler scheduler() const { return scheduler_; }
  [[nodiscard]] MobilityClass mobility() const { return mobility_; }

 private:
  [[nodiscard]] AdmissionResult evaluate(const QosRequest& request,
                                         const std::vector<LinkSnapshot>& route,
                                         BitsPerSecond b_stamp, ConnectionKind kind) const;
  void record(const AdmissionResult& result) const;

  Scheduler scheduler_;
  MobilityClass mobility_;
  // Cached instrument pointers (bind_metrics). Indexed by RejectReason.
  obs::Counter* attempts_counter_ = nullptr;
  obs::Counter* accepted_counter_ = nullptr;
  std::array<obs::Counter*, kRejectReasonCount> reject_counters_{};
};

}  // namespace imrm::qos
