#include "experiments/classroom.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <unordered_map>

#include "mobility/manager.h"
#include "obs/metrics.h"
#include "reservation/policy.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "workload/connection_mix.h"

namespace imrm::experiments {

using mobility::CellClass;
using mobility::CellId;
using net::PortableId;
using qos::kbps;
using sim::Duration;
using sim::SimTime;

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNone: return "none";
    case PolicyKind::kBruteForce: return "brute-force";
    case PolicyKind::kAggregate: return "aggregate";
    case PolicyKind::kMeetingRoom: return "meeting-room";
    case PolicyKind::kStatic: return "static";
  }
  return "unknown";
}

ClassroomResult::ClassroomResult()
    : into_room(SimTime::zero(), Duration::minutes(1)),
      outside_room(SimTime::zero(), Duration::minutes(1)),
      out_of_room(SimTime::zero(), Duration::minutes(1)),
      outside_at_end(SimTime::zero(), Duration::minutes(1)) {}

namespace {

struct Cells {
  CellId o1, o2, o3, room;
};

mobility::CellMap classroom_map(Cells& cells) {
  mobility::CellMap map;
  cells.o1 = map.add_cell(CellClass::kCorridor, "O1");
  cells.o2 = map.add_cell(CellClass::kCorridor, "O2");
  cells.o3 = map.add_cell(CellClass::kCorridor, "O3");
  cells.room = map.add_cell(CellClass::kMeetingRoom, "R");
  map.connect(cells.o1, cells.o2);
  map.connect(cells.o2, cells.o3);
  map.connect(cells.o2, cells.room);
  return map;
}

/// Deterministic bandwidth assignment reproducing the paper's offered loads:
/// floor(N/4) connections at 64 kbps, the rest at 16 kbps.
std::vector<qos::BitsPerSecond> attendee_bandwidths(std::size_t n, sim::Rng& rng) {
  std::vector<qos::BitsPerSecond> out(n, kbps(16));
  for (std::size_t i = 0; i < n / 4; ++i) out[i] = kbps(64);
  rng.shuffle(out);
  return out;
}

/// One simulation pass: returns drop count; fills series when `result` set.
struct Pass {
  Pass(const ClassroomConfig& config_in, const mobility::CellMap& map_in, Cells cells_in,
       profiles::ProfileServer& server_in, ClassroomResult* result_in)
      : config(&config_in), map(&map_in), cells(cells_in), server(&server_in),
        result(result_in) {}

  const ClassroomConfig* config;
  const mobility::CellMap* map;
  Cells cells;
  profiles::ProfileServer* server;
  ClassroomResult* result;  // nullptr during the warmup pass

  sim::Simulator simulator;
  std::unique_ptr<mobility::MobilityManager> manager;
  reservation::ReservationDirectory directory;
  std::unordered_map<PortableId, qos::BitsPerSecond> demand;
  std::unique_ptr<reservation::AdvanceReservationPolicy> policy;
  std::size_t drops = 0;
  std::size_t blocked = 0;

  void run(const workload::ClassWorkload& work,
           const std::vector<qos::BitsPerSecond>& attendee_bw, sim::Rng mix_rng) {
    manager = std::make_unique<mobility::MobilityManager>(*map, simulator,
                                                          config->static_threshold);
    for (const auto& cell : map->cells()) {
      directory.add_cell(cell.id, config->cell_capacity);
    }
    build_policy();

    // Observability applies to the measured pass only (the warmup rehearsal
    // runs with a nulled-out config either way).
    if (result != nullptr && config->tracer) simulator.set_tracer(config->tracer);
    if (result != nullptr && config->metrics) {
      directory.bind_metrics(*config->metrics);
      manager->bind_metrics(*config->metrics);
    }

    manager->on_handoff([this](const mobility::HandoffEvent& event) {
      server->record_handoff(event);
      if (policy) policy->on_handoff(event);
      if (result != nullptr) {
        if (event.to == cells.room) result->into_room.add(event.time);
        if (event.from == cells.room) result->out_of_room.add(event.time);
        if (event.to == cells.o2) {
          result->outside_room.add(event.time);
          result->outside_at_end.add(event.time);
        }
      }
    });

    const workload::ConnectionMix mix = workload::paper_fig5_mix();

    // Attendees: O1 -> O2 -> R -> O2 -> gone.
    for (std::size_t i = 0; i < work.attendees.size(); ++i) {
      const auto& plan = work.attendees[i];
      const qos::BitsPerSecond b = attendee_bw[i];
      schedule_user(plan.arrive_corridor, b,
                    {{mid(plan.arrive_corridor, plan.enter_room), cells.o2},
                     {plan.enter_room, cells.room},
                     {plan.leave_room, cells.o2},
                     {plan.depart, cells.o1}},
                    plan.depart + Duration::seconds(30));
    }
    // Walkers: O1 -> O2 -> O3 -> gone.
    for (const auto& plan : work.passers) {
      const qos::BitsPerSecond b = mix.sample(mix_rng);
      const Duration third = Duration::seconds((plan.leave - plan.appear).to_seconds() / 3.0);
      schedule_user(plan.appear, b,
                    {{plan.appear + third, cells.o2},
                     {plan.appear + third + third, cells.o3}},
                    plan.leave + Duration::seconds(30));
    }

    // Periodic policy refresh on top of the per-event refreshes.
    const SimTime horizon = config->meeting.stop + Duration::minutes(30);
    simulator.every(config->refresh_period, horizon, [this] { refresh(); });
    simulator.run();
  }

 private:
  static SimTime mid(SimTime a, SimTime b) {
    return SimTime::seconds((a.to_seconds() + b.to_seconds()) / 2.0);
  }

  void build_policy() {
    reservation::PolicyEnv env;
    env.map = map;
    env.directory = &directory;
    env.profiles = server;
    env.demand = [this](PortableId p) {
      const auto it = demand.find(p);
      return it == demand.end() ? 0.0 : it->second;
    };
    env.classify = [this](PortableId p) { return manager->classify(p); };
    env.portables_in = [this](CellId c) { return manager->portables_in(c); };

    switch (config->policy) {
      case PolicyKind::kNone:
        policy = std::make_unique<reservation::NoReservationPolicy>(std::move(env));
        break;
      case PolicyKind::kBruteForce:
        policy = std::make_unique<reservation::BruteForcePolicy>(std::move(env));
        break;
      case PolicyKind::kAggregate:
        policy = std::make_unique<reservation::AggregatePolicy>(std::move(env));
        break;
      case PolicyKind::kStatic:
        policy = std::make_unique<reservation::StaticPolicy>(std::move(env), 0.10);
        break;
      case PolicyKind::kMeetingRoom: {
        profiles::BookingCalendar calendar;
        calendar.book(config->meeting);
        reservation::MeetingRoomPolicy::Params params;
        params.per_user_bandwidth = workload::paper_fig5_mix().mean();
        policy = std::make_unique<reservation::MeetingRoomPolicy>(
            std::move(env), cells.room, std::move(calendar), params);
        break;
      }
    }
  }

  void refresh() { policy->refresh(simulator.now()); }

  struct Hop {
    SimTime at;
    CellId to;
  };

  void schedule_user(SimTime appear, qos::BitsPerSecond b, std::vector<Hop> hops,
                     SimTime vanish) {
    // Create the portable eagerly (parked in O1); movements reference it by
    // id, and ids are allocated in scheduling order for determinism.
    const PortableId p = manager_add_deferred();
    simulator.at(appear, [this, p, b] {
      spawn_at(p, b);
      refresh();
    });
    for (const Hop& hop : hops) {
      simulator.at(hop.at, [this, p, to = hop.to] {
        do_handoff(p, to);
        refresh();
      });
    }
    simulator.at(vanish, [this, p] {
      depart(p);
      refresh();
    });
  }

  // Portables must exist before their first event fires; park them in O1.
  PortableId manager_add_deferred() { return manager->add_portable(cells.o1); }

  void spawn_at(PortableId p, qos::BitsPerSecond b) {
    // The portable was parked in O1 at creation; opening the connection is
    // the "appears" moment.
    if (directory.at(cells.o1).admit_new(p, b)) {
      demand[p] = b;
    } else {
      ++blocked;
    }
  }

  void do_handoff(PortableId p, CellId to) {
    const CellId from = manager->portable(p).current_cell;
    if (from == to) return;  // dropped users may have stale itineraries
    const auto it = demand.find(p);
    const bool has_connection = it != demand.end();
    if (has_connection) directory.at(from).release(p);
    manager->move(p, to);
    if (has_connection) {
      if (!directory.at(to).admit_handoff(p, it->second)) {
        ++drops;
        demand.erase(it);
      }
    }
  }

  void depart(PortableId p) {
    const auto it = demand.find(p);
    if (it != demand.end()) {
      directory.at(manager->portable(p).current_cell).release(p);
      demand.erase(it);
    }
  }
};

}  // namespace

ClassroomResult run_classroom(const ClassroomConfig& config) {
  Cells cells;
  const mobility::CellMap map = classroom_map(cells);
  profiles::ProfileServer server(net::ZoneId{0},
                                 profiles::ProfileServer::Config{16, config.cell_profile_window});

  sim::Rng rng(config.seed);

  workload::ClassScheduleConfig schedule;
  schedule.meeting = config.meeting;
  schedule.passby_per_minute = config.passby_per_minute;
  schedule.passby_dwell = config.passby_dwell;

  ClassroomResult result;
  result.policy = to_string(config.policy);
  result.attendees = config.class_size;

  // Warmup pass: rehearse the same kind of day with no reservations so the
  // profile server learns the corridor/room handoff statistics.
  if (config.warmup_pass) {
    sim::Rng warm_rng = rng.fork();
    auto warm_work = schedule;
    warm_work.meeting.attendees = config.class_size;
    const workload::ClassWorkload work = generate_class_workload(warm_work, warm_rng);
    auto bw = attendee_bandwidths(config.class_size, warm_rng);
    ClassroomConfig warm_config = config;
    warm_config.policy = PolicyKind::kNone;
    warm_config.metrics = nullptr;
    warm_config.tracer = nullptr;
    Pass pass(warm_config, map, cells, server, nullptr);
    pass.run(work, bw, warm_rng.fork());
  }

  // Measured pass.
  sim::Rng measured_rng = rng.fork();
  auto measured_schedule = schedule;
  measured_schedule.meeting.attendees = config.class_size;
  const workload::ClassWorkload work = generate_class_workload(measured_schedule, measured_rng);
  const auto bw = attendee_bandwidths(config.class_size, measured_rng);

  double offered = 0.0;
  for (qos::BitsPerSecond b : bw) offered += b;
  result.offered_load = offered / config.cell_capacity;
  result.walkers = work.passers.size();

  Pass pass(config, map, cells, server, &result);
  pass.run(work, bw, measured_rng.fork());
  result.connection_drops = pass.drops;
  if (config.metrics) {
    obs::Registry& m = *config.metrics;
    pass.simulator.collect_metrics(m);
    m.counter("classroom.connection_drops").add(pass.drops);
    m.counter("classroom.new_blocked").add(pass.blocked);
    m.gauge("classroom.offered_load").set(result.offered_load);
  }
  return result;
}

}  // namespace imrm::experiments
