#include "sim/replication.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace imrm::sim {

std::uint64_t replication_seed(std::uint64_t base, std::size_t index) {
  // splitmix64 over the (base, index) pair; the golden-ratio stride keeps
  // sequential indices far apart in the state space.
  std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (std::uint64_t(index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

ReplicationRunner::ReplicationRunner(std::size_t threads) : threads_(threads) {
  if (threads_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads_ = hw == 0 ? 1 : hw;
  }
}

void ReplicationRunner::run_indexed(std::size_t n,
                                    const std::function<void(std::size_t)>& body) const {
  if (n == 0) return;
  const std::size_t workers = std::min(threads_, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Error protocol: the LOWEST failing replication index wins, regardless of
  // which thread observes its failure first, and no new indices are claimed
  // once any failure is recorded. Claims hand out a prefix [0, m) of the
  // index space in order, so the lowest failing index in that prefix is
  // always claimed before claiming stops — the reported error is therefore
  // the same one a sequential run would hit, at any thread count. run()
  // rethrows before its results vector escapes, so a failed sweep can never
  // feed partially-filled replications into an aggregation fold.
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> error_index{n};  // n = no error yet
  std::exception_ptr error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      if (error_index.load(std::memory_order_relaxed) != n) return;
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= n) return;
      try {
        body(index);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (index < error_index.load(std::memory_order_relaxed)) {
          error = std::current_exception();
          error_index.store(index, std::memory_order_relaxed);
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace imrm::sim
