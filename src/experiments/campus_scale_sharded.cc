// Sharded campus-at-scale engine (ISSUE 10): the grid campus of
// campus_scale.cc executed through sim::ShardedRunner, one domain per cell.
//
// Execution model
//   - Every cell is a runner domain; the conservative window equals the
//     scheduler tick, and every cross-cell interaction is a boundary message
//     with exactly one tick of latency, so the lookahead contract holds by
//     construction.
//   - A per-cell tick handler (every tick from 0 through the duration) fires
//     due milestones for the cell's residents and launches walkers: a
//     portable whose target differs from its cell is sent to the next cell
//     on the grid route as a message carrying its migrating Row state. The
//     arrival callback performs handoff admission, fires any milestones that
//     came due in flight, and either settles the portable as a resident or
//     forwards it another hop — one hop per tick, as in the monolith.
//   - Admission state is cell-local: each cell keeps its own
//     allocated/connections account plus a FlatMap of advance reservations,
//     instead of the monolith's global ReservationDirectory. Advance
//     reservations are routed, not predicted: on admitting a handoff the
//     cell parks bandwidth two hops further along the walking route (far
//     enough ahead that the reservation message outruns the portable), and
//     stale reservations are cancelled by message on the next arrival or at
//     departure.
//
// Determinism: all mutable state is per-cell, every cross-cell effect rides
// the runner's canonically-ordered boundary messages, and the outcome digest
// folds per-cell hashes in cell-id order — so every output (outcome_hash,
// counters, metrics JSON) is byte-identical for any shard count and any
// batch size. The engine is its own oracle; it is NOT decision-identical
// with the monolithic engines (see campus_scale.h).
#include "experiments/campus_scale.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "experiments/scale_workload.h"
#include "obs/metrics.h"
#include "sim/flat_map.h"
#include "sim/sharded_runner.h"
#include "sim/simulator.h"

namespace imrm::experiments {
namespace {

constexpr std::uint32_t kNoCell = net::CellId::invalid().value();
constexpr std::uint64_t kHashSeed = 0x6a09e667f3bcc908ULL;  // as the monolith
constexpr std::size_t kStride = detail::kScaleMilestonesPerPortable;

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}
void mix_outcome(std::uint64_t& h, std::uint64_t tag, std::uint32_t p,
                 std::uint64_t detail_v, bool ok) {
  mix(h, (tag << 56) | (std::uint64_t(p) << 24) | (ok ? 1 : 0));
  mix(h, detail_v);
}

/// The migrating per-portable state. Travels by value inside mover messages;
/// at rest it lives in exactly one cell's resident list. Everything else a
/// cell needs about a portable (home, room, demand, milestones) is read-only
/// shared workload, safe to touch from any worker.
struct Row {
  std::uint32_t portable = 0;
  std::uint32_t target = kNoCell;
  std::uint32_t last_reserved = kNoCell;
  std::uint8_t cursor = 0;     ///< next milestone index in the arena slice
  std::uint8_t connected = 0;  ///< holds (or, in flight, seeks) bandwidth
};

class ShardedScaleSim {
 public:
  explicit ShardedScaleSim(const CampusScaleConfig& config)
      : cfg_(config),
        map_(scale_grid_floorplan(config.cells)),
        side_(detail::scale_grid_side(config.cells)),
        workload_(detail::generate_scale_workload(config, map_, nullptr)),
        runner_(sim::ShardedRunner::Config{
            config.cells, config.shards, config.tick, config.batch,
            config.profiler, config.tracer, config.progress}) {
    const double tick_s = std::max(cfg_.tick.to_seconds(), 1e-3);
    n_ticks_ = std::size_t(cfg_.duration.to_seconds() / tick_s) + 1;

    cells_.resize(cfg_.cells);
    for (std::size_t i = 0; i < cfg_.cells; ++i) {
      cells_[i].id = std::uint32_t(i);
      cells_[i].sim = &runner_.domain(i);
    }
    // Every portable starts as an unborn resident of its home cell; the
    // appear milestone activates it in place.
    for (std::uint32_t p = 0; p < cfg_.portables; ++p) {
      cells_[workload_.home[p]].residents.push_back(Row{p});
    }
    const double dur = cfg_.duration.to_seconds();
    for (CellState& c : cells_) {
      CellState* cp = &c;
      // Tick 0, every tick after, and a final flush at the exact duration
      // (every() lands there only when the duration is a tick multiple; the
      // flush is cursor-guarded so a double firing is a no-op).
      c.sim->at(sim::SimTime::seconds(0.0), [this, cp] { on_tick(*cp); });
      c.sim->every(cfg_.tick, sim::SimTime::seconds(dur),
                   [this, cp] { on_tick(*cp); });
      c.sim->at(sim::SimTime::seconds(dur), [this, cp] { on_tick(*cp); });
    }
  }

  CampusScaleResult run() {
    // Walkers launched on the final tick arrive one tick past the duration
    // and fire their (all due) remaining milestones on arrival; their
    // cancel messages land one tick later still.
    const double dur = cfg_.duration.to_seconds();
    const double tick_s = std::max(cfg_.tick.to_seconds(), 1e-3);
    runner_.run_until(sim::SimTime::seconds(dur + 3.0 * tick_s));
    return finish();
  }

 private:
  struct CellState {
    std::uint32_t id = 0;
    sim::Simulator* sim = nullptr;
    std::vector<Row> residents;
    /// portable -> parked bandwidth (bps), counted inside `allocated`.
    sim::FlatMap<std::uint32_t, double> reserved;
    double allocated = 0.0;
    std::uint32_t connections = 0;
    std::uint32_t occupancy = 0;
    std::uint64_t hash = kHashSeed;
    // Scenario counters, summed in finish().
    std::uint64_t events = 0;
    std::uint64_t handoffs = 0;
    std::uint64_t new_admitted = 0;
    std::uint64_t new_blocked = 0;
    std::uint64_t handoff_admitted = 0;
    std::uint64_t handoff_dropped = 0;
    std::uint64_t reservations_placed = 0;
    std::uint64_t departures = 0;
  };

  [[nodiscard]] const detail::ScaleMilestone* milestones(std::uint32_t p) const {
    return &workload_.arena[p * kStride];
  }

  // --- cell-local bandwidth account ---------------------------------------
  [[nodiscard]] bool fits(const CellState& c, double bw) const {
    return c.allocated + bw <= cfg_.cell_capacity_bps + 1e-6;
  }

  bool admit_new(CellState& c, double bw) {
    if (!fits(c, bw)) return false;
    c.allocated += bw;
    ++c.connections;
    return true;
  }

  bool admit_handoff(CellState& c, std::uint32_t p, double bw) {
    // A reservation parked for this portable is consumed (its bandwidth
    // returns to the pool and immediately re-fits below).
    if (const double* parked = c.reserved.find(p)) {
      c.allocated -= *parked;
      c.reserved.erase(p);
    }
    return admit_new(c, bw);
  }

  void release(CellState& c, double bw) {
    c.allocated -= bw;
    --c.connections;
  }

  void on_reserve(CellState& c, std::uint32_t p, double bw) {
    if (c.reserved.contains(p) || !fits(c, bw)) return;
    c.allocated += bw;
    c.reserved.insert(p, bw);
  }

  void on_cancel(CellState& c, std::uint32_t p) {
    if (const double* parked = c.reserved.find(p)) {
      c.allocated -= *parked;
      c.reserved.erase(p);
    }
  }

  /// Drops the reservation `row` left in a cell it is no longer headed to —
  /// locally when that cell is `c`, by boundary message otherwise. A
  /// reservation in the cell the portable just reached was consumed by
  /// admit_handoff before this runs.
  void cancel_stale_reservation(CellState& c, Row& row) {
    const std::uint32_t held = row.last_reserved;
    if (held == kNoCell) return;
    row.last_reserved = kNoCell;
    if (held == c.id) {
      on_cancel(c, row.portable);
      return;
    }
    runner_.transport(c.id).send(
        fault::Channel(held), cfg_.tick,
        [this, held, p = row.portable] { on_cancel(cells_[held], p); });
  }

  // --- milestone firing ----------------------------------------------------
  /// Fires every milestone due at `now` for `row`, resident in `c`. Returns
  /// true when the portable departed (the caller removes the row).
  bool fire_milestones(CellState& c, Row& row, double now) {
    const detail::ScaleMilestone* m = milestones(row.portable);
    const std::uint32_t p = row.portable;
    while (row.cursor < kStride && m[row.cursor].time <= now) {
      const detail::ScaleMilestone& ms = m[row.cursor];
      ++row.cursor;
      ++c.events;
      switch (ms.kind) {
        case detail::ScaleMilestone::kAppear: {
          row.target = detail::gateway_of(side_, workload_.room[p]);
          ++c.occupancy;
          const bool ok = admit_new(c, workload_.demand[p]);
          row.connected = ok ? 1 : 0;
          ok ? ++c.new_admitted : ++c.new_blocked;
          mix_outcome(c.hash, 0x11, p, c.id, ok);
          break;
        }
        case detail::ScaleMilestone::kEnter:
          row.target = workload_.room[p];
          break;
        case detail::ScaleMilestone::kLeave:
          row.target = workload_.home[p];
          break;
        case detail::ScaleMilestone::kDepart: {
          if (row.connected) release(c, workload_.demand[p]);
          cancel_stale_reservation(c, row);
          --c.occupancy;
          ++c.departures;
          mix_outcome(c.hash, 0x44, p, c.id, true);
          return true;
        }
      }
    }
    return false;
  }

  // --- movement ------------------------------------------------------------
  /// Sends `row` one hop toward its target. Bandwidth is freed at the source
  /// as the portable leaves; connected stays set as "seeks a connection" so
  /// the arrival attempts handoff admission.
  void emit_hop(CellState& c, const Row& row) {
    const std::uint32_t next = detail::route_next(side_, c.id, row.target);
    if (row.connected) release(c, workload_.demand[row.portable]);
    --c.occupancy;
    runner_.transport(c.id).send(
        fault::Channel(next), cfg_.tick,
        [this, moving = row, next, from = c.id] { on_arrival(next, moving, from); });
  }

  void on_arrival(std::uint32_t dest, Row row, std::uint32_t from) {
    CellState& d = cells_[dest];
    const std::uint32_t p = row.portable;
    const double bw = workload_.demand[p];
    ++d.handoffs;
    ++d.events;
    const std::uint64_t occ_before = d.occupancy;
    bool admitted = false;
    if (row.connected) {
      admitted = admit_handoff(d, p, bw);
      row.connected = admitted ? 1 : 0;
      admitted ? ++d.handoff_admitted : ++d.handoff_dropped;
    }
    cancel_stale_reservation(d, row);
    ++d.occupancy;
    mix_outcome(d.hash, 0x22, p, (std::uint64_t(from) << 20) | dest, admitted);
    mix(d.hash, occ_before);

    const bool departed = fire_milestones(d, row, d.sim->now().to_seconds());
    if (departed) return;
    if (row.target == dest) {
      d.residents.push_back(row);
      return;
    }
    // Route-based advance reservation: park bandwidth two hops ahead, so the
    // reservation message (one tick) outruns the portable (two ticks) and
    // competing admissions at that cell see the parked bandwidth first.
    const std::uint32_t next = detail::route_next(side_, dest, row.target);
    if (row.connected && next != row.target) {
      const std::uint32_t ahead = detail::route_next(side_, next, row.target);
      runner_.transport(dest).send(
          fault::Channel(ahead), cfg_.tick,
          [this, ahead, p, bw] { on_reserve(cells_[ahead], p, bw); });
      row.last_reserved = ahead;
      ++d.reservations_placed;
    }
    emit_hop(d, row);
  }

  // --- per-cell tick -------------------------------------------------------
  void on_tick(CellState& c) {
    const double now = c.sim->now().to_seconds();
    for (std::size_t i = 0; i < c.residents.size();) {
      Row& row = c.residents[i];
      if (fire_milestones(c, row, now)) {
        remove_resident(c, i);
        continue;
      }
      // cursor == 0 means the portable has not appeared yet (its target is
      // unset); everyone else walks when away from their target.
      if (row.cursor > 0 && row.target != c.id) {
        emit_hop(c, row);
        remove_resident(c, i);
        continue;
      }
      ++i;
    }
  }

  void remove_resident(CellState& c, std::size_t i) {
    // Swap-pop: the tail row is unvisited (iteration is front-to-back), so
    // it gets processed at index i on the next loop step.
    c.residents[i] = c.residents.back();
    c.residents.pop_back();
  }

  // --- reporting -----------------------------------------------------------
  [[nodiscard]] std::size_t state_bytes() const {
    std::size_t total = workload_.memory_bytes();
    total += cells_.capacity() * sizeof(CellState);
    for (const CellState& c : cells_) {
      total += c.residents.capacity() * sizeof(Row);
      total += c.reserved.memory_bytes();
    }
    return total;
  }

  CampusScaleResult finish() {
    CampusScaleResult r;
    r.ticks = n_ticks_;
    std::uint64_t fold = kHashSeed;
    for (const CellState& c : cells_) {
      r.events += c.events;
      r.handoffs += c.handoffs;
      r.new_admitted += c.new_admitted;
      r.new_blocked += c.new_blocked;
      r.handoff_admitted += c.handoff_admitted;
      r.handoff_dropped += c.handoff_dropped;
      r.reservations_placed += c.reservations_placed;
      r.departures += c.departures;
      mix(fold, c.hash);
    }
    r.outcome_hash = fold;
    r.state_bytes = state_bytes();
    r.bytes_per_portable =
        cfg_.portables ? double(r.state_bytes) / double(cfg_.portables) : 0.0;
    r.windows = runner_.stats().windows;
    r.dispatches = runner_.stats().dispatches;
    r.boundary_messages = runner_.stats().boundary_messages;
    if (obs::Registry* reg = cfg_.metrics) {
      reg->counter("scale.events").add(r.events);
      reg->counter("scale.ticks").add(r.ticks);
      reg->counter("scale.handoffs").add(r.handoffs);
      reg->counter("scale.new.admitted").add(r.new_admitted);
      reg->counter("scale.new.blocked").add(r.new_blocked);
      reg->counter("scale.handoff.admitted").add(r.handoff_admitted);
      reg->counter("scale.handoff.dropped").add(r.handoff_dropped);
      reg->counter("scale.reservations").add(r.reservations_placed);
      reg->counter("scale.departures").add(r.departures);
      reg->gauge("scale.state_bytes").set(double(r.state_bytes));
      reg->gauge("scale.bytes_per_portable").set(r.bytes_per_portable);
      reg->gauge("sim.time_seconds").set(cfg_.duration.to_seconds());
      reg->counter("sim.events_fired").add(r.events);
      // Engine totals; both are batch- and shard-invariant (dispatches are
      // not, and deliberately stay out of the metrics block).
      reg->counter("shard.windows").add(r.windows);
      reg->counter("shard.boundary_messages").add(r.boundary_messages);
    }
    if (cfg_.profiler != nullptr) {
      r.profile = cfg_.profiler->snapshot();
      runner_.export_profile(r.profile);
    }
    return r;
  }

  CampusScaleConfig cfg_;
  mobility::CellMap map_;
  std::size_t side_;
  detail::ScaleWorkload workload_;  // read-only after construction
  sim::ShardedRunner runner_;
  std::vector<CellState> cells_;
  std::size_t n_ticks_ = 0;
};

}  // namespace

CampusScaleResult run_campus_scale_sharded(const CampusScaleConfig& config) {
  ShardedScaleSim sim(config);
  return sim.run();
}

}  // namespace imrm::experiments
