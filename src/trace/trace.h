// Structured event tracing.
//
// Experiments often need more than aggregate counters: per-event records of
// handoffs, admissions, drops, adaptations and reservations, written as CSV
// for offline analysis. The recorder is deliberately dumb — a flat event log
// with typed kinds — and attaches to the mobility manager for automatic
// handoff capture; other subsystems record manually. Storage sits on
// obs::RingBuffer: unbounded by default, or a fixed-capacity window of the
// most recent events (oldest evicted, evictions counted) for long runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "mobility/manager.h"
#include "net/ids.h"
#include "obs/ring_buffer.h"
#include "sim/time.h"

namespace imrm::trace {

enum class EventKind {
  kHandoff,
  kAdmission,    // value = admitted bandwidth (bps)
  kBlock,        // new-connection rejection
  kDrop,         // handoff failure
  kAdaptation,   // value = new allocation (bps)
  kReservation,  // value = reserved bandwidth (bps)
  kCustom,
};

[[nodiscard]] std::string to_string(EventKind kind);

struct TraceEvent {
  sim::SimTime time;
  EventKind kind = EventKind::kCustom;
  net::PortableId portable = net::PortableId::invalid();
  net::CellId from = net::CellId::invalid();
  net::CellId to = net::CellId::invalid();
  double value = 0.0;
  std::string note;
};

class TraceRecorder {
 public:
  /// Unbounded recorder (every event retained).
  TraceRecorder() = default;
  /// Bounded recorder: keeps the `capacity` most recent events; older ones
  /// are evicted ring-style and tallied in dropped().
  explicit TraceRecorder(std::size_t capacity) : events_(capacity) {}

  void record(TraceEvent event) { events_.push(std::move(event)); }

  /// Convenience for the common cases.
  void handoff(sim::SimTime t, net::PortableId p, net::CellId from, net::CellId to) {
    record({t, EventKind::kHandoff, p, from, to, 0.0, {}});
  }
  void drop(sim::SimTime t, net::PortableId p, net::CellId at) {
    record({t, EventKind::kDrop, p, net::CellId::invalid(), at, 0.0, {}});
  }

  /// Retained events in chronological order (copied out of the ring).
  [[nodiscard]] std::vector<TraceEvent> events() const { return events_.to_vector(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  /// Events evicted by the capacity bound (always 0 when unbounded).
  [[nodiscard]] std::uint64_t dropped() const { return events_.dropped(); }
  /// Configured capacity; 0 = unbounded.
  [[nodiscard]] std::size_t capacity() const { return events_.capacity(); }
  [[nodiscard]] std::size_t count(EventKind kind) const;

  /// Retained events within a half-open time window [from, to).
  [[nodiscard]] std::vector<TraceEvent> between(sim::SimTime from, sim::SimTime to) const;

  /// CSV with a header row: time_s,kind,portable,from,to,value,note.
  void write_csv(std::ostream& os) const;

  void clear() { events_.clear(); }

 private:
  obs::RingBuffer<TraceEvent> events_;
};

/// Auto-records every handoff the mobility manager processes.
void attach(TraceRecorder& recorder, mobility::MobilityManager& manager);

}  // namespace imrm::trace
