#include "qos/packet_sim.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace imrm::qos {

void ScheduledLink::add_flow(FlowId flow, BitsPerSecond reserved_rate) {
  assert(reserved_rate > 0.0);
  if (flow < flows_.size() && flows_[flow].rate > 0.0) {
    // Already registered: this is a rate change, not a fresh flow. Resetting
    // virtual_clock here (the old behaviour) let the next packet stamp
    // earlier than the flow's queued packets — intra-flow reordering.
    set_rate(flow, reserved_rate);
    return;
  }
  if (flow >= flows_.size()) flows_.resize(std::size_t(flow) + 1);
  reserved_total_ += reserved_rate - flows_[flow].rate;
  flows_[flow] = FlowEntry{reserved_rate, 0.0};
}

void ScheduledLink::set_rate(FlowId flow, BitsPerSecond reserved_rate) {
  assert(reserved_rate > 0.0);
  assert(flow < flows_.size() && flows_[flow].rate > 0.0 &&
         "flow must be registered");
  reserved_total_ += reserved_rate - flows_[flow].rate;
  // Keep auxVC: the stamp sequence stays monotone per flow, only the future
  // per-packet increment L/rho changes with the new rate.
  flows_[flow].rate = reserved_rate;
}

void ScheduledLink::enqueue(Packet packet) {
  assert(packet.flow < flows_.size() && flows_[packet.flow].rate > 0.0 &&
         "flow must be registered");
  packet.entered_link = simulator_->now();
  // Virtual Clock stamp: auxVC = max(now, auxVC) + L / rho.
  FlowEntry& entry = flows_[packet.flow];
  entry.virtual_clock = std::max(simulator_->now().to_seconds(), entry.virtual_clock) +
                        packet.size / entry.rate;
  queue_.push(QueuedPacket{entry.virtual_clock, next_seq_++, packet});
  if (!busy_) serve_next();
}

void ScheduledLink::serve_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  const QueuedPacket next = queue_.top();
  queue_.pop();
  const double transmission = next.packet.size / capacity_;
  simulator_->after(sim::Duration::seconds(transmission),
                    [this, packet = next.packet]() mutable {
                      ++served_;
                      if (forward_) forward_(std::move(packet));
                      serve_next();
                    });
}

std::uint32_t RcspLink::ensure_level(int priority) {
  // Find (or insert, keeping the array sorted) the static-priority level.
  auto level_it = std::find_if(levels_.begin(), levels_.end(),
                               [&](const PriorityLevel& l) { return l.priority >= priority; });
  if (level_it == levels_.end() || level_it->priority != priority) {
    const std::uint32_t inserted = std::uint32_t(level_it - levels_.begin());
    level_it = levels_.insert(level_it, PriorityLevel{priority, {}});
    // Inserting shifts every level at or after the insertion point.
    for (FlowState& state : flows_) {
      if (state.rate > 0.0 && state.level >= inserted) ++state.level;
    }
  }
  return std::uint32_t(level_it - levels_.begin());
}

void RcspLink::add_flow(FlowId flow, BitsPerSecond reserved_rate, int priority) {
  assert(reserved_rate > 0.0);
  if (flow < flows_.size() && flows_[flow].rate > 0.0) {
    // Already registered: a rate (and possibly priority) change. The old
    // behaviour rebuilt the FlowState with last_eligible = -inf, discarding
    // the regulator's pacing debt — a renegotiating greedy source could
    // burst its whole backlog through the rate controller at once.
    set_rate(flow, reserved_rate, priority);
    return;
  }
  if (flow >= flows_.size()) flows_.resize(std::size_t(flow) + 1);
  const std::uint32_t level = ensure_level(priority);
  // last_eligible starts far in the past so the first packet is never held.
  flows_[flow] = FlowState{reserved_rate, level,
                           -std::numeric_limits<double>::infinity()};
}

void RcspLink::set_rate(FlowId flow, BitsPerSecond reserved_rate) {
  assert(flow < flows_.size() && flows_[flow].rate > 0.0 &&
         "flow must be registered");
  set_rate(flow, reserved_rate, levels_[flows_[flow].level].priority);
}

void RcspLink::set_rate(FlowId flow, BitsPerSecond reserved_rate, int priority) {
  assert(reserved_rate > 0.0);
  assert(flow < flows_.size() && flows_[flow].rate > 0.0 &&
         "flow must be registered");
  const std::uint32_t level = ensure_level(priority);
  FlowState& state = flows_[flow];
  state.rate = reserved_rate;
  // Preserve last_eligible: pacing debt accrued at the old rate still gates
  // the next packet, so a rate change cannot manufacture a burst.
  state.level = level;
}

void RcspLink::enqueue(Packet packet) {
  assert(packet.flow < flows_.size() && flows_[packet.flow].rate > 0.0 &&
         "flow must be registered");
  packet.entered_link = simulator_->now();
  FlowState& state = flows_[packet.flow];
  // Rate-jitter regulator: eligible at max(now, last_eligible + L/rho).
  const double eligible = std::max(simulator_->now().to_seconds(),
                                   state.last_eligible + packet.size / state.rate);
  state.last_eligible = eligible;
  const double wait = eligible - simulator_->now().to_seconds();
  if (wait <= 0.0) {
    on_eligible(std::move(packet));
  } else {
    simulator_->after(sim::Duration::seconds(wait), [this, packet]() mutable {
      on_eligible(std::move(packet));
    });
  }
}

void RcspLink::on_eligible(Packet packet) {
  // Resolve the flow's level *now*, not at arrival: if set_rate() moved the
  // flow (or inserting another flow's level shifted the indices) while this
  // packet waited in the regulator, a captured index would be stale.
  levels_[flows_[packet.flow].level].fifo.push_back(std::move(packet));
  ++eligible_count_;
  if (!busy_) serve_next();
}

void RcspLink::serve_next() {
  if (eligible_count_ == 0) {
    busy_ = false;
    return;
  }
  busy_ = true;
  // Highest priority (lowest value) non-empty level, FIFO within.
  for (PriorityLevel& level : levels_) {
    if (level.fifo.empty()) continue;
    Packet packet = std::move(level.fifo.front());
    level.fifo.pop_front();
    --eligible_count_;
    simulator_->after(sim::Duration::seconds(packet.size / capacity_),
                      [this, packet]() mutable {
                        ++served_;
                        if (forward_) forward_(std::move(packet));
                        serve_next();
                      });
    return;
  }
}

void LossyHop::offer(Packet packet) {
  const FlowId flow = packet.flow;
  ++offered_;
  bump(offered_by_flow_, flow);
  bump(window_offered_by_flow_, flow);
  if (loss_.lost(model_, rng_)) {
    ++dropped_;
    bump(dropped_by_flow_, flow);
    bump(window_dropped_by_flow_, flow);
    return;
  }
  ++delivered_;
  bump(delivered_by_flow_, flow);
  if (next_) next_(std::move(packet));
}

void TokenBucketSource::start(sim::SimTime horizon) {
  last_refill_ = simulator_->now();
  if (config_.greedy) {
    // Dump the whole bucket immediately — the adversarial burst the delay
    // bounds are computed against.
    send_conforming(simulator_->now());
  }
  tick(horizon);
}

void TokenBucketSource::send_conforming(sim::SimTime now) {
  // Refill tokens.
  tokens_ = std::min(config_.sigma,
                     tokens_ + config_.rho * (now - last_refill_).to_seconds());
  last_refill_ = now;
  while (tokens_ >= config_.packet_size) {
    tokens_ -= config_.packet_size;
    Packet packet;
    packet.flow = config_.flow;
    packet.size = config_.packet_size;
    packet.created = now;
    ++sent_;
    emit_(std::move(packet));
  }
}

void TokenBucketSource::tick(sim::SimTime horizon) {
  // Next emission opportunity: greedy sources wake exactly when the next
  // packet's worth of tokens has accumulated; randomized sources draw an
  // exponential gap (conformance still enforced by the bucket).
  double gap = config_.packet_size / config_.rho;
  if (!config_.greedy) {
    gap = rng_.exponential_mean(gap);
  }
  const sim::SimTime at = simulator_->now() + sim::Duration::seconds(gap);
  if (at > horizon) return;
  simulator_->at(at, [this, horizon] {
    send_conforming(simulator_->now());
    tick(horizon);
  });
}

}  // namespace imrm::qos
