file(REMOVE_RECURSE
  "CMakeFiles/imrm_experiments.dir/campus_day.cc.o"
  "CMakeFiles/imrm_experiments.dir/campus_day.cc.o.d"
  "CMakeFiles/imrm_experiments.dir/classroom.cc.o"
  "CMakeFiles/imrm_experiments.dir/classroom.cc.o.d"
  "CMakeFiles/imrm_experiments.dir/fig4_mobility.cc.o"
  "CMakeFiles/imrm_experiments.dir/fig4_mobility.cc.o.d"
  "CMakeFiles/imrm_experiments.dir/twocell.cc.o"
  "CMakeFiles/imrm_experiments.dir/twocell.cc.o.d"
  "libimrm_experiments.a"
  "libimrm_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imrm_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
