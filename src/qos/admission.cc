#include "qos/admission.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"

namespace imrm::qos {

std::string to_string(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kInvalidRequest: return "invalid-request";
    case RejectReason::kBandwidth: return "bandwidth";
    case RejectReason::kJitter: return "jitter";
    case RejectReason::kBuffer: return "buffer";
    case RejectReason::kDelay: return "delay";
    case RejectReason::kLoss: return "loss";
  }
  return "unknown";
}

Seconds AdmissionPipeline::hop_delay(const QosRequest& request, const LinkSnapshot& link) {
  return request.traffic.l_max / request.bandwidth.b_min +
         request.traffic.l_max / link.capacity;
}

Seconds AdmissionPipeline::e2e_min_delay(const QosRequest& request,
                                         const std::vector<LinkSnapshot>& route) {
  const double n = double(route.size());
  Seconds transmission = 0.0;
  for (const auto& link : route) transmission += request.traffic.l_max / link.capacity;
  return (request.traffic.sigma + n * request.traffic.l_max) / request.bandwidth.b_min +
         transmission;
}

Bits AdmissionPipeline::forward_buffer(const QosRequest& request, std::size_t hop_index,
                                       Seconds d_prev, Seconds d_cur) const {
  const auto& t = request.traffic;
  if (scheduler_ == Scheduler::kWfq) {
    // WFQ: sigma_j + l * L_max  (Table 2, footnote 6).
    return t.sigma + double(hop_index) * t.l_max;
  }
  // RCSP with b*-RJ regulators (Table 2, footnote 7): the regulator at hop l
  // reshapes using the upstream hop's delay bound, hence the first hop only
  // sees its own delay.
  if (hop_index == 1) {
    return t.sigma + t.l_max + request.bandwidth.b_max * d_cur;
  }
  return t.sigma + t.l_max + request.bandwidth.b_max * (d_prev + d_cur);
}

Bits AdmissionPipeline::reverse_buffer(const QosRequest& request, std::size_t hop_index,
                                       BitsPerSecond allocated, Seconds d_prev_relaxed,
                                       Seconds d_cur) const {
  const auto& t = request.traffic;
  if (scheduler_ == Scheduler::kWfq) {
    return t.sigma + double(hop_index) * t.l_max;
  }
  // Reverse-pass RCSP rows exactly as printed in Table 2: the first hop keeps
  // the L_max term; later hops use the relaxed upstream delay d'_{l-1} plus
  // the unrelaxed local forward delay d_l.
  if (hop_index == 1) {
    return t.sigma + t.l_max + allocated * d_cur;
  }
  return t.sigma + allocated * (d_prev_relaxed + d_cur);
}

void AdmissionPipeline::bind_metrics(obs::Registry* registry) {
  if (!registry) {
    attempts_counter_ = nullptr;
    accepted_counter_ = nullptr;
    reject_counters_.fill(nullptr);
    return;
  }
  attempts_counter_ = &registry->counter("qos.admission.attempts");
  accepted_counter_ = &registry->counter("qos.admission.accepted");
  for (std::size_t i = 0; i < kRejectReasonCount; ++i) {
    const RejectReason reason = static_cast<RejectReason>(i);
    reject_counters_[i] =
        reason == RejectReason::kNone
            ? nullptr
            : &registry->counter("qos.admission.rejected." + to_string(reason));
  }
}

void AdmissionPipeline::record(const AdmissionResult& result) const {
  if (!attempts_counter_) return;
  attempts_counter_->add();
  if (result.accepted) {
    accepted_counter_->add();
  } else if (obs::Counter* c = reject_counters_[std::size_t(result.reason)]) {
    c->add();
  }
}

AdmissionResult AdmissionPipeline::admit(const QosRequest& request,
                                         const std::vector<LinkSnapshot>& route,
                                         BitsPerSecond b_stamp, ConnectionKind kind) const {
  AdmissionResult result = evaluate(request, route, b_stamp, kind);
  record(result);
  return result;
}

AdmissionResult AdmissionPipeline::evaluate(const QosRequest& request,
                                            const std::vector<LinkSnapshot>& route,
                                            BitsPerSecond b_stamp, ConnectionKind kind) const {
  AdmissionResult result;
  if (!request.valid() || route.empty()) {
    result.reason = RejectReason::kInvalidRequest;
    return result;
  }

  const auto& t = request.traffic;
  const BitsPerSecond b_min = request.bandwidth.b_min;
  const std::size_t n = route.size();

  // ---- Forward pass: per-link tests, tentative (greatest-level) reservation.
  std::vector<Seconds> forward_delay(n);
  double delivery_prob = 1.0;
  for (std::size_t l = 0; l < n; ++l) {
    const LinkSnapshot& link = route[l];
    const std::size_t hop = l + 1;  // Table 2 indexes hops from 1

    // Bandwidth: b_min,j <= C_l - b_resv,l - sum_i b_min,i. A handoff
    // connection may consume the bandwidth that was advance-reserved for it
    // (Section 5.1), so its test sees b_resv reduced by up to b_min.
    BitsPerSecond usable_reservation =
        kind == ConnectionKind::kHandoff ? std::min(link.advance_reserved, b_min) : 0.0;
    const BitsPerSecond admissible =
        link.capacity - (link.advance_reserved - usable_reservation) - link.sum_b_min;
    if (b_min > admissible) {
      result.reason = RejectReason::kBandwidth;
      result.failed_hop = hop;
      return result;
    }

    forward_delay[l] = hop_delay(request, link);

    // Jitter at hop l: (sigma_j + l L_max) / b_min,j <= sigma-bar.
    const Seconds jitter_l = (t.sigma + double(hop) * t.l_max) / b_min;
    if (jitter_l > request.jitter_bound) {
      result.reason = RejectReason::kJitter;
      result.failed_hop = hop;
      return result;
    }

    // Buffer requirement for the configured scheduler.
    const Seconds d_prev = l > 0 ? forward_delay[l - 1] : 0.0;
    const Bits needed = forward_buffer(request, hop, d_prev, forward_delay[l]);
    if (needed > link.buffer_capacity) {
      result.reason = RejectReason::kBuffer;
      result.failed_hop = hop;
      return result;
    }

    delivery_prob *= (1.0 - link.error_prob);
  }

  // ---- Destination node: end-to-end tests.
  result.e2e_min_delay = e2e_min_delay(request, route);
  result.e2e_jitter = (t.sigma + double(n) * t.l_max) / b_min;
  result.e2e_loss = 1.0 - delivery_prob;

  if (result.e2e_min_delay > request.delay_bound) {
    result.reason = RejectReason::kDelay;
    return result;
  }
  if (result.e2e_jitter > request.jitter_bound) {
    result.reason = RejectReason::kJitter;
    return result;
  }
  if (result.e2e_loss > request.loss_bound) {
    result.reason = RejectReason::kLoss;
    return result;
  }

  // ---- Reverse pass: uniform relaxation and firm reservation.
  //
  // Bandwidth: static portables receive the minimum plus the max-min stamped
  // excess (clamped into the negotiated range); mobile portables are pinned
  // at b_min to minimise adaptation churn during handoffs (Section 3.4.2).
  BitsPerSecond allocated = b_min;
  if (mobility_ == MobilityClass::kStatic) {
    allocated = std::min(b_min + b_stamp, request.bandwidth.b_max);
  }
  result.allocated_bandwidth = allocated;

  const Seconds slack_per_hop = (request.delay_bound - result.e2e_min_delay) / double(n) +
                                t.sigma / (double(n) * b_min);

  result.hops.resize(n);
  for (std::size_t l = 0; l < n; ++l) {
    const std::size_t hop = l + 1;
    const Seconds relaxed = forward_delay[l] + slack_per_hop;
    result.hops[l].local_delay = relaxed;
    const Seconds d_prev_relaxed = l > 0 ? result.hops[l - 1].local_delay : 0.0;
    // Table 2 reverse-pass rows: hop 1 uses its own *relaxed* delay d'_1;
    // later hops combine the relaxed upstream delay with the unrelaxed local
    // forward delay d_l.
    const Seconds d_cur = hop == 1 ? relaxed : forward_delay[l];
    result.hops[l].buffer = reverse_buffer(request, hop, allocated, d_prev_relaxed, d_cur);
  }

  result.accepted = true;
  return result;
}

}  // namespace imrm::qos
