// Simulation time.
//
// The paper mixes time scales freely: meeting-room reservation windows are
// expressed in minutes (Delta_s = 10 min), connection holding times in
// abstract units (Fig. 6 uses mean holding time 0.2), and link-level delays
// in micro/milliseconds (Table 2).  We therefore keep simulation time as a
// double in *seconds* and provide explicit conversion helpers so call sites
// always say which unit they mean.
#pragma once

#include <compare>
#include <limits>

namespace imrm::sim {

/// A point in simulated time, measured in seconds from simulation start.
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime seconds(double s) { return SimTime{s}; }
  [[nodiscard]] static constexpr SimTime millis(double ms) { return SimTime{ms / 1e3}; }
  [[nodiscard]] static constexpr SimTime minutes(double m) { return SimTime{m * 60.0}; }
  [[nodiscard]] static constexpr SimTime hours(double h) { return SimTime{h * 3600.0}; }
  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0.0}; }
  [[nodiscard]] static constexpr SimTime infinity() {
    return SimTime{std::numeric_limits<double>::infinity()};
  }

  [[nodiscard]] constexpr double to_seconds() const { return seconds_; }
  [[nodiscard]] constexpr double to_millis() const { return seconds_ * 1e3; }
  [[nodiscard]] constexpr double to_minutes() const { return seconds_ / 60.0; }
  [[nodiscard]] constexpr double to_hours() const { return seconds_ / 3600.0; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime rhs) const { return SimTime{seconds_ + rhs.seconds_}; }
  constexpr SimTime operator-(SimTime rhs) const { return SimTime{seconds_ - rhs.seconds_}; }
  constexpr SimTime& operator+=(SimTime rhs) {
    seconds_ += rhs.seconds_;
    return *this;
  }

 private:
  constexpr explicit SimTime(double s) : seconds_(s) {}
  double seconds_ = 0.0;
};

/// A duration; same representation as SimTime, kept as an alias because the
/// arithmetic is identical and the call sites read naturally either way.
using Duration = SimTime;

}  // namespace imrm::sim
