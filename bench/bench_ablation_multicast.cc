// Ablation: multicast warm-up to neighboring cells (Section 4).
//
// The backbone pre-installs multicast branches toward every neighbor base
// station so a handoff finds warm state. The benefit is the fraction of
// handoffs that land on a warm branch (no end-to-end setup transient); the
// cost is wired bandwidth held by branch reservations. We run a random-walk
// population over the full backbone with multicast on and off.
#include <iostream>
#include <memory>

#include "core/network_environment.h"
#include "mobility/floorplan.h"
#include "mobility/movement.h"
#include "sim/random.h"
#include "stats/table.h"
#include "stats/timeseries.h"

using namespace imrm;
using core::BackboneConfig;
using core::NetworkEnvironment;

namespace {

struct Outcome {
  double warm_fraction = 0.0;
  std::size_t drops = 0;
  std::size_t handoffs = 0;
  std::size_t branches = 0;
  double wired_overhead_kbps = 0.0;  // branch reservations on the server uplink
};

Outcome run(bool multicast, int users, std::uint64_t seed) {
  sim::Simulator simulator;
  BackboneConfig config;
  config.enable_multicast = multicast;
  NetworkEnvironment env(mobility::fig4_environment(), simulator, config);
  const auto cells = mobility::fig4_cells(env.map());

  sim::Rng rng(seed);
  const mobility::TransitionTable table =
      mobility::fig4_transition_table(env.map(), mobility::fig4_student_weights());

  qos::QosRequest request;
  request.bandwidth = {qos::kbps(32), qos::kbps(128)};
  request.delay_bound = 10.0;
  request.jitter_bound = 10.0;
  request.loss_bound = 0.05;
  request.traffic = {8000.0, 8000.0};

  std::vector<net::PortableId> population;
  for (int i = 0; i < users; ++i) {
    const auto p = env.add_portable(cells.c);
    env.open_connection(p, request);
    population.push_back(p);
  }

  const sim::SimTime horizon = sim::SimTime::hours(2);
  struct Walker {
    NetworkEnvironment* env;
    const mobility::TransitionTable* table;
    sim::Rng rng;
    sim::SimTime horizon;
    void step(net::PortableId p) {
      auto& simulator = env->mobility().simulator();
      const auto at =
          simulator.now() + sim::Duration::minutes(rng.exponential_mean(3.0));
      if (at > horizon) return;
      simulator.at(at, [this, p] {
        const auto& me = env->mobility().portable(p);
        const auto next =
            table->sample(env->map(), me.previous_cell, me.current_cell, rng);
        env->handoff(p, next);
        step(p);
      });
    }
  };
  auto walker = std::make_shared<Walker>(Walker{&env, &table, rng.fork(), horizon});
  for (auto p : population) walker->step(p);

  // Sample the wired overhead (sum of b_min of multicast reservations on the
  // server's uplink, approximated by connections beyond the live sessions).
  stats::Summary overhead;
  simulator.every(sim::Duration::minutes(5), horizon, [&] {
    const auto& uplink = env.network().link(net::LinkId{0});  // server -> core
    double live = 0.0;
    for (auto p : population) {
      if (env.has_connection(p)) live += qos::kbps(32);
    }
    overhead.add((uplink.sum_b_min() - live) / 1e3);
  });

  simulator.run();

  Outcome out;
  const auto& s = env.stats();
  out.handoffs = s.handoffs;
  out.warm_fraction = s.handoffs ? double(s.warm_handoffs) / double(s.handoffs) : 0.0;
  out.drops = s.handoff_drops;
  out.branches = s.multicast_branches_admitted;
  out.wired_overhead_kbps = overhead.mean();
  return out;
}

}  // namespace

int main() {
  std::cout << "== Ablation: multicast warm-up to neighbor cells (Section 4) ==\n";
  std::cout << "random-walk population on the Figure 4 backbone, 2 h\n\n";

  stats::Table table({"users", "multicast", "handoffs", "warm handoffs", "drops",
                      "branches set up", "wired overhead (kbps)"});
  for (int users : {8, 16, 32}) {
    for (bool multicast : {true, false}) {
      const Outcome o = run(multicast, users, 23);
      table.add_row({std::to_string(users), multicast ? "on" : "off",
                     std::to_string(o.handoffs),
                     stats::fmt(o.warm_fraction * 100.0, 1) + "%",
                     std::to_string(o.drops), std::to_string(o.branches),
                     stats::fmt(o.wired_overhead_kbps, 0)});
    }
  }
  table.print(std::cout);

  std::cout << "\nWith multicast on, nearly every handoff lands on a warm branch\n"
               "(the data already flows to the new base station's buffers); the\n"
               "cost is the wired bandwidth the branches reserve. The paper keeps\n"
               "branch admission non-fatal precisely because this is an\n"
               "optimization, not a correctness requirement.\n";
  return 0;
}
