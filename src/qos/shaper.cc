#include "qos/shaper.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace imrm::qos {

void DualTokenBucketShaper::add_flow(FlowId flow, const Shape& shape) {
  assert(shape.guaranteed >= 0.0 && shape.excess >= 0.0);
  assert(shape.bg_depth > 0.0 && "BG bucket must admit at least one packet");
  if (flow >= flows_.size()) flows_.resize(std::size_t(flow) + 1);
  FlowState& state = flows_[flow];
  // Re-registration keeps counters (it is a shape change, not a new flow).
  const Counters kept = state.counters;
  state = FlowState{};
  state.registered = true;
  state.shape = shape;
  state.bg_tokens = shape.bg_depth;
  state.wc_tokens = shape.wc_depth;
  state.last_refill = simulator_->now();
  state.counters = kept;
}

void DualTokenBucketShaper::set_shape(FlowId flow, BitsPerSecond guaranteed,
                                      BitsPerSecond excess) {
  assert(flow < flows_.size() && flows_[flow].registered &&
         "flow must be registered");
  assert(guaranteed >= 0.0 && excess >= 0.0);
  FlowState& state = flows_[flow];
  // Settle the buckets at the old rates up to now, then switch rates. The
  // clamp to depth is what prevents a windfall: credit accrued under the
  // old (larger) rates is capped at one burst, not carried indefinitely.
  refill(state, simulator_->now());
  state.shape.guaranteed = guaranteed;
  state.shape.excess = excess;
  state.bg_tokens = std::min(state.bg_tokens, state.shape.bg_depth);
  state.wc_tokens = std::min(state.wc_tokens, state.shape.wc_depth);
}

void DualTokenBucketShaper::refill(FlowState& state, sim::SimTime now) {
  const double elapsed = (now - state.last_refill).to_seconds();
  state.last_refill = now;
  if (elapsed <= 0.0) return;
  state.bg_tokens = std::min(state.shape.bg_depth,
                             state.bg_tokens + state.shape.guaranteed * elapsed);
  state.wc_tokens = std::min(state.shape.wc_depth,
                             state.wc_tokens + state.shape.excess * elapsed);
}

void DualTokenBucketShaper::offer(Packet packet) {
  assert(packet.flow < flows_.size() && flows_[packet.flow].registered &&
         "flow must be registered");
  FlowState& state = flows_[packet.flow];
  refill(state, simulator_->now());
  Counters& c = state.counters;
  ++c.offered_packets;
  c.offered_bits += packet.size;
  ++totals_.offered_packets;
  totals_.offered_bits += packet.size;
  if (state.bg_tokens >= packet.size) {
    state.bg_tokens -= packet.size;
    ++c.bg_packets;
    c.bg_bits += packet.size;
    ++totals_.bg_packets;
    totals_.bg_bits += packet.size;
  } else if (state.wc_tokens >= packet.size) {
    state.wc_tokens -= packet.size;
    ++c.wc_packets;
    c.wc_bits += packet.size;
    ++totals_.wc_packets;
    totals_.wc_bits += packet.size;
  } else {
    // Conforms to neither bucket: policed here, visibly — the controller's
    // loss plane must see overload, not have a queue absorb it.
    ++c.nonconforming_packets;
    c.nonconforming_bits += packet.size;
    ++totals_.nonconforming_packets;
    totals_.nonconforming_bits += packet.size;
    return;
  }
  if (next_) next_(std::move(packet));
}

const DualTokenBucketShaper::Counters& DualTokenBucketShaper::counters(
    FlowId flow) const {
  static const Counters kEmpty;
  if (flow >= flows_.size() || !flows_[flow].registered) return kEmpty;
  return flows_[flow].counters;
}

BitsPerSecond DualTokenBucketShaper::enforced_rate(FlowId flow) const {
  if (flow >= flows_.size() || !flows_[flow].registered) return 0.0;
  return flows_[flow].shape.guaranteed + flows_[flow].shape.excess;
}

}  // namespace imrm::qos
