// Parallel replication runner for Monte-Carlo sweeps.
//
// The admission-control literature this reproduction tracks evaluates via
// large independent-replication sweeps; each replication is an isolated
// Simulator instance, so they parallelize perfectly. ReplicationRunner fans
// N replications across a std::thread pool with
//  * deterministic seed derivation — replication i always receives
//    replication_seed(base_seed, i), regardless of which thread runs it, and
//  * order-independent aggregation — results land in a vector indexed by
//    replication, so any fold over them is byte-identical at 1, 4, or 8
//    threads (asserted by tests/replication_test.cc).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

namespace imrm::sim {

/// Deterministic per-replication seed: splitmix64 over (base, index). Seeds
/// for distinct indices are decorrelated even for sequential bases.
[[nodiscard]] std::uint64_t replication_seed(std::uint64_t base, std::size_t index);

class ReplicationRunner {
 public:
  /// `threads` == 0 selects the hardware concurrency.
  explicit ReplicationRunner(std::size_t threads = 0);

  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Invokes body(index) for every index in [0, n), distributing indices
  /// across the pool. Blocks until all complete. On failure the exception of
  /// the LOWEST failing index is rethrown in the caller's thread after the
  /// pool drains — deterministically the error a sequential run would hit,
  /// at any thread count — and workers stop claiming new indices as soon as
  /// any failure is recorded.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& body) const;

  /// As run_indexed, additionally measuring each replication's wall cost
  /// (steady clock, ns) into per_index_ns[index]. Each slot is written by
  /// exactly one worker and the pool join publishes them, so the caller may
  /// fold the vector — e.g. into an obs::Profiler — as soon as this returns.
  /// A null pointer degrades to the untimed overload.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& body,
                   std::vector<std::uint64_t>* per_index_ns) const {
    if (per_index_ns == nullptr) {
      run_indexed(n, body);
      return;
    }
    per_index_ns->assign(n, 0);
    run_indexed(n, [&](std::size_t index) {
      const auto t0 = std::chrono::steady_clock::now();
      body(index);
      (*per_index_ns)[index] = std::uint64_t(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    });
  }

  /// Runs n replications of body(seed, index), returning results in index
  /// order. Result types must be default-constructible. `per_index_ns`, when
  /// non-null, receives each replication's wall cost as above.
  template <typename Body>
  [[nodiscard]] auto run(std::size_t n, std::uint64_t base_seed, Body&& body,
                         std::vector<std::uint64_t>* per_index_ns = nullptr) const
      -> std::vector<std::invoke_result_t<Body&, std::uint64_t, std::size_t>> {
    std::vector<std::invoke_result_t<Body&, std::uint64_t, std::size_t>> results(n);
    run_indexed(
        n,
        [&](std::size_t index) {
          results[index] = body(replication_seed(base_seed, index), index);
        },
        per_index_ns);
    return results;
  }

 private:
  std::size_t threads_;
};

}  // namespace imrm::sim
