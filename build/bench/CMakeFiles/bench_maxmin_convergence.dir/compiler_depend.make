# Empty compiler generated dependencies file for bench_maxmin_convergence.
# This may be replaced when dependencies are built.
