#include "net/network_state.h"

#include <cassert>

namespace imrm::net {

NetworkState::NetworkState(const Topology& topology) : topology_(&topology) {
  links_.reserve(topology.link_count());
  for (const Link& l : topology.links()) {
    links_.emplace_back(l.id, l.capacity, l.buffer_capacity, l.error_prob);
  }
}

std::optional<ConnectionId> NetworkState::admit(NodeId src, NodeId dst, Route route,
                                                const qos::QosRequest& request,
                                                qos::MobilityClass mobility,
                                                qos::Scheduler scheduler,
                                                qos::BitsPerSecond b_stamp,
                                                qos::ConnectionKind kind) {
  std::vector<qos::LinkSnapshot> snapshots;
  snapshots.reserve(route.size());
  for (LinkId lid : route) snapshots.push_back(link(lid).snapshot());

  const qos::AdmissionPipeline pipeline(scheduler, mobility);
  last_result_ = pipeline.admit(request, snapshots, b_stamp, kind);
  if (!last_result_.accepted) return std::nullopt;

  const ConnectionId id{next_connection_++};
  for (std::size_t l = 0; l < route.size(); ++l) {
    LinkState& ls = link(route[l]);
    // A handoff consumes the advance reservation that was made for it.
    if (kind == qos::ConnectionKind::kHandoff) {
      ls.release_advance(std::min(ls.advance_reserved(), request.bandwidth.b_min));
    }
    ls.add_connection(id, request.bandwidth, last_result_.allocated_bandwidth,
                      last_result_.hops[l].buffer);
  }
  connections_.emplace(
      id, Connection{id, src, dst, std::move(route), request, mobility,
                     last_result_.allocated_bandwidth});
  return id;
}

void NetworkState::teardown(ConnectionId id) {
  const auto it = connections_.find(id);
  assert(it != connections_.end());
  for (LinkId lid : it->second.route) link(lid).remove_connection(id);
  connections_.erase(it);
}

void NetworkState::set_allocated(ConnectionId id, qos::BitsPerSecond rate) {
  auto& conn = connections_.at(id);
  for (LinkId lid : conn.route) link(lid).set_allocated(id, rate);
  conn.allocated = rate;
}

std::vector<ConnectionId> NetworkState::connection_ids() const {
  std::vector<ConnectionId> ids;
  ids.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace imrm::net
