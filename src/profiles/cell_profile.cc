#include "profiles/cell_profile.h"

#include <algorithm>
#include <cassert>

namespace imrm::profiles {

void CellProfile::count_add(Counts& counts, CellId next) {
  const auto it = std::lower_bound(
      counts.begin(), counts.end(), next,
      [](const auto& entry, CellId id) { return entry.first < id; });
  if (it != counts.end() && it->first == next) {
    ++it->second;
  } else {
    counts.insert(it, {next, 1});
  }
}

void CellProfile::count_remove(Counts& counts, CellId next) {
  const auto it = std::lower_bound(
      counts.begin(), counts.end(), next,
      [](const auto& entry, CellId id) { return entry.first < id; });
  assert(it != counts.end() && it->first == next);
  if (--it->second == 0) counts.erase(it);
}

const CellProfile::Prev* CellProfile::find(CellId previous) const {
  const auto it = std::lower_bound(
      by_previous_.begin(), by_previous_.end(), previous,
      [](const Prev& p, CellId id) { return p.previous < id; });
  return it != by_previous_.end() && it->previous == previous ? &*it : nullptr;
}

CellProfile::Prev& CellProfile::find_or_insert(CellId previous) {
  auto it = std::lower_bound(
      by_previous_.begin(), by_previous_.end(), previous,
      [](const Prev& p, CellId id) { return p.previous < id; });
  if (it == by_previous_.end() || it->previous != previous) {
    it = by_previous_.insert(it, Prev{previous, HistoryWindow(window_), {}});
  }
  return *it;
}

void CellProfile::record(CellId previous, CellId next) {
  Prev& prev = find_or_insert(previous);
  // Same tally order as the vector-window version: add the newcomer to both
  // count sets first, then retire whatever the ring evicted.
  count_add(prev.counts, next);
  count_add(aggregate_counts_, next);
  ++total_;
  if (const std::optional<CellId> evicted = prev.window.push(next)) {
    count_remove(prev.counts, *evicted);
    count_remove(aggregate_counts_, *evicted);
    --total_;
  }
}

namespace {

std::vector<CellProfile::NeighborShare> shares_from_counts(
    const std::vector<std::pair<CellId, std::uint32_t>>& counts, std::size_t total) {
  std::vector<CellProfile::NeighborShare> out;
  if (total == 0) return out;
  out.reserve(counts.size());
  for (const auto& [cell, count] : counts) {
    out.push_back({cell, double(count) / double(total)});
  }
  return out;
}

}  // namespace

std::vector<CellProfile::NeighborShare> CellProfile::distribution(CellId previous) const {
  const Prev* prev = find(previous);
  if (prev == nullptr) return {};
  return shares_from_counts(prev->counts, prev->window.size());
}

std::vector<CellProfile::NeighborShare> CellProfile::aggregate_distribution() const {
  return shares_from_counts(aggregate_counts_, total_);
}

std::optional<CellId> CellProfile::predict(CellId previous) const {
  const Prev* prev = find(previous);
  if (prev == nullptr || prev->window.empty()) return std::nullopt;
  // First maximum in ascending neighbor order (strict-less comparison), as
  // std::max_element over the distribution produced before the migration.
  const auto best = std::max_element(
      prev->counts.begin(), prev->counts.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  return best->first;
}

std::size_t CellProfile::observations(CellId previous) const {
  const Prev* prev = find(previous);
  return prev == nullptr ? 0 : prev->window.size();
}

std::size_t CellProfile::memory_bytes() const {
  std::size_t total = by_previous_.capacity() * sizeof(Prev) +
                      aggregate_counts_.capacity() * sizeof(Counts::value_type);
  for (const Prev& prev : by_previous_) {
    total += prev.window.memory_bytes() +
             prev.counts.capacity() * sizeof(Counts::value_type);
  }
  return total;
}

void CellProfile::save_state(sim::CheckpointWriter& w) const {
  w.u32(id_.value());
  w.u64(window_);
  w.u64(by_previous_.size());
  for (const Prev& prev : by_previous_) {
    w.u32(prev.previous.value());
    w.u64(prev.window.size());
    for (std::size_t i = 0; i < prev.window.size(); ++i) {
      w.u32(prev.window[i].value());
    }
  }
}

CellProfile CellProfile::restore_state(sim::CheckpointReader& r) {
  const CellId id{r.u32()};
  CellProfile profile(id, std::size_t(r.u64()));
  for (std::uint64_t states = r.u64(); states-- > 0;) {
    const CellId previous{r.u32()};
    for (std::uint64_t n = r.u64(); n-- > 0;) {
      profile.record(previous, CellId{r.u32()});
    }
  }
  return profile;
}

}  // namespace imrm::profiles
