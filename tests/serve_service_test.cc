// AdmissionService tests: OverloadGovernor unit behaviour, typed service
// errors, and the virtual-pacing soak runs (sub-saturation, past-saturation
// shed engagement, bit-determinism) the ISSUE acceptance criteria name.
#include "serve/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/load_driver.h"
#include "serve/ring_transport.h"
#include "sim/simulator.h"

namespace imrm::serve {
namespace {

using std::chrono::microseconds;

// ---- OverloadGovernor ----------------------------------------------------

SloConfig small_slo() {
  SloConfig slo;
  slo.p99_target_us = 1000.0;
  slo.queue_capacity = 16;
  slo.retry_after_us = 500.0;
  slo.latency_window = 128;
  return slo;
}

TEST(OverloadGovernor, AdmitsBelowCapacity) {
  OverloadGovernor governor(small_slo());
  for (std::size_t depth = 0; depth < 16; ++depth) {
    EXPECT_TRUE(governor.admit(depth)) << "depth " << depth;
  }
  EXPECT_FALSE(governor.shedding());
}

TEST(OverloadGovernor, ShedsAtCapacityAndRecoversOnDepth) {
  OverloadGovernor governor(small_slo());
  EXPECT_FALSE(governor.admit(16));  // depth == capacity -> shed
  EXPECT_TRUE(governor.shedding());
  // Still above half capacity: stays in shed mode.
  EXPECT_FALSE(governor.admit(12));
  EXPECT_FALSE(governor.admit(9));
  // Depth back to capacity/2: shed mode exits, request admitted.
  EXPECT_TRUE(governor.admit(8));
  EXPECT_FALSE(governor.shedding());
}

TEST(OverloadGovernor, P99TriggerNeedsFreshSamples) {
  OverloadGovernor governor(small_slo());
  // Fewer than kMinFreshSamples slow observations: p99 may be over target
  // but the trigger is not armed yet.
  for (std::size_t i = 0; i < OverloadGovernor::kMinFreshSamples - 1; ++i) {
    governor.observe_latency(5000.0);
  }
  EXPECT_TRUE(governor.admit(0));
  // One more arms it (64 observations = two refresh intervals, so the
  // window p99 estimate is current).
  governor.observe_latency(5000.0);
  EXPECT_GT(governor.window_p99_us(), 1000.0);
  EXPECT_FALSE(governor.admit(0));
  EXPECT_TRUE(governor.shedding());
}

TEST(OverloadGovernor, ShedExitResetsFreshnessGuard) {
  OverloadGovernor governor(small_slo());
  for (std::size_t i = 0; i < OverloadGovernor::kMinFreshSamples; ++i) {
    governor.observe_latency(5000.0);
  }
  EXPECT_FALSE(governor.admit(0));  // p99 trigger fires
  // Depth at/below capacity/2 exits shed mode even though the (frozen) p99
  // estimate is still over target — depth is the only live signal while
  // shedding.
  EXPECT_TRUE(governor.admit(0));
  EXPECT_FALSE(governor.shedding());
  // The stale estimate alone must not re-trip the governor: freshness was
  // reset on exit, so admits keep flowing until new evidence accumulates.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(governor.admit(0));
  // Fresh slow samples re-arm it.
  for (std::size_t i = 0; i < OverloadGovernor::kMinFreshSamples; ++i) {
    governor.observe_latency(5000.0);
  }
  EXPECT_FALSE(governor.admit(0));
}

// ---- single-request service behaviour ------------------------------------

qos::QosRequest loose_qos() {
  return qos::QosRequest{
      {qos::kbps(32.0), qos::kbps(128.0)}, 10.0, 10.0, 0.05, {8000.0, 8000.0}};
}

/// Sends one request through a fresh pump_virtual round and returns the reply.
class ServiceHarness {
 public:
  explicit ServiceHarness(std::size_t cells = 8)
      : service_(make_config(cells), simulator_) {}

  ReplyFrame call(const Request& request) {
    const std::uint64_t id = ++next_id_;
    EXPECT_TRUE(ring_.client().send_request(encode_request(id, request)));
    service_.pump_virtual(ring_.server());
    simulator_.run();
    std::vector<std::uint8_t> bytes;
    EXPECT_TRUE(ring_.client().next_reply(bytes, microseconds(0)));
    ReplyFrame reply = decode_reply(bytes);
    EXPECT_EQ(reply.request_id, id);
    return reply;
  }

  ReplyFrame call_raw(std::vector<std::uint8_t> frame) {
    EXPECT_TRUE(ring_.client().send_request(std::move(frame)));
    service_.pump_virtual(ring_.server());
    simulator_.run();
    std::vector<std::uint8_t> bytes;
    EXPECT_TRUE(ring_.client().next_reply(bytes, microseconds(0)));
    return decode_reply(bytes);
  }

  AdmissionService& service() { return service_; }

 private:
  static ServiceConfig make_config(std::size_t cells) {
    ServiceConfig config;
    config.cells = cells;
    return config;
  }

  sim::Simulator simulator_;
  RingTransport ring_;
  AdmissionService service_;
  std::uint64_t next_id_ = 0;
};

TEST(AdmissionService, AdmitHandoffTeardownHappyPath) {
  ServiceHarness harness;

  const auto admit = std::get<AdmitReply>(
      harness.call(AdmitRequest{1, 0, false, loose_qos()}).body);
  EXPECT_TRUE(admit.accepted);
  EXPECT_GT(admit.allocated_bps, 0.0);

  const auto handoff =
      std::get<HandoffReply>(harness.call(HandoffRequest{1, 1}).body);
  EXPECT_TRUE(handoff.completed);

  const auto teardown =
      std::get<TeardownReply>(harness.call(TeardownRequest{1}).body);
  EXPECT_TRUE(teardown.had_session);

  // Idempotent: a second teardown is a no-op, not an error.
  const auto again =
      std::get<TeardownReply>(harness.call(TeardownRequest{1}).body);
  EXPECT_FALSE(again.had_session);

  const ServiceStats& stats = harness.service().stats();
  EXPECT_EQ(stats.offered, 4u);
  EXPECT_EQ(stats.processed, 4u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.admit_accepted, 1u);
  EXPECT_EQ(stats.handoffs, 1u);
  EXPECT_EQ(stats.teardowns, 2u);
}

TEST(AdmissionService, TypedErrorPaths) {
  ServiceHarness harness(/*cells=*/8);

  auto error_of = [&](const Request& request) {
    return std::get<ErrorReply>(harness.call(request).body).error;
  };

  EXPECT_EQ(error_of(HandoffRequest{42, 1}), ServiceError::kUnknownPortable);
  EXPECT_EQ(error_of(AdmitRequest{1, 99, false, loose_qos()}),
            ServiceError::kUnknownCell);

  ASSERT_TRUE(std::get<AdmitReply>(
                  harness.call(AdmitRequest{1, 0, false, loose_qos()}).body)
                  .accepted);
  EXPECT_EQ(error_of(AdmitRequest{1, 0, false, loose_qos()}),
            ServiceError::kAlreadyAdmitted);

  // Corridor chain: cell 0 neighbors only cell 1.
  EXPECT_EQ(error_of(HandoffRequest{1, 5}), ServiceError::kNotAdjacent);
  EXPECT_EQ(error_of(HandoffRequest{1, 0}), ServiceError::kNotAdjacent);
  EXPECT_EQ(error_of(HandoffRequest{1, 99}), ServiceError::kUnknownCell);

  const ServiceStats& stats = harness.service().stats();
  EXPECT_EQ(stats.errors, 6u);
  EXPECT_EQ(stats.processed, stats.offered);
}

TEST(AdmissionService, MalformedFrameGetsTypedErrorReply) {
  ServiceHarness harness;
  const auto reply = harness.call_raw(std::vector<std::uint8_t>(64, 0x5A));
  EXPECT_EQ(reply.request_id, 0u);  // header never parsed; unmatched id
  const auto& error = std::get<ErrorReply>(reply.body);
  EXPECT_EQ(error.error, ServiceError::kMalformedFrame);
  EXPECT_FALSE(error.message.empty());
  EXPECT_EQ(harness.service().stats().errors, 1u);
  EXPECT_EQ(harness.service().stats().processed, 1u);
}

TEST(AdmissionService, ShutdownStopsFurtherWork) {
  ServiceHarness harness;
  (void)std::get<ShutdownReply>(harness.call(ShutdownRequest{}).body);
  EXPECT_TRUE(harness.service().shutdown_requested());
  const auto& error =
      std::get<ErrorReply>(harness.call(ProbeRequest{}).body);
  EXPECT_EQ(error.error, ServiceError::kShuttingDown);
}

TEST(AdmissionService, ProbeReportsLiveCounters) {
  ServiceHarness harness(/*cells=*/12);
  ASSERT_TRUE(std::get<AdmitReply>(
                  harness.call(AdmitRequest{7, 3, false, loose_qos()}).body)
                  .accepted);
  const auto probe = std::get<ProbeReply>(harness.call(ProbeRequest{}).body);
  EXPECT_EQ(probe.offered, 2u);
  EXPECT_EQ(probe.processed, 1u);  // snapshot precedes the probe's own count
  EXPECT_EQ(probe.shed, 0u);
  EXPECT_EQ(probe.cells, 12u);
}

// ---- driven soak runs (virtual pacing) -----------------------------------

struct SoakResult {
  ServiceStats service;
  DriveStats drive;
  double p99_us = 0.0;
  double p50_us = 0.0;
  bool shed_seen = false;
};

SoakResult run_soak(double rate, double duration_s, std::size_t queue_capacity,
                    std::uint64_t seed) {
  sim::Simulator simulator;
  obs::Registry registry;

  ServiceConfig service_config;
  service_config.cells = 16;
  service_config.slo.p99_target_us = 5000.0;
  // Accepted-latency bound: queue_capacity * virtual_service_cost_us is the
  // worst queueing delay an accepted request can see; keep it under the SLO.
  service_config.slo.queue_capacity = queue_capacity;
  service_config.virtual_service_cost_us = 200.0;  // saturation = 5000 req/s
  service_config.metrics = &registry;

  DriveConfig drive_config;
  drive_config.rate = rate;
  drive_config.duration_s = duration_s;
  drive_config.seed = seed;
  drive_config.portables = 64;
  drive_config.cells = 16;
  drive_config.metrics = &registry;

  AdmissionService service(service_config, simulator);
  RingTransport ring;
  LoadDriver driver(drive_config);

  SoakResult result;
  result.drive = driver.run_virtual(simulator, ring, service);
  result.service = service.stats();
  const obs::Snapshot snapshot = registry.snapshot();
  const obs::HistogramSample* latency = snapshot.histogram("serve.latency_us");
  if (latency != nullptr && latency->count > 0) {
    result.p99_us = latency->percentile(0.99);
    result.p50_us = latency->percentile(0.50);
  }
  result.shed_seen = result.service.shed > 0;
  return result;
}

TEST(ServeSoak, SubSaturationMeetsSloWithoutShedding) {
  // 1000 req/s against a 5000 req/s server: 20% utilisation.
  const SoakResult run = run_soak(1000.0, 10.0, 16, 42);

  EXPECT_GT(run.service.offered, 9000u);
  EXPECT_EQ(run.service.shed, 0u);
  EXPECT_EQ(run.service.offered, run.service.processed);
  EXPECT_GT(run.service.admit_accepted, 0u);
  EXPECT_LT(run.p99_us, 5000.0);
  EXPECT_EQ(run.drive.sent, run.service.offered);
  EXPECT_EQ(run.drive.unanswered, 0u);
}

TEST(ServeSoak, PastSaturationShedsAndKeepsAcceptedUnderSlo) {
  // 1.5x saturation: the M/D/1 server cannot keep up; the governor must
  // engage, the accepted requests must still meet the latency SLO, and
  // conservation must hold exactly.
  const SoakResult run = run_soak(7500.0, 10.0, 16, 42);

  EXPECT_TRUE(run.shed_seen) << "governor never engaged past saturation";
  EXPECT_GT(run.service.shed, run.service.offered / 10)
      << "shed fraction implausibly small at 1.5x saturation";
  EXPECT_EQ(run.service.offered, run.service.processed + run.service.shed);
  // Sustained throughput pins to the saturation rate (5000/s) +- scheduling
  // slack at the boundaries.
  const double sustained = double(run.service.processed) / run.drive.duration_s;
  EXPECT_GT(sustained, 4800.0);
  EXPECT_LT(sustained, 5200.0);
  // The whole point of shedding: accepted-request p99 stays under the SLO.
  EXPECT_LT(run.p99_us, 5000.0);
  // Queue is bounded by the configured capacity (+1 for the in-service slot).
  EXPECT_LE(run.service.peak_queue_depth, 17u);
  // The driver saw the sheds as ShedReply, not as silence.
  EXPECT_EQ(run.drive.shed, run.service.shed);
  EXPECT_EQ(run.drive.unanswered, 0u);
}

TEST(ServeSoak, VirtualPacingIsDeterministic) {
  const SoakResult a = run_soak(7500.0, 5.0, 16, 7);
  const SoakResult b = run_soak(7500.0, 5.0, 16, 7);

  EXPECT_EQ(a.service.offered, b.service.offered);
  EXPECT_EQ(a.service.processed, b.service.processed);
  EXPECT_EQ(a.service.shed, b.service.shed);
  EXPECT_EQ(a.service.errors, b.service.errors);
  EXPECT_EQ(a.service.admit_accepted, b.service.admit_accepted);
  EXPECT_EQ(a.service.admit_rejected, b.service.admit_rejected);
  EXPECT_EQ(a.service.handoffs, b.service.handoffs);
  EXPECT_EQ(a.service.peak_queue_depth, b.service.peak_queue_depth);
  EXPECT_EQ(a.drive.sent, b.drive.sent);
  EXPECT_EQ(a.drive.accepted, b.drive.accepted);
  EXPECT_EQ(a.drive.shed, b.drive.shed);
  EXPECT_EQ(a.p99_us, b.p99_us);  // bit-identical, not approximately
  EXPECT_EQ(a.p50_us, b.p50_us);

  // Different seed, different run — guards against the comparison above
  // passing vacuously (e.g. everything zero).
  const SoakResult c = run_soak(7500.0, 5.0, 16, 8);
  EXPECT_NE(a.service.offered, c.service.offered);
}

}  // namespace
}  // namespace imrm::serve
