// Directory of per-cell bandwidth accounts, shared by the advance
// reservation policies and the handoff admission path.
//
// Storage is a dense vector indexed by CellId::value(): CellMap assigns cell
// ids sequentially from zero, so the account for cell `c` lives at
// `cells_[c]` — one indexed load on the admission path instead of a hash
// probe, and iteration is ascending-id by construction (deterministic
// without a sort).
#pragma once

#include <vector>

#include "obs/metrics.h"
#include "reservation/cell_bandwidth.h"

namespace imrm::reservation {

class ReservationDirectory {
 public:
  void add_cell(CellId id, qos::BitsPerSecond capacity) {
    const std::size_t index = id.value();
    if (index >= cells_.size()) {
      cells_.resize(index + 1);
      present_.resize(index + 1, false);
    }
    if (present_[index]) return;
    cells_[index] = CellBandwidth(capacity);
    present_[index] = true;
    ++count_;
    if (bound_) cells_[index].set_telemetry(&telemetry_);
  }

  /// Registers the aggregate admission instruments (resv.new.*, resv.handoff.*,
  /// resv.reservation.{hit,miss} counters and the resv.reservation.coverage
  /// histogram) in `registry` and wires them into every current and future
  /// cell. The registry must outlive the directory (or the next bind).
  void bind_metrics(obs::Registry& registry) {
    telemetry_.new_admitted = &registry.counter("resv.new.admitted");
    telemetry_.new_blocked = &registry.counter("resv.new.blocked");
    telemetry_.handoff_admitted = &registry.counter("resv.handoff.admitted");
    telemetry_.handoff_dropped = &registry.counter("resv.handoff.dropped");
    telemetry_.reservation_hits = &registry.counter("resv.reservation.hit");
    telemetry_.reservation_misses = &registry.counter("resv.reservation.miss");
    telemetry_.reservation_coverage = &registry.histogram(
        "resv.reservation.coverage", obs::HistogramSpec::linear(0.0, 1.0, 20));
    bound_ = true;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (present_[i]) cells_[i].set_telemetry(&telemetry_);
    }
  }

  [[nodiscard]] CellBandwidth& at(CellId id) { return cells_.at(id.value()); }
  [[nodiscard]] const CellBandwidth& at(CellId id) const {
    return cells_.at(id.value());
  }
  [[nodiscard]] bool has(CellId id) const {
    return id.value() < present_.size() && present_[id.value()];
  }
  [[nodiscard]] std::size_t size() const { return count_; }

  /// Wipes every reservation (specific and anonymous) in every cell;
  /// policies that recompute their reservations from scratch call this at
  /// the top of each refresh.
  void clear_reservations() {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (!present_[i]) continue;
      cells_[i].set_anonymous_reservation(0.0);
      cells_[i].clear_specific_reservations();
    }
  }

  /// Visits every (CellId, CellBandwidth&) in ascending-id order.
  template <typename Fn>
  void for_each_cell(Fn&& fn) {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (present_[i]) fn(CellId{static_cast<std::uint32_t>(i)}, cells_[i]);
    }
  }

  template <typename Fn>
  void for_each_cell(Fn&& fn) const {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (present_[i]) fn(CellId{static_cast<std::uint32_t>(i)}, cells_[i]);
    }
  }

  /// Estimated heap footprint in bytes: the cell array plus every cell's
  /// per-portable tables.
  [[nodiscard]] std::size_t memory_bytes() const {
    std::size_t total = cells_.capacity() * sizeof(CellBandwidth) +
                        present_.capacity() / 8;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (present_[i]) total += cells_[i].memory_bytes();
    }
    return total;
  }

  // --- checkpoint/restore (ISSUE 4) ---------------------------------------
  // Cells are written in sorted-id order; restore requires the same cell set
  // to already exist (the harness constructor re-adds them from its config)
  // and throws sim::CheckpointError on a mismatch. Telemetry bindings are
  // untouched — instrument values live in the obs registry section.
  void save_state(sim::CheckpointWriter& w) const {
    w.u64(count_);
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (!present_[i]) continue;
      w.u32(static_cast<std::uint32_t>(i));
      cells_[i].save_state(w);
    }
  }

  void restore_state(sim::CheckpointReader& r) {
    if (r.u64() != count_) {
      throw sim::CheckpointError("reservation: checkpoint cell count mismatch");
    }
    for (std::size_t n = count_; n-- > 0;) {
      const CellId id{r.u32()};
      if (!has(id)) {
        throw sim::CheckpointError("reservation: checkpoint names unknown cell");
      }
      cells_[id.value()].restore_state(r);
    }
  }

 private:
  std::vector<CellBandwidth> cells_;  // indexed by CellId::value()
  std::vector<bool> present_;
  std::size_t count_ = 0;
  CellBandwidth::Telemetry telemetry_;
  bool bound_ = false;
};

}  // namespace imrm::reservation
