// Small-buffer-optimized, move-only callable — the event-queue callback type.
//
// std::function heap-allocates once a capture outgrows its (implementation
// defined, typically 16-byte) inline buffer, which puts an allocation on the
// schedule() hot path for almost every simulation callback (they capture a
// `this` pointer plus a packet or a couple of ids). InplaceFunction stores
// captures up to `Capacity` bytes inline and only falls back to the heap for
// oversized or throwing-move callables. Unlike std::function it is move-only,
// so it can also hold move-only captures (e.g. a unique_ptr).
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace imrm::sim {

template <typename Signature, std::size_t Capacity = 48>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() noexcept = default;
  InplaceFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vtable_ = &InlineOps<D>::kTable;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      vtable_ = &HeapOps<D>::kTable;
    }
  }

  InplaceFunction(InplaceFunction&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_) {
      relocate_from(other);
      other.vtable_ = nullptr;
    }
  }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      vtable_ = other.vtable_;
      if (vtable_) {
        relocate_from(other);
        other.vtable_ = nullptr;
      }
    }
    return *this;
  }

  InplaceFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  /// Destroys the current target (if any) and constructs `f` directly in the
  /// inline storage — the zero-copy path EventQueue::schedule uses so a
  /// capture is materialized exactly once, in its final resting place.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  void emplace(F&& f) {
    reset();
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vtable_ = &InlineOps<D>::kTable;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      vtable_ = &HeapOps<D>::kTable;
    }
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  void reset() noexcept {
    if (vtable_) {
      if (vtable_->destroy) vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept { return vtable_ != nullptr; }

  R operator()(Args... args) {
    return vtable_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  // relocate/destroy are null for trivially relocatable/destructible
  // callables; the move path then degrades to a fixed-size memcpy with no
  // indirect call — the common case for sim callbacks (a `this` pointer plus
  // POD ids/packets), and the reason schedule()/pop() stay branch-cheap.
  struct VTable {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* from, void* to) noexcept;  // move-construct + destroy source
    void (*destroy)(void*) noexcept;
  };

  void relocate_from(InplaceFunction& other) noexcept {
    if (vtable_->relocate) {
      vtable_->relocate(other.storage_, storage_);
    } else {
      std::memcpy(storage_, other.storage_, Capacity);
    }
  }

  // Inline storage additionally requires a nothrow move so that relocation
  // (and thus our move constructor) never throws.
  template <typename D>
  static constexpr bool kFitsInline = sizeof(D) <= Capacity &&
                                      alignof(D) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  struct InlineOps {
    static D* self(void* s) noexcept { return std::launder(reinterpret_cast<D*>(s)); }
    static R invoke(void* s, Args&&... args) {
      return (*self(s))(std::forward<Args>(args)...);
    }
    static void relocate(void* from, void* to) noexcept {
      ::new (to) D(std::move(*self(from)));
      self(from)->~D();
    }
    static void destroy(void* s) noexcept { self(s)->~D(); }
    static constexpr bool kTrivial =
        std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>;
    static constexpr VTable kTable{&invoke, kTrivial ? nullptr : &relocate,
                                   std::is_trivially_destructible_v<D> ? nullptr
                                                                       : &destroy};
  };

  template <typename D>
  struct HeapOps {
    static D* self(void* s) noexcept { return *std::launder(reinterpret_cast<D**>(s)); }
    static R invoke(void* s, Args&&... args) {
      return (*self(s))(std::forward<Args>(args)...);
    }
    // Ownership moves with the pointer, so relocation is trivial (null).
    static void destroy(void* s) noexcept { delete self(s); }
    static constexpr VTable kTable{&invoke, nullptr, &destroy};
  };

  alignas(std::max_align_t) std::byte storage_[Capacity];
  const VTable* vtable_ = nullptr;
};

}  // namespace imrm::sim
