// Table 2 admission-control tests: every row of the table (bandwidth, delay,
// jitter, buffer for WFQ and RCSP, packet loss), the destination test, and
// the reverse-pass relaxation, checked against hand-computed values.
#include <gtest/gtest.h>

#include "qos/admission.h"
#include "qos/flow_spec.h"

namespace imrm::qos {
namespace {

QosRequest typical_request() {
  QosRequest r;
  r.bandwidth = {mbps(1.0), mbps(2.0)};
  r.delay_bound = 0.1;
  r.jitter_bound = 0.05;
  r.loss_bound = 0.05;
  r.traffic = {8000.0, 8000.0};  // sigma = L_max = 1000 bytes
  return r;
}

LinkSnapshot wide_link() {
  return LinkSnapshot{mbps(10.0), 0.0, 0.0, 1e6, 0.0};
}

TEST(FlowSpec, BandwidthRangeValidity) {
  EXPECT_TRUE((BandwidthRange{kbps(16), kbps(64)}.valid()));
  EXPECT_TRUE((BandwidthRange{kbps(16), kbps(16)}.valid()));
  EXPECT_FALSE((BandwidthRange{kbps(64), kbps(16)}.valid()));
  EXPECT_FALSE((BandwidthRange{0.0, kbps(16)}.valid()));
}

TEST(FlowSpec, HeadroomAndContains) {
  const BandwidthRange r{kbps(16), kbps(64)};
  EXPECT_DOUBLE_EQ(r.headroom(), kbps(48));
  EXPECT_TRUE(r.contains(kbps(32)));
  EXPECT_FALSE(r.contains(kbps(65)));
}

TEST(FlowSpec, UnitHelpers) {
  EXPECT_DOUBLE_EQ(kbps(16), 16000.0);
  EXPECT_DOUBLE_EQ(mbps(1.6), 1.6e6);
  EXPECT_DOUBLE_EQ(bytes(1000), 8000.0);
}

TEST(Admission, HopDelayFormula) {
  // d_{l,j} = L_max/b_min + L_max/C_l = 8000/1e6 + 8000/10e6 = 0.0088
  const auto r = typical_request();
  EXPECT_NEAR(AdmissionPipeline::hop_delay(r, wide_link()), 0.0088, 1e-12);
}

TEST(Admission, E2EMinDelayFormula) {
  // (sigma + n L)/b_min + sum L/C = 24000/1e6 + 2*0.0008 = 0.0256
  const auto r = typical_request();
  const std::vector<LinkSnapshot> route{wide_link(), wide_link()};
  EXPECT_NEAR(AdmissionPipeline::e2e_min_delay(r, route), 0.0256, 1e-12);
}

TEST(Admission, AcceptsFeasibleRequestWfq) {
  const AdmissionPipeline p(Scheduler::kWfq, MobilityClass::kMobile);
  const auto result = p.admit(typical_request(), {wide_link(), wide_link()});
  ASSERT_TRUE(result.accepted);
  EXPECT_EQ(result.reason, RejectReason::kNone);
  EXPECT_NEAR(result.e2e_min_delay, 0.0256, 1e-12);
  EXPECT_NEAR(result.e2e_jitter, 0.024, 1e-12);
  EXPECT_DOUBLE_EQ(result.e2e_loss, 0.0);
}

TEST(Admission, MobileAllocationPinnedAtBMin) {
  const AdmissionPipeline p(Scheduler::kWfq, MobilityClass::kMobile);
  const auto result = p.admit(typical_request(), {wide_link()}, /*b_stamp=*/mbps(5));
  ASSERT_TRUE(result.accepted);
  EXPECT_DOUBLE_EQ(result.allocated_bandwidth, mbps(1.0));
}

TEST(Admission, StaticAllocationGetsStampedExcess) {
  const AdmissionPipeline p(Scheduler::kWfq, MobilityClass::kStatic);
  const auto result = p.admit(typical_request(), {wide_link()}, /*b_stamp=*/kbps(500));
  ASSERT_TRUE(result.accepted);
  EXPECT_DOUBLE_EQ(result.allocated_bandwidth, mbps(1.0) + kbps(500));
}

TEST(Admission, StaticAllocationClampedToBMax) {
  const AdmissionPipeline p(Scheduler::kWfq, MobilityClass::kStatic);
  const auto result = p.admit(typical_request(), {wide_link()}, /*b_stamp=*/mbps(9));
  ASSERT_TRUE(result.accepted);
  EXPECT_DOUBLE_EQ(result.allocated_bandwidth, mbps(2.0));  // b_max
}

TEST(Admission, RejectsWhenBandwidthShort) {
  LinkSnapshot tight = wide_link();
  tight.sum_b_min = mbps(9.5);  // only 0.5 Mbps admissible < b_min = 1 Mbps
  const AdmissionPipeline p(Scheduler::kWfq, MobilityClass::kMobile);
  const auto result = p.admit(typical_request(), {wide_link(), tight});
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, RejectReason::kBandwidth);
  EXPECT_EQ(result.failed_hop, 2u);
}

TEST(Admission, AdvanceReservationBlocksNewConnections) {
  LinkSnapshot reserved = wide_link();
  reserved.advance_reserved = mbps(9.5);
  const AdmissionPipeline p(Scheduler::kWfq, MobilityClass::kMobile);
  const auto result = p.admit(typical_request(), {reserved});
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, RejectReason::kBandwidth);
}

TEST(Admission, HandoffMayConsumeAdvanceReservation) {
  LinkSnapshot reserved = wide_link();
  reserved.advance_reserved = mbps(9.5);
  const AdmissionPipeline p(Scheduler::kWfq, MobilityClass::kMobile);
  const auto result = p.admit(typical_request(), {reserved}, 0.0, ConnectionKind::kHandoff);
  // The handoff consumes up to b_min of the reservation made for it:
  // admissible becomes 10 - (9.5 - 1.0) = 1.5 >= 1.0.
  EXPECT_TRUE(result.accepted);
}

TEST(Admission, RejectsOnPerHopJitter) {
  // Jitter at hop l: (sigma + l L)/b_min. With 4 hops the last hop gives
  // (8000 + 4*8000)/1e6 = 0.04 > 0.03.
  auto r = typical_request();
  r.jitter_bound = 0.03;
  const std::vector<LinkSnapshot> route(4, wide_link());
  const AdmissionPipeline p(Scheduler::kWfq, MobilityClass::kMobile);
  const auto result = p.admit(r, route);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, RejectReason::kJitter);
  EXPECT_EQ(result.failed_hop, 3u);  // (8000+3*8000)/1e6 = 0.032 > 0.03
}

TEST(Admission, RejectsOnDelayAtDestination) {
  auto r = typical_request();
  r.delay_bound = 0.02;  // below d_min = 0.0256
  r.jitter_bound = 1.0;  // keep jitter out of the way
  const AdmissionPipeline p(Scheduler::kWfq, MobilityClass::kMobile);
  const auto result = p.admit(r, {wide_link(), wide_link()});
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, RejectReason::kDelay);
  EXPECT_EQ(result.failed_hop, 0u);  // destination test
}

TEST(Admission, RejectsOnAccumulatedLoss) {
  auto route = std::vector<LinkSnapshot>{wide_link(), wide_link()};
  route[0].error_prob = 0.01;
  route[1].error_prob = 0.02;
  auto r = typical_request();
  r.loss_bound = 0.02;  // e2e loss = 1 - 0.99*0.98 = 0.0298 > 0.02
  const AdmissionPipeline p(Scheduler::kWfq, MobilityClass::kMobile);
  const auto result = p.admit(r, route);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, RejectReason::kLoss);
}

TEST(Admission, AcceptsWithTolerableLoss) {
  auto route = std::vector<LinkSnapshot>{wide_link(), wide_link()};
  route[0].error_prob = 0.01;
  route[1].error_prob = 0.02;
  const AdmissionPipeline p(Scheduler::kWfq, MobilityClass::kMobile);
  const auto result = p.admit(typical_request(), route);  // bound 0.05
  ASSERT_TRUE(result.accepted);
  EXPECT_NEAR(result.e2e_loss, 0.0298, 1e-12);
}

TEST(Admission, WfqBufferGrowsLinearlyWithHops) {
  const AdmissionPipeline p(Scheduler::kWfq, MobilityClass::kMobile);
  const auto r = typical_request();
  EXPECT_DOUBLE_EQ(p.forward_buffer(r, 1, 0.0, 0.0088), 16000.0);  // sigma + L
  EXPECT_DOUBLE_EQ(p.forward_buffer(r, 2, 0.0088, 0.0088), 24000.0);
  EXPECT_DOUBLE_EQ(p.forward_buffer(r, 3, 0.0088, 0.0088), 32000.0);
}

TEST(Admission, RcspBufferUsesDelayBounds) {
  const AdmissionPipeline p(Scheduler::kRcsp, MobilityClass::kMobile);
  const auto r = typical_request();
  // hop 1: sigma + L + b_max * d_1 = 16000 + 2e6*0.0088 = 33600
  EXPECT_NEAR(p.forward_buffer(r, 1, 0.0, 0.0088), 33600.0, 1e-9);
  // hop 2: sigma + L + b_max * (d_1 + d_2) = 16000 + 2e6*0.0176 = 51200
  EXPECT_NEAR(p.forward_buffer(r, 2, 0.0088, 0.0088), 51200.0, 1e-9);
}

TEST(Admission, RejectsOnBufferRcsp) {
  auto route = std::vector<LinkSnapshot>{wide_link(), wide_link()};
  route[1].buffer_capacity = 40000.0;  // < 51200 required at hop 2
  const AdmissionPipeline p(Scheduler::kRcsp, MobilityClass::kMobile);
  const auto result = p.admit(typical_request(), route);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, RejectReason::kBuffer);
  EXPECT_EQ(result.failed_hop, 2u);
}

TEST(Admission, ReversePassRelaxedDelaysSumToBound) {
  // Uniform relaxation must spend exactly the slack: sum of d'_l equals
  // d_min's per-hop parts plus the distributed slack. With the numbers here,
  // sum d' = d (0.1) because slack includes the sigma/(n b_min) term that
  // converts the destination burst allowance into per-hop budget.
  const AdmissionPipeline p(Scheduler::kWfq, MobilityClass::kMobile);
  const auto result = p.admit(typical_request(), {wide_link(), wide_link()});
  ASSERT_TRUE(result.accepted);
  ASSERT_EQ(result.hops.size(), 2u);
  const double sum = result.hops[0].local_delay + result.hops[1].local_delay;
  EXPECT_NEAR(sum, 0.1, 1e-12);
  EXPECT_NEAR(result.hops[0].local_delay, 0.05, 1e-12);
}

TEST(Admission, ReverseBufferWfqMatchesForward) {
  const AdmissionPipeline p(Scheduler::kWfq, MobilityClass::kMobile);
  const auto result = p.admit(typical_request(), {wide_link(), wide_link()});
  ASSERT_TRUE(result.accepted);
  EXPECT_DOUBLE_EQ(result.hops[0].buffer, 16000.0);
  EXPECT_DOUBLE_EQ(result.hops[1].buffer, 24000.0);
}

TEST(Admission, ReverseBufferRcspUsesAllocatedRate) {
  const AdmissionPipeline p(Scheduler::kRcsp, MobilityClass::kMobile);
  const auto result = p.admit(typical_request(), {wide_link(), wide_link()});
  ASSERT_TRUE(result.accepted);
  // b_j = b_min for mobile; hop 1: sigma + L + b_j d'_1 = 16000 + 1e6*0.05
  EXPECT_NEAR(result.hops[0].buffer, 16000.0 + 1e6 * 0.05, 1e-6);
  // hop 2 (as printed in Table 2): sigma + b_j (d'_1 + d_2)
  EXPECT_NEAR(result.hops[1].buffer, 8000.0 + 1e6 * (0.05 + 0.0088), 1e-6);
}

TEST(Admission, RejectsInvalidRequest) {
  QosRequest bad;  // all zero
  const AdmissionPipeline p(Scheduler::kWfq, MobilityClass::kMobile);
  const auto result = p.admit(bad, {wide_link()});
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, RejectReason::kInvalidRequest);
}

TEST(Admission, RejectsEmptyRoute) {
  const AdmissionPipeline p(Scheduler::kWfq, MobilityClass::kMobile);
  const auto result = p.admit(typical_request(), {});
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, RejectReason::kInvalidRequest);
}

TEST(Admission, RejectReasonNames) {
  EXPECT_EQ(to_string(RejectReason::kBandwidth), "bandwidth");
  EXPECT_EQ(to_string(RejectReason::kNone), "none");
  EXPECT_EQ(to_string(RejectReason::kLoss), "loss");
}

// Property sweep: admission must be monotone in link capacity — if a request
// is admitted on a route, it stays admitted when every link gets faster.
class AdmissionMonotonicity : public ::testing::TestWithParam<Scheduler> {};

TEST_P(AdmissionMonotonicity, FasterLinksNeverHurt) {
  const AdmissionPipeline p(GetParam(), MobilityClass::kMobile);
  auto r = typical_request();
  r.jitter_bound = 1.0;
  r.delay_bound = 1.0;
  for (double cap = 2.0; cap <= 64.0; cap *= 2.0) {
    std::vector<LinkSnapshot> route(3, LinkSnapshot{mbps(cap), 0.0, 0.0, 1e9, 0.0});
    const auto slow = p.admit(r, route);
    for (auto& l : route) l.capacity *= 2.0;
    const auto fast = p.admit(r, route);
    if (slow.accepted) {
      EXPECT_TRUE(fast.accepted) << "cap=" << cap;
    }
    if (slow.accepted && fast.accepted) {
      EXPECT_LE(fast.e2e_min_delay, slow.e2e_min_delay);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothSchedulers, AdmissionMonotonicity,
                         ::testing::Values(Scheduler::kWfq, Scheduler::kRcsp));

// Property: more hops never decrease the end-to-end minimum delay or jitter.
class AdmissionHopCount : public ::testing::TestWithParam<int> {};

TEST_P(AdmissionHopCount, DelayAndJitterMonotoneInHops) {
  const auto r = typical_request();
  const int hops = GetParam();
  std::vector<LinkSnapshot> shorter(std::size_t(hops), wide_link());
  std::vector<LinkSnapshot> longer(std::size_t(hops) + 1, wide_link());
  EXPECT_LT(AdmissionPipeline::e2e_min_delay(r, shorter),
            AdmissionPipeline::e2e_min_delay(r, longer));
}

INSTANTIATE_TEST_SUITE_P(HopSweep, AdmissionHopCount, ::testing::Range(1, 8));

}  // namespace
}  // namespace imrm::qos
