file(REMOVE_RECURSE
  "CMakeFiles/maxmin_bridge_test.dir/maxmin_bridge_test.cc.o"
  "CMakeFiles/maxmin_bridge_test.dir/maxmin_bridge_test.cc.o.d"
  "maxmin_bridge_test"
  "maxmin_bridge_test.pdb"
  "maxmin_bridge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxmin_bridge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
