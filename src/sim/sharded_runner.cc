#include "sim/sharded_runner.h"

#include <algorithm>
#include <utility>

namespace imrm::sim {

ShardedRunner::ShardedRunner(const Config& config) : config_(config) {
  assert(config_.domains >= 1 && "ShardedRunner needs at least one domain");
  assert(config_.window > Duration::zero() && "window must be positive");
  sims_.reserve(config_.domains);
  transports_.reserve(config_.domains);
  for (std::size_t d = 0; d < config_.domains; ++d) {
    sims_.push_back(std::make_unique<Simulator>());
    transports_.push_back(std::make_unique<BoundaryTransport>(*this, d));
  }
  outboxes_.resize(config_.domains);
  inject_.resize(config_.domains);

  std::size_t workers = config_.workers;
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1 : hw;
  }
  worker_count_ = std::min(workers, config_.domains);
  if (worker_count_ > 1) {
    pool_.reserve(worker_count_);
    for (std::size_t w = 0; w < worker_count_; ++w) {
      pool_.emplace_back([this, w] { worker_loop(w); });
    }
  }
}

ShardedRunner::~ShardedRunner() {
  if (!pool_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    round_cv_.notify_all();
    for (std::thread& t : pool_) t.join();
  }
}

void ShardedRunner::post(std::size_t from, std::size_t to, Duration latency,
                         EventQueue::Callback deliver) {
  assert(from < sims_.size() && to < sims_.size());
  assert(latency >= config_.window &&
         "cross-domain latency below the conservative window would let a "
         "message land inside an already-executed round");
  outboxes_[from].push_back(
      Envelope{sims_[from]->now() + latency, to, std::move(deliver)});
}

void ShardedRunner::arm_profiling() {
  profile_active_ = config_.profiler != nullptr && config_.profiler->enabled();
  if (!profile_active_) return;
  if (wall_epoch_ns_ == 0) wall_epoch_ns_ = obs::Profiler::now_ns();
  if (ph_exchange_ == obs::kInvalidPhase) {
    ph_exchange_ = config_.profiler->intern("shard.exchange");
    ph_window_ = config_.profiler->intern("shard.window");
  }
  if (lanes_.empty()) {
    lanes_.resize(worker_count_);
    busy_scratch_.assign(worker_count_, BusySlot{});
  }
  if (config_.tracer != nullptr && config_.tracer->enabled() && !lanes_declared_) {
    lanes_declared_ = true;
    config_.tracer->declare_process(kShardLanePid, "imrm-shard-lanes (wall clock)");
    tr_busy_ = config_.tracer->intern("shard.busy", "wall");
    tr_barrier_ = config_.tracer->intern("shard.barrier", "wall");
  }
}

std::uint64_t ShardedRunner::run_until(SimTime horizon) {
  const std::uint64_t before = events_fired();
  // Latched once per call, before any round dispatch: workers pick it up
  // through the round barrier. Clock reads below happen only when active.
  arm_profiling();
  // Rounds run back to back, so the previous round's end timestamp doubles
  // as the next round's exchange start — one clock read per round, not two.
  std::uint64_t t0 = profile_active_ ? obs::Profiler::now_ns() : 0;
  for (;;) {
    const std::uint64_t msgs_before = stats_.boundary_messages;
    // Inject messages posted during the previous round (or during setup, on
    // the first iteration) before looking at queue heads: an injected
    // message may well be the earliest pending event.
    exchange();
    SimTime min_next = SimTime::infinity();
    for (const auto& sim : sims_) {
      min_next = std::min(min_next, sim->next_event_time());
    }
    if (min_next == SimTime::infinity() || min_next > horizon) break;
    // The earliest event anywhere is at min_next, so every event fired this
    // round has time >= min_next and every message it posts delivers at
    // >= min_next + window — strictly after the round. Idle stretches skip
    // ahead in one hop. The target depends only on event times and the
    // horizon, never on the worker count, so window boundaries are
    // K-invariant.
    SimTime target = min_next + config_.window;
    if (target > horizon) target = horizon;
    const std::uint64_t t1 = profile_active_ ? obs::Profiler::now_ns() : 0;
    execute_window(target);
    ++stats_.windows;
    if (profile_active_) {
      const std::uint64_t t2 = obs::Profiler::now_ns();
      account_round(t0, t1, t2, stats_.boundary_messages - msgs_before);
      t0 = t2;
    }
    if (config_.progress != nullptr && config_.progress->armed()) {
      const double h = horizon.to_seconds();
      const double frac =
          h > 0.0 ? std::min(1.0, target.to_seconds() / h) : 1.0;
      config_.progress->maybe_emit(frac, events_fired(), last_straggler_);
    }
  }
  return events_fired() - before;
}

void ShardedRunner::account_round(std::uint64_t exchange_start_ns,
                                  std::uint64_t window_start_ns,
                                  std::uint64_t window_end_ns,
                                  std::uint64_t injected) {
  // Idle: the inter-round stretch (boundary exchange + next-window scan)
  // during which no lane executes events. Charged to every lane — all of
  // them are stalled behind the coordinator.
  const std::uint64_t idle = window_start_ns - exchange_start_ns;
  const std::uint64_t window_wall = window_end_ns - window_start_ns;
  window_hist_.record(double(window_wall));
  messages_hist_.record(double(injected));
  std::size_t straggler = 0;
  for (std::size_t w = 0; w < lanes_.size(); ++w) {
    // A worker's measured span nests inside the coordinator's; clamp anyway
    // so barrier_wait can never underflow on clock jitter.
    const std::uint64_t busy = std::min(busy_scratch_[w].ns, window_wall);
    lanes_[w].busy_ns += busy;
    lanes_[w].barrier_wait_ns += window_wall - busy;
    lanes_[w].idle_ns += idle;
    if (busy_scratch_[w].ns > busy_scratch_[straggler].ns) straggler = w;
  }
  ++lanes_[straggler].straggler_windows;
  ++profiled_windows_;
  last_straggler_ = int(straggler);
  config_.profiler->record(ph_exchange_, idle);
  config_.profiler->record(ph_window_, window_wall);
  if (lanes_declared_ && config_.tracer->enabled()) {
    const double exchange_us = double(exchange_start_ns - wall_epoch_ns_) / 1000.0;
    const double window_us = double(window_start_ns - wall_epoch_ns_) / 1000.0;
    config_.tracer->complete_wall(exchange_us, double(idle) / 1000.0, tr_barrier_,
                                  kShardLanePid, std::uint32_t(lanes_.size()),
                                  double(injected));
    for (std::size_t w = 0; w < lanes_.size(); ++w) {
      config_.tracer->complete_wall(window_us, double(busy_scratch_[w].ns) / 1000.0,
                                    tr_busy_, kShardLanePid, std::uint32_t(w),
                                    w == straggler ? 1.0 : 0.0);
    }
  }
}

void ShardedRunner::export_profile(obs::ProfileSnapshot& out) const {
  if (lanes_.empty()) return;  // never ran with profiling enabled
  const auto sample_of = [](const char* name, const obs::Histogram& h) {
    return obs::HistogramSample{name,    h.spec(), h.count(),  h.underflow(),
                                h.overflow(), h.sum(),  h.min(), h.max(),
                                h.buckets()};
  };
  out.shards = lanes_;
  out.barriers = profiled_windows_;
  out.boundary_messages = stats_.boundary_messages;
  out.boundary_bytes = stats_.boundary_messages * sizeof(Envelope);
  out.window_ns = sample_of("window_ns", window_hist_);
  out.messages_per_barrier = sample_of("messages_per_barrier", messages_hist_);
}

std::uint64_t ShardedRunner::events_fired() const {
  std::uint64_t total = 0;
  for (const auto& sim : sims_) total += sim->events_fired();
  return total;
}

void ShardedRunner::execute_window(SimTime target) {
  if (worker_count_ <= 1) {
    run_domains(0, target);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    round_target_ = target;
    running_ = worker_count_;
    ++round_;
  }
  round_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return running_ == 0; });
}

void ShardedRunner::run_domains(std::size_t worker, SimTime target) {
  // Contiguous block assignment keeps each worker's domains adjacent in
  // memory; worker_count_ == 1 degenerates to "worker 0 owns everything".
  const std::size_t d0 = worker * sims_.size() / worker_count_;
  const std::size_t d1 = (worker + 1) * sims_.size() / worker_count_;
  if (profile_active_) {
    const std::uint64_t t0 = obs::Profiler::now_ns();
    for (std::size_t d = d0; d < d1; ++d) sims_[d]->run_until(target);
    busy_scratch_[worker].ns = obs::Profiler::now_ns() - t0;
    return;
  }
  for (std::size_t d = d0; d < d1; ++d) sims_[d]->run_until(target);
}

void ShardedRunner::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    SimTime target;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      round_cv_.wait(lock, [&] { return shutdown_ || round_ != seen; });
      if (shutdown_) return;
      seen = round_;
      target = round_target_;
    }
    run_domains(worker, target);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--running_ == 0) done_cv_.notify_one();
    }
  }
}

void ShardedRunner::exchange() {
  // Gather per destination. Visiting source outboxes in domain order means
  // each destination's list starts out ordered by (source domain, posting
  // serial); the stable sort by delivery time then yields the canonical
  // (deliver time, source domain, serial) order. Every component is a
  // partition-invariant property of the simulation, so the injection
  // sequence — and with it the destination queue's FIFO tie-breaking — is
  // identical for any worker count.
  bool any = false;
  for (std::size_t src = 0; src < outboxes_.size(); ++src) {
    for (Envelope& e : outboxes_[src]) {
      inject_[e.to].push_back(std::move(e));
      any = true;
    }
    outboxes_[src].clear();
  }
  if (!any) return;
  for (std::size_t dest = 0; dest < inject_.size(); ++dest) {
    auto& pending = inject_[dest];
    if (pending.empty()) continue;
    std::stable_sort(pending.begin(), pending.end(),
                     [](const Envelope& a, const Envelope& b) {
                       return a.deliver_time < b.deliver_time;
                     });
    for (Envelope& e : pending) {
      sims_[dest]->at(e.deliver_time, std::move(e.callback));
      ++stats_.boundary_messages;
    }
    pending.clear();
  }
}

}  // namespace imrm::sim
