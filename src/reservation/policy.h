// Advance reservation policies (Sections 2.2, 6.1-6.4).
//
// Every policy recomputes the reservation picture of the whole directory on
// refresh(): which bandwidth is held for which predicted handoff. The
// policies compared in the paper's Figure 5 experiment:
//
//  - BruteForcePolicy: reserve each mobile portable's bandwidth in ALL
//    neighbors of its current cell (the conservative scheme of [7]).
//  - AggregatePolicy: reserve, per cell, the expected incoming handoff
//    bandwidth computed from the neighboring cells' profile handoff
//    distributions (anonymous reservation).
//  - MeetingRoomPolicy: the booking-calendar scheme of Section 6.2.1 with
//    the paper's windows (Delta_s = 10 min before start, 5-min release
//    timer; Delta_a = 5 min before end, 15-min release timer in neighbors).
//  - StaticPolicy: a fixed guard fraction of capacity per cell — the
//    "static reservation algorithm" the paper says its default algorithm
//    outperforms.
//  - NoReservationPolicy: lower-bound reference.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "mobility/floorplan.h"
#include "mobility/manager.h"
#include "profiles/profile_server.h"
#include "reservation/directory.h"
#include "sim/checkpoint.h"
#include "sim/time.h"

namespace imrm::reservation {

/// Environment a policy reads: the cell map, the accounts it manipulates,
/// profiles for aggregate statistics, and accessors into the live workload.
struct PolicyEnv {
  const mobility::CellMap* map = nullptr;
  ReservationDirectory* directory = nullptr;
  const profiles::ProfileServer* profiles = nullptr;
  /// b_min of the portable's connection (0 when it has none).
  std::function<qos::BitsPerSecond(PortableId)> demand;
  /// Current static/mobile classification of the portable.
  std::function<qos::MobilityClass(PortableId)> classify;
  /// Portables currently in a cell.
  std::function<std::vector<PortableId>(CellId)> portables_in;
  /// The portable's previous cell (for profile-keyed prediction); may be
  /// left unset by harnesses that do not track it.
  std::function<CellId(PortableId)> previous_cell;
};

class AdvanceReservationPolicy {
 public:
  explicit AdvanceReservationPolicy(PolicyEnv env) : env_(std::move(env)) {}
  virtual ~AdvanceReservationPolicy() = default;

  AdvanceReservationPolicy(const AdvanceReservationPolicy&) = delete;
  AdvanceReservationPolicy& operator=(const AdvanceReservationPolicy&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Recomputes all reservations from the current workload state.
  virtual void refresh(sim::SimTime now) = 0;

  /// Observes a handoff (meeting-room policy counts arrivals/departures).
  virtual void on_handoff(const mobility::HandoffEvent& event) { (void)event; }

  /// A standalone policy owns the whole reservation directory and clears it
  /// at the top of each refresh. Policies hosted by the PolicyDispatcher are
  /// set non-standalone: the dispatcher clears once and the hosted policies
  /// contribute additively.
  void set_standalone(bool standalone) { standalone_ = standalone; }

  // --- checkpoint/restore (ISSUE 4) ---------------------------------------
  // Policies whose refresh() recomputes everything from the live workload
  // (none/static/brute-force/aggregate) carry no soft state and inherit
  // these no-ops; stateful policies (meeting-room arrival counters, lounge
  // slot machinery, dispatcher bookkeeping) override both.
  virtual void save_state(sim::CheckpointWriter& w) const { (void)w; }
  virtual void restore_state(sim::CheckpointReader& r) { (void)r; }

 protected:
  PolicyEnv env_;
  bool standalone_ = true;
};

class NoReservationPolicy final : public AdvanceReservationPolicy {
 public:
  using AdvanceReservationPolicy::AdvanceReservationPolicy;
  [[nodiscard]] std::string name() const override { return "none"; }
  void refresh(sim::SimTime) override { env_.directory->clear_reservations(); }
};

class BruteForcePolicy final : public AdvanceReservationPolicy {
 public:
  using AdvanceReservationPolicy::AdvanceReservationPolicy;
  [[nodiscard]] std::string name() const override { return "brute-force"; }
  void refresh(sim::SimTime now) override;
};

class AggregatePolicy final : public AdvanceReservationPolicy {
 public:
  using AdvanceReservationPolicy::AdvanceReservationPolicy;
  [[nodiscard]] std::string name() const override { return "aggregate"; }
  void refresh(sim::SimTime now) override;
};

class StaticPolicy final : public AdvanceReservationPolicy {
 public:
  StaticPolicy(PolicyEnv env, double guard_fraction)
      : AdvanceReservationPolicy(std::move(env)), guard_fraction_(guard_fraction) {}
  [[nodiscard]] std::string name() const override { return "static"; }
  void refresh(sim::SimTime) override;

 private:
  double guard_fraction_;
};

class MeetingRoomPolicy final : public AdvanceReservationPolicy {
 public:
  struct Params {
    sim::Duration before_start = sim::Duration::minutes(10);   // Delta_s
    sim::Duration start_release = sim::Duration::minutes(5);   // timer after T_s
    sim::Duration before_end = sim::Duration::minutes(5);      // Delta_a
    sim::Duration end_release = sim::Duration::minutes(15);    // timer after T_a
    qos::BitsPerSecond per_user_bandwidth = 0.0;  // expected b per attendee
  };

  MeetingRoomPolicy(PolicyEnv env, CellId room, profiles::BookingCalendar calendar,
                    Params params);

  [[nodiscard]] std::string name() const override { return "meeting-room"; }
  void refresh(sim::SimTime now) override;
  void on_handoff(const mobility::HandoffEvent& event) override;

  [[nodiscard]] std::size_t arrived() const { return arrived_; }
  [[nodiscard]] std::size_t left() const { return left_; }

  void save_state(sim::CheckpointWriter& w) const override {
    w.u64(arrived_);
    w.u64(left_);
    w.u64(meeting_epoch_);
  }
  void restore_state(sim::CheckpointReader& r) override {
    arrived_ = std::size_t(r.u64());
    left_ = std::size_t(r.u64());
    meeting_epoch_ = std::size_t(r.u64());
  }

 private:
  CellId room_;
  profiles::BookingCalendar calendar_;
  Params params_;
  std::size_t arrived_ = 0;  // N_arrived(t) for the current meeting
  std::size_t left_ = 0;     // N_left(t)
  std::size_t meeting_epoch_ = std::size_t(-1);  // which meeting the counters track
};

}  // namespace imrm::reservation
