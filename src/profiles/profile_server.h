// Zone profile server (Section 3.4.3).
//
// One server per zone. It owns the cell profiles of every cell in the zone
// and the portable profiles of every portable currently in the zone, and is
// updated on each handoff. Base stations cache their cell profile and the
// portable profiles of portables in their cell: during a handoff the old
// base station sends one update message to the server and passes the cached
// portable profile to the next cell; when a portable turns static, its
// profile is refreshed from the server. The cache traffic is tracked so the
// signalling cost can be reported.
//
// Profiles live in dense vectors indexed by PortableId/CellId value: both id
// spaces are assigned sequentially from zero, so the lookup that the
// predictor performs on every handoff is one indexed load (no hashing, no
// tree walk), and ascending-id iteration for serialization needs no sort.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mobility/manager.h"
#include "profiles/booking.h"
#include "profiles/profile_source.h"
#include "profiles/cell_profile.h"
#include "profiles/portable_profile.h"

namespace imrm::profiles {

struct CacheTraffic {
  std::uint64_t handoff_updates = 0;    // BS -> server, one per handoff
  std::uint64_t profile_transfers = 0;  // BS -> BS cached-profile forwarding
  std::uint64_t refreshes = 0;          // server -> BS on static transition
};

class ProfileServer final : public ProfileSource {
 public:
  struct Config {
    std::size_t portable_window = 16;  // N_pP
    std::size_t cell_window = 128;     // N_pC
  };

  explicit ProfileServer(net::ZoneId zone) : zone_(zone) {}
  ProfileServer(net::ZoneId zone, Config config) : zone_(zone), config_(config) {}

  /// Records one handoff: the portable moved from `event.from` to
  /// `event.to`, having previously been in `event.prev_of_from`. Updates the
  /// portable profile (keyed by the pre-move state) and the cell profile of
  /// the cell being left.
  void record_handoff(const mobility::HandoffEvent& event);

  /// Convenience overload.
  void record_handoff(net::PortableId portable, CellId prev, CellId from, CellId to);

  [[nodiscard]] const PortableProfile* portable_profile(net::PortableId id) const override;
  [[nodiscard]] const CellProfile* cell_profile(CellId id) const override;
  [[nodiscard]] PortableProfile& portable_profile_mut(net::PortableId id);
  [[nodiscard]] CellProfile& cell_profile_mut(CellId id);

  /// Booking calendar for a meeting-room cell.
  [[nodiscard]] BookingCalendar& calendar(CellId id);
  [[nodiscard]] const BookingCalendar* calendar_if(CellId id) const;

  /// Models the base station refreshing a portable profile once the
  /// portable turns static (counts the message; data is shared state here).
  void refresh_on_static(net::PortableId id);

  /// Zone migration support: removes and returns the portable's profile so
  /// the next zone's server can adopt it. Returns nullopt if unknown.
  std::optional<PortableProfile> extract_portable(net::PortableId id);
  void adopt_portable(PortableProfile profile);

  [[nodiscard]] const CacheTraffic& traffic() const { return traffic_; }
  [[nodiscard]] net::ZoneId zone() const { return zone_; }

  /// Estimated heap footprint of the profile store in bytes.
  [[nodiscard]] std::size_t memory_bytes() const;

  // --- checkpoint/restore (ISSUE 4) ---------------------------------------
  // Serializes portable/cell profile histories and the cache-traffic
  // counters in ascending-id order (the dense layout's natural iteration),
  // matching the sorted order the pre-migration format used. Booking
  // calendars are NOT saved: they are configuration (booked by the harness
  // constructor), not soft state.
  void save_state(sim::CheckpointWriter& w) const;
  void restore_state(sim::CheckpointReader& r);

 private:
  net::ZoneId zone_;
  Config config_{};
  // Dense id-indexed slots; disengaged = not (or no longer) in this zone.
  std::vector<std::optional<PortableProfile>> portables_;
  std::vector<std::optional<CellProfile>> cells_;
  std::vector<std::optional<BookingCalendar>> calendars_;
  CacheTraffic traffic_;
};

}  // namespace imrm::profiles
