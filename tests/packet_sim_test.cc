// Packet-level validation of the Table 2 delay bounds: token-bucket sources
// through Virtual Clock links must never exceed the analytic worst case,
// even under adversarial bursts and cross traffic.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "qos/packet_sim.h"

namespace imrm::qos {
namespace {

using sim::Duration;
using sim::SimTime;

struct SinkAdapter {
  DelaySink* sink;
  sim::Simulator* simulator;
  void operator()(Packet p) const { (*sink)(p, simulator->now()); }
};

TEST(PacketSim, TokenBucketRespectsEnvelope) {
  sim::Simulator simulator;
  std::vector<double> times;
  TokenBucketSource::Config config;
  config.sigma = 4 * 8000.0;
  config.rho = kbps(64);
  config.packet_size = 8000.0;
  TokenBucketSource source(simulator, config, sim::Rng(1),
                           [&](Packet) { times.push_back(simulator.now().to_seconds()); });
  source.start(SimTime::seconds(30));
  simulator.run();
  ASSERT_GT(times.size(), 10u);
  // Envelope check: cumulative bits by time t never exceed sigma + rho * t.
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double bits = double(i + 1) * config.packet_size;
    EXPECT_LE(bits, config.sigma + config.rho * times[i] + 1e-6) << i;
  }
}

TEST(PacketSim, GreedySourceDumpsBucketAtStart) {
  sim::Simulator simulator;
  int at_time_zero = 0;
  TokenBucketSource::Config config;
  config.sigma = 3 * 8000.0;
  config.rho = kbps(64);
  config.packet_size = 8000.0;
  TokenBucketSource source(simulator, config, sim::Rng(1), [&](Packet) {
    if (simulator.now() == SimTime::zero()) ++at_time_zero;
  });
  source.start(SimTime::seconds(5));
  simulator.run();
  EXPECT_EQ(at_time_zero, 3);  // the whole bucket, immediately
}

TEST(PacketSim, LinkServesInStampOrder) {
  sim::Simulator simulator;
  std::vector<FlowId> order;
  ScheduledLink link(simulator, mbps(1.0),
                     [&](Packet p) { order.push_back(p.flow); });
  link.add_flow(1, kbps(100));
  link.add_flow(2, kbps(900));

  // Two packets of each flow arrive back to back at t=0. Flow 2's larger
  // reservation gives it earlier stamps for the second round.
  for (int round = 0; round < 2; ++round) {
    for (FlowId f : {FlowId{1}, FlowId{2}}) {
      Packet p;
      p.flow = f;
      p.size = 8000.0;
      p.created = simulator.now();
      link.enqueue(p);
    }
  }
  simulator.run();
  // Stamps: flow1: 0.08, 0.16; flow2: 0.0089, 0.0178. First packet grabbed
  // the server (FIFO start) but after that flow 2 jumps ahead.
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 1u);
}

/// Worst-case single-hop delay: greedy burst into a shared link.
TEST(PacketSim, SingleHopDelayBoundHolds) {
  sim::Simulator simulator;
  DelaySink sink;
  ScheduledLink link(simulator, mbps(1.6),
                     SinkAdapter{&sink, &simulator});

  // Three flows with reservations summing to capacity; all greedy.
  struct Spec {
    FlowId flow;
    Bits sigma;
    BitsPerSecond rho;
  };
  const std::vector<Spec> specs{{1, 32000.0, kbps(800)},
                                {2, 16000.0, kbps(400)},
                                {3, 16000.0, kbps(400)}};
  std::vector<std::unique_ptr<TokenBucketSource>> sources;
  for (const Spec& s : specs) {
    link.add_flow(s.flow, s.rho);
    TokenBucketSource::Config config;
    config.flow = s.flow;
    config.sigma = s.sigma;
    config.rho = s.rho;
    config.packet_size = 8000.0;
    sources.push_back(std::make_unique<TokenBucketSource>(
        simulator, config, sim::Rng(s.flow), [&](Packet p) { link.enqueue(p); }));
    sources.back()->start(SimTime::seconds(60));
  }
  simulator.run();

  for (const Spec& s : specs) {
    ASSERT_TRUE(sink.has(s.flow));
    // D <= (sigma + L)/rho + L/C (the PGPS/Virtual Clock bound).
    const double bound = (s.sigma + 8000.0) / s.rho + 8000.0 / mbps(1.6);
    EXPECT_LE(sink.delays(s.flow).max(), bound + 1e-9)
        << "flow " << s.flow << " max delay " << sink.delays(s.flow).max();
    EXPECT_GT(sink.delays(s.flow).count(), 100u);
  }
}

/// End-to-end over a 3-hop chain: the paper's d_min formula bounds the
/// measured worst case.
TEST(PacketSim, MultiHopDelayBoundedByDmin) {
  sim::Simulator simulator;
  DelaySink sink;

  const BitsPerSecond c1 = mbps(1.6), c2 = mbps(10.0), c3 = mbps(1.6);
  const Bits l_max = 8000.0;
  const Bits sigma = 32000.0;
  const BitsPerSecond rho = kbps(400);

  auto link3 = std::make_unique<ScheduledLink>(simulator, c3,
                                               SinkAdapter{&sink, &simulator});
  auto link2 = std::make_unique<ScheduledLink>(
      simulator, c2, [&l3 = *link3](Packet p) { l3.enqueue(p); });
  auto link1 = std::make_unique<ScheduledLink>(
      simulator, c1, [&l2 = *link2](Packet p) { l2.enqueue(p); });
  for (auto* link : {link1.get(), link2.get(), link3.get()}) {
    link->add_flow(1, rho);
    // Cross traffic on every hop to stress the scheduler.
    link->add_flow(2, link->capacity() - rho - kbps(100));
  }

  TokenBucketSource::Config main_config;
  main_config.flow = 1;
  main_config.sigma = sigma;
  main_config.rho = rho;
  main_config.packet_size = l_max;
  TokenBucketSource main_source(simulator, main_config, sim::Rng(1),
                                [&](Packet p) { link1->enqueue(p); });
  main_source.start(SimTime::seconds(120));

  // Greedy cross traffic joins each hop directly.
  std::vector<std::unique_ptr<TokenBucketSource>> cross;
  int idx = 0;
  for (auto* link : {link1.get(), link2.get(), link3.get()}) {
    TokenBucketSource::Config config;
    config.flow = 2;
    config.sigma = 64000.0;
    config.rho = link->capacity() - rho - kbps(100);
    config.packet_size = l_max;
    cross.push_back(std::make_unique<TokenBucketSource>(
        simulator, config, sim::Rng(std::uint64_t(100 + idx++)),
        [link](Packet p) { link->enqueue(p); }));
    cross.back()->start(SimTime::seconds(120));
  }
  simulator.run();

  // d_min = (sigma + n L)/rho + sum L/C_i (Table 2's destination test).
  const double d_min = (sigma + 3.0 * l_max) / rho + l_max / c1 + l_max / c2 + l_max / c3;
  ASSERT_TRUE(sink.has(1));
  EXPECT_GT(sink.delays(1).count(), 1000u);
  EXPECT_LE(sink.delays(1).max(), d_min + 1e-9)
      << "measured max " << sink.delays(1).max() << " vs d_min " << d_min;
}

/// Isolation: a misbehaving (unregulated) flow cannot break a conforming
/// flow's delay bound — the whole point of reservation-based scheduling.
TEST(PacketSim, ConformingFlowIsolatedFromRogue) {
  sim::Simulator simulator;
  DelaySink sink;
  ScheduledLink link(simulator, mbps(1.6), SinkAdapter{&sink, &simulator});

  const Bits l_max = 8000.0;
  link.add_flow(1, kbps(400));   // conforming
  link.add_flow(2, kbps(1200));  // rogue: sends far beyond its reservation

  TokenBucketSource::Config good;
  good.flow = 1;
  good.sigma = 16000.0;
  good.rho = kbps(400);
  good.packet_size = l_max;
  TokenBucketSource good_source(simulator, good, sim::Rng(1),
                                [&](Packet p) { link.enqueue(p); });
  good_source.start(SimTime::seconds(60));

  // The rogue floods 4x its reservation (its own delay explodes; flow 1's
  // must not).
  TokenBucketSource::Config rogue;
  rogue.flow = 2;
  rogue.sigma = 400000.0;
  rogue.rho = mbps(4.8);
  rogue.packet_size = l_max;
  TokenBucketSource rogue_source(simulator, rogue, sim::Rng(2),
                                 [&](Packet p) { link.enqueue(p); });
  rogue_source.start(SimTime::seconds(60));

  simulator.run();
  const double bound = (good.sigma + l_max) / good.rho + l_max / mbps(1.6);
  ASSERT_TRUE(sink.has(1));
  EXPECT_LE(sink.delays(1).max(), bound + 1e-9);
  // And the rogue indeed suffered (sanity that the stress was real).
  ASSERT_TRUE(sink.has(2));
  EXPECT_GT(sink.delays(2).max(), bound);
}

// ---- RCSP (the paper's non-work-conserving discipline) -------------------

TEST(PacketSim, RcspRepacesGreedyBursts) {
  // A greedy burst of 8 packets into an otherwise IDLE link: Virtual Clock
  // (work-conserving) blasts them at link speed; RCSP's regulator paces them
  // at the reserved rate rho — the defining difference.
  const Bits l = 8000.0;
  const BitsPerSecond rho = kbps(100);

  auto burst_into = [&](auto& link) {
    sim::Simulator& simulator = *link.simulator_for_test;
    for (int i = 0; i < 8; ++i) {
      Packet p;
      p.flow = 1;
      p.size = l;
      p.created = simulator.now();
      link.link->enqueue(p);
    }
    simulator.run();
  };

  struct VcHarness {
    sim::Simulator sim;
    std::vector<double> departures;
    std::unique_ptr<ScheduledLink> link;
    sim::Simulator* simulator_for_test = &sim;
    VcHarness() {
      link = std::make_unique<ScheduledLink>(sim, mbps(1.6), [this](Packet) {
        departures.push_back(sim.now().to_seconds());
      });
      link->add_flow(1, kbps(100));
    }
  } vc;
  struct RcspHarness {
    sim::Simulator sim;
    std::vector<double> departures;
    std::unique_ptr<RcspLink> link;
    sim::Simulator* simulator_for_test = &sim;
    RcspHarness() {
      link = std::make_unique<RcspLink>(sim, mbps(1.6), [this](Packet) {
        departures.push_back(sim.now().to_seconds());
      });
      link->add_flow(1, kbps(100));
    }
  } rcsp;

  burst_into(vc);
  burst_into(rcsp);
  ASSERT_EQ(vc.departures.size(), 8u);
  ASSERT_EQ(rcsp.departures.size(), 8u);
  // VC finishes the whole burst at link rate: 8 * L/C = 40 ms.
  EXPECT_NEAR(vc.departures.back(), 8.0 * l / mbps(1.6), 1e-9);
  // RCSP paces at rho: the last packet becomes eligible at 7 * L/rho.
  EXPECT_NEAR(rcsp.departures.back(), 7.0 * l / rho + l / mbps(1.6), 1e-9);
  // Inter-departure spacing under RCSP is (almost exactly) L/rho.
  for (std::size_t i = 1; i < rcsp.departures.size(); ++i) {
    EXPECT_NEAR(rcsp.departures[i] - rcsp.departures[i - 1], l / rho, 1e-9);
  }
}

TEST(PacketSim, RcspPriorityOrdering) {
  sim::Simulator simulator;
  std::vector<FlowId> order;
  RcspLink link(simulator, mbps(1.6), [&](Packet p) { order.push_back(p.flow); });
  // Rates far above the packet pacing so every packet is eligible at once
  // and only the priority levels decide the order.
  link.add_flow(1, mbps(16.0), /*priority=*/1);  // low priority
  link.add_flow(2, mbps(16.0), /*priority=*/0);  // high priority

  // Enqueue low-priority first; both are instantly eligible. The first
  // low-priority packet grabs the idle server, but after that the
  // high-priority queue drains first.
  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.flow = 1;
    p.size = 8000.0;
    p.created = simulator.now();
    link.enqueue(p);
  }
  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.flow = 2;
    p.size = 8000.0;
    p.created = simulator.now();
    link.enqueue(p);
  }
  simulator.run();
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 2u);
  EXPECT_EQ(order[4], 1u);
}

TEST(PacketSim, RcspDelayBoundForConformingFlow) {
  // Two conforming flows at one priority: per-hop delay stays within the
  // regulator bound sigma/rho plus the queueing of one packet per flow.
  sim::Simulator simulator;
  DelaySink sink;
  RcspLink link(simulator, mbps(1.6), SinkAdapter{&sink, &simulator});

  const Bits l = 8000.0;
  struct Spec {
    FlowId flow;
    Bits sigma;
    BitsPerSecond rho;
  };
  const std::vector<Spec> specs{{1, 4 * l, kbps(800)}, {2, 2 * l, kbps(700)}};
  std::vector<std::unique_ptr<TokenBucketSource>> sources;
  for (const Spec& s : specs) {
    link.add_flow(s.flow, s.rho);
    TokenBucketSource::Config config;
    config.flow = s.flow;
    config.sigma = s.sigma;
    config.rho = s.rho;
    config.packet_size = l;
    sources.push_back(std::make_unique<TokenBucketSource>(
        simulator, config, sim::Rng(s.flow), [&](Packet p) { link.enqueue(p); }));
    sources.back()->start(SimTime::seconds(60));
  }
  simulator.run();
  for (const Spec& s : specs) {
    // Regulator holds a greedy burst for up to (sigma - L)/rho; the static
    // priority FIFO then adds at most two packets per flow of queueing
    // (eligibility collisions) plus the own transmission time.
    const double bound = (s.sigma - l) / s.rho +
                         2.0 * double(specs.size()) * l / mbps(1.6) + l / mbps(1.6);
    EXPECT_LE(sink.delays(s.flow).max(), bound + 1e-9) << "flow " << s.flow;
  }
}

// ---- mid-run renegotiation (set_rate) regressions ------------------------

TEST(PacketSim, ScheduledLinkKeepsFifoAcrossRateChange) {
  // Regression: add_flow() on an already-registered flow used to reset the
  // Virtual Clock stamp to 0, so packets stamped after a mid-run rate raise
  // sorted AHEAD of the flow's still-queued packets — a per-flow FIFO
  // violation no real scheduler exhibits. set_rate() preserves the stamp.
  sim::Simulator simulator;
  std::vector<Bits> sizes;
  ScheduledLink link(simulator, mbps(1.6),
                     [&](Packet p) { sizes.push_back(p.size); });
  link.add_flow(1, kbps(100));

  // Four packets queue at t=0 with stamps 0.08, 0.16, 0.24, 0.32.
  for (int i = 0; i < 4; ++i) {
    Packet p;
    p.flow = 1;
    p.size = 8000.0;
    p.created = simulator.now();
    link.enqueue(p);
  }
  // Renegotiate up 8x (via the add_flow path, which must delegate), then
  // two more packets. With the stamp preserved they continue at 0.33, 0.34;
  // with the old reset they'd stamp 0.01, 0.02 and overtake.
  link.add_flow(1, kbps(800));
  for (int i = 0; i < 2; ++i) {
    Packet p;
    p.flow = 1;
    p.size = 4000.0;
    p.created = simulator.now();
    link.enqueue(p);
  }
  simulator.run();
  const std::vector<Bits> expected{8000.0, 8000.0, 8000.0, 8000.0, 4000.0, 4000.0};
  EXPECT_EQ(sizes, expected);
  EXPECT_NEAR(link.reserved_total(), kbps(800), 1e-9);
}

TEST(PacketSim, RcspRateChangeCannotBurstThroughRegulator) {
  // Regression: re-registering a flow used to reset last_eligible, so a
  // renegotiating flow's next burst sailed through the rate controller at
  // link speed. set_rate() preserves the pacing debt: departures stay
  // spaced at (the new) L/rho across the change.
  sim::Simulator simulator;
  std::vector<double> departures;
  const Bits l = 8000.0;
  const BitsPerSecond rho = kbps(100);
  RcspLink link(simulator, mbps(1.6),
                [&](Packet) { departures.push_back(simulator.now().to_seconds()); });
  link.add_flow(1, rho);

  auto burst = [&](int n) {
    for (int i = 0; i < n; ++i) {
      Packet p;
      p.flow = 1;
      p.size = l;
      p.created = simulator.now();
      link.enqueue(p);
    }
  };
  burst(4);
  link.add_flow(1, rho);  // same-rate renegotiation via the add_flow path
  burst(4);
  simulator.run();

  ASSERT_EQ(departures.size(), 8u);
  // The 8th packet is eligible at 7 L/rho — as if no renegotiation happened.
  EXPECT_NEAR(departures.back(), 7.0 * l / rho + l / mbps(1.6), 1e-9);
  for (std::size_t i = 1; i < departures.size(); ++i) {
    EXPECT_NEAR(departures[i] - departures[i - 1], l / rho, 1e-9) << i;
  }
}

TEST(PacketSim, RcspQueuedPacketsSurvivePriorityLevelMove) {
  // Packets held in the regulator resolve their priority level when they
  // become ELIGIBLE, not when they arrive: a set_rate() that moves the flow
  // to another level (or an add_flow() that inserts a level below it and
  // shifts every index) must not strand or misfile them.
  sim::Simulator simulator;
  std::vector<FlowId> order;
  RcspLink link(simulator, mbps(1.6), [&](Packet p) { order.push_back(p.flow); });
  link.add_flow(1, kbps(100), /*priority=*/3);

  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.flow = 1;
    p.size = 8000.0;
    p.created = simulator.now();
    link.enqueue(p);  // paced: the 2nd and 3rd are held in the regulator
  }
  // Inserting a higher-priority level shifts flow 1's level index; then the
  // flow itself moves to a brand-new lowest level.
  link.add_flow(2, mbps(16.0), /*priority=*/0);
  link.set_rate(1, kbps(100), /*priority=*/7);
  {
    Packet p;
    p.flow = 2;
    p.size = 8000.0;
    p.created = simulator.now();
    link.enqueue(p);
  }
  simulator.run();
  // Every packet departs exactly once; nothing is stranded in a stale FIFO.
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(std::count(order.begin(), order.end(), FlowId{1}), 3);
  EXPECT_EQ(std::count(order.begin(), order.end(), FlowId{2}), 1);
  EXPECT_EQ(link.packets_served(), 4u);
}

TEST(PacketSim, RandomizedSourcesStayWellInsideBound) {
  sim::Simulator simulator;
  DelaySink sink;
  ScheduledLink link(simulator, mbps(1.6), SinkAdapter{&sink, &simulator});
  link.add_flow(1, kbps(400));

  TokenBucketSource::Config config;
  config.flow = 1;
  config.sigma = 16000.0;
  config.rho = kbps(400);
  config.packet_size = 8000.0;
  config.greedy = false;
  TokenBucketSource source(simulator, config, sim::Rng(7),
                           [&](Packet p) { link.enqueue(p); });
  source.start(SimTime::seconds(120));
  simulator.run();
  const double bound = (config.sigma + 8000.0) / config.rho + 8000.0 / mbps(1.6);
  EXPECT_LE(sink.delays(1).max(), bound);
  // A lone randomized flow on an idle link mostly sees pure transmission.
  EXPECT_LT(sink.delays(1).mean(), bound / 2.0);
}

}  // namespace
}  // namespace imrm::qos
