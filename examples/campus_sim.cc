// Campus simulation: a full synthetic office floor (offices, corridors,
// meeting room, cafeteria, lounge) with a walking population of connection
// holders, driven through the integrated resource manager for an 8-hour
// workday.
//
//   $ ./campus_sim [users] [hours] [floors]
//
// With floors > 1 the synthetic floor is stacked into a multi-floor
// building connected by stairwells.
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/environment.h"
#include "mobility/floorplan.h"
#include "mobility/movement.h"
#include "sim/random.h"
#include "stats/table.h"

using namespace imrm;

int main(int argc, char** argv) {
  const int users = argc > 1 ? std::atoi(argv[1]) : 40;
  const double hours = argc > 2 ? std::atof(argv[2]) : 8.0;
  const int floors = argc > 3 ? std::atoi(argv[3]) : 1;

  sim::Simulator simulator;
  core::EnvironmentConfig config;
  config.cell_capacity = qos::mbps(1.6);
  config.b_dyn_fraction = 0.10;
  mobility::CellMap map;
  if (floors > 1) {
    mobility::BuildingConfig building;
    building.floors = floors;
    map = mobility::building_environment(building);
  } else {
    map = mobility::campus_environment();
  }
  core::Environment env(std::move(map), simulator, config);

  std::cout << "== Campus: " << env.map().size() << " cells, " << users << " users, "
            << hours << " h ==\n";
  for (const auto& cell : env.map().cells()) {
    std::cout << "  " << cell.name << " [" << mobility::to_string(cell.cell_class)
              << "] neighbors:";
    for (auto n : cell.neighbors) std::cout << ' ' << env.map().cell(n).name;
    std::cout << '\n';
  }

  sim::Rng rng(2026);
  const auto offices = env.map().cells_of_class(mobility::CellClass::kOffice);
  const auto corridors = env.map().cells_of_class(mobility::CellClass::kCorridor);

  // Users: 60% office dwellers with a home office, 40% roamers.
  struct Walker {
    core::Environment* env;
    sim::Rng rng;
    sim::SimTime horizon;
    void step(net::PortableId p) {
      auto& simulator = env->simulator();
      const auto& me = env->mobility().portable(p);
      const auto cls = env->map().cell(me.current_cell).cell_class;
      const double mean_min = cls == mobility::CellClass::kOffice      ? 40.0
                              : cls == mobility::CellClass::kCafeteria ? 20.0
                              : cls == mobility::CellClass::kMeetingRoom ? 30.0
                                                                         : 2.0;
      const auto at =
          simulator.now() + sim::Duration::minutes(rng.exponential_mean(mean_min));
      if (at > horizon) return;
      simulator.at(at, [this, p] {
        const auto& me2 = env->mobility().portable(p);
        const auto& neighbors = env->map().cell(me2.current_cell).neighbors;
        // Home-biased walk: office dwellers return home from corridors often.
        mobility::CellId next =
            neighbors[std::size_t(rng.uniform_int(0, int(neighbors.size()) - 1))];
        if (me2.home_office.has_value() && rng.bernoulli(0.5)) {
          for (auto n : neighbors) {
            if (n == *me2.home_office) next = n;
          }
        }
        env->handoff(p, next);
        step(p);
      });
    }
  };
  auto walker = std::make_shared<Walker>(
      Walker{&env, rng.fork(), sim::SimTime::hours(hours)});

  int opened = 0;
  for (int i = 0; i < users; ++i) {
    const bool dweller = i % 5 < 3;
    const auto home = offices[std::size_t(i) % offices.size()];
    const auto start = dweller ? home
                               : corridors[std::size_t(i) % corridors.size()];
    const auto p = env.add_portable(start, dweller ? std::optional(home) : std::nullopt);
    if (env.open_connection(p, {qos::kbps(16), qos::kbps(64)})) ++opened;
    walker->step(p);
  }

  simulator.every(sim::Duration::minutes(5), sim::SimTime::hours(hours),
                  [&] { env.refresh(); });
  simulator.run();

  const auto& s = env.stats();
  stats::Table table({"metric", "value"});
  table.add_row({"connections opened", std::to_string(opened)});
  table.add_row({"connections blocked", std::to_string(s.connections_blocked)});
  table.add_row({"handoffs", std::to_string(s.handoffs)});
  table.add_row({"handoff drops", std::to_string(s.handoff_drops)});
  table.add_row({"drop rate", stats::fmt(s.handoffs ? 100.0 * double(s.handoff_drops) /
                                                          double(s.handoffs)
                                                    : 0.0, 2) + "%"});
  table.add_row({"advance reservations", std::to_string(s.reservations_placed)});
  table.add_row({"correct predictions", std::to_string(s.predictions_correct)});
  table.add_row({"adaptations", std::to_string(s.adaptations)});
  std::cout << '\n';
  table.print(std::cout);
  return 0;
}
