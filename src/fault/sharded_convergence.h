// Sharded distributed max-min convergence (ISSUE 5).
//
// Decomposes a campus-shaped max-min problem across sim::ShardedRunner
// domains: the corridor's cells are split into contiguous groups, each group
// runs its OWN maxmin::DistributedProtocol over the links it owns (its
// cells' wireless links plus the backbone segments rooted at its cells), and
// a connection whose path crosses groups becomes one sub-connection per
// touched group.
//
// Coupling protocol — advertised-rate offers, not granted rates. Each group
// periodically computes, per cross-group connection, the minimum advertised
// rate over the connection's owned REAL path links (its artificial entry
// link is excluded: that would just echo the peers' own caps back at them)
// and gossips it to the peer groups when it moved by more than a hair. A
// receiving group caps its sub-connection at the minimum of all peer offers
// by resizing the sub-connection's footnote-11 artificial entry link —
// Charny's own finite-demand mechanism, applied at segment granularity. At
// the fixed point every touched group's sub-rate equals min over groups of
// their offers, which is exactly min over all path links of the advertised
// rate: the global max-min rate. Exchanging granted rates instead deadlocks
// below the fixed point on circular capacity dependencies (group A waits for
// B's grant to grow while B waits for A's), which is why offers are the
// protocol currency here.
//
// The harness checks the sharded system reconverges to the same
// maxmin::waterfill fixed point as the unsharded protocol — including after
// a mid-run wireless capacity perturbation — for any group/worker count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace imrm::fault {

struct ShardedConvergenceConfig {
  std::size_t cells = 8;
  std::size_t conns = 24;
  std::size_t groups = 4;     ///< protocol segments = runner domains
  std::size_t workers = 1;    ///< execution threads (0 = hardware)
  std::uint64_t seed = 1;     ///< campus_problem topology seed
  sim::Duration hop_latency = sim::Duration::millis(1.0);  ///< = window
  sim::Duration gossip_period = sim::Duration::millis(5.0);
  sim::SimTime horizon = sim::SimTime::seconds(30.0);
  double tolerance = 1e-6;    ///< max |rate - fixed point| for convergence

  /// Optional mid-run wireless capacity change at `perturb_cell`'s link,
  /// applied inside the owning group at `perturb_time`; the expected fixed
  /// point is then the waterfill of the perturbed problem.
  bool perturb = false;
  std::size_t perturb_cell = 0;
  double perturb_excess = 0.0;
  sim::SimTime perturb_time = sim::SimTime::seconds(5.0);
};

struct ShardedConvergenceResult {
  bool converged = false;
  double max_deviation = 0.0;
  std::vector<double> rates;     ///< per global connection (min over groups)
  std::vector<double> expected;  ///< waterfill fixed point (post-perturbation)
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t boundary_messages = 0;
  std::uint64_t offers_sent = 0;
};

/// Deterministic in the config for any `groups`/`workers` combination.
[[nodiscard]] ShardedConvergenceResult run_sharded_convergence(
    const ShardedConvergenceConfig& config);

}  // namespace imrm::fault
