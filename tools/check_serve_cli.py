#!/usr/bin/env python3
"""End-to-end contract for scenario_cli serve / drive (ISSUE 8).

Three checks, each against the schema-v3 `service` report block:

  1. determinism — two `drive --transport ring --pacing virtual` runs at the
     same seed must produce byte-identical `service` and `metrics` objects
     (the in-process ring plus virtual pacing is the reproducible path);
  2. trace arrivals — a recorded trace drives exactly its own events, and a
     malformed trace is rejected up front with exit 2 naming the bad line;
  3. socket — a real `serve` process driven by a separate `drive --transport
     socket` process; the driver's --shutdown 1 must terminate the server,
     and both sides' reports must validate.

Usage: check_serve_cli.py <path-to-scenario_cli>
"""
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
VALIDATE = TOOLS / "validate_report.py"


def fail(message):
    print(f"FAIL: {message}")
    sys.exit(1)


def run(cli, args, **kwargs):
    proc = subprocess.run([cli] + args, capture_output=True, text=True,
                          timeout=300, **kwargs)
    if proc.returncode != 0:
        fail(f"{' '.join(args)} exited {proc.returncode}\n{proc.stderr}")
    return proc


def validate(report_path):
    proc = subprocess.run([sys.executable, str(VALIDATE), str(report_path)],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode != 0:
        fail(f"validate_report.py rejected {report_path}:\n"
             f"{proc.stdout}{proc.stderr}")


def check_determinism(cli, tmp):
    reports = []
    for i in range(2):
        path = tmp / f"det{i}.json"
        run(cli, ["drive", "--transport", "ring", "--pacing", "virtual",
                  "--rate", "2000", "--duration", "3", "--seed", "9",
                  "--portables", "32", "--cells", "8", "--queue-cap", "16",
                  "--metrics-json", str(path)])
        validate(path)
        reports.append(json.loads(path.read_text()))
    for field in ("service", "metrics"):
        if reports[0][field] != reports[1][field]:
            fail(f"virtual-pacing runs disagree on {field!r}")
    service = reports[0]["service"]
    if service["transport"] != "ring" or service["pacing"] != "virtual":
        fail(f"unexpected transport/pacing echo: {service}")
    if service["offered"] == 0 or service["admit_accepted"] == 0:
        fail(f"degenerate drive run: {service}")
    print("OK: in-process virtual drive is deterministic "
          f"(offered={service['offered']} shed={service['shed']})")


def check_trace(cli, tmp):
    trace = tmp / "arrivals.trace"
    trace.write_text(
        "# three-portable warmup\n"
        "0.00 admit 0 0\n"
        "0.01 admit 1 1\n"
        "0.02 handoff 0 1\n"
        "0.03 probe\n"
        "0.04 teardown 1\n")
    report = tmp / "trace.json"
    run(cli, ["drive", "--transport", "ring", "--pacing", "virtual",
              "--arrivals", "trace", "--trace-in", str(trace),
              "--cells", "8", "--metrics-json", str(report)])
    validate(report)
    service = json.loads(report.read_text())["service"]
    if service["offered"] != 5:
        fail(f"trace offered {service['offered']} events, expected 5")
    if service["errors"] != 0:
        fail(f"trace drive hit {service['errors']} service errors")

    bad = tmp / "bad.trace"
    bad.write_text("0.0 admit 0 0\n0.1 frobnicate 1\n")
    proc = subprocess.run(
        [cli, "drive", "--arrivals", "trace", "--trace-in", str(bad)],
        capture_output=True, text=True, timeout=60)
    if proc.returncode != 2:
        fail(f"malformed trace exited {proc.returncode}, expected 2")
    if f"{bad}:2" not in proc.stderr:
        fail(f"malformed-trace diagnostic does not name line 2: {proc.stderr!r}")
    print("OK: trace arrivals replay exactly; malformed traces exit 2")


def check_socket(cli, tmp):
    sock = tmp / "imrm.sock"
    serve_report = tmp / "serve.json"
    drive_report = tmp / "drive.json"
    server = subprocess.Popen(
        [cli, "serve", "--socket", str(sock), "--cells", "8",
         "--queue-cap", "64", "--deadline", "60",
         "--metrics-json", str(serve_report)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        # The "serving on" line is flushed before the accept loop starts.
        line = server.stdout.readline()
        if "serving on" not in line:
            fail(f"serve did not announce itself: {line!r}")
        for _ in range(100):
            if sock.exists():
                break
            time.sleep(0.05)
        run(cli, ["drive", "--transport", "socket", "--socket", str(sock),
                  "--rate", "500", "--duration", "2", "--seed", "3",
                  "--portables", "16", "--cells", "8", "--shutdown", "1",
                  "--metrics-json", str(drive_report)])
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            fail("serve did not exit after the driver's Shutdown request")
        if server.returncode != 0:
            fail(f"serve exited {server.returncode}: {server.stderr.read()}")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()

    validate(serve_report)
    validate(drive_report)
    served = json.loads(serve_report.read_text())["service"]
    drove = json.loads(drive_report.read_text())["service"]
    if served["transport"] != "socket" or served["pacing"] != "wall":
        fail(f"serve report transport/pacing wrong: {served}")
    if served["offered"] == 0:
        fail("serve processed nothing")
    # The driver sent everything the server saw (shutdown frame included).
    if drove["offered"] != served["offered"]:
        fail(f"driver sent {drove['offered']} but server saw "
             f"{served['offered']}")
    print(f"OK: socket serve/drive round trip "
          f"(offered={served['offered']} errors={served['errors']})")


def main():
    if len(sys.argv) != 2:
        print("usage: check_serve_cli.py <scenario_cli>", file=sys.stderr)
        return 2
    cli = sys.argv[1]
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        check_determinism(cli, tmp)
        check_trace(cli, tmp)
        check_socket(cli, tmp)
    return 0


if __name__ == "__main__":
    sys.exit(main())
