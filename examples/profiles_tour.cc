// A tour of Table 1: what lives inside the cell and portable profiles, how
// the profile server aggregates handoffs, and what each level of the
// three-level predictor sees.
//
//   $ ./profiles_tour
#include <iostream>

#include "mobility/floorplan.h"
#include "prediction/predictor.h"
#include "profiles/booking.h"
#include "profiles/profile_server.h"
#include "stats/table.h"

using namespace imrm;
using net::PortableId;

int main() {
  mobility::CellMap map = mobility::fig4_environment();
  const auto cells = mobility::fig4_cells(map);
  profiles::ProfileServer server{net::ZoneId{0}};

  std::cout << "== Table 1 tour: profiles in the Figure 4 environment ==\n\n";

  // Feed a week of habits: the faculty member (portable 0) goes C->D->A most
  // mornings; students (1..3) go C->D->E->B; strangers scatter.
  const PortableId faculty{0};
  map.add_occupant(cells.a, faculty);
  for (int day = 0; day < 5; ++day) {
    server.record_handoff(faculty, cells.c, cells.d, day == 2 ? cells.e : cells.a);
    for (unsigned s = 1; s <= 3; ++s) {
      server.record_handoff(PortableId{s}, cells.c, cells.d, cells.e);
      server.record_handoff(PortableId{s}, cells.d, cells.e, cells.b);
    }
    for (unsigned w = 0; w < 20; ++w) {
      server.record_handoff(PortableId{100 + w}, cells.c, cells.d,
                            w % 2 ? cells.f : cells.g);
    }
  }

  // Portable profile: the <previous, current> -> next-predicted-cell view.
  std::cout << "portable profile of the faculty member (id 0):\n";
  const auto* fp = server.portable_profile(faculty);
  stats::Table ptable({"state <prev, cur>", "observations", "next-predicted-cell"});
  ptable.add_row({"<C, D>", std::to_string(fp->observations(cells.c, cells.d)),
                  map.cell(*fp->predict(cells.c, cells.d)).name});
  ptable.print(std::cout);

  // Cell profile: handoff distribution of corridor D.
  std::cout << "\ncell profile of corridor D (aggregate over all users):\n";
  const auto* dp = server.cell_profile(cells.d);
  stats::Table ctable({"next cell", "probability"});
  for (const auto& share : dp->aggregate_distribution()) {
    ctable.add_row({map.cell(share.neighbor).name, stats::fmt(share.probability, 3)});
  }
  ctable.print(std::cout);

  // The three prediction levels, side by side.
  std::cout << "\nthree-level prediction for a user at D (came from C):\n";
  const prediction::ThreeLevelPredictor predictor(map, server);
  stats::Table predt({"who", "level used", "predicted next cell"});
  auto describe = [&](const char* who, PortableId id) {
    const auto p = predictor.predict(id, cells.c, cells.d);
    predt.add_row({who, prediction::to_string(p.level),
                   p.next_cell ? map.cell(*p.next_cell).name : "-"});
  };
  describe("faculty (habitual)", faculty);
  describe("student 1 (habitual)", PortableId{1});
  describe("stranger (no history)", PortableId{999});
  predt.print(std::cout);

  // The meeting-room booking calendar.
  std::cout << "\nbooking calendar of a meeting room:\n";
  profiles::BookingCalendar calendar;
  calendar.book({sim::SimTime::hours(9), sim::SimTime::hours(10), 35});
  calendar.book({sim::SimTime::hours(10), sim::SimTime::hours(11.5), 55});
  stats::Table btable({"start", "stop", "attendees (N_m)"});
  for (const auto& m : calendar.meetings()) {
    btable.add_row({stats::fmt(m.start.to_hours(), 1) + " h",
                    stats::fmt(m.stop.to_hours(), 1) + " h",
                    std::to_string(m.attendees)});
  }
  btable.print(std::cout);
  const auto active = calendar.active_at(sim::SimTime::hours(9.5));
  std::cout << "meeting in progress at 9.5 h: "
            << (active ? std::to_string(active->attendees) + " attendees" : "none")
            << '\n';
  return 0;
}
