file(REMOVE_RECURSE
  "CMakeFiles/imrm_reservation.dir/cell_bandwidth.cc.o"
  "CMakeFiles/imrm_reservation.dir/cell_bandwidth.cc.o.d"
  "CMakeFiles/imrm_reservation.dir/dispatcher.cc.o"
  "CMakeFiles/imrm_reservation.dir/dispatcher.cc.o.d"
  "CMakeFiles/imrm_reservation.dir/handoff_predictor.cc.o"
  "CMakeFiles/imrm_reservation.dir/handoff_predictor.cc.o.d"
  "CMakeFiles/imrm_reservation.dir/lounge_policy.cc.o"
  "CMakeFiles/imrm_reservation.dir/lounge_policy.cc.o.d"
  "CMakeFiles/imrm_reservation.dir/policy.cc.o"
  "CMakeFiles/imrm_reservation.dir/policy.cc.o.d"
  "CMakeFiles/imrm_reservation.dir/probabilistic.cc.o"
  "CMakeFiles/imrm_reservation.dir/probabilistic.cc.o.d"
  "libimrm_reservation.a"
  "libimrm_reservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imrm_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
