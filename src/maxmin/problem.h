// The rate-allocation problem solved by conflict resolution (Section 5.2).
//
// Only the *excess* bandwidth beyond each connection's guaranteed b_min is
// divided: a connection's demand is its headroom b_max - b_min (infinite
// demand is allowed and modelled by an unbounded headroom), and each link
// offers its excess available bandwidth b'_av,l = C_l - b_resv,l - sum b_min.
#pragma once

#include <limits>
#include <vector>

#include "net/ids.h"
#include "qos/flow_spec.h"

namespace imrm::maxmin {

/// Index types local to a problem instance (dense 0..n-1).
using LinkIndex = std::size_t;
using ConnIndex = std::size_t;

inline constexpr double kInfiniteDemand = std::numeric_limits<double>::infinity();

struct ProblemLink {
  double excess_capacity = 0.0;  // b'_av,l
};

struct ProblemConnection {
  std::vector<LinkIndex> path;   // links traversed end to end
  double demand = kInfiniteDemand;  // headroom b_max - b_min
};

struct Problem {
  std::vector<ProblemLink> links;
  std::vector<ProblemConnection> connections;

  [[nodiscard]] bool valid() const;

  /// Connections crossing each link (computed view).
  [[nodiscard]] std::vector<std::vector<ConnIndex>> connections_by_link() const;
};

/// A rate vector is feasible when no link's excess capacity is exceeded and
/// no connection exceeds its demand. `slack` tolerates float drift.
[[nodiscard]] bool is_feasible(const Problem& problem, const std::vector<double>& rates,
                               double slack = 1e-9);

/// Max-min optimality check (Section 5.2's definition): a feasible rate
/// vector is max-min optimal iff every connection either meets its demand or
/// has a bottleneck link — a saturated link where it receives the maximal
/// rate among the link's connections.
[[nodiscard]] bool is_maxmin_optimal(const Problem& problem, const std::vector<double>& rates,
                                     double slack = 1e-6);

}  // namespace imrm::maxmin
