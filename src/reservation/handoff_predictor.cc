#include "reservation/handoff_predictor.h"

#include <algorithm>

namespace imrm::reservation {

LinearFit least_squares_3(double n_tm2, double n_tm1, double n_t, double t) {
  LinearFit fit;
  fit.a = (n_t - n_tm2) / 2.0;
  // Least-squares intercept through (t-2, n_tm2), (t-1, n_tm1), (t, n_t):
  // m = mean(n) - a * mean(time); see the header for the paper-typo note.
  fit.m = ((3.0 * t - 1.0) * n_tm2 + 2.0 * n_tm1 + (5.0 - 3.0 * t) * n_t) / 6.0;
  return fit;
}

void CafeteriaPredictor::push(double count) {
  window_.push_back(count);
  while (window_.size() > 3) window_.pop_front();
  ++slot_;
}

double CafeteriaPredictor::predict_next() const {
  if (window_.empty()) return 0.0;
  if (window_.size() < 3) return window_.back();
  const double t = double(slot_ - 1);  // the latest sample's slot index
  const LinearFit fit = least_squares_3(window_[0], window_[1], window_[2], t);
  return std::max(fit.at(t + 1.0), 0.0);
}

}  // namespace imrm::reservation
