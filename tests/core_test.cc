// Integration tests for the core Environment: the full Figure 1 control
// flow — admission, static/mobile classification, QoS adaptation, advance
// reservation, handoff processing, and the B_dyn pool.
#include <gtest/gtest.h>

#include "core/environment.h"
#include "mobility/floorplan.h"

namespace imrm::core {
namespace {

using mobility::Fig4Cells;
using qos::kbps;
using sim::Duration;
using sim::SimTime;

class EnvironmentTest : public ::testing::Test {
 protected:
  EnvironmentTest() { rebuild({}); }

  void rebuild(EnvironmentConfig config) {
    config.cell_capacity = kbps(1600);
    config_ = config;
    env_ = std::make_unique<Environment>(mobility::fig4_environment(), simulator_, config);
    cells_ = mobility::fig4_cells(env_->map());
  }

  sim::Simulator simulator_;
  EnvironmentConfig config_;
  std::unique_ptr<Environment> env_;
  Fig4Cells cells_;
};

TEST_F(EnvironmentTest, OpenConnectionAllocatesMinimum) {
  const auto p = env_->add_portable(cells_.d);
  ASSERT_TRUE(env_->open_connection(p, {kbps(16), kbps(64)}));
  EXPECT_DOUBLE_EQ(env_->allocated(p), kbps(16));
  EXPECT_EQ(env_->stats().connections_opened, 1u);
}

TEST_F(EnvironmentTest, BlocksWhenCellSaturated) {
  // Capacity 1600 kbps with a 10% B_dyn pool leaves 1440 for new
  // connections: 90 connections at 16 kbps fit, the 91st is blocked.
  const int fits = 90;
  for (int i = 0; i < fits; ++i) {
    const auto p = env_->add_portable(cells_.d);
    ASSERT_TRUE(env_->open_connection(p, {kbps(16), kbps(16)})) << i;
  }
  const auto extra = env_->add_portable(cells_.d);
  EXPECT_FALSE(env_->open_connection(extra, {kbps(16), kbps(16)}));
  EXPECT_EQ(env_->stats().connections_blocked, 1u);
}

TEST_F(EnvironmentTest, StaticPortableUpgradedWithinBounds) {
  const auto p = env_->add_portable(cells_.d);
  ASSERT_TRUE(env_->open_connection(p, {kbps(16), kbps(64)}));
  simulator_.run_until(SimTime::minutes(10));  // becomes static
  env_->refresh();
  // Alone in the cell: upgraded all the way to b_max.
  EXPECT_DOUBLE_EQ(env_->allocated(p), kbps(64));
}

TEST_F(EnvironmentTest, MobilePortableStaysAtMinimum) {
  const auto p = env_->add_portable(cells_.d);
  ASSERT_TRUE(env_->open_connection(p, {kbps(16), kbps(64)}));
  env_->refresh();  // still mobile (no dwell time elapsed)
  EXPECT_DOUBLE_EQ(env_->allocated(p), kbps(16));
}

TEST_F(EnvironmentTest, ExcessSplitMaxMinAmongStatics) {
  EnvironmentConfig config;
  config.b_dyn_fraction = 0.0;  // keep arithmetic simple
  rebuild(config);
  const auto p1 = env_->add_portable(cells_.d);
  const auto p2 = env_->add_portable(cells_.d);
  ASSERT_TRUE(env_->open_connection(p1, {kbps(100), kbps(2000)}));
  ASSERT_TRUE(env_->open_connection(p2, {kbps(100), kbps(300)}));
  simulator_.run_until(SimTime::minutes(10));
  env_->refresh();
  // Excess = 1600 - 200 = 1400. p2's headroom is 200 (demand-limited);
  // p1 takes the rest: 100 + 1200 = 1300.
  EXPECT_DOUBLE_EQ(env_->allocated(p2), kbps(300));
  EXPECT_DOUBLE_EQ(env_->allocated(p1), kbps(1300));
}

TEST_F(EnvironmentTest, OnAdaptHookFiresAfterEveryRedivision) {
  // The adaptation loop's data plane hangs off set_on_adapt: the hook must
  // fire after grants settle (so a shaper re-shaped inside it reads the new
  // allocations), on every path — open, renegotiate, refresh, and the
  // nothing-to-redivide case.
  std::vector<mobility::CellId> fired;
  env_->set_on_adapt([&](mobility::CellId cell) { fired.push_back(cell); });

  const auto p = env_->add_portable(cells_.d);
  ASSERT_TRUE(env_->open_connection(p, {kbps(16), kbps(64)}));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired.back(), cells_.d);

  simulator_.run_until(SimTime::minutes(10));
  ASSERT_TRUE(env_->renegotiate(p, {kbps(16), kbps(32)}));
  ASSERT_GE(fired.size(), 2u);
  // Inside the hook the new grant is already visible.
  env_->set_on_adapt([&](mobility::CellId cell) {
    fired.push_back(cell);
    EXPECT_DOUBLE_EQ(env_->allocated(p), kbps(32));
  });
  env_->refresh();  // static + alone: upgraded to the renegotiated b_max
  EXPECT_GT(fired.size(), 2u);
}

TEST_F(EnvironmentTest, HandoffKeepsConnectionAlive) {
  const auto p = env_->add_portable(cells_.c);
  ASSERT_TRUE(env_->open_connection(p, {kbps(16), kbps(64)}));
  EXPECT_TRUE(env_->handoff(p, cells_.d));
  EXPECT_TRUE(env_->has_connection(p));
  EXPECT_EQ(env_->stats().handoffs, 1u);
  EXPECT_EQ(env_->stats().handoff_drops, 0u);
  EXPECT_DOUBLE_EQ(env_->cell(cells_.c).allocated(), 0.0);
  EXPECT_DOUBLE_EQ(env_->cell(cells_.d).allocated(), kbps(16));
}

TEST_F(EnvironmentTest, HandoffUsesAdvanceReservationFromProfiles) {
  // Teach the profiles that this portable goes C -> D -> A, then check that
  // after a C->D handoff an advance reservation lands in A.
  const auto p = env_->add_portable(cells_.c);
  for (int i = 0; i < 3; ++i) {
    env_->profiles().record_handoff(p, cells_.c, cells_.d, cells_.a);
  }
  ASSERT_TRUE(env_->open_connection(p, {kbps(16), kbps(64)}));
  ASSERT_TRUE(env_->handoff(p, cells_.d));
  EXPECT_DOUBLE_EQ(env_->cell(cells_.a).reservation_for(p), kbps(16));
  EXPECT_GE(env_->stats().reservations_placed, 1u);

  // Completing the predicted move consumes the reservation and counts a hit.
  ASSERT_TRUE(env_->handoff(p, cells_.a));
  EXPECT_EQ(env_->stats().predictions_correct, 1u);
  EXPECT_DOUBLE_EQ(env_->cell(cells_.a).reservation_for(p), 0.0);
}

TEST_F(EnvironmentTest, OccupantPredictionReservesHomeOffice) {
  const auto p = env_->add_portable(cells_.c, /*home_office=*/cells_.a);
  ASSERT_TRUE(env_->open_connection(p, {kbps(16), kbps(64)}));
  ASSERT_TRUE(env_->handoff(p, cells_.d));
  // Level-2 occupancy prediction: reservation in the home office A.
  EXPECT_DOUBLE_EQ(env_->cell(cells_.a).reservation_for(p), kbps(16));
}

TEST_F(EnvironmentTest, DropWhenTargetFull) {
  EnvironmentConfig config;
  config.b_dyn_fraction = 0.0;
  rebuild(config);
  // Fill D completely with static occupants at fixed bounds.
  for (int i = 0; i < 100; ++i) {
    const auto q = env_->add_portable(cells_.d);
    ASSERT_TRUE(env_->open_connection(q, {kbps(16), kbps(16)}));
  }
  const auto p = env_->add_portable(cells_.c);
  ASSERT_TRUE(env_->open_connection(p, {kbps(16), kbps(16)}));
  EXPECT_FALSE(env_->handoff(p, cells_.d));
  EXPECT_EQ(env_->stats().handoff_drops, 1u);
  EXPECT_FALSE(env_->has_connection(p));  // dropped
}

TEST_F(EnvironmentTest, BDynPoolAbsorbsUnpredictedHandoff) {
  // Default 10% pool: fill D to its new-connection limit, then hand a
  // portable off into D — the pool absorbs it even with no reservation.
  for (int i = 0; i < 90; ++i) {
    const auto q = env_->add_portable(cells_.d);
    ASSERT_TRUE(env_->open_connection(q, {kbps(16), kbps(16)}));
  }
  const auto p = env_->add_portable(cells_.c);
  ASSERT_TRUE(env_->open_connection(p, {kbps(16), kbps(16)}));
  EXPECT_TRUE(env_->handoff(p, cells_.d));
  EXPECT_EQ(env_->stats().handoff_drops, 0u);
}

TEST_F(EnvironmentTest, ConflictResolutionSqueezesStaticsForNewcomer) {
  EnvironmentConfig config;
  config.b_dyn_fraction = 0.0;
  rebuild(config);
  // A static portable expanded to b_max hogs the cell; a newcomer must
  // trigger the squeeze back toward b_min (Section 5.2 case b).
  const auto hog = env_->add_portable(cells_.d);
  ASSERT_TRUE(env_->open_connection(hog, {kbps(100), kbps(1600)}));
  simulator_.run_until(SimTime::minutes(10));
  env_->refresh();
  ASSERT_DOUBLE_EQ(env_->allocated(hog), kbps(1600));

  const auto newcomer = env_->add_portable(cells_.d);
  EXPECT_TRUE(env_->open_connection(newcomer, {kbps(200), kbps(400)}));
  // The hog was squeezed; both minima fit: 100 + 200 <= 1600.
  EXPECT_LE(env_->allocated(hog), kbps(1400));
}

TEST_F(EnvironmentTest, StaticTransitionCancelsReservations) {
  const auto p = env_->add_portable(cells_.c, cells_.a);
  ASSERT_TRUE(env_->open_connection(p, {kbps(16), kbps(64)}));
  ASSERT_TRUE(env_->handoff(p, cells_.d));
  ASSERT_GT(env_->cell(cells_.a).reservation_for(p), 0.0);

  simulator_.run_until(SimTime::minutes(10));  // p settles in D
  env_->refresh();
  EXPECT_DOUBLE_EQ(env_->cell(cells_.a).reservation_for(p), 0.0);
  EXPECT_GE(env_->profiles().traffic().refreshes, 1u);  // profile refreshed
}

TEST_F(EnvironmentTest, ConnectionlessPortablesMoveFreely) {
  const auto p = env_->add_portable(cells_.c);
  EXPECT_TRUE(env_->handoff(p, cells_.d));
  EXPECT_TRUE(env_->handoff(p, cells_.a));
  EXPECT_EQ(env_->stats().handoff_drops, 0u);
}

TEST_F(EnvironmentTest, CloseConnectionFreesEverything) {
  const auto p = env_->add_portable(cells_.c, cells_.a);
  ASSERT_TRUE(env_->open_connection(p, {kbps(16), kbps(64)}));
  ASSERT_TRUE(env_->handoff(p, cells_.d));
  env_->close_connection(p);
  EXPECT_FALSE(env_->has_connection(p));
  EXPECT_DOUBLE_EQ(env_->cell(cells_.d).allocated(), 0.0);
  EXPECT_DOUBLE_EQ(env_->cell(cells_.a).reservation_for(p), 0.0);
}

TEST_F(EnvironmentTest, RenegotiationUpgradesBounds) {
  const auto p = env_->add_portable(cells_.d);
  ASSERT_TRUE(env_->open_connection(p, {kbps(16), kbps(32)}));
  ASSERT_TRUE(env_->renegotiate(p, {kbps(64), kbps(256)}));
  simulator_.run_until(SimTime::minutes(10));
  env_->refresh();
  EXPECT_DOUBLE_EQ(env_->allocated(p), kbps(256));
}

TEST_F(EnvironmentTest, FailedRenegotiationKeepsOldConnection) {
  EnvironmentConfig config;
  config.b_dyn_fraction = 0.0;
  rebuild(config);
  const auto p = env_->add_portable(cells_.d);
  ASSERT_TRUE(env_->open_connection(p, {kbps(16), kbps(32)}));
  // Impossible demand: more than the whole cell.
  EXPECT_FALSE(env_->renegotiate(p, {kbps(2000), kbps(4000)}));
  EXPECT_TRUE(env_->has_connection(p));
  EXPECT_DOUBLE_EQ(env_->allocated(p), kbps(16));
}

TEST_F(EnvironmentTest, RenegotiationUpdatesAdvanceReservation) {
  const auto p = env_->add_portable(cells_.c, /*home_office=*/cells_.a);
  ASSERT_TRUE(env_->open_connection(p, {kbps(16), kbps(32)}));
  ASSERT_TRUE(env_->handoff(p, cells_.d));
  ASSERT_DOUBLE_EQ(env_->cell(cells_.a).reservation_for(p), kbps(16));
  ASSERT_TRUE(env_->renegotiate(p, {kbps(64), kbps(128)}));
  // The reservation in the predicted cell tracks the new minimum.
  EXPECT_DOUBLE_EQ(env_->cell(cells_.a).reservation_for(p), kbps(64));
}

TEST_F(EnvironmentTest, BDynGrowsForStaticNeighbors) {
  EnvironmentConfig config;
  config.b_dyn_fraction = 0.05;
  rebuild(config);
  // A static portable with a big allocation in C; after a handoff into D,
  // D's pool must cover at least that allocation (sudden-move insurance).
  const auto heavy = env_->add_portable(cells_.c);
  ASSERT_TRUE(env_->open_connection(heavy, {kbps(100), kbps(400)}));
  simulator_.run_until(SimTime::minutes(10));
  env_->refresh();
  ASSERT_DOUBLE_EQ(env_->allocated(heavy), kbps(400));

  const auto mover = env_->add_portable(cells_.c);
  ASSERT_TRUE(env_->open_connection(mover, {kbps(16), kbps(16)}));
  ASSERT_TRUE(env_->handoff(mover, cells_.d));
  EXPECT_GE(env_->cell(cells_.d).anonymous_reservation(), kbps(400));
}

}  // namespace
}  // namespace imrm::core
