// Micro-benchmarks (google-benchmark) for the hot paths of the library:
// event queue throughput, Table 2 admission, water-filling, advertised-rate
// recomputation, the distributed protocol end-to-end, the binomial
// convolution of the probabilistic model, and a full classroom run.
#include <benchmark/benchmark.h>

#include <random>

#include "experiments/campus_day.h"
#include "experiments/classroom.h"
#include "maxmin/advertised_rate.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/tracer.h"
#include "maxmin/protocol.h"
#include "maxmin/waterfill.h"
#include "qos/admission.h"
#include "qos/packet_sim.h"
#include "reservation/probabilistic.h"
#include "sim/replication.h"
#include "sim/simulator.h"

using namespace imrm;

namespace {

void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  const int n = int(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < n; ++i) {
      simulator.at(sim::SimTime::seconds(double(i % 97)), [] {});
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleAndRun)->Arg(1000)->Arg(10000);

void BM_EventQueueScheduleCancelChurn(benchmark::State& state) {
  // Half of all scheduled events are cancelled before firing — the pattern
  // of timeout timers. Exercises true in-heap deletion and slot recycling.
  const int n = int(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    std::vector<sim::EventId> pending;
    pending.reserve(std::size_t(n));
    for (int i = 0; i < n; ++i) {
      pending.push_back(
          simulator.at(sim::SimTime::seconds(double(i % 97) + 1.0), [] {}));
      if (i % 2 == 1) {
        simulator.cancel(pending[std::size_t(i - 1)]);
      }
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleCancelChurn)->Arg(1000)->Arg(10000);

void BM_AdmissionPipeline(benchmark::State& state) {
  qos::QosRequest request;
  request.bandwidth = {qos::kbps(256), qos::kbps(1024)};
  request.delay_bound = 0.5;
  request.jitter_bound = 0.4;
  request.loss_bound = 0.02;
  request.traffic = {32000.0, 12000.0};
  const std::vector<qos::LinkSnapshot> route(
      std::size_t(state.range(0)),
      qos::LinkSnapshot{qos::mbps(45), 0.0, qos::mbps(10), 8e6, 0.001});
  const qos::AdmissionPipeline pipeline(qos::Scheduler::kRcsp,
                                        qos::MobilityClass::kStatic);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.admit(request, route, qos::kbps(100)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdmissionPipeline)->Arg(3)->Arg(10);

maxmin::Problem random_problem(int n_links, int n_conns, std::uint64_t seed) {
  std::mt19937_64 rng{seed};
  std::uniform_real_distribution<double> cap(5.0, 50.0);
  maxmin::Problem p;
  for (int i = 0; i < n_links; ++i) p.links.push_back({cap(rng)});
  for (int c = 0; c < n_conns; ++c) {
    std::uniform_int_distribution<int> start_dist(0, n_links - 1);
    const int start = start_dist(rng);
    std::uniform_int_distribution<int> end_dist(start, n_links - 1);
    const int end = end_dist(rng);
    maxmin::ProblemConnection conn;
    for (int li = start; li <= end; ++li) conn.path.push_back(std::size_t(li));
    p.connections.push_back(std::move(conn));
  }
  return p;
}

void BM_Waterfill(benchmark::State& state) {
  const auto problem = random_problem(int(state.range(0)), int(state.range(1)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(maxmin::waterfill(problem));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Waterfill)->Args({10, 50})->Args({50, 500});

void BM_AdvertisedRateRecompute(benchmark::State& state) {
  std::mt19937_64 rng{7};
  std::uniform_real_distribution<double> rate(0.0, 10.0);
  std::vector<double> recorded(std::size_t(state.range(0)));
  for (double& r : recorded) r = rate(rng);
  maxmin::AdvertisedRate ar(100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ar.recompute(recorded));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdvertisedRateRecompute)->Arg(8)->Arg(64)->Arg(512);

void BM_DistributedProtocolConverge(benchmark::State& state) {
  const auto problem = random_problem(int(state.range(0)), int(state.range(1)), 13);
  for (auto _ : state) {
    sim::Simulator simulator;
    maxmin::DistributedProtocol protocol(simulator, problem, {});
    protocol.start_all();
    benchmark::DoNotOptimize(protocol.run_to_quiescence());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DistributedProtocolConverge)->Args({5, 20})->Args({10, 60});

void BM_BinomialConvolution(benchmark::State& state) {
  reservation::ProbabilisticReservation::Config config;
  config.capacity_units = int(state.range(0));
  config.window = 0.05;
  config.p_qos = 0.01;
  config.handoff_prob = 0.7;
  const reservation::ProbabilisticReservation model(config, {{1, 0.2}, {4, 0.25}});
  const std::vector<int> here{int(state.range(0)) / 2, 2};
  const std::vector<int> neighbor{int(state.range(0)) / 2, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.nonblocking_probability(here, neighbor));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BinomialConvolution)->Arg(40)->Arg(200);

void BM_PacketScheduler(benchmark::State& state) {
  // Throughput of the Virtual Clock link: packets scheduled + served/sec.
  const int n_flows = int(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    qos::ScheduledLink link(simulator, qos::mbps(100), nullptr);
    for (int f = 1; f <= n_flows; ++f) {
      link.add_flow(qos::FlowId(f), qos::mbps(100.0 / double(n_flows + 1)));
    }
    for (int i = 0; i < 1000; ++i) {
      qos::Packet p;
      p.flow = qos::FlowId(i % n_flows + 1);
      p.size = 8000.0;
      p.created = simulator.now();
      link.enqueue(p);
    }
    simulator.run();
    benchmark::DoNotOptimize(link.packets_served());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PacketScheduler)->Arg(4)->Arg(32);

void BM_ClassroomExperiment(benchmark::State& state) {
  experiments::ClassroomConfig config;
  config.class_size = std::size_t(state.range(0));
  config.meeting = {sim::SimTime::minutes(60), sim::SimTime::minutes(110),
                    std::size_t(state.range(0))};
  config.policy = experiments::PolicyKind::kMeetingRoom;
  config.seed = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiments::run_classroom(config));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassroomExperiment)->Arg(35)->Arg(55)->Unit(benchmark::kMillisecond);

void BM_CampusDaySweep(benchmark::State& state) {
  // The scale-out path: 16 independently seeded campus days across a thread
  // pool. Arg = thread count; aggregate statistics are identical across
  // thread counts (replication_test asserts this), only wall-clock changes.
  experiments::CampusSweepConfig config;
  config.base.attendees = 20;
  config.base.squatters = 6;
  config.replications = 16;
  config.threads = std::size_t(state.range(0));
  config.base_seed = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiments::run_campus_day_sweep(config));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_CampusDaySweep)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();  // the work happens on pool threads, not the timing thread

void BM_MetricsHotPath(benchmark::State& state) {
  // One counter bump + one gauge set + one histogram record per iteration,
  // through cached instrument pointers — the per-event cost every
  // instrumented module pays once its bind_metrics() has run.
  obs::Registry registry;
  obs::Counter& counter = registry.counter("events");
  obs::Gauge& gauge = registry.gauge("depth");
  obs::Histogram& histogram =
      registry.histogram("lat", obs::HistogramSpec::log2(0.001, 1000.0, 4));
  double v = 0.0;
  for (auto _ : state) {
    counter.add();
    gauge.set(v);
    histogram.record(v);
    v = v < 900.0 ? v + 0.37 : 0.0;
  }
  benchmark::DoNotOptimize(registry.snapshot());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHotPath);

void BM_TracerInstant(benchmark::State& state) {
  // Arg 0: tracer disabled (the always-paid guard branch). Arg 1: enabled
  // (ring-buffer append). With IMRM_TRACING=OFF both compile to the guard.
  obs::Tracer tracer(1 << 16);
  tracer.set_enabled(state.range(0) != 0);
  const obs::NameId name = tracer.intern("e", "bench");
  double t = 0.0;
  for (auto _ : state) {
    tracer.instant(sim::SimTime::seconds(t), name, 1, t);
    t += 1e-3;
  }
  benchmark::DoNotOptimize(tracer.records().size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracerInstant)->Arg(0)->Arg(1);

void BM_ProfilerScope(benchmark::State& state) {
  // Arg 0: profiler runtime-disabled (the guard branch every instrumented
  // call site pays). Arg 1: enabled — two steady_clock reads plus the frame
  // push/pop and phase accounting. With IMRM_PROFILING=OFF both args
  // measure the compiled-out stub.
  obs::Profiler profiler;
  profiler.set_enabled(state.range(0) != 0);
  const obs::PhaseId phase = profiler.intern("bench.scope");
  for (auto _ : state) {
    obs::Profiler::Scope scope(&profiler, phase);
    benchmark::DoNotOptimize(phase);
  }
  benchmark::DoNotOptimize(profiler.snapshot().phases.size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerScope)->Arg(0)->Arg(1);

void BM_CampusDayTraced(benchmark::State& state) {
  // Overhead guardrail: one campus day untraced (arg 0) vs with an enabled
  // tracer + bound metrics registry (arg 1). The gap is the full
  // observability cost on a real workload; the issue budget is <5%.
  const bool observed = state.range(0) != 0;
  experiments::CampusDayConfig config;
  config.attendees = 20;
  config.squatters = 6;
  config.seed = 5;
  for (auto _ : state) {
    obs::Registry registry;
    obs::Tracer tracer;
    tracer.set_enabled(true);
    config.metrics = observed ? &registry : nullptr;
    config.tracer = observed ? &tracer : nullptr;
    benchmark::DoNotOptimize(experiments::run_campus_day(config));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CampusDayTraced)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
