#include "reservation/policy.h"

#include <cassert>

namespace imrm::reservation {

void BruteForcePolicy::refresh(sim::SimTime now) {
  env_.directory->clear_reservations();
  // Every mobile portable with an active connection claims its bandwidth in
  // every neighbor of its current cell.
  for (const mobility::Cell& cell : env_.map->cells()) {
    for (PortableId p : env_.portables_in(cell.id)) {
      if (env_.classify(p) != qos::MobilityClass::kMobile) continue;
      const qos::BitsPerSecond b = env_.demand(p);
      if (b <= 0.0) continue;
      for (CellId neighbor : cell.neighbors) {
        if (env_.directory->has(neighbor)) {
          env_.directory->at(neighbor).reserve_for(p, b);
        }
      }
    }
  }
  (void)now;
}

void AggregatePolicy::refresh(sim::SimTime now) {
  env_.directory->clear_reservations();
  // Each mobile portable's bandwidth is reserved in every neighbor, scaled
  // by the cell profile's aggregate probability of handing off there — the
  // per-connection reservation model of Section 3.3 informed by aggregate
  // history instead of the brute-force "everything everywhere".
  for (const mobility::Cell& cell : env_.map->cells()) {
    const profiles::CellProfile* profile = env_.profiles->cell_profile(cell.id);
    if (profile == nullptr) continue;
    const auto dist = profile->aggregate_distribution();
    if (dist.empty()) continue;
    for (PortableId p : env_.portables_in(cell.id)) {
      if (env_.classify(p) != qos::MobilityClass::kMobile) continue;
      const qos::BitsPerSecond b = env_.demand(p);
      if (b <= 0.0) continue;
      for (const auto& share : dist) {
        if (share.probability <= 0.0) continue;
        if (!env_.directory->has(share.neighbor)) continue;
        env_.directory->at(share.neighbor).reserve_for(p, b * share.probability);
      }
    }
  }
  (void)now;
}

void StaticPolicy::refresh(sim::SimTime) {
  env_.directory->clear_reservations();
  env_.directory->for_each_cell([this](CellId, CellBandwidth& cell) {
    cell.set_anonymous_reservation(guard_fraction_ * cell.capacity());
  });
}

MeetingRoomPolicy::MeetingRoomPolicy(PolicyEnv env, CellId room,
                                     profiles::BookingCalendar calendar, Params params)
    : AdvanceReservationPolicy(std::move(env)), room_(room),
      calendar_(std::move(calendar)), params_(params) {
  assert(params_.per_user_bandwidth > 0.0);
}

void MeetingRoomPolicy::on_handoff(const mobility::HandoffEvent& event) {
  if (event.to == room_) ++arrived_;
  if (event.from == room_) ++left_;
}

void MeetingRoomPolicy::refresh(sim::SimTime now) {
  if (standalone_) env_.directory->clear_reservations();

  // Find the meeting whose reservation windows cover `now`. Windows extend
  // Delta_s before the start and end_release after the stop.
  const profiles::Meeting* current = nullptr;
  std::size_t index = 0;
  for (std::size_t i = 0; i < calendar_.meetings().size(); ++i) {
    const profiles::Meeting& m = calendar_.meetings()[i];
    if (now >= m.start - params_.before_start && now <= m.stop + params_.end_release) {
      current = &m;
      index = i;
      break;
    }
  }
  if (current == nullptr) return;

  // Reset the arrival/departure counters when a new meeting's window opens.
  if (index != meeting_epoch_) {
    meeting_epoch_ = index;
    arrived_ = 0;
    left_ = 0;
  }

  const auto expected = double(current->attendees);

  // (a) Inbound window: from T_s - Delta_s, reserve for the attendees still
  // expected: N_m - N_arrived. The reservation is released by a timer 5
  // minutes after T_s.
  if (now >= current->start - params_.before_start &&
      now < current->start + params_.start_release) {
    const double missing = std::max(expected - double(arrived_), 0.0);
    env_.directory->at(room_).add_anonymous_reservation(missing *
                                                        params_.per_user_bandwidth);
  }

  // (b) Outbound window: from T_a - Delta_a, ask the neighbors to reserve
  // for the leavers: N_m - N_left, split by the room's profile distribution
  // (uniform when no profile data exists). Released 15 minutes after T_a.
  if (now >= current->stop - params_.before_end &&
      now < current->stop + params_.end_release) {
    const double leaving = std::max(expected - double(left_), 0.0);
    const qos::BitsPerSecond total = leaving * params_.per_user_bandwidth;
    const auto& neighbors = env_.map->cell(room_).neighbors;
    if (!neighbors.empty() && total > 0.0) {
      std::vector<double> split(neighbors.size(), 1.0 / double(neighbors.size()));
      if (const profiles::CellProfile* profile = env_.profiles->cell_profile(room_)) {
        const auto dist = profile->aggregate_distribution();
        if (!dist.empty()) {
          for (std::size_t i = 0; i < neighbors.size(); ++i) {
            split[i] = 0.0;
            for (const auto& share : dist) {
              if (share.neighbor == neighbors[i]) split[i] = share.probability;
            }
          }
        }
      }
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        if (env_.directory->has(neighbors[i]) && split[i] > 0.0) {
          env_.directory->at(neighbors[i]).add_anonymous_reservation(total * split[i]);
        }
      }
    }
  }
}

}  // namespace imrm::reservation
