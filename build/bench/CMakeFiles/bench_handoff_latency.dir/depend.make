# Empty dependencies file for bench_handoff_latency.
# This may be replaced when dependencies are built.
