# Empty dependencies file for maxmin_bridge_test.
# This may be replaced when dependencies are built.
