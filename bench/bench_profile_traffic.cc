// Signaling cost of the profile architecture (Section 3.4.3): per-handoff
// update messages, cached-profile transfers, static refreshes, and — with
// the universe partitioned into zones — cross-zone profile migrations.
//
// A random-walk population over the campus map, swept over population size
// and zone count.
#include <iostream>
#include <memory>

#include "mobility/floorplan.h"
#include "mobility/manager.h"
#include "mobility/movement.h"
#include "profiles/universe.h"
#include "sim/random.h"
#include "stats/table.h"

using namespace imrm;
using mobility::CellId;
using net::PortableId;

namespace {

struct Outcome {
  std::size_t handoffs = 0;
  std::size_t updates = 0;
  std::size_t transfers = 0;
  std::size_t migrations = 0;
};

Outcome run(int users, std::size_t zones, std::uint64_t seed) {
  mobility::CellMap map = mobility::campus_environment();
  profiles::assign_zones_round_robin(map, zones);

  sim::Simulator simulator;
  mobility::MobilityManager manager(map, simulator, sim::Duration::minutes(3));
  profiles::Universe universe(map, zones);

  Outcome out;
  manager.on_handoff([&](const mobility::HandoffEvent& e) {
    universe.record_handoff(e);
    ++out.handoffs;
  });

  sim::Rng rng(seed);
  mobility::MarkovMover::Config mover_config;
  mover_config.mean_dwell = sim::Duration::minutes(4);
  mover_config.horizon = sim::SimTime::hours(8);
  std::vector<std::unique_ptr<mobility::MarkovMover>> movers;
  for (int i = 0; i < users; ++i) {
    const PortableId p = manager.add_portable(CellId{
        static_cast<net::CellId::underlying>(std::size_t(i) % map.size())});
    movers.push_back(std::make_unique<mobility::MarkovMover>(
        manager, mobility::TransitionTable{}, mover_config, rng.fork()));
    movers.back()->start(p);
  }
  simulator.run();

  for (std::size_t z = 0; z < zones; ++z) {
    const auto& traffic =
        universe.server(net::ZoneId{static_cast<net::ZoneId::underlying>(z)}).traffic();
    out.updates += traffic.handoff_updates;
    out.transfers += traffic.profile_transfers;
  }
  out.migrations = universe.migrations();
  return out;
}

}  // namespace

int main() {
  std::cout << "== Profile-server signaling cost (Section 3.4.3) ==\n";
  std::cout << "random walk on the campus map, 8 h\n\n";

  stats::Table table({"users", "zones", "handoffs", "server updates",
                      "profile transfers", "zone migrations", "migrations/handoff"});
  for (int users : {10, 40}) {
    for (std::size_t zones : {1u, 2u, 4u}) {
      const Outcome o = run(users, zones, 29);
      table.add_row({std::to_string(users), std::to_string(zones),
                     std::to_string(o.handoffs), std::to_string(o.updates),
                     std::to_string(o.transfers), std::to_string(o.migrations),
                     stats::fmt(o.handoffs ? double(o.migrations) / double(o.handoffs)
                                           : 0.0, 3)});
    }
  }
  table.print(std::cout);

  std::cout << "\nEvery handoff costs one update message to the zone server plus\n"
               "one cached-profile transfer between base stations; zone crossings\n"
               "additionally migrate the portable profile between servers. More\n"
               "zones shrink each server's state but raise migration traffic.\n";
  return 0;
}
