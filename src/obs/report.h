// Machine-readable run report.
//
// The versioned JSON document that every experiment front end (notably
// examples/scenario_cli --metrics-json) emits after a run: which scenario
// ran with which configuration, how long it took in wall and simulated
// time, the event throughput, and the full metrics snapshot. Downstream
// tooling (bench/run_benchmarks.sh, tools/validate_report.py) keys on
// schema_version, so bump it on any breaking layout change.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/profiler.h"

namespace imrm::obs {

struct RunReport {
  /// v2 (ISSUE 7): adds the optional `profile` block — wall-clock phase and
  /// shard-lane attribution, present only when profiling was enabled. The
  /// `metrics` section layout is unchanged from v1, so metrics-section
  /// hashes (golden campus JSON, shard determinism checks) are comparable
  /// across the bump.
  static constexpr int kSchemaVersion = 2;

  std::string tool;      // producing binary, e.g. "scenario_cli"
  std::string scenario;  // subcommand / experiment name
  /// Configuration echo: flag name -> value, in insertion order.
  std::vector<std::pair<std::string, std::string>> config;

  double wall_seconds = 0.0;
  double sim_seconds = 0.0;
  std::uint64_t events_fired = 0;
  Snapshot metrics;
  /// Wall-clock attribution (schema v2). Written as a `profile` member only
  /// when non-empty: disabled-profiling reports carry no profile key at all,
  /// keeping them byte-comparable with profiling compiled out.
  ProfileSnapshot profile;

  [[nodiscard]] double events_per_second() const {
    return wall_seconds > 0.0 ? double(events_fired) / wall_seconds : 0.0;
  }

  void write_json(std::ostream& os) const;
};

}  // namespace imrm::obs
