file(REMOVE_RECURSE
  "CMakeFiles/imrm_stats.dir/table.cc.o"
  "CMakeFiles/imrm_stats.dir/table.cc.o.d"
  "CMakeFiles/imrm_stats.dir/timeseries.cc.o"
  "CMakeFiles/imrm_stats.dir/timeseries.cc.o.d"
  "libimrm_stats.a"
  "libimrm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imrm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
