# Empty dependencies file for network_environment_test.
# This may be replaced when dependencies are built.
