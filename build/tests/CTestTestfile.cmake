# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/qos_admission_test[1]_include.cmake")
include("/root/repo/build/tests/packet_sim_test[1]_include.cmake")
include("/root/repo/build/tests/admission_packet_integration_test[1]_include.cmake")
include("/root/repo/build/tests/admission_property_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/maxmin_waterfill_test[1]_include.cmake")
include("/root/repo/build/tests/maxmin_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/mobility_test[1]_include.cmake")
include("/root/repo/build/tests/profiles_test[1]_include.cmake")
include("/root/repo/build/tests/universe_test[1]_include.cmake")
include("/root/repo/build/tests/prediction_test[1]_include.cmake")
include("/root/repo/build/tests/cell_classifier_test[1]_include.cmake")
include("/root/repo/build/tests/reservation_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/dispatcher_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/experiments_test[1]_include.cmake")
include("/root/repo/build/tests/network_environment_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/full_system_test[1]_include.cmake")
include("/root/repo/build/tests/channel_test[1]_include.cmake")
include("/root/repo/build/tests/probabilistic_montecarlo_test[1]_include.cmake")
include("/root/repo/build/tests/maxmin_property_test[1]_include.cmake")
include("/root/repo/build/tests/maxmin_bridge_test[1]_include.cmake")
