// Sharded distributed max-min: the group-decomposed protocol must reach the
// same waterfill fixed point as the unsharded one, for any group/worker
// split, and must reconverge after a mid-run capacity perturbation.
#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "fault/sharded_convergence.h"

namespace imrm::fault {
namespace {

ShardedConvergenceConfig base_config() {
  ShardedConvergenceConfig config;
  config.cells = 8;
  config.conns = 24;
  config.seed = 7;
  return config;
}

TEST(ShardedConvergence, SingleGroupMatchesWaterfill) {
  ShardedConvergenceConfig config = base_config();
  config.groups = 1;
  const ShardedConvergenceResult r = run_sharded_convergence(config);
  EXPECT_TRUE(r.converged) << "max deviation " << r.max_deviation;
  EXPECT_LE(r.max_deviation, config.tolerance);
  EXPECT_EQ(r.boundary_messages, 0u) << "one group has no peers to gossip to";
}

TEST(ShardedConvergence, FourGroupsReachTheSameFixedPoint) {
  ShardedConvergenceConfig config = base_config();
  config.groups = 4;
  const ShardedConvergenceResult r = run_sharded_convergence(config);
  EXPECT_TRUE(r.converged) << "max deviation " << r.max_deviation;
  EXPECT_GT(r.offers_sent, 0u) << "cross-group coupling never gossiped";
  EXPECT_GT(r.boundary_messages, 0u);
  ASSERT_EQ(r.rates.size(), config.conns);
  ASSERT_EQ(r.expected.size(), config.conns);
  for (std::size_t c = 0; c < config.conns; ++c) {
    EXPECT_NEAR(r.rates[c], r.expected[c], config.tolerance) << "conn " << c;
  }
}

TEST(ShardedConvergence, RatesAreInvariantAcrossGroupAndWorkerCounts) {
  ShardedConvergenceConfig config = base_config();
  config.groups = 1;
  const ShardedConvergenceResult at1 = run_sharded_convergence(config);
  ASSERT_TRUE(at1.converged);
  const struct {
    std::size_t groups;
    std::size_t workers;
  } splits[] = {{2, 1}, {2, 2}, {4, 1}, {4, 4}, {8, 4}};
  for (const auto& split : splits) {
    config.groups = split.groups;
    config.workers = split.workers;
    const ShardedConvergenceResult r = run_sharded_convergence(config);
    EXPECT_TRUE(r.converged)
        << "groups=" << split.groups << " workers=" << split.workers
        << " max deviation " << r.max_deviation;
    ASSERT_EQ(r.rates.size(), at1.rates.size());
    for (std::size_t c = 0; c < r.rates.size(); ++c) {
      // Both sides sit within tolerance of the same analytic fixed point.
      EXPECT_NEAR(r.rates[c], at1.rates[c], 2.0 * config.tolerance)
          << "conn " << c << " groups=" << split.groups
          << " workers=" << split.workers;
    }
  }
}

TEST(ShardedConvergence, ReconvergesAfterMidRunPerturbation) {
  ShardedConvergenceConfig config = base_config();
  config.groups = 4;
  config.perturb = true;
  config.perturb_cell = 5;      // owned by group 2 of 4; ripples to the peers
  config.perturb_excess = 2.0;  // shrink below the 8..14 wireless draw range
  config.perturb_time = sim::SimTime::seconds(5.0);
  const ShardedConvergenceResult r = run_sharded_convergence(config);
  EXPECT_TRUE(r.converged) << "max deviation " << r.max_deviation;

  // The perturbed fixed point must actually differ from the unperturbed one,
  // otherwise this test would pass vacuously.
  ShardedConvergenceConfig unperturbed = config;
  unperturbed.perturb = false;
  const ShardedConvergenceResult baseline = run_sharded_convergence(unperturbed);
  ASSERT_EQ(baseline.expected.size(), r.expected.size());
  bool moved = false;
  for (std::size_t c = 0; c < r.expected.size(); ++c) {
    if (std::abs(r.expected[c] - baseline.expected[c]) > config.tolerance) {
      moved = true;
      break;
    }
  }
  EXPECT_TRUE(moved) << "perturbation did not change the fixed point";
}

TEST(ShardedConvergence, DeterministicAcrossRepeatedRuns) {
  ShardedConvergenceConfig config = base_config();
  config.groups = 4;
  config.workers = 4;
  const ShardedConvergenceResult a = run_sharded_convergence(config);
  const ShardedConvergenceResult b = run_sharded_convergence(config);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.boundary_messages, b.boundary_messages);
  EXPECT_EQ(a.offers_sent, b.offers_sent);
  EXPECT_EQ(a.rates, b.rates);  // bitwise: same schedule, same arithmetic
}

}  // namespace
}  // namespace imrm::fault
