#include "qos/packet_sim.h"

#include <algorithm>
#include <cassert>

namespace imrm::qos {

void ScheduledLink::add_flow(FlowId flow, BitsPerSecond reserved_rate) {
  assert(reserved_rate > 0.0);
  rates_[flow] = reserved_rate;
  virtual_clock_[flow] = 0.0;
}

BitsPerSecond ScheduledLink::reserved_total() const {
  BitsPerSecond total = 0.0;
  for (const auto& [flow, rate] : rates_) total += rate;
  return total;
}

void ScheduledLink::enqueue(Packet packet) {
  assert(rates_.contains(packet.flow) && "flow must be registered");
  packet.entered_link = simulator_->now();
  // Virtual Clock stamp: auxVC = max(now, auxVC) + L / rho.
  double& vc = virtual_clock_[packet.flow];
  vc = std::max(simulator_->now().to_seconds(), vc) +
       packet.size / rates_[packet.flow];
  queue_.push(QueuedPacket{vc, next_seq_++, packet});
  if (!busy_) serve_next();
}

void ScheduledLink::serve_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  const QueuedPacket next = queue_.top();
  queue_.pop();
  const double transmission = next.packet.size / capacity_;
  simulator_->after(sim::Duration::seconds(transmission), [this, next] {
    ++served_;
    if (forward_) forward_(next.packet);
    serve_next();
  });
}

void RcspLink::add_flow(FlowId flow, BitsPerSecond reserved_rate, int priority) {
  assert(reserved_rate > 0.0);
  // last_eligible starts far in the past so the first packet is never held.
  flows_[flow] = FlowState{reserved_rate, priority,
                           -std::numeric_limits<double>::infinity()};
}

void RcspLink::enqueue(Packet packet) {
  const auto it = flows_.find(packet.flow);
  assert(it != flows_.end() && "flow must be registered");
  packet.entered_link = simulator_->now();
  FlowState& state = it->second;
  // Rate-jitter regulator: eligible at max(now, last_eligible + L/rho).
  const double eligible = std::max(simulator_->now().to_seconds(),
                                   state.last_eligible + packet.size / state.rate);
  state.last_eligible = eligible;
  const double wait = eligible - simulator_->now().to_seconds();
  const int priority = state.priority;
  if (wait <= 0.0) {
    on_eligible(packet, priority);
  } else {
    simulator_->after(sim::Duration::seconds(wait), [this, packet, priority] {
      on_eligible(packet, priority);
    });
  }
}

void RcspLink::on_eligible(Packet packet, int priority) {
  eligible_[priority].push(packet);
  ++eligible_count_;
  if (!busy_) serve_next();
}

void RcspLink::serve_next() {
  if (eligible_count_ == 0) {
    busy_ = false;
    return;
  }
  busy_ = true;
  // Highest priority (lowest key) non-empty level, FIFO within.
  for (auto& [priority, fifo] : eligible_) {
    if (fifo.empty()) continue;
    const Packet packet = fifo.front();
    fifo.pop();
    --eligible_count_;
    simulator_->after(sim::Duration::seconds(packet.size / capacity_),
                      [this, packet] {
                        ++served_;
                        if (forward_) forward_(packet);
                        serve_next();
                      });
    return;
  }
}

void TokenBucketSource::start(sim::SimTime horizon) {
  last_refill_ = simulator_->now();
  if (config_.greedy) {
    // Dump the whole bucket immediately — the adversarial burst the delay
    // bounds are computed against.
    send_conforming(simulator_->now());
  }
  tick(horizon);
}

void TokenBucketSource::send_conforming(sim::SimTime now) {
  // Refill tokens.
  tokens_ = std::min(config_.sigma,
                     tokens_ + config_.rho * (now - last_refill_).to_seconds());
  last_refill_ = now;
  while (tokens_ >= config_.packet_size) {
    tokens_ -= config_.packet_size;
    Packet packet;
    packet.flow = config_.flow;
    packet.size = config_.packet_size;
    packet.created = now;
    ++sent_;
    emit_(packet);
  }
}

void TokenBucketSource::tick(sim::SimTime horizon) {
  // Next emission opportunity: greedy sources wake exactly when the next
  // packet's worth of tokens has accumulated; randomized sources draw an
  // exponential gap (conformance still enforced by the bucket).
  double gap = config_.packet_size / config_.rho;
  if (!config_.greedy) {
    gap = rng_.exponential_mean(gap);
  }
  const sim::SimTime at = simulator_->now() + sim::Duration::seconds(gap);
  if (at > horizon) return;
  simulator_->at(at, [this, horizon] {
    send_conforming(simulator_->now());
    tick(horizon);
  });
}

}  // namespace imrm::qos
