// Bounded ring buffer with oldest-element eviction.
//
// The storage primitive under both the structured tracer (obs::Tracer) and
// the CSV trace recorder (trace::TraceRecorder): a fixed-capacity window of
// the most recent records plus a counter of everything that was evicted, so
// long runs observe bounded memory while the exporter can still report how
// much history was lost. Capacity 0 means "unbounded" (plain append), which
// keeps the pre-observability TraceRecorder semantics available.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace imrm::obs {

template <typename T>
class RingBuffer {
 public:
  /// capacity == 0: unbounded append-only log.
  explicit RingBuffer(std::size_t capacity = 0) : capacity_(capacity) {
    if (capacity_ != 0) data_.reserve(capacity_);
  }

  void push(T value) {
    if (capacity_ == 0 || data_.size() < capacity_) {
      data_.push_back(std::move(value));
      return;
    }
    // Full: overwrite the oldest element in place.
    data_[head_] = std::move(value);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }

  /// Number of elements currently retained.
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  /// Elements evicted to make room (0 until the buffer wraps).
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Configured capacity; 0 = unbounded.
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// i-th retained element in insertion order (0 = oldest retained).
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return data_[(head_ + i) % data_.size()];
  }

  template <typename F>
  void for_each(F&& f) const {
    const std::size_t n = data_.size();
    for (std::size_t i = 0; i < n; ++i) f(data_[(head_ + i) % n]);
  }

  [[nodiscard]] std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(data_.size());
    for_each([&out](const T& v) { out.push_back(v); });
    return out;
  }

  void clear() {
    data_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  std::vector<T> data_;
  std::size_t head_ = 0;  // index of the oldest element once wrapped
  std::size_t capacity_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace imrm::obs
