#!/usr/bin/env python3
"""Regression gate between two BENCH_N.json perf trajectories (stdlib only).

Usage:
  tools/bench_compare.py OLD.json NEW.json [options]
  tools/bench_compare.py --self-test

Compares every numeric metric the two trajectories share, classifying each
key by name into a direction + noise threshold (see THRESHOLDS below), and
fails loudly on the two mistakes perf trajectories historically invite:

 * Workload drift. If the pinned campus flags change between trajectories,
   the numbers measure different work and any delta is meaningless. Every
   scenario_cli/* entry carries the `config` fingerprint the CLI echoed;
   any mismatch is a hard refusal (exit 2) unless --allow-config-change is
   given. Deterministic outputs
   (events_fired, bytes_per_portable) must be bit-identical for the same
   config — drift there is a behavior change, not noise (exit 1).

 * Cross-host comparison. Wall-clock numbers from different machines are
   not comparable; entries (and the optional top-level `_meta` header)
   carry host_cpus, and a mismatch refuses with exit 2 unless
   --allow-cross-host.

Noise thresholds are deliberately generous: these trajectories are measured
on shared single-socket CI boxes where 20-30% run-to-run swing on a
microbenchmark is routine. The gate is meant to catch step changes (2x
slowdowns, vanished benchmarks, behavior drift), not to police single-digit
percent. Tighten per key with --threshold when a stabler host warrants it.

Exit codes:
  0  clean — every shared metric within threshold
  1  regression: a metric beyond its threshold, a deterministic value that
     drifted, or a previously-present metric that vanished
  2  refusal or usage error: cross-host / config mismatch / unreadable input

Keys never gated: the `profile` block (wall-clock attribution varies per
run and per shard count by design), `config` and `host_cpus` (handled by
the refusal checks above), and the `_meta` header.
"""

import argparse
import json
import re
import signal
import sys

if hasattr(signal, "SIGPIPE"):  # `bench_compare ... | head` should not traceback
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)

# (pattern, direction, relative tolerance). First match wins; direction is
# "higher" (bigger is better), "lower" (smaller is better) or "exact"
# (deterministic — any drift fails). Keys matching nothing are reported as
# informational only.
THRESHOLDS = [
    # The service's virtual-pacing run is a deterministic co-simulation:
    # every counter and virtual-time latency percentile under it must
    # reproduce bit-exactly at the pinned flags (ISSUE 8).
    (r"/service/virtual/", "exact", 0.0),
    # The closed adaptation loop (ISSUE 9) is a deterministic co-simulation
    # at the pinned flags: renegotiation counts, breach windows, shaper
    # conformance bits and the granted-rate trajectory (prefault/min/final)
    # must reproduce bit-exactly run over run. Only its events/s — the one
    # wall-dependent number in the entry — falls through to the generic
    # throughput tolerance below.
    (r"/campus_adapt/renegotiations_", "exact", 0.0),
    (r"/campus_adapt/windows_", "exact", 0.0),
    (r"/campus_adapt/granted_", "exact", 0.0),
    (r"/campus_adapt/\w*_bits$", "exact", 0.0),
    (r"events_fired$", "exact", 0.0),
    # The window-batched sharded grid campus (ISSUE 10): the window sequence
    # and boundary-message totals are part of the determinism contract —
    # invariant across shard and batch counts, so any drift at the pinned
    # flags is a behavior change. (The dispatch/barrier count lives in the
    # ungated profile block: it legitimately varies with the adaptive batch
    # controller and the host.)
    (r"/campus_scale_sharded/(windows|boundary_messages)$", "exact", 0.0),
    # Memory per portable is allocation-deterministic (no wall noise) but
    # moves when a container policy legitimately changes (e.g. the ISSUE 8
    # lazy-growth history ring); gate the direction tightly instead of
    # requiring bit-equality so improvements land without ceremony.
    (r"bytes_per_portable$", "lower", 0.05),
    # The runtime-disabled profiler/tracer guards run at 1-2 cycles per op;
    # at that scale relative deltas measure instruction alignment of the
    # benchmark loop (any unrelated code added to the binary shifts it), not
    # the guard itself. Gate them loosely on the order of magnitude; the
    # *enabled* paths (BM_ProfilerScope/1 etc.) keep the normal tolerances.
    (r"BM_ProfilerScope/0/items_per_second$", "higher", 0.80),
    (r"BM_ProfilerScope/0/real_time_ns$", "lower", 4.00),
    (r"real_time_ns$", "lower", 0.50),
    (r"items_per_second$", "higher", 0.40),
    (r"events_per_second", "higher", 0.40),
    # Wall-clock service capacity and its throughput under 1.5x overload.
    (r"saturation_rps$", "higher", 0.40),
    (r"sustained_rps$", "higher", 0.40),
    # Wall latency percentiles swing hard on shared boxes; gate step changes.
    (r"latency_p\d+_us$", "lower", 1.00),
    (r"handoff_wall_us", "lower", 1.50),
    (r"wall_seconds$", "lower", 1.00),
    (r"speedup", "higher", 0.50),
    (r"ratio$", "higher", 0.30),
]

SKIP_SUBTREES = {"config", "profile"}
SKIP_KEYS = {"host_cpus"}


def classify(path):
    for pattern, direction, tol in THRESHOLDS:
        if re.search(pattern, path):
            return direction, tol
    return None, None


def flatten(node, prefix="", out=None):
    """Numeric leaves, keyed by /-joined path; config/profile subtrees and
    the _meta header never participate in the metric diff."""
    if out is None:
        out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            if key in SKIP_SUBTREES or key in SKIP_KEYS:
                continue
            if not prefix and key == "_meta":
                continue
            flatten(value, f"{prefix}/{key}" if prefix else key, out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = float(node)
    return out


def host_of(trajectory):
    """host_cpus from the _meta header, else the per-entry consensus."""
    meta = trajectory.get("_meta", {})
    if isinstance(meta.get("host_cpus"), int):
        return meta["host_cpus"]
    seen = {
        entry["host_cpus"]
        for entry in trajectory.values()
        if isinstance(entry, dict) and isinstance(entry.get("host_cpus"), int)
    }
    return seen.pop() if len(seen) == 1 else None


def config_fingerprints(trajectory):
    return {
        name: entry["config"]
        for name, entry in trajectory.items()
        if isinstance(entry, dict) and isinstance(entry.get("config"), dict)
    }


def apply_overrides(overrides):
    for spec in overrides:
        pattern, _, tol = spec.partition("=")
        if not tol:
            sys.exit(f"bench_compare: bad --threshold {spec!r} "
                     "(expected PATTERN=FRACTION)")
        direction, _ = classify(pattern)
        THRESHOLDS.insert(0, (pattern, direction or "lower", float(tol)))


def compare(old, new, args, out=sys.stdout):
    """Returns the exit code; prints one line per finding."""
    refusals = []
    old_host, new_host = host_of(old), host_of(new)
    if old_host is not None and new_host is not None and old_host != new_host:
        message = (f"host mismatch: old measured on {old_host} cpus, new on "
                   f"{new_host} — wall-clock trajectories are not comparable "
                   "across machines")
        if args.allow_cross_host:
            print(f"note (allowed): {message}", file=out)
        else:
            refusals.append(message)

    old_configs, new_configs = config_fingerprints(old), config_fingerprints(new)
    for name in sorted(set(old_configs) & set(new_configs)):
        if old_configs[name] != new_configs[name]:
            changed = sorted(
                k for k in set(old_configs[name]) | set(new_configs[name])
                if old_configs[name].get(k) != new_configs[name].get(k))
            message = (f"{name}: workload change — config keys {changed} "
                       "differ; the numbers measure different work")
            if args.allow_config_change:
                print(f"note (allowed): {message}", file=out)
            else:
                refusals.append(message)
    if refusals:
        for message in refusals:
            print(f"REFUSED: {message}", file=out)
        return 2

    old_metrics, new_metrics = flatten(old), flatten(new)
    regressions = []
    improvements = 0
    compared = 0
    for path in sorted(set(old_metrics) - set(new_metrics)):
        if classify(path)[0] is not None:
            regressions.append(f"{path}: metric vanished from the new "
                               "trajectory (was {:g})".format(old_metrics[path]))
    for path in sorted(set(new_metrics) - set(old_metrics)):
        if args.list:
            print(f"added: {path} = {new_metrics[path]:g}", file=out)

    for path in sorted(set(old_metrics) & set(new_metrics)):
        direction, tol = classify(path)
        a, b = old_metrics[path], new_metrics[path]
        if direction is None:
            if args.list:
                print(f"info: {path}: {a:g} -> {b:g}", file=out)
            continue
        compared += 1
        if direction == "exact":
            if a != b:
                regressions.append(
                    f"{path}: deterministic value drifted {a:g} -> {b:g} "
                    "(same config must reproduce identical output)")
            elif args.list:
                print(f"ok: {path}: {a:g} (exact)", file=out)
            continue
        if a == 0:
            continue
        change = b / a - 1.0
        regressed = (change < -tol) if direction == "higher" else (change > tol)
        if regressed:
            regressions.append(
                f"{path}: {a:g} -> {b:g} ({change:+.1%}, tolerance "
                f"{'-' if direction == 'higher' else '+'}{tol:.0%} for "
                f"{direction}-is-better)")
        else:
            if (change > tol) if direction == "higher" else (change < -tol):
                improvements += 1
            if args.list:
                print(f"ok: {path}: {a:g} -> {b:g} ({change:+.1%})", file=out)

    for message in regressions:
        print(f"REGRESSION: {message}", file=out)
    print(f"bench_compare: {compared} gated metrics, "
          f"{len(regressions)} regression(s), "
          f"{improvements} improvement(s) beyond noise", file=out)
    return 1 if regressions else 0


# --------------------------------------------------------------------------
# --self-test: synthesized fixtures exercising every exit path.

def _fixture(events_per_second=1000.0, real_time_ns=50.0, events_fired=777,
             host_cpus=1, attendees="20", virtual_shed=2500,
             saturation_rps=40000.0, overload_p99=800.0,
             adapt_renegotiations=204, adapt_final_bps=1024000.0,
             scale_windows=2161, scale_barriers=28):
    return {
        "_meta": {"host_cpus": host_cpus},
        "BM_Sample/8": {"items_per_second": 4.0e6, "real_time_ns": real_time_ns},
        "scenario_cli/campus": {
            "host_cpus": host_cpus,
            "config": {"attendees": attendees, "seed": "5"},
            "events_per_second": events_per_second,
            "events_fired": events_fired,
            "profile": {"shards": [{"busy_frac": 0.5}]},
        },
        "scenario_cli/service": {
            "host_cpus": host_cpus,
            "config": {"rate": "7500.0", "seed": "11"},
            "virtual": {"offered": 37500, "shed": virtual_shed,
                        "latency_p99_us": 3000.0},
            "saturation_rps": saturation_rps,
            "overload": {"offered_rps": saturation_rps * 1.5,
                         "sustained_rps": saturation_rps * 0.95,
                         "latency_p99_us": overload_p99,
                         "shed_fraction": 0.33},
        },
        "scenario_cli/campus_adapt": {
            "host_cpus": host_cpus,
            "config": {"adapt-loop": "1", "seed": "5"},
            "events_per_second": 500000.0,
            "renegotiations_accepted": adapt_renegotiations,
            "windows_breached": 30,
            "granted_final_bps": adapt_final_bps,
            "nonconforming_bits": 8.0e6,
        },
        "scenario_cli/campus_scale_sharded": {
            "host_cpus": host_cpus,
            "config": {"cells": "100", "portables": "10000", "shards": "8"},
            "events_fired": 283900,
            "events_per_second": {"1": 2.0e6, "2": 1.8e6},
            "windows": scale_windows,
            "boundary_messages": 559480,
            "profile": {"barriers": scale_barriers, "windows": scale_windows,
                        "realized_batch": scale_windows / scale_barriers},
        },
    }


def self_test():
    import copy
    import io

    class A:
        allow_cross_host = False
        allow_config_change = False
        list = False

    def run(old, new, allow_host=False, allow_config=False):
        args = A()
        args.allow_cross_host = allow_host
        args.allow_config_change = allow_config
        return compare(old, new, args, out=io.StringIO())

    base = _fixture()
    checks = []
    checks.append(("identical trajectories pass", run(base, base) == 0))
    checks.append(("small throughput wiggle passes",
                   run(base, _fixture(events_per_second=900.0)) == 0))
    checks.append(("large throughput drop fails",
                   run(base, _fixture(events_per_second=400.0)) == 1))
    checks.append(("large latency growth fails",
                   run(base, _fixture(real_time_ns=200.0)) == 1))
    checks.append(("deterministic drift fails",
                   run(base, _fixture(events_fired=778)) == 1))
    checks.append(("cross-host refused",
                   run(base, _fixture(host_cpus=8)) == 2))
    checks.append(("cross-host allowed with flag",
                   run(base, _fixture(host_cpus=8), allow_host=True) == 0))
    checks.append(("workload change refused",
                   run(base, _fixture(attendees="40", events_fired=999)) == 2))
    checks.append(("workload change allowed (but determinism then fails)",
                   run(base, _fixture(attendees="40", events_fired=999),
                       allow_config=True) == 1))
    checks.append(("service virtual drift fails (exact gate)",
                   run(base, _fixture(virtual_shed=2501)) == 1))
    checks.append(("service capacity halving fails",
                   run(base, _fixture(saturation_rps=18000.0)) == 1))
    checks.append(("service capacity wiggle passes",
                   run(base, _fixture(saturation_rps=32000.0)) == 0))
    checks.append(("overload p99 step change fails",
                   run(base, _fixture(overload_p99=2500.0)) == 1))
    checks.append(("overload p99 wiggle passes",
                   run(base, _fixture(overload_p99=1400.0)) == 0))
    checks.append(("adapt renegotiation drift fails (exact gate)",
                   run(base, _fixture(adapt_renegotiations=205)) == 1))
    checks.append(("adapt grant trajectory drift fails (exact gate)",
                   run(base, _fixture(adapt_final_bps=1023999.0)) == 1))
    checks.append(("sharded scale window drift fails (exact gate)",
                   run(base, _fixture(scale_windows=2162)) == 1))
    checks.append(("sharded scale barrier count never gated",
                   run(base, _fixture(scale_barriers=2161)) == 0))
    vanished = copy.deepcopy(base)
    del vanished["BM_Sample/8"]
    checks.append(("vanished benchmark fails", run(base, vanished) == 1))
    grew = copy.deepcopy(base)
    grew["scenario_cli/campus"]["profile"] = {"shards": [{"busy_frac": 0.01}]}
    checks.append(("profile block never gated", run(base, grew) == 0))

    failed = [name for name, ok in checks if not ok]
    for name, ok in checks:
        print(f"{'ok' if ok else 'FAIL'}: {name}")
    if failed:
        print(f"self-test: {len(failed)} of {len(checks)} checks failed",
              file=sys.stderr)
        return 1
    print(f"self-test: all {len(checks)} checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Perf-trajectory regression gate; see module docstring.")
    parser.add_argument("old", nargs="?", help="baseline BENCH_N.json")
    parser.add_argument("new", nargs="?", help="candidate BENCH_M.json")
    parser.add_argument("--allow-cross-host", action="store_true",
                        help="compare despite differing host_cpus")
    parser.add_argument("--allow-config-change", action="store_true",
                        help="compare despite workload-config drift")
    parser.add_argument("--list", action="store_true",
                        help="print every comparison, not just findings")
    parser.add_argument("--threshold", action="append", default=[],
                        metavar="PATTERN=FRACTION",
                        help="override the tolerance for keys matching the "
                             "regex PATTERN (prepended, so it wins)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in fixture checks and exit")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if not args.old or not args.new:
        parser.error("need OLD.json and NEW.json (or --self-test)")
    apply_overrides(args.threshold)
    try:
        with open(args.old) as f:
            old = json.load(f)
        with open(args.new) as f:
            new = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: {err}")
    sys.exit(compare(old, new, args))


if __name__ == "__main__":
    main()
