// Tests for the experiment harnesses: the classroom (Figure 5), the
// two-cell probabilistic admission sim (Figure 6), and the Figure 4 office
// mobility experiment. These pin down the qualitative results the paper
// reports — who wins, by roughly what factor.
#include <gtest/gtest.h>

#include "experiments/campus_day.h"
#include "experiments/classroom.h"
#include "experiments/fig4_mobility.h"
#include "experiments/twocell.h"

namespace imrm::experiments {
namespace {

ClassroomConfig classroom_config(std::size_t size, PolicyKind policy) {
  ClassroomConfig c;
  c.class_size = size;
  c.meeting = {sim::SimTime::minutes(60), sim::SimTime::minutes(110), size};
  c.policy = policy;
  c.seed = 7;
  return c;
}

TEST(Classroom, OfferedLoadsMatchPaper) {
  // floor(N/4) at 64 kbps + rest at 16 kbps gives exactly 59% and 94%.
  const auto lecture = run_classroom(classroom_config(35, PolicyKind::kNone));
  EXPECT_NEAR(lecture.offered_load, 0.59, 1e-9);
  const auto lab = run_classroom(classroom_config(55, PolicyKind::kNone));
  EXPECT_NEAR(lab.offered_load, 0.94, 1e-9);
}

TEST(Classroom, MeetingRoomPolicyNeverDrops) {
  for (std::size_t size : {35u, 55u}) {
    const auto r = run_classroom(classroom_config(size, PolicyKind::kMeetingRoom));
    EXPECT_EQ(r.connection_drops, 0u) << "size=" << size;
  }
}

TEST(Classroom, BruteForceDropsGrowWithLoad) {
  const auto lecture = run_classroom(classroom_config(35, PolicyKind::kBruteForce));
  const auto lab = run_classroom(classroom_config(55, PolicyKind::kBruteForce));
  EXPECT_GT(lecture.connection_drops, 0u);
  EXPECT_GT(lab.connection_drops, lecture.connection_drops);
}

TEST(Classroom, PaperDropOrdering) {
  // brute force >= aggregate >= meeting room, at both loads.
  for (std::size_t size : {35u, 55u}) {
    const auto brute = run_classroom(classroom_config(size, PolicyKind::kBruteForce));
    const auto aggregate = run_classroom(classroom_config(size, PolicyKind::kAggregate));
    const auto meeting = run_classroom(classroom_config(size, PolicyKind::kMeetingRoom));
    EXPECT_GE(brute.connection_drops, aggregate.connection_drops) << size;
    EXPECT_GE(aggregate.connection_drops, meeting.connection_drops) << size;
  }
}

TEST(Classroom, SeedSevenMatchesPaperBruteForceCounts) {
  // With the calibrated walker stream, seed 7 reproduces the published
  // counts exactly: 2 drops at 59% load, 7 at 94%.
  EXPECT_EQ(run_classroom(classroom_config(35, PolicyKind::kBruteForce)).connection_drops,
            2u);
  EXPECT_EQ(run_classroom(classroom_config(55, PolicyKind::kBruteForce)).connection_drops,
            7u);
}

TEST(Classroom, HandoffSeriesHaveTheFigureFiveShape) {
  const auto r = run_classroom(classroom_config(35, PolicyKind::kMeetingRoom));
  // All attendees enter the room exactly once and leave exactly once.
  EXPECT_DOUBLE_EQ(r.into_room.total(), 35.0);
  EXPECT_DOUBLE_EQ(r.out_of_room.total(), 35.0);
  // Entries cluster around the class start (minute 60): the peak bin lies
  // in [52, 62].
  std::size_t peak_bin = 0;
  for (std::size_t i = 0; i < r.into_room.bin_count(); ++i) {
    if (r.into_room.bin_value(i) > r.into_room.bin_value(peak_bin)) peak_bin = i;
  }
  EXPECT_GE(r.into_room.bin_start(peak_bin).to_minutes(), 52.0);
  EXPECT_LE(r.into_room.bin_start(peak_bin).to_minutes(), 62.0);
  // Exits cluster right after the class end (minute 110).
  std::size_t exit_peak = 0;
  for (std::size_t i = 0; i < r.out_of_room.bin_count(); ++i) {
    if (r.out_of_room.bin_value(i) > r.out_of_room.bin_value(exit_peak)) exit_peak = i;
  }
  EXPECT_GE(r.out_of_room.bin_start(exit_peak).to_minutes(), 109.0);
  EXPECT_LE(r.out_of_room.bin_start(exit_peak).to_minutes(), 116.0);
  // Corridor activity outside exceeds the entries (Figure 5.b vs 5.a).
  EXPECT_GT(r.outside_room.total(), r.into_room.total());
}

// Sweep across class sizes: the ordering invariant and the meeting-room
// zero-drop guarantee hold at every load level, not only the paper's two.
class ClassroomSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ClassroomSizes, OrderingAndZeroDropInvariants) {
  const std::size_t size = GetParam();
  const auto brute = run_classroom(classroom_config(size, PolicyKind::kBruteForce));
  const auto aggregate = run_classroom(classroom_config(size, PolicyKind::kAggregate));
  const auto meeting = run_classroom(classroom_config(size, PolicyKind::kMeetingRoom));
  EXPECT_EQ(meeting.connection_drops, 0u);
  EXPECT_GE(brute.connection_drops, aggregate.connection_drops);
  EXPECT_GE(aggregate.connection_drops, meeting.connection_drops);
  // Offered load follows the deterministic mix: floor(N/4)*64 + rest*16.
  const double expected_load =
      (double(size / 4) * 64.0 + double(size - size / 4) * 16.0) * 1000.0 / 1.6e6;
  EXPECT_NEAR(brute.offered_load, expected_load, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClassroomSizes, ::testing::Values(20u, 35u, 45u, 55u));

TEST(Classroom, Deterministic) {
  const auto a = run_classroom(classroom_config(35, PolicyKind::kBruteForce));
  const auto b = run_classroom(classroom_config(35, PolicyKind::kBruteForce));
  EXPECT_EQ(a.connection_drops, b.connection_drops);
  EXPECT_EQ(a.walkers, b.walkers);
}

// ---- two-cell (Figure 6) -------------------------------------------------

TwoCellConfig twocell_config(double window, double p_qos, AdmissionRule rule) {
  TwoCellConfig c;
  c.window = window;
  c.p_qos = p_qos;
  c.rule = rule;
  c.duration = 300.0;
  c.seed = 3;
  return c;
}

TEST(TwoCell, TradeoffPbVersusPd) {
  // Loosening P_QOS admits more (lower P_b) at the cost of more handoff
  // drops (higher P_d) — the fundamental Figure 6 tradeoff.
  const auto strict =
      run_twocell(twocell_config(0.05, 0.002, AdmissionRule::kProbabilistic));
  const auto loose =
      run_twocell(twocell_config(0.05, 0.5, AdmissionRule::kProbabilistic));
  EXPECT_GT(strict.p_block(), loose.p_block());
  EXPECT_LE(strict.p_drop(), loose.p_drop());
}

TEST(TwoCell, DropTargetRoughlyHonored) {
  // P_d should stay in the neighbourhood of (usually below) P_QOS.
  for (double p_qos : {0.01, 0.05}) {
    const auto r = run_twocell(twocell_config(0.05, p_qos, AdmissionRule::kProbabilistic));
    EXPECT_LT(r.p_drop(), p_qos * 2.0) << "p_qos=" << p_qos;
  }
}

TEST(TwoCell, NoReservationMaximizesDrops) {
  const auto none = run_twocell(twocell_config(0.05, 0.01, AdmissionRule::kNoReservation));
  const auto prob = run_twocell(twocell_config(0.05, 0.01, AdmissionRule::kProbabilistic));
  EXPECT_GE(none.p_drop(), prob.p_drop());
  EXPECT_LE(none.p_block(), prob.p_block());
}

TEST(TwoCell, ProbabilisticBeatsStaticAtEqualBlocking) {
  // The paper's closing claim: the probabilistic algorithm outperforms
  // static reservation. Find a static guard whose P_b is close to the
  // probabilistic rule's, then compare P_d.
  const auto prob = run_twocell(twocell_config(0.05, 0.02, AdmissionRule::kProbabilistic));
  TwoCellResult best_static;
  double best_gap = 1e9;
  for (double guard : {0.05, 0.10, 0.15, 0.20, 0.25}) {
    auto config = twocell_config(0.05, 0.0, AdmissionRule::kStaticGuard);
    config.guard_fraction = guard;
    const auto r = run_twocell(config);
    const double gap = std::abs(r.p_block() - prob.p_block());
    if (gap < best_gap) {
      best_gap = gap;
      best_static = r;
    }
  }
  // At comparable blocking, the probabilistic rule drops no more handoffs.
  EXPECT_LE(prob.p_drop(), best_static.p_drop() + 0.01);
}

TEST(TwoCell, Deterministic) {
  const auto a = run_twocell(twocell_config(0.05, 0.01, AdmissionRule::kProbabilistic));
  const auto b = run_twocell(twocell_config(0.05, 0.01, AdmissionRule::kProbabilistic));
  EXPECT_EQ(a.new_attempts, b.new_attempts);
  EXPECT_EQ(a.handoff_dropped, b.handoff_dropped);
}

TEST(TwoCell, WarmupExcludesEarlyEvents) {
  auto with_warmup = twocell_config(0.05, 0.01, AdmissionRule::kProbabilistic);
  auto without = with_warmup;
  without.warmup = 0.0;
  EXPECT_LT(run_twocell(with_warmup).new_attempts, run_twocell(without).new_attempts);
}

// ---- Figure 4 -------------------------------------------------------------

TEST(Fig4, FanoutFractionsMatchMeasurements) {
  Fig4Config config;
  config.hours = 400.0;
  const Fig4Result r = run_fig4(config);

  ASSERT_GT(r.faculty.total(), 50u);
  EXPECT_NEAR(double(r.faculty.to_a) / double(r.faculty.total()), 94.0 / 127.0, 0.10);
  ASSERT_GT(r.students.total(), 100u);
  EXPECT_NEAR(double(r.students.toward_b) / double(r.students.total()), 173.0 / 218.0,
              0.10);
  ASSERT_GT(r.others.total(), 500u);
  EXPECT_NEAR(double(r.others.to_a) / double(r.others.total()), 39.0 / 1384.0, 0.03);
}

TEST(Fig4, PortableProfilePredictionIsAccurate) {
  Fig4Config config;
  config.hours = 200.0;
  const Fig4Result r = run_fig4(config);
  // Habitual users are predictable: the level-1 predictor should beat 75%
  // (the faculty member goes to A 74% of the time from the decision point,
  // and most other states are deterministic walks).
  ASSERT_GT(r.portable_profile.predictions, 1000u);
  EXPECT_GT(r.portable_profile.accuracy(), 0.75);
}

TEST(Fig4, BruteForceReservationIsWasteful) {
  Fig4Config config;
  config.hours = 100.0;
  const Fig4Result r = run_fig4(config);
  // Brute force reserves in every neighbor; the predictive scheme reserves
  // once per handoff. The measured factor should be well above 2x.
  ASSERT_GT(r.total_handoffs, 0u);
  EXPECT_GT(double(r.brute_force_reservations),
            2.0 * double(r.predictive_reservations));
  // And the predictive reservations are mostly *useful*.
  EXPECT_GT(double(r.predictive_hits) / double(r.predictive_reservations), 0.7);
}

TEST(Fig4, Deterministic) {
  Fig4Config config;
  config.hours = 20.0;
  const auto a = run_fig4(config);
  const auto b = run_fig4(config);
  EXPECT_EQ(a.total_handoffs, b.total_handoffs);
  EXPECT_EQ(a.faculty.to_a, b.faculty.to_a);
}

}  // namespace
}  // namespace imrm::experiments

// ---- the combination experiment (campus day) ------------------------------

namespace imrm::experiments {
namespace {

CampusDayResult campus(CampusPolicy policy) {
  CampusDayConfig config;
  config.policy = policy;
  return run_campus_day(config);
}

TEST(CampusDay, DispatcherProtectsTheMeetingBest) {
  const auto none = campus(CampusPolicy::kNone);
  const auto dispatcher = campus(CampusPolicy::kDispatcher);
  EXPECT_GT(none.attendee_drops, 0u);  // squatters win without reservations
  EXPECT_LT(dispatcher.attendee_drops, none.attendee_drops);
  // The dispatcher pays with squatter blocking during the booking window.
  EXPECT_GT(dispatcher.squatter_blocks, none.squatter_blocks);
}

TEST(CampusDay, EveryReservationPolicyBeatsNone) {
  const auto none = campus(CampusPolicy::kNone);
  for (CampusPolicy policy : {CampusPolicy::kStatic, CampusPolicy::kBruteForce,
                              CampusPolicy::kAggregate, CampusPolicy::kDispatcher}) {
    const auto r = campus(policy);
    EXPECT_LE(r.attendee_drops, none.attendee_drops) << r.policy;
  }
}

TEST(CampusDay, NoReservationNeverBlocksEarlySquatters) {
  const auto none = campus(CampusPolicy::kNone);
  EXPECT_EQ(none.squatter_blocks, 0u);
  EXPECT_EQ(none.squatter_admits, 10u);
}

TEST(CampusDay, Deterministic) {
  const auto a = campus(CampusPolicy::kDispatcher);
  const auto b = campus(CampusPolicy::kDispatcher);
  EXPECT_EQ(a.attendee_drops, b.attendee_drops);
  EXPECT_EQ(a.squatter_blocks, b.squatter_blocks);
}

}  // namespace
}  // namespace imrm::experiments
