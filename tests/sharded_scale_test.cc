// run_campus_scale_sharded (ISSUE 10 tentpole): the grid campus executed as
// one ShardedRunner domain per cell. The engine is its own oracle — the
// contract under test is byte-identity of every result field and of the
// exported metrics JSON across all (shards, batch) pairs, not agreement
// with the monolithic engines (see campus_scale.h for why the decision
// streams differ).
#include <cstdint>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "experiments/campus_scale.h"
#include "obs/metrics.h"

namespace imrm::experiments {
namespace {

CampusScaleConfig small_config() {
  CampusScaleConfig config;
  config.cells = 25;
  config.portables = 200;
  config.duration = sim::Duration::seconds(1200);
  config.tick = sim::Duration::seconds(5);
  config.seed = 7;
  return config;
}

struct Outcome {
  CampusScaleResult result;
  std::string metrics_json;
};

Outcome run(std::size_t shards, std::size_t batch) {
  obs::Registry registry;
  CampusScaleConfig config = small_config();
  config.shards = shards;
  config.batch = batch;
  config.metrics = &registry;
  Outcome out;
  out.result = run_campus_scale_sharded(config);
  std::ostringstream os;
  registry.snapshot().write_json(os);
  out.metrics_json = os.str();
  return out;
}

TEST(ShardedScale, ByteIdenticalAcrossShardAndBatchCounts) {
  const Outcome base = run(/*shards=*/1, /*batch=*/1);
  ASSERT_GT(base.result.events, 0u);
  ASSERT_GT(base.result.handoffs, 0u);
  for (const std::size_t shards : {std::size_t(1), std::size_t(2), std::size_t(4)}) {
    for (const std::size_t batch : {std::size_t(1), std::size_t(8),
                                    std::size_t(64), std::size_t(0)}) {
      const Outcome got = run(shards, batch);
      const std::string label =
          "shards=" + std::to_string(shards) + " batch=" + std::to_string(batch);
      EXPECT_EQ(got.result.outcome_hash, base.result.outcome_hash) << label;
      EXPECT_EQ(got.result.events, base.result.events) << label;
      EXPECT_EQ(got.result.handoffs, base.result.handoffs) << label;
      EXPECT_EQ(got.result.new_admitted, base.result.new_admitted) << label;
      EXPECT_EQ(got.result.new_blocked, base.result.new_blocked) << label;
      EXPECT_EQ(got.result.handoff_admitted, base.result.handoff_admitted) << label;
      EXPECT_EQ(got.result.handoff_dropped, base.result.handoff_dropped) << label;
      EXPECT_EQ(got.result.reservations_placed, base.result.reservations_placed)
          << label;
      EXPECT_EQ(got.result.departures, base.result.departures) << label;
      // Execution-invariant runner totals: the window sequence and boundary
      // traffic are part of the determinism contract...
      EXPECT_EQ(got.result.windows, base.result.windows) << label;
      EXPECT_EQ(got.result.boundary_messages, base.result.boundary_messages)
          << label;
      // ...and the exported metrics (which include shard.windows /
      // shard.boundary_messages but deliberately NOT dispatches) must render
      // to the same bytes.
      EXPECT_EQ(got.metrics_json, base.metrics_json) << label;
    }
  }
}

TEST(ShardedScale, EveryPortableAppearsAndDeparts) {
  const Outcome out = run(2, 0);
  EXPECT_EQ(out.result.departures, small_config().portables);
  // Every departure was preceded by an appear-admission attempt.
  EXPECT_EQ(out.result.new_admitted + out.result.new_blocked,
            small_config().portables);
}

TEST(ShardedScale, DispatchesVaryWithBatchButNeverLeak) {
  // dispatches is the one execution-dependent statistic: batch=1 pays one
  // coordinator dispatch per populated burst, batch=64 collapses them. It
  // lives in CampusScaleResult for the bench harness but must stay out of
  // the metrics registry — asserted here so a future edit can't silently
  // turn an execution knob into a golden output.
  const Outcome unbatched = run(2, 1);
  const Outcome batched = run(2, 64);
  EXPECT_GT(unbatched.result.dispatches, batched.result.dispatches);
  EXPECT_EQ(unbatched.metrics_json, batched.metrics_json);
  EXPECT_EQ(unbatched.metrics_json.find("dispatch"), std::string::npos);
}

TEST(ShardedScale, SeedChangesOutcome) {
  obs::Registry registry;
  CampusScaleConfig config = small_config();
  config.seed = 8;
  const CampusScaleResult other = run_campus_scale_sharded(config);
  EXPECT_NE(other.outcome_hash, run(1, 1).result.outcome_hash);
}

}  // namespace
}  // namespace imrm::experiments
