// The full mixed wired/wireless environment of Section 4.
//
// Where core::Environment models only the scarce wireless cells,
// NetworkEnvironment builds the complete substrate: a wired backbone with a
// correspondent server, one base station per cell, a shared wireless link
// per cell, and runs the paper's whole pipeline over it —
//
//   * end-to-end Table 2 admission (forward pass / destination test /
//     reverse-pass reservation) over the routed path for every connection,
//   * multicast branches to all neighboring base stations so a handoff
//     finds warm state (branch admission failures are never fatal),
//   * advance reservation of b_min on the predicted next cell's wireless
//     link (b_resv,l), consumable only by the predicted handoff,
//   * handoff processing: re-route, handoff-class admission at the new
//     wireless link, drop accounting,
//   * max-min conflict resolution across the whole network for static
//     portables' connections (Section 5.2 via maxmin::resolve_conflicts).
#pragma once

#include <optional>
#include <unordered_map>

#include "mobility/manager.h"
#include "net/multicast.h"
#include "net/network_state.h"
#include "prediction/predictor.h"
#include "profiles/universe.h"
#include "sim/simulator.h"

namespace imrm::core {

using mobility::CellId;
using net::PortableId;

/// All wireless traffic is uplink (portable -> base station) or downlink
/// (base station -> portable) — Section 3.1. The direction decides the
/// orientation of the routed path.
enum class Direction { kDownlink, kUplink };

struct BackboneConfig {
  qos::BitsPerSecond wireless_capacity = qos::mbps(1.6);
  qos::BitsPerSecond wired_capacity = qos::mbps(45.0);  // T3 backbone links
  qos::Bits wired_buffer = 8e6;
  qos::Bits wireless_buffer = 2e6;
  double wireless_error_prob = 0.005;
  qos::Scheduler scheduler = qos::Scheduler::kWfq;
  sim::Duration static_threshold = sim::Duration::minutes(3);
  /// Set up multicast branches to neighbor cells on connection open and
  /// after each handoff (Section 4's transient-reduction mechanism).
  bool enable_multicast = true;
  /// Per-hop signaling latency used for the handoff-latency accounting.
  sim::Duration signaling_hop_latency = sim::Duration::millis(2.0);
  /// Number of profile-server zones (Section 3.4.1). Cells are partitioned
  /// round robin unless the map already assigns zones. Portable profiles
  /// migrate between zone servers on boundary crossings.
  std::size_t zones = 1;
};

struct BackboneStats {
  std::size_t connections_opened = 0;
  std::size_t connections_blocked = 0;
  std::size_t handoffs = 0;
  std::size_t handoff_drops = 0;
  std::size_t reservations_placed = 0;
  std::size_t reservations_consumed = 0;  // prediction hits
  std::size_t multicast_branches_admitted = 0;
  std::size_t multicast_branches_rejected = 0;
  /// Handoffs into a cell whose multicast branch was warm (data already
  /// flowing to the new base station's buffers).
  std::size_t warm_handoffs = 0;
  std::size_t conflict_resolutions = 0;
  std::size_t profile_migrations = 0;  // cross-zone profile moves
  /// Signaling latency accounting (footnote 5): a handoff into a cell with
  /// an advance reservation completes with local signaling only (one hop to
  /// the base station and back); an unpredicted handoff pays a full
  /// end-to-end admission round trip over the new path.
  double total_handoff_latency_s = 0.0;
  std::size_t local_handoffs = 0;  // settled with the advance reservation
  std::size_t e2e_handoffs = 0;    // needed full end-to-end admission

  [[nodiscard]] double mean_handoff_latency_s() const {
    const std::size_t n = local_handoffs + e2e_handoffs;
    return n ? total_handoff_latency_s / double(n) : 0.0;
  }
};

class NetworkEnvironment {
 public:
  NetworkEnvironment(mobility::CellMap map, sim::Simulator& simulator,
                     BackboneConfig config);

  PortableId add_portable(CellId start, std::optional<CellId> home_office = std::nullopt);

  /// Opens a connection between the backbone server and the portable
  /// (downlink: server -> portable; uplink: portable -> server), running
  /// full Table 2 admission over the routed path (wired hops + the wireless
  /// cell link). Returns false when admission rejects.
  bool open_connection(PortableId portable, const qos::QosRequest& request,
                       Direction direction = Direction::kDownlink);
  void close_connection(PortableId portable);

  /// Handoff with re-routing: tears the old path down, admits the new path
  /// as a handoff (consuming any advance reservation), rebuilds multicast
  /// branches. Returns false when the connection was dropped.
  bool handoff(PortableId portable, CellId to);

  /// Network-initiated adaptation: re-runs max-min conflict resolution over
  /// all static portables' connections.
  void adapt();

  /// Application-initiated renegotiation (Section 5.3: "the network
  /// essentially treats it as a new connection request"): try to move the
  /// connection to new bounds; on failure the old connection stays intact.
  bool renegotiate(PortableId portable, const qos::QosRequest& request);

  // ---- introspection ----------------------------------------------------
  [[nodiscard]] const BackboneStats& stats() const { return stats_; }
  [[nodiscard]] const net::NetworkState& network() const { return *network_; }
  [[nodiscard]] net::NetworkState& network_mut() { return *network_; }
  [[nodiscard]] const net::Topology& topology() const { return topology_; }
  [[nodiscard]] bool has_connection(PortableId portable) const {
    return sessions_.contains(portable);
  }
  [[nodiscard]] qos::BitsPerSecond allocated(PortableId portable) const;
  [[nodiscard]] net::LinkId wireless_link(CellId cell) const {
    return wireless_link_of_.at(cell.value());
  }
  [[nodiscard]] net::NodeId base_station(CellId cell) const {
    return bs_of_.at(cell.value());
  }
  [[nodiscard]] net::NodeId server() const { return server_; }
  [[nodiscard]] const mobility::CellMap& map() const { return map_; }
  [[nodiscard]] mobility::MobilityManager& mobility() { return mobility_; }
  /// The zone universe (one server per zone; zones = 1 by default).
  [[nodiscard]] profiles::Universe& universe() { return *universe_; }
  /// Convenience: the profile server owning `the server of zone 0` — with a
  /// single zone this is THE profile server (backward-compatible accessor).
  [[nodiscard]] profiles::ProfileServer& profiles() {
    return universe_->server(net::ZoneId{0});
  }

 private:
  struct Session {
    net::ConnectionId connection = net::ConnectionId::invalid();
    qos::QosRequest request;
    Direction direction = Direction::kDownlink;
    net::MulticastTree multicast;
    CellId reserved_in = CellId::invalid();
  };

  void build_topology();
  [[nodiscard]] std::optional<net::Route> route_for(CellId cell, Direction direction) const;
  void place_advance_reservation(PortableId portable, Session& session);
  void cancel_advance_reservation(PortableId portable, Session& session);
  void rebuild_multicast(PortableId portable, Session& session);
  void teardown_session(PortableId portable, Session& session);

  mobility::CellMap map_;
  sim::Simulator* simulator_;
  BackboneConfig config_;
  net::Topology topology_;
  std::optional<net::NetworkState> network_;  // built after the topology
  std::optional<net::Router> router_;
  mobility::MobilityManager mobility_;
  std::optional<profiles::Universe> universe_;   // built after zone assignment
  std::optional<prediction::ThreeLevelPredictor> predictor_;

  net::NodeId server_ = net::NodeId::invalid();
  std::vector<net::NodeId> bs_of_;             // per cell id
  std::vector<net::NodeId> air_of_;            // per cell id: the cell's radio side
  std::vector<net::LinkId> wireless_link_of_;  // per cell id (downlink BS -> air)
  std::unordered_map<PortableId, Session> sessions_;
  BackboneStats stats_;
};

}  // namespace imrm::core
