file(REMOVE_RECURSE
  "CMakeFiles/campus_sim.dir/campus_sim.cc.o"
  "CMakeFiles/campus_sim.dir/campus_sim.cc.o.d"
  "campus_sim"
  "campus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
