// Whole-network runtime state: per-link bookkeeping plus the connection
// table. This is the substrate both the admission pipeline and the max-min
// adaptation protocol operate on.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "net/ids.h"
#include "net/link_state.h"
#include "net/routing.h"
#include "net/topology.h"
#include "qos/admission.h"
#include "qos/flow_spec.h"

namespace imrm::net {

struct Connection {
  ConnectionId id = ConnectionId::invalid();
  NodeId source = NodeId::invalid();
  NodeId destination = NodeId::invalid();
  Route route;
  qos::QosRequest request;
  qos::MobilityClass mobility = qos::MobilityClass::kMobile;
  qos::BitsPerSecond allocated = 0.0;  // current end-to-end rate (b_j)
};

class NetworkState {
 public:
  explicit NetworkState(const Topology& topology);

  [[nodiscard]] const Topology& topology() const { return *topology_; }
  [[nodiscard]] LinkState& link(LinkId id) { return links_.at(id.value()); }
  [[nodiscard]] const LinkState& link(LinkId id) const { return links_.at(id.value()); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  /// Runs Table 2 admission over `route` and, on success, installs the
  /// connection on every link. Returns the new connection id, or nullopt
  /// with `last_result()` holding the rejection detail.
  std::optional<ConnectionId> admit(NodeId src, NodeId dst, Route route,
                                    const qos::QosRequest& request,
                                    qos::MobilityClass mobility,
                                    qos::Scheduler scheduler = qos::Scheduler::kWfq,
                                    qos::BitsPerSecond b_stamp = 0.0,
                                    qos::ConnectionKind kind = qos::ConnectionKind::kNew);

  /// Removes the connection from all its links.
  void teardown(ConnectionId id);

  /// Moves a connection's allocation (adaptation); applies on every link.
  void set_allocated(ConnectionId id, qos::BitsPerSecond rate);

  /// Updates the connection's static/mobile class (re-classification after
  /// the T_th dwell changes who participates in adaptation).
  void set_mobility(ConnectionId id, qos::MobilityClass mobility) {
    connections_.at(id).mobility = mobility;
  }

  [[nodiscard]] const Connection& connection(ConnectionId id) const {
    return connections_.at(id);
  }
  [[nodiscard]] bool has_connection(ConnectionId id) const {
    return connections_.contains(id);
  }
  [[nodiscard]] std::size_t connection_count() const { return connections_.size(); }
  [[nodiscard]] std::vector<ConnectionId> connection_ids() const;

  [[nodiscard]] const qos::AdmissionResult& last_result() const { return last_result_; }

 private:
  const Topology* topology_;
  std::vector<LinkState> links_;
  std::unordered_map<ConnectionId, Connection> connections_;
  qos::AdmissionResult last_result_;
  ConnectionId::underlying next_connection_ = 0;
};

}  // namespace imrm::net
