#include "sim/simulator.h"

#include <cassert>
#include <memory>
#include <utility>

#include "obs/metrics.h"

namespace imrm::sim {

void Simulator::collect_metrics(obs::Registry& registry) const {
  const EventQueue::Stats& qs = queue_.stats();
  registry.counter("sim.events_fired").add(fired_);
  registry.counter("sim.events_scheduled").add(qs.scheduled);
  registry.counter("sim.events_cancelled").add(qs.cancelled);
  registry.gauge("sim.queue_peak_pending").set(double(qs.peak_pending));
  registry.gauge("sim.queue_pending").set(double(queue_.size()));
  registry.gauge("sim.time_seconds").set(now_.to_seconds());
}

EventId Simulator::every(Duration period, SimTime horizon, EventQueue::Callback cb) {
  assert(period > Duration::zero());
  // Shared callback that reschedules itself until the horizon.
  auto shared = std::make_shared<EventQueue::Callback>(std::move(cb));
  struct Repeater {
    Simulator* self;
    Duration period;
    SimTime horizon;
    std::shared_ptr<EventQueue::Callback> body;
    void operator()() const {
      (*body)();
      const SimTime next = self->now() + period;
      if (next <= horizon) self->at(next, Repeater{*this});
    }
  };
  return at(now_ + period, Repeater{this, period, horizon, std::move(shared)});
}

std::uint64_t Simulator::run_until(SimTime horizon) {
  std::uint64_t count = 0;
  EventQueue::Fired fired;
  while (queue_.pop_at_or_before(horizon, fired)) {
    now_ = fired.time;
    fired.callback();
    fired.callback.reset();  // destroy the capture before the next pop
    ++count;
  }
  fired_ += count;
  // Advance the clock to the horizon so successive run_until calls with
  // increasing horizons behave like continuous time, but never rewind and
  // never jump to infinity on a drained queue.
  if (horizon != SimTime::infinity() && horizon > now_) now_ = horizon;
  return count;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [time, callback] = queue_.pop();
  now_ = time;
  callback();
  ++fired_;
  return true;
}

}  // namespace imrm::sim
