// Monte-Carlo cross-validation of the probabilistic reservation model
// (Section 6.3): the exact convolution P_nb of eq. 5 must agree with a
// direct simulation of the binomial stay/handoff experiment, across the
// paper's parameter ranges.
#include <gtest/gtest.h>

#include <random>

#include "reservation/probabilistic.h"

namespace imrm::reservation {
namespace {

struct Scenario {
  double window;
  int n1, n2;  // type counts in this cell
  int s1, s2;  // type counts in the neighbor
};

class MonteCarlo : public ::testing::TestWithParam<Scenario> {};

TEST_P(MonteCarlo, ConvolutionMatchesSimulation) {
  const Scenario sc = GetParam();
  ProbabilisticReservation::Config config;
  config.capacity_units = 40;
  config.window = sc.window;
  config.p_qos = 0.01;
  config.handoff_prob = 0.7;
  const ProbabilisticReservation model(config, {{1, 0.2}, {4, 0.25}});

  const std::vector<int> here{sc.n1, sc.n2};
  const std::vector<int> neighbor{sc.s1, sc.s2};
  const double exact = model.nonblocking_probability(here, neighbor);

  // Direct simulation of eq. 5: draw stayers and arrivals, check the sum.
  std::mt19937_64 rng{12345};
  std::bernoulli_distribution stay1(model.p_stay(0)), stay2(model.p_stay(1));
  std::bernoulli_distribution move1(model.p_move(0)), move2(model.p_move(1));
  const int trials = 200000;
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    int units = 0;
    for (int i = 0; i < sc.n1; ++i) units += stay1(rng) ? 1 : 0;
    for (int i = 0; i < sc.n2; ++i) units += stay2(rng) ? 4 : 0;
    for (int i = 0; i < sc.s1; ++i) units += move1(rng) ? 1 : 0;
    for (int i = 0; i < sc.s2; ++i) units += move2(rng) ? 4 : 0;
    if (units <= config.capacity_units) ++ok;
  }
  const double simulated = double(ok) / double(trials);
  // 200k trials: 3-sigma of a Bernoulli proportion is < 0.0034.
  EXPECT_NEAR(exact, simulated, 0.005)
      << "T=" << sc.window << " here={" << sc.n1 << "," << sc.n2 << "} neighbor={"
      << sc.s1 << "," << sc.s2 << "}";
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, MonteCarlo,
    ::testing::Values(Scenario{0.05, 30, 2, 30, 2},   // paper's regime
                      Scenario{0.05, 40, 0, 40, 0},   // single type, near capacity
                      Scenario{0.02, 36, 1, 36, 1},   // tight window
                      Scenario{0.20, 30, 2, 30, 2},   // wide window
                      Scenario{0.50, 20, 5, 20, 5},   // heavy type-2 mix
                      Scenario{0.05, 0, 0, 80, 10},   // arrivals only
                      Scenario{1.00, 60, 0, 60, 0})); // overload

}  // namespace
}  // namespace imrm::reservation
