// ShardedRunner: conservative-window correctness and worker-count
// invariance at the engine level (the campus- and protocol-level suites are
// sharded_campus_test.cc and sharded_convergence_test.cc).
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/sharded_runner.h"
#include "sim/time.h"

namespace imrm::sim {
namespace {

TEST(ShardedRunner, DeliversCrossDomainMessagesAtTheRequestedTime) {
  ShardedRunner::Config config{/*domains=*/2, /*workers=*/1,
                               /*window=*/Duration::millis(10)};
  ShardedRunner runner(config);
  std::vector<double> delivered_at;
  runner.domain(0).at(SimTime::millis(3), [&] {
    runner.post(0, 1, Duration::millis(10), [&] {
      delivered_at.push_back(runner.domain(1).now().to_millis());
    });
  });
  runner.run_until(SimTime::seconds(1.0));
  ASSERT_EQ(delivered_at.size(), 1u);
  EXPECT_DOUBLE_EQ(delivered_at[0], 13.0);
}

TEST(ShardedRunner, SetupTimePostsAreDeliveredBeforeTheFirstWindow) {
  ShardedRunner::Config config{2, 1, Duration::millis(5)};
  ShardedRunner runner(config);
  bool delivered = false;
  runner.post(0, 1, Duration::millis(5), [&] { delivered = true; });
  runner.run_until(SimTime::seconds(1.0));
  EXPECT_TRUE(delivered);
  EXPECT_EQ(runner.stats().boundary_messages, 1u);
}

TEST(ShardedRunner, TransportChannelAddressesTheDestinationDomain) {
  ShardedRunner::Config config{3, 1, Duration::millis(1)};
  ShardedRunner runner(config);
  int hits = 0;
  runner.domain(0).at(SimTime::millis(1), [&] {
    runner.transport(0).send(fault::Channel(2), Duration::millis(1),
                             [&] { ++hits; });
  });
  runner.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(hits, 1);
}

// Ping-pong between two domains: each delivery re-posts to the other side.
// Checks multi-round exchange, event accounting, and window counting.
TEST(ShardedRunner, PingPongAcrossWindows) {
  ShardedRunner::Config config{2, 2, Duration::millis(1)};
  ShardedRunner runner(config);
  int bounces = 0;
  // Self-referential bounce: rebuild the callback each hop.
  struct Bouncer {
    ShardedRunner* runner;
    int* bounces;
    void bounce(std::size_t at) const {
      ++*bounces;
      if (*bounces >= 20) return;
      const std::size_t to = 1 - at;
      Bouncer self = *this;
      runner->post(at, to, Duration::millis(1), [self, to] { self.bounce(to); });
    }
  };
  Bouncer bouncer{&runner, &bounces};
  runner.post(0, 1, Duration::millis(1), [bouncer] { bouncer.bounce(1); });
  const std::uint64_t fired = runner.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(bounces, 20);
  EXPECT_EQ(fired, 20u);
  EXPECT_EQ(runner.stats().boundary_messages, 20u);
  EXPECT_GE(runner.stats().windows, 20u);
}

// The determinism contract: a mesh of domains that exchange messages with
// equal delivery times must produce an identical global event order at any
// worker count. Each domain appends (domain, time, payload) to its own log;
// the concatenated logs are compared across worker counts.
TEST(ShardedRunner, ExecutionIsInvariantAcrossWorkerCounts) {
  const auto run = [](std::size_t workers) {
    ShardedRunner::Config config{/*domains=*/5, workers, Duration::millis(2)};
    ShardedRunner runner(config);
    std::vector<std::vector<std::string>> logs(5);
    struct Node {
      ShardedRunner* runner;
      std::vector<std::vector<std::string>>* logs;
      void receive(std::size_t at, std::size_t from, int hop) const {
        (*logs)[at].push_back(std::to_string(from) + ">" + std::to_string(at) +
                              "@" + std::to_string(runner->domain(at).now().to_millis()) +
                              "#" + std::to_string(hop));
        if (hop >= 6) return;
        Node self = *this;
        // Fan out to every other domain with IDENTICAL delivery times —
        // worst case for tie-breaking.
        for (std::size_t to = 0; to < 5; ++to) {
          if (to == at) continue;
          runner->post(at, to, Duration::millis(2), [self, to, at, hop] {
            self.receive(to, at, hop + 1);
          });
        }
      }
    };
    Node node{&runner, &logs};
    for (std::size_t d = 0; d < 5; ++d) {
      runner.post(d, (d + 1) % 5, Duration::millis(2),
                  [node, d] { node.receive((d + 1) % 5, d, 0); });
    }
    runner.run_until(SimTime::millis(14.5));
    std::vector<std::string> flat;
    for (const auto& log : logs) {
      flat.insert(flat.end(), log.begin(), log.end());
    }
    return flat;
  };

  const std::vector<std::string> at1 = run(1);
  ASSERT_FALSE(at1.empty());
  EXPECT_EQ(run(2), at1);
  EXPECT_EQ(run(4), at1);
  EXPECT_EQ(run(8), at1);
}

// The ISSUE 10 contract: batch size (pinned or adaptive) is an execution
// knob only. The same mesh as above must produce identical logs, window
// counts and boundary-message counts for every (workers, batch) pair.
TEST(ShardedRunner, ExecutionIsInvariantAcrossBatchSizes) {
  struct Outcome {
    std::vector<std::string> log;
    std::uint64_t windows = 0;
    std::uint64_t boundary = 0;
  };
  const auto run = [](std::size_t workers, std::size_t batch) {
    ShardedRunner::Config config{/*domains=*/5, workers, Duration::millis(2),
                                 batch};
    ShardedRunner runner(config);
    std::vector<std::vector<std::string>> logs(5);
    struct Node {
      ShardedRunner* runner;
      std::vector<std::vector<std::string>>* logs;
      void receive(std::size_t at, std::size_t from, int hop) const {
        (*logs)[at].push_back(std::to_string(from) + ">" + std::to_string(at) +
                              "@" + std::to_string(runner->domain(at).now().to_millis()) +
                              "#" + std::to_string(hop));
        if (hop >= 6) return;
        Node self = *this;
        for (std::size_t to = 0; to < 5; ++to) {
          if (to == at) continue;
          runner->post(at, to, Duration::millis(2), [self, to, at, hop] {
            self.receive(to, at, hop + 1);
          });
        }
      }
    };
    Node node{&runner, &logs};
    for (std::size_t d = 0; d < 5; ++d) {
      runner.post(d, (d + 1) % 5, Duration::millis(2),
                  [node, d] { node.receive((d + 1) % 5, d, 0); });
    }
    runner.run_until(SimTime::millis(14.5));
    Outcome out;
    for (const auto& log : logs) {
      out.log.insert(out.log.end(), log.begin(), log.end());
    }
    out.windows = runner.stats().windows;
    out.boundary = runner.stats().boundary_messages;
    return out;
  };

  const Outcome base = run(1, 1);
  ASSERT_FALSE(base.log.empty());
  for (const std::size_t workers : {std::size_t(1), std::size_t(2), std::size_t(4)}) {
    for (const std::size_t batch : {std::size_t(1), std::size_t(3),
                                    std::size_t(64), std::size_t(0)}) {
      const Outcome got = run(workers, batch);
      EXPECT_EQ(got.log, base.log) << "workers=" << workers << " batch=" << batch;
      EXPECT_EQ(got.windows, base.windows)
          << "workers=" << workers << " batch=" << batch;
      EXPECT_EQ(got.boundary, base.boundary)
          << "workers=" << workers << " batch=" << batch;
    }
  }
}

// The ISSUE 10 point: bursts collapse coordinator dispatches. A sustained
// one-event-per-window ping-pong is the BENCH_7 pathology in miniature —
// batch=1 pays one dispatch per window, batch=64 one per 64, and the
// adaptive controller must land well under the unbatched count too.
TEST(ShardedRunner, BatchingCollapsesCoordinatorDispatches) {
  const auto run = [](std::size_t batch) {
    ShardedRunner::Config config{2, 2, Duration::millis(1), batch};
    ShardedRunner runner(config);
    int bounces = 0;
    struct Bouncer {
      ShardedRunner* runner;
      int* bounces;
      void bounce(std::size_t at) const {
        ++*bounces;
        if (*bounces >= 400) return;
        const std::size_t to = 1 - at;
        Bouncer self = *this;
        runner->post(at, to, Duration::millis(1), [self, to] { self.bounce(to); });
      }
    };
    Bouncer bouncer{&runner, &bounces};
    runner.post(0, 1, Duration::millis(1), [bouncer] { bouncer.bounce(1); });
    runner.run_until(SimTime::seconds(1.0));
    EXPECT_EQ(bounces, 400);
    return runner.stats();
  };

  const ShardedRunner::Stats unbatched = run(1);
  const ShardedRunner::Stats batched = run(64);
  const ShardedRunner::Stats adaptive = run(0);
  // batch=1 is the ISSUE 5 regime: every window is its own dispatch.
  EXPECT_EQ(unbatched.dispatches, unbatched.windows);
  EXPECT_GE(unbatched.windows, 400u);
  // Same simulation, same windows — an order of magnitude fewer barriers.
  EXPECT_EQ(batched.windows, unbatched.windows);
  EXPECT_LE(batched.dispatches * 10, unbatched.dispatches);
  EXPECT_EQ(adaptive.windows, unbatched.windows);
  EXPECT_LT(adaptive.dispatches, unbatched.dispatches);
}

TEST(ShardedRunner, RepeatedRunUntilCarriesLeftoverMessages) {
  ShardedRunner::Config config{2, 1, Duration::millis(10)};
  ShardedRunner runner(config);
  bool delivered = false;
  runner.domain(0).at(SimTime::millis(95), [&] {
    runner.post(0, 1, Duration::millis(10), [&] { delivered = true; });
  });
  runner.run_until(SimTime::millis(100));
  EXPECT_FALSE(delivered) << "delivery at 105ms must not fire by 100ms";
  runner.run_until(SimTime::millis(200));
  EXPECT_TRUE(delivered);
}

TEST(ShardedRunner, IdleDomainsSkipAheadCheaply) {
  // Two events a minute apart with a 1ms window: the runner must not grind
  // through 60000 empty windows.
  ShardedRunner::Config config{2, 1, Duration::millis(1)};
  ShardedRunner runner(config);
  int fired = 0;
  runner.domain(0).at(SimTime::seconds(0.5), [&] { ++fired; });
  runner.domain(1).at(SimTime::seconds(60.0), [&] { ++fired; });
  runner.run_until(SimTime::seconds(120.0));
  EXPECT_EQ(fired, 2);
  EXPECT_LE(runner.stats().windows, 4u);
}

}  // namespace
}  // namespace imrm::sim
