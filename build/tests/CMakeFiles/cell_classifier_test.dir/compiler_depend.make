# Empty compiler generated dependencies file for cell_classifier_test.
# This may be replaced when dependencies are built.
