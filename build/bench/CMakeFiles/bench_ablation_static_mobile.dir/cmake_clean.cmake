file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_static_mobile.dir/bench_ablation_static_mobile.cc.o"
  "CMakeFiles/bench_ablation_static_mobile.dir/bench_ablation_static_mobile.cc.o.d"
  "bench_ablation_static_mobile"
  "bench_ablation_static_mobile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_static_mobile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
